module canec

go 1.22
