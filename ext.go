package canec

// Extensions beyond the paper's core model, built on the same substrate:
// multi-network gateways (§2.2.1's spanning channels), Jensen-style
// time-value functions (the paper's ref [11], used to derive expiration
// attributes), and candump-style bus tracing.

import (
	"io"

	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/scenario"
	"canec/internal/sim"
	"canec/internal/trace"
	"canec/internal/value"
)

// Gateway bridging between segments.
type (
	// Bridge forwards subjects between two bus segments that share one
	// simulation kernel (build the second System with the first one's
	// Kernel in SystemConfig.Kernel).
	Bridge = gateway.Bridge
	// Direction selects the forwarding direction of a bridged subject.
	Direction = gateway.Direction
)

// Bridge directions.
const (
	AtoB = gateway.AtoB
	BtoA = gateway.BtoA
	Both = gateway.Both
)

// NewBridge creates a gateway between two middleware endpoints. It fails
// when the endpoints do not share a simulation kernel (segments on
// different kernels — typically different processes — are federated over
// an IP transport instead; see internal/relay and cmd/canecd).
func NewBridge(a, b *Middleware, delay Duration) (*Bridge, error) {
	return gateway.New(a, b, delay)
}

// Time-value functions (Jensen): the worth of completing a transmission
// as a function of its lateness.
type (
	// ValueFunc maps lateness to completion value (1 = on time).
	ValueFunc = value.Function
	// StepValue is the hard-deadline function.
	StepValue = value.Step
	// LinearValue decays linearly over a grace interval.
	LinearValue = value.Linear
	// ExponentialValue halves every half-life after the deadline.
	ExponentialValue = value.Exponential
	// PlateauValue grants a reduced constant value while late.
	PlateauValue = value.Plateau
)

// ExpirationFor derives an event's Expiration attribute from its value
// function, deadline and a residual-value threshold (§2.2.2: "the
// expiration time ... may be defined according to some value function").
func ExpirationFor(f ValueFunc, deadline Time, threshold float64, horizon Duration) Time {
	return value.ExpirationFor(f, deadline, threshold, horizon)
}

// Bus tracing.
type (
	// TraceRing records the most recent bus events for candump-style
	// inspection; install with sys.Bus.Trace = ring.Hook(sys.Bus.Trace).
	TraceRing = trace.Ring
)

// NewTraceRing returns a recorder of the n most recent bus events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// Observability: end-to-end event life-cycle tracing and a metrics
// registry, enabled per system via SystemConfig.Observe (nil keeps the
// instrumentation dormant). The resulting Observer is on System.Obs.
type (
	// ObserveConfig selects which observability features a system runs
	// with; canec.ObserveAll() enables everything.
	ObserveConfig = obs.Config
	// Observer collects life-cycle records and metrics for one system.
	Observer = obs.Observer
	// TraceRecord is one timestamped stage of one event's life cycle.
	TraceRecord = obs.Record
	// MetricsRegistry holds the counters, gauges and histograms and
	// renders them in the Prometheus text exposition format (WriteText).
	MetricsRegistry = obs.Registry
)

// ObserveAll returns an ObserveConfig with tracing and metrics enabled.
func ObserveAll() *ObserveConfig { return obs.Default() }

// WriteTraceJSONL writes life-cycle records as JSON Lines.
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error { return obs.WriteJSONL(w, recs) }

// WriteChromeTrace writes life-cycle records in the Chrome trace_event
// format (load in chrome://tracing or https://ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, recs []TraceRecord, nodes int) error {
	return obs.WriteChromeTrace(w, recs, nodes)
}

// Kernel re-export so multi-segment systems can share a time base.
type Kernel = sim.Kernel

// NewKernel creates a standalone simulation kernel (for multi-segment
// topologies; single-segment systems get one implicitly from NewSystem).
func NewKernel(seed uint64) *Kernel { return sim.NewKernel(seed) }

// Node liveness (§2.2.1 early failure detection).
type (
	// Watchdog tracks publisher liveness from the known slot schedule.
	Watchdog = core.Watchdog
	// NodeState is a watchdog verdict.
	NodeState = core.NodeState
	// ChannelInfo is a read-only channel snapshot (Middleware.Channels).
	ChannelInfo = core.ChannelInfo
)

// Watchdog states.
const (
	NodeAlive     = core.NodeAlive
	NodeSuspected = core.NodeSuspected
	NodeFailed    = core.NodeFailed
)

// Declarative scenarios (JSON): see internal/scenario for the format and
// cmd/canecsim -config for the CLI entry point.
type (
	// Scenario is a declarative mixed-traffic description.
	Scenario = scenario.Scenario
	// ScenarioReport summarises a scenario run.
	ScenarioReport = scenario.Report
)

// LoadScenario parses and validates a JSON scenario.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }
