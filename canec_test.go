package canec_test

// Facade-level integration tests: exercise the library exactly as a
// downstream user would, through the public canec package only.

import (
	"testing"

	"canec"
	"canec/internal/can"
)

func buildCalendar(t *testing.T) *canec.Calendar {
	t.Helper()
	cal, err := canec.PackCalendar(canec.DefaultCalendarConfig(), 10*canec.Millisecond,
		canec.Slot{Subject: 0x51, Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestFacadeEndToEnd(t *testing.T) {
	cal := buildCalendar(t)
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: 3, Seed: 1, Calendar: cal,
		Sync: canec.DefaultSyncConfig(), MaxDriftPPM: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.Node(0).MW.HRTEC(0x51)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	got := 0
	sub, err := sys.Node(1).MW.HRTEC(0x51)
	if err != nil {
		t.Fatal(err)
	}
	err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { got++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 10; r++ {
		sys.K.At(sys.Cfg.Epoch+canec.Time(r)*cal.Round-300*canec.Microsecond, func() {
			pub.Publish(canec.Event{Subject: 0x51, Payload: []byte{1, 2}})
		})
	}
	sys.Run(sys.Cfg.Epoch + 10*cal.Round - 1)
	if got != 10 {
		t.Fatalf("delivered %d, want 10", got)
	}
}

func TestFacadeAllClasses(t *testing.T) {
	sys, err := canec.NewSystem(canec.SystemConfig{Nodes: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// SRT.
	srt, _ := sys.Node(0).MW.SRTEC(0x61)
	if err := srt.Announce(canec.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	srtGot := 0
	ssub, _ := sys.Node(1).MW.SRTEC(0x61)
	ssub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { srtGot++ }, nil)
	// NRT with fragmentation.
	nrt, _ := sys.Node(0).MW.NRTEC(0x62)
	if err := nrt.Announce(canec.ChannelAttrs{Prio: 253, Fragmentation: true}, nil); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	nsub, _ := sys.Node(1).MW.NRTEC(0x62)
	nsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, _ canec.DeliveryInfo) { blob = ev.Payload }, nil)

	sys.K.At(canec.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		srt.Publish(canec.Event{Subject: 0x61, Payload: []byte{9},
			Attrs: canec.EventAttrs{Deadline: now + 5*canec.Millisecond}})
		nrt.Publish(canec.Event{Subject: 0x62, Payload: make([]byte, 500)})
	})
	sys.Run(canec.Second)
	if srtGot != 1 {
		t.Fatalf("SRT deliveries = %d", srtGot)
	}
	if len(blob) != 500 {
		t.Fatalf("NRT blob = %d bytes", len(blob))
	}
	c := sys.TotalCounters()
	if c.DeliveredSRT != 1 || c.DeliveredNRT != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() (canec.Counters, uint64) {
		cal := buildCalendar(t)
		sys, err := canec.NewSystem(canec.SystemConfig{
			Nodes: 4, Seed: 99, Calendar: cal,
			Sync: canec.DefaultSyncConfig(), MaxDriftPPM: 100,
			Injector: can.RandomErrors{Rate: 0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		pub, _ := sys.Node(0).MW.HRTEC(0x51)
		pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil)
		sub, _ := sys.Node(1).MW.HRTEC(0x51)
		sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
			func(canec.Event, canec.DeliveryInfo) {}, nil)
		srt, _ := sys.Node(2).MW.SRTEC(0x71)
		srt.Announce(canec.ChannelAttrs{}, nil)
		var loop func()
		loop = func() {
			if sys.K.Now() > 500*canec.Millisecond {
				return
			}
			now := sys.Node(2).MW.LocalTime()
			srt.Publish(canec.Event{Subject: 0x71, Payload: []byte{1},
				Attrs: canec.EventAttrs{Deadline: now + 3*canec.Millisecond}})
			sys.K.After(sys.K.RNG().ExpDuration(2*canec.Millisecond), loop)
		}
		sys.K.At(sys.Cfg.Epoch, loop)
		for r := int64(0); r < 20; r++ {
			sys.K.At(sys.Cfg.Epoch+canec.Time(r)*cal.Round-300*canec.Microsecond, func() {
				pub.Publish(canec.Event{Subject: 0x51, Payload: []byte{1}})
			})
		}
		sys.Run(sys.Cfg.Epoch + 20*cal.Round - 1)
		return sys.TotalCounters(), sys.K.Steps()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("same-seed runs diverged:\n%+v (%d steps)\n%+v (%d steps)", c1, s1, c2, s2)
	}
}

func TestFacadeBandsAndConfig(t *testing.T) {
	b := canec.DefaultBands()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := canec.DefaultCalendarConfig()
	if cfg.GapMin != 40*canec.Microsecond {
		t.Fatalf("ΔG_min = %v, want the paper's 40µs", cfg.GapMin)
	}
	if cfg.WaitTime() != 160*canec.Microsecond {
		t.Fatalf("ΔT_wait = %v", cfg.WaitTime())
	}
	sc := canec.DefaultSyncConfig()
	if sc.Period <= 0 || sc.Quantization <= 0 {
		t.Fatalf("sync config defaults: %+v", sc)
	}
	cal := canec.NewCalendar(10*canec.Millisecond, cfg)
	if err := cal.Admit(); err != nil {
		t.Fatalf("empty calendar must admit: %v", err)
	}
}
