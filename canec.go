// Package canec is a complete, simulation-backed implementation of the
// real-time event channel model for the CAN-Bus of Kaiser, Brudna and
// Mitidieri (IPPS/WPDRTS 2003): a publisher/subscriber middleware with
// hard real-time (HRTEC), soft real-time (SRTEC) and non real-time
// (NRTEC) event channels, mapped onto a bit-accurate discrete-event model
// of CAN 2.0B.
//
// The package is a facade: it re-exports the public surface of the
// internal packages so downstream users program against one import.
//
//	sys, _ := canec.NewSystem(canec.SystemConfig{Nodes: 3, Seed: 1, Calendar: cal})
//	ch, _  := sys.Node(0).MW.HRTEC(subject)
//	ch.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil)
//	ch.Publish(canec.Event{Subject: subject, Payload: reading})
//	sys.Run(10 * canec.Second)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's claims.
package canec

import (
	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/edf"
	"canec/internal/sim"
)

// Virtual time (nanosecond resolution).
type (
	// Time is an absolute point in virtual time.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Event model.
type (
	// Subject is the system-wide unique name of an event channel.
	Subject = binding.Subject
	// Event is <subject, attributes, content>.
	Event = core.Event
	// EventAttrs carry per-event deadline/expiration attributes.
	EventAttrs = core.EventAttrs
	// ChannelAttrs describe a channel (class parameters).
	ChannelAttrs = core.ChannelAttrs
	// SubscribeAttrs carry subscriber-side filters.
	SubscribeAttrs = core.SubscribeAttrs
	// DeliveryInfo accompanies each notification.
	DeliveryInfo = core.DeliveryInfo
	// NotificationHandler is called on event delivery.
	NotificationHandler = core.NotificationHandler
	// Exception is a local exceptional condition notification.
	Exception = core.Exception
	// ExceptionKind classifies exceptions.
	ExceptionKind = core.ExceptionKind
	// ExceptionHandler is called on exceptional conditions.
	ExceptionHandler = core.ExceptionHandler
	// Counters aggregates middleware statistics.
	Counters = core.Counters
)

// Exception kinds.
const (
	ExcDeadlineMissed  = core.ExcDeadlineMissed
	ExcValidityExpired = core.ExcValidityExpired
	ExcSlotMissed      = core.ExcSlotMissed
	ExcQueueOverflow   = core.ExcQueueOverflow
	ExcTxFailure       = core.ExcTxFailure
	ExcFragError       = core.ExcFragError
)

// Channels and middleware.
type (
	// HRTEC is a hard real-time event channel.
	HRTEC = core.HRTEC
	// SRTEC is a soft real-time event channel.
	SRTEC = core.SRTEC
	// NRTEC is a non real-time event channel.
	NRTEC = core.NRTEC
	// Middleware is the per-node event channel layer.
	Middleware = core.Middleware
	// Node bundles a station's controller, clock and middleware.
	Node = core.Node
	// Bands is the global priority layout.
	Bands = core.Bands
	// System is a fully wired simulation instance.
	System = core.System
	// SystemConfig parameterises NewSystem.
	SystemConfig = core.SystemConfig
)

// Calendar (hard real-time reservations).
type (
	// Calendar is the static round schedule.
	Calendar = calendar.Calendar
	// Slot is one reserved transmission window.
	Slot = calendar.Slot
	// CalendarConfig carries slot-geometry parameters.
	CalendarConfig = calendar.Config
)

// Clock synchronization.
type (
	// SyncConfig parameterises the sync protocol.
	SyncConfig = clock.SyncConfig
	// Clock is a drifting local clock.
	Clock = clock.Clock
)

// EDF band (soft real-time deadline→priority mapping).
type (
	// Band is the SRT priority band with slot length Δt_p.
	Band = edf.Band
)

// Identifier fields.
type (
	// Prio is the 8-bit explicit priority field.
	Prio = can.Prio
	// TxNode is the 7-bit transmitting-node field.
	TxNode = can.TxNode
	// Etag is the 14-bit event tag field.
	Etag = can.Etag
)

// NewSystem builds and validates a complete simulated CAN segment.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// DefaultBands returns the priority layout used throughout the paper's
// examples: HRT = 0, clock sync = 1, SRT = 2..250, NRT = 251..255.
func DefaultBands() Bands { return core.DefaultBands() }

// DefaultCalendarConfig returns the paper's slot-geometry parameters:
// 1 Mbit/s, ΔG_min = 40 µs, worst-case ΔT_wait, omission degree 1.
func DefaultCalendarConfig() CalendarConfig { return calendar.DefaultConfig() }

// NewCalendar returns an empty calendar with the given round length.
func NewCalendar(round Duration, cfg CalendarConfig) *Calendar {
	return calendar.New(round, cfg)
}

// PackCalendar lays the given slots out back-to-back with minimal
// admissible spacing and validates the result.
func PackCalendar(cfg CalendarConfig, quantum Duration, slots ...Slot) (*Calendar, error) {
	return calendar.PackSequential(cfg, quantum, slots...)
}

// SlotRequest describes one hard real-time stream for the off-line
// planner.
type SlotRequest = calendar.Request

// PlanCalendar synthesises an admissible calendar from stream
// requirements: the base round is the fastest period, slower streams
// activate every N rounds, and phase-disjoint streams may share windows.
func PlanCalendar(cfg CalendarConfig, reqs []SlotRequest) (*Calendar, error) {
	return calendar.Plan(cfg, reqs)
}

// DefaultSyncConfig returns the clock synchronization defaults (100 ms
// period, 1 µs timestamp quantization).
func DefaultSyncConfig() SyncConfig { return clock.DefaultSyncConfig() }
