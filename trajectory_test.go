package canec_test

// Trajectory recorder hook for the go-test harness: setting
// CANEC_BENCH_JSON=<label> turns this test into a BENCH_<label>.json
// recording run over the full perf suite — the same cases canecbench
// -json runs, reachable from `go test` so CI recipes need only one
// entry point. Without the variable the test is a cheap sanity pass
// over one case, so the recorder path never rots.
//
//	CANEC_BENCH_JSON=seed go test -run TestRecordTrajectory -timeout 30m .
//	CANEC_BENCH_TIME=200ms CANEC_BENCH_JSON=pr42 go test -run TestRecordTrajectory .

import (
	"os"
	"testing"
	"time"

	"canec/internal/obs/perf"
	"canec/internal/obs/perf/suite"
)

func TestRecordTrajectory(t *testing.T) {
	label := os.Getenv("CANEC_BENCH_JSON")
	if label == "" {
		// Sanity-only pass: the recorder must still produce a coherent
		// result for a fast case.
		res := perf.Run(perf.Case{Name: "SimKernel", Fn: mustFind(t, "SimKernel").Fn},
			perf.RunConfig{Iters: 200})
		if res.NsPerOp <= 0 || res.Iters != 200 {
			t.Fatalf("recorder sanity: %+v", res)
		}
		t.Skip("set CANEC_BENCH_JSON=<label> to record a full trajectory point")
	}

	cfg := perf.RunConfig{Time: time.Second}
	if d := os.Getenv("CANEC_BENCH_TIME"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil {
			t.Fatalf("CANEC_BENCH_TIME: %v", err)
		}
		cfg.Time = dur
	}
	var results []perf.Result
	for _, c := range suite.Cases() {
		res := perf.Run(c, cfg)
		t.Logf("%-18s %10d iters %12.1f ns/op %8.1f allocs/op",
			res.Name, res.Iters, res.NsPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	dir := os.Getenv("CANEC_BENCH_DIR")
	if dir == "" {
		dir = "."
	}
	path, err := perf.WriteFile(dir, perf.Record(label, results))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func mustFind(t *testing.T, name string) perf.Case {
	t.Helper()
	c, ok := suite.Find(name)
	if !ok {
		t.Fatalf("case %q missing from suite", name)
	}
	return c
}
