package canec_test

import (
	"strings"
	"testing"

	"canec"
)

func TestFacadeBridge(t *testing.T) {
	k := canec.NewKernel(4)
	segA, err := canec.NewSystem(canec.SystemConfig{Nodes: 2, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	segB, err := canec.NewSystem(canec.SystemConfig{Nodes: 2, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	g, err := canec.NewBridge(segA.Node(1).MW, segB.Node(1).MW, 100*canec.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ForwardSRT(0x55, canec.Both); err != nil {
		t.Fatal(err)
	}
	pub, _ := segA.Node(0).MW.SRTEC(0x55)
	pub.Announce(canec.ChannelAttrs{}, nil)
	got := 0
	sub, _ := segB.Node(0).MW.SRTEC(0x55)
	sub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { got++ }, nil)
	k.At(canec.Millisecond, func() {
		now := segA.Node(0).MW.LocalTime()
		pub.Publish(canec.Event{Subject: 0x55, Payload: []byte{9},
			Attrs: canec.EventAttrs{Deadline: now + 5*canec.Millisecond}})
	})
	k.Run(canec.Second)
	if got != 1 || g.Forwarded() != 1 {
		t.Fatalf("got=%d forwarded=%d", got, g.Forwarded())
	}
}

func TestFacadeTraceRing(t *testing.T) {
	sys, _ := canec.NewSystem(canec.SystemConfig{Nodes: 2, Seed: 1})
	ring := canec.NewTraceRing(32)
	sys.Bus.Trace = ring.Hook(sys.Bus.Trace)
	pub, _ := sys.Node(0).MW.SRTEC(0x66)
	pub.Announce(canec.ChannelAttrs{}, nil)
	sys.K.At(canec.Millisecond, func() {
		pub.Publish(canec.Event{Subject: 0x66, Payload: []byte{1}})
	})
	sys.Run(10 * canec.Millisecond)
	if len(ring.Entries()) == 0 {
		t.Fatal("trace ring empty")
	}
	var sb strings.Builder
	if err := ring.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TX-OK") {
		t.Fatalf("dump = %q", sb.String())
	}
}

func TestFacadeValueFunctions(t *testing.T) {
	fns := []canec.ValueFunc{
		canec.StepValue{},
		canec.LinearValue{Grace: canec.Millisecond},
		canec.ExponentialValue{HalfLife: canec.Millisecond},
		canec.PlateauValue{After: 0.4, Grace: canec.Millisecond},
	}
	for _, fn := range fns {
		if fn.At(-1) != 1 {
			t.Fatalf("%T early value != 1", fn)
		}
	}
	exp := canec.ExpirationFor(canec.StepValue{}, canec.Time(canec.Second), 0.5, canec.Second)
	if exp != canec.Time(canec.Second) {
		t.Fatalf("step expiration = %v", exp)
	}
}

func TestFacadeScenario(t *testing.T) {
	sc, err := canec.LoadScenario(strings.NewReader(`{
		"name": "facade", "nodes": 3, "durationMs": 100,
		"srt": [{"subject": 7, "publisher": 0, "subscriber": 1,
		         "meanPeriodUs": 2000, "deadlineUs": 5000, "payload": 8}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.DeliveredSRT == 0 {
		t.Fatal("scenario carried no traffic")
	}
}

func TestFacadeWatchdogStates(t *testing.T) {
	if canec.NodeAlive.String() != "alive" || canec.NodeFailed.String() != "failed" {
		t.Fatal("state aliases broken")
	}
	sys, _ := canec.NewSystem(canec.SystemConfig{Nodes: 2, Seed: 1})
	wd := sys.Node(1).MW.Watchdog(2, nil)
	if wd.State(0) != canec.NodeAlive {
		t.Fatal("default watchdog state")
	}
	infos := sys.Node(1).MW.Channels()
	if len(infos) != 0 {
		t.Fatalf("fresh middleware has %d channels", len(infos))
	}
}
