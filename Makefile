GO ?= go

.PHONY: all build vet test race check chaos-smoke busoff-smoke admission-smoke control-smoke fuzz-smoke relay-smoke obs-smoke why-smoke bench bench-record bench-check bench-smoke tidy

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos-smoke replays the seeded fault campaigns (crash/restart, error
# burst, omission window, babbling idiot + bus guardian, the bus-off
# adversary with supervised recovery, and the control-plane failovers:
# binding-agent standby takeover and time-master failover) on fixed seeds
# under the race detector and asserts per-seed determinism — the fast
# dependability gate.
chaos-smoke:
	$(GO) test -race -short -run 'TestChaosSmokeSeeds|TestCampaignDeterministicPerSeed|TestCampaignControlPlaneFailover|TestCampaignControlPlaneDeterministic|TestBusOffAttackRecoveryAndHRTSurvival' ./internal/chaos/

# busoff-smoke replays the bus-off adversary campaign end to end through
# canecsim: the scripted attack must drive the victim bus-off, the
# supervisor must bring it back, the guardian must isolate the attacker,
# and every trace invariant must hold — deterministically.
busoff-smoke:
	./scripts/busoff_smoke.sh

# control-smoke replays the closed-loop control demo clean and under a
# scripted bus-off attack on the controller station: the quality-of-
# control measure must show the outage and the supervised recovery.
control-smoke:
	./scripts/control_smoke.sh

# admission-smoke replays the probabilistic-admission gate through
# canecsim: on the over-admission scenario the overcommitted channel must
# be rejected with a typed reason, the bit-error ramp must shed the
# marginal channel while the surviving admitted SRT channels keep the
# target miss probability and HRT stays unaffected — deterministically.
admission-smoke:
	./scripts/admission_smoke.sh

# fuzz-smoke runs each native fuzz target briefly (~5 s): the wire-facing
# frame handlers (agent, client, syncer) and the codec round-trips must
# never panic on arbitrary frames.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAgentHandleFrame -fuzztime 5s ./internal/binding/
	$(GO) test -run '^$$' -fuzz FuzzClientHandleFrame -fuzztime 5s ./internal/binding/
	$(GO) test -run '^$$' -fuzz FuzzPut56RoundTrip -fuzztime 5s ./internal/binding/
	$(GO) test -run '^$$' -fuzz FuzzSyncerHandleFrame -fuzztime 5s ./internal/clock/
	$(GO) test -run '^$$' -fuzz FuzzTraceJSONL -fuzztime 5s ./internal/obs/
	$(GO) test -run '^$$' -fuzz FuzzTSRoundTrip -fuzztime 5s ./internal/clock/
	$(GO) test -run '^$$' -fuzz FuzzWireRoundTrip -fuzztime 5s ./internal/can/
	$(GO) test -run '^$$' -fuzz FuzzScript -fuzztime 5s ./internal/chaos/
	$(GO) test -run '^$$' -fuzz FuzzControlLoops -fuzztime 5s ./internal/scenario/

# relay-smoke is the multi-process federation gate: two canecd daemons on
# localhost, three SRT events published on segment a, delivery and trace
# continuity asserted on segment b.
relay-smoke:
	./scripts/relay_smoke.sh

# obs-smoke is the live-introspection gate: the two-daemon federation
# with -admin enabled on both, /healthz /slo /metrics answered live,
# the Prometheus exposition strictly validated, and a canecstat fleet
# poll reporting both segments healthy.
obs-smoke:
	./scripts/obs_smoke.sh

# why-smoke is the root-cause attribution gate: the E19 injected-fault
# campaigns run under the race detector (known causes attributed, zero
# control-group misattribution, residual-zero exact), then a scripted
# bit-error campaign drives an SLO breach whose post-mortem must carry
# the correct top cause through canecwhy — bit-identically, twice.
why-smoke:
	./scripts/why_smoke.sh

# bench-smoke is the performance-trajectory gate: the committed
# BENCH_seed.json self-compares clean, an injected regression trips the
# canecbench -compare gate, a short live recording round-trips the JSON
# schema, and the kernel profiler reports every pipeline stage.
bench-smoke:
	./scripts/bench_smoke.sh

# check is the PR gate: compile everything, vet, run the full suite under
# the race detector, replay the chaos smoke sweep, the bus-off adversary
# campaign and the probabilistic-admission gate, smoke the fuzz targets,
# run the two-daemon relay and introspection smokes, verify root-cause
# attribution, and gate the performance trajectory.
check: build vet race chaos-smoke busoff-smoke admission-smoke control-smoke fuzz-smoke relay-smoke obs-smoke why-smoke bench-smoke

bench:
	$(GO) test -bench . -benchmem ./internal/can ./internal/sim

# bench-record re-records the committed baseline (full calibrated suite;
# takes a few minutes). Commit the refreshed BENCH_seed.json alongside
# any intentional performance change.
bench-record:
	$(GO) run ./cmd/canecbench -json seed -bench-dir .

# bench-check records a fresh trajectory point and gates it against the
# committed baseline with the default thresholds.
bench-check:
	@tmp=$$(mktemp -d); st=0; \
	$(GO) run ./cmd/canecbench -json head -bench-dir $$tmp -bench-time 500ms && \
	$(GO) run ./cmd/canecbench -compare BENCH_seed.json $$tmp/BENCH_head.json || st=$$?; \
	rm -rf $$tmp; exit $$st

tidy:
	gofmt -l -w .
