GO ?= go

.PHONY: all build vet test race check bench tidy

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR gate: compile everything, vet, and run the full suite
# under the race detector.
check: build vet race

bench:
	$(GO) test -bench . -benchmem ./internal/can ./internal/sim

tidy:
	gofmt -l -w .
