GO ?= go

.PHONY: all build vet test race check chaos-smoke bench tidy

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos-smoke replays the seeded fault campaign (crash/restart, error
# burst, omission window, babbling idiot + bus guardian) on three seeds
# under the race detector and asserts per-seed determinism — the fast
# dependability gate.
chaos-smoke:
	$(GO) test -race -short -run 'TestChaosSmokeSeeds|TestCampaignDeterministicPerSeed' ./internal/chaos/

# check is the PR gate: compile everything, vet, run the full suite under
# the race detector, and replay the chaos smoke sweep.
check: build vet race chaos-smoke

bench:
	$(GO) test -bench . -benchmem ./internal/can ./internal/sim

tidy:
	gofmt -l -w .
