package canec

// Benchmark harness: one benchmark per experiment table (E1–E10, see
// DESIGN.md §4 and EXPERIMENTS.md). Each benchmark regenerates the
// corresponding evaluation table end to end — workload generation,
// simulation, measurement — and reports headline metrics via
// b.ReportMetric so regressions in either performance or *result shape*
// are visible from `go test -bench`.
//
// Micro-benchmarks for the hot substrate paths (event kernel, frame
// encoding, arbitration) follow at the end.

import (
	"strconv"
	"testing"

	"canec/internal/can"
	"canec/internal/experiments"
	"canec/internal/sim"
)

// benchExperiment runs one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		res := e.Run(uint64(i + 1))
		rows = len(res.Table.Rows)
	}
	b.ReportMetric(float64(rows), "tablerows")
}

func BenchmarkE1SlotGeometry(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2FaultTolerance(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Reclamation(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4EDFvsDM(b *testing.B)              { benchExperiment(b, "E4") }
func BenchmarkE5PrioritySlotTradeoff(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Fragmentation(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7PromotionOverhead(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8ClockSync(b *testing.B)            { benchExperiment(b, "E8") }
func BenchmarkE9Integration(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10WCRTAnalysis(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkA1PromotionAblation(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2DejitterAblation(b *testing.B)     { benchExperiment(b, "A2") }
func BenchmarkA3ValueShedding(b *testing.B)        { benchExperiment(b, "A3") }

// BenchmarkSimKernel measures raw event throughput of the discrete-event
// kernel: the floor for every simulation above.
func BenchmarkSimKernel(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(100, tick)
		}
	}
	k.After(100, tick)
	k.Run(sim.MaxTime)
	if n < b.N {
		b.Fatal("kernel stalled")
	}
}

// BenchmarkFrameWireBits measures the exact stuffed wire-length
// computation (CRC-15 + bit stuffing over the real bit pattern).
func BenchmarkFrameWireBits(b *testing.B) {
	b.ReportAllocs()
	f := can.Frame{ID: can.MakeID(42, 17, 9999), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	total := 0
	for i := 0; i < b.N; i++ {
		total += can.WireBits(f)
	}
	if total == 0 {
		b.Fatal("no bits")
	}
}

// BenchmarkBusSaturated measures simulated frames per second of wall time
// on a saturated 8-node bus.
func BenchmarkBusSaturated(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		bus.Attach(can.TxNode(i))
	}
	sent := 0
	var submit func(node int)
	submit = func(node int) {
		if sent >= b.N {
			return
		}
		sent++
		f := can.Frame{
			ID:   can.MakeID(can.Prio(10+node), can.TxNode(node), can.Etag(sent&0x3fff)),
			Data: []byte{byte(sent), 0, 0, 0, 0, 0, 0, 0},
		}
		bus.Controller(node).Submit(f, can.SubmitOpts{Done: func(bool, sim.Time) {
			submit(node)
		}})
	}
	b.ResetTimer()
	for i := 0; i < nodes; i++ {
		submit(i)
	}
	k.Run(sim.MaxTime)
	if got := bus.Stats().FramesOK; got < uint64(b.N) {
		b.Fatalf("only %d frames for N=%d", got, b.N)
	}
}

// BenchmarkEndToEndHRT measures full-stack cost per delivered HRT event
// (calendar scheduling, redundancy management, de-jittered delivery).
func BenchmarkEndToEndHRT(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultCalendarConfig()
	cal, err := PackCalendar(cfg, 10*Millisecond,
		Slot{Subject: 0x31, Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Nodes: 2, Seed: 1, Calendar: cal, Epoch: Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	pub, _ := sys.Node(0).MW.HRTEC(0x31)
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		b.Fatal(err)
	}
	got := 0
	sub, _ := sys.Node(1).MW.HRTEC(0x31)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) { got++ }, nil)
	for r := 0; r < b.N; r++ {
		sys.K.At(sys.Cfg.Epoch+Time(r)*cal.Round-100*Microsecond, func() {
			pub.Publish(Event{Subject: 0x31, Payload: []byte{1}})
		})
	}
	b.ResetTimer()
	sys.Run(sys.Cfg.Epoch + Time(b.N)*cal.Round - 1)
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkEndToEndSRT measures full-stack cost per delivered SRT event
// including EDF mapping and promotion timers.
func BenchmarkEndToEndSRT(b *testing.B) {
	b.ReportAllocs()
	sys, err := NewSystem(SystemConfig{Nodes: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pub, _ := sys.Node(0).MW.SRTEC(0x41)
	pub.Announce(ChannelAttrs{}, nil)
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(0x41)
	sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{}, func(Event, DeliveryInfo) { got++ }, nil)
	for r := 0; r < b.N; r++ {
		r := r
		sys.K.At(Time(r)*200*Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(Event{Subject: 0x41, Payload: []byte(strconv.Itoa(r % 10)),
				Attrs: EventAttrs{Deadline: now + 5*Millisecond}})
		})
	}
	b.ResetTimer()
	sys.Run(Time(b.N)*200*Microsecond + Second)
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}
