// canecwhy ingests trace JSONL — a canectrace export or a
// flight-recorder post-mortem dump — and answers "why was it late":
// it replays the stream through the causal lateness engine and prints
// ranked root-cause tables with per-chain critical paths.
//
// Example:
//
//	canecwhy postmortem-001-slo-srt-miss.jsonl
//	canecwhy -late-over SRT=2ms -chains 10 trace.jsonl
//	canecwhy -csv *.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"canec/internal/obs"
	"canec/internal/obs/causal"
	"canec/internal/sim"
	"canec/internal/stats"
)

func main() {
	var (
		lateOver = flag.String("late-over", "",
			"per-class lateness bounds, e.g. HRT=1ms,SRT=5ms (unset: only drops count as incidents)")
		chains = flag.Int("chains", 5, "worst incident chains to print per file (0 = none)")
		csv    = flag.Bool("csv", false, "emit tables as CSV")
		topN   = flag.Int("top", 3, "causes in the summary line")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "canecwhy: no trace files (usage: canecwhy [flags] dump.jsonl...)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	bounds, err := parseLateOver(*lateOver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecwhy:", err)
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		if err := run(path, bounds, *chains, *csv, *topN); err != nil {
			fmt.Fprintln(os.Stderr, "canecwhy:", err)
			status = 1
		}
	}
	os.Exit(status)
}

// parseLateOver parses "HRT=1ms,SRT=5ms" into per-class bounds.
func parseLateOver(s string) (map[string]sim.Duration, error) {
	return causal.ParseLateOver(s)
}

func run(path string, bounds map[string]sim.Duration, chains int, csv bool, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	info, err := obs.ReadJSONLInfo(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	a := causal.Analyze(info.Records, causal.Config{LateOver: bounds})
	schema := info.Schema
	if schema == "" {
		schema = "pre-versioning"
	}
	fmt.Printf("%s: %d records (%s), %d chains\n", path, len(info.Records), schema, a.Snapshot().Chains)
	if sum := a.BreachSummary("", topN); sum != "" {
		fmt.Println("  " + sum)
	} else {
		fmt.Println("  no late or dropped chains")
	}
	fmt.Println()

	snap := a.Snapshot()
	prof := &stats.Table{
		Title:   "root causes by class",
		Headers: []string{"class", "chains", "late", "dropped", "top cause", "cause", "debit", "share"},
	}
	for _, cp := range snap.Classes {
		for i, cs := range cp.Causes {
			class, chainsCol, late, dropped, top := "", "", "", "", ""
			if i == 0 {
				class, top = cp.Class, string(cp.Top)
				chainsCol = fmt.Sprintf("%d", cp.Chains)
				late = fmt.Sprintf("%d", cp.Late)
				dropped = fmt.Sprintf("%d", cp.Dropped)
			}
			prof.Add(class, chainsCol, late, dropped, top,
				string(cs.Cause), causal.FormatDur(cs.DebitNS), stats.Pct(cs.Share))
		}
	}
	emit(prof, csv)

	if chains > 0 {
		worst := append([]causal.Chain(nil), a.Chains()...)
		sort.SliceStable(worst, func(i, j int) bool {
			wi, wj := worst[i].Late || worst[i].Outcome != "delivered",
				worst[j].Late || worst[j].Outcome != "delivered"
			if wi != wj {
				return wi
			}
			return worst[i].Latency > worst[j].Latency
		})
		tbl := &stats.Table{
			Title:   "worst chains",
			Headers: []string{"id", "class", "subject", "outcome", "latency", "top cause", "critical path"},
		}
		n := 0
		for _, ch := range worst {
			if !ch.Late && ch.Outcome == "delivered" {
				break
			}
			if n >= chains {
				break
			}
			subject := ""
			if ch.Subject != 0 {
				subject = fmt.Sprintf("0x%x", ch.Subject)
			}
			tbl.Add(ch.ID, ch.Class, subject, ch.Outcome,
				causal.FormatDur(ch.Latency), string(ch.Top),
				causal.FormatSegments(ch.Segments))
			n++
		}
		if n > 0 {
			emit(tbl, csv)
		}
	}
	return nil
}

func emit(t *stats.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}
