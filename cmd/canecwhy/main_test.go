package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"canec/internal/obs"
	"canec/internal/sim"
)

func TestParseLateOver(t *testing.T) {
	bounds, err := parseLateOver("HRT=1ms, srt=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if bounds["HRT"] != sim.Duration(1_000_000) || bounds["SRT"] != sim.Duration(5_000_000) {
		t.Fatalf("bounds = %v", bounds)
	}
	if _, err := parseLateOver("HRT"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := parseLateOver("HRT=fast"); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestCanecwhyEndToEnd runs the built binary over a post-mortem style
// dump with a known injected cause and checks the ranked output.
func TestCanecwhyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "canecwhy")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	dump := filepath.Join(dir, "postmortem.jsonl")
	f, err := os.Create(dump)
	if err != nil {
		t.Fatal(err)
	}
	recs := []obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 10_000, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxErr, At: 50_000, Node: 0, Subject: 0x300, Attempt: 1, Detail: "bit corrupt"},
		{ID: 1, Stage: obs.StageTxStart, At: 80_000, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageTxOK, At: 180_000, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageRx, At: 180_000, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 190_000, Node: 1, Class: "SRT", Subject: 0x300},
	}
	if err := obs.WriteVersionedJSONL(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, err := exec.Command(bin, "-late-over", "SRT=100us", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("canecwhy: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"canec-trace/1", "top causes: error_retransmit",
		"error_retransmit", "worst chains", "0x300",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	// Determinism: two runs over the same dump are byte-identical.
	out2, err := exec.Command(bin, "-late-over", "SRT=100us", dump).CombinedOutput()
	if err != nil || string(out2) != text {
		t.Fatalf("reruns differ: %v\n%s\nvs\n%s", err, text, out2)
	}

	// A missing file fails with a non-zero status.
	if out, err := exec.Command(bin, filepath.Join(dir, "nope.jsonl")).CombinedOutput(); err == nil {
		t.Fatalf("missing file accepted:\n%s", out)
	}
}
