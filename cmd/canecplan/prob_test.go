package main

import (
	"strings"
	"testing"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/sim"
)

// planCal builds a small calendar matching the -example HRT set.
func planCal(t *testing.T) *calendar.Calendar {
	t.Helper()
	cal, err := calendar.Plan(calendar.DefaultConfig(), []calendar.Request{
		{Subject: 0x101, Publisher: 0, Payload: 8, Period: 5 * sim.Millisecond, Periodic: true},
		{Subject: 0x102, Publisher: can.TxNode(1), Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestProbAnalysisVerdicts: a stream with a generous deadline is
// admitted, one whose deadline tolerates no retransmission is rejected,
// and both carry quantile lines from the response distribution.
func TestProbAnalysisVerdicts(t *testing.T) {
	cal := planCal(t)
	srt := []inputSRT{
		{MeanPeriodUs: 2000, DeadlineUs: 10000, Payload: 8},
		{MeanPeriodUs: 5000, DeadlineUs: 700, Payload: 8},
	}
	var b strings.Builder
	err := printProbAnalysis(&b, cal, srt, inputProb{ErrorRate: 0.05, SRTTarget: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 stream lines, got:\n%s", out)
	}
	if !strings.Contains(lines[1], "ADMIT") {
		t.Fatalf("generous stream not admitted:\n%s", out)
	}
	if !strings.Contains(lines[2], "REJECT") {
		t.Fatalf("tight stream not rejected:\n%s", out)
	}
	for _, want := range []string{"zero-error", "p50", "p99", "p99.9", "miss target 0.0001"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, out)
		}
	}
}

// TestProbAnalysisRejectsBadModel: an out-of-range error rate is a
// usage error, not a silent pass.
func TestProbAnalysisRejectsBadModel(t *testing.T) {
	cal := planCal(t)
	var b strings.Builder
	if err := printProbAnalysis(&b, cal, nil, inputProb{ErrorRate: 1.5}); err == nil {
		t.Fatal("invalid error rate accepted")
	}
}
