// canecplan is the off-line reservation tool the paper's §3.1 assumes:
// it reads hard real-time stream requirements, synthesises a slot
// calendar (base round = fastest period, slower streams on multi-round
// activation patterns with phase sharing), runs the admission test, and
// prints the resulting schedule with its Fig. 3 geometry and an ASCII
// timeline.
//
// Requirements come as JSON on stdin or via -example:
//
//	canecplan -example
//	canecplan < streams.json
//
// JSON format:
//
//	{
//	  "omissionDegree": 1,
//	  "streams": [
//	    {"subject": 257, "publisher": 0, "payload": 8, "periodUs": 5000, "periodic": true},
//	    {"subject": 258, "publisher": 1, "payload": 8, "periodUs": 10000}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"canec/internal/baseline"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/sim"
	"canec/internal/workload"
)

type inputStream struct {
	Subject   uint64 `json:"subject"`
	Publisher int    `json:"publisher"`
	Payload   int    `json:"payload"`
	PeriodUs  int64  `json:"periodUs"`
	Periodic  bool   `json:"periodic"`
}

type inputSRT struct {
	MeanPeriodUs int64 `json:"meanPeriodUs"`
	DeadlineUs   int64 `json:"deadlineUs"`
	Payload      int   `json:"payload"`
}

type input struct {
	OmissionDegree int           `json:"omissionDegree"`
	GapUs          int64         `json:"gapUs"`
	Streams        []inputStream `json:"streams"`
	// SRT streams are not reserved, but the tool checks that they fit the
	// residual bandwidth the calendar leaves (non-preemptive EDF bound).
	SRT []inputSRT `json:"srt"`
}

func main() {
	example := flag.Bool("example", false, "plan a built-in example set instead of reading stdin")
	flag.Parse()

	var in input
	if *example {
		in = input{
			OmissionDegree: 1,
			SRT: []inputSRT{
				{MeanPeriodUs: 2000, DeadlineUs: 10000, Payload: 8},
				{MeanPeriodUs: 5000, DeadlineUs: 20000, Payload: 8},
			},
			Streams: []inputStream{
				{Subject: 0x101, Publisher: 0, Payload: 8, PeriodUs: 5000, Periodic: true},
				{Subject: 0x102, Publisher: 1, Payload: 8, PeriodUs: 5000, Periodic: true},
				{Subject: 0x103, Publisher: 2, Payload: 6, PeriodUs: 10000, Periodic: true},
				{Subject: 0x104, Publisher: 3, Payload: 8, PeriodUs: 20000},
				{Subject: 0x105, Publisher: 4, Payload: 8, PeriodUs: 20000},
				{Subject: 0x106, Publisher: 5, Payload: 4, PeriodUs: 40000},
			},
		}
	} else {
		if err := json.NewDecoder(os.Stdin).Decode(&in); err != nil {
			fmt.Fprintln(os.Stderr, "canecplan: reading stdin:", err)
			os.Exit(2)
		}
	}

	cfg := calendar.DefaultConfig()
	if in.OmissionDegree > 0 {
		cfg.OmissionDegree = in.OmissionDegree
	}
	if in.GapUs > 0 {
		cfg.GapMin = sim.Duration(in.GapUs) * sim.Microsecond
	}
	reqs := make([]calendar.Request, len(in.Streams))
	for i, s := range in.Streams {
		reqs[i] = calendar.Request{
			Subject:   s.Subject,
			Publisher: can.TxNode(s.Publisher),
			Payload:   s.Payload,
			Period:    sim.Duration(s.PeriodUs) * sim.Microsecond,
			Periodic:  s.Periodic,
		}
	}
	cal, err := calendar.Plan(cfg, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecplan: admission failed:", err)
		os.Exit(1)
	}
	fmt.Print(cal.Format())
	fmt.Println()
	if len(in.SRT) > 0 {
		streams := make([]workload.Stream, len(in.SRT))
		for i, r := range in.SRT {
			streams[i] = workload.Stream{
				Period:      sim.Duration(r.MeanPeriodUs) * sim.Microsecond,
				RelDeadline: sim.Duration(r.DeadlineUs) * sim.Microsecond,
				Payload:     r.Payload,
			}
		}
		ft := func(p int) sim.Duration { return can.BitTime(can.WorstCaseBits(p), can.DefaultBitRate) }
		f := baseline.CheckMixed(cal, streams, ft)
		verdict := "FEASIBLE"
		if !f.Feasible {
			verdict = "NOT GUARANTEED: " + f.Reason
		}
		fmt.Printf("soft real-time check: HRT reserves %.1f%%, SRT demands %.1f%%, min deadline %v -> %s\n",
			100*f.HRTShare, 100*f.SRTDemand, f.MinDeadline, verdict)
		fmt.Println()
	}
	for _, r := range reqs {
		achieved := cal.AchievedPeriod(r.Subject)
		note := ""
		if achieved != r.Period {
			note = fmt.Sprintf("  (requested %v, quantised down)", r.Period)
		}
		fmt.Printf("subject %#x: served every %v%s\n", r.Subject, achieved, note)
	}
}
