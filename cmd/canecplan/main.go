// canecplan is the off-line reservation tool the paper's §3.1 assumes:
// it reads hard real-time stream requirements, synthesises a slot
// calendar (base round = fastest period, slower streams on multi-round
// activation patterns with phase sharing), runs the admission test, and
// prints the resulting schedule with its Fig. 3 geometry and an ASCII
// timeline.
//
// Requirements come as JSON on stdin or via -example:
//
//	canecplan -example
//	canecplan < streams.json
//
// JSON format:
//
//	{
//	  "omissionDegree": 1,
//	  "streams": [
//	    {"subject": 257, "publisher": 0, "payload": 8, "periodUs": 5000, "periodic": true},
//	    {"subject": 258, "publisher": 1, "payload": 8, "periodUs": 10000}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"canec/internal/baseline"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/prob"
	"canec/internal/sim"
	"canec/internal/workload"
)

type inputStream struct {
	Subject   uint64 `json:"subject"`
	Publisher int    `json:"publisher"`
	Payload   int    `json:"payload"`
	PeriodUs  int64  `json:"periodUs"`
	Periodic  bool   `json:"periodic"`
}

type inputSRT struct {
	MeanPeriodUs int64 `json:"meanPeriodUs"`
	DeadlineUs   int64 `json:"deadlineUs"`
	Payload      int   `json:"payload"`
}

// inputProb parameterises the probabilistic SRT analysis: the
// stationary per-link error model and the tolerated deadline-miss
// probability. Matching prob.ErrorModel so the planner provably
// analyzes the same distribution chaos campaigns inject.
type inputProb struct {
	ErrorRate    float64 `json:"errorRate"`
	OmissionRate float64 `json:"omissionRate"`
	VictimProb   float64 `json:"victimProb"`
	Receivers    int     `json:"receivers"`
	SRTTarget    float64 `json:"srtTarget"`
}

type input struct {
	OmissionDegree int           `json:"omissionDegree"`
	GapUs          int64         `json:"gapUs"`
	Streams        []inputStream `json:"streams"`
	// SRT streams are not reserved, but the tool checks that they fit the
	// residual bandwidth the calendar leaves (non-preemptive EDF bound).
	SRT []inputSRT `json:"srt"`
	// Prob, if present, additionally runs the convolution-based
	// probabilistic analysis on the SRT streams (same as -prob).
	Prob *inputProb `json:"prob"`
}

func main() {
	example := flag.Bool("example", false, "plan a built-in example set instead of reading stdin")
	probMode := flag.Bool("prob", false, "run the convolution-based probabilistic analysis on the SRT streams")
	errorRate := flag.Float64("error-rate", 0.01, "per-attempt frame error probability for -prob")
	missTarget := flag.Float64("miss-target", 1e-3, "tolerated deadline-miss probability for -prob")
	flag.Parse()

	var in input
	if *example {
		in = input{
			OmissionDegree: 1,
			SRT: []inputSRT{
				{MeanPeriodUs: 2000, DeadlineUs: 10000, Payload: 8},
				{MeanPeriodUs: 5000, DeadlineUs: 20000, Payload: 8},
			},
			Streams: []inputStream{
				{Subject: 0x101, Publisher: 0, Payload: 8, PeriodUs: 5000, Periodic: true},
				{Subject: 0x102, Publisher: 1, Payload: 8, PeriodUs: 5000, Periodic: true},
				{Subject: 0x103, Publisher: 2, Payload: 6, PeriodUs: 10000, Periodic: true},
				{Subject: 0x104, Publisher: 3, Payload: 8, PeriodUs: 20000},
				{Subject: 0x105, Publisher: 4, Payload: 8, PeriodUs: 20000},
				{Subject: 0x106, Publisher: 5, Payload: 4, PeriodUs: 40000},
			},
		}
	} else {
		if err := json.NewDecoder(os.Stdin).Decode(&in); err != nil {
			fmt.Fprintln(os.Stderr, "canecplan: reading stdin:", err)
			os.Exit(2)
		}
	}

	cfg := calendar.DefaultConfig()
	if in.OmissionDegree > 0 {
		cfg.OmissionDegree = in.OmissionDegree
	}
	if in.GapUs > 0 {
		cfg.GapMin = sim.Duration(in.GapUs) * sim.Microsecond
	}
	reqs := make([]calendar.Request, len(in.Streams))
	for i, s := range in.Streams {
		reqs[i] = calendar.Request{
			Subject:   s.Subject,
			Publisher: can.TxNode(s.Publisher),
			Payload:   s.Payload,
			Period:    sim.Duration(s.PeriodUs) * sim.Microsecond,
			Periodic:  s.Periodic,
		}
	}
	cal, err := calendar.Plan(cfg, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecplan: admission failed:", err)
		os.Exit(1)
	}
	fmt.Print(cal.Format())
	fmt.Println()
	if len(in.SRT) > 0 {
		streams := make([]workload.Stream, len(in.SRT))
		for i, r := range in.SRT {
			streams[i] = workload.Stream{
				Period:      sim.Duration(r.MeanPeriodUs) * sim.Microsecond,
				RelDeadline: sim.Duration(r.DeadlineUs) * sim.Microsecond,
				Payload:     r.Payload,
			}
		}
		ft := func(p int) sim.Duration { return can.BitTime(can.WorstCaseBits(p), can.DefaultBitRate) }
		f := baseline.CheckMixed(cal, streams, ft)
		verdict := "FEASIBLE"
		if !f.Feasible {
			verdict = "NOT GUARANTEED: " + f.Reason
		}
		fmt.Printf("soft real-time check: HRT reserves %.1f%%, SRT demands %.1f%%, min deadline %v -> %s\n",
			100*f.HRTShare, 100*f.SRTDemand, f.MinDeadline, verdict)
		fmt.Println()
	}
	if *probMode || in.Prob != nil {
		pm := inputProb{ErrorRate: *errorRate, SRTTarget: *missTarget}
		if in.Prob != nil {
			pm = *in.Prob
			if pm.SRTTarget == 0 {
				pm.SRTTarget = *missTarget
			}
		}
		if err := printProbAnalysis(os.Stdout, cal, in.SRT, pm); err != nil {
			fmt.Fprintln(os.Stderr, "canecplan: probabilistic analysis:", err)
			os.Exit(2)
		}
		fmt.Println()
	}
	for _, r := range reqs {
		achieved := cal.AchievedPeriod(r.Subject)
		note := ""
		if achieved != r.Period {
			note = fmt.Sprintf("  (requested %v, quantised down)", r.Period)
		}
		fmt.Printf("subject %#x: served every %v%s\n", r.Subject, achieved, note)
	}
}

// printProbAnalysis runs the convolution-based probabilistic
// response-time analysis for each SRT stream against the planned
// calendar's reserved traffic, using the same all-ahead worst case the
// runtime admission controller assumes: calendar slots at priority 0,
// every other SRT stream ahead of the target. Each line reports the
// zero-error response, the P50/P99/P99.9 quantiles of the response
// distribution, the predicted deadline-miss probability and an
// ADMIT/REJECT verdict against the configured target.
func printProbAnalysis(w io.Writer, cal *calendar.Calendar, srt []inputSRT, pm inputProb) error {
	model := prob.ErrorModel{
		ErrorRate:    pm.ErrorRate,
		OmissionRate: pm.OmissionRate,
		VictimProb:   pm.VictimProb,
		Receivers:    pm.Receivers,
	}
	if err := model.Validate(); err != nil {
		return err
	}
	a := prob.Analyzer{Model: model}
	reserved := core.ReservedFromCalendar(cal)
	fmt.Fprintf(w, "probabilistic SRT analysis: error rate %.3g, omission rate %.3g, miss target %.3g\n",
		model.ErrorRate, model.OmissionRate, pm.SRTTarget)
	for i, r := range srt {
		set := make([]prob.Msg, 0, len(reserved)+len(srt))
		set = append(set, reserved...)
		target := -1
		for j, o := range srt {
			m := prob.Msg{
				Name:    fmt.Sprintf("srt-%d", j),
				Prio:    1,
				Period:  sim.Duration(o.MeanPeriodUs) * sim.Microsecond,
				Payload: o.Payload,
			}
			if j == i {
				m.Prio = 2
				m.Deadline = sim.Duration(o.DeadlineUs) * sim.Microsecond
				target = len(set)
			}
			set = append(set, m)
		}
		label := fmt.Sprintf("srt[%d] period %v deadline %v payload %d",
			i, sim.Duration(r.MeanPeriodUs)*sim.Microsecond,
			sim.Duration(r.DeadlineUs)*sim.Microsecond, r.Payload)
		res, err := a.Response(set, target)
		if err != nil {
			fmt.Fprintf(w, "  %s: REJECT (unschedulable: %v)\n", label, err)
			continue
		}
		verdict := "ADMIT"
		if res.MissProb > pm.SRTTarget {
			verdict = "REJECT"
		}
		p50, _ := res.Dist.Quantile(0.50)
		p99, _ := res.Dist.Quantile(0.99)
		p999, _ := res.Dist.Quantile(0.999)
		fmt.Fprintf(w, "  %s: %s miss %.3g  (zero-error %v, p50 %v, p99 %v, p99.9 %v)\n",
			label, verdict, res.MissProb, res.ZeroError, p50, p99, p999)
	}
	return nil
}
