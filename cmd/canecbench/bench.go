package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"canec/internal/obs/perf"
	"canec/internal/obs/perf/suite"
)

// benchFlags collects the trajectory-recorder and regression-gate
// options; main dispatches here when any of them is set.
type benchFlags struct {
	jsonLabel  string
	benchDir   string
	bench      string
	benchTime  time.Duration
	iters      int
	compare    string
	profile    int
	nsFrac     float64
	allocsAbs  float64
	framesFrac float64
}

// selectCases resolves the -bench filter (comma-separated names,
// default all).
func selectCases(filter string) ([]perf.Case, error) {
	if filter == "" {
		return suite.Cases(), nil
	}
	var cases []perf.Case
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		c, ok := suite.Find(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// runRecord executes the selected cases and writes BENCH_<label>.json.
func runRecord(bf benchFlags) int {
	cases, err := selectCases(bf.bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecbench:", err)
		return 2
	}
	cfg := perf.RunConfig{Time: bf.benchTime, Iters: bf.iters}
	var results []perf.Result
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "bench %-18s ", c.Name)
		res := perf.Run(c, cfg)
		fmt.Fprintf(os.Stderr, "%10d iters  %12.1f ns/op  %8.1f allocs/op",
			res.Iters, res.NsPerOp, res.AllocsPerOp)
		if res.FramesPerSec > 0 {
			fmt.Fprintf(os.Stderr, "  %12.0f frames/s", res.FramesPerSec)
		}
		fmt.Fprintln(os.Stderr)
		results = append(results, res)
	}
	f := perf.Record(bf.jsonLabel, results)
	path, err := perf.WriteFile(bf.benchDir, f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecbench:", err)
		return 1
	}
	fmt.Println(path)
	return 0
}

// runCompare gates a new trajectory point against a baseline; exits
// non-zero when any metric regressed past its threshold.
func runCompare(bf benchFlags, newPath string) int {
	oldF, err := perf.ReadFile(bf.compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecbench:", err)
		return 2
	}
	newF, err := perf.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canecbench:", err)
		return 2
	}
	th := perf.Thresholds{
		NsPerOpFrac:    bf.nsFrac,
		AllocsPerOpAbs: bf.allocsAbs,
		FramesFrac:     bf.framesFrac,
	}
	deltas := perf.Compare(oldF, newF, th)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if bad := perf.Regressions(deltas); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "canecbench: %d regression(s) vs %s\n", len(bad), bf.compare)
		return 1
	}
	fmt.Fprintf(os.Stderr, "canecbench: no regressions vs %s (%d checks)\n",
		bf.compare, len(deltas))
	return 0
}

// runProfile runs the mixed three-class workload under the kernel
// profiler and prints the per-class stage breakdown (EXPERIMENTS E15).
func runProfile(n int) int {
	snap := suite.ProfiledMixed(n)
	fmt.Printf("mixed workload: %d events/class, %d kernel steps, %.0f events/s wall\n",
		n, snap.Steps, snap.EventsPerSec)
	fmt.Printf("heap high-water %d, idle virtual %.3fs, busy virtual %.3fs\n",
		snap.HeapHighWater, float64(snap.IdleVirtualNs)/1e9, float64(snap.BusyVirtualNs)/1e9)
	fmt.Printf("delivered %d frames, %.1f allocs/frame\n\n", snap.Delivered, snap.AllocsPerDelivered)

	stages := append([]perf.StageSnap(nil), snap.Stages...)
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Stage != stages[j].Stage {
			return stages[i].Stage < stages[j].Stage
		}
		return stages[i].Class < stages[j].Class
	})
	fmt.Printf("%-12s %-5s %12s %14s %10s\n", "stage", "class", "ops", "wall_ns", "ns/op")
	for _, s := range stages {
		perOp := 0.0
		if s.Ops > 0 {
			perOp = float64(s.WallNs) / float64(s.Ops)
		}
		fmt.Printf("%-12s %-5s %12d %14d %10.1f\n", s.Stage, s.Class, s.Ops, s.WallNs, perOp)
	}
	return 0
}
