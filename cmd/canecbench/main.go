// canecbench regenerates the evaluation tables for every experiment
// (E1–E10) described in DESIGN.md, reproducing the claims of "A Real-Time
// Event Channel Model for the CAN-Bus" (Kaiser, Brudna, Mitidieri 2003).
//
// Usage:
//
//	canecbench                 # run all experiments
//	canecbench -run E3,E4      # run a subset (by ID or name)
//	canecbench -seed 7 -csv    # different seed, CSV output
//	canecbench -list           # list experiments
//
// Performance trajectory (see DESIGN.md §11):
//
//	canecbench -json seed                      # record BENCH_seed.json
//	canecbench -json pr42 -bench EndToEndSRT   # record a subset
//	canecbench -compare BENCH_seed.json BENCH_pr42.json
//	                                           # regression gate: exit 1 on regression
//	canecbench -profile 5000                   # per-class kernel stage breakdown (E15)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"canec/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs or names (default: all)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list available experiments")
		seeds   = flag.Int("seeds", 1, "run each experiment over N seeds in parallel and report mean±sd")
		outDir  = flag.String("out", "", "also write each table as <dir>/<id>.csv")
		promDir = flag.String("prom", "", "collect metrics registries (E3, E9) and write <dir>/<id>_<label>.prom; single-seed runs only")
	)
	var bf benchFlags
	flag.StringVar(&bf.jsonLabel, "json", "", "record benchmark suite and write BENCH_<label>.json")
	flag.StringVar(&bf.benchDir, "bench-dir", ".", "directory for BENCH_*.json files")
	flag.StringVar(&bf.bench, "bench", "", "comma-separated benchmark case names (default: all; with -json)")
	flag.DurationVar(&bf.benchTime, "bench-time", time.Second, "target wall time per benchmark case (with -json)")
	flag.IntVar(&bf.iters, "bench-iters", 0, "fixed iteration count, skipping calibration (with -json)")
	flag.StringVar(&bf.compare, "compare", "", "baseline BENCH_*.json; gate the positional new file against it")
	flag.IntVar(&bf.profile, "profile", 0, "run N events/class under the kernel profiler and print the stage breakdown")
	flag.Float64Var(&bf.nsFrac, "max-ns-frac", 0, "ns/op growth fraction that fails the gate (default 0.35)")
	flag.Float64Var(&bf.allocsAbs, "max-allocs", 0, "allocs/op absolute growth that fails the gate (default 0.5)")
	flag.Float64Var(&bf.framesFrac, "max-frames-frac", 0, "frames/s drop fraction that fails the gate (default 0.30)")
	flag.Parse()

	if bf.compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "canecbench: -compare <baseline.json> needs exactly one positional <new.json>")
			os.Exit(2)
		}
		os.Exit(runCompare(bf, flag.Arg(0)))
	}
	if bf.jsonLabel != "" {
		os.Exit(runRecord(bf))
	}
	if bf.profile > 0 {
		os.Exit(runProfile(bf.profile))
	}

	if *promDir != "" {
		if *seeds > 1 {
			// Aggregate drops snapshots: per-seed registries are not
			// meaningfully averageable, so refuse rather than silently
			// producing nothing.
			fmt.Fprintln(os.Stderr, "canecbench: -prom requires -seeds 1")
			os.Exit(2)
		}
		experiments.EnableMetrics()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-20s %s\n", e.ID, e.Name, e.Short)
		}
		return
	}

	var selected []experiments.Experiment
	if *runList == "" {
		selected = experiments.All()
	} else {
		for _, key := range strings.Split(*runList, ",") {
			key = strings.TrimSpace(key)
			e, ok := experiments.Find(key)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", key)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		var res experiments.Result
		if *seeds > 1 {
			list := make([]uint64, *seeds)
			for i := range list {
				list[i] = *seed + uint64(i)
			}
			res = experiments.Aggregate(experiments.RunSeeds(e, list))
		} else {
			res = e.Run(*seed)
		}
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.Table.CSV())
		} else {
			fmt.Println(res.String())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "canecbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.Table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "canecbench:", err)
				os.Exit(1)
			}
		}
		if *promDir != "" && len(res.Prom) > 0 {
			if err := os.MkdirAll(*promDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "canecbench:", err)
				os.Exit(1)
			}
			for _, snap := range res.Prom {
				path := filepath.Join(*promDir, res.ID+"_"+snap.Label+".prom")
				if err := os.WriteFile(path, []byte(snap.Text), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "canecbench:", err)
					os.Exit(1)
				}
			}
		}
	}
}
