// canecd hosts one canec bus segment per process and federates it with
// other segments over TCP relay links (internal/relay). The segment's
// discrete-event kernel runs in paced mode — virtual time throttled
// against the wall clock — so multiple daemons interoperate in real time
// while every in-process simulation semantic stays intact.
//
// A two-daemon federation, subject 0x42 flowing left to right:
//
//	canecd -segment b -trace-base 2 -listen 127.0.0.1:7443 \
//	       -sub 0x42 -announce srt:0x42 -expect 0x42:3 -expect-origin 1
//	canecd -segment a -trace-base 1 -uplink 127.0.0.1:7443 \
//	       -forward srt:0x42 -publish srt:0x42:3:20ms
//
// The first process exits 0 once three events published on segment a
// were delivered on segment b with their origin traces intact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"canec/internal/binding"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/obs/causal"
	"canec/internal/obs/perf"
	"canec/internal/relay"
	"canec/internal/sim"
)

func main() { os.Exit(run()) }

// chanSpec is one parsed class:subject federation entry.
type chanSpec struct {
	class   core.Class
	subject binding.Subject
}

func parseClass(s string) (core.Class, error) {
	switch strings.ToLower(s) {
	case "hrt":
		return core.HRT, nil
	case "srt":
		return core.SRT, nil
	case "nrt":
		return core.NRT, nil
	}
	return 0, fmt.Errorf("unknown class %q (want hrt|srt|nrt)", s)
}

func parseSubject(s string) (binding.Subject, error) {
	v, err := strconv.ParseUint(s, 0, 56)
	if err != nil {
		return 0, fmt.Errorf("subject %q: %w", s, err)
	}
	return binding.Subject(v), nil
}

// parseChanList parses "class:subject,class:subject,...".
func parseChanList(s string) ([]chanSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []chanSpec
	for _, part := range strings.Split(s, ",") {
		f := strings.SplitN(part, ":", 2)
		if len(f) != 2 {
			return nil, fmt.Errorf("entry %q: want class:subject", part)
		}
		class, err := parseClass(f[0])
		if err != nil {
			return nil, err
		}
		subj, err := parseSubject(f[1])
		if err != nil {
			return nil, err
		}
		out = append(out, chanSpec{class, subj})
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func die(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "canecd: "+format+"\n", args...)
	return 1
}

func run() int {
	var (
		segment   = flag.String("segment", "", "segment name, unique across the federation (required)")
		nodes     = flag.Int("nodes", 4, "stations on this segment (node 0 publishes, node 1 subscribes, the top nodes host relay bridges)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		traceBase = flag.Uint64("trace-base", 0, "trace-ID base index; IDs are minted as base<<32|n, keep it disjoint per segment")
		pace      = flag.Float64("pace", 1.0, "virtual nanoseconds per wall nanosecond")
		listen    = flag.String("listen", "", "comma-separated addresses to accept relay peers on")
		uplink    = flag.String("uplink", "", "comma-separated relay server addresses to dial")
		forward   = flag.String("forward", "", "comma list class:subject shipped to peers (e.g. srt:0x42)")
		announce  = flag.String("announce", "", "comma list class:subject expected in from peers")
		subs      = flag.String("sub", "", "comma list of subjects requested from peers")
		publish   = flag.String("publish", "", "class:subject:count:period — demo publisher on node 0")
		expect    = flag.String("expect", "", "subject:count — exit 0 once node 1 delivered count events")
		expOrigin = flag.Uint64("expect-origin", 0, "require delivered trace IDs to originate from this trace base (0 disables)")
		dur       = flag.Duration("dur", 30*time.Second, "wall-clock run limit")
		hb        = flag.Duration("hb", 500*time.Millisecond, "relay heartbeat period")
		verbose   = flag.Bool("v", false, "log relay link events to stderr")

		adminAddr = flag.String("admin", "", "serve the admin introspection plane (/metrics /healthz /channels /slo /relay /flight, pprof) on this address; empty disables")
		flightN   = flag.Int("flight", 2048, "flight-recorder retention, trace records per node (0 disables)")
		flightDir = flag.String("flight-dir", ".", "directory for flight-recorder post-mortem dumps")
		slo       = flag.Bool("slo", true, "run the SLO engine (default objective set)")
		whyOn     = flag.Bool("why", true, "run the causal why-late engine (/why on the admin plane, canec_why_* metrics, root causes on SLO breach post-mortems)")
		whyLate   = flag.String("why-late-over", "", "comma list class=duration marking delivered chains late (e.g. srt=5ms); empty attributes drops only")
		profile   = flag.Bool("profile", true, "attach the kernel profiler (publish→deliver stage timing, /profile on the admin plane)")
		sloSRT    = flag.Float64("slo-srt-budget", 0.05, "SRT deadline-miss budget (fraction of published events)")
		sloCtl    = flag.Float64("slo-control-budget", 0, "control-cost SLO budget: tolerated quadratic cost per long window (0 disables the objective)")
		ctlDemo   = flag.Bool("control", false, "run a demo closed PID control loop (double integrator over SRT channels on stations 0/1) and serve its QoC at /control")
	)
	flag.Parse()
	if *segment == "" {
		return die("-segment is required")
	}
	fwd, err := parseChanList(*forward)
	if err != nil {
		return die("-forward: %v", err)
	}
	ann, err := parseChanList(*announce)
	if err != nil {
		return die("-announce: %v", err)
	}
	listens, uplinks := splitList(*listen), splitList(*uplink)
	nLinks := len(listens) + len(uplinks)
	if nLinks == 0 {
		return die("need at least one -listen or -uplink")
	}
	if *nodes < nLinks+2 {
		return die("%d nodes cannot host %d relay bridges plus app stations", *nodes, nLinks)
	}

	obsCfg := &obs.Config{
		Trace: true, Metrics: true, TraceIDBase: *traceBase << 32,
		FlightRecords: *flightN, FlightDir: *flightDir,
	}
	if *slo {
		sloCfg := obs.DefaultSLOConfig()
		sloCfg.SRTMissBudget = *sloSRT
		sloCfg.ControlCostBudget = *sloCtl
		obsCfg.SLO = &sloCfg
	}
	k := sim.NewKernel(*seed)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:   *nodes,
		Kernel:  k,
		Observe: obsCfg,
	})
	if err != nil {
		return die("system: %v", err)
	}
	paced := sim.NewPaced(k, *pace)

	// Causal why-late engine: attributes every chain's publish→deliver
	// latency to typed causes, feeds canec_why_* metrics, /why on the
	// admin plane and the root-cause line on SLO breach post-mortems.
	var why *causal.Analyzer
	if *whyOn {
		bounds, err := causal.ParseLateOver(*whyLate)
		if err != nil {
			return die("-why-late-over: %v", err)
		}
		why = causal.New(causal.Config{
			Registry: sys.Obs.Registry(), LateOver: bounds, KeepRecent: 16,
		})
		sys.Obs.AttachCausal(why)
	}

	// Kernel profiler: stage-level wall-clock attribution for the whole
	// publish→deliver chain, served at /profile and folded into /metrics.
	var prof *perf.Profiler
	if *profile {
		prof = &perf.Profiler{}
		prof.AttachKernel(k)
		prof.SetBusySource(func() sim.Duration { return sys.Bus.Stats().BusyTime })
		if reg := sys.Obs.Registry(); reg != nil {
			prof.Register(reg)
		}
	}

	// Demo closed loop: a PID-controlled double integrator whose sensor
	// and command frames ride SRT channels between stations 0 and 1. Its
	// live QoC is served at /control and its cost feeds the control-cost
	// SLO objective when -slo-control-budget is set.
	var loops []*control.Loop
	if *ctlDemo {
		l, err := control.NewLoop(control.LoopConfig{
			Name: "demo", Plant: control.PlantDoubleIntegrator, Controller: control.ControllerPID,
			Class: core.SRT, Sensor: 0, ControllerNode: 1, Actuator: 0,
			SensorSubject: 0x7C0, CommandSubject: 0x7C1,
			Period: 5 * sim.Millisecond, Setpoint: 0, Initial: 1,
		}, sys.Obs)
		if err != nil {
			return die("control loop: %v", err)
		}
		ctlEnd := sys.Cfg.Epoch + sim.Time(2*dur.Nanoseconds())
		if err := l.Install(k, sys.Cfg.Epoch, ctlEnd, func(n int) *core.Middleware {
			return sys.Node(n).MW
		}, nil); err != nil {
			return die("control loop: %v", err)
		}
		loops = append(loops, l)
	}

	cfg := relay.Config{
		Segment:        *segment,
		HeartbeatEvery: *hb,
		Seed:           *seed,
	}
	var verboseTrace func(relay.Event)
	if *verbose {
		verboseTrace = func(e relay.Event) {
			fmt.Fprintf(os.Stderr, "canecd[%s]: relay %s peer=%s %s\n", *segment, e.Kind, e.Peer, e.Detail)
		}
	}
	// Each link's trace stream feeds the observability plane from its
	// bridge station (top stations, one per link, assigned below).
	linkCfg := func(i int) relay.Config {
		c := cfg
		c.Trace = relay.ObserveTrace(paced, sys.Obs, *nodes-1-i, verboseTrace)
		return c
	}

	var links []relay.Link
	var relayRows []func() admin.RelayRow
	for _, addr := range listens {
		srv, err := relay.Serve(addr, linkCfg(len(links)))
		if err != nil {
			return die("listen %s: %v", addr, err)
		}
		defer srv.Close()
		fmt.Printf("canecd[%s]: listening on %s\n", *segment, srv.Addr())
		links = append(links, srv)
		name := "listen " + srv.Addr().String()
		relayRows = append(relayRows, func() admin.RelayRow {
			return admin.LinkRow(name, "listen", srv.Peers() > 0, srv.Peers(),
				srv.Counters(), srv.Depths)
		})
	}
	for _, addr := range uplinks {
		up := relay.Dial(addr, linkCfg(len(links)))
		defer up.Close()
		fmt.Printf("canecd[%s]: uplink to %s\n", *segment, addr)
		links = append(links, up)
		name := "uplink " + addr
		relayRows = append(relayRows, func() admin.RelayRow {
			return admin.LinkRow(name, "uplink", up.Connected(), 0,
				up.Counters(), up.Depths)
		})
	}

	// One bridge per link, hosted on the segment's top stations; siblings
	// linked so transit traffic keeps origin, hops and budget.
	var bridges []*gateway.RemoteBridge
	for i, l := range links {
		station := *nodes - 1 - i
		b, err := gateway.NewRemote(sys.Node(station).MW, relay.NewPort(paced, l), *segment)
		if err != nil {
			return die("bridge on station %d: %v", station, err)
		}
		bridges = append(bridges, b)
	}
	for i, b := range bridges {
		b.LinkSiblings(bridges[i+1:]...)
	}
	for _, s := range splitList(*subs) {
		subj, err := parseSubject(s)
		if err != nil {
			return die("-sub: %v", err)
		}
		for _, l := range links {
			if err := l.Subscribe(subj, nil, nil); err != nil {
				return die("subscribe %s: %v", s, err)
			}
		}
	}
	for _, c := range fwd {
		for _, b := range bridges {
			if err := b.Forward(c.class, c.subject, core.ChannelAttrs{}); err != nil {
				return die("forward %v:%#x: %v", c.class, c.subject, err)
			}
		}
	}
	for _, c := range ann {
		for _, b := range bridges {
			if err := b.Announce(c.class, c.subject, core.ChannelAttrs{}); err != nil {
				return die("announce %v:%#x: %v", c.class, c.subject, err)
			}
		}
	}

	// Admin introspection plane: kernel-owned state is snapshotted via
	// paced.Call so HTTP handlers never race the simulation.
	var ctlRows func() []admin.ControlRow
	if len(loops) > 0 {
		ctlRows = admin.LoopRows(loops)
	}
	if *adminAddr != "" {
		adm, err := admin.Serve(*adminAddr, admin.Options{
			Segment:    *segment,
			Registry:   sys.Obs.Registry(),
			Observer:   sys.Obs,
			SLO:        sys.SLO,
			Now:        k.Now,
			Channels:   admin.SystemChannels(sys),
			ErrorState: admin.SystemErrorState(sys),
			Profiler:   prof,
			Why:        admin.SystemWhy(why),
			InKernel:   paced.Call,
			Control:    ctlRows,
			Relay: func() []admin.RelayRow {
				rows := make([]admin.RelayRow, 0, len(relayRows))
				for _, fn := range relayRows {
					rows = append(rows, fn())
				}
				return rows
			},
		})
		if err != nil {
			return die("admin: %v", err)
		}
		defer adm.Close()
		fmt.Printf("canecd[%s]: admin on %s\n", *segment, adm.Addr())
	}

	// Demo expectation: node 1 subscribes and counts deliveries.
	var delivered atomic.Uint64
	var originBad atomic.Uint64
	var expectSubj binding.Subject
	expectCount := uint64(0)
	var lastTraceID atomic.Uint64
	if *expect != "" {
		f := strings.SplitN(*expect, ":", 2)
		if len(f) != 2 {
			return die("-expect: want subject:count")
		}
		if expectSubj, err = parseSubject(f[0]); err != nil {
			return die("-expect: %v", err)
		}
		if expectCount, err = strconv.ParseUint(f[1], 0, 64); err != nil {
			return die("-expect count: %v", err)
		}
		class := core.SRT
		for _, c := range ann {
			if c.subject == expectSubj {
				class = c.class
			}
		}
		handler := func(ev core.Event, _ core.DeliveryInfo) {
			if *expOrigin != 0 && ev.TraceID()>>32 != *expOrigin {
				originBad.Add(1)
			}
			lastTraceID.Store(ev.TraceID())
			delivered.Add(1)
		}
		if err := subscribeClass(sys.Node(1).MW, class, expectSubj, handler); err != nil {
			return die("-expect subscribe: %v", err)
		}
	}

	// Demo publisher on node 0.
	var pubCh func(payload []byte)
	pubCount := uint64(0)
	pubPeriod := time.Duration(0)
	if *publish != "" {
		f := strings.Split(*publish, ":")
		if len(f) != 4 {
			return die("-publish: want class:subject:count:period")
		}
		class, err := parseClass(f[0])
		if err != nil {
			return die("-publish: %v", err)
		}
		subj, err := parseSubject(f[1])
		if err != nil {
			return die("-publish: %v", err)
		}
		if pubCount, err = strconv.ParseUint(f[2], 0, 64); err != nil {
			return die("-publish count: %v", err)
		}
		if pubPeriod, err = time.ParseDuration(f[3]); err != nil {
			return die("-publish period: %v", err)
		}
		mw := sys.Node(0).MW
		switch class {
		case core.SRT:
			ch, err := mw.SRTEC(subj)
			if err != nil {
				return die("-publish: %v", err)
			}
			if err := ch.Announce(core.ChannelAttrs{}, nil); err != nil {
				return die("-publish announce: %v", err)
			}
			pubCh = func(p []byte) {
				now := mw.LocalTime()
				ch.Publish(core.Event{Subject: subj, Payload: p,
					Attrs: core.EventAttrs{
						Deadline:   now + 10*sim.Millisecond,
						Expiration: now + 50*sim.Millisecond,
					}})
			}
		case core.NRT:
			ch, err := mw.NRTEC(subj)
			if err != nil {
				return die("-publish: %v", err)
			}
			if err := ch.Announce(core.ChannelAttrs{}, nil); err != nil {
				return die("-publish announce: %v", err)
			}
			pubCh = func(p []byte) { ch.Publish(core.Event{Subject: subj, Payload: p}) }
		default:
			return die("-publish: demo publisher supports srt and nrt")
		}
	}

	// Settle bindings deterministically, then hand the kernel to the pacer.
	sys.K.Run(100 * sim.Millisecond)
	pacerDone := make(chan struct{})
	go func() {
		defer close(pacerDone)
		paced.Run(sim.Time(1<<62) - 1)
	}()
	defer func() {
		paced.Stop()
		<-pacerDone
	}()

	deadline := time.Now().Add(*dur)
	// Publisher: wait for a link, then emit pubCount events.
	if pubCh != nil {
		for time.Now().Before(deadline) && !anyLinkUp(links) {
			time.Sleep(5 * time.Millisecond)
		}
		for i := uint64(0); i < pubCount; i++ {
			paced.Call(func() { pubCh([]byte{byte(i), 0xEC}) })
			time.Sleep(pubPeriod)
		}
		fmt.Printf("canecd[%s]: published %d events\n", *segment, pubCount)
	}

	// Expectation: poll until met or the wall limit expires.
	if expectCount > 0 {
		for time.Now().Before(deadline) && delivered.Load() < expectCount {
			time.Sleep(5 * time.Millisecond)
		}
		if got := delivered.Load(); got < expectCount {
			return die("expected %d deliveries on %#x, got %d", expectCount, expectSubj, got)
		}
		if originBad.Load() > 0 {
			return die("%d deliveries carried trace IDs outside origin base %d", originBad.Load(), *expOrigin)
		}
		if !traceContinuous(paced, sys, lastTraceID.Load()) {
			return die("delivered trace %#x has no relay_rx record: trace not continuous", lastTraceID.Load())
		}
		fmt.Printf("canecd[%s]: expect met: %d deliveries on %#x, trace continuity ok (id=%#x)\n",
			*segment, delivered.Load(), expectSubj, lastTraceID.Load())
		return 0
	}

	// Pure relay / publisher process: idle until the wall limit.
	if pubCh == nil {
		time.Sleep(time.Until(deadline))
	} else {
		// Give the egress queue a moment to drain before exiting.
		time.Sleep(200 * time.Millisecond)
	}
	return 0
}

// subscribeClass wires a delivery handler on one class/subject pair.
func subscribeClass(mw *core.Middleware, class core.Class, subj binding.Subject,
	h func(core.Event, core.DeliveryInfo)) error {
	switch class {
	case core.SRT:
		ch, err := mw.SRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{}, h, nil)
	case core.NRT:
		ch, err := mw.NRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{}, h, nil)
	case core.HRT:
		ch, err := mw.HRTEC(subj)
		if err != nil {
			return err
		}
		return ch.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{}, h, nil)
	}
	return fmt.Errorf("unknown class %v", class)
}

// anyLinkUp reports whether any relay link has a live peer.
func anyLinkUp(links []relay.Link) bool {
	for _, l := range links {
		if l.Counters().LinkUps() > l.Counters().LinkDowns() {
			return true
		}
	}
	return false
}

// traceContinuous checks, in kernel context, that the delivered trace ID
// carries a relay_rx record on this segment — i.e. the local trace chain
// links back to the remote origin rather than starting fresh here.
func traceContinuous(paced *sim.Paced, sys *core.System, id uint64) bool {
	if id == 0 {
		return false
	}
	ok := false
	paced.Call(func() {
		for _, r := range sys.Obs.Records() {
			if r.ID == id && r.Stage == obs.StageRelayRx {
				ok = true
				return
			}
		}
	})
	return ok
}
