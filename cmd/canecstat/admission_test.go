package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/prob"
	"canec/internal/sim"
)

// admissionAdmin builds a system with the probabilistic admission
// controller, drives one admitted and one rejected announce, and serves
// the result on an admin plane.
func admissionAdmin(t *testing.T) *admin.Server {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Seed: 1,
		Observe: &obs.Config{Metrics: true},
		Admission: &prob.AdmissionConfig{
			Targets:  prob.ClassTargets{SRT: 0.05},
			Analyzer: prob.Analyzer{Model: prob.ErrorModel{ErrorRate: 0.1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := sys.Node(0).MW.SRTEC(0x61)
	if err := ok.Announce(core.ChannelAttrs{Period: 5 * sim.Millisecond,
		RelDeadline: 3 * sim.Millisecond}, nil); err != nil {
		t.Fatal(err)
	}
	tight, _ := sys.Node(1).MW.SRTEC(0x62)
	if err := tight.Announce(core.ChannelAttrs{Period: 5 * sim.Millisecond,
		RelDeadline: 100 * sim.Microsecond}, nil); err == nil {
		t.Fatal("tight channel unexpectedly admitted")
	}
	sys.Run(10 * sim.Millisecond)

	srv, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment:   "admit",
		Registry:  sys.Obs.Registry(),
		Observer:  sys.Obs,
		Now:       sys.K.Now,
		Admission: admin.SystemAdmission(sys),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestAdmissionColumnAndExposition is the golden path for the admission
// observability series: canec_admission_total must survive the strict
// Prometheus exposition check, /admission must carry the controller
// snapshot, and the fleet table must render the decision totals in the
// ADMIT column.
func TestAdmissionColumnAndExposition(t *testing.T) {
	srv := admissionAdmin(t)
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, true)
	if len(targets) != 1 || targets[0].err != nil {
		t.Fatalf("poll: %+v", targets)
	}
	tg := targets[0]
	if tg.promErr != nil {
		t.Fatalf("admission metrics break exposition: %v", tg.promErr)
	}
	if !tg.admission.Enabled {
		t.Fatal("/admission snapshot not enabled")
	}
	if tg.admission.AdmittedTotal != 1 || tg.admission.RejectedTotal != 1 {
		t.Fatalf("admission totals: %+v", tg.admission.Snapshot)
	}
	if tg.admission.Rejected["miss-probability"] != 1 {
		t.Fatalf("typed rejection counts: %+v", tg.admission.Rejected)
	}
	if len(tg.admission.Admitted) != 1 || tg.admission.Admitted[0].MissProb <= 0 {
		t.Fatalf("admitted rows: %+v", tg.admission.Admitted)
	}

	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE canec_admission_total") {
		t.Fatalf("exposition missing canec_admission_total:\n%s", text)
	}
	for _, sample := range []string{
		`canec_admission_total{class="SRT",decision="admitted",reason="none"} 1`,
		`canec_admission_total{class="SRT",decision="rejected",reason="miss-probability"} 1`,
	} {
		if !strings.Contains(text, sample) {
			t.Fatalf("exposition missing sample %q:\n%s", sample, text)
		}
	}

	var b strings.Builder
	render(&b, targets)
	out := b.String()
	if !strings.Contains(out, "ADMIT") {
		t.Fatalf("header missing ADMIT column:\n%s", out)
	}
	if !strings.Contains(out, "1/1/0") {
		t.Fatalf("ADMIT column not rendered from snapshot totals:\n%s", out)
	}
}

// TestAdmissionColumnQuiet: a daemon with no admission controller still
// renders a full row with a dashed ADMIT column.
func TestAdmissionColumnQuiet(t *testing.T) {
	srv, err := admin.Serve("127.0.0.1:0", admin.Options{Segment: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, false)
	if len(targets) != 1 || targets[0].err != nil {
		t.Fatalf("poll: %+v", targets)
	}
	if targets[0].admission.Enabled {
		t.Fatal("admission reported enabled without a controller")
	}
	var b strings.Builder
	render(&b, targets)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "plain") && !strings.Contains(line, "-") {
			t.Fatalf("quiet row missing dashed ADMIT column:\n%s", line)
		}
	}
}
