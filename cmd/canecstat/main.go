// canecstat polls the admin endpoints of every canecd in a federation
// and renders one fleet table: per-segment health, SLO burn state,
// relay queue depths, uplink liveness, trace-continuity status and —
// for daemons running the kernel profiler — live performance counters
// (events/s, event-heap high-water, allocations per delivered frame).
//
//	canecstat -once 127.0.0.1:9441 127.0.0.1:9442
//	canecstat -interval 2s host-a:9441 host-b:9441
//
// Exit code (with -once): 0 all segments healthy, 1 at least one SLO
// breach, 2 at least one target unreachable or (with -validate-metrics)
// serving a malformed exposition.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"canec/internal/obs/admin"
	"canec/internal/obs/causal"
)

func main() { os.Exit(run()) }

func die(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "canecstat: "+format+"\n", args...)
	return 2
}

// target is one daemon's polled state for a table row.
type target struct {
	addr string

	err       error
	health    admin.Health
	slo       admin.SLOView
	relay     []admin.RelayRow
	profile   admin.ProfileView
	admission admin.AdmissionView
	control   admin.ControlView
	why       admin.WhyView
	validated bool
	promErr   error
}

func run() int {
	var (
		once     = flag.Bool("once", false, "poll once, print the table, exit with fleet status")
		interval = flag.Duration("interval", 2*time.Second, "poll period when watching")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
		validate = flag.Bool("validate-metrics", false, "fetch /metrics from every target and strictly validate the Prometheus text exposition")
	)
	flag.Parse()
	addrs := flag.Args()
	if len(addrs) == 0 {
		return die("usage: canecstat [-once] [-interval d] [-validate-metrics] host:port...")
	}
	client := &http.Client{Timeout: *timeout}
	for {
		targets := poll(client, addrs, *validate)
		render(os.Stdout, targets)
		if *once {
			return fleetStatus(targets)
		}
		time.Sleep(*interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// /healthz answers 503 in breach with the same JSON body; any other
	// non-2xx/503 status is a real error.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

func poll(client *http.Client, addrs []string, validate bool) []*target {
	out := make([]*target, len(addrs))
	for i, addr := range addrs {
		tg := &target{addr: addr}
		out[i] = tg
		base := "http://" + addr
		if err := getJSON(client, base+"/healthz", &tg.health); err != nil {
			tg.err = err
			continue
		}
		if err := getJSON(client, base+"/slo", &tg.slo); err != nil {
			tg.err = err
			continue
		}
		if err := getJSON(client, base+"/relay", &tg.relay); err != nil {
			tg.err = err
			continue
		}
		// /profile is newer than the rest of the plane: a daemon without
		// it (404) or without a profiler (enabled:false) still renders a
		// full row, just with dashed perf columns.
		if err := getJSON(client, base+"/profile", &tg.profile); err != nil {
			tg.profile = admin.ProfileView{}
		}
		// /admission is newer still: a 404 or a daemon without an
		// admission controller (enabled:false) dashes the ADMIT column.
		if err := getJSON(client, base+"/admission", &tg.admission); err != nil {
			tg.admission = admin.AdmissionView{}
		}
		// /control likewise: a 404 or a daemon without closed-loop
		// workloads (enabled:false) dashes the QOC column.
		if err := getJSON(client, base+"/control", &tg.control); err != nil {
			tg.control = admin.ControlView{}
		}
		// /why likewise: a 404 or a daemon without the why-late engine
		// (enabled:false) dashes the TOPCAUSE column.
		if err := getJSON(client, base+"/why", &tg.why); err != nil {
			tg.why = admin.WhyView{}
		}
		if validate {
			tg.validated = true
			tg.promErr = validateMetrics(client, base+"/metrics")
		}
	}
	return out
}

func findObjective(tg *target, name string) (short, long float64, breached, ok bool) {
	for _, ob := range tg.slo.Objectives {
		if ob.Name == name {
			return ob.Short, ob.Long, ob.Breached, true
		}
	}
	return 0, 0, false, false
}

// traceStatus checks fleet-wide trace continuity: every segment must
// run a distinct, nonzero trace base, or cross-segment trace IDs
// collide and post-mortem merges lie.
func traceStatus(targets []*target) map[*target]string {
	seen := map[uint64][]*target{}
	for _, tg := range targets {
		if tg.err == nil {
			seen[tg.health.TraceBase] = append(seen[tg.health.TraceBase], tg)
		}
	}
	out := map[*target]string{}
	for base, tgs := range seen {
		st := fmt.Sprintf("base %#x", base)
		switch {
		case base == 0:
			st = "NO BASE"
		case len(tgs) > 1:
			st = fmt.Sprintf("DUP %#x", base)
		}
		for _, tg := range tgs {
			out[tg] = st
		}
	}
	return out
}

func render(w io.Writer, targets []*target) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SEGMENT\tADDR\tHEALTH\tERRST\tSRT MISS (s/l)\tADMIT\tQOC\tTOPCAUSE\tBREACHED\tLINKS\tQ(H/S/N)\tDROPS\tEV/S\tHEAP HW\tALLOC/FR\tTRACE\tMETRICS")
	traces := traceStatus(targets)
	for _, tg := range targets {
		if tg.err != nil {
			fmt.Fprintf(tw, "?\t%s\tUNREACHABLE\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t-\t%v\n", tg.addr, tg.err)
			continue
		}
		var breached []string
		for _, ob := range tg.slo.Objectives {
			if ob.Breached {
				breached = append(breached, ob.Name)
			}
		}
		breachCol := "-"
		if len(breached) > 0 {
			breachCol = strings.Join(breached, ",")
		}
		missCol := "-"
		if s, l, _, ok := findObjective(tg, "srt-miss-rate"); ok {
			missCol = fmt.Sprintf("%.3f/%.3f", s, l)
		}
		var h, sq, n int
		var drops uint64
		up := 0
		for _, r := range tg.relay {
			h += r.DepthHRT
			sq += r.DepthSRT
			n += r.DepthNRT
			drops += r.Dropped
			if r.Connected {
				up++
			}
		}
		// Admission summary: admitted/rejected/shed decision totals for
		// segments running the probabilistic admission controller.
		admitCol := "-"
		if tg.admission.Enabled {
			admitCol = fmt.Sprintf("%d/%d/%d", tg.admission.AdmittedTotal,
				tg.admission.RejectedTotal, tg.admission.ShedTotal)
		}
		// Quality-of-control summary for segments running closed-loop
		// workloads: settled/total loops and the summed cost burn rate.
		qocCol := "-"
		if tg.control.Enabled && len(tg.control.Loops) > 0 {
			settled := 0
			var rate float64
			for _, l := range tg.control.Loops {
				if l.Settled {
					settled++
				}
				rate += l.CostPerSec
			}
			qocCol = fmt.Sprintf("%d/%d %.2f/s", settled, len(tg.control.Loops), rate)
		}
		// Dominant root cause of late/dropped chains for segments running
		// the why-late engine ("none" when nothing was late yet).
		whyCol := "-"
		if tg.why.Enabled {
			whyCol = topCauseCol(tg.why)
		}
		evCol, heapCol, allocCol := "-", "-", "-"
		if tg.profile.Enabled {
			evCol = fmt.Sprintf("%.0f", tg.profile.Profile.EventsPerSec)
			heapCol = strconv.Itoa(tg.profile.Profile.HeapHighWater)
			allocCol = fmt.Sprintf("%.1f", tg.profile.Profile.AllocsPerDelivered)
		}
		metricsCol := "-"
		if tg.validated {
			metricsCol = "ok"
			if tg.promErr != nil {
				metricsCol = "INVALID: " + tg.promErr.Error()
			}
		}
		// Fault-confinement summary: controllers currently error-passive /
		// bus-off, plus the segment's cumulative bus-off entries.
		errstCol := "ok"
		if tg.health.ErrorPassive > 0 || tg.health.BusOff > 0 || tg.health.BusOffTotal > 0 {
			errstCol = fmt.Sprintf("%dp/%db/%dt", tg.health.ErrorPassive, tg.health.BusOff, tg.health.BusOffTotal)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d/%d\t%d/%d/%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			tg.health.Segment, tg.addr, strings.ToUpper(tg.health.Status), errstCol,
			missCol, admitCol, qocCol, whyCol, breachCol, up, len(tg.relay), h, sq, n, drops,
			evCol, heapCol, allocCol, traces[tg], metricsCol)
	}
	tw.Flush()
}

// topCauseCol folds a /why snapshot into the TOPCAUSE cell: the cause
// topping the most late/dropped chains across classes (ties broken by
// attributed debit, then taxonomy order), with the incident count.
func topCauseCol(view admin.WhyView) string {
	counts := map[causal.Cause]uint64{}
	debits := map[causal.Cause]int64{}
	for _, cp := range view.Classes {
		for _, cs := range cp.Causes {
			counts[cs.Cause] += cs.Late
			debits[cs.Cause] += int64(cs.DebitNS)
		}
	}
	best := causal.CauseNone
	var bestN uint64
	for _, cause := range causal.Causes() {
		n := counts[cause]
		if n == 0 {
			continue
		}
		if n > bestN || (n == bestN && debits[cause] > debits[best]) {
			best, bestN = cause, n
		}
	}
	if bestN == 0 {
		return "none"
	}
	return fmt.Sprintf("%s×%d", best, bestN)
}

// fleetStatus folds the poll into the -once exit code.
func fleetStatus(targets []*target) int {
	code := 0
	for _, tg := range targets {
		switch {
		case tg.err != nil:
			fmt.Fprintf(os.Stderr, "canecstat: %s: %v\n", tg.addr, tg.err)
			return 2
		case tg.promErr != nil:
			fmt.Fprintf(os.Stderr, "canecstat: %s: invalid metrics: %v\n", tg.addr, tg.promErr)
			return 2
		case tg.health.Breached:
			code = 1
		}
	}
	return code
}

// --- strict Prometheus text-format (0.0.4) validation ---

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func validateMetrics(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return ValidateExposition(resp.Body)
}

// ValidateExposition strictly parses a Prometheus text exposition:
// well-formed HELP/TYPE comments, legal metric and label names, correct
// label-value escaping, parseable sample values (float, +Inf, -Inf,
// NaN) and optional integer timestamps.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func validateComment(line string, typed map[string]string) error {
	f := strings.SplitN(line, " ", 4)
	if len(f) < 3 || f[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch f[1] {
	case "HELP":
		if !metricNameRe.MatchString(f[2]) {
			return fmt.Errorf("HELP for illegal metric name %q", f[2])
		}
	case "TYPE":
		if !metricNameRe.MatchString(f[2]) {
			return fmt.Errorf("TYPE for illegal metric name %q", f[2])
		}
		if len(f) != 4 {
			return fmt.Errorf("TYPE %s missing type", f[2])
		}
		switch f[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", f[2], f[3])
		}
		if prev, dup := typed[f[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s (already %s)", f[2], prev)
		}
		typed[f[2]] = f[3]
	default:
		// Arbitrary comments are legal; nothing to check.
	}
	return nil
}

func validateSample(line string, typed map[string]string) error {
	name, rest, err := scanName(line)
	if err != nil {
		return err
	}
	if strings.HasPrefix(rest, "{") {
		if rest, err = scanLabels(rest); err != nil {
			return fmt.Errorf("metric %s: %w", name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("metric %s: want value [timestamp], got %q", name, rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("metric %s: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("metric %s: bad timestamp %q", name, fields[1])
		}
	}
	// A histogram's series names append _bucket/_sum/_count to the
	// family name in TYPE; accept those suffixes when matching.
	base := name
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(name, suf); ok {
			if _, isHist := typed[s]; isHist {
				base = s
			}
		}
	}
	if _, ok := typed[base]; !ok {
		return fmt.Errorf("metric %s has no preceding TYPE line", name)
	}
	return nil
}

// scanName splits the metric name off a sample line.
func scanName(line string) (name, rest string, err error) {
	end := strings.IndexAny(line, "{ ")
	if end < 0 {
		return "", "", fmt.Errorf("sample %q has no value", line)
	}
	name = line[:end]
	if !metricNameRe.MatchString(name) {
		return "", "", fmt.Errorf("illegal metric name %q", name)
	}
	return name, line[end:], nil
}

// scanLabels consumes a {name="value",...} label set, enforcing the
// exposition's escape rules inside quoted values (\\, \", \n only).
func scanLabels(s string) (rest string, err error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return "", fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return s[i+1:], nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return "", fmt.Errorf("label without '='")
		}
		lname := s[i : i+j]
		if !labelNameRe.MatchString(lname) {
			return "", fmt.Errorf("illegal label name %q", lname)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return "", fmt.Errorf("label %s: unquoted value", lname)
		}
		i++ // past opening quote
		for {
			if i >= len(s) {
				return "", fmt.Errorf("label %s: unterminated value", lname)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i += 2
				default:
					return "", fmt.Errorf("label %s: illegal escape \\%c", lname, s[i+1])
				}
			case '"':
				i++
				goto valueDone
			default:
				i++
			}
		}
	valueDone:
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
