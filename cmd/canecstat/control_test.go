package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/sim"
)

// controlAdmin runs one closed PID loop over SRT channels to completion
// and serves its QoC plus the canec_control_* metric series on an admin
// plane.
func controlAdmin(t *testing.T) *admin.Server {
	t.Helper()
	k := sim.NewKernel(5)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Kernel: k,
		Observe: &obs.Config{Metrics: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := control.NewLoop(control.LoopConfig{
		Name: "cart", Plant: control.PlantDoubleIntegrator, Controller: control.ControllerPID,
		Class: core.SRT, Sensor: 1, ControllerNode: 2, Actuator: 1,
		SensorSubject: 0x351, CommandSubject: 0x352, Period: 5 * sim.Millisecond,
		Setpoint: 0, Initial: 1,
	}, sys.Obs)
	if err != nil {
		t.Fatal(err)
	}
	end := sys.Cfg.Epoch + sim.Time(1200*sim.Millisecond)
	if err := l.Install(k, sys.Cfg.Epoch, end, func(n int) *core.Middleware {
		return sys.Node(n).MW
	}, nil); err != nil {
		t.Fatal(err)
	}
	sys.Run(end)

	srv, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment:  "ctl",
		Registry: sys.Obs.Registry(),
		Observer: sys.Obs,
		Now:      k.Now,
		Control:  admin.LoopRows([]*control.Loop{l}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestControlColumnAndExposition is the golden path for the closed-loop
// observability series: every canec_control_* metric must survive the
// strict Prometheus exposition check, /control must carry the QoC
// snapshot, and the fleet table must render it in the QOC column.
func TestControlColumnAndExposition(t *testing.T) {
	srv := controlAdmin(t)
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, true)
	if len(targets) != 1 || targets[0].err != nil {
		t.Fatalf("poll: %+v", targets)
	}
	tg := targets[0]
	if tg.promErr != nil {
		t.Fatalf("control metrics break exposition: %v", tg.promErr)
	}
	if !tg.control.Enabled || len(tg.control.Loops) != 1 {
		t.Fatalf("/control snapshot: %+v", tg.control)
	}
	row := tg.control.Loops[0]
	if row.Loop != "cart" || !row.Settled || row.Cost <= 0 {
		t.Fatalf("loop row: %+v", row)
	}

	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE canec_control_loop_stages_total counter",
		`canec_control_loop_stages_total{loop="cart",stage="ctrl_apply"}`,
		`canec_control_cost_total{loop="cart"}`,
		`canec_control_deviation{loop="cart"}`,
		`canec_control_loop_latency_microseconds_count{loop="cart"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	var b strings.Builder
	render(&b, targets)
	out := b.String()
	if !strings.Contains(out, "QOC") {
		t.Fatalf("header missing QOC column:\n%s", out)
	}
	if !strings.Contains(out, "1/1 ") {
		t.Fatalf("QOC column not rendered from loop snapshot:\n%s", out)
	}
}
