package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/obs/perf"
	"canec/internal/sim"
)

// profiledAdmin runs SRT traffic through a profiled system and serves it
// on an admin plane whose registry includes the profiler metrics.
func profiledAdmin(t *testing.T) *admin.Server {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Seed: 1, Observe: &obs.Config{Metrics: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	prof.SetBusySource(func() sim.Duration { return sys.Bus.Stats().BusyTime })
	prof.Register(sys.Obs.Registry())

	pub, _ := sys.Node(0).MW.SRTEC(0x41)
	pub.Announce(core.ChannelAttrs{}, nil)
	sub, _ := sys.Node(1).MW.SRTEC(0x41)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	for r := 0; r < 30; r++ {
		sys.K.At(sim.Time(r)*200*sim.Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: 0x41, Payload: []byte{1},
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
	}
	sys.Run(sim.Second)

	srv, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment:  "perf",
		Registry: sys.Obs.Registry(),
		Observer: sys.Obs,
		Now:      sys.K.Now,
		Profiler: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestFleetTableProfilerColumns polls a profiled daemon end to end: the
// fleet table must show live events/s, heap high-water and allocs/frame
// instead of dashes, and the profiler gauges must survive the strict
// Prometheus exposition check.
func TestFleetTableProfilerColumns(t *testing.T) {
	srv := profiledAdmin(t)
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, true)
	if len(targets) != 1 || targets[0].err != nil {
		t.Fatalf("poll: %+v", targets)
	}
	tg := targets[0]
	if !tg.profile.Enabled {
		t.Fatal("profiler not visible through /profile")
	}
	if tg.profile.Profile.Delivered != 30 {
		t.Fatalf("delivered: %d", tg.profile.Profile.Delivered)
	}
	// The registered profiler gauges went through the strict checker.
	if tg.promErr != nil {
		t.Fatalf("profiler metrics break exposition: %v", tg.promErr)
	}

	var b strings.Builder
	render(&b, targets)
	out := b.String()
	if !strings.Contains(out, "EV/S") || !strings.Contains(out, "ALLOC/FR") {
		t.Fatalf("header missing perf columns:\n%s", out)
	}
	// The row must carry real numbers in the perf columns: heap
	// high-water for this workload is well above zero.
	if tg.profile.Profile.HeapHighWater < 1 {
		t.Fatalf("heap high-water: %d", tg.profile.Profile.HeapHighWater)
	}
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "perf") {
			row = line
		}
	}
	if row == "" {
		t.Fatalf("no row for segment perf:\n%s", out)
	}
	// Dashes allowed: SRT MISS, ADMIT, QOC, TOPCAUSE and BREACHED have no
	// data in this minimal setup; the three perf columns must not add any
	// more.
	if strings.Count(row, "-") >= 6 {
		t.Fatalf("perf columns still dashed:\n%s", row)
	}
}

// TestFleetTableWithoutProfiler: a daemon with no profiler still renders
// a full row with dashed perf columns.
func TestFleetTableWithoutProfiler(t *testing.T) {
	srv, err := admin.Serve("127.0.0.1:0", admin.Options{Segment: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, false)
	if targets[0].err != nil {
		t.Fatalf("poll: %v", targets[0].err)
	}
	if targets[0].profile.Enabled {
		t.Fatal("phantom profiler")
	}
	var b strings.Builder
	render(&b, targets)
	if !strings.Contains(b.String(), "plain") {
		t.Fatalf("row missing:\n%s", b.String())
	}
}
