package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/sim"
)

// busOffAdmin drives node 0 into bus-off (a rate-1.0 targeted bit-error
// adversary against a non-single-shot sender walks the TEC 0 → 256 in one
// retransmission burst) and serves the aftermath on an admin plane.
// Auto-recovery is off so the controller is still bus-off at scrape time
// and the ERRST gauges carry live values.
func busOffAdmin(t *testing.T) *admin.Server {
	t.Helper()
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 3, Seed: 1, ConfineFaults: true,
		Observe: &obs.Config{Metrics: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Node(0).Ctrl.SetAutoRecover(false)
	sys.Bus.Injector = can.TargetedBitErrors{Victim: 0, Rate: 1, Prio: -1}

	pub, _ := sys.Node(0).MW.SRTEC(0x51)
	pub.Announce(core.ChannelAttrs{}, nil)
	sub, _ := sys.Node(1).MW.SRTEC(0x51)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	sys.K.At(0, func() {
		pub.Publish(core.Event{Subject: 0x51, Payload: []byte{1}})
	})
	sys.Run(100 * sim.Millisecond)

	if sys.Node(0).Ctrl.State() != can.BusOff {
		t.Fatalf("victim state: %v, want bus-off", sys.Node(0).Ctrl.State())
	}
	srv, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment:    "errst",
		Registry:   sys.Obs.Registry(),
		Observer:   sys.Obs,
		Now:        sys.K.Now,
		ErrorState: admin.SystemErrorState(sys),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestErrorStateColumnAndExposition is the golden path for the
// fault-confinement observability series: the canec_can_* gauges and the
// bus-off counter must survive the strict Prometheus exposition check,
// /healthz must summarize the confinement plane, and the fleet table must
// render it in the ERRST column.
func TestErrorStateColumnAndExposition(t *testing.T) {
	srv := busOffAdmin(t)
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, true)
	if len(targets) != 1 || targets[0].err != nil {
		t.Fatalf("poll: %+v", targets)
	}
	tg := targets[0]
	if tg.promErr != nil {
		t.Fatalf("confinement metrics break exposition: %v", tg.promErr)
	}
	if tg.health.BusOff != 1 || tg.health.BusOffTotal != 1 {
		t.Fatalf("health confinement summary: passive=%d busoff=%d total=%d",
			tg.health.ErrorPassive, tg.health.BusOff, tg.health.BusOffTotal)
	}

	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"canec_can_tec", "canec_can_rec", "canec_can_error_state", "canec_can_busoff_total",
	} {
		if !strings.Contains(text, "# TYPE "+series) {
			t.Fatalf("exposition missing %s:\n%s", series, text)
		}
	}
	// The bus-off victim's gauges: state 2 and one bus-off entry. The
	// bystanders' RECs carry the attack's receive-side ramp.
	for _, sample := range []string{
		`canec_can_error_state{node="0"} 2`,
		`canec_can_busoff_total{node="0"} 1`,
	} {
		if !strings.Contains(text, sample) {
			t.Fatalf("exposition missing sample %q:\n%s", sample, text)
		}
	}
	if !strings.Contains(text, `canec_can_rec{node="1"}`) {
		t.Fatalf("no REC gauge for bystander node 1:\n%s", text)
	}

	var b strings.Builder
	render(&b, targets)
	out := b.String()
	if !strings.Contains(out, "ERRST") {
		t.Fatalf("header missing ERRST column:\n%s", out)
	}
	if !strings.Contains(out, "0p/1b/1t") {
		t.Fatalf("ERRST column not rendered from health fields:\n%s", out)
	}
}

// TestErrorStateColumnQuiet: a daemon with no ErrorState hook (or a clean
// confinement plane) renders "ok" rather than inventing counts.
func TestErrorStateColumnQuiet(t *testing.T) {
	srv, err := admin.Serve("127.0.0.1:0", admin.Options{Segment: "quiet"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, false)
	if targets[0].err != nil {
		t.Fatalf("poll: %v", targets[0].err)
	}
	var b strings.Builder
	render(&b, targets)
	row := ""
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "quiet") {
			row = line
		}
	}
	if row == "" || !strings.Contains(row, "ok") {
		t.Fatalf("quiet plane should render ok in ERRST:\n%s", b.String())
	}
}
