package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/obs/causal"
	"canec/internal/sim"
)

// whyExpositionGolden is a hand-written canec_why_* exposition in strict
// Prometheus text 0.0.4 — the contract the why-late engine's registry
// output must satisfy. ValidateExposition accepting this pins the
// validator's coverage of the new families.
const whyExpositionGolden = `# HELP canec_why_chains_total Cause-attributed event chains finished by the why-late engine, by class and outcome.
# TYPE canec_why_chains_total counter
canec_why_chains_total{class="SRT",outcome="delivered"} 40
canec_why_chains_total{class="SRT",outcome="late"} 2
canec_why_chains_total{class="SRT",outcome="dropped"} 1
# HELP canec_why_debit_ns_total Latency attributed by the why-late engine, by class and cause, in virtual nanoseconds.
# TYPE canec_why_debit_ns_total counter
canec_why_debit_ns_total{class="SRT",cause="wire_tx"} 4.3e+06
canec_why_debit_ns_total{class="SRT",cause="error_retransmit"} 140000
# HELP canec_why_late_total Late or dropped chains by class and attributed top cause.
# TYPE canec_why_late_total counter
canec_why_late_total{class="SRT",cause="error_retransmit"} 2
canec_why_late_total{class="SRT",cause="busoff_recovery"} 1
# HELP canec_why_debit_microseconds Per-chain attributed debit by class and cause, in virtual microseconds (log buckets).
# TYPE canec_why_debit_microseconds histogram
canec_why_debit_microseconds_bucket{class="SRT",cause="error_retransmit",le="100"} 1
canec_why_debit_microseconds_bucket{class="SRT",cause="error_retransmit",le="+Inf"} 2
canec_why_debit_microseconds_sum{class="SRT",cause="error_retransmit"} 140
canec_why_debit_microseconds_count{class="SRT",cause="error_retransmit"} 2
`

func TestValidateExpositionWhyFamilies(t *testing.T) {
	if err := ValidateExposition(strings.NewReader(whyExpositionGolden)); err != nil {
		t.Fatalf("golden canec_why_* exposition rejected: %v", err)
	}
	// The histogram-suffix rule must not leak: a why series without its
	// TYPE line stays illegal.
	bad := `canec_why_late_total{class="SRT",cause="error_retransmit"} 2` + "\n"
	if err := ValidateExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("orphan canec_why_late_total accepted")
	}
}

// TestFleetTableTopCause polls a daemon running the why-late engine: the
// live /metrics exposition must validate strictly, and the fleet table
// must carry the attributed top cause in the TOPCAUSE column.
func TestFleetTableTopCause(t *testing.T) {
	reg := obs.NewRegistry()
	a := causal.New(causal.Config{Registry: reg,
		LateOver: map[string]sim.Duration{"SRT": 100_000}})
	for _, r := range []obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 10_000, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxErr, At: 50_000, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxStart, At: 80_000, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageTxOK, At: 180_000, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageRx, At: 180_000, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 190_000, Node: 1, Class: "SRT", Subject: 0x300},
	} {
		a.Add(r)
	}
	srv, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment:  "why",
		Registry: reg,
		Why:      admin.SystemWhy(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 2 * time.Second}
	targets := poll(client, []string{srv.Addr()}, true)
	tg := targets[0]
	if tg.err != nil {
		t.Fatalf("poll: %v", tg.err)
	}
	if tg.promErr != nil {
		t.Fatalf("live canec_why_* exposition invalid: %v", tg.promErr)
	}
	if !tg.why.Enabled {
		t.Fatal("/why not surfaced")
	}
	var b strings.Builder
	render(&b, targets)
	out := b.String()
	if !strings.Contains(out, "TOPCAUSE") {
		t.Fatalf("header missing TOPCAUSE:\n%s", out)
	}
	if !strings.Contains(out, "error_retransmit×1") {
		t.Fatalf("row missing attributed top cause:\n%s", out)
	}
}
