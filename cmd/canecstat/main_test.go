package main

import (
	"strings"
	"testing"
)

func TestValidateExpositionAcceptsWellFormed(t *testing.T) {
	good := `# HELP canec_events_published_total Events published, by class.
# TYPE canec_events_published_total counter
canec_events_published_total{class="SRT"} 42
canec_events_published_total{class="NRT",subject="0x2a"} 7 1690000000000
# TYPE canec_up gauge
canec_up 1
# TYPE canec_lat histogram
canec_lat_bucket{le="1"} 1
canec_lat_bucket{le="+Inf"} 2
canec_lat_sum 3.5
canec_lat_count 2
# TYPE weird untyped
weird{path="a\\b",msg="say \"hi\"\n"} NaN
`
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "# TYPE 9bad counter\n9bad 1\n",
		"missing TYPE":     "lonely_metric 1\n",
		"bad value":        "# TYPE m counter\nm{a=\"x\"} notanumber\n",
		"bad label name":   "# TYPE m counter\nm{9a=\"x\"} 1\n",
		"unquoted value":   "# TYPE m counter\nm{a=x} 1\n",
		"illegal escape":   "# TYPE m counter\nm{a=\"x\\t\"} 1\n",
		"unterminated":     "# TYPE m counter\nm{a=\"x} 1\n",
		"unknown type":     "# TYPE m speedometer\nm 1\n",
		"duplicate TYPE":   "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"bad timestamp":    "# TYPE m counter\nm 1 soon\n",
		"value missing":    "# TYPE m counter\nm\n",
		"malformed TYPE":   "# TYPE m\nm 1\n",
		"dangling escape":  "# TYPE m counter\nm{a=\"x\\\n",
		"label without =":  "# TYPE m counter\nm{abc} 1\n",
		"histogram orphan": "orphan_bucket{le=\"1\"} 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}
