// canecsim runs a single configurable mixed-traffic scenario on the
// simulated CAN segment and prints a summary: per-class counts, latency
// and jitter statistics, exception counts and bus utilization.
//
// Example:
//
//	canecsim -nodes 16 -hrt 4 -srt-load 0.6 -bulk 32768 -faults 0.01 -dur 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"canec"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/obs/causal"
	"canec/internal/scenario"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/trace"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "number of stations (2..127)")
		hrt      = flag.Int("hrt", 2, "number of periodic HRT channels (each gets a 10 ms slot)")
		srtLoad  = flag.Float64("srt-load", 0.4, "offered SRT utilization (0..1.5)")
		bulk     = flag.Int("bulk", 16384, "bytes of NRT bulk data to stream (0 disables)")
		faults   = flag.Float64("faults", 0, "per-frame consistent error probability")
		omission = flag.Int("omission", 1, "HRT omission degree k")
		nCtl     = flag.Int("control", 0, "number of closed PID control loops riding event channels (classes cycle SRT/HRT/NRT)")
		dur      = flag.Duration("dur", 2*time.Second, "simulated duration")
		seed     = flag.Uint64("seed", 1, "random seed")
		drift    = flag.Float64("drift", 100, "max clock drift (ppm)")
		traceN   = flag.Int("trace", 0, "dump the last N bus events candump-style")
		config   = flag.String("config", "", "run a JSON scenario file instead of the flag-driven mix")
		chaosCfg = flag.String("chaos", "", "JSON chaos script (crash/restart/burst/omission/babble/bit_error/busoff_attack campaign) applied to the -config scenario")
		hist     = flag.Bool("hist", false, "print latency distribution histograms")
		prom     = flag.String("prom", "", "write the run's metrics registry to this file (Prometheus text format)")
		adminOpt = flag.String("admin", "", "serve the admin introspection plane on this address during a -pace run (flag mode only)")
		pace     = flag.Float64("pace", 0, "throttle the run against the wall clock at this many virtual ns per wall ns (0 = free-running, deterministic)")
	)
	flag.Parse()
	if *chaosCfg != "" && *config == "" {
		fmt.Fprintln(os.Stderr, "canecsim: -chaos needs a -config scenario to inject faults into")
		os.Exit(1)
	}
	plane := obsPlane{promPath: *prom, adminAddr: *adminOpt}
	if *adminOpt != "" {
		if *config != "" {
			fmt.Fprintln(os.Stderr, "canecsim: -admin is not available with -config (use canecd to host long-running scenarios)")
			os.Exit(1)
		}
		if *pace <= 0 {
			fmt.Fprintln(os.Stderr, "canecsim: -admin needs -pace > 0 (a free-running simulation finishes before anything could poll it)")
			os.Exit(1)
		}
	}
	if *config != "" {
		if err := runConfig(*config, plane, *chaosCfg); err != nil {
			fmt.Fprintln(os.Stderr, "canecsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*nodes, *hrt, *srtLoad, *bulk, *faults, *omission, *nCtl, sim.Duration(dur.Nanoseconds()), *seed, *drift, *traceN, *hist, plane, *pace); err != nil {
		fmt.Fprintln(os.Stderr, "canecsim:", err)
		os.Exit(1)
	}
}

// obsPlane is the single plumbing path behind canecsim's metrics flags:
// -prom (write the registry to a file after the run) and -admin (serve
// the same registry live over HTTP during a paced run). Both share one
// obs.Config, so enabling either collects the same metric set.
type obsPlane struct {
	promPath  string
	adminAddr string
}

func (p obsPlane) config() *obs.Config {
	if p.promPath == "" && p.adminAddr == "" {
		return nil
	}
	return &obs.Config{Metrics: true}
}

// serve starts the admin plane over a paced run; the returned stop is
// safe to call unconditionally.
func (p obsPlane) serve(sys *canec.System, paced *sim.Paced, loops []*control.Loop) (stop func(), err error) {
	if p.adminAddr == "" {
		return func() {}, nil
	}
	var ctl func() []admin.ControlRow
	if len(loops) > 0 {
		ctl = admin.LoopRows(loops)
	}
	// A paced run with an admin plane gets the why-late engine for free:
	// /why and the canec_why_* families go live on the same registry.
	why, _ := sys.Obs.Causal().(*causal.Analyzer)
	if why == nil {
		why = causal.New(causal.Config{Registry: sys.Obs.Registry(), KeepRecent: 16})
		sys.Obs.AttachCausal(why)
	}
	adm, err := admin.Serve(p.adminAddr, admin.Options{
		Segment:    "canecsim",
		Registry:   sys.Obs.Registry(),
		Observer:   sys.Obs,
		SLO:        sys.SLO,
		Now:        sys.K.Now,
		Channels:   admin.SystemChannels(sys),
		ErrorState: admin.SystemErrorState(sys),
		Admission:  admin.SystemAdmission(sys),
		Control:    ctl,
		Why:        admin.SystemWhy(why),
		InKernel:   paced.Call,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("canecsim: admin on %s\n", adm.Addr())
	return func() { adm.Close() }, nil
}

// flush writes the -prom file, when requested, from the run's registry.
func (p obsPlane) flush(reg *obs.Registry) error {
	if p.promPath == "" {
		return nil
	}
	f, err := os.Create(p.promPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WriteText(f)
}

// runConfig loads and executes a declarative scenario file, optionally
// overlaying a chaos campaign script.
func runConfig(path string, plane obsPlane, chaosPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	if chaosPath != "" {
		cf, err := os.Open(chaosPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		var script chaos.Script
		dec := json.NewDecoder(cf)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&script); err != nil {
			return fmt.Errorf("chaos script %s: %w", chaosPath, err)
		}
		sc.Chaos = &script
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	if cfg := plane.config(); cfg != nil {
		sc.Observe = cfg
	}
	rep, err := sc.Run()
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if rep.Chaos != nil && len(rep.Chaos.Violations) > 0 {
		return fmt.Errorf("%d trace invariants violated", len(rep.Chaos.Violations))
	}
	return plane.flush(rep.Obs.Registry())
}

func run(nodes, nHRT int, srtLoad float64, bulkBytes int, faultRate float64,
	omission, nCtl int, dur sim.Duration, seed uint64, drift float64, traceN int, hist bool, plane obsPlane, pace float64) error {

	if nHRT >= nodes {
		return fmt.Errorf("need more nodes (%d) than HRT channels (%d)", nodes, nHRT)
	}
	calCfg := canec.DefaultCalendarConfig()
	calCfg.OmissionDegree = omission
	var slots []canec.Slot
	for i := 0; i < nHRT; i++ {
		slots = append(slots, canec.Slot{
			Subject: uint64(0x100 + i), Publisher: canec.TxNode(i), Payload: 8, Periodic: true,
		})
	}

	// Closed control loops: PID on a double integrator, classes cycling
	// SRT/HRT/NRT so one run contrasts the quality of control each class
	// delivers. HRT legs need calendar slots, planned with the rest.
	ctlClasses := []core.Class{core.SRT, core.HRT, core.NRT}
	var loopCfgs []control.LoopConfig
	for i := 0; i < nCtl; i++ {
		cfg := control.LoopConfig{
			Name:  fmt.Sprintf("loop%d", i),
			Plant: control.PlantDoubleIntegrator, Controller: control.ControllerPID,
			Class:  ctlClasses[i%len(ctlClasses)],
			Sensor: i % nodes, ControllerNode: (i + 1) % nodes, Actuator: i % nodes,
			SensorSubject: uint64(0x600 + 2*i), CommandSubject: uint64(0x601 + 2*i),
			Period: 10 * canec.Millisecond, Setpoint: 0, Initial: 1,
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		loopCfgs = append(loopCfgs, cfg)
		if cfg.Class == core.HRT {
			slots = append(slots,
				canec.Slot{Subject: cfg.SensorSubject, Publisher: canec.TxNode(cfg.Sensor), Payload: 8, Periodic: true},
				canec.Slot{Subject: cfg.CommandSubject, Publisher: canec.TxNode(cfg.ControllerNode), Payload: 5, Periodic: true})
		}
	}

	var cal *canec.Calendar
	if len(slots) > 0 {
		var err error
		cal, err = canec.PackCalendar(calCfg, 10*canec.Millisecond, slots...)
		if err != nil {
			return err
		}
	}
	observe := plane.config()
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: nodes, Seed: seed, Calendar: cal,
		Sync:             canec.DefaultSyncConfig(),
		MaxDriftPPM:      drift,
		MaxInitialOffset: 200 * canec.Microsecond,
		Observe:          observe,
	})
	if err != nil {
		return err
	}
	if faultRate > 0 {
		sys.Bus.Injector = can.RandomErrors{Rate: faultRate}
	}
	var ring *trace.Ring
	if traceN > 0 {
		ring = trace.NewRing(traceN)
		sys.Bus.Trace = ring.Hook(sys.Bus.Trace)
	}
	end := sys.Cfg.Epoch + dur

	// HRT channels with latency measurement via payload timestamps.
	hrtLat := stats.NewSeries("hrt")
	var firstTimes []sim.Time
	for i := 0; i < nHRT; i++ {
		i := i
		subj := canec.Subject(0x100 + i)
		ch, err := sys.Node(i).MW.HRTEC(subj)
		if err != nil {
			return err
		}
		if err := ch.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			return err
		}
		var loop func(r int64)
		loop = func(r int64) {
			local := sys.Cfg.Epoch + canec.Time(r)*cal.Round - 200*canec.Microsecond
			at := sys.Clocks[i].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				p := make([]byte, 7)
				putTS(p, sys.K.Now())
				ch.Publish(canec.Event{Subject: subj, Payload: p})
				loop(r + 1)
			})
		}
		loop(0)
		sub, err := sys.Node((i + 1) % nodes).MW.HRTEC(subj)
		if err != nil {
			return err
		}
		sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
			func(ev canec.Event, di canec.DeliveryInfo) {
				hrtLat.ObserveDuration(di.DeliveredAt - getTS(ev.Payload))
				if i == 0 {
					firstTimes = append(firstTimes, di.DeliveredAt)
				}
			}, nil)
	}

	// SRT: sporadic streams from every node to reach the offered load.
	srtLat := stats.NewSeries("srt")
	frame := can.BitTime(can.WorstCaseBits(8), can.DefaultBitRate)
	if srtLoad > 0 {
		period := sim.Duration(float64(frame) * float64(nodes) / srtLoad)
		for i := 0; i < nodes; i++ {
			i := i
			subj := canec.Subject(0x300 + i)
			ch, err := sys.Node(i).MW.SRTEC(subj)
			if err != nil {
				return err
			}
			ch.Announce(canec.ChannelAttrs{}, nil)
			sub, err := sys.Node((i + 2) % nodes).MW.SRTEC(subj)
			if err != nil {
				return err
			}
			sub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
				func(ev canec.Event, di canec.DeliveryInfo) {
					srtLat.ObserveDuration(di.DeliveredAt - getTS(ev.Payload))
				}, nil)
			var loop func()
			loop = func() {
				if sys.K.Now() >= end {
					return
				}
				now := sys.Node(i).MW.LocalTime()
				p := make([]byte, 8)
				putTS(p, sys.K.Now())
				ch.Publish(canec.Event{Subject: subj, Payload: p,
					Attrs: canec.EventAttrs{
						Deadline:   now + 10*canec.Millisecond,
						Expiration: now + 50*canec.Millisecond,
					}})
				sys.K.After(sys.K.RNG().ExpDuration(period), loop)
			}
			sys.K.At(sys.Cfg.Epoch, loop)
		}
	}

	// NRT bulk.
	nrtDone := 0
	if bulkBytes > 0 {
		bulkCh, err := sys.Node(nodes - 1).MW.NRTEC(0x500)
		if err != nil {
			return err
		}
		if err := bulkCh.Announce(canec.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
			return err
		}
		bsub, err := sys.Node(0).MW.NRTEC(0x500)
		if err != nil {
			return err
		}
		bsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
			func(ev canec.Event, _ canec.DeliveryInfo) { nrtDone += len(ev.Payload) }, nil)
		var feed func()
		feed = func() {
			if sys.K.Now() >= end {
				return
			}
			if bulkCh.QueuedChains() < 2 {
				bulkCh.Publish(canec.Event{Subject: 0x500, Payload: make([]byte, bulkBytes)})
			}
			sys.K.After(5*canec.Millisecond, feed)
		}
		sys.K.At(sys.Cfg.Epoch, feed)
	}

	// Closed control loops over real event channels.
	var loops []*control.Loop
	for _, cfg := range loopCfgs {
		l, err := control.NewLoop(cfg, sys.Obs)
		if err != nil {
			return err
		}
		if err := l.Install(sys.K, sys.Cfg.Epoch, end, func(n int) *core.Middleware {
			return sys.Node(n).MW
		}, nil); err != nil {
			return fmt.Errorf("control loop %s: %w", cfg.Name, err)
		}
		loops = append(loops, l)
	}

	if pace > 0 {
		// Paced mode: the same discrete-event run, throttled against the
		// wall clock (1.0 = real time). Opt-in; free-running stays default
		// so results remain bit-reproducible. The admin plane, when
		// requested, serves live state for the run's duration.
		paced := sim.NewPaced(sys.K, pace)
		stopAdmin, err := plane.serve(sys, paced, loops)
		if err != nil {
			return err
		}
		paced.Run(end)
		stopAdmin()
	} else {
		sys.Run(end)
	}

	c := sys.TotalCounters()
	fmt.Printf("simulated %v on a %d-node bus (seed %d, fault rate %.3f)\n",
		dur, nodes, seed, faultRate)
	fmt.Printf("\nclass  published  delivered  latency µs (mean/p99)  notes\n")
	if nHRT > 0 {
		jit := sim.Duration(0)
		if len(firstTimes) > 1 {
			jit = stats.PeriodJitter(firstTimes, cal.Round)
		}
		fmt.Printf("HRT    %-9d  %-9d  %s / %s            appJitter=%dµs late=%d missed=%d\n",
			c.PublishedHRT, c.DeliveredHRT,
			stats.Micros(hrtLat.Mean()), stats.Micros(hrtLat.Quantile(0.99)),
			jit.Micros(), c.LateHRTDeliveries, c.SlotMissed)
	}
	fmt.Printf("SRT    %-9d  %-9d  %s / %s            deadlineMissed=%d expired=%d promotions=%d\n",
		c.PublishedSRT, c.DeliveredSRT,
		stats.Micros(srtLat.Mean()), stats.Micros(srtLat.Quantile(0.99)),
		c.DeadlineMissed, c.Expired, c.PromotionsApplied)
	fmt.Printf("NRT    %-9d  %-9d  %d KiB transferred     fragErrors=%d\n",
		c.PublishedNRT, c.DeliveredNRT, nrtDone/1024, c.FragErrors)
	fmt.Printf("\nbus: utilization %.1f%%, %d frames ok, %d error frames, %d ID rewrites\n",
		100*sys.Utilization(), sys.Bus.Stats().FramesOK, sys.Bus.Stats().FramesError,
		sys.Bus.Stats().IDRewrites)
	fmt.Printf("redundancy: %d copies suppressed, %d redundant copies sent, %d duplicates dropped\n",
		c.CopiesSuppressed, c.RedundantCopiesSent, c.DuplicatesDropped)
	if len(loops) > 0 {
		fmt.Printf("\nquality of control:\n")
		for _, l := range loops {
			q := l.Report()
			fmt.Printf("  %s\n", q.String())
		}
	}
	if hist {
		h := stats.NewHistogram("SRT latency µs", 0, 2*srtLat.Quantile(0.99)/1000+1, 24)
		// Re-bin from the retained series (histograms are for display; the
		// exact series already holds the samples).
		for q := 0.0; q <= 1.0; q += 0.005 {
			h.Observe(srtLat.Quantile(q) / 1000)
		}
		fmt.Printf("\n%s", h.Render())
	}
	if ring != nil {
		fmt.Printf("\n-- last %d of %d bus events --\n", len(ring.Entries()), ring.Total())
		if err := ring.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return plane.flush(sys.Obs.Registry())
}

func putTS(dst []byte, t sim.Time) {
	v := uint64(t)
	for i := 0; i < 7; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getTS(src []byte) sim.Time {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return sim.Time(v)
}
