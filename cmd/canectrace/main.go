// canectrace runs a mixed-traffic scenario with the observability layer
// enabled and exports the event life cycle in one of three formats:
//
//	jsonl   one stage record per line (published, enqueued, tx_start, ...)
//	chrome  Chrome trace_event JSON for chrome://tracing or Perfetto,
//	        with one track per node and one per priority band
//	prom    Prometheus text exposition of the run's metrics registry
//
// Example:
//
//	canectrace -dur 200ms -format chrome -o trace.json
//	canectrace -config scenario.json -format prom
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"canec/internal/obs"
	"canec/internal/scenario"
	"canec/internal/sim"
)

func main() {
	var (
		config   = flag.String("config", "", "JSON scenario file (default: built-in mixed-traffic demo)")
		format   = flag.String("format", "jsonl", "export format: jsonl, chrome or prom")
		out      = flag.String("o", "-", "output path (- for stdout)")
		dur      = flag.Duration("dur", 200*time.Millisecond, "simulated duration of the built-in scenario")
		nodes    = flag.Int("nodes", 4, "node count of the built-in scenario")
		seed     = flag.Uint64("seed", 1, "random seed of the built-in scenario")
		faults   = flag.Float64("faults", 0, "per-frame error probability of the built-in scenario")
		traceCap = flag.Int("trace-cap", 0, "max retained stage records (0 = unlimited)")
		summary  = flag.Bool("summary", true, "print the scenario report to stderr")
	)
	flag.Parse()
	if err := run(*config, *format, *out, sim.Duration(dur.Nanoseconds()),
		*nodes, *seed, *faults, *traceCap, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "canectrace:", err)
		os.Exit(1)
	}
}

func run(config, format, out string, dur sim.Duration, nodes int,
	seed uint64, faults float64, traceCap int, summary bool) error {

	// Reject a bad format before spending time on the simulation.
	switch format {
	case "jsonl", "chrome", "prom":
	default:
		return fmt.Errorf("unknown format %q (want jsonl, chrome or prom)", format)
	}

	var sc *scenario.Scenario
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return err
		}
		sc, err = scenario.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		sc = builtin(dur, nodes, seed, faults)
	}
	cfg := obs.Default()
	cfg.TraceCap = traceCap
	sc.Observe = cfg

	rep, err := sc.Run()
	if err != nil {
		return err
	}
	if summary {
		fmt.Fprint(os.Stderr, rep.String())
		if d := rep.Obs.Tracer().Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d stage records dropped by -trace-cap %d\n", d, traceCap)
		}
	}

	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "chrome":
		return obs.WriteChromeTrace(w, rep.Obs.Records(), sc.Nodes)
	case "prom":
		return rep.Obs.Registry().WriteText(w)
	default:
		return obs.WriteJSONL(w, rep.Obs.Records())
	}
}

// builtin returns a small mixed-traffic scenario exercising all three
// channel classes, so the exported trace shows every life-cycle stage.
func builtin(dur sim.Duration, nodes int, seed uint64, faults float64) *scenario.Scenario {
	if nodes < 3 {
		nodes = 3
	}
	return &scenario.Scenario{
		Name:       "canectrace-builtin",
		Nodes:      nodes,
		Seed:       seed,
		DurationMs: int64(dur / sim.Millisecond),
		FaultRate:  faults,
		HRT: []scenario.HRTStream{
			{Subject: 0x100, Publisher: 0, Subscriber: 1, PeriodUs: 10000, Payload: 7},
		},
		SRT: []scenario.SRTStream{
			{Subject: 0x300, Publisher: 1, Subscriber: 2, MeanPeriodUs: 2000,
				DeadlineUs: 5000, ExpirationUs: 20000, Payload: 8, Sporadic: true},
			{Subject: 0x301, Publisher: 2, Subscriber: 0, MeanPeriodUs: 3000,
				DeadlineUs: 8000, Payload: 8, Sporadic: true},
		},
		NRT: []scenario.NRTBulk{
			{Subject: 0x500, Publisher: nodes - 1, Subscriber: 0, Bytes: 4096, RepeatMs: 20},
		},
	}
}
