package canec_test

// Runnable godoc examples for the public API. Each is deterministic
// (fixed seed, virtual time), so the outputs are exact.

import (
	"fmt"

	"canec"
)

// ExampleNewSystem builds the minimal hard real-time setup: one reserved
// slot, one publisher, one subscriber, delivery exactly at the deadline.
func ExampleNewSystem() {
	cal, _ := canec.PackCalendar(canec.DefaultCalendarConfig(), 10*canec.Millisecond,
		canec.Slot{Subject: 0x42, Publisher: 0, Payload: 8, Periodic: true})
	sys, _ := canec.NewSystem(canec.SystemConfig{
		Nodes: 2, Seed: 1, Calendar: cal, Epoch: canec.Millisecond,
	})
	pub, _ := sys.Node(0).MW.HRTEC(0x42)
	pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(0x42)
	sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, di canec.DeliveryInfo) {
			fmt.Printf("reading %d delivered at %v\n", ev.Payload[0], di.DeliveredAt)
		}, nil)
	sys.K.At(sys.Cfg.Epoch-100*canec.Microsecond, func() {
		pub.Publish(canec.Event{Subject: 0x42, Payload: []byte{21}})
	})
	sys.Run(sys.Cfg.Epoch + cal.Round - 1)
	// Output:
	// reading 21 delivered at 0.001503s
}

// ExamplePlanCalendar synthesises a schedule from stream requirements:
// the slower stream activates every other round.
func ExamplePlanCalendar() {
	cal, _ := canec.PlanCalendar(canec.DefaultCalendarConfig(), []canec.SlotRequest{
		{Subject: 1, Publisher: 0, Payload: 8, Period: 5 * canec.Millisecond},
		{Subject: 2, Publisher: 1, Payload: 8, Period: 10 * canec.Millisecond},
	})
	fmt.Println("round:", cal.Round)
	fmt.Println("subject 2 served every:", cal.AchievedPeriod(2))
	// Output:
	// round: 0.005000s
	// subject 2 served every: 0.010000s
}

// ExampleSRTEC publishes a soft real-time event with a transmission
// deadline and reads it back through the getEvent mailbox.
func ExampleSRTEC() {
	sys, _ := canec.NewSystem(canec.SystemConfig{Nodes: 2, Seed: 1})
	pub, _ := sys.Node(0).MW.SRTEC(0x99)
	pub.Announce(canec.ChannelAttrs{}, nil)
	sub, _ := sys.Node(1).MW.SRTEC(0x99)
	sub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{}, nil, nil)
	sys.K.At(canec.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		pub.Publish(canec.Event{Subject: 0x99, Payload: []byte{7},
			Attrs: canec.EventAttrs{Deadline: now + 5*canec.Millisecond}})
	})
	sys.Run(canec.Second)
	if ev, _, ok := sub.GetEvent(); ok {
		fmt.Println("mailbox holds payload:", ev.Payload[0])
	}
	// Output:
	// mailbox holds payload: 7
}

// ExampleExpirationFor derives the expiration attribute from a time-value
// function, as §2.2.2 suggests.
func ExampleExpirationFor() {
	deadline := canec.Time(100 * canec.Millisecond)
	fn := canec.LinearValue{Grace: 10 * canec.Millisecond}
	exp := canec.ExpirationFor(fn, deadline, 0.5, canec.Second)
	fmt.Println("drop after deadline +", (exp - deadline).Micros(), "µs")
	// Output:
	// drop after deadline + 5000 µs
}
