// Gateway: event channels spanning multiple networks (§2.2.1).
//
// Two CAN segments — a machine-room field bus and a supervision bus —
// share one simulated time base and are bridged by a gateway node. A
// temperature subject published on the field bus is forwarded to the
// supervision segment; a command subject flows the other way. A
// supervision-side subscriber demonstrates the paper's origin filtering:
// by excluding the gateway's node number it receives only events
// generated on its own segment, exactly the "only publishers in the same
// network" attribute of §2.2.1.
package main

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/sim"
)

func main() {
	const (
		temp binding.Subject = 0x701 // field → supervision
		cmd  binding.Subject = 0x702 // supervision → field
		stat binding.Subject = 0x703 // supervision-local status
	)

	k := sim.NewKernel(2026)
	field, err := core.NewSystem(core.SystemConfig{Nodes: 4, Kernel: k})
	if err != nil {
		panic(err)
	}
	super, err := core.NewSystem(core.SystemConfig{Nodes: 4, Kernel: k})
	if err != nil {
		panic(err)
	}
	// Gateway occupies node 3 on both segments; store-and-forward 100 µs.
	gw, err := gateway.New(field.Node(3).MW, super.Node(3).MW, 100*sim.Microsecond)
	if err != nil {
		panic(err)
	}
	if err := gw.ForwardSRT(temp, gateway.AtoB); err != nil {
		panic(err)
	}
	if err := gw.ForwardSRT(cmd, gateway.BtoA); err != nil {
		panic(err)
	}

	// Field-bus sensor publishes temperature every 5 ms.
	sensor, _ := field.Node(0).MW.SRTEC(temp)
	sensor.Announce(core.ChannelAttrs{}, nil)
	n := 0
	var sense func()
	sense = func() {
		if k.Now() > 500*sim.Millisecond {
			return
		}
		now := field.Node(0).MW.LocalTime()
		sensor.Publish(core.Event{Subject: temp, Payload: []byte{byte(20 + n%5)},
			Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		n++
		k.After(5*sim.Millisecond, sense)
	}
	k.At(0, sense)

	// Supervision console receives forwarded temperatures and issues a
	// command back whenever a reading exceeds the threshold.
	console, _ := super.Node(0).MW.SRTEC(temp)
	cmdPub, _ := super.Node(0).MW.SRTEC(cmd)
	cmdPub.Announce(core.ChannelAttrs{}, nil)
	tempsSeen, cmdsSent := 0, 0
	console.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(ev core.Event, di core.DeliveryInfo) {
			tempsSeen++
			if ev.Payload[0] >= 23 {
				now := super.Node(0).MW.LocalTime()
				cmdPub.Publish(core.Event{Subject: cmd, Payload: []byte{0xC0},
					Attrs: core.EventAttrs{Deadline: now + 10*sim.Millisecond}})
				cmdsSent++
			}
		}, nil)

	// Field actuator receives the commands.
	act, _ := field.Node(1).MW.SRTEC(cmd)
	cmdsGot := 0
	act.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { cmdsGot++ }, nil)

	// Supervision-local status traffic plus the origin-filtered view.
	statPub, _ := super.Node(1).MW.SRTEC(stat)
	statPub.Announce(core.ChannelAttrs{}, nil)
	var pulse func()
	statSent := 0
	pulse = func() {
		if k.Now() > 500*sim.Millisecond {
			return
		}
		now := super.Node(1).MW.LocalTime()
		statPub.Publish(core.Event{Subject: stat, Payload: []byte{0x57},
			Attrs: core.EventAttrs{Deadline: now + 20*sim.Millisecond}})
		statSent++
		k.After(25*sim.Millisecond, pulse)
	}
	k.At(0, pulse)

	gwNode := super.Node(3).Ctrl.Node()
	localOnly, everything := 0, 0
	// Node 2 subscribes twice conceptually; since one middleware holds one
	// channel state per subject, use the per-event origin check in a
	// single subscription for the "everything" count and the middleware
	// filter for the local-only count on different subjects.
	viewTemp, _ := super.Node(2).MW.SRTEC(temp)
	viewTemp.Subscribe(core.ChannelAttrs{},
		core.SubscribeAttrs{ExcludePublishers: []can.TxNode{gwNode}},
		func(core.Event, core.DeliveryInfo) { localOnly++ }, nil)
	viewStat, _ := super.Node(2).MW.SRTEC(stat)
	viewStat.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { everything++ }, nil)

	k.Run(600 * sim.Millisecond)

	fmt.Printf("field bus: %d temperature events published\n", n)
	fmt.Printf("gateway:   %d events forwarded across segments, %d dropped\n",
		gw.Forwarded(), gw.Dropped())
	fmt.Printf("supervision console: %d temperatures received, %d commands issued\n",
		tempsSeen, cmdsSent)
	fmt.Printf("field actuator: %d commands received (via gateway)\n", cmdsGot)
	fmt.Printf("origin filtering on supervision node 2:\n")
	fmt.Printf("  temp events excluding gateway origin: %d (all %d temps were remote ⇒ filtered out)\n",
		localOnly, tempsSeen)
	fmt.Printf("  local status events received:         %d of %d sent\n", everything, statSent)
	fmt.Printf("segment utilization: field %.1f%%, supervision %.1f%%\n",
		100*field.Utilization(), 100*super.Utilization())
}
