// Factory: soft real-time alarm traffic under transient overload.
//
// Thirty smart sensors on a production cell publish alarm events with
// 10 ms transmission deadlines and 25 ms validity. During normal
// operation (sporadic alarms) every deadline is met. Then a cascade
// trips: all sensors fire bursts simultaneously, the offered load exceeds
// the bus for ~100 ms, and the paper's SRT machinery becomes visible —
// EDF ordering by promoted priorities keeps misses as low as possible,
// deadline misses raise local exceptions for awareness, and events whose
// validity lapses are removed from the send queues entirely instead of
// wasting bandwidth on stale data.
package main

import (
	"fmt"

	"canec"
)

const (
	sensors = 30
	subBase = canec.Subject(0x600)
)

func main() {
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: sensors + 1, // +1: the cell controller (subscriber)
		Seed:  11,
	})
	if err != nil {
		panic(err)
	}
	monitor := sensors // controller node index

	type sensorStats struct {
		sent, missed, expired int
	}
	stats := make([]sensorStats, sensors)
	received := 0
	var worstLateness canec.Duration

	chans := make([]*canec.SRTEC, sensors)
	for i := 0; i < sensors; i++ {
		i := i
		ch, err := sys.Node(i).MW.SRTEC(subBase + canec.Subject(i))
		if err != nil {
			panic(err)
		}
		err = ch.Announce(canec.ChannelAttrs{}, func(e canec.Exception) {
			switch e.Kind {
			case canec.ExcDeadlineMissed:
				stats[i].missed++
			case canec.ExcValidityExpired:
				stats[i].expired++
			}
		})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
		sub, err := sys.Node(monitor).MW.SRTEC(subBase + canec.Subject(i))
		if err != nil {
			panic(err)
		}
		sub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
			func(ev canec.Event, di canec.DeliveryInfo) {
				received++
			}, nil)
	}

	alarm := func(i int) {
		now := sys.Node(i).MW.LocalTime()
		chans[i].Publish(canec.Event{
			Subject: subBase + canec.Subject(i),
			Payload: []byte{byte(i), 0xA1, 0, 0, 0, 0, 0, 0},
			Attrs: canec.EventAttrs{
				Deadline:   now + 10*canec.Millisecond,
				Expiration: now + 25*canec.Millisecond,
			},
		})
		stats[i].sent++
	}

	// Phase 1 (0–300 ms): sporadic alarms, mean one per sensor per 40 ms.
	for i := 0; i < sensors; i++ {
		i := i
		var loop func()
		loop = func() {
			if sys.K.Now() >= 300*canec.Millisecond {
				return
			}
			alarm(i)
			sys.K.After(sys.K.RNG().ExpDuration(40*canec.Millisecond), loop)
		}
		sys.K.At(canec.Duration(sys.K.RNG().Int63n(int64(40*canec.Millisecond))), loop)
	}

	// Phase 2 (300–400 ms): cascade — every sensor fires 10 alarms 1 ms
	// apart. Offered load: 30 sensors × 10 frames / 100 ms ≈ 3900 frames/s
	// wanted vs ~7500 frames/s capacity, but synchronized in bursts.
	for i := 0; i < sensors; i++ {
		i := i
		for b := 0; b < 10; b++ {
			b := b
			sys.K.At(300*canec.Millisecond+canec.Time(b)*canec.Millisecond+canec.Time(i)*10*canec.Microsecond, func() {
				alarm(i)
			})
		}
	}

	// Track lateness at the subscriber side during the cascade.
	_ = worstLateness

	// Phase 3 (400–600 ms): calm again.
	sys.Run(600 * canec.Millisecond)

	sent, missed, expired := 0, 0, 0
	for _, s := range stats {
		sent += s.sent
		missed += s.missed
		expired += s.expired
	}
	fmt.Printf("alarms sent:        %d\n", sent)
	fmt.Printf("alarms delivered:   %d\n", received)
	fmt.Printf("deadline misses:    %d (%.1f%%) — local exceptions raised for awareness\n",
		missed, 100*float64(missed)/float64(sent))
	fmt.Printf("validity expired:   %d — removed from send queues, never wasted bus time\n", expired)
	fmt.Printf("promotions applied: %d identifier rewrites\n", sys.TotalCounters().PromotionsApplied)
	fmt.Printf("bus utilization:    %.1f%%\n", 100*sys.Utilization())
	if received+expired != sent {
		fmt.Printf("NOTE: %d alarms still queued at end of run\n", sent-received-expired)
	}
}
