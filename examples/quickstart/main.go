// Quickstart: a three-node CAN segment with one hard real-time event
// channel. Node 0 publishes a temperature reading every 10 ms round; the
// two other nodes subscribe. The output shows the headline property of
// HRT channels: events are delivered to the application exactly at the
// slot's delivery deadline, so the application-visible period is
// jitter-free even though the network-level arrival times wander.
package main

import (
	"encoding/binary"
	"fmt"

	"canec"
)

const tempSubject canec.Subject = 0x1001

func main() {
	// 1. Off-line configuration: one reserved slot per round for the
	//    temperature channel, published by node 0, tolerating one
	//    omission fault per transmission (the default).
	calCfg := canec.DefaultCalendarConfig()
	cal, err := canec.PackCalendar(calCfg, 10*canec.Millisecond,
		canec.Slot{Subject: uint64(tempSubject), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}

	// 2. Build the system: 3 nodes, drifting clocks, synchronization on.
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes:            3,
		Seed:             42,
		Calendar:         cal,
		Sync:             canec.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * canec.Microsecond,
	})
	if err != nil {
		panic(err)
	}

	// 3. Publisher: announce, then publish a fresh reading each round.
	pub, err := sys.Node(0).MW.HRTEC(tempSubject)
	if err != nil {
		panic(err)
	}
	if err := pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	reading := uint16(2500) // centi-degrees
	var publish func(round int64)
	publish = func(round int64) {
		if round >= 50 {
			return
		}
		// Be ready 100 µs before the slot (paper: events must be ready at
		// the latest-ready instant).
		local := sys.Cfg.Epoch + canec.Time(round)*cal.Round - 100*canec.Microsecond
		sys.K.At(sys.Clocks[0].WhenLocal(sys.K.Now(), local), func() {
			payload := make([]byte, 2)
			binary.LittleEndian.PutUint16(payload, reading)
			reading += 7
			if err := pub.Publish(canec.Event{Subject: tempSubject, Payload: payload}); err != nil {
				fmt.Println("publish:", err)
			}
			publish(round + 1)
		})
	}
	publish(0)

	// 4. Subscribers: notification handler runs at the delivery deadline.
	var lastAt canec.Time
	n := 0
	for i := 1; i <= 2; i++ {
		i := i
		sub, err := sys.Node(i).MW.HRTEC(tempSubject)
		if err != nil {
			panic(err)
		}
		err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
			func(ev canec.Event, di canec.DeliveryInfo) {
				if i != 1 {
					return // print only node 1's view
				}
				temp := binary.LittleEndian.Uint16(ev.Payload)
				dPeriod := canec.Duration(0)
				if lastAt != 0 {
					dPeriod = di.DeliveredAt - lastAt
				}
				lastAt = di.DeliveredAt
				if n < 5 || n%10 == 0 {
					fmt.Printf("round %2d: temp=%2d.%02d°C delivered at %v (period %d µs, network arrival %v)\n",
						n, temp/100, temp%100, di.DeliveredAt, dPeriod.Micros(), di.ArrivedAt)
				}
				n++
			},
			func(e canec.Exception) { fmt.Println("exception:", e.Kind, e.Detail) })
		if err != nil {
			panic(err)
		}
	}

	// 5. Run 50 rounds of virtual time.
	sys.Run(sys.Cfg.Epoch + 50*cal.Round - 1)

	c := sys.TotalCounters()
	fmt.Printf("\npublished=%d delivered=%d (2 subscribers) slotMissed=%d late=%d\n",
		c.PublishedHRT, c.DeliveredHRT, c.SlotMissed, c.LateHRTDeliveries)
	fmt.Printf("bus utilization: %.1f%%\n", 100*sys.Utilization())
}
