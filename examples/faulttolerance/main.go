// Fault tolerance: hard real-time guarantees under injected bus faults.
//
// A 10 ms control channel is dimensioned for omission degree k = 2
// (three transmission attempts fit inside its reserved slot). The bus is
// subjected to random frame corruptions at increasing rates plus one
// 5 ms EMI burst. The run shows the paper's two claims:
//
//  1. within the fault assumption, every event is still delivered at its
//     exact delivery deadline — faults cost reserved bandwidth, never
//     timeliness;
//  2. redundancy suppression means the reserved retry bandwidth is only
//     consumed when faults actually occur — the rest is reclaimed by a
//     background bulk transfer, whose throughput degrades gracefully as
//     the fault rate rises.
package main

import (
	"fmt"

	"canec"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
)

const (
	subjCtrl canec.Subject = 0x21
	subjBulk canec.Subject = 0x22
)

func run(errRate float64) (delivered, late, slotMissed int, bulkBytes int, copiesSent, copiesSuppressed uint64) {
	cfg := canec.DefaultCalendarConfig()
	cfg.OmissionDegree = 2
	cal, err := canec.PackCalendar(cfg, 10*canec.Millisecond,
		canec.Slot{Subject: uint64(subjCtrl), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: 3, Seed: 99, Calendar: cal, Epoch: canec.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	// Random corruption plus an EMI burst at 200–205 ms.
	sys.Bus.Injector = can.Chain{
		can.BurstErrors{Start: 200 * sim.Millisecond, End: 205 * sim.Millisecond},
		can.RandomErrors{Rate: errRate},
	}

	pub, err := sys.Node(0).MW.HRTEC(subjCtrl)
	if err != nil {
		panic(err)
	}
	if err := pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	sub, err := sys.Node(1).MW.HRTEC(subjCtrl)
	if err != nil {
		panic(err)
	}
	err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(_ canec.Event, di canec.DeliveryInfo) {
			delivered++
			if di.Late {
				late++
			}
		},
		func(e canec.Exception) {
			if e.Kind == canec.ExcSlotMissed {
				slotMissed++
			}
		})
	if err != nil {
		panic(err)
	}

	const rounds = 50
	for r := int64(0); r < rounds; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+canec.Time(r)*cal.Round-200*canec.Microsecond, func() {
			pub.Publish(canec.Event{Subject: subjCtrl, Payload: []byte{byte(r)}})
		})
	}

	// Background bulk transfer with infinite backlog.
	bulk, err := sys.Node(2).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(canec.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	bsub, err := sys.Node(1).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	bsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, _ canec.DeliveryInfo) { bulkBytes += len(ev.Payload) }, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= sys.Cfg.Epoch+rounds*cal.Round {
			return
		}
		if bulk.QueuedChains() < 2 {
			bulk.Publish(canec.Event{Subject: subjBulk, Payload: make([]byte, 2048)})
		}
		sys.K.After(canec.Millisecond, feed)
	}
	sys.K.At(sys.Cfg.Epoch, feed)

	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)
	c := sys.TotalCounters()
	return delivered, late, slotMissed, bulkBytes, c.RedundantCopiesSent, c.CopiesSuppressed
}

// crashDemo extends the fault model from corrupted frames to a dead
// station: the control publisher is powered off mid-run and later
// restarted. While it is down the subscriber's exception handler flags
// every empty slot (fail-aware, not fail-silent), and the reserved but
// unused slot bandwidth is reclaimed by the background bulk transfer.
// On restart the lifecycle manager replays the full cold-start path —
// re-join, re-bind, clock re-sync — and the OnRestart hook re-creates
// the channel and re-anchors its publish loop on the corrected clock.
// The whole run is driven by a seeded chaos campaign whose trace-level
// invariant checkers vouch for the recovery.
func crashDemo() {
	const (
		crashAt   = 450 * sim.Millisecond
		restartAt = 550 * sim.Millisecond
		horizon   = 1300 * sim.Millisecond
	)
	cfg := canec.DefaultCalendarConfig()
	cfg.OmissionDegree = 1
	cal, err := canec.PackCalendar(cfg, 10*canec.Millisecond,
		canec.Slot{Subject: uint64(subjCtrl), Publisher: 1, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	slot := cal.Slots[0]
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Seed: 7, Calendar: cal,
		Sync: clock.DefaultSyncConfig(), MaxDriftPPM: 100,
		MaxInitialOffset: 100 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		panic(err)
	}
	lc := core.NewLifecycle(sys)
	camp, err := chaos.NewCampaign(sys, lc, chaos.Script{Events: []chaos.Event{
		{Kind: "crash", AtMS: float64(crashAt) / float64(sim.Millisecond), Node: 1},
		{Kind: "restart", AtMS: float64(restartAt) / float64(sim.Millisecond), Node: 1},
	}})
	if err != nil {
		panic(err)
	}
	camp.Install()

	// The publish loop is host software on station 1: it dies with the
	// crash and is re-anchored by OnRestart on the re-synchronized clock.
	announce := func(mw *core.Middleware) *core.HRTEC {
		ch, err := mw.HRTEC(subjCtrl)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		return ch
	}
	pub := announce(sys.Node(1).MW)
	gen := 0
	var loop func(r int64, g int)
	loop = func(r int64, g int) {
		local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + slot.Ready - 300*sim.Microsecond
		at := sys.Clocks[1].WhenLocal(sys.K.Now(), local)
		if at >= horizon {
			return
		}
		sys.K.At(at, func() {
			if lc.Down(1) || gen != g {
				return
			}
			pub.Publish(canec.Event{Subject: subjCtrl, Payload: []byte{byte(r)}})
			loop(slot.NextActive(r+1), g)
		})
	}
	lc.OnRestart = func(_ int, mw *core.Middleware) {
		pub = announce(mw)
		gen++
		rel := sys.Clocks[1].Read(sys.K.Now()) - sys.Cfg.Epoch
		next := int64(1)
		if rel > 0 {
			next = int64(rel/cal.Round) + 1
		}
		loop(slot.NextActive(next), gen)
	}
	loop(slot.NextActive(0), 0)

	var delivered, missed int
	sub, err := sys.Node(2).MW.HRTEC(subjCtrl)
	if err != nil {
		panic(err)
	}
	err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { delivered++ },
		func(e canec.Exception) {
			if e.Kind == canec.ExcSlotMissed {
				missed++
			}
		})
	if err != nil {
		panic(err)
	}

	// Background bulk transfer: the outage's reserved-but-idle slots are
	// extra bandwidth for it.
	bulk, err := sys.Node(3).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(canec.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	var bulkBytes, outageBytes int
	bsub, err := sys.Node(2).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	bsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, _ canec.DeliveryInfo) {
			bulkBytes += len(ev.Payload)
			if at := sys.K.Now(); at >= crashAt && at < restartAt {
				outageBytes += len(ev.Payload)
			}
		}, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= horizon {
			return
		}
		if bulk.QueuedChains() < 2 {
			bulk.Publish(canec.Event{Subject: subjBulk, Payload: make([]byte, 512)})
		}
		sys.K.After(canec.Millisecond, feed)
	}
	sys.K.At(sys.Cfg.Epoch, feed)

	sys.Run(horizon)

	var downAt, upAt sim.Time
	for _, r := range sys.Obs.Records() {
		switch r.Stage {
		case obs.StageNodeDown:
			downAt = r.At
		case obs.StageNodeUp:
			upAt = r.At
		}
	}
	rep := camp.Finish(0)

	ms := func(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }
	fmt.Printf("\ncrash/restart: publisher (station 1) powered off at %.0f ms, on again at %.0f ms\n",
		ms(crashAt), ms(restartAt))
	fmt.Printf(" - node_down %.1f ms, node_up %.1f ms: recovery (re-join, re-bind, re-sync) took %.1f ms\n",
		ms(downAt), ms(upAt), ms(upAt-restartAt))
	fmt.Printf(" - subscriber: %d events delivered, %d empty slots flagged as SlotMissed during the outage\n",
		delivered, missed)
	fmt.Printf(" - bulk transfer moved %d B while the publisher was down — the dead channel's reserved\n",
		outageBytes)
	fmt.Printf("   slots are reclaimed, not wasted (total bulk: %.1f KiB)\n", float64(bulkBytes)/1024)
	if len(rep.Violations) == 0 {
		fmt.Println(" - chaos invariant checkers replayed the trace: all invariants hold")
	} else {
		for _, v := range rep.Violations {
			fmt.Printf(" - INVARIANT VIOLATED: %s\n", v)
		}
	}
}

func main() {
	fmt.Println("HRT channel dimensioned for omission degree k=2; EMI burst at t=200ms in every run")
	fmt.Printf("%-10s %-10s %-6s %-8s %-12s %-12s\n",
		"errRate", "delivered", "late", "missed", "bulk KiB", "suppressed")
	for _, rate := range []float64{0, 0.01, 0.05, 0.10, 0.20} {
		delivered, late, missed, bulkBytes, _, suppressed := run(rate)
		fmt.Printf("%-10.2f %-10d %-6d %-8d %-12.1f %-12d\n",
			rate, delivered, late, missed, float64(bulkBytes)/1024, suppressed)
	}
	fmt.Println("\nreading the table:")
	fmt.Println(" - random errors up to 20% stay within the k=2 slot dimensioning: every such event")
	fmt.Println("   is delivered exactly at its deadline (they never add to 'late');")
	fmt.Println(" - the 5 ms EMI burst exceeds any per-frame assumption: exactly one event per run is")
	fmt.Println("   delivered late and flagged, and the subscriber's exception handler fires (missed=1) —")
	fmt.Println("   fault detection instead of silent failure;")
	fmt.Println(" - 'suppressed' counts redundant HRT copies never sent (2 per event): that reserved")
	fmt.Println("   bandwidth is what the bulk transfer runs on, shrinking as real faults consume it.")

	crashDemo()
}
