// Fault tolerance: hard real-time guarantees under injected bus faults.
//
// A 10 ms control channel is dimensioned for omission degree k = 2
// (three transmission attempts fit inside its reserved slot). The bus is
// subjected to random frame corruptions at increasing rates plus one
// 5 ms EMI burst. The run shows the paper's two claims:
//
//  1. within the fault assumption, every event is still delivered at its
//     exact delivery deadline — faults cost reserved bandwidth, never
//     timeliness;
//  2. redundancy suppression means the reserved retry bandwidth is only
//     consumed when faults actually occur — the rest is reclaimed by a
//     background bulk transfer, whose throughput degrades gracefully as
//     the fault rate rises.
package main

import (
	"fmt"

	"canec"
	"canec/internal/can"
	"canec/internal/sim"
)

const (
	subjCtrl canec.Subject = 0x21
	subjBulk canec.Subject = 0x22
)

func run(errRate float64) (delivered, late, slotMissed int, bulkBytes int, copiesSent, copiesSuppressed uint64) {
	cfg := canec.DefaultCalendarConfig()
	cfg.OmissionDegree = 2
	cal, err := canec.PackCalendar(cfg, 10*canec.Millisecond,
		canec.Slot{Subject: uint64(subjCtrl), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: 3, Seed: 99, Calendar: cal, Epoch: canec.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	// Random corruption plus an EMI burst at 200–205 ms.
	sys.Bus.Injector = can.Chain{
		can.BurstErrors{Start: 200 * sim.Millisecond, End: 205 * sim.Millisecond},
		can.RandomErrors{Rate: errRate},
	}

	pub, err := sys.Node(0).MW.HRTEC(subjCtrl)
	if err != nil {
		panic(err)
	}
	if err := pub.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	sub, err := sys.Node(1).MW.HRTEC(subjCtrl)
	if err != nil {
		panic(err)
	}
	err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(_ canec.Event, di canec.DeliveryInfo) {
			delivered++
			if di.Late {
				late++
			}
		},
		func(e canec.Exception) {
			if e.Kind == canec.ExcSlotMissed {
				slotMissed++
			}
		})
	if err != nil {
		panic(err)
	}

	const rounds = 50
	for r := int64(0); r < rounds; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+canec.Time(r)*cal.Round-200*canec.Microsecond, func() {
			pub.Publish(canec.Event{Subject: subjCtrl, Payload: []byte{byte(r)}})
		})
	}

	// Background bulk transfer with infinite backlog.
	bulk, err := sys.Node(2).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(canec.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	bsub, err := sys.Node(1).MW.NRTEC(subjBulk)
	if err != nil {
		panic(err)
	}
	bsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, _ canec.DeliveryInfo) { bulkBytes += len(ev.Payload) }, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= sys.Cfg.Epoch+rounds*cal.Round {
			return
		}
		if bulk.QueuedChains() < 2 {
			bulk.Publish(canec.Event{Subject: subjBulk, Payload: make([]byte, 2048)})
		}
		sys.K.After(canec.Millisecond, feed)
	}
	sys.K.At(sys.Cfg.Epoch, feed)

	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)
	c := sys.TotalCounters()
	return delivered, late, slotMissed, bulkBytes, c.RedundantCopiesSent, c.CopiesSuppressed
}

func main() {
	fmt.Println("HRT channel dimensioned for omission degree k=2; EMI burst at t=200ms in every run")
	fmt.Printf("%-10s %-10s %-6s %-8s %-12s %-12s\n",
		"errRate", "delivered", "late", "missed", "bulk KiB", "suppressed")
	for _, rate := range []float64{0, 0.01, 0.05, 0.10, 0.20} {
		delivered, late, missed, bulkBytes, _, suppressed := run(rate)
		fmt.Printf("%-10.2f %-10d %-6d %-8d %-12.1f %-12d\n",
			rate, delivered, late, missed, float64(bulkBytes)/1024, suppressed)
	}
	fmt.Println("\nreading the table:")
	fmt.Println(" - random errors up to 20% stay within the k=2 slot dimensioning: every such event")
	fmt.Println("   is delivered exactly at its deadline (they never add to 'late');")
	fmt.Println(" - the 5 ms EMI burst exceeds any per-frame assumption: exactly one event per run is")
	fmt.Println("   delivered late and flagged, and the subscriber's exception handler fires (missed=1) —")
	fmt.Println("   fault detection instead of silent failure;")
	fmt.Println(" - 'suppressed' counts redundant HRT copies never sent (2 per event): that reserved")
	fmt.Println("   bandwidth is what the bulk transfer runs on, shrinking as real faults consume it.")
}
