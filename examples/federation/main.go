// Federation: three bus segments on three independent paced kernels,
// connected over real loopback TCP by internal/relay — the multi-network
// event channel of §2.2.1 made concrete. Segment A publishes one channel
// per class (HRT on calendar slots, SRT with deadlines, NRT best-effort);
// every event crosses two relay hops (A→B→C, segment B is a pure transit
// hub) and is delivered on segment C with its origin trace adopted.
//
// The run has two phases: a clean network, then 20% data-plane loss and
// +1 ms latency injected on the A→B link by the chaos proxy. The summary
// shows per-class two-hop latency/jitter per phase and the relay's
// class policy under loss: SRT sheds on exhausted budgets, HRT is
// forwarded late but never dropped by the relay itself.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/relay"
	"canec/internal/sim"
	"canec/internal/stats"
)

const (
	subjHRT binding.Subject = 0x601
	subjSRT binding.Subject = 0x602
	subjNRT binding.Subject = 0x603

	perPhase = 40
	period   = 10 * time.Millisecond
)

type segment struct {
	name  string
	sys   *core.System
	paced *sim.Paced
}

// newSegment builds one 4-node segment with an HRT calendar slot for
// subjHRT owned by the given publisher station.
func newSegment(name string, seed, traceBase uint64, hrtPublisher int) *segment {
	cal, err := calendar.PackSequential(calendar.DefaultConfig(), 10*sim.Millisecond, calendar.Slot{
		Subject: uint64(subjHRT), Publisher: 0, Payload: 8, Periodic: true,
	})
	if err != nil {
		panic(err)
	}
	cal.Slots[0].Publisher = can.TxNode(hrtPublisher)
	k := sim.NewKernel(seed)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:    4,
		Kernel:   k,
		Calendar: cal,
		Observe:  &obs.Config{Trace: true, Metrics: true, TraceIDBase: traceBase << 32},
	})
	if err != nil {
		panic(err)
	}
	return &segment{name: name, sys: sys, paced: sim.NewPaced(k, 1.0)}
}

func main() {
	segA := newSegment("plant", 11, 1, 0)
	segB := newSegment("backbone", 12, 2, 2)
	segC := newSegment("control-room", 13, 3, 2)

	// B is the transit hub: one listener per neighbour.
	srvAB := mustServe("backbone")
	defer srvAB.Close()
	srvBC := mustServe("backbone")
	defer srvBC.Close()

	// The A→B link runs through the chaos proxy so we can degrade it.
	proxy, err := chaos.NewLinkProxy(srvAB.Addr().String(), chaos.LinkFaults{})
	if err != nil {
		panic(err)
	}
	defer proxy.Close()
	var evMu sync.Mutex
	var upAEvents []relay.Event
	cfgA := relayCfg("plant")
	cfgA.Trace = func(e relay.Event) {
		evMu.Lock()
		upAEvents = append(upAEvents, e)
		evMu.Unlock()
	}
	upA := relay.Dial(proxy.Addr(), cfgA)
	defer upA.Close()
	upC := relay.Dial(srvBC.Addr().String(), relayCfg("control-room"))
	defer upC.Close()

	// Bridges: A ships out via station 3; B receives on 2 and re-ships on
	// 3 (siblings keep origin/hops/budget on transit); C receives on 2.
	bA := mustBridge(segA, 3, relay.NewPort(segA.paced, upA))
	bBA := mustBridge(segB, 2, relay.NewPort(segB.paced, srvAB))
	bBC := mustBridge(segB, 3, relay.NewPort(segB.paced, srvBC))
	bC := mustBridge(segC, 2, relay.NewPort(segC.paced, upC))
	bBA.LinkSiblings(bBC)

	// Relay-level interest: B pulls the subjects from A, C from B.
	hrtAttrs := core.ChannelAttrs{Payload: 7, Periodic: true}
	nrtAttrs := core.ChannelAttrs{Prio: 254}
	for _, subj := range []binding.Subject{subjHRT, subjSRT, subjNRT} {
		must(srvAB.Subscribe(subj, nil, nil))
		must(upC.Subscribe(subj, nil, nil))
	}
	must(bA.Forward(core.HRT, subjHRT, hrtAttrs))
	must(bA.Forward(core.SRT, subjSRT, core.ChannelAttrs{}))
	must(bA.Forward(core.NRT, subjNRT, nrtAttrs))
	must(bBA.Announce(core.HRT, subjHRT, hrtAttrs))
	must(bBA.Announce(core.SRT, subjSRT, core.ChannelAttrs{}))
	must(bBA.Announce(core.NRT, subjNRT, nrtAttrs))
	must(bBC.Forward(core.HRT, subjHRT, hrtAttrs))
	must(bBC.Forward(core.SRT, subjSRT, core.ChannelAttrs{}))
	must(bBC.Forward(core.NRT, subjNRT, nrtAttrs))
	must(bC.Announce(core.HRT, subjHRT, hrtAttrs))
	must(bC.Announce(core.SRT, subjSRT, core.ChannelAttrs{}))
	must(bC.Announce(core.NRT, subjNRT, nrtAttrs))

	// Publishers on A's station 0.
	chH, err := segA.sys.Node(0).MW.HRTEC(subjHRT)
	must(err)
	must(chH.Announce(hrtAttrs, nil))
	chS, err := segA.sys.Node(0).MW.SRTEC(subjSRT)
	must(err)
	must(chS.Announce(core.ChannelAttrs{}, nil))
	chN, err := segA.sys.Node(0).MW.NRTEC(subjNRT)
	must(err)
	must(chN.Announce(nrtAttrs, nil))

	// Subscribers on C's station 1: measure two-hop latency against the
	// wall-clock timestamp the publisher stamped into the payload.
	start := time.Now()
	var phase atomic.Int32
	type lat struct{ clean, lossy *stats.Series }
	series := map[binding.Subject]lat{
		subjHRT: {stats.NewSeries("hrt-clean"), stats.NewSeries("hrt-lossy")},
		subjSRT: {stats.NewSeries("srt-clean"), stats.NewSeries("srt-lossy")},
		subjNRT: {stats.NewSeries("nrt-clean"), stats.NewSeries("nrt-lossy")},
	}
	var seriesMu sync.Mutex
	subscribe := func(subj binding.Subject, class core.Class, attrs core.ChannelAttrs) {
		h := func(ev core.Event, _ core.DeliveryInfo) {
			d := time.Since(start) - time.Duration(getTS(ev.Payload))
			seriesMu.Lock()
			if phase.Load() == 0 {
				series[subj].clean.ObserveDuration(sim.Duration(d))
			} else {
				series[subj].lossy.ObserveDuration(sim.Duration(d))
			}
			seriesMu.Unlock()
		}
		mw := segC.sys.Node(1).MW
		switch class {
		case core.HRT:
			ch, err := mw.HRTEC(subj)
			must(err)
			must(ch.Subscribe(attrs, core.SubscribeAttrs{}, h, nil))
		case core.SRT:
			ch, err := mw.SRTEC(subj)
			must(err)
			must(ch.Subscribe(attrs, core.SubscribeAttrs{}, h, nil))
		case core.NRT:
			ch, err := mw.NRTEC(subj)
			must(err)
			must(ch.Subscribe(attrs, core.SubscribeAttrs{}, h, nil))
		}
	}
	subscribe(subjHRT, core.HRT, hrtAttrs)
	subscribe(subjSRT, core.SRT, core.ChannelAttrs{})
	subscribe(subjNRT, core.NRT, nrtAttrs)

	// Settle bindings deterministically, then pace all three kernels
	// against the wall clock so the TCP links interoperate in real time.
	for _, s := range []*segment{segA, segB, segC} {
		s.sys.K.Run(100 * sim.Millisecond)
	}
	var wg sync.WaitGroup
	for _, s := range []*segment{segA, segB, segC} {
		wg.Add(1)
		go func(s *segment) {
			defer wg.Done()
			s.paced.Run(sim.Time(time.Hour))
		}(s)
	}
	waitLinksUp(upA, upC)

	publishRound := func(i int) {
		segA.paced.Call(func() {
			ts := putTS(time.Since(start))
			now := segA.sys.Node(0).MW.LocalTime()
			chH.Publish(core.Event{Subject: subjHRT, Payload: ts})
			chS.Publish(core.Event{Subject: subjSRT, Payload: putTS(time.Since(start)),
				Attrs: core.EventAttrs{Deadline: now + 15*sim.Millisecond, Expiration: now + 60*sim.Millisecond}})
			chN.Publish(core.Event{Subject: subjNRT, Payload: putTS(time.Since(start))})
			_ = i
		})
	}

	fmt.Println("phase 1: clean network —", perPhase, "events per class, two TCP hops")
	for i := 0; i < perPhase; i++ {
		publishRound(i)
		time.Sleep(period)
	}
	time.Sleep(300 * time.Millisecond) // drain in-flight deliveries
	phase.Store(1)

	fmt.Println("phase 2: chaos on the A→B link — 20% frame loss, +1 ms latency")
	proxy.SetFaults(chaos.LinkFaults{FrameLossRate: 0.2, ExtraLatency: time.Millisecond, Seed: 7})
	for i := 0; i < perPhase; i++ {
		publishRound(i)
		time.Sleep(period)
	}
	proxy.SetFaults(chaos.LinkFaults{})
	time.Sleep(300 * time.Millisecond)

	for _, s := range []*segment{segA, segB, segC} {
		s.paced.Stop()
	}
	wg.Wait()

	fmt.Printf("\nclass  phase   delivered/sent   latency ms (mean/p99)  jitter ms (stddev)\n")
	for _, row := range []struct {
		name string
		subj binding.Subject
	}{{"HRT", subjHRT}, {"SRT", subjSRT}, {"NRT", subjNRT}} {
		for i, ser := range []*stats.Series{series[row.subj].clean, series[row.subj].lossy} {
			phaseName := [2]string{"clean", "lossy"}[i]
			fmt.Printf("%-5s  %-6s  %3d/%-3d          %6.2f / %-6.2f        %6.2f\n",
				row.name, phaseName, ser.N(), perPhase,
				ser.Mean()/1e6, ser.Quantile(0.99)/1e6, ser.StdDev()/1e6)
		}
	}
	fmt.Printf("\ntransit hub (segment B): forwarded %d onward, HRT late %d, dropped %d\n",
		bBC.Forwarded(), bBC.Late(), bBC.Dropped())
	fmt.Printf("chaos proxy: dropped %d data-plane frames on the wire\n", proxy.DroppedFrames.Load())
	fmt.Printf("uplink A: sent %d frames (%d bytes), link downs %d\n",
		upA.Counters().Sent(), upA.Counters().BytesOut(), upA.Counters().LinkDowns())

	evMu.Lock()
	events := append([]relay.Event(nil), upAEvents...)
	evMu.Unlock()
	viol := chaos.CheckRelayLiveness(chaos.RelayCheckContext{
		Events:               events,
		Counters:             upA.Counters(),
		ConnectedAtEnd:       upA.Connected(),
		DeliveredAfterFaults: uint64(series[subjSRT].lossy.N()),
		RequireDelivery:      true,
	})
	if len(viol) == 0 {
		fmt.Println("relay liveness invariants: all pass (hrt-never-dropped, link-recovers, relay-liveness)")
	} else {
		fmt.Printf("relay liveness VIOLATIONS: %v\n", viol)
	}

	// One continuous trace: pick a delivered event on C and show its
	// relay_rx chain links back to A's trace-ID base.
	var sample uint64
	segC.paced.Call(func() {
		for _, r := range segC.sys.Obs.Records() {
			if r.Stage == obs.StageDelivered && r.ID != 0 {
				sample = r.ID
				break
			}
		}
	})
	fmt.Printf("trace continuity: delivered trace %#x originates from segment A (base %d)\n",
		sample, sample>>32)
}

func mustServe(segName string) *relay.Server {
	srv, err := relay.Serve("127.0.0.1:0", relayCfg(segName))
	must(err)
	return srv
}

func mustBridge(s *segment, station int, port *relay.Port) *gateway.RemoteBridge {
	b, err := gateway.NewRemote(s.sys.Node(station).MW, port, s.name)
	must(err)
	return b
}

func relayCfg(segName string) relay.Config {
	return relay.Config{Segment: segName, HeartbeatEvery: 100 * time.Millisecond, Seed: 5}
}

func waitLinksUp(ups ...*relay.Uplink) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, u := range ups {
			if !u.Connected() {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	panic("relay links never came up")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// putTS stamps a duration-since-start into a 7-byte payload.
func putTS(d time.Duration) []byte {
	v := uint64(d.Nanoseconds())
	p := make([]byte, 7)
	for i := 0; i < 7; i++ {
		p[i] = byte(v >> (8 * i))
	}
	return p
}

func getTS(src []byte) int64 {
	var v uint64
	for i := 0; i < 7 && i < len(src); i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return int64(v)
}
