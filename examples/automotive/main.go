// Automotive: a small vehicle network where all three event channel
// classes coexist on one CAN bus, reproducing the deployment scenario the
// paper's introduction motivates.
//
//   - HRT: a 5 ms wheel-speed control loop — four wheel-speed sensors each
//     own a reserved slot; an ABS controller node subscribes and publishes
//     a brake-actuation command in a fifth slot.
//   - SRT: engine diagnostics events with 20 ms transmission deadlines and
//     50 ms validity, published sporadically.
//   - NRT: a 16 KiB firmware image streamed to a telematics unit through a
//     fragmenting channel, using only leftover bandwidth.
//
// The run demonstrates that the bulk transfer and the diagnostics traffic
// do not disturb the control loop: the brake commands keep arriving at
// their exact delivery deadlines while the firmware download proceeds in
// the background.
package main

import (
	"encoding/binary"
	"fmt"

	"canec"
)

// Subjects.
const (
	subjWheelBase canec.Subject = 0x100 // +i for wheel i
	subjBrake     canec.Subject = 0x200
	subjDiag      canec.Subject = 0x300
	subjFirmware  canec.Subject = 0x400
)

// Nodes.
const (
	nodeWheel0 = iota // ..nodeWheel3 = 3
	_
	_
	_
	nodeABS
	nodeEngine
	nodeTelematics
	nodeGateway
	numNodes
)

func main() {
	calCfg := canec.DefaultCalendarConfig()
	slots := []canec.Slot{
		{Subject: uint64(subjWheelBase + 0), Publisher: 0, Payload: 8, Periodic: true},
		{Subject: uint64(subjWheelBase + 1), Publisher: 1, Payload: 8, Periodic: true},
		{Subject: uint64(subjWheelBase + 2), Publisher: 2, Payload: 8, Periodic: true},
		{Subject: uint64(subjWheelBase + 3), Publisher: 3, Payload: 8, Periodic: true},
		{Subject: uint64(subjBrake), Publisher: nodeABS, Payload: 8, Periodic: true},
	}
	cal, err := canec.PackCalendar(calCfg, 5*canec.Millisecond, slots...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("calendar: round %v, %d slots, HRT reservation %.1f%% of bandwidth\n",
		cal.Round, len(cal.Slots), 100*cal.Utilization())

	sys, err := canec.NewSystem(canec.SystemConfig{
		Nodes: numNodes, Seed: 7, Calendar: cal,
		Sync: canec.DefaultSyncConfig(), MaxDriftPPM: 80,
		MaxInitialOffset: 100 * canec.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	const rounds = 200
	end := sys.Cfg.Epoch + rounds*cal.Round - 1

	// --- HRT: wheel-speed sensors --------------------------------------
	for w := 0; w < 4; w++ {
		w := w
		ch, err := sys.Node(w).MW.HRTEC(subjWheelBase + canec.Subject(w))
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		speed := uint32(22000 + 100*w) // mm/s
		var loop func(r int64)
		loop = func(r int64) {
			if r >= rounds {
				return
			}
			local := sys.Cfg.Epoch + canec.Time(r)*cal.Round - 150*canec.Microsecond
			sys.K.At(sys.Clocks[w].WhenLocal(sys.K.Now(), local), func() {
				p := make([]byte, 4)
				speed += uint32(w) - 1
				binary.LittleEndian.PutUint32(p, speed)
				ch.Publish(canec.Event{Subject: subjWheelBase + canec.Subject(w), Payload: p})
				loop(r + 1)
			})
		}
		loop(0)
	}

	// --- HRT: ABS controller subscribes to wheels, publishes brake ------
	brake, err := sys.Node(nodeABS).MW.HRTEC(subjBrake)
	if err != nil {
		panic(err)
	}
	if err := brake.Announce(canec.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	var wheelSpeeds [4]uint32
	for w := 0; w < 4; w++ {
		w := w
		sub, err := sys.Node(nodeABS).MW.HRTEC(subjWheelBase + canec.Subject(w))
		if err != nil {
			panic(err)
		}
		err = sub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
			func(ev canec.Event, _ canec.DeliveryInfo) {
				wheelSpeeds[w] = binary.LittleEndian.Uint32(ev.Payload)
			},
			func(e canec.Exception) {
				fmt.Printf("ABS: %v on wheel %d at %v\n", e.Kind, w, e.At)
			})
		if err != nil {
			panic(err)
		}
	}
	// Control law (toy): command = mean wheel speed / 4, published every
	// round after the wheel slots.
	var ctrl func(r int64)
	ctrl = func(r int64) {
		if r >= rounds {
			return
		}
		local := sys.Cfg.Epoch + canec.Time(r)*cal.Round + cal.Slots[4].Ready - 150*canec.Microsecond
		sys.K.At(sys.Clocks[nodeABS].WhenLocal(sys.K.Now(), local), func() {
			sum := uint64(0)
			for _, v := range wheelSpeeds {
				sum += uint64(v)
			}
			p := make([]byte, 4)
			binary.LittleEndian.PutUint32(p, uint32(sum/16))
			brake.Publish(canec.Event{Subject: subjBrake, Payload: p})
			ctrl(r + 1)
		})
	}
	ctrl(0)

	// Wheel actuators (nodes 0-3) subscribe to the brake command and
	// measure its application-level period jitter.
	var brakeTimes []canec.Time
	late := 0
	bsub, err := sys.Node(0).MW.HRTEC(subjBrake)
	if err != nil {
		panic(err)
	}
	err = bsub.Subscribe(canec.ChannelAttrs{Payload: 7, Periodic: true}, canec.SubscribeAttrs{},
		func(_ canec.Event, di canec.DeliveryInfo) {
			brakeTimes = append(brakeTimes, di.DeliveredAt)
			if di.Late {
				late++
			}
		}, nil)
	if err != nil {
		panic(err)
	}

	// --- SRT: engine diagnostics ----------------------------------------
	diag, err := sys.Node(nodeEngine).MW.SRTEC(subjDiag)
	if err != nil {
		panic(err)
	}
	misses, expired := 0, 0
	diag.Announce(canec.ChannelAttrs{}, func(e canec.Exception) {
		switch e.Kind {
		case canec.ExcDeadlineMissed:
			misses++
		case canec.ExcValidityExpired:
			expired++
		}
	})
	dsub, err := sys.Node(nodeGateway).MW.SRTEC(subjDiag)
	if err != nil {
		panic(err)
	}
	diagGot := 0
	dsub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { diagGot++ }, nil)
	diagSent := 0
	var diagLoop func()
	diagLoop = func() {
		if sys.K.Now() >= end {
			return
		}
		now := sys.Node(nodeEngine).MW.LocalTime()
		diag.Publish(canec.Event{
			Subject: subjDiag,
			Payload: []byte{0xD7, byte(diagSent)},
			Attrs: canec.EventAttrs{
				Deadline:   now + 20*canec.Millisecond,
				Expiration: now + 50*canec.Millisecond,
			},
		})
		diagSent++
		sys.K.After(sys.K.RNG().ExpDuration(3*canec.Millisecond), diagLoop)
	}
	sys.K.At(sys.Cfg.Epoch, diagLoop)

	// --- NRT: firmware download ------------------------------------------
	fw, err := sys.Node(nodeGateway).MW.NRTEC(subjFirmware)
	if err != nil {
		panic(err)
	}
	if err := fw.Announce(canec.ChannelAttrs{Prio: 253, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	fwsub, err := sys.Node(nodeTelematics).MW.NRTEC(subjFirmware)
	if err != nil {
		panic(err)
	}
	var fwDone canec.Time
	var fwBytes int
	fwsub.Subscribe(canec.ChannelAttrs{Fragmentation: true}, canec.SubscribeAttrs{},
		func(ev canec.Event, di canec.DeliveryInfo) {
			fwDone = di.DeliveredAt
			fwBytes = len(ev.Payload)
		}, nil)
	image := make([]byte, 16<<10)
	for i := range image {
		image[i] = byte(i * 131)
	}
	fwStart := sys.Cfg.Epoch
	sys.K.At(fwStart, func() {
		fw.Publish(canec.Event{Subject: subjFirmware, Payload: image})
	})

	// --- Run --------------------------------------------------------------
	sys.Run(end)

	fmt.Printf("\n-- control loop --\n")
	fmt.Printf("brake commands delivered: %d (late: %d)\n", len(brakeTimes), late)
	worst := canec.Duration(0)
	for i := 1; i < len(brakeTimes); i++ {
		d := brakeTimes[i] - brakeTimes[i-1] - cal.Round
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("worst application-level period jitter: %d µs (network jitter absorbed at the deadline)\n",
		worst.Micros())

	fmt.Printf("\n-- diagnostics (SRT) --\n")
	fmt.Printf("sent=%d received=%d deadlineMissed=%d expired=%d\n", diagSent, diagGot, misses, expired)

	fmt.Printf("\n-- firmware (NRT bulk) --\n")
	if fwDone > 0 {
		fmt.Printf("%d bytes transferred in %v using leftover bandwidth\n", fwBytes, fwDone-fwStart)
	} else {
		fmt.Printf("transfer still in progress at end of run\n")
	}

	c := sys.TotalCounters()
	fmt.Printf("\n-- totals --\nHRT slots fired=%d unused=%d suppressedCopies=%d  bus utilization=%.1f%%\n",
		c.SlotsFired, c.SlotsUnused, c.CopiesSuppressed, 100*sys.Utilization())
}
