package relay

import (
	"sync"
	"time"

	"canec/internal/core"
	"canec/internal/gateway"
)

// qItem is one encoded message waiting on a peer's egress queue.
type qItem struct {
	re   gateway.RemoteEvent
	wire []byte // encoded msgFrame, ready to write
	// wallDeadline is the wall-clock instant the event's remaining relay
	// budget runs out (zero = no budget). SRT items past it are shed;
	// HRT items past it are still sent but counted late.
	wallDeadline time.Time
	late         bool // set by pop on overdue HRT items
}

// fate describes what the queue did to an item, for the owner to count
// and trace outside the queue lock.
type fate struct {
	item   qItem
	reason string // "backpressure" | "expired"
}

// classQueue is a FIFO with O(1) amortised shift: a head index advances
// instead of memmoving the backlog (which would make draining a deep
// queue quadratic), and the dead prefix is compacted once it dominates.
type classQueue struct {
	items []qItem
	head  int
}

func (c *classQueue) size() int { return len(c.items) - c.head }

func (c *classQueue) push(it qItem) { c.items = append(c.items, it) }

func (c *classQueue) shift() qItem {
	it := c.items[c.head]
	c.items[c.head] = qItem{} // release references for GC
	c.head++
	if c.head > 64 && c.head*2 >= len(c.items) {
		n := copy(c.items, c.items[c.head:])
		for i := n; i < len(c.items); i++ {
			c.items[i] = qItem{}
		}
		c.items = c.items[:n]
		c.head = 0
	}
	return it
}

// dropExpired removes queued items past their wall deadline.
func (c *classQueue) dropExpired(now time.Time, out []fate) []fate {
	kept := c.items[c.head:c.head]
	for _, it := range c.items[c.head:] {
		if !it.wallDeadline.IsZero() && now.After(it.wallDeadline) {
			out = append(out, fate{item: it, reason: "expired"})
			continue
		}
		kept = append(kept, it)
	}
	c.items = c.items[:c.head+len(kept)]
	return out
}

// egressQueue is the class-aware per-peer send queue implementing the
// relay's backpressure policy:
//
//   - HRT: unbounded, never dropped. Items past their budget are handed
//     out marked late (the caller counts and traces them).
//   - SRT: bounded. Under pressure, deadline-expired copies are shed
//     first; if the queue is still full the oldest item is dropped.
//     Expired items are also shed at pop time.
//   - NRT: bounded, drop-oldest — the first class to give way.
//
// Drain order is strictly HRT → SRT → NRT.
type egressQueue struct {
	mu     sync.Mutex
	hrt    classQueue
	srt    classQueue
	nrt    classQueue
	capSRT int
	capNRT int
	notify chan struct{}
}

func newEgressQueue(capSRT, capNRT int) *egressQueue {
	if capSRT <= 0 {
		capSRT = 256
	}
	if capNRT <= 0 {
		capNRT = 64
	}
	return &egressQueue{
		capSRT: capSRT,
		capNRT: capNRT,
		notify: make(chan struct{}, 1),
	}
}

func (q *egressQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// push enqueues an item per the class policy and returns the items it
// had to discard to make room.
func (q *egressQueue) push(it qItem, now time.Time) []fate {
	q.mu.Lock()
	var out []fate
	switch classOf(it) {
	case classHRT:
		q.hrt.push(it)
	case classSRT:
		if q.srt.size() >= q.capSRT {
			out = q.srt.dropExpired(now, out)
		}
		if q.srt.size() >= q.capSRT {
			out = append(out, fate{item: q.srt.shift(), reason: "backpressure"})
		}
		q.srt.push(it)
	default:
		if q.nrt.size() >= q.capNRT {
			out = append(out, fate{item: q.nrt.shift(), reason: "backpressure"})
		}
		q.nrt.push(it)
	}
	q.mu.Unlock()
	q.wake()
	return out
}

// pop dequeues the next item to send (HRT first), shedding expired SRT
// items on the way; they are returned alongside for accounting. Overdue
// HRT items come out with late=true.
func (q *egressQueue) pop(now time.Time) (qItem, bool, []fate) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var shed []fate
	if q.hrt.size() > 0 {
		it := q.hrt.shift()
		if !it.wallDeadline.IsZero() && now.After(it.wallDeadline) {
			it.late = true
		}
		return it, true, shed
	}
	for q.srt.size() > 0 {
		it := q.srt.shift()
		if !it.wallDeadline.IsZero() && now.After(it.wallDeadline) {
			shed = append(shed, fate{item: it, reason: "expired"})
			continue
		}
		return it, true, shed
	}
	if q.nrt.size() > 0 {
		return q.nrt.shift(), true, shed
	}
	return qItem{}, false, shed
}

// depths reports the per-class queue lengths (for metrics surfaces).
func (q *egressQueue) depths() (hrt, srt, nrt int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hrt.size(), q.srt.size(), q.nrt.size()
}

type classKey int

const (
	classHRT classKey = iota
	classSRT
	classNRT
)

func classOf(it qItem) classKey {
	switch it.re.Class {
	case core.HRT:
		return classHRT
	case core.SRT:
		return classSRT
	default:
		return classNRT
	}
}
