package relay

import (
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/sim"
)

// ObserveTrace adapts a relay endpoint's wall-clock trace stream into
// the kernel-side observability plane. Relay events (queue sheds, link
// flaps, redials) originate on network goroutines; the adapter copies
// what it needs and re-injects through the pacer so the Observer — and
// through it the SLO engine, which counts relay SRT drops against the
// deadline-miss budget — is only ever touched in kernel context.
//
// node is the gateway station hosting the link's bridge. next, when
// non-nil, is chained first (e.g. the daemon's -v stderr logger).
func ObserveTrace(p *sim.Paced, o *obs.Observer, node int, next func(Event)) func(Event) {
	return func(e Event) {
		if next != nil {
			next(e)
		}
		if o == nil || p == nil {
			return
		}
		// Copy the frame before crossing goroutines: the caller's
		// pointer may reference a loop-local value.
		var fr *gateway.RemoteEvent
		if e.Frame != nil {
			c := *e.Frame
			fr = &c
		}
		kind, detail := e.Kind, e.Detail
		p.Inject(func() {
			now := p.Kernel().Now()
			switch kind {
			case "up":
				o.RelayLink(obs.StageRelayUp, node, now, "peer "+e.Peer)
			case "down":
				o.RelayLink(obs.StageRelayDown, node, now, "peer "+e.Peer+": "+detail)
			case "redial":
				o.RelayLink(obs.StageRelayRedial, node, now, detail)
			case "drop":
				if fr != nil {
					o.RelayFrame(fr.TraceID, obs.StageRelayDrop, fr.Class.String(),
						node, uint64(fr.Subject), now, detail)
				}
			case "late":
				if fr != nil {
					o.RelayFrame(fr.TraceID, obs.StageRelayLate, fr.Class.String(),
						node, uint64(fr.Subject), now, detail)
				}
			}
		})
	}
}
