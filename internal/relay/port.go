package relay

import (
	"time"

	"canec/internal/gateway"
	"canec/internal/sim"
)

// Port adapts a relay Link to gateway.Remote, bridging the two worlds
// the federation straddles: the simulation kernel (single-threaded,
// virtual time) and the network goroutines (wall clock). Outbound
// events are priced from virtual budget into a wall deadline using the
// pacer's ratio; inbound events are re-injected into kernel context via
// sim.Paced.Inject, so the receiving RemoteBridge runs under the
// kernel's single-toucher discipline.
type Port struct {
	paced *sim.Paced
	link  Link
	recv  func(gateway.RemoteEvent)
}

var _ gateway.Remote = (*Port)(nil)

// NewPort wires a Link into a paced kernel.
func NewPort(p *sim.Paced, l Link) *Port {
	port := &Port{paced: p, link: l}
	l.OnFrame(func(re gateway.RemoteEvent) {
		p.Inject(func() {
			if port.recv != nil {
				port.recv(re)
			}
		})
	})
	return port
}

// Link exposes the underlying relay endpoint (for subscriptions and
// counters).
func (po *Port) Link() Link { return po.link }

// Send implements gateway.Remote (kernel context): the event's virtual
// relay budget becomes a wall-clock egress deadline at the configured
// pacing ratio.
func (po *Port) Send(re gateway.RemoteEvent) error {
	var deadline time.Time
	if re.Budget > 0 {
		wall := time.Duration(float64(re.Budget) / po.paced.Ratio())
		deadline = time.Now().Add(wall)
	}
	return po.link.Send(re, deadline)
}

// SetReceiver implements gateway.Remote.
func (po *Port) SetReceiver(fn func(gateway.RemoteEvent)) { po.recv = fn }
