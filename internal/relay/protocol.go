// Package relay federates canec bus segments over real TCP links. Each
// daemon (cmd/canecd) runs one simulated segment paced against the wall
// clock (sim.Paced) and exchanges events with its peers through a small
// versioned binary protocol. The relay is deliberately dumb transport:
// all federation semantics — origin preservation, loop guards, per-hop
// deadline budgets, trace adoption — live in gateway.RemoteBridge; the
// relay contributes framing, per-peer subject subscriptions with origin
// filters, heartbeats and class-aware egress backpressure (NRT dropped
// first, expired SRT copies shed, HRT never silently dropped).
package relay

import (
	"encoding/binary"
	"fmt"
	"io"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/sim"
)

// ProtoVersion is the relay wire protocol version carried in Hello.
const ProtoVersion = 1

// maxMsgLen bounds a single length-prefixed message; longer prefixes are
// treated as stream corruption and close the link.
const maxMsgLen = 1 << 20

// Message types. Every message on the wire is a 4-byte big-endian length
// prefix followed by one type byte and the type-specific body.
const (
	msgHello     byte = 1 // version u8, segment string
	msgSub       byte = 2 // subject u64, include TxNodes, exclude TxNodes
	msgUnsub     byte = 3 // subject u64
	msgFrame     byte = 4 // federation metadata + CAN-encoded payload chunks
	msgHeartbeat byte = 5 // empty body
)

// MsgFrame is the wire type byte of data-plane frame messages, exported
// so fault-injection tooling (internal/chaos) can tell data from control
// traffic without decoding message bodies.
const MsgFrame = msgFrame

// chunk priorities map the channel class onto the synthetic CAN IDs the
// payload chunks travel under. They are transport framing only — the
// receiving segment re-publishes through its own middleware, which
// assigns real per-segment priorities — but keeping the paper's
// P_HRT < P_SRT < P_NRT ordering makes captures self-describing.
func chunkPrio(class core.Class) can.Prio {
	switch class {
	case core.HRT:
		return 0
	case core.SRT:
		return 64
	default:
		return 192
	}
}

// appendString appends a u8-length-prefixed string (relay strings are
// short segment names; longer ones fail encode).
func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > 255 {
		return nil, fmt.Errorf("relay: string %q exceeds 255 bytes", s[:32])
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...), nil
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, io.ErrUnexpectedEOF
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

func appendU16(dst []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(dst, v)
}

func readU16(b []byte) (uint16, []byte, error) {
	if len(b) < 2 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return binary.BigEndian.Uint16(b), b[2:], nil
}

// encodeHello builds a Hello body.
func encodeHello(segment string) ([]byte, error) {
	b := []byte{msgHello, ProtoVersion}
	return appendString(b, segment)
}

// decodeHello parses a Hello body (after the type byte).
func decodeHello(b []byte) (version byte, segment string, err error) {
	if len(b) < 1 {
		return 0, "", io.ErrUnexpectedEOF
	}
	version = b[0]
	segment, _, err = readString(b[1:])
	return version, segment, err
}

// subscription is a peer's interest in one subject, with optional origin
// filtering evaluated against RemoteEvent.Origin at the sending relay —
// this is how the paper's origin-TxNode filtering (§2.2.1) is honored
// remotely, before the event ever crosses the wire.
type subscription struct {
	Subject binding.Subject
	Include []can.TxNode // empty = all origins
	Exclude []can.TxNode
}

// accepts reports whether an event origin passes the filter.
func (s subscription) accepts(origin can.TxNode) bool {
	for _, x := range s.Exclude {
		if x == origin {
			return false
		}
	}
	if len(s.Include) == 0 {
		return true
	}
	for _, i := range s.Include {
		if i == origin {
			return true
		}
	}
	return false
}

func encodeSub(s subscription) ([]byte, error) {
	if len(s.Include) > 255 || len(s.Exclude) > 255 {
		return nil, fmt.Errorf("relay: origin filter list exceeds 255 nodes")
	}
	b := []byte{msgSub}
	b = appendU64(b, uint64(s.Subject))
	b = append(b, byte(len(s.Include)))
	for _, n := range s.Include {
		b = append(b, byte(n))
	}
	b = append(b, byte(len(s.Exclude)))
	for _, n := range s.Exclude {
		b = append(b, byte(n))
	}
	return b, nil
}

func decodeSub(b []byte) (subscription, error) {
	var s subscription
	subj, b, err := readU64(b)
	if err != nil {
		return s, err
	}
	s.Subject = binding.Subject(subj)
	readNodes := func(b []byte) ([]can.TxNode, []byte, error) {
		if len(b) < 1 {
			return nil, nil, io.ErrUnexpectedEOF
		}
		n := int(b[0])
		if len(b) < 1+n {
			return nil, nil, io.ErrUnexpectedEOF
		}
		var nodes []can.TxNode
		for i := 0; i < n; i++ {
			nodes = append(nodes, can.TxNode(b[1+i]))
		}
		return nodes, b[1+n:], nil
	}
	if s.Include, b, err = readNodes(b); err != nil {
		return s, err
	}
	if s.Exclude, _, err = readNodes(b); err != nil {
		return s, err
	}
	return s, nil
}

func encodeUnsub(subject binding.Subject) []byte {
	return appendU64([]byte{msgUnsub}, uint64(subject))
}

func decodeUnsub(b []byte) (binding.Subject, error) {
	subj, _, err := readU64(b)
	return binding.Subject(subj), err
}

// encodeFrame serialises a RemoteEvent. The payload crosses the wire as
// stuffed CAN 2.0B bit streams — one extended data frame per 8-byte
// chunk, produced by the repository's wire codec and packed eight bits
// per byte — so every relay hop carries (and CRC-checks) genuine CAN
// frames rather than an ad-hoc byte blob.
//
// Body layout after the type byte:
//
//	class u8 | origin u8 | hops u8 | originSeg str |
//	subject u64 | budget i64 | traceID u64 |
//	nchunks u16 | { bitCount u16, packed ⌈bitCount/8⌉ bytes }*
func encodeFrame(codec *can.Codec, re gateway.RemoteEvent) ([]byte, error) {
	b := []byte{msgFrame, byte(re.Class), byte(re.Origin), byte(re.Hops)}
	b, err := appendString(b, re.OriginSeg)
	if err != nil {
		return nil, err
	}
	b = appendU64(b, uint64(re.Subject))
	b = appendU64(b, uint64(re.Budget))
	b = appendU64(b, re.TraceID)

	nchunks := (len(re.Payload) + can.MaxPayload - 1) / can.MaxPayload
	if nchunks > 0xffff {
		return nil, fmt.Errorf("relay: payload %d bytes exceeds chunk limit", len(re.Payload))
	}
	b = appendU16(b, uint16(nchunks))
	prio := chunkPrio(re.Class)
	etag := can.Etag(uint64(re.Subject) & uint64(can.MaxEtag))
	var packed [maxPackedChunk]byte
	for i := 0; i < nchunks; i++ {
		lo := i * can.MaxPayload
		hi := lo + can.MaxPayload
		if hi > len(re.Payload) {
			hi = len(re.Payload)
		}
		f := can.Frame{
			ID:   can.MakeID(prio, re.Origin, etag),
			Data: re.Payload[lo:hi],
			Tag:  re.TraceID,
		}
		bits := codec.Encode(nil, f)
		b = appendU16(b, uint16(len(bits)))
		b = append(b, can.PackBits(packed[:0], bits)...)
	}
	return b, nil
}

// maxPackedChunk bounds the packed byte form of one stuffed chunk.
const maxPackedChunk = 32

// decodeFrame parses a Frame body (after the type byte), verifying each
// chunk's CAN encoding (stuffing discipline and CRC-15).
func decodeFrame(codec *can.Codec, b []byte) (gateway.RemoteEvent, error) {
	var re gateway.RemoteEvent
	if len(b) < 3 {
		return re, io.ErrUnexpectedEOF
	}
	re.Class = core.Class(b[0])
	if re.Class != core.HRT && re.Class != core.SRT && re.Class != core.NRT {
		return re, fmt.Errorf("relay: unknown class %d", b[0])
	}
	re.Origin = can.TxNode(b[1])
	re.Hops = int(b[2])
	var err error
	re.OriginSeg, b, err = readString(b[3:])
	if err != nil {
		return re, err
	}
	var subj, budget uint64
	if subj, b, err = readU64(b); err != nil {
		return re, err
	}
	re.Subject = binding.Subject(subj)
	if budget, b, err = readU64(b); err != nil {
		return re, err
	}
	re.Budget = sim.Duration(int64(budget))
	if re.TraceID, b, err = readU64(b); err != nil {
		return re, err
	}
	nchunks, b, err := readU16(b)
	if err != nil {
		return re, err
	}
	var bits [can.MaxStuffedBits]byte
	for i := 0; i < int(nchunks); i++ {
		var bitCount uint16
		if bitCount, b, err = readU16(b); err != nil {
			return re, err
		}
		if int(bitCount) > can.MaxStuffedBits {
			return re, fmt.Errorf("relay: chunk %d claims %d bits", i, bitCount)
		}
		packedLen := (int(bitCount) + 7) / 8
		if len(b) < packedLen {
			return re, io.ErrUnexpectedEOF
		}
		chunkBits, err := can.UnpackBits(bits[:0], b[:packedLen], int(bitCount))
		if err != nil {
			return re, fmt.Errorf("relay: chunk %d: %w", i, err)
		}
		b = b[packedLen:]
		f, err := codec.Decode(chunkBits)
		if err != nil {
			return re, fmt.Errorf("relay: chunk %d: %w", i, err)
		}
		re.Payload = append(re.Payload, f.Data...)
	}
	return re, nil
}

// writeMsg frames and writes one message (type byte + body in b).
func writeMsg(w io.Writer, b []byte) (int, error) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return 4 + n, err
}

// readMsg reads one length-prefixed message into a fresh buffer.
func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMsgLen {
		return nil, fmt.Errorf("relay: message length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Default retry policy for uplink re-dialing when the config leaves it
// zero: the binding protocol's capped exponential schedule.
func retryOrDefault(p binding.RetryPolicy) binding.RetryPolicy {
	if p.Base <= 0 {
		return binding.DefaultRetryPolicy()
	}
	return p
}
