package relay

import (
	"bytes"
	"reflect"
	"testing"

	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/sim"
)

func TestHelloRoundTrip(t *testing.T) {
	b, err := encodeHello("plant-floor")
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != msgHello {
		t.Fatalf("type byte = %d", b[0])
	}
	ver, seg, err := decodeHello(b[1:])
	if err != nil || ver != ProtoVersion || seg != "plant-floor" {
		t.Fatalf("decode: ver=%d seg=%q err=%v", ver, seg, err)
	}
}

func TestSubRoundTrip(t *testing.T) {
	in := subscription{Subject: 0x1234, Include: []can.TxNode{3, 7}, Exclude: []can.TxNode{9}}
	b, err := encodeSub(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeSub(b[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if !out.accepts(3) || !out.accepts(7) {
		t.Fatal("included origin rejected")
	}
	if out.accepts(9) || out.accepts(5) {
		t.Fatal("excluded/unlisted origin accepted")
	}
	open := subscription{Subject: 1}
	if !open.accepts(42) {
		t.Fatal("open subscription rejected an origin")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var codec can.Codec
	for _, payloadLen := range []int{0, 1, 8, 9, 40} {
		payload := make([]byte, payloadLen)
		for i := range payload {
			payload[i] = byte(i*7 + 1)
		}
		in := gateway.RemoteEvent{
			Class:     core.SRT,
			Subject:   0xBEEF,
			Payload:   payload,
			Origin:    5,
			OriginSeg: "segA",
			Hops:      2,
			Budget:    30 * sim.Millisecond,
			TraceID:   1_000_042,
		}
		b, err := encodeFrame(&codec, in)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != msgFrame {
			t.Fatalf("type byte = %d", b[0])
		}
		out, err := decodeFrame(&codec, b[1:])
		if err != nil {
			t.Fatalf("payload %d: %v", payloadLen, err)
		}
		if !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("payload %d: %v != %v", payloadLen, out.Payload, in.Payload)
		}
		out.Payload, in.Payload = nil, nil
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("metadata: %+v != %+v", out, in)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	var codec can.Codec
	in := gateway.RemoteEvent{
		Class: core.HRT, Subject: 7, Payload: []byte{1, 2, 3, 4},
		OriginSeg: "x", TraceID: 9,
	}
	b, err := encodeFrame(&codec, in)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the packed CAN chunk: the CRC-15 check must
	// refuse the frame.
	b[len(b)-3] ^= 0x10
	if _, err := decodeFrame(&codec, b[1:]); err == nil {
		t.Fatal("corrupted chunk accepted")
	}
	// Truncations at every prefix must error, never panic.
	good, _ := encodeFrame(&codec, in)
	for cut := 1; cut < len(good); cut++ {
		if _, err := decodeFrame(&codec, good[1:cut]); err == nil && cut < len(good)-1 {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Unknown class byte.
	bad := append([]byte(nil), good[1:]...)
	bad[0] = 99
	if _, err := decodeFrame(&codec, bad); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestReadWriteMsgFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{msgHeartbeat}, {msgUnsub, 0, 0, 0, 0, 0, 0, 0, 9}}
	for _, m := range msgs {
		if _, err := writeMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := readMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("framing: %v != %v", got, want)
		}
	}
	// Oversized length prefix is stream corruption.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readMsg(&buf); err == nil {
		t.Fatal("oversized message accepted")
	}
}
