package relay

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/obs/admin"
	"canec/internal/sim"
)

// fastCfg keeps wall-clock tests quick.
func fastCfg(segment string) Config {
	return Config{
		Segment:          segment,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 50 * time.Millisecond,
		Retry: binding.RetryPolicy{
			Base: sim.Duration(5 * time.Millisecond), Cap: sim.Duration(20 * time.Millisecond),
			Attempts: 1000, JitterFrac: 0.1,
		},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLoopbackBothDirections(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fastCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var toHub, toLeaf atomic.Uint64
	var lastHub, lastLeaf atomic.Value
	srv.OnFrame(func(re gateway.RemoteEvent) { lastHub.Store(re); toHub.Add(1) })
	if err := srv.Subscribe(0xA1, nil, nil); err != nil {
		t.Fatal(err)
	}

	up := Dial(srv.Addr().String(), fastCfg("leaf"))
	defer up.Close()
	up.OnFrame(func(re gateway.RemoteEvent) { lastLeaf.Store(re); toLeaf.Add(1) })
	if err := up.Subscribe(0xB2, nil, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link up", func() bool { return up.Connected() && srv.Peers() == 1 })

	// Leaf → hub on the hub's subscribed subject.
	send := gateway.RemoteEvent{
		Class: core.SRT, Subject: 0xA1, Payload: []byte{1, 2, 3},
		Origin: 4, OriginSeg: "leaf", TraceID: 77,
	}
	waitFor(t, "leaf→hub delivery", func() bool {
		up.Send(send, time.Time{})
		return toHub.Load() > 0
	})
	got := lastHub.Load().(gateway.RemoteEvent)
	if !bytes.Equal(got.Payload, send.Payload) || got.Origin != 4 || got.OriginSeg != "leaf" || got.TraceID != 77 {
		t.Fatalf("hub received %+v", got)
	}

	// Hub → leaf on the leaf's subscribed subject.
	waitFor(t, "hub→leaf delivery", func() bool {
		srv.Send(gateway.RemoteEvent{
			Class: core.SRT, Subject: 0xB2, Payload: []byte{9},
			Origin: 1, OriginSeg: "hub", TraceID: 78,
		}, time.Time{})
		return toLeaf.Load() > 0
	})

	// An unsubscribed subject never crosses.
	before := toHub.Load()
	up.Send(gateway.RemoteEvent{Class: core.SRT, Subject: 0xFF, OriginSeg: "leaf"}, time.Time{})
	time.Sleep(30 * time.Millisecond)
	if toHub.Load() != before {
		t.Fatal("unsubscribed subject delivered")
	}
}

func TestOriginFilterAppliedRemotely(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fastCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var n atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { n.Add(1) })
	// The hub only wants subject 0xC3 from origins other than TxNode 9 —
	// the paper's origin filtering enforced before the wire is spent.
	if err := srv.Subscribe(0xC3, nil, []can.TxNode{9}); err != nil {
		t.Fatal(err)
	}
	up := Dial(srv.Addr().String(), fastCfg("leaf"))
	defer up.Close()
	waitFor(t, "link up", func() bool { return up.Connected() })

	waitFor(t, "accepted origin", func() bool {
		up.Send(gateway.RemoteEvent{Class: core.SRT, Subject: 0xC3, Origin: 2, OriginSeg: "leaf"}, time.Time{})
		return n.Load() > 0
	})
	// Let deliveries from the retry loop above finish before measuring.
	waitFor(t, "quiesce", func() bool {
		v := n.Load()
		time.Sleep(20 * time.Millisecond)
		return n.Load() == v
	})
	before := n.Load()
	refusedBefore := up.Counters().refuse.Load()
	up.Send(gateway.RemoteEvent{Class: core.SRT, Subject: 0xC3, Origin: 9, OriginSeg: "leaf"}, time.Time{})
	waitFor(t, "filtered origin refused locally", func() bool {
		return up.Counters().refuse.Load() > refusedBefore
	})
	time.Sleep(20 * time.Millisecond)
	if n.Load() != before {
		t.Fatal("filtered origin crossed the wire")
	}
	// Echo guard: an event whose OriginSeg matches the peer's segment is
	// never sent back to it.
	up.Send(gateway.RemoteEvent{Class: core.SRT, Subject: 0xC3, Origin: 2, OriginSeg: "hub"}, time.Time{})
	time.Sleep(20 * time.Millisecond)
	if n.Load() != before {
		t.Fatal("event echoed back to its origin segment")
	}
}

// TestHeartbeatTimeoutRedial connects the uplink to a silent TCP
// endpoint (accepts, never speaks). The heartbeat timeout must kill the
// link and the retry policy must drive re-dials.
func TestHeartbeatTimeoutRedial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, say nothing.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	var mu sync.Mutex
	var downs []string
	cfg := fastCfg("impatient")
	cfg.Trace = func(e Event) {
		if e.Kind == "down" {
			mu.Lock()
			downs = append(downs, e.Detail)
			mu.Unlock()
		}
	}
	up := Dial(ln.Addr().String(), cfg)
	defer up.Close()
	waitFor(t, "heartbeat-timeout redial", func() bool {
		return up.Counters().Redials() >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, d := range downs {
		if len(d) >= 9 && d[:9] == "heartbeat" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no heartbeat-timeout down event; downs = %q", downs)
	}
}

// TestPeerDisconnectMidFrame feeds the uplink a valid Hello followed by
// a truncated frame message, then slams the connection. The reader must
// fail cleanly (no panic, no partial delivery) and re-dial; after the
// fake peer is replaced by a real server, traffic flows.
func TestPeerDisconnectMidFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	accepted := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		hello, _ := encodeHello("trickster")
		writeMsg(c, hello)
		// Announce a 64-byte message but deliver only a sliver of it.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 64)
		c.Write(hdr[:])
		c.Write([]byte{msgFrame, 1, 2, 3})
		time.Sleep(5 * time.Millisecond)
		c.Close()
		ln.Close()
		close(accepted)
	}()

	var delivered atomic.Uint64
	up := Dial(addr, fastCfg("victim"))
	defer up.Close()
	up.OnFrame(func(gateway.RemoteEvent) { delivered.Add(1) })
	<-accepted
	waitFor(t, "redial after mid-frame disconnect", func() bool {
		return up.Counters().Redials() >= 1
	})
	if delivered.Load() != 0 {
		t.Fatal("truncated frame was delivered")
	}

	// Stand up a real server on the same address; the uplink's retry
	// loop must find it and resume service.
	srv, err := Serve(addr, fastCfg("hub"))
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv.Close()
	var got atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { got.Add(1) })
	srv.Subscribe(0xD4, nil, nil)
	waitFor(t, "recovery delivery", func() bool {
		up.Send(gateway.RemoteEvent{Class: core.SRT, Subject: 0xD4, OriginSeg: "victim"}, time.Time{})
		return got.Load() > 0
	})
}

// TestSubscriptionRaceWithTraffic hammers subscription updates while
// frames are in flight; run under -race this proves the filter tables
// are safely shared between the control and data planes.
func TestSubscriptionRaceWithTraffic(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", fastCfg("hub"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var got atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { got.Add(1) })
	srv.Subscribe(0xE5, nil, nil)
	up := Dial(srv.Addr().String(), fastCfg("leaf"))
	defer up.Close()
	up.OnFrame(func(gateway.RemoteEvent) {})
	waitFor(t, "link up", func() bool { return up.Connected() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // data plane: leaf → hub
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			up.Send(gateway.RemoteEvent{
				Class: core.SRT, Subject: 0xE5, Origin: can.TxNode(i % 8),
				OriginSeg: "leaf", TraceID: uint64(i + 1),
			}, time.Time{})
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // control plane: the hub flaps its origin filter
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.Subscribe(0xE5, nil, []can.TxNode{can.TxNode(i % 8)})
			time.Sleep(300 * time.Microsecond)
		}
	}()
	go func() { // control plane: the leaf churns an unrelated subject
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				up.Subscribe(0xE6, nil, nil)
			} else {
				up.Unsubscribe(0xE6)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got.Load() == 0 {
		t.Fatal("no frames crossed during the subscription churn")
	}
}

// BenchmarkRelayThroughput measures end-to-end frames/s over a loopback
// TCP link: encode → queue → write → read → decode → deliver. HRT class
// keeps the egress queue lossless so every sent frame is awaited.
func BenchmarkRelayThroughput(b *testing.B) {
	cfg := Config{Segment: "bench", HeartbeatEvery: time.Second}
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var got atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { got.Add(1) })
	srv.Subscribe(0xF7, nil, nil)
	up := Dial(srv.Addr().String(), cfg)
	defer up.Close()
	deadline := time.Now().Add(5 * time.Second)
	for (!up.Connected() || srv.Peers() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	re := gateway.RemoteEvent{
		Class: core.HRT, Subject: 0xF7, Payload: payload,
		Origin: 3, OriginSeg: "bench-peer", TraceID: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.TraceID = uint64(i + 1)
		if err := up.Send(re, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	for got.Load() < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRelayThroughputObserved is the same loopback pipeline with
// the live introspection plane attached (E14): relay trace events are
// bridged into an Observer on a paced kernel via ObserveTrace, and an
// admin server is scraped for /metrics concurrently with the frame
// stream. The delta against BenchmarkRelayThroughput is the cost of
// observing a federated link while it is under load.
func BenchmarkRelayThroughputObserved(b *testing.B) {
	k := sim.NewKernel(99)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Kernel: k,
		Observe: &obs.Config{Metrics: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	paced := sim.NewPaced(k, 1.0)
	go paced.Run(sim.Time(time.Hour))
	defer paced.Stop()

	cfg := Config{Segment: "bench", HeartbeatEvery: time.Second,
		Trace: ObserveTrace(paced, sys.Obs, 0, nil)}
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var got atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { got.Add(1) })
	srv.Subscribe(0xF7, nil, nil)
	up := Dial(srv.Addr().String(), cfg)
	defer up.Close()
	deadline := time.Now().Add(5 * time.Second)
	for (!up.Connected() || srv.Peers() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	adm, err := admin.Serve("127.0.0.1:0", admin.Options{
		Segment: "bench", Registry: sys.Obs.Registry(), Observer: sys.Obs,
		Now: k.Now, InKernel: paced.Call,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer adm.Close()
	stopScrape := make(chan struct{})
	defer close(stopScrape)
	go func() { // a live Prometheus scraper, as a deployment would have
		client := &http.Client{Timeout: time.Second}
		url := "http://" + adm.Addr() + "/metrics"
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			if resp, err := client.Get(url); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	re := gateway.RemoteEvent{
		Class: core.HRT, Subject: 0xF7, Payload: payload,
		Origin: 3, OriginSeg: "bench-peer", TraceID: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.TraceID = uint64(i + 1)
		if err := up.Send(re, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	for got.Load() < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
