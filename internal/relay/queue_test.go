package relay

import (
	"testing"
	"time"

	"canec/internal/core"
	"canec/internal/gateway"
)

func item(class core.Class, id uint64, deadline time.Time) qItem {
	return qItem{
		re:           gateway.RemoteEvent{Class: class, TraceID: id},
		wallDeadline: deadline,
	}
}

func TestQueueDrainOrder(t *testing.T) {
	q := newEgressQueue(8, 8)
	now := time.Now()
	q.push(item(core.NRT, 1, time.Time{}), now)
	q.push(item(core.SRT, 2, now.Add(time.Hour)), now)
	q.push(item(core.HRT, 3, time.Time{}), now)
	var order []uint64
	for {
		it, ok, _ := q.pop(now)
		if !ok {
			break
		}
		order = append(order, it.re.TraceID)
	}
	if len(order) != 3 || order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("drain order = %v, want [3 2 1] (HRT→SRT→NRT)", order)
	}
}

func TestQueueNRTDropsOldestFirst(t *testing.T) {
	q := newEgressQueue(8, 2)
	now := time.Now()
	var drops []uint64
	for id := uint64(1); id <= 4; id++ {
		for _, f := range q.push(item(core.NRT, id, time.Time{}), now) {
			if f.reason != "backpressure" {
				t.Fatalf("NRT drop reason = %q", f.reason)
			}
			drops = append(drops, f.item.re.TraceID)
		}
	}
	if len(drops) != 2 || drops[0] != 1 || drops[1] != 2 {
		t.Fatalf("NRT drops = %v, want oldest-first [1 2]", drops)
	}
}

func TestQueueSRTShedsExpiredBeforeDropping(t *testing.T) {
	q := newEgressQueue(2, 8)
	now := time.Now()
	// One already-expired item and one live one fill the queue.
	q.push(item(core.SRT, 1, now.Add(-time.Second)), now)
	q.push(item(core.SRT, 2, now.Add(time.Hour)), now)
	// The third push must shed the expired copy, not the live one.
	fates := q.push(item(core.SRT, 3, now.Add(time.Hour)), now)
	if len(fates) != 1 || fates[0].item.re.TraceID != 1 || fates[0].reason != "expired" {
		t.Fatalf("fates = %+v, want expired item 1 shed", fates)
	}
	// With only live items, overflow falls back to drop-oldest.
	fates = q.push(item(core.SRT, 4, now.Add(time.Hour)), now)
	if len(fates) != 1 || fates[0].item.re.TraceID != 2 || fates[0].reason != "backpressure" {
		t.Fatalf("fates = %+v, want backpressure drop of item 2", fates)
	}
}

func TestQueueSRTShedsExpiredAtPop(t *testing.T) {
	q := newEgressQueue(8, 8)
	now := time.Now()
	q.push(item(core.SRT, 1, now.Add(time.Millisecond)), now)
	q.push(item(core.SRT, 2, now.Add(time.Hour)), now)
	later := now.Add(time.Second)
	it, ok, shed := q.pop(later)
	if !ok || it.re.TraceID != 2 {
		t.Fatalf("pop = %+v ok=%v, want live item 2", it.re, ok)
	}
	if len(shed) != 1 || shed[0].item.re.TraceID != 1 || shed[0].reason != "expired" {
		t.Fatalf("shed = %+v", shed)
	}
}

func TestQueueHRTNeverDroppedOnlyLate(t *testing.T) {
	q := newEgressQueue(1, 1)
	now := time.Now()
	// Push far past any bound: HRT has no cap.
	for id := uint64(1); id <= 100; id++ {
		if fates := q.push(item(core.HRT, id, now.Add(-time.Second)), now); len(fates) != 0 {
			t.Fatalf("HRT push dropped: %+v", fates)
		}
	}
	late := 0
	for {
		it, ok, _ := q.pop(now)
		if !ok {
			break
		}
		if it.late {
			late++
		}
	}
	if late != 100 {
		t.Fatalf("late HRT count = %d, want 100 (delivered late, never dropped)", late)
	}
}
