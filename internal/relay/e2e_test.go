package relay

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/sim"
)

// segment bundles one federated bus segment for the e2e tests: its own
// kernel, system, observer and paced driver.
type segment struct {
	name  string
	sys   *core.System
	paced *sim.Paced
}

func newSegment(t *testing.T, name string, seed, traceBase uint64) *segment {
	t.Helper()
	k := sim.NewKernel(seed)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes:  4,
		Kernel: k,
		Observe: &obs.Config{
			Trace: true, Metrics: true, TraceIDBase: traceBase,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &segment{name: name, sys: sys, paced: sim.NewPaced(k, 1.0)}
}

// records snapshots the segment's trace records in kernel context.
func (s *segment) records() []obs.Record {
	var out []obs.Record
	s.paced.Call(func() {
		out = append(out, s.sys.Obs.Records()...)
	})
	return out
}

// TestE2EThreeSegmentFederation is the acceptance scenario: an SRT
// event published on segment A reaches a subscriber on segment C
// through two real TCP relay hops (A→B, B→C), with
//
//   - the per-hop deadline budget carried and debited at the transit
//     segment,
//   - origin-TxNode filtering honored remotely (C's subscription
//     excludes one of A's publishers, enforced before the B→C wire),
//   - one continuous observability trace spanning all three segments
//     (disjoint trace-ID bases, origin ID adopted at every hop).
func TestE2EThreeSegmentFederation(t *testing.T) {
	const subj binding.Subject = 0x51
	segA := newSegment(t, "segA", 101, 1<<32)
	segB := newSegment(t, "segB", 102, 2<<32)
	segC := newSegment(t, "segC", 103, 3<<32)

	// B is the transit hub: it listens once per link.
	srvAB, err := Serve("127.0.0.1:0", fastCfg("segB"))
	if err != nil {
		t.Fatal(err)
	}
	defer srvAB.Close()
	srvBC, err := Serve("127.0.0.1:0", fastCfg("segB"))
	if err != nil {
		t.Fatal(err)
	}
	defer srvBC.Close()
	upA := Dial(srvAB.Addr().String(), fastCfg("segA"))
	defer upA.Close()
	upC := Dial(srvBC.Addr().String(), fastCfg("segC"))
	defer upC.Close()

	// Ports adapt the links into each segment's kernel.
	portA := NewPort(segA.paced, upA)
	portBA := NewPort(segB.paced, srvAB)
	portBC := NewPort(segB.paced, srvBC)
	portC := NewPort(segC.paced, upC)

	// Bridges: A ships subj out; B receives on node 2, re-ships via
	// node 3 (siblings preserve origin/hops/budget); C receives.
	bA, err := gateway.NewRemote(segA.sys.Node(3).MW, portA, "segA")
	if err != nil {
		t.Fatal(err)
	}
	bBA, err := gateway.NewRemote(segB.sys.Node(2).MW, portBA, "segB")
	if err != nil {
		t.Fatal(err)
	}
	bBC, err := gateway.NewRemote(segB.sys.Node(3).MW, portBC, "segB")
	if err != nil {
		t.Fatal(err)
	}
	bC, err := gateway.NewRemote(segC.sys.Node(2).MW, portC, "segC")
	if err != nil {
		t.Fatal(err)
	}
	bBA.LinkSiblings(bBC)

	// Egress subscriptions at the relay layer: B wants subj from A
	// (any origin); C wants subj but explicitly NOT from A's TxNode 1 —
	// the remote origin filter under test.
	if err := srvAB.Subscribe(subj, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := upC.Subscribe(subj, nil, []can.TxNode{1}); err != nil {
		t.Fatal(err)
	}

	// Kernel-side channel wiring (before the kernels start running).
	if err := bA.Forward(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := bBA.Announce(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := bBC.Forward(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := bC.Announce(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}

	pub0, err := segA.sys.Node(0).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub0.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	pub1, err := segA.sys.Node(1).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub1.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Uint64
	var mu sync.Mutex
	var payloads [][]byte
	subC, err := segC.sys.Node(1).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	subC.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(ev core.Event, _ core.DeliveryInfo) {
			mu.Lock()
			payloads = append(payloads, append([]byte(nil), ev.Payload...))
			mu.Unlock()
			delivered.Add(1)
		}, nil)

	// Settle bindings deterministically before pacing starts.
	for _, s := range []*segment{segA, segB, segC} {
		s.sys.K.Run(100 * sim.Millisecond)
	}

	const horizon = time.Hour // the test stops the pacers explicitly
	var wg sync.WaitGroup
	for _, s := range []*segment{segA, segB, segC} {
		wg.Add(1)
		go func(s *segment) {
			defer wg.Done()
			s.paced.Run(sim.Time(horizon))
		}(s)
	}
	defer func() {
		for _, s := range []*segment{segA, segB, segC} {
			s.paced.Stop()
		}
		wg.Wait()
	}()

	waitFor(t, "links up", func() bool {
		return upA.Connected() && upC.Connected() && srvAB.Peers() == 1 && srvBC.Peers() == 1
	})

	// Publish from the allowed origin (TxNode 0) until one copy lands
	// on C (the first sends may race the Sub handshake).
	want := []byte{0xCA, 0xFE}
	waitFor(t, "A→B→C delivery", func() bool {
		segA.paced.Call(func() {
			now := segA.sys.Node(0).MW.LocalTime()
			pub0.Publish(core.Event{Subject: subj, Payload: want,
				Attrs: core.EventAttrs{Deadline: now + 10*sim.Millisecond}})
		})
		time.Sleep(20 * time.Millisecond)
		return delivered.Load() > 0
	})
	mu.Lock()
	if !bytes.Equal(payloads[0], want) {
		t.Fatalf("C received %v, want %v", payloads[0], want)
	}
	mu.Unlock()

	// Origin filtering honored remotely: a publication from A's TxNode 1
	// must never reach C (blocked at B's egress, before the B→C wire).
	waitFor(t, "quiesce", func() bool {
		v := delivered.Load()
		time.Sleep(30 * time.Millisecond)
		return delivered.Load() == v
	})
	before := delivered.Load()
	segA.paced.Call(func() {
		now := segA.sys.Node(1).MW.LocalTime()
		pub1.Publish(core.Event{Subject: subj, Payload: []byte{0xBA, 0xD0},
			Attrs: core.EventAttrs{Deadline: now + 10*sim.Millisecond}})
	})
	time.Sleep(80 * time.Millisecond)
	if delivered.Load() != before {
		t.Fatal("origin-filtered publisher reached C")
	}

	// Stop the pacers before reading cross-segment state.
	for _, s := range []*segment{segA, segB, segC} {
		s.paced.Stop()
	}
	wg.Wait()

	// One continuous trace: find the delivered event's trace ID on C,
	// then demand the same ID appears in every segment's records with
	// the expected relay stages. IDs from A's base prove the origin ID
	// survived both hops.
	recA, recB, recC := segA.records(), segB.records(), segC.records()
	var traceID uint64
	for _, r := range recC {
		if r.Stage == obs.StageDelivered && r.ID != 0 {
			traceID = r.ID
		}
	}
	if traceID == 0 {
		t.Fatal("no delivered trace on C")
	}
	if traceID>>32 != 1 {
		t.Fatalf("trace ID %#x not from segment A's base", traceID)
	}
	stages := func(recs []obs.Record) map[obs.Stage][]obs.Record {
		m := make(map[obs.Stage][]obs.Record)
		for _, r := range recs {
			if r.ID == traceID {
				m[r.Stage] = append(m[r.Stage], r)
			}
		}
		return m
	}
	sA, sB, sC := stages(recA), stages(recB), stages(recC)
	for _, tc := range []struct {
		seg   string
		m     map[obs.Stage][]obs.Record
		stage obs.Stage
	}{
		{"A", sA, obs.StagePublished},
		{"A", sA, obs.StageRelayTx},
		{"B", sB, obs.StageRelayRx},
		{"B", sB, obs.StagePublished}, // adopted republication
		{"B", sB, obs.StageRelayTx},   // onward transit hop
		{"C", sC, obs.StageRelayRx},
		{"C", sC, obs.StagePublished},
		{"C", sC, obs.StageDelivered},
	} {
		if len(tc.m[tc.stage]) == 0 {
			t.Errorf("segment %s: no %s record for trace %#x", tc.seg, tc.stage, traceID)
		}
	}
	// Per-hop metadata: C's relay_rx must show the second hop, and B's
	// relay_tx a budget already debited below the origin grant.
	if rx := sC[obs.StageRelayRx]; len(rx) > 0 && !strings.Contains(rx[0].Detail, "hop 2") {
		t.Errorf("C relay_rx detail = %q, want hop 2", rx[0].Detail)
	}
	if bBC.Forwarded() == 0 {
		t.Error("transit bridge forwarded nothing")
	}
}

// TestE2EBudgetExhaustedShedsSRT proves the per-hop deadline budget has
// teeth: an SRT event granted a budget smaller than one bus traversal
// is shed at a relay hop (egress-queue expiry or transit debit) and
// never reaches the far segment. HRT semantics (late, never silently
// dropped) are covered by queue tests.
func TestE2EBudgetExhaustedShedsSRT(t *testing.T) {
	const subj binding.Subject = 0x52
	segA := newSegment(t, "segA", 201, 1<<32)
	segB := newSegment(t, "segB", 202, 2<<32)

	srv, err := Serve("127.0.0.1:0", fastCfg("segB"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	up := Dial(srv.Addr().String(), fastCfg("segA"))
	defer up.Close()

	portA := NewPort(segA.paced, up)
	portB := NewPort(segB.paced, srv)
	bA, err := gateway.NewRemote(segA.sys.Node(3).MW, portA, "segA")
	if err != nil {
		t.Fatal(err)
	}
	bB, err := gateway.NewRemote(segB.sys.Node(2).MW, portB, "segB")
	if err != nil {
		t.Fatal(err)
	}
	// A budget far below one CAN frame time (125 µs at 1 Mbit/s): the
	// event cannot survive a hop's residence, let alone the queue wait.
	bA.Budget = 10 * sim.Microsecond
	if err := srv.Subscribe(subj, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := bA.Forward(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := bB.Announce(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}

	pub, err := segA.sys.Node(0).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	var deliveredB atomic.Uint64
	subB, err := segB.sys.Node(1).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	subB.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { deliveredB.Add(1) }, nil)

	for _, s := range []*segment{segA, segB} {
		s.sys.K.Run(100 * sim.Millisecond)
	}
	var wg sync.WaitGroup
	for _, s := range []*segment{segA, segB} {
		wg.Add(1)
		go func(s *segment) {
			defer wg.Done()
			s.paced.Run(sim.Time(time.Hour))
		}(s)
	}
	defer func() {
		segA.paced.Stop()
		segB.paced.Stop()
		wg.Wait()
	}()

	waitFor(t, "link up", func() bool { return up.Connected() && srv.Peers() == 1 })
	waitFor(t, "budget shed recorded", func() bool {
		segA.paced.Call(func() {
			now := segA.sys.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: subj, Payload: []byte{1},
				Attrs: core.EventAttrs{Deadline: now + 10*sim.Millisecond}})
		})
		time.Sleep(10 * time.Millisecond)
		return up.Counters().Dropped() > 0
	})
	time.Sleep(50 * time.Millisecond)
	if deliveredB.Load() != 0 {
		t.Fatalf("budget-starved SRT event reached B %d times", deliveredB.Load())
	}
}
