package relay

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/gateway"
)

// Config parameterises a relay endpoint (Server or Uplink).
type Config struct {
	// Segment names the local bus segment; it is announced in Hello and
	// used by peers as the federation loop guard.
	Segment string
	// HeartbeatEvery is the wall-clock heartbeat period (default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout closes a link that stayed silent this long
	// (default 3×HeartbeatEvery). An uplink then re-dials under Retry.
	HeartbeatTimeout time.Duration
	// SRTQueueCap and NRTQueueCap bound the per-peer egress queues of
	// the respective classes (defaults 256 and 64; HRT is unbounded).
	SRTQueueCap, NRTQueueCap int
	// Retry is the uplink re-dial schedule; the zero value selects
	// binding.DefaultRetryPolicy (capped exponential, seeded jitter).
	Retry binding.RetryPolicy
	// Seed feeds the retry jitter RNG.
	Seed uint64
	// Trace, when non-nil, receives link lifecycle and frame-fate
	// events. It is invoked from network goroutines and must be
	// thread-safe; daemons forward into kernel context via sim.Paced.
	Trace func(Event)
}

func (c Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery <= 0 {
		return time.Second
	}
	return c.HeartbeatEvery
}

func (c Config) heartbeatTimeout() time.Duration {
	if c.HeartbeatTimeout <= 0 {
		return 3 * c.heartbeatEvery()
	}
	return c.HeartbeatTimeout
}

// Event is one relay-level occurrence reported through Config.Trace.
type Event struct {
	// Kind is one of "up", "down", "redial", "drop", "late".
	Kind string
	// Peer labels the remote end (its segment name once Hello arrived,
	// the network address before).
	Peer string
	// Detail is a short human-readable explanation.
	Detail string
	// Frame carries the affected event for drop/late kinds.
	Frame *gateway.RemoteEvent
}

// Counters aggregates a relay endpoint's statistics. All fields are
// maintained atomically; read them with the accessor methods.
type Counters struct {
	sent, received     atomic.Uint64
	dropped, late      atomic.Uint64
	redials, linkUps   atomic.Uint64
	linkDowns          atomic.Uint64
	bytesIn, bytesOut  atomic.Uint64
	decodeErrs, refuse atomic.Uint64
}

// Sent reports frames written to peers.
func (c *Counters) Sent() uint64 { return c.sent.Load() }

// Received reports frames decoded from peers.
func (c *Counters) Received() uint64 { return c.received.Load() }

// Dropped reports frames shed by backpressure or expiry.
func (c *Counters) Dropped() uint64 { return c.dropped.Load() }

// Late reports HRT frames forwarded after their budget ran out.
func (c *Counters) Late() uint64 { return c.late.Load() }

// Redials reports uplink re-dial attempts.
func (c *Counters) Redials() uint64 { return c.redials.Load() }

// LinkUps and LinkDowns report link state transitions.
func (c *Counters) LinkUps() uint64   { return c.linkUps.Load() }
func (c *Counters) LinkDowns() uint64 { return c.linkDowns.Load() }

// BytesIn and BytesOut report wire traffic including framing.
func (c *Counters) BytesIn() uint64  { return c.bytesIn.Load() }
func (c *Counters) BytesOut() uint64 { return c.bytesOut.Load() }

// conn wraps one established TCP connection with the relay protocol:
// a reader goroutine decoding incoming messages, a writer goroutine
// draining the egress queue and emitting heartbeats, and the peer's
// subscription table for egress filtering.
type conn struct {
	cfg   Config
	c     net.Conn
	q     *egressQueue
	cnt   *Counters
	trace func(Event)

	subMu    sync.Mutex
	peerSubs map[binding.Subject]subscription
	peerSeg  atomic.Value // string

	lastRx atomic.Int64 // unix nanos of last inbound message

	wmu sync.Mutex // serialises writes (writer loop + control messages)

	onFrame func(gateway.RemoteEvent)
	onClose func(*conn, string)

	closed    chan struct{}
	closeOnce sync.Once
	reason    atomic.Value // string
}

func newConn(c net.Conn, cfg Config, q *egressQueue, cnt *Counters,
	onFrame func(gateway.RemoteEvent), onClose func(*conn, string)) *conn {
	pc := &conn{
		cfg:      cfg,
		c:        c,
		q:        q,
		cnt:      cnt,
		trace:    cfg.Trace,
		peerSubs: make(map[binding.Subject]subscription),
		onFrame:  onFrame,
		onClose:  onClose,
		closed:   make(chan struct{}),
	}
	pc.lastRx.Store(time.Now().UnixNano())
	return pc
}

// peerName labels the peer for trace events.
func (pc *conn) peerName() string {
	if s, _ := pc.peerSeg.Load().(string); s != "" {
		return s
	}
	return pc.c.RemoteAddr().String()
}

func (pc *conn) emit(kind, detail string, re *gateway.RemoteEvent) {
	if pc.trace != nil {
		pc.trace(Event{Kind: kind, Peer: pc.peerName(), Detail: detail, Frame: re})
	}
}

// close shuts the connection down once, recording the reason.
func (pc *conn) close(reason string) {
	pc.closeOnce.Do(func() {
		pc.reason.Store(reason)
		close(pc.closed)
		pc.c.Close()
		pc.cnt.linkDowns.Add(1)
		pc.emit("down", reason, nil)
		if pc.onClose != nil {
			pc.onClose(pc, reason)
		}
	})
}

// start launches the reader and writer loops after sending the local
// Hello and the given initial subscriptions.
func (pc *conn) start(initialSubs []subscription) error {
	hello, err := encodeHello(pc.cfg.Segment)
	if err != nil {
		return err
	}
	if err := pc.write(hello); err != nil {
		return err
	}
	for _, s := range initialSubs {
		b, err := encodeSub(s)
		if err != nil {
			return err
		}
		if err := pc.write(b); err != nil {
			return err
		}
	}
	go pc.readLoop()
	go pc.writeLoop()
	return nil
}

// write frames and writes one message under the write lock.
func (pc *conn) write(b []byte) error {
	pc.wmu.Lock()
	n, err := writeMsg(pc.c, b)
	pc.wmu.Unlock()
	pc.cnt.bytesOut.Add(uint64(n))
	return err
}

// sendSub transmits a subscription control message mid-session.
func (pc *conn) sendSub(s subscription) error {
	b, err := encodeSub(s)
	if err != nil {
		return err
	}
	return pc.write(b)
}

// sendUnsub transmits an unsubscription control message.
func (pc *conn) sendUnsub(subject binding.Subject) error {
	return pc.write(encodeUnsub(subject))
}

// wantsFrame evaluates the peer's subscription table (subject + origin
// filter) and the origin-segment echo guard against one event.
func (pc *conn) wantsFrame(re gateway.RemoteEvent) bool {
	if seg, _ := pc.peerSeg.Load().(string); seg != "" && seg == re.OriginSeg {
		return false // never echo an event back toward its origin segment
	}
	pc.subMu.Lock()
	s, ok := pc.peerSubs[re.Subject]
	pc.subMu.Unlock()
	return ok && s.accepts(re.Origin)
}

// readLoop decodes inbound messages until the connection dies.
func (pc *conn) readLoop() {
	r := bufio.NewReader(pc.c)
	var codec can.Codec
	for {
		msg, err := readMsg(r)
		if err != nil {
			pc.close("read: " + err.Error())
			return
		}
		pc.cnt.bytesIn.Add(uint64(len(msg) + 4))
		pc.lastRx.Store(time.Now().UnixNano())
		switch msg[0] {
		case msgHello:
			ver, seg, err := decodeHello(msg[1:])
			if err != nil || ver != ProtoVersion {
				pc.close(fmt.Sprintf("hello: version %d, err %v", ver, err))
				return
			}
			first := pc.peerSeg.Load() == nil
			pc.peerSeg.Store(seg)
			if first {
				pc.cnt.linkUps.Add(1)
				pc.emit("up", "hello from "+seg, nil)
			}
		case msgSub:
			s, err := decodeSub(msg[1:])
			if err != nil {
				pc.close("sub: " + err.Error())
				return
			}
			pc.subMu.Lock()
			pc.peerSubs[s.Subject] = s
			pc.subMu.Unlock()
		case msgUnsub:
			subj, err := decodeUnsub(msg[1:])
			if err != nil {
				pc.close("unsub: " + err.Error())
				return
			}
			pc.subMu.Lock()
			delete(pc.peerSubs, subj)
			pc.subMu.Unlock()
		case msgFrame:
			re, err := decodeFrame(&codec, msg[1:])
			if err != nil {
				// A frame that fails its CAN CRC or structure check is
				// stream corruption; drop the link rather than guess.
				pc.cnt.decodeErrs.Add(1)
				pc.close("frame: " + err.Error())
				return
			}
			pc.cnt.received.Add(1)
			if pc.onFrame != nil {
				pc.onFrame(re)
			}
		case msgHeartbeat:
			// lastRx already refreshed above.
		default:
			pc.close(fmt.Sprintf("unknown message type %d", msg[0]))
			return
		}
	}
}

// writeLoop drains the egress queue, paces heartbeats and enforces the
// receive-liveness timeout.
func (pc *conn) writeLoop() {
	hb := time.NewTicker(pc.cfg.heartbeatEvery())
	defer hb.Stop()
	for {
		select {
		case <-pc.closed:
			return
		case <-hb.C:
			silence := time.Since(time.Unix(0, pc.lastRx.Load()))
			if silence > pc.cfg.heartbeatTimeout() {
				pc.close(fmt.Sprintf("heartbeat timeout (%v silent)", silence.Round(time.Millisecond)))
				return
			}
			if err := pc.write([]byte{msgHeartbeat}); err != nil {
				pc.close("heartbeat write: " + err.Error())
				return
			}
		case <-pc.q.notify:
			for {
				now := time.Now()
				it, ok, shed := pc.q.pop(now)
				pc.account(shed)
				if !ok {
					break
				}
				if it.late {
					pc.cnt.late.Add(1)
					pc.emit("late", "HRT past budget, forwarded", &it.re)
				}
				if err := pc.write(it.wire); err != nil {
					pc.close("write: " + err.Error())
					return
				}
				pc.cnt.sent.Add(1)
			}
		}
	}
}

// account counts and traces items the queue discarded.
func (pc *conn) account(fates []fate) {
	for _, f := range fates {
		pc.cnt.dropped.Add(1)
		pc.emit("drop", f.reason, &f.item.re)
	}
}
