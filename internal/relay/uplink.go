package relay

import (
	"fmt"
	"net"
	"sync"
	"time"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/gateway"
	"canec/internal/sim"
)

// Uplink is the dialing side of a relay link. It maintains exactly one
// peer connection, re-dialing forever under the configured retry policy
// (capped exponential backoff with seeded jitter — the binding
// protocol's schedule reused for the network control plane). The egress
// queue survives disconnects: frames enqueued while the link is down
// are sent after the next successful dial, subject to the class policy
// (expired SRT copies are shed, NRT gives way first, HRT persists).
type Uplink struct {
	cfg  Config
	addr string
	q    *egressQueue
	cnt  Counters

	mu      sync.Mutex
	cur     *conn
	subs    map[binding.Subject]subscription
	onFrame func(gateway.RemoteEvent)

	closed    chan struct{}
	closeOnce sync.Once
	redialNow chan struct{} // poked when the current conn dies
}

var _ Link = (*Uplink)(nil)

// Dial creates an uplink to addr and starts connecting in the
// background; it returns immediately (the first dial may still be in
// flight). Frames sent before the link is up wait on the egress queue.
func Dial(addr string, cfg Config) *Uplink {
	u := &Uplink{
		cfg:       cfg,
		addr:      addr,
		q:         newEgressQueue(cfg.SRTQueueCap, cfg.NRTQueueCap),
		subs:      make(map[binding.Subject]subscription),
		closed:    make(chan struct{}),
		redialNow: make(chan struct{}, 1),
	}
	go u.dialLoop()
	return u
}

// Counters exposes the uplink's statistics.
func (u *Uplink) Counters() *Counters { return &u.cnt }

// Depths reports the uplink's current egress backlog per class.
func (u *Uplink) Depths() (hrt, srt, nrt int) { return u.q.depths() }

// Connected reports whether a peer connection is currently live.
func (u *Uplink) Connected() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.cur != nil
}

// dialLoop keeps one connection alive, backing off between attempts.
func (u *Uplink) dialLoop() {
	rng := sim.NewRNG(u.cfg.Seed ^ 0x9e3779b97f4a7c15)
	policy := retryOrDefault(u.cfg.Retry)
	attempt := 0
	for {
		select {
		case <-u.closed:
			return
		default:
		}
		if attempt > 0 {
			// RetryPolicy speaks virtual nanoseconds; on the network
			// control plane they are wall nanoseconds 1:1.
			wait := time.Duration(policy.Backoff(attempt-1, rng))
			u.cnt.redials.Add(1)
			u.emit("redial", fmt.Sprintf("attempt %d in %v", attempt, wait.Round(time.Millisecond)))
			select {
			case <-time.After(wait):
			case <-u.closed:
				return
			}
		}
		attempt++
		c, err := net.DialTimeout("tcp", u.addr, u.cfg.heartbeatTimeout())
		if err != nil {
			continue
		}
		u.mu.Lock()
		onFrame := u.onFrame
		initial := make([]subscription, 0, len(u.subs))
		for _, s := range u.subs {
			initial = append(initial, s)
		}
		pc := newConn(c, u.cfg, u.q, &u.cnt,
			func(re gateway.RemoteEvent) {
				if onFrame != nil {
					onFrame(re)
				}
			},
			func(dead *conn, _ string) {
				u.mu.Lock()
				if u.cur == dead {
					u.cur = nil
				}
				u.mu.Unlock()
				select {
				case u.redialNow <- struct{}{}:
				default:
				}
			})
		u.cur = pc
		u.mu.Unlock()
		if err := pc.start(initial); err != nil {
			pc.close("handshake: " + err.Error())
			continue
		}
		attempt = 1 // connected: restart the backoff schedule at base
		// The queue may hold frames enqueued while we were down.
		u.q.wake()
		select {
		case <-pc.closed:
		case <-u.closed:
			pc.close("uplink shutdown")
			return
		}
		// Drain a stale redial poke before waiting on the next death.
		select {
		case <-u.redialNow:
		default:
		}
	}
}

func (u *Uplink) emit(kind, detail string) {
	if u.cfg.Trace != nil {
		u.cfg.Trace(Event{Kind: kind, Peer: u.addr, Detail: detail})
	}
}

// OnFrame installs the inbound-event callback. Install it before
// traffic flows; a swap mid-session applies from the next dial.
func (u *Uplink) OnFrame(fn func(gateway.RemoteEvent)) {
	u.mu.Lock()
	u.onFrame = fn
	u.mu.Unlock()
}

// Send enqueues an event toward the peer. The peer's subscription
// filter is applied remotely (the peer told *us* what it wants via Sub
// messages; an uplink mirrors that check before spending queue space).
func (u *Uplink) Send(re gateway.RemoteEvent, wallDeadline time.Time) error {
	u.mu.Lock()
	pc := u.cur
	u.mu.Unlock()
	if pc != nil && !pc.wantsFrame(re) {
		u.cnt.refuse.Add(1)
		return nil
	}
	var codec can.Codec
	wire, err := encodeFrame(&codec, re)
	if err != nil {
		return err
	}
	fates := u.q.push(qItem{re: re, wire: wire, wallDeadline: wallDeadline}, time.Now())
	for _, f := range fates {
		u.cnt.dropped.Add(1)
		if u.cfg.Trace != nil {
			u.cfg.Trace(Event{Kind: "drop", Peer: u.addr, Detail: f.reason, Frame: &f.item.re})
		}
	}
	return nil
}

// Subscribe declares interest in a subject; remembered across re-dials
// and replayed in every handshake.
func (u *Uplink) Subscribe(subject binding.Subject, include, exclude []can.TxNode) error {
	s := subscription{Subject: subject, Include: include, Exclude: exclude}
	u.mu.Lock()
	u.subs[subject] = s
	pc := u.cur
	u.mu.Unlock()
	if pc != nil {
		return pc.sendSub(s)
	}
	return nil
}

// Unsubscribe withdraws a subject.
func (u *Uplink) Unsubscribe(subject binding.Subject) error {
	u.mu.Lock()
	delete(u.subs, subject)
	pc := u.cur
	u.mu.Unlock()
	if pc != nil {
		return pc.sendUnsub(subject)
	}
	return nil
}

// Close stops the uplink and drops the connection.
func (u *Uplink) Close() error {
	u.closeOnce.Do(func() { close(u.closed) })
	u.mu.Lock()
	pc := u.cur
	u.mu.Unlock()
	if pc != nil {
		pc.close("uplink shutdown")
	}
	return nil
}
