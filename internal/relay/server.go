package relay

import (
	"net"
	"sync"
	"time"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/gateway"
)

// Link is the transport face shared by Server and Uplink: what a Port
// (and through it a gateway.RemoteBridge) needs from a relay endpoint.
type Link interface {
	// Send enqueues an event toward the peer(s); wallDeadline is the
	// wall-clock instant the event's relay budget expires (zero = none).
	Send(re gateway.RemoteEvent, wallDeadline time.Time) error
	// Subscribe declares interest in a subject to the peer(s), with
	// optional origin-TxNode filtering applied at the sending relay.
	Subscribe(subject binding.Subject, include, exclude []can.TxNode) error
	// Unsubscribe withdraws a subscription.
	Unsubscribe(subject binding.Subject) error
	// OnFrame installs the inbound-event callback (network goroutine
	// context; Port re-injects into the kernel).
	OnFrame(fn func(gateway.RemoteEvent))
	// Counters exposes the endpoint's statistics.
	Counters() *Counters
	// Depths reports the endpoint's current egress backlog per class
	// (summed over peers on the listening side). Safe from any
	// goroutine; the admin plane polls it live.
	Depths() (hrt, srt, nrt int)
	// Close tears the endpoint down.
	Close() error
}

// Server is the listening side of a relay link. It accepts any number
// of peers; Send fans out to every peer whose subscription matches. In
// a chain topology each listener typically serves exactly one peer.
type Server struct {
	cfg Config
	ln  net.Listener
	cnt Counters

	mu      sync.Mutex
	conns   map[*conn]struct{}
	subs    map[binding.Subject]subscription
	onFrame func(gateway.RemoteEvent)
	closed  bool
}

var _ Link = (*Server)(nil)

// Serve listens on addr (e.g. "127.0.0.1:0") and accepts peers in the
// background.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[*conn]struct{}),
		subs:  make(map[binding.Subject]subscription),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address (with the ephemeral port
// resolved, for tests and logs).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Counters exposes the server's statistics.
func (s *Server) Counters() *Counters { return &s.cnt }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		onFrame := s.onFrame
		initial := make([]subscription, 0, len(s.subs))
		for _, sub := range s.subs {
			initial = append(initial, sub)
		}
		q := newEgressQueue(s.cfg.SRTQueueCap, s.cfg.NRTQueueCap)
		pc := newConn(c, s.cfg, q, &s.cnt,
			func(re gateway.RemoteEvent) {
				if onFrame != nil {
					onFrame(re)
				}
			},
			func(dead *conn, _ string) {
				s.mu.Lock()
				delete(s.conns, dead)
				s.mu.Unlock()
			})
		s.conns[pc] = struct{}{}
		s.mu.Unlock()
		if err := pc.start(initial); err != nil {
			pc.close("handshake: " + err.Error())
		}
	}
}

// OnFrame installs the inbound-event callback for all peers.
func (s *Server) OnFrame(fn func(gateway.RemoteEvent)) {
	s.mu.Lock()
	s.onFrame = fn
	s.mu.Unlock()
}

// Send fans the event out to every connected peer whose subscription
// matches its subject and origin. With no matching peer the event is
// dropped and counted (the relay cannot buffer for peers it has never
// seen).
func (s *Server) Send(re gateway.RemoteEvent, wallDeadline time.Time) error {
	s.mu.Lock()
	var targets []*conn
	for pc := range s.conns {
		if pc.wantsFrame(re) {
			targets = append(targets, pc)
		}
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		s.cnt.refuse.Add(1)
		return nil // nothing subscribed: not an error, just no audience
	}
	var codec can.Codec
	wire, err := encodeFrame(&codec, re)
	if err != nil {
		return err
	}
	now := time.Now()
	for _, pc := range targets {
		fates := pc.q.push(qItem{re: re, wire: wire, wallDeadline: wallDeadline}, now)
		pc.account(fates)
	}
	return nil
}

// Subscribe records the subject (for replay to late-joining peers) and
// announces it to every current peer.
func (s *Server) Subscribe(subject binding.Subject, include, exclude []can.TxNode) error {
	sub := subscription{Subject: subject, Include: include, Exclude: exclude}
	s.mu.Lock()
	s.subs[subject] = sub
	conns := s.snapshot()
	s.mu.Unlock()
	for _, pc := range conns {
		if err := pc.sendSub(sub); err != nil {
			return err
		}
	}
	return nil
}

// Unsubscribe withdraws a subject from the stored set and all peers.
func (s *Server) Unsubscribe(subject binding.Subject) error {
	s.mu.Lock()
	delete(s.subs, subject)
	conns := s.snapshot()
	s.mu.Unlock()
	for _, pc := range conns {
		if err := pc.sendUnsub(subject); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) snapshot() []*conn {
	out := make([]*conn, 0, len(s.conns))
	for pc := range s.conns {
		out = append(out, pc)
	}
	return out
}

// Peers reports the number of live peer connections.
func (s *Server) Peers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Depths sums the egress backlog of every live peer connection, per
// class.
func (s *Server) Depths() (hrt, srt, nrt int) {
	s.mu.Lock()
	conns := s.snapshot()
	s.mu.Unlock()
	for _, pc := range conns {
		h, sq, n := pc.q.depths()
		hrt += h
		srt += sq
		nrt += n
	}
	return hrt, srt, nrt
}

// Close stops accepting and drops every peer.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := s.snapshot()
	s.mu.Unlock()
	err := s.ln.Close()
	for _, pc := range conns {
		pc.close("server shutdown")
	}
	return err
}
