package workload

import (
	"reflect"
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

func frameTime(p int) sim.Duration {
	// Synthetic affine frame time for the tests: 50µs + 10µs/byte.
	return 50*sim.Microsecond + sim.Duration(p)*10*sim.Microsecond
}

func TestGenJobsPeriodic(t *testing.T) {
	streams := []Stream{{
		Node: 0, Period: 10 * sim.Millisecond, RelDeadline: 5 * sim.Millisecond,
		RelExpiration: 8 * sim.Millisecond, Payload: 8,
	}}
	jobs := GenJobs(sim.NewRNG(1), streams, 100*sim.Millisecond)
	if len(jobs) != 10 {
		t.Fatalf("jobs = %d, want 10", len(jobs))
	}
	for i, j := range jobs {
		if j.Release != sim.Time(i)*10*sim.Millisecond {
			t.Fatalf("job %d released at %v", i, j.Release)
		}
		if j.Deadline != j.Release+5*sim.Millisecond {
			t.Fatalf("job %d deadline %v", i, j.Deadline)
		}
		if j.Expiration != j.Release+8*sim.Millisecond {
			t.Fatalf("job %d expiration %v", i, j.Expiration)
		}
		if j.Seq != i {
			t.Fatalf("job %d seq %d", i, j.Seq)
		}
	}
}

func TestGenJobsOffsetAndJitter(t *testing.T) {
	streams := []Stream{{
		Node: 0, Period: 10 * sim.Millisecond, RelDeadline: 10 * sim.Millisecond,
		Offset: 3 * sim.Millisecond, ReleaseJitter: sim.Millisecond, Payload: 4,
	}}
	jobs := GenJobs(sim.NewRNG(2), streams, 100*sim.Millisecond)
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	for i, j := range jobs {
		nominal := 3*sim.Millisecond + sim.Time(i)*10*sim.Millisecond
		d := j.Release - nominal
		if d < -sim.Millisecond || d > sim.Millisecond {
			t.Fatalf("job %d jitter %v out of bounds", i, d)
		}
	}
}

func TestGenJobsSporadicMeanRate(t *testing.T) {
	streams := []Stream{{
		Node: 0, Period: sim.Millisecond, RelDeadline: sim.Millisecond,
		Sporadic: true, Payload: 8,
	}}
	jobs := GenJobs(sim.NewRNG(3), streams, 10*sim.Second)
	// Poisson with mean 1 ms over 10 s: expect ≈10000 ± a few hundred.
	if len(jobs) < 9000 || len(jobs) > 11000 {
		t.Fatalf("sporadic job count %d far from mean 10000", len(jobs))
	}
}

func TestGenJobsSortedProperty(t *testing.T) {
	f := func(seed uint64, nStreams uint8) bool {
		n := int(nStreams%8) + 1
		rng := sim.NewRNG(seed)
		streams := make([]Stream, n)
		for i := range streams {
			streams[i] = Stream{
				Node: i, Period: sim.Duration(1+rng.Intn(20)) * sim.Millisecond,
				RelDeadline: 5 * sim.Millisecond,
				Sporadic:    i%2 == 0, Payload: 8,
			}
		}
		jobs := GenJobs(rng, streams, 500*sim.Millisecond)
		for i := 1; i < len(jobs); i++ {
			if jobs[i].Release < jobs[i-1].Release {
				return false
			}
		}
		// Per-stream sequence numbers must be dense from 0.
		next := make([]int, n)
		for _, j := range jobs {
			if j.Seq != next[j.Stream] {
				return false
			}
			next[j.Stream]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	streams := []Stream{
		{Period: 10 * sim.Millisecond, Payload: 8}, // 130µs / 10ms = 0.013
		{Period: 1 * sim.Millisecond, Payload: 0},  // 50µs / 1ms = 0.05
	}
	got := Utilization(streams, frameTime)
	want := 0.013 + 0.05
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	if Utilization([]Stream{{Period: 0}}, frameTime) != 0 {
		t.Fatal("zero-period stream should contribute 0")
	}
}

func TestMixedSetReachesTarget(t *testing.T) {
	for _, target := range []float64{0.2, 0.5, 0.9} {
		rng := sim.NewRNG(7)
		set := MixedSet(16, target, frameTime, rng)
		u := Utilization(set, frameTime)
		if u < target {
			t.Fatalf("target %v: utilization %v below target", target, u)
		}
		if u > target+0.15 {
			t.Fatalf("target %v: utilization %v overshoots", target, u)
		}
		for _, s := range set {
			if s.Payload < 6 || s.Payload > 8 {
				t.Fatalf("payload %d outside job-tag-safe range", s.Payload)
			}
			if s.RelDeadline != s.Period || s.RelExpiration != 2*s.Period {
				t.Fatalf("deadline/expiration defaults wrong: %+v", s)
			}
			if s.Node < 0 || s.Node >= 16 {
				t.Fatalf("node %d out of range", s.Node)
			}
		}
	}
}

// TestMixedSetProperty pins the MixedSet contract across the whole input
// space: the offered utilization lands in [target, target+maxStep) where
// maxStep is the largest single stream the generator can add (densest
// template period, largest payload), and the same seed always yields a
// byte-identical stream set — experiments feeding competing schedulers
// depend on both.
func TestMixedSetProperty(t *testing.T) {
	f := func(seed uint64, nodesRaw uint8, targetRaw uint16) bool {
		nodes := int(nodesRaw%31) + 2
		target := 0.05 + float64(targetRaw%1200)/1000 // 0.05 .. 1.249
		set := MixedSet(nodes, target, frameTime, sim.NewRNG(seed))
		u := Utilization(set, frameTime)
		maxStep := float64(frameTime(8)) / float64(2*sim.Millisecond)
		if u < target || u >= target+maxStep {
			t.Logf("seed %d nodes %d target %v: utilization %v outside [target, target+%v)",
				seed, nodes, target, u, maxStep)
			return false
		}
		for _, s := range set {
			if s.Node < 0 || s.Node >= nodes {
				return false
			}
		}
		again := MixedSet(nodes, target, frameTime, sim.NewRNG(seed))
		return reflect.DeepEqual(set, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedSetDeterministic(t *testing.T) {
	a := MixedSet(8, 0.6, frameTime, sim.NewRNG(5))
	b := MixedSet(8, 0.6, frameTime, sim.NewRNG(5))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed sets differ")
		}
	}
}
