// Package workload generates the traffic patterns the experiments drive
// the event channel system with: periodic control streams, sporadic
// (Poisson) alarm streams, and bulk transfers. Job traces are
// pre-generated from a seed so that competing schedulers (the paper's EDF
// mapping, deadline-monotonic fixed priorities, the clairvoyant oracle)
// can be fed exactly the same arrivals.
package workload

import (
	"sort"

	"canec/internal/sim"
)

// Stream describes one soft real-time message stream.
type Stream struct {
	// Node is the publishing station.
	Node int
	// Period is the nominal inter-release time (mean inter-arrival for
	// sporadic streams).
	Period sim.Duration
	// RelDeadline is the transmission deadline relative to release.
	RelDeadline sim.Duration
	// RelExpiration is the validity end relative to release (0 = none).
	RelExpiration sim.Duration
	// Payload is the frame payload in bytes (1..8).
	Payload int
	// Sporadic selects Poisson arrivals with mean Period instead of
	// strict periodicity.
	Sporadic bool
	// Offset shifts the first release.
	Offset sim.Duration
	// ReleaseJitter adds uniform ±jitter to periodic releases.
	ReleaseJitter sim.Duration
}

// Job is one released message instance.
type Job struct {
	// Stream indexes into the stream set.
	Stream int
	// Seq numbers the jobs of one stream from 0.
	Seq int
	// Release is the kernel time the job becomes ready.
	Release sim.Time
	// Deadline is the absolute transmission deadline.
	Deadline sim.Time
	// Expiration is the absolute validity end (0 = none).
	Expiration sim.Time
}

// GenJobs pre-generates the job trace of the stream set on [0, until),
// sorted by release time. All randomness comes from rng, so equal seeds
// produce identical traces.
func GenJobs(rng *sim.RNG, streams []Stream, until sim.Time) []Job {
	var jobs []Job
	for si, s := range streams {
		t := s.Offset
		seq := 0
		for {
			release := t
			if !s.Sporadic && s.ReleaseJitter > 0 {
				release += rng.Jitter(s.ReleaseJitter)
				if release < 0 {
					release = 0
				}
			}
			if release >= until {
				break
			}
			j := Job{
				Stream:   si,
				Seq:      seq,
				Release:  release,
				Deadline: release + s.RelDeadline,
			}
			if s.RelExpiration > 0 {
				j.Expiration = release + s.RelExpiration
			}
			jobs = append(jobs, j)
			seq++
			if s.Sporadic {
				t += rng.ExpDuration(s.Period)
			} else {
				t += s.Period
			}
			if t >= until {
				break
			}
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Release < jobs[j].Release })
	return jobs
}

// Utilization returns the long-run bus utilization the stream set demands
// given a per-payload frame-time function.
func Utilization(streams []Stream, frameTime func(payload int) sim.Duration) float64 {
	var u float64
	for _, s := range streams {
		if s.Period > 0 {
			u += float64(frameTime(s.Payload)) / float64(s.Period)
		}
	}
	return u
}

// MixedSet builds a heterogeneous stream set with total utilization close
// to target: a mix of short- and long-deadline streams across nodes,
// reproducing the paper's assumption of "a substantial share of aperiodic
// and sporadic traffic" (§3.4). The deadline of each stream equals its
// period; payloads vary.
func MixedSet(nodes int, target float64, frameTime func(int) sim.Duration, rng *sim.RNG) []Stream {
	// Template periods spanning two orders of magnitude.
	periods := []sim.Duration{
		2 * sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond,
	}
	var streams []Stream
	var u float64
	for i := 0; u < target; i++ {
		p := periods[i%len(periods)]
		// Payloads of 6..8 bytes: the experiment runners embed a 6-byte
		// job tag, so the nominal payload must cover it for the offered
		// utilization to match the generated frames exactly.
		payload := 6 + rng.Intn(3)
		s := Stream{
			Node:        i % nodes,
			Period:      p,
			RelDeadline: p,
			// Expiration at twice the deadline: stale events are shed
			// from the send queues instead of poisoning the backlog —
			// the paper's §2.2.2 mechanism, applied uniformly so all
			// schedulers benefit equally.
			RelExpiration: 2 * p,
			Payload:       payload,
			Sporadic:      i%3 == 2, // every third stream is sporadic
			Offset:        sim.Duration(rng.Int63n(int64(p))),
		}
		streams = append(streams, s)
		u += float64(frameTime(payload)) / float64(p)
		if len(streams) > 4096 {
			break
		}
	}
	return streams
}
