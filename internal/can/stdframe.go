package can

// Standard-format (CAN 2.0A, 11-bit identifier) wire arithmetic. The
// event channel model requires 29-bit identifiers (§3.5) and the bus
// model carries extended frames exclusively; these helpers exist for
// analysis tooling — comparing against legacy 2.0A systems (CANopen, SDS,
// DeviceNet are standard-frame protocols, §4) and computing their frame
// timings in the same WCRT machinery.

// Standard-frame constants: the stuffed region is SOF(1) + ID(11) +
// RTR(1) + IDE(1) + r0(1) + DLC(4) + data + CRC(15) = 34 + 8s bits; the
// unstuffed tail is identical to the extended format (13 bits).
const stdStuffedOverheadBits = 34

// MaxStdID is the largest standard identifier.
const MaxStdID = 1<<11 - 1

// StdWorstCaseBits returns the classical worst-case standard-frame length
// for a payload of s bytes: g + 8s + 13 + ⌊(g + 8s − 1)/4⌋ with g = 34.
// For s = 8 this is 135 bit times (135 µs at 1 Mbit/s).
func StdWorstCaseBits(s int) int {
	g := stdStuffedOverheadBits
	return g + 8*s + frameTailBits + (g+8*s-1)/4
}

// StdMinFrameBits returns the minimum standard-frame length (no stuffing).
func StdMinFrameBits(s int) int {
	return stdStuffedOverheadBits + 8*s + frameTailBits
}

// StdWireBits returns the exact stuffed wire length of a standard data
// frame with the given 11-bit identifier and payload.
func StdWireBits(id uint16, data []byte) int {
	bits := stdUnstuffedBits(id, data)
	stuffed := 0
	run := 1
	prev := bits[0]
	for i := 1; i < len(bits); i++ {
		b := bits[i]
		if b == prev {
			run++
			if run == 5 {
				stuffed++
				prev = 1 - b
				run = 1
			}
		} else {
			prev = b
			run = 1
		}
	}
	return len(bits) + stuffed + frameTailBits
}

// stdUnstuffedBits builds the pre-stuffing bit sequence of a standard
// data frame (SOF through CRC).
func stdUnstuffedBits(id uint16, data []byte) []byte {
	bits := make([]byte, 0, stdStuffedOverheadBits+8*len(data))
	put := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			bits = append(bits, byte((v>>uint(i))&1))
		}
	}
	put(0, 1)                    // SOF
	put(uint32(id&MaxStdID), 11) // ID
	put(0, 1)                    // RTR (data frame)
	put(0, 1)                    // IDE (standard format)
	put(0, 1)                    // r0
	put(uint32(len(data)), 4)    // DLC
	for _, b := range data {
		put(uint32(b), 8)
	}
	put(uint32(crc15(bits)), 15)
	return bits
}
