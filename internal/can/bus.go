package can

import (
	"canec/internal/sim"
)

// DefaultBitRate is the 1 Mbit/s rate assumed throughout the paper.
const DefaultBitRate = 1_000_000

// TraceKind labels bus trace events.
type TraceKind int

const (
	TraceTxStart      TraceKind = iota // a frame won arbitration and started
	TraceTxOK                          // transmitted without detected error
	TraceTxError                       // error frame signalled; will retransmit
	TraceTxAbort                       // abandoned (single-shot after error)
	TraceRx                            // delivered to one receiver
	TraceArbWin                        // this frame won the arbitration round
	TraceArbLoss                       // this frame competed and lost the round
	TraceGuardMute                     // the bus guardian muted a calendar-violating frame
	TraceGuardIsolate                  // the bus guardian isolated (muted) a whole controller

	// Fault-confinement transitions (emitted only with Bus.ConfineFaults).
	// They carry a zero Frame — the transition belongs to a controller, not
	// a transmission — with Sender set to the controller index and TEC/REC
	// snapshotting the counters after the transition.
	TraceErrorPassive  // controller crossed into error-passive
	TraceErrorActive   // controller returned to error-active
	TraceBusOff        // controller entered bus-off and detached
	TraceBusOffRecover // bus-off controller recovered and re-joined
)

// TraceEvent is emitted through Bus.Trace for observability and metrics.
// Frame.Tag carries the submitter's correlation tag, so hooks can stitch
// bus-level events into end-to-end event lifecycles.
type TraceEvent struct {
	Kind    TraceKind
	At      sim.Time
	Frame   Frame
	Sender  int // controller index
	Recv    int // controller index, TraceRx only
	Attempt int
	// TEC / REC snapshot the sender's error counters for the
	// fault-confinement trace kinds; zero otherwise.
	TEC, REC int
}

// Stats aggregates bus-level counters.
type Stats struct {
	FramesOK         uint64
	FramesError      uint64 // error-frame signalling events
	FramesAborted    uint64
	BusOffEvents     uint64       // controllers driven bus-off (fault confinement)
	Omissions        uint64       // inconsistent-omission deliveries suppressed
	BusyTime         sim.Duration // wire time consumed by frames + error frames
	ArbRounds        uint64
	IDRewrites       uint64 // priority promotions applied in controller buffers
	GuardianMuted    uint64 // transmissions muted by the bus guardian
	GuardianIsolated uint64 // controllers isolated (muted entirely) by the guardian
}

// GuardianVerdict is the bus guardian's decision about one pending frame.
type GuardianVerdict int

const (
	// GuardAllow lets the frame compete in arbitration.
	GuardAllow GuardianVerdict = iota
	// GuardMuteFrame drops this transmission request: the frame never
	// reaches the wire and its Done callback (if any) observes failure.
	GuardMuteFrame
	// GuardMuteNode drops the frame AND isolates the whole controller
	// (babbling-idiot containment, like a TTP bus guardian cutting the
	// transmit path). The controller stays muted until Reattach.
	GuardMuteNode
)

// Guardian vets pending frames before they may compete in arbitration. A
// guardian is the classic defense against the babbling-idiot failure mode
// of event-triggered buses: a node transmitting at the reserved top
// priority outside its calendar slots would starve every hard real-time
// channel, so an independent instance checks each transmission against
// the static schedule. Implementations must be deterministic.
type Guardian interface {
	Judge(f Frame, sender int, at sim.Time) GuardianVerdict
}

// Bus is the shared CAN medium connecting a set of Controllers.
//
// The bus is event-driven: whenever it is idle and at least one controller
// has a pending frame, an arbitration event resolves at the current instant
// and the winning frame occupies the bus for its exact stuffed wire length.
// Frames submitted while the bus is busy join the next arbitration, exactly
// as in CAN.
type Bus struct {
	K        *sim.Kernel
	BitRate  int
	Injector Injector
	Trace    func(TraceEvent)
	// TraceArbitration additionally emits TraceArbWin/TraceArbLoss events
	// for every arbitration round through Trace: one win per driving frame
	// (duplicate-ID partners included) and one loss per competing
	// controller whose best frame stayed behind. Off by default because it
	// scans all controllers on every round.
	TraceArbitration bool
	// ConfineFaults enables CAN 2.0 fault confinement: TEC/REC error
	// counters and bus-off with automatic recovery. Off by default — the
	// paper's experiments assume error-active controllers.
	ConfineFaults bool
	// Guardian, if non-nil, vets every pending frame before it may enter
	// arbitration (babbling-idiot defense). Off by default — the paper
	// assumes well-behaved middleware on every node.
	Guardian Guardian
	// OnErrorState, if non-nil, is invoked (in kernel context) whenever a
	// controller's fault-confinement state changes. The lifecycle's bus-off
	// recovery supervisor hooks it to schedule supervised re-joins.
	OnErrorState func(ctrl int, old, new ErrorState, at sim.Time)

	ctrls      []*Controller
	busy       bool
	arbPending bool
	stats      Stats

	// current transmission; curTied holds same-ID collision partners.
	cur        *txReq
	curSender  int
	curTied    []*txReq
	curTiedIdx []int
	// curCrashed is set when the sender of the in-flight frame detached
	// (crashed) mid-transmission: the truncated frame ends in an error
	// frame at every receiver, exactly as on a real bus.
	curCrashed bool
}

// NewBus creates a bus on the given kernel. bitRate <= 0 selects the
// default 1 Mbit/s.
func NewBus(k *sim.Kernel, bitRate int) *Bus {
	if bitRate <= 0 {
		bitRate = DefaultBitRate
	}
	return &Bus{K: k, BitRate: bitRate, Injector: NoFaults{}}
}

// Stats returns a copy of the accumulated counters.
func (b *Bus) Stats() Stats { return b.stats }

// Controllers returns the number of attached controllers.
func (b *Bus) Controllers() int { return len(b.ctrls) }

// Controller returns the i-th attached controller.
func (b *Bus) Controller(i int) *Controller { return b.ctrls[i] }

// Busy reports whether a transmission is in progress.
func (b *Bus) Busy() bool { return b.busy }

// BitDuration returns the duration of n bit times on this bus.
func (b *Bus) BitDuration(n int) sim.Duration { return BitTime(n, b.BitRate) }

// Attach creates and registers a controller with the given 7-bit node
// number. The returned controller index equals its position on the bus.
func (b *Bus) Attach(txnode TxNode) *Controller {
	c := &Controller{bus: b, index: len(b.ctrls), txnode: txnode, autoRecover: true}
	b.ctrls = append(b.ctrls, c)
	return c
}

// kick requests an arbitration round at the current instant if the bus is
// idle. Multiple kicks in the same instant coalesce into one round, and the
// round runs *after* all other events at this instant, so every frame
// submitted "now" participates — mirroring CAN, where all nodes that are
// ready when the bus turns idle join the same arbitration phase.
func (b *Bus) kick() {
	if b.busy || b.arbPending {
		return
	}
	b.arbPending = true
	b.K.After(0, b.arbitrate)
}

// arbitrate picks the smallest-ID pending frame across all controllers and
// starts its transmission.
func (b *Bus) arbitrate() {
	b.arbPending = false
	if b.busy {
		return
	}
	prof := b.K.Probe()
	var pt0 int64
	if prof != nil {
		pt0 = sim.ProbeNow()
	}
	var win *txReq
	winIdx := -1
	var tied []*txReq // duplicate-ID collision partners
	var tiedIdx []int
	for i, c := range b.ctrls {
		if c.muted {
			continue
		}
		if r := b.guardedBest(c, i); r != nil {
			switch {
			case win == nil || r.frame.ID < win.frame.ID:
				win, winIdx = r, i
				tied, tiedIdx = nil, nil
			case r.frame.ID == win.frame.ID:
				// CAN requires unique identifiers. Two nodes driving the
				// same ID pass arbitration together; the first differing
				// payload/CRC bit is a bit error, so the whole attempt ends
				// in an error frame for everyone. The dynamic configuration
				// protocol relies on this collision signal (single-shot
				// requests observe the failure and re-randomize).
				tied = append(tied, r)
				tiedIdx = append(tiedIdx, i)
			}
		}
	}
	if prof != nil {
		prof.StageNs(sim.ProbeArbitration, sim.ProbeClassNone, sim.ProbeNow()-pt0)
	}
	if win == nil {
		return
	}
	b.stats.ArbRounds++
	b.busy = true
	b.cur = win
	b.curSender = winIdx
	b.curTied = tied
	b.curTiedIdx = tiedIdx
	win.inFlight = true
	win.attempt++
	for _, r := range tied {
		r.inFlight = true
		r.attempt++
	}
	if b.Trace != nil {
		if b.TraceArbitration {
			b.Trace(TraceEvent{Kind: TraceArbWin, At: b.K.Now(), Frame: win.frame, Sender: winIdx, Attempt: win.attempt})
			for i, r := range tied {
				b.Trace(TraceEvent{Kind: TraceArbWin, At: b.K.Now(), Frame: r.frame, Sender: tiedIdx[i], Attempt: r.attempt})
			}
			for i, c := range b.ctrls {
				if c.muted {
					continue
				}
				if r := c.best(); r != nil && !r.inFlight {
					b.Trace(TraceEvent{Kind: TraceArbLoss, At: b.K.Now(), Frame: r.frame, Sender: i, Attempt: r.attempt})
				}
			}
		}
		b.Trace(TraceEvent{Kind: TraceTxStart, At: b.K.Now(), Frame: win.frame, Sender: winIdx, Attempt: win.attempt})
	}
	var bits int
	if prof != nil {
		pt0 = sim.ProbeNow()
		bits = WireBits(win.frame)
		prof.StageNs(sim.ProbeCodec, sim.ProbeClassNone, sim.ProbeNow()-pt0)
	} else {
		bits = WireBits(win.frame)
	}
	dur := b.BitDuration(bits)
	b.K.After(dur, func() { b.complete(dur) })
}

// guardedBest returns the controller's best pending frame after the bus
// guardian (if installed) vetted it. Muted frames are removed and their
// submitters observe failure; a GuardMuteNode verdict additionally
// isolates the controller for the rest of the run (until Reattach).
func (b *Bus) guardedBest(c *Controller, idx int) *txReq {
	for {
		r := c.best()
		if r == nil || b.Guardian == nil {
			return r
		}
		verdict := b.Guardian.Judge(r.frame, idx, b.K.Now())
		if verdict == GuardAllow {
			return r
		}
		c.remove(r)
		b.stats.GuardianMuted++
		if b.Trace != nil {
			b.Trace(TraceEvent{Kind: TraceGuardMute, At: b.K.Now(), Frame: r.frame, Sender: idx, Attempt: r.attempt})
		}
		if r.done != nil {
			r.done(false, b.K.Now())
		}
		if verdict == GuardMuteNode {
			c.muted = true
			b.stats.GuardianIsolated++
			if b.Trace != nil {
				b.Trace(TraceEvent{Kind: TraceGuardIsolate, At: b.K.Now(), Frame: r.frame, Sender: idx, Attempt: r.attempt})
			}
			return nil
		}
	}
}

// complete finishes the in-flight transmission, consulting the fault
// injector for its outcome.
func (b *Bus) complete(dur sim.Duration) {
	req := b.cur
	sender := b.curSender
	tied, tiedIdx := b.curTied, b.curTiedIdx
	b.cur, b.curTied, b.curTiedIdx = nil, nil, nil
	req.inFlight = false
	for _, r := range tied {
		r.inFlight = false
	}
	b.stats.BusyTime += dur

	fault := b.Injector.Judge(req.frame, sender, req.attempt, b.K.Now(), b.K.RNG())
	if len(tied) > 0 {
		// A duplicate-ID collision always corrupts the attempt.
		fault = Fault{Kind: FaultError}
	}
	if b.curCrashed {
		// The transmitter detached mid-frame: the wire saw a truncated
		// frame, which every receiver signals as an error. The request was
		// already flushed by Detach, so nothing is retransmitted.
		b.curCrashed = false
		fault = Fault{Kind: FaultError}
	}
	if b.ConfineFaults {
		if fault.Kind == FaultError {
			b.confineTxError(sender)
		} else {
			b.confineTxSuccess(sender, fault.Victims)
		}
	}
	switch fault.Kind {
	case FaultError:
		b.stats.FramesError++
		if b.Trace != nil {
			b.Trace(TraceEvent{Kind: TraceTxError, At: b.K.Now(), Frame: req.frame, Sender: sender, Attempt: req.attempt})
		}
		// The error frame occupies the bus; afterwards the frame is
		// retransmitted automatically unless the request is single-shot.
		errDur := b.BitDuration(ErrorOverheadBits)
		b.stats.BusyTime += errDur
		abortIfSingleShot := func(r *txReq, idx int) {
			if !r.singleShot || r.removed {
				// removed: fault confinement already flushed it (bus-off).
				return
			}
			b.ctrls[idx].remove(r)
			b.stats.FramesAborted++
			if b.Trace != nil {
				b.Trace(TraceEvent{Kind: TraceTxAbort, At: b.K.Now(), Frame: r.frame, Sender: idx, Attempt: r.attempt})
			}
			if r.done != nil {
				r.done(false, b.K.Now())
			}
		}
		abortIfSingleShot(req, sender)
		for i, r := range tied {
			abortIfSingleShot(r, tiedIdx[i])
		}
		b.K.After(errDur, func() {
			b.busy = false
			b.kick()
		})
		return

	case FaultOmission:
		b.stats.FramesOK++ // the sender and the bus observe success
		if b.Trace != nil {
			b.Trace(TraceEvent{Kind: TraceTxOK, At: b.K.Now(), Frame: req.frame, Sender: sender, Attempt: req.attempt})
		}
		b.deliver(req, sender, fault.Victims)

	default:
		b.stats.FramesOK++
		if b.Trace != nil {
			b.Trace(TraceEvent{Kind: TraceTxOK, At: b.K.Now(), Frame: req.frame, Sender: sender, Attempt: req.attempt})
		}
		b.deliver(req, sender, nil)
	}

	b.ctrls[sender].remove(req)
	if req.done != nil {
		req.done(true, b.K.Now())
	}
	b.busy = false
	b.kick()
}

// deliver hands the frame to every operational receiver except the sender
// and any inconsistent-omission victims.
func (b *Bus) deliver(req *txReq, sender int, victims map[int]bool) {
	now := b.K.Now()
	for i, c := range b.ctrls {
		if i == sender || c.muted {
			continue
		}
		if victims[i] {
			b.stats.Omissions++
			continue
		}
		if !c.accepts(req.frame.ID) {
			continue
		}
		if b.Trace != nil {
			b.Trace(TraceEvent{Kind: TraceRx, At: now, Frame: req.frame, Sender: sender, Recv: i, Attempt: req.attempt})
		}
		if c.OnReceive != nil {
			c.OnReceive(req.frame.Clone(), now)
		}
	}
}
