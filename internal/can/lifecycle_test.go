package can

import (
	"testing"

	"canec/internal/sim"
)

// TestDetachFlushesAndCorruptsInFlight: a node crash mid-transmission must
// end the attempt in an error frame (no receiver gets the truncated frame)
// and flush every queued request without invoking Done callbacks.
func TestDetachFlushesAndCorruptsInFlight(t *testing.T) {
	k, b := rig(3, 1)
	received := 0
	b.Controller(1).OnReceive = func(Frame, sim.Time) { received++ }
	b.Controller(2).OnReceive = func(Frame, sim.Time) { received++ }
	doneCalls := 0
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1), Data: make([]byte, 8)},
		SubmitOpts{Done: func(bool, sim.Time) { doneCalls++ }})
	b.Controller(0).Submit(Frame{ID: MakeID(6, 0, 2), Data: make([]byte, 8)},
		SubmitOpts{Done: func(bool, sim.Time) { doneCalls++ }})

	// Let arbitration start the first frame, then crash mid-transmission.
	k.Run(10 * sim.Microsecond)
	if !b.Busy() {
		t.Fatal("first frame should be on the wire")
	}
	b.Controller(0).Detach()
	if b.Controller(0).Pending() != 0 {
		t.Fatalf("pending after Detach = %d", b.Controller(0).Pending())
	}
	k.RunUntilIdle()

	if received != 0 {
		t.Fatalf("receivers got %d frames from a crashed node", received)
	}
	if doneCalls != 0 {
		t.Fatalf("Done callbacks ran %d times on a crashed node", doneCalls)
	}
	st := b.Stats()
	if st.FramesError != 1 {
		t.Fatalf("FramesError = %d, want 1 (truncated frame)", st.FramesError)
	}
	if st.FramesOK != 0 {
		t.Fatalf("FramesOK = %d, want 0", st.FramesOK)
	}
}

// TestDetachReattachResumesTraffic: after a Reattach the controller can
// transmit again (fresh node software reconfigures and submits).
func TestDetachReattachResumesTraffic(t *testing.T) {
	k, b := rig(2, 1)
	got := 0
	b.Controller(1).OnReceive = func(Frame, sim.Time) { got++ }

	b.Controller(0).Detach()
	b.Controller(0).Reattach()
	if b.Controller(0).Muted() {
		t.Fatal("still muted after Reattach")
	}
	b.Controller(0).Submit(Frame{ID: MakeID(9, 0, 3), Data: []byte{1}}, SubmitOpts{})
	k.RunUntilIdle()
	if got != 1 {
		t.Fatalf("deliveries after reattach = %d, want 1", got)
	}
}

// prioGuardian mutes every frame at or above (numerically at or below) a
// priority threshold, isolating the sender after limit violations.
type prioGuardian struct {
	limit      int
	violations map[int]int
}

func (g *prioGuardian) Judge(f Frame, sender int, _ sim.Time) GuardianVerdict {
	if f.ID.Prio() > 0 {
		return GuardAllow
	}
	if g.violations == nil {
		g.violations = make(map[int]int)
	}
	g.violations[sender]++
	if g.limit > 0 && g.violations[sender] >= g.limit {
		return GuardMuteNode
	}
	return GuardMuteFrame
}

// TestGuardianMutesFrames: muted frames never reach the wire, their Done
// callbacks observe failure, and verdicts are counted and traced.
func TestGuardianMutesFrames(t *testing.T) {
	k, b := rig(2, 1)
	b.Guardian = &prioGuardian{}
	var mutes []TraceEvent
	b.Trace = func(e TraceEvent) {
		if e.Kind == TraceGuardMute {
			mutes = append(mutes, e)
		}
	}
	delivered := 0
	b.Controller(1).OnReceive = func(Frame, sim.Time) { delivered++ }

	okResults := []bool{}
	b.Controller(0).Submit(Frame{ID: MakeID(0, 0, 7), Data: []byte{1}},
		SubmitOpts{Done: func(ok bool, _ sim.Time) { okResults = append(okResults, ok) }})
	b.Controller(0).Submit(Frame{ID: MakeID(40, 0, 8), Data: []byte{2}},
		SubmitOpts{Done: func(ok bool, _ sim.Time) { okResults = append(okResults, ok) }})
	k.RunUntilIdle()

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only the prio-40 frame)", delivered)
	}
	if len(okResults) != 2 || okResults[0] != false || okResults[1] != true {
		t.Fatalf("done results = %v, want [false true]", okResults)
	}
	if b.Stats().GuardianMuted != 1 {
		t.Fatalf("GuardianMuted = %d, want 1", b.Stats().GuardianMuted)
	}
	if len(mutes) != 1 || mutes[0].Sender != 0 || mutes[0].Frame.ID.Prio() != 0 {
		t.Fatalf("trace events = %+v", mutes)
	}
}

// TestGuardianIsolatesBabbler: after the violation limit the whole
// controller is muted, so even its later well-formed traffic stays off the
// bus while other nodes proceed.
func TestGuardianIsolatesBabbler(t *testing.T) {
	k, b := rig(3, 1)
	b.Guardian = &prioGuardian{limit: 2}
	delivered := map[TxNode]int{}
	b.Controller(2).OnReceive = func(f Frame, _ sim.Time) { delivered[f.ID.TxNode()]++ }

	// Node 0 babbles at priority 0; node 1 sends legitimate traffic.
	for i := 0; i < 4; i++ {
		b.Controller(0).Submit(Frame{ID: MakeID(0, 0, Etag(i+1)), Data: []byte{byte(i)}}, SubmitOpts{})
	}
	b.Controller(1).Submit(Frame{ID: MakeID(50, 1, 9), Data: []byte{7}}, SubmitOpts{})
	k.RunUntilIdle()

	if delivered[0] != 0 {
		t.Fatalf("babbler delivered %d frames", delivered[0])
	}
	if delivered[1] != 1 {
		t.Fatalf("legitimate node delivered %d frames, want 1", delivered[1])
	}
	st := b.Stats()
	if st.GuardianIsolated != 1 {
		t.Fatalf("GuardianIsolated = %d, want 1", st.GuardianIsolated)
	}
	if st.GuardianMuted != 2 {
		t.Fatalf("GuardianMuted = %d, want 2 (limit reached on the second)", st.GuardianMuted)
	}
	if !b.Controller(0).Muted() {
		t.Fatal("babbler not muted")
	}
	// The two frames still queued behind the isolation stay pending but
	// harmless; a Reattach (maintenance action) would resume them.
	if b.Controller(0).Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Controller(0).Pending())
	}
}
