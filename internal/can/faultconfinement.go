package can

// CAN 2.0 fault confinement (§8 of the Bosch spec): every controller
// keeps a transmit error counter (TEC) and receive error counter (REC).
// Detected transmission errors add 8 to the sender's TEC and 1 to every
// receiver's REC; successes decrement. A controller whose TEC exceeds 255
// enters bus-off: it detaches from the bus, its pending transmissions are
// abandoned, and (if recovery is enabled) it rejoins after observing 128
// occurrences of 11 recessive bits.
//
// The model is opt-in (Bus.ConfineFaults): the paper's experiments assume
// error-active controllers throughout — adversarial injectors at 50%+
// error rates would otherwise drive senders bus-off, which real systems
// dimension their fault hypotheses to avoid. Enabling it reproduces the
// fault-confinement behaviour for experiments that want it.
const (
	// ErrorPassiveTEC is the error-passive threshold.
	ErrorPassiveTEC = 128
	// BusOffTEC is the bus-off threshold.
	BusOffTEC = 256
	// BusOffRecoveryBits is the recovery observation time: 128 sequences
	// of 11 recessive bits.
	BusOffRecoveryBits = 128 * 11
)

// ErrorState is a controller's fault-confinement state.
type ErrorState int

const (
	// ErrorActive controllers participate fully.
	ErrorActive ErrorState = iota
	// ErrorPassive controllers participate but signal errors passively
	// (tracked for observability; the timing model is unchanged).
	ErrorPassive
	// BusOff controllers are detached from the bus.
	BusOff
)

// String implements fmt.Stringer.
func (s ErrorState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	}
	return "?"
}

// TEC returns the controller's transmit error counter.
func (c *Controller) TEC() int { return c.tec }

// REC returns the controller's receive error counter.
func (c *Controller) REC() int { return c.rec }

// State returns the controller's fault-confinement state.
func (c *Controller) State() ErrorState {
	switch {
	case c.busOff:
		return BusOff
	case c.tec >= ErrorPassiveTEC || c.rec >= ErrorPassiveTEC:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// AutoRecover controls whether a bus-off controller rejoins automatically
// after the recovery time (default when fault confinement is enabled).
func (c *Controller) SetAutoRecover(v bool) { c.autoRecover = v }

// onTxSuccess applies the success bookkeeping.
func (c *Controller) onTxSuccess() {
	if c.tec > 0 {
		c.tec--
	}
}

// onTxError applies the error bookkeeping and triggers bus-off when the
// TEC crosses the threshold. Returns true if the controller went bus-off.
func (c *Controller) onTxError() bool {
	c.tec += 8
	if c.tec >= BusOffTEC && !c.busOff {
		c.enterBusOff()
		return true
	}
	return false
}

// onRxSuccess / onRxError apply receiver-side bookkeeping. Bosch §8 rule 8:
// a successful reception decrements REC by 1, except that a REC above 127
// is set to a value between 119 and 127 — the error-passive receiver
// re-enters the 119–127 band on its first good frame instead of counting
// down one by one. The model picks 127, the most conservative value: the
// controller leaves error-passive yet a single further receive error puts
// it straight back.
func (c *Controller) onRxSuccess() {
	if c.rec > 127 {
		c.rec = 127
		return
	}
	if c.rec > 0 {
		c.rec--
	}
}

func (c *Controller) onRxError() {
	c.rec++
}

// enterBusOff detaches the controller: pending requests are abandoned
// with done(false), and recovery is scheduled if enabled.
func (c *Controller) enterBusOff() {
	c.busOff = true
	c.muted = true
	pending := c.pending
	c.pending = nil
	for _, r := range pending {
		r.removed = true
		c.bus.stats.FramesAborted++
		if r.done != nil {
			r.done(false, c.bus.K.Now())
		}
	}
	c.bus.stats.BusOffEvents++
	if c.autoRecover {
		c.bus.K.After(c.bus.BitDuration(BusOffRecoveryBits), func() {
			c.Recover()
		})
	}
}

// Recover returns a bus-off controller to error-active state with cleared
// counters, as after the 128×11 recessive-bit observation.
func (c *Controller) Recover() {
	if !c.busOff {
		return
	}
	old := c.State()
	c.busOff = false
	c.muted = false
	c.tec, c.rec = 0, 0
	c.bus.noteState(c, old)
	c.bus.kick()
}

// noteState emits the trace event and the OnErrorState hook for one
// controller's fault-confinement transition. old is the state captured
// before the counter bookkeeping ran; a no-op when the state is unchanged.
func (b *Bus) noteState(c *Controller, old ErrorState) {
	now := c.State()
	if now == old {
		return
	}
	if b.Trace != nil {
		var kind TraceKind
		switch {
		case now == BusOff:
			kind = TraceBusOff
		case now == ErrorPassive:
			kind = TraceErrorPassive
		case old == BusOff:
			kind = TraceBusOffRecover
		default:
			kind = TraceErrorActive
		}
		b.Trace(TraceEvent{Kind: kind, At: b.K.Now(), Sender: c.index, TEC: c.tec, REC: c.rec})
	}
	if b.OnErrorState != nil {
		b.OnErrorState(c.index, old, now, b.K.Now())
	}
}

// confinement hooks called from Bus.complete when enabled.
func (b *Bus) confineTxError(sender int) {
	c := b.ctrls[sender]
	old := c.State()
	c.onTxError()
	b.noteState(c, old)
	for i, r := range b.ctrls {
		if i != sender && !r.muted {
			rold := r.State()
			r.onRxError()
			b.noteState(r, rold)
		}
	}
}

func (b *Bus) confineTxSuccess(sender int, victims map[int]bool) {
	c := b.ctrls[sender]
	old := c.State()
	c.onTxSuccess()
	b.noteState(c, old)
	for i, r := range b.ctrls {
		if i != sender && !r.muted && !victims[i] {
			rold := r.State()
			r.onRxSuccess()
			b.noteState(r, rold)
		}
	}
}
