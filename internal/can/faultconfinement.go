package can

// CAN 2.0 fault confinement (§8 of the Bosch spec): every controller
// keeps a transmit error counter (TEC) and receive error counter (REC).
// Detected transmission errors add 8 to the sender's TEC and 1 to every
// receiver's REC; successes decrement. A controller whose TEC exceeds 255
// enters bus-off: it detaches from the bus, its pending transmissions are
// abandoned, and (if recovery is enabled) it rejoins after observing 128
// occurrences of 11 recessive bits.
//
// The model is opt-in (Bus.ConfineFaults): the paper's experiments assume
// error-active controllers throughout — adversarial injectors at 50%+
// error rates would otherwise drive senders bus-off, which real systems
// dimension their fault hypotheses to avoid. Enabling it reproduces the
// fault-confinement behaviour for experiments that want it.
const (
	// ErrorPassiveTEC is the error-passive threshold.
	ErrorPassiveTEC = 128
	// BusOffTEC is the bus-off threshold.
	BusOffTEC = 256
	// BusOffRecoveryBits is the recovery observation time: 128 sequences
	// of 11 recessive bits.
	BusOffRecoveryBits = 128 * 11
)

// ErrorState is a controller's fault-confinement state.
type ErrorState int

const (
	// ErrorActive controllers participate fully.
	ErrorActive ErrorState = iota
	// ErrorPassive controllers participate but signal errors passively
	// (tracked for observability; the timing model is unchanged).
	ErrorPassive
	// BusOff controllers are detached from the bus.
	BusOff
)

// String implements fmt.Stringer.
func (s ErrorState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	}
	return "?"
}

// TEC returns the controller's transmit error counter.
func (c *Controller) TEC() int { return c.tec }

// REC returns the controller's receive error counter.
func (c *Controller) REC() int { return c.rec }

// State returns the controller's fault-confinement state.
func (c *Controller) State() ErrorState {
	switch {
	case c.busOff:
		return BusOff
	case c.tec >= ErrorPassiveTEC || c.rec >= ErrorPassiveTEC:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// AutoRecover controls whether a bus-off controller rejoins automatically
// after the recovery time (default when fault confinement is enabled).
func (c *Controller) SetAutoRecover(v bool) { c.autoRecover = v }

// onTxSuccess applies the success bookkeeping.
func (c *Controller) onTxSuccess() {
	if c.tec > 0 {
		c.tec--
	}
}

// onTxError applies the error bookkeeping and triggers bus-off when the
// TEC crosses the threshold. Returns true if the controller went bus-off.
func (c *Controller) onTxError() bool {
	c.tec += 8
	if c.tec >= BusOffTEC && !c.busOff {
		c.enterBusOff()
		return true
	}
	return false
}

// onRxSuccess / onRxError apply receiver-side bookkeeping.
func (c *Controller) onRxSuccess() {
	if c.rec > 0 {
		c.rec--
	}
}

func (c *Controller) onRxError() {
	c.rec++
}

// enterBusOff detaches the controller: pending requests are abandoned
// with done(false), and recovery is scheduled if enabled.
func (c *Controller) enterBusOff() {
	c.busOff = true
	c.muted = true
	pending := c.pending
	c.pending = nil
	for _, r := range pending {
		r.removed = true
		c.bus.stats.FramesAborted++
		if r.done != nil {
			r.done(false, c.bus.K.Now())
		}
	}
	c.bus.stats.BusOffEvents++
	if c.autoRecover {
		c.bus.K.After(c.bus.BitDuration(BusOffRecoveryBits), func() {
			c.Recover()
		})
	}
}

// Recover returns a bus-off controller to error-active state with cleared
// counters, as after the 128×11 recessive-bit observation.
func (c *Controller) Recover() {
	if !c.busOff {
		return
	}
	c.busOff = false
	c.muted = false
	c.tec, c.rec = 0, 0
	c.bus.kick()
}

// confinement hooks called from Bus.complete when enabled.
func (b *Bus) confineTxError(sender int) {
	c := b.ctrls[sender]
	c.onTxError()
	for i, r := range b.ctrls {
		if i != sender && !r.muted {
			r.onRxError()
		}
	}
}

func (b *Bus) confineTxSuccess(sender int, victims map[int]bool) {
	b.ctrls[sender].onTxSuccess()
	for i, r := range b.ctrls {
		if i != sender && !r.muted && !victims[i] {
			r.onRxSuccess()
		}
	}
}
