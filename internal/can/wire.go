package can

import (
	"errors"
	"fmt"
)

// Wire-level codec: serialise a frame to its exact stuffed bit stream and
// parse it back, verifying structure and CRC. The simulator's timing path
// only needs bit *counts* (WireBits), but the codec closes the loop for
// conformance testing — a frame must survive encode→decode bit-exactly —
// and gives bus-monitor tooling a way to decode captured streams.

// ErrWire is wrapped by all decode errors.
var ErrWire = errors.New("can: wire decode error")

// EncodeBits returns the frame's stuffed wire bits (one bit per byte,
// values 0/1), from the start-of-frame bit through the CRC sequence —
// the stuffed region of the frame. The constant-form tail (CRC delimiter,
// ACK, EOF, IFS) carries no information and is omitted.
func EncodeBits(f Frame) []byte {
	return AppendEncodeBits(make([]byte, 0, maxStuffedBits), f)
}

// AppendEncodeBits appends the frame's stuffed wire bits to dst, reusing
// its capacity — the allocation-free form for hot paths (the relay
// egress loop encodes every forwarded frame). The pre-stuffing scratch
// lives on the stack.
func AppendEncodeBits(dst []byte, f Frame) []byte {
	var scratch [maxUnstuffedBits]byte
	raw := appendUnstuffedBits(scratch[:0], f)
	return appendStuffed(dst, raw)
}

// appendStuffed applies the CAN bit-stuffing rule to raw, appending the
// stuffed stream to dst.
func appendStuffed(dst, raw []byte) []byte {
	run := 0
	var prev byte = 2
	for _, b := range raw {
		if b == prev {
			run++
		} else {
			prev, run = b, 1
		}
		dst = append(dst, b)
		if run == 5 {
			dst = append(dst, 1-b)
			prev, run = 1-b, 1
		}
	}
	return dst
}

// destuff removes stuff bits, failing on a six-bit run (which on a real
// bus signals an error frame, not data).
func destuff(bits []byte) ([]byte, error) {
	return destuffInto(make([]byte, 0, len(bits)), bits)
}

// destuffInto removes stuff bits, appending the raw stream to dst.
func destuffInto(dst, bits []byte) ([]byte, error) {
	out := dst
	run := 0
	var prev byte = 2
	skip := false
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("%w: non-binary symbol at %d", ErrWire, i)
		}
		if skip {
			// This bit is a stuff bit: it must complement the previous run.
			if b == prev {
				return nil, fmt.Errorf("%w: stuff violation at bit %d", ErrWire, i)
			}
			prev, run = b, 1
			skip = false
			continue
		}
		if b == prev {
			run++
		} else {
			prev, run = b, 1
		}
		out = append(out, b)
		if run == 5 {
			skip = true
		}
	}
	return out, nil
}

// DecodeBits parses a stuffed wire stream produced by EncodeBits back
// into a frame, validating the fixed-form fields and the CRC.
func DecodeBits(bits []byte) (Frame, error) {
	raw, err := destuff(bits)
	if err != nil {
		return Frame{}, err
	}
	return decodeRaw(raw, nil)
}

// Codec is a reusable encoder/decoder whose scratch buffers survive
// across calls, for hot paths that frame thousands of messages per
// second (the relay transport). A Codec is not safe for concurrent use;
// the Frame returned by Decode aliases the codec's internal payload
// buffer and is only valid until the next Decode call — clone it (or
// copy Data) to retain it.
type Codec struct {
	raw  []byte
	data [MaxPayload]byte
}

// Encode appends f's stuffed wire bits to dst (see AppendEncodeBits).
func (c *Codec) Encode(dst []byte, f Frame) []byte {
	return AppendEncodeBits(dst, f)
}

// Decode parses a stuffed wire stream without allocating: the destuffed
// scratch and the payload buffer are reused across calls.
func (c *Codec) Decode(bits []byte) (Frame, error) {
	if c.raw == nil {
		c.raw = make([]byte, 0, maxStuffedBits)
	}
	raw, err := destuffInto(c.raw[:0], bits)
	if err != nil {
		return Frame{}, err
	}
	c.raw = raw[:0]
	return decodeRaw(raw, c.data[:0])
}

// decodeRaw parses a destuffed bit stream. data, when non-nil, is the
// payload scratch to append into (cap ≥ MaxPayload); nil allocates.
func decodeRaw(raw []byte, data []byte) (Frame, error) {
	// Minimum frame: SOF..DLC (39 bits) + CRC (15).
	if len(raw) < extStuffedOverheadBits {
		return Frame{}, fmt.Errorf("%w: truncated frame (%d bits)", ErrWire, len(raw))
	}
	pos := 0
	take := func(n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v = v<<1 | uint32(raw[pos])
			pos++
		}
		return v
	}
	if take(1) != 0 {
		return Frame{}, fmt.Errorf("%w: SOF not dominant", ErrWire)
	}
	idA := take(11)
	if take(1) != 1 {
		return Frame{}, fmt.Errorf("%w: SRR not recessive", ErrWire)
	}
	if take(1) != 1 {
		return Frame{}, fmt.Errorf("%w: IDE not recessive (standard frames unsupported)", ErrWire)
	}
	idB := take(18)
	if take(1) != 0 {
		return Frame{}, fmt.Errorf("%w: RTR set (remote frames unsupported)", ErrWire)
	}
	take(2) // r1, r0
	dlc := int(take(4))
	if dlc > MaxPayload {
		return Frame{}, fmt.Errorf("%w: DLC %d", ErrWire, dlc)
	}
	if len(raw) != extStuffedOverheadBits+8*dlc {
		return Frame{}, fmt.Errorf("%w: length %d bits does not match DLC %d",
			ErrWire, len(raw), dlc)
	}
	if data == nil {
		data = make([]byte, 0, dlc)
	}
	for i := 0; i < dlc; i++ {
		data = append(data, byte(take(8)))
	}
	gotCRC := uint16(take(15))
	// The CRC must be validated over the *received* bits (everything
	// before the CRC sequence), not over a re-encoding of the decoded
	// fields: otherwise deviations in bits the decoder ignores (reserved
	// bits) would slip through.
	if wantCRC := crc15(raw[:len(raw)-15]); gotCRC != wantCRC {
		return Frame{}, fmt.Errorf("%w: CRC mismatch %#x != %#x", ErrWire, gotCRC, wantCRC)
	}
	return Frame{ID: ID(idA<<18 | idB), Data: data}, nil
}

// PackBits appends a bit-per-byte stream (EncodeBits output) to dst
// packed 8 bits per byte, MSB first. The relay transport uses it to ship
// stuffed CAN bit streams over IP without the 8x blow-up of the
// simulator's bit-per-byte form.
func PackBits(dst, bits []byte) []byte {
	for i := 0; i < len(bits); i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < len(bits); j++ {
			b |= (bits[i+j] & 1) << uint(7-j)
		}
		dst = append(dst, b)
	}
	return dst
}

// UnpackBits appends n bits unpacked from the MSB-first packed stream to
// dst (one bit per byte). It fails when packed holds fewer than n bits.
func UnpackBits(dst, packed []byte, n int) ([]byte, error) {
	if n < 0 || len(packed)*8 < n {
		return nil, fmt.Errorf("%w: %d packed bytes hold fewer than %d bits", ErrWire, len(packed), n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, (packed[i/8]>>uint(7-i%8))&1)
	}
	return dst, nil
}
