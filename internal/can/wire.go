package can

import (
	"errors"
	"fmt"
)

// Wire-level codec: serialise a frame to its exact stuffed bit stream and
// parse it back, verifying structure and CRC. The simulator's timing path
// only needs bit *counts* (WireBits), but the codec closes the loop for
// conformance testing — a frame must survive encode→decode bit-exactly —
// and gives bus-monitor tooling a way to decode captured streams.

// ErrWire is wrapped by all decode errors.
var ErrWire = errors.New("can: wire decode error")

// EncodeBits returns the frame's stuffed wire bits (one bit per byte,
// values 0/1), from the start-of-frame bit through the CRC sequence —
// the stuffed region of the frame. The constant-form tail (CRC delimiter,
// ACK, EOF, IFS) carries no information and is omitted.
func EncodeBits(f Frame) []byte {
	raw := unstuffedBits(f)
	out := make([]byte, 0, len(raw)+len(raw)/5)
	run := 0
	var prev byte = 2
	for _, b := range raw {
		if b == prev {
			run++
		} else {
			prev, run = b, 1
		}
		out = append(out, b)
		if run == 5 {
			out = append(out, 1-b)
			prev, run = 1-b, 1
		}
	}
	return out
}

// destuff removes stuff bits, failing on a six-bit run (which on a real
// bus signals an error frame, not data).
func destuff(bits []byte) ([]byte, error) {
	out := make([]byte, 0, len(bits))
	run := 0
	var prev byte = 2
	skip := false
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("%w: non-binary symbol at %d", ErrWire, i)
		}
		if skip {
			// This bit is a stuff bit: it must complement the previous run.
			if b == prev {
				return nil, fmt.Errorf("%w: stuff violation at bit %d", ErrWire, i)
			}
			prev, run = b, 1
			skip = false
			continue
		}
		if b == prev {
			run++
		} else {
			prev, run = b, 1
		}
		out = append(out, b)
		if run == 5 {
			skip = true
		}
	}
	return out, nil
}

// DecodeBits parses a stuffed wire stream produced by EncodeBits back
// into a frame, validating the fixed-form fields and the CRC.
func DecodeBits(bits []byte) (Frame, error) {
	raw, err := destuff(bits)
	if err != nil {
		return Frame{}, err
	}
	// Minimum frame: SOF..DLC (39 bits) + CRC (15).
	if len(raw) < extStuffedOverheadBits {
		return Frame{}, fmt.Errorf("%w: truncated frame (%d bits)", ErrWire, len(raw))
	}
	pos := 0
	take := func(n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v = v<<1 | uint32(raw[pos])
			pos++
		}
		return v
	}
	if take(1) != 0 {
		return Frame{}, fmt.Errorf("%w: SOF not dominant", ErrWire)
	}
	idA := take(11)
	if take(1) != 1 {
		return Frame{}, fmt.Errorf("%w: SRR not recessive", ErrWire)
	}
	if take(1) != 1 {
		return Frame{}, fmt.Errorf("%w: IDE not recessive (standard frames unsupported)", ErrWire)
	}
	idB := take(18)
	if take(1) != 0 {
		return Frame{}, fmt.Errorf("%w: RTR set (remote frames unsupported)", ErrWire)
	}
	take(2) // r1, r0
	dlc := int(take(4))
	if dlc > MaxPayload {
		return Frame{}, fmt.Errorf("%w: DLC %d", ErrWire, dlc)
	}
	if len(raw) != extStuffedOverheadBits+8*dlc {
		return Frame{}, fmt.Errorf("%w: length %d bits does not match DLC %d",
			ErrWire, len(raw), dlc)
	}
	data := make([]byte, dlc)
	for i := range data {
		data[i] = byte(take(8))
	}
	gotCRC := uint16(take(15))
	// The CRC must be validated over the *received* bits (everything
	// before the CRC sequence), not over a re-encoding of the decoded
	// fields: otherwise deviations in bits the decoder ignores (reserved
	// bits) would slip through.
	if wantCRC := crc15(raw[:len(raw)-15]); gotCRC != wantCRC {
		return Frame{}, fmt.Errorf("%w: CRC mismatch %#x != %#x", ErrWire, gotCRC, wantCRC)
	}
	return Frame{ID: ID(idA<<18 | idB), Data: data}, nil
}
