package can

import (
	"testing"

	"canec/internal/sim"
)

// TestRecRule8 pins the receiver-side counter bookkeeping against Bosch
// §8, in particular rule 8: a successful reception normally decrements
// REC, but an error-passive receiver (REC > 127) snaps back to 127 on its
// first good frame instead of counting down one by one.
func TestRecRule8(t *testing.T) {
	cases := []struct {
		name    string
		rec     int
		success bool
		want    int
	}{
		{"success at floor stays at floor", 0, true, 0},
		{"success decrements", 1, true, 0},
		{"success below threshold decrements", 127, true, 126},
		{"rule 8: 128 snaps to 127", 128, true, 127},
		{"rule 8: deep passive snaps to 127", 200, true, 127},
		{"rule 8: saturated snaps to 127", 255, true, 127},
		{"error increments from zero", 0, false, 1},
		{"error crosses the passive threshold", 127, false, 128},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Controller{rec: tc.rec}
			if tc.success {
				c.onRxSuccess()
			} else {
				c.onRxError()
			}
			if c.rec != tc.want {
				t.Fatalf("REC %d after success=%v: got %d, want %d", tc.rec, tc.success, c.rec, tc.want)
			}
		})
	}
	// Rule 8 end to end: one good frame takes an error-passive receiver
	// back to error-active, and a single further receive error returns it.
	c := &Controller{rec: 128}
	if c.State() != ErrorPassive {
		t.Fatalf("state at REC 128 = %v", c.State())
	}
	c.onRxSuccess()
	if c.State() != ErrorActive || c.rec != 127 {
		t.Fatalf("after rule-8 snap: state %v REC %d", c.State(), c.rec)
	}
	c.onRxError()
	if c.State() != ErrorPassive {
		t.Fatalf("one receive error should re-enter passive, state %v", c.State())
	}
}

// TestTargetedBitErrorsJudge exercises the adversary injector's targeting
// logic: only the victim's attempts are corrupted, the priority filter and
// the Active gate suppress the attack, and the verdict is a consistent
// detected error (the victim sees its TEC ramp).
func TestTargetedBitErrorsJudge(t *testing.T) {
	k := sim.NewKernel(1)
	rng := k.RNG()
	victim := Frame{ID: MakeID(5, 0, 1)}
	cases := []struct {
		name string
		inj  TargetedBitErrors
		f    Frame
		from int
		want FaultKind
	}{
		{"victim corrupted", TargetedBitErrors{Victim: 0, Rate: 1, Prio: -1}, victim, 0, FaultError},
		{"bystander untouched", TargetedBitErrors{Victim: 0, Rate: 1, Prio: -1}, victim, 1, FaultNone},
		{"priority filter matches", TargetedBitErrors{Victim: 0, Rate: 1, Prio: 5}, victim, 0, FaultError},
		{"priority filter mismatch", TargetedBitErrors{Victim: 0, Rate: 1, Prio: 6}, victim, 0, FaultNone},
		{"rate zero never fires", TargetedBitErrors{Victim: 0, Rate: 0, Prio: -1}, victim, 0, FaultNone},
		{"isolated attacker silent",
			TargetedBitErrors{Victim: 0, Rate: 1, Prio: -1, Active: func() bool { return false }}, victim, 0, FaultNone},
		{"live attacker fires",
			TargetedBitErrors{Victim: 0, Rate: 1, Prio: -1, Active: func() bool { return true }}, victim, 0, FaultError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.inj.Judge(tc.f, tc.from, 1, 0, rng)
			if got.Kind != tc.want {
				t.Fatalf("Judge = %v, want %v", got.Kind, tc.want)
			}
		})
	}
}

// TestConfinementTraceKinds asserts the bus emits the confinement
// transition traces in spec order with TEC snapshots: error-passive on
// crossing 128, bus-off on crossing 256 with the pending frame flushed,
// and bus-off-recover with cleared counters after 128×11 recessive bits.
func TestConfinementTraceKinds(t *testing.T) {
	k, b := rig(2, 1)
	b.ConfineFaults = true
	b.Injector = RandomErrors{Rate: 1}
	type transition struct {
		kind TraceKind
		tec  int
	}
	var seen []transition
	b.Trace = func(e TraceEvent) {
		switch e.Kind {
		case TraceErrorPassive, TraceErrorActive, TraceBusOff, TraceBusOffRecover:
			if e.Sender == 0 {
				seen = append(seen, transition{e.Kind, e.TEC})
			}
		}
	}
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.Run(20 * sim.Millisecond)
	want := []transition{
		{TraceErrorPassive, ErrorPassiveTEC},
		{TraceBusOff, BusOffTEC},
		{TraceBusOffRecover, 0},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}

	// The fourth kind: a passive sender that heals through successes
	// re-enters error-active without passing through bus-off.
	k2, b2 := rig(2, 2)
	b2.ConfineFaults = true
	b2.Injector = AdversarialK{K: 16, Prio: -1} // 16×8 = 128: exactly passive
	var kinds []TraceKind
	b2.Trace = func(e TraceEvent) {
		switch e.Kind {
		case TraceErrorPassive, TraceErrorActive, TraceBusOff, TraceBusOffRecover:
			if e.Sender == 0 {
				kinds = append(kinds, e.Kind)
			}
		}
	}
	b2.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k2.RunUntilIdle() // 16 errors then success: TEC 127, already active again
	b2.Injector = NoFaults{}
	if len(kinds) != 2 || kinds[0] != TraceErrorPassive || kinds[1] != TraceErrorActive {
		t.Fatalf("heal transitions = %v, want [error-passive error-active]", kinds)
	}
}

// TestConfinementOffHotPathAllocs pins the cost of the confinement plane
// when it is off (the default every experiment and benchmark runs with):
// the submit→arbitrate→complete hot path must allocate exactly as much as
// before the feature existed, and enabling confinement on a healthy bus
// must not add a single allocation either — the counters only move, and
// only transitions trace.
func TestConfinementOffHotPathAllocs(t *testing.T) {
	measure := func(confine bool) float64 {
		k, b := rig(2, 1)
		b.ConfineFaults = confine
		f := Frame{ID: MakeID(5, 0, 1)}
		return testing.AllocsPerRun(500, func() {
			b.Controller(0).Submit(f, SubmitOpts{})
			k.RunUntilIdle()
		})
	}
	off := measure(false)
	on := measure(true)
	if off != on {
		t.Fatalf("healthy hot path: %.2f allocs/frame confinement-off vs %.2f on, want equal", off, on)
	}
	// The absolute pin: a full frame cycle on the off path measures 8
	// (kernel events, request record, trace bookkeeping). If this grows,
	// BENCH_seed comparisons will catch it too — fail here first with a
	// number attached.
	if off > 8 {
		t.Fatalf("confinement-off hot path allocates %.2f per frame, want <= 8", off)
	}
}
