package can

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWireRoundtrip(t *testing.T) {
	cases := []Frame{
		{ID: 0},
		{ID: MakeID(0, 0, 1), Data: []byte{0}},
		{ID: MakeID(255, 127, 16383), Data: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}},
		{ID: MakeID(42, 17, 9999), Data: []byte{1, 2, 3}},
	}
	for _, f := range cases {
		bits := EncodeBits(f)
		got, err := DecodeBits(bits)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got.ID != f.ID || !bytes.Equal(got.Data, f.Data) {
			t.Fatalf("roundtrip %v -> %v", f, got)
		}
	}
}

func TestWireRoundtripProperty(t *testing.T) {
	f := func(idRaw uint32, data []byte) bool {
		fr := Frame{ID: ID(idRaw % (1 << IDBits))}
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		fr.Data = data
		bits := EncodeBits(fr)
		// Encoded length must equal the stuffed region of WireBits.
		if len(bits) != WireBits(fr)-frameTailBits {
			return false
		}
		got, err := DecodeBits(bits)
		if err != nil {
			return false
		}
		return got.ID == fr.ID && bytes.Equal(got.Data, fr.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestWireNoSixRuns(t *testing.T) {
	f := func(idRaw uint32, data []byte) bool {
		fr := Frame{ID: ID(idRaw % (1 << IDBits))}
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		fr.Data = data
		bits := EncodeBits(fr)
		run := 0
		var prev byte = 2
		for _, b := range bits {
			if b == prev {
				run++
				if run >= 6 {
					return false
				}
			} else {
				prev, run = b, 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBitErrorDetected(t *testing.T) {
	// Flipping any single payload/ID/CRC bit must be detected (structure
	// violation, stuff violation or CRC mismatch) — this is what makes
	// consistent error signalling realistic.
	fr := Frame{ID: MakeID(42, 17, 9999), Data: []byte{0xde, 0xad, 0xbe, 0xef}}
	bits := EncodeBits(fr)
	detected := 0
	for i := range bits {
		mut := append([]byte(nil), bits...)
		mut[i] ^= 1
		got, err := DecodeBits(mut)
		if err != nil {
			detected++
			continue
		}
		if got.ID == fr.ID && bytes.Equal(got.Data, fr.Data) {
			t.Fatalf("bit flip at %d went completely unnoticed", i)
		}
		detected++ // decoded to a *different* frame: CRC caught it? no — count as detected change
	}
	if detected != len(bits) {
		t.Fatalf("only %d of %d single-bit flips had any effect", detected, len(bits))
	}
}

func TestWireDecodeErrors(t *testing.T) {
	short := []byte{0, 1, 0}
	if _, err := DecodeBits(short); !errors.Is(err, ErrWire) {
		t.Fatalf("short stream: %v", err)
	}
	// Non-binary symbol.
	if _, err := DecodeBits([]byte{0, 2, 1}); !errors.Is(err, ErrWire) {
		t.Fatalf("bad symbol: %v", err)
	}
	// Six-run (error frame pattern) must be rejected by destuffing.
	sixRun := make([]byte, 80)
	if _, err := DecodeBits(sixRun); !errors.Is(err, ErrWire) {
		t.Fatalf("six-run: %v", err)
	}
	// SOF recessive.
	fr := Frame{ID: MakeID(1, 1, 1), Data: []byte{1}}
	bits := EncodeBits(fr)
	bits[0] = 1
	if _, err := DecodeBits(bits); !errors.Is(err, ErrWire) {
		t.Fatalf("bad SOF: %v", err)
	}
}

func TestWireCRCMismatchExplicit(t *testing.T) {
	fr := Frame{ID: MakeID(9, 9, 9), Data: []byte{1, 2, 3, 4, 5}}
	bits := EncodeBits(fr)
	// Flip a payload bit and, if the mutation broke the stuffing pattern,
	// skip; otherwise the CRC must catch it.
	for i := 60; i < len(bits); i++ {
		mut := append([]byte(nil), bits...)
		mut[i] ^= 1
		_, err := DecodeBits(mut)
		if err == nil {
			t.Fatalf("mutation at %d undetected", i)
		}
	}
}
