package can

import (
	"fmt"
	"testing"

	"canec/internal/sim"
)

func BenchmarkWireBitsByPayload(b *testing.B) {
	for s := 0; s <= 8; s += 2 {
		s := s
		b.Run(fmt.Sprintf("dlc=%d", s), func(b *testing.B) {
			b.ReportAllocs()
			f := Frame{ID: MakeID(42, 17, 9999), Data: make([]byte, s)}
			for i := 0; i < b.N; i++ {
				_ = WireBits(f)
			}
		})
	}
}

func BenchmarkEncodeDecodeBits(b *testing.B) {
	f := Frame{ID: MakeID(42, 17, 9999), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	bits := EncodeBits(f)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = EncodeBits(f)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBits(bits); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeBits measures the relay hot-path codec forms: the
// allocating EncodeBits/DecodeBits baseline against the buffer-reusing
// AppendEncodeBits/Codec pair the relay egress/ingress loops use.
func BenchmarkEncodeBits(b *testing.B) {
	f := Frame{ID: MakeID(42, 17, 9999), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	bits := EncodeBits(f)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = EncodeBits(f)
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, maxStuffedBits)
		for i := 0; i < b.N; i++ {
			buf = AppendEncodeBits(buf[:0], f)
		}
	})
	b.Run("decode-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBits(bits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-codec", func(b *testing.B) {
		b.ReportAllocs()
		var c Codec
		for i := 0; i < b.N; i++ {
			if _, err := c.Decode(bits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pack-roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		packed := PackBits(nil, bits)
		unpacked := make([]byte, 0, maxStuffedBits)
		pbuf := make([]byte, 0, len(packed))
		for i := 0; i < b.N; i++ {
			pbuf = PackBits(pbuf[:0], bits)
			var err error
			unpacked, err = UnpackBits(unpacked[:0], packed, len(bits))
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkArbitrationDense(b *testing.B) {
	// 32 controllers, all with pending frames: measures the per-frame
	// arbitration scan cost at realistic maximum node counts.
	b.ReportAllocs()
	k := sim.NewKernel(1)
	bus := NewBus(k, DefaultBitRate)
	const nodes = 32
	for i := 0; i < nodes; i++ {
		bus.Attach(TxNode(i))
	}
	sent := 0
	var refill func(node int)
	refill = func(node int) {
		if sent >= b.N {
			return
		}
		sent++
		bus.Controller(node).Submit(Frame{
			ID:   MakeID(Prio(10+node), TxNode(node), Etag(node+1)),
			Data: []byte{byte(sent)},
		}, SubmitOpts{Done: func(bool, sim.Time) { refill(node) }})
	}
	b.ResetTimer()
	for i := 0; i < nodes; i++ {
		refill(i)
	}
	k.Run(sim.MaxTime)
}

func BenchmarkControllerUpdate(b *testing.B) {
	// Identifier rewrite cost: the hot operation of SRT promotion.
	b.ReportAllocs()
	k := sim.NewKernel(1)
	bus := NewBus(k, DefaultBitRate)
	c := bus.Attach(0)
	bus.Attach(1)
	// A blocker keeps the bus busy so the handle stays rewritable.
	bus.Controller(1).Submit(Frame{ID: MakeID(1, 1, 1), Data: make([]byte, 8)}, SubmitOpts{})
	k.Run(sim.Microsecond)
	h := c.Submit(Frame{ID: MakeID(200, 0, 2)}, SubmitOpts{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(h, MakeID(Prio(100+i%100), 0, 2))
	}
}
