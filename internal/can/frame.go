package can

import (
	"fmt"

	"canec/internal/sim"
)

// MaxPayload is the CAN frame payload limit in bytes.
const MaxPayload = 8

// Frame is a CAN 2.0B extended data frame as handed to a controller.
type Frame struct {
	ID   ID
	Data []byte // 0..8 bytes
	// Tag is an opaque correlation annotation set by the submitter and
	// preserved through transmission and delivery. It is simulation
	// metadata only — it occupies no wire bits and never influences
	// arbitration, stuffing or timing. The observability layer uses it to
	// tie bus activity back to the middleware event that caused it; zero
	// means untagged (system frames, untraced traffic).
	Tag uint64
}

// Clone returns a deep copy of f.
func (f Frame) Clone() Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return Frame{ID: f.ID, Data: d, Tag: f.Tag}
}

func (f Frame) String() string {
	return fmt.Sprintf("frame{%v dlc=%d}", f.ID, len(f.Data))
}

// Validate reports an error for identifiers out of range or oversized
// payloads.
func (f Frame) Validate() error {
	if !f.ID.Valid() {
		return fmt.Errorf("can: identifier %#x exceeds 29 bits", uint32(f.ID))
	}
	if len(f.Data) > MaxPayload {
		return fmt.Errorf("can: payload %d bytes exceeds %d", len(f.Data), MaxPayload)
	}
	return nil
}

// Frame-format constants for CAN 2.0B extended data frames.
//
// The stuffed region runs from the start-of-frame bit through the 15-bit
// CRC sequence: SOF(1) + ID-A(11) + SRR(1) + IDE(1) + ID-B(18) + RTR(1) +
// r1(1) + r0(1) + DLC(4) + data(8·s) + CRC(15) = 54 + 8·s bits. The tail —
// CRC delimiter(1) + ACK slot(1) + ACK delimiter(1) + EOF(7) + inter-frame
// space(3) — is never stuffed and adds 13 bits.
const (
	extStuffedOverheadBits = 54
	frameTailBits          = 13
)

// crc15Poly is the CAN CRC-15 generator polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
const crc15Poly = 0x4599

// crc15 computes the CAN CRC over a bit sequence (one bit per byte element,
// values 0 or 1), as specified in Bosch CAN 2.0 §3.1.1.
func crc15(bits []byte) uint16 {
	var crc uint16
	for _, b := range bits {
		bit14 := (crc >> 14) & 1
		crc <<= 1
		if b^byte(bit14) == 1 {
			crc ^= crc15Poly
		}
		crc &= 0x7fff
	}
	return crc
}

// maxUnstuffedBits and maxStuffedBits bound the codec buffer sizes: a
// full 8-byte payload yields 54+64 = 118 pre-stuffing bits, and stuffing
// inserts at most one bit per four (⌊(118−1)/4⌋ = 29).
const (
	maxUnstuffedBits = extStuffedOverheadBits + 8*MaxPayload
	maxStuffedBits   = maxUnstuffedBits + (maxUnstuffedBits-1)/4
)

// MaxStuffedBits is the worst-case stuffed bit count of one extended
// data frame's stuffed region — the sizing bound for codec buffers held
// by transports that carry encoded frames (internal/relay).
const MaxStuffedBits = maxStuffedBits

// unstuffedBits builds the exact pre-stuffing bit sequence of the frame's
// stuffed region (SOF through CRC sequence). It is exported through
// WireBits and StuffBits so that tests can cross-check against the
// worst-case formulas.
func unstuffedBits(f Frame) []byte {
	return appendUnstuffedBits(make([]byte, 0, extStuffedOverheadBits+8*len(f.Data)), f)
}

// appendUnstuffedBits appends the pre-stuffing bit sequence to dst,
// reusing its capacity (the allocation-free form for hot paths).
func appendUnstuffedBits(dst []byte, f Frame) []byte {
	bits := dst
	base := len(dst)
	put := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			bits = append(bits, byte((v>>uint(i))&1))
		}
	}
	put(0, 1)                     // SOF (dominant)
	put(uint32(f.ID)>>18, 11)     // ID-A: bits 28..18
	put(1, 1)                     // SRR (recessive)
	put(1, 1)                     // IDE (recessive: extended format)
	put(uint32(f.ID)&0x3ffff, 18) // ID-B: bits 17..0
	put(0, 1)                     // RTR (dominant: data frame)
	put(0, 2)                     // r1, r0
	put(uint32(len(f.Data)), 4)   // DLC
	for _, b := range f.Data {
		put(uint32(b), 8)
	}
	put(uint32(crc15(bits[base:])), 15) // CRC over the frame bits so far
	return bits
}

// StuffBits returns the exact number of stuff bits the CAN bit-stuffing
// rule inserts for this frame: after five consecutive bits of equal value
// in the stuffed region, a complementary bit is inserted (and itself
// participates in subsequent runs).
func StuffBits(f Frame) int {
	bits := unstuffedBits(f)
	stuffed := 0
	run := 1
	prev := bits[0]
	for i := 1; i < len(bits); i++ {
		b := bits[i]
		if b == prev {
			run++
			if run == 5 {
				stuffed++
				// The inserted complement bit restarts the run.
				prev = 1 - b
				run = 1
			}
		} else {
			prev = b
			run = 1
		}
	}
	return stuffed
}

// WireBits returns the exact on-wire length of the frame in bit times,
// including stuff bits, CRC/ACK/EOF overhead and the 3-bit inter-frame
// space.
func WireBits(f Frame) int {
	return extStuffedOverheadBits + 8*len(f.Data) + StuffBits(f) + frameTailBits
}

// WorstCaseBits returns the classical worst-case extended-frame length in
// bit times for a payload of s bytes (Tindell's bound with g = 54 stuffed
// overhead bits): g + 8s + 13 + ⌊(g + 8s − 1)/4⌋.
//
// For s = 8 this is 160 bit times — 160 µs at 1 Mbit/s. The paper quotes
// 154 µs for "the longest CAN message"; the 6-bit delta comes from a less
// pessimistic stuffing assumption. ΔT_wait in this repository defaults to
// the safe 160-bit bound (configurable in calendar.Config).
func WorstCaseBits(s int) int {
	g := extStuffedOverheadBits
	return g + 8*s + frameTailBits + (g+8*s-1)/4
}

// MinFrameBits returns the minimum possible extended frame length for a
// payload of s bytes (no stuff bits).
func MinFrameBits(s int) int {
	return extStuffedOverheadBits + 8*s + frameTailBits
}

// ErrorOverheadBits is the bus time consumed by an error signalling
// sequence: error flag (6) + up to 6 superposed echo flag bits + error
// delimiter (8) + intermission (3). We charge the worst case.
const ErrorOverheadBits = 23

// BitTime converts a bit count to virtual time at the given bit rate.
func BitTime(bits int, bitRate int) sim.Duration {
	// One bit lasts 1e9/bitRate nanoseconds. For the standard 1 Mbit/s this
	// is exactly 1 µs per bit.
	return sim.Duration(int64(bits) * int64(sim.Second) / int64(bitRate))
}
