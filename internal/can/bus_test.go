package can

import (
	"fmt"
	"testing"

	"canec/internal/sim"
)

// rig creates a kernel, bus and n controllers with open filters.
func rig(n int, seed uint64) (*sim.Kernel, *Bus) {
	k := sim.NewKernel(seed)
	b := NewBus(k, DefaultBitRate)
	for i := 0; i < n; i++ {
		b.Attach(TxNode(i))
	}
	return k, b
}

func TestArbitrationLowestIDWins(t *testing.T) {
	k, b := rig(3, 1)
	var order []ID
	for i := 0; i < 3; i++ {
		b.Controller(i).OnReceive = func(f Frame, _ sim.Time) {
			order = append(order, f.ID)
		}
	}
	// Submit three frames at t=0 from different nodes; they must go out in
	// ascending ID order regardless of submission order.
	b.Controller(2).Submit(Frame{ID: MakeID(10, 2, 5)}, SubmitOpts{})
	b.Controller(0).Submit(Frame{ID: MakeID(200, 0, 5)}, SubmitOpts{})
	b.Controller(1).Submit(Frame{ID: MakeID(1, 1, 5)}, SubmitOpts{})
	k.RunUntilIdle()
	// Each frame is received by 2 nodes, so 6 deliveries; check sequence of
	// distinct IDs.
	if len(order) != 6 {
		t.Fatalf("deliveries = %d, want 6", len(order))
	}
	wantSeq := []Prio{1, 1, 10, 10, 200, 200}
	for i, id := range order {
		if id.Prio() != wantSeq[i] {
			t.Fatalf("delivery %d has prio %d, want %d (order %v)", i, id.Prio(), wantSeq[i], order)
		}
	}
}

func TestNonPreemption(t *testing.T) {
	k, b := rig(2, 1)
	var rx []struct {
		id ID
		at sim.Time
	}
	b.Controller(1).OnReceive = func(f Frame, at sim.Time) {
		rx = append(rx, struct {
			id ID
			at sim.Time
		}{f.ID, at})
	}
	b.Controller(0).OnReceive = func(f Frame, at sim.Time) {
		rx = append(rx, struct {
			id ID
			at sim.Time
		}{f.ID, at})
	}
	low := Frame{ID: MakeID(250, 0, 1), Data: make([]byte, 8)}
	b.Controller(0).Submit(low, SubmitOpts{})
	// A higher-priority frame becomes ready 10 µs into the low-priority
	// transmission; it must wait for completion (non-preemptive medium).
	k.At(10*sim.Microsecond, func() {
		b.Controller(1).Submit(Frame{ID: MakeID(0, 1, 2)}, SubmitOpts{})
	})
	k.RunUntilIdle()
	if len(rx) != 2 {
		t.Fatalf("rx = %d, want 2", len(rx))
	}
	if rx[0].id.Prio() != 250 {
		t.Fatalf("first delivery should be the already-started low frame, got %v", rx[0].id)
	}
	lowDur := BitTime(WireBits(low), DefaultBitRate)
	if rx[0].at != lowDur {
		t.Fatalf("low frame completed at %v, want %v", rx[0].at, lowDur)
	}
	if rx[1].at <= rx[0].at {
		t.Fatal("high-priority frame did not wait for bus")
	}
}

func TestSameInstantSubmissionsShareArbitration(t *testing.T) {
	// Both frames submitted at the same instant: even if the lower-priority
	// one is submitted first, the higher-priority one must win.
	k, b := rig(2, 1)
	var first ID
	b.Controller(1).OnReceive = func(f Frame, _ sim.Time) {
		if first == 0 {
			first = f.ID
		}
	}
	b.Controller(0).OnReceive = func(f Frame, _ sim.Time) {
		if first == 0 {
			first = f.ID
		}
	}
	k.At(0, func() {
		b.Controller(0).Submit(Frame{ID: MakeID(99, 0, 1)}, SubmitOpts{})
		b.Controller(1).Submit(Frame{ID: MakeID(1, 1, 1)}, SubmitOpts{})
	})
	k.RunUntilIdle()
	if first.Prio() != 1 {
		t.Fatalf("same-instant arbitration won by prio %d, want 1", first.Prio())
	}
}

func TestErrorRetransmission(t *testing.T) {
	k, b := rig(2, 1)
	b.Injector = AdversarialK{K: 2, Prio: -1} // first 2 attempts fail
	var got int
	var at sim.Time
	b.Controller(1).OnReceive = func(_ Frame, a sim.Time) { got++; at = a }
	f := Frame{ID: MakeID(5, 0, 1), Data: []byte{1, 2}}
	b.Controller(0).Submit(f, SubmitOpts{})
	k.RunUntilIdle()
	if got != 1 {
		t.Fatalf("deliveries = %d, want exactly 1 after retransmissions", got)
	}
	st := b.Stats()
	if st.FramesError != 2 || st.FramesOK != 1 {
		t.Fatalf("stats = %+v, want 2 errors and 1 ok", st)
	}
	// Timing: 3 frame transmissions + 2 error overheads.
	fd := BitTime(WireBits(f), DefaultBitRate)
	ed := BitTime(ErrorOverheadBits, DefaultBitRate)
	want := 3*fd + 2*ed
	if at != want {
		t.Fatalf("final delivery at %v, want %v", at, want)
	}
}

func TestSingleShotAbort(t *testing.T) {
	k, b := rig(2, 1)
	b.Injector = AdversarialK{K: 1, Prio: -1}
	delivered := false
	b.Controller(1).OnReceive = func(Frame, sim.Time) { delivered = true }
	var doneOK *bool
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{
		SingleShot: true,
		Done:       func(ok bool, _ sim.Time) { doneOK = &ok },
	})
	k.RunUntilIdle()
	if delivered {
		t.Fatal("single-shot frame delivered despite error")
	}
	if doneOK == nil || *doneOK {
		t.Fatal("Done callback should report failure")
	}
	if b.Stats().FramesAborted != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestInconsistentOmission(t *testing.T) {
	k, b := rig(3, 1)
	b.Injector = FuncInjector(func(f Frame, sender, attempt int, at sim.Time, rng *sim.RNG) Fault {
		return Fault{Kind: FaultOmission, Victims: map[int]bool{2: true}}
	})
	var rx1, rx2 int
	b.Controller(1).OnReceive = func(Frame, sim.Time) { rx1++ }
	b.Controller(2).OnReceive = func(Frame, sim.Time) { rx2++ }
	senderOK := false
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{
		Done: func(ok bool, _ sim.Time) { senderOK = ok },
	})
	k.RunUntilIdle()
	if rx1 != 1 || rx2 != 0 {
		t.Fatalf("rx1=%d rx2=%d, want 1/0", rx1, rx2)
	}
	if !senderOK {
		t.Fatal("sender must observe success on inconsistent omission")
	}
	if b.Stats().Omissions != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestAcceptanceFilter(t *testing.T) {
	k, b := rig(2, 1)
	var got []Etag
	b.Controller(1).AddFilter(7)
	b.Controller(1).OnReceive = func(f Frame, _ sim.Time) { got = append(got, f.ID.Etag()) }
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 7)}, SubmitOpts{})
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 8)}, SubmitOpts{})
	k.RunUntilIdle()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("filter passed %v, want [7]", got)
	}
	b.Controller(1).RemoveFilter(7)
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 7)}, SubmitOpts{})
	k.RunUntilIdle()
	if len(got) != 1 {
		t.Fatal("frame passed after filter removal")
	}
}

func TestUpdatePromotion(t *testing.T) {
	k, b := rig(2, 1)
	var order []Prio
	b.Controller(1).OnReceive = func(f Frame, _ sim.Time) { order = append(order, f.ID.Prio()) }
	// Occupy the bus with a long frame so the two test frames queue.
	blocker := Frame{ID: MakeID(3, 1, 9), Data: make([]byte, 8)}
	b.Controller(1).Submit(blocker, SubmitOpts{})
	k.Run(1 * sim.Microsecond) // blocker is now on the wire
	hA := b.Controller(0).Submit(Frame{ID: MakeID(100, 0, 1)}, SubmitOpts{})
	b.Controller(0).Submit(Frame{ID: MakeID(50, 0, 2)}, SubmitOpts{})
	// Promote frame A above B while both are queued.
	if !b.Controller(0).Update(hA, MakeID(10, 0, 1)) {
		t.Fatal("Update failed on queued frame")
	}
	k.RunUntilIdle()
	if len(order) != 2 || order[0] != 10 || order[1] != 50 {
		t.Fatalf("promotion not honoured: %v", order)
	}
	if b.Stats().IDRewrites != 1 {
		t.Fatalf("IDRewrites = %d, want 1", b.Stats().IDRewrites)
	}
}

func TestUpdateRejectedWhileInFlight(t *testing.T) {
	k, b := rig(2, 1)
	h := b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1), Data: make([]byte, 8)}, SubmitOpts{})
	k.Run(10 * sim.Microsecond) // mid-transmission
	if b.Controller(0).Update(h, MakeID(1, 0, 1)) {
		t.Fatal("Update succeeded on in-flight frame")
	}
	if b.Controller(0).Abort(h) {
		t.Fatal("Abort succeeded on in-flight frame")
	}
	k.RunUntilIdle()
	if b.Controller(0).Update(h, MakeID(1, 0, 1)) {
		t.Fatal("Update succeeded on completed frame")
	}
}

func TestAbortPending(t *testing.T) {
	k, b := rig(2, 1)
	var got int
	b.Controller(1).OnReceive = func(Frame, sim.Time) { got++ }
	blocker := Frame{ID: MakeID(3, 1, 9), Data: make([]byte, 8)}
	b.Controller(1).Submit(blocker, SubmitOpts{})
	k.Run(1 * sim.Microsecond)
	h := b.Controller(0).Submit(Frame{ID: MakeID(100, 0, 1)}, SubmitOpts{})
	if !b.Controller(0).Abort(h) {
		t.Fatal("Abort failed on queued frame")
	}
	k.RunUntilIdle()
	if got != 0 {
		t.Fatalf("aborted frame delivered %d times", got)
	}
}

func TestMutedNodeNeitherSendsNorReceives(t *testing.T) {
	k, b := rig(3, 1)
	var rx2 int
	b.Controller(2).OnReceive = func(Frame, sim.Time) { rx2++ }
	b.Controller(2).Mute(true)
	b.Controller(1).Submit(Frame{ID: MakeID(9, 1, 1)}, SubmitOpts{})
	b.Controller(2).Submit(Frame{ID: MakeID(1, 2, 1)}, SubmitOpts{})
	k.RunUntilIdle()
	if rx2 != 0 {
		t.Fatal("muted node received a frame")
	}
	if b.Stats().FramesOK != 1 {
		t.Fatalf("stats = %+v: muted node's frame should stay queued", b.Stats())
	}
	// Unmute: the queued frame goes out.
	b.Controller(2).Mute(false)
	k.RunUntilIdle()
	if b.Stats().FramesOK != 2 {
		t.Fatalf("unmuted node did not transmit: %+v", b.Stats())
	}
}

func TestDuplicateIDCollision(t *testing.T) {
	// Two nodes driving the same identifier both pass arbitration; the
	// first differing bit corrupts the frame for everyone (error frame).
	// Single-shot senders observe the failure — this is what the dynamic
	// configuration protocol keys on.
	k, b := rig(3, 1)
	var rx int
	b.Controller(2).OnReceive = func(Frame, sim.Time) { rx++ }
	fail0, fail1 := false, false
	c1 := b.Controller(1)
	c1.txnode = 0 // forge a TxNode collision
	k.At(0, func() {
		b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1), Data: []byte{1}}, SubmitOpts{
			SingleShot: true,
			Done:       func(ok bool, _ sim.Time) { fail0 = !ok },
		})
		c1.Submit(Frame{ID: MakeID(5, 0, 1), Data: []byte{2}}, SubmitOpts{
			SingleShot: true,
			Done:       func(ok bool, _ sim.Time) { fail1 = !ok },
		})
	})
	k.RunUntilIdle()
	if rx != 0 {
		t.Fatalf("collided frame delivered %d times", rx)
	}
	if !fail0 || !fail1 {
		t.Fatalf("collision not reported to both senders: %v %v", fail0, fail1)
	}
	st := b.Stats()
	if st.FramesError != 1 || st.FramesAborted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k, b := rig(2, 1)
	f := Frame{ID: MakeID(5, 0, 1), Data: []byte{1, 2, 3, 4}}
	b.Controller(0).Submit(f, SubmitOpts{})
	k.RunUntilIdle()
	want := BitTime(WireBits(f), DefaultBitRate)
	if b.Stats().BusyTime != want {
		t.Fatalf("BusyTime = %v, want %v", b.Stats().BusyTime, want)
	}
}

func TestTraceEvents(t *testing.T) {
	k, b := rig(2, 1)
	var kinds []TraceKind
	b.Trace = func(e TraceEvent) { kinds = append(kinds, e.Kind) }
	b.Injector = AdversarialK{K: 1, Prio: -1}
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.RunUntilIdle()
	want := []TraceKind{TraceTxStart, TraceTxError, TraceTxStart, TraceTxOK, TraceRx}
	if len(kinds) != len(want) {
		t.Fatalf("trace = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace = %v, want %v", kinds, want)
		}
	}
}

// arbTraceRun submits two competing frames and returns the trace kinds.
func arbTraceRun(t *testing.T, traceArb bool) []TraceKind {
	t.Helper()
	k, b := rig(2, 1)
	var kinds []TraceKind
	b.Trace = func(e TraceEvent) { kinds = append(kinds, e.Kind) }
	b.TraceArbitration = traceArb
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	b.Controller(1).Submit(Frame{ID: MakeID(9, 1, 2)}, SubmitOpts{})
	k.RunUntilIdle()
	return kinds
}

func TestTraceArbitration(t *testing.T) {
	// Off (the default): the competing frame loses silently, so the
	// stream is exactly two plain transmissions.
	plain := arbTraceRun(t, false)
	wantPlain := []TraceKind{TraceTxStart, TraceTxOK, TraceRx,
		TraceTxStart, TraceTxOK, TraceRx}
	if fmt.Sprint(plain) != fmt.Sprint(wantPlain) {
		t.Fatalf("trace = %v, want %v", plain, wantPlain)
	}

	// On: the same run additionally reports who won and who lost each
	// contested round, before the winner's TX-START.
	arb := arbTraceRun(t, true)
	wantArb := []TraceKind{TraceArbWin, TraceArbLoss, TraceTxStart, TraceTxOK, TraceRx,
		TraceArbWin, TraceTxStart, TraceTxOK, TraceRx}
	if fmt.Sprint(arb) != fmt.Sprint(wantArb) {
		t.Fatalf("arbitration trace = %v, want %v", arb, wantArb)
	}
}
