package can

import (
	"testing"

	"canec/internal/sim"
)

func TestErrorCountersTrackSpec(t *testing.T) {
	k, b := rig(2, 1)
	b.ConfineFaults = true
	b.Injector = AdversarialK{K: 3, Prio: -1}
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.RunUntilIdle()
	// 3 errors (+8 each) then 1 success (−1): TEC = 23.
	if got := b.Controller(0).TEC(); got != 23 {
		t.Fatalf("TEC = %d, want 23", got)
	}
	// The receiver saw 3 error frames (+1 each) and 1 good frame (−1).
	if got := b.Controller(1).REC(); got != 2 {
		t.Fatalf("REC = %d, want 2", got)
	}
	if b.Controller(0).State() != ErrorActive {
		t.Fatalf("state = %v", b.Controller(0).State())
	}
}

func TestErrorPassiveThreshold(t *testing.T) {
	k, b := rig(2, 1)
	b.ConfineFaults = true
	b.Injector = AdversarialK{K: 17, Prio: -1} // 17×8 = 136 ≥ 128
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.Run(50 * sim.Millisecond)
	if st := b.Controller(0).State(); st != ErrorPassive {
		t.Fatalf("state = %v (TEC %d), want error-passive", st, b.Controller(0).TEC())
	}
}

func TestBusOffAndRecovery(t *testing.T) {
	k, b := rig(2, 1)
	b.ConfineFaults = true
	// Fail everything: the sender must go bus-off after 32 errors.
	b.Injector = RandomErrors{Rate: 1}
	okCalls := 0
	failCalls := 0
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{
		Done: func(ok bool, _ sim.Time) {
			if ok {
				okCalls++
			} else {
				failCalls++
			}
		},
	})
	// 32 consecutive errors (TEC 32×8 = 256) take ≈3.4 ms; auto-recovery
	// (1408 bit times) completes before the horizon, so assert on the
	// recorded event and the abandoned request rather than the transient
	// state.
	k.Run(20 * sim.Millisecond)
	if b.Stats().BusOffEvents != 1 {
		t.Fatalf("BusOffEvents = %d, want 1", b.Stats().BusOffEvents)
	}
	if failCalls != 1 || okCalls != 0 {
		t.Fatalf("done calls ok=%d fail=%d, want exactly one failure", okCalls, failCalls)
	}
	if b.Controller(0).State() != ErrorActive {
		t.Fatalf("state after auto-recovery = %v", b.Controller(0).State())
	}
	// Bus heals; the recovered controller transmits again.
	b.Injector = NoFaults{}
	got := 0
	b.Controller(1).OnReceive = func(Frame, sim.Time) { got++ }
	k.At(k.Now()+5*sim.Millisecond, func() {
		b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 2)}, SubmitOpts{})
	})
	k.Run(k.Now() + 50*sim.Millisecond)
	if b.Controller(0).State() != ErrorActive {
		t.Fatalf("post-recovery state = %v", b.Controller(0).State())
	}
	if got != 1 {
		t.Fatalf("post-recovery deliveries = %d", got)
	}
}

func TestBusOffWithoutAutoRecover(t *testing.T) {
	k, b := rig(2, 1)
	b.ConfineFaults = true
	b.Controller(0).SetAutoRecover(false)
	b.Injector = RandomErrors{Rate: 1}
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.Run(100 * sim.Millisecond)
	if b.Controller(0).State() != BusOff {
		t.Fatal("controller not bus-off")
	}
	// Stays off until manual recovery.
	k.Run(k.Now() + 100*sim.Millisecond)
	if b.Controller(0).State() != BusOff {
		t.Fatal("controller recovered without permission")
	}
	b.Controller(0).Recover()
	if b.Controller(0).State() != ErrorActive || b.Controller(0).TEC() != 0 {
		t.Fatal("manual recovery failed")
	}
	// Recover on an active controller is a no-op.
	b.Controller(0).Recover()
}

func TestConfinementOffByDefault(t *testing.T) {
	k, b := rig(2, 1)
	b.Injector = RandomErrors{Rate: 1}
	b.Controller(0).Submit(Frame{ID: MakeID(5, 0, 1)}, SubmitOpts{})
	k.Run(20 * sim.Millisecond)
	if b.Controller(0).TEC() != 0 || b.Controller(0).State() != ErrorActive {
		t.Fatal("counters moved with confinement disabled")
	}
	// The frame keeps retransmitting forever — error-active assumption.
	if b.Stats().FramesError < 50 {
		t.Fatalf("expected continuous retransmission, errors = %d", b.Stats().FramesError)
	}
}

func TestErrorStateString(t *testing.T) {
	if ErrorActive.String() != "error-active" || ErrorPassive.String() != "error-passive" ||
		BusOff.String() != "bus-off" || ErrorState(99).String() != "?" {
		t.Fatal("state strings")
	}
}
