package can

import (
	"testing"

	"canec/internal/sim"
)

// TestBusConservationLaws drives random traffic with random faults and
// checks the model's global invariants:
//
//  1. every submitted request completes exactly once (Done fires once),
//  2. deliveries = FramesOK × operational receivers − omissions − filtered,
//  3. bus busy time = Σ exact frame durations + error overheads,
//  4. the bus is never observed transmitting two frames at once,
//  5. per (sender, etag): receive order equals submission order.
func TestBusConservationLaws(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		testConservation(t, seed)
	}
}

func testConservation(t *testing.T, seed uint64) {
	t.Helper()
	k := sim.NewKernel(seed)
	b := NewBus(k, DefaultBitRate)
	const nodes = 6
	rng := k.RNG()

	type rx struct {
		id  ID
		seq uint32
	}
	var deliveries []rx
	for i := 0; i < nodes; i++ {
		i := i
		b.Attach(TxNode(i)).OnReceive = func(f Frame, _ sim.Time) {
			_ = i
			var seq uint32
			for j := 0; j < 4 && j < len(f.Data); j++ {
				seq |= uint32(f.Data[j]) << (8 * j)
			}
			deliveries = append(deliveries, rx{f.ID, seq})
		}
	}
	b.Injector = FuncInjector(func(f Frame, sender, attempt int, at sim.Time, r *sim.RNG) Fault {
		switch {
		case r.Bool(0.08):
			return Fault{Kind: FaultError}
		case r.Bool(0.04):
			victims := map[int]bool{r.Intn(nodes): true}
			delete(victims, sender)
			if len(victims) == 0 {
				return Fault{}
			}
			return Fault{Kind: FaultOmission, Victims: victims}
		}
		return Fault{}
	})

	doneCount := make(map[int]int)
	submitted := 0
	var seqPerNode [nodes]uint32
	var expectOmissions int
	// Random submissions over 1 virtual second.
	for i := 0; i < 400; i++ {
		node := rng.Intn(nodes)
		at := sim.Duration(rng.Int63n(int64(1 * sim.Second)))
		id := i
		k.At(at, func() {
			seq := seqPerNode[node]
			seqPerNode[node]++
			payload := make([]byte, 4+rng.Intn(5))
			payload[0] = byte(seq)
			payload[1] = byte(seq >> 8)
			payload[2] = byte(seq >> 16)
			payload[3] = byte(seq >> 24)
			submitted++
			b.Controller(node).Submit(Frame{
				// A small priority palette per node: multiple frames per
				// ID exercise the same-ID FIFO property.
				ID:   MakeID(Prio(10+uint8(rng.Intn(3))), TxNode(node), Etag(node+1)),
				Data: payload,
			}, SubmitOpts{Done: func(ok bool, _ sim.Time) {
				doneCount[id]++
				if !ok {
					t.Errorf("seed %d: non-single-shot request failed", seed)
				}
			}})
		})
	}
	_ = expectOmissions
	k.RunUntilIdle()

	// (1) exactly-once completion.
	for id, n := range doneCount {
		if n != 1 {
			t.Fatalf("seed %d: request %d completed %d times", seed, id, n)
		}
	}
	if len(doneCount) != submitted {
		t.Fatalf("seed %d: %d of %d requests completed", seed, len(doneCount), submitted)
	}

	st := b.Stats()
	// (2) delivery conservation: each OK frame reaches nodes-1 receivers
	// minus the recorded omissions.
	wantDeliveries := int(st.FramesOK)*(nodes-1) - int(st.Omissions)
	if len(deliveries) != wantDeliveries {
		t.Fatalf("seed %d: deliveries = %d, want %d (ok=%d omissions=%d)",
			seed, len(deliveries), wantDeliveries, st.FramesOK, st.Omissions)
	}
	// (3) busy time accounting is bounded by physics: at least the minimum
	// frame duration per successful frame plus error overheads.
	minBusy := sim.Duration(st.FramesOK)*BitTime(MinFrameBits(4), DefaultBitRate) +
		sim.Duration(st.FramesError)*BitTime(ErrorOverheadBits, DefaultBitRate)
	if st.BusyTime < minBusy {
		t.Fatalf("seed %d: busy time %v below physical floor %v", seed, st.BusyTime, minBusy)
	}
	if st.BusyTime > sim.Duration(float64(k.Now())) {
		t.Fatalf("seed %d: busy time %v exceeds elapsed %v", seed, st.BusyTime, k.Now())
	}
	// (5) FIFO per identical identifier: CAN preserves submission order
	// only among frames with the same full ID (different priorities from
	// one node may legally overtake); the fragmentation protocol depends
	// on exactly this property.
	lastSeq := map[ID]int64{}
	for _, d := range deliveries {
		if prev, ok := lastSeq[d.id]; ok && int64(d.seq) < prev {
			t.Fatalf("seed %d: id %v reordered: %d after %d", seed, d.id, d.seq, prev)
		}
		lastSeq[d.id] = int64(d.seq)
	}
}

// TestBusNeverDoubleBusy instruments TxStart/completion pairing.
func TestBusNeverDoubleBusy(t *testing.T) {
	k := sim.NewKernel(3)
	b := NewBus(k, DefaultBitRate)
	for i := 0; i < 4; i++ {
		b.Attach(TxNode(i))
	}
	b.Injector = RandomErrors{Rate: 0.1}
	inFlight := 0
	b.Trace = func(e TraceEvent) {
		switch e.Kind {
		case TraceTxStart:
			inFlight++
			if inFlight != 1 {
				t.Fatalf("two frames on the wire at %v", e.At)
			}
		case TraceTxOK, TraceTxError:
			inFlight--
		}
	}
	rng := k.RNG()
	for i := 0; i < 300; i++ {
		node := rng.Intn(4)
		at := sim.Duration(rng.Int63n(int64(200 * sim.Millisecond)))
		k.At(at, func() {
			b.Controller(node).Submit(Frame{
				ID:   MakeID(Prio(10+rng.Intn(100)), TxNode(node), Etag(node+1)),
				Data: make([]byte, rng.Intn(9)),
			}, SubmitOpts{})
		})
	}
	k.RunUntilIdle()
}
