package can

import (
	"fmt"

	"canec/internal/sim"
)

// txReq is a pending transmission request inside a controller.
type txReq struct {
	frame      Frame
	attempt    int
	inFlight   bool
	singleShot bool
	done       func(ok bool, at sim.Time)
	removed    bool
}

// TxHandle identifies a pending transmission so the middleware can rewrite
// its identifier (soft real-time priority promotion) or abort it
// (validity expiration).
type TxHandle struct{ r *txReq }

// Controller models a full-CAN controller with message filtering and a
// transmit buffer that supports identifier rewrite. The abstraction
// corresponds to a controller with sufficiently many transmit mailboxes;
// the cost of each identifier rewrite — which on real hardware requires
// the host CPU to cancel and re-enqueue the mailbox — is counted in
// Bus.Stats().IDRewrites so the promotion overhead the paper discusses
// (§3.4, evaluated in [16]) stays observable.
type Controller struct {
	bus    *Bus
	index  int
	txnode TxNode
	muted  bool

	// Fault confinement (active when Bus.ConfineFaults is set).
	tec, rec    int
	busOff      bool
	autoRecover bool

	pending []*txReq

	// OnReceive is invoked for every frame that passes the acceptance
	// filter. The callback runs in kernel context; it must not block.
	OnReceive func(f Frame, at sim.Time)

	// filters is the acceptance filter set: if empty, all frames are
	// accepted; otherwise a frame is accepted when its etag is present.
	// This models the paper's "dynamic binding" optimisation: subject
	// filtering is done by the communication controller hardware, not the
	// node CPU (§2.1).
	filters map[Etag]bool
}

// Index returns the controller's position on the bus.
func (c *Controller) Index() int { return c.index }

// Node returns the controller's 7-bit transmit node number.
func (c *Controller) Node() TxNode { return c.txnode }

// SetNode reconfigures the controller's transmit node number. The dynamic
// configuration protocol uses this once a node's final TxNode has been
// assigned; it panics while transmissions are pending because their
// identifiers embed the old number.
func (c *Controller) SetNode(n TxNode) {
	if len(c.pending) > 0 {
		panic("can: SetNode with pending transmissions")
	}
	c.txnode = n
}

// Mute silences the controller (models a crashed or disconnected node).
// Pending transmissions are kept but do not participate in arbitration.
func (c *Controller) Mute(m bool) {
	c.muted = m
	if !m {
		c.bus.kick()
	}
}

// Muted reports whether the controller is muted.
func (c *Controller) Muted() bool { return c.muted }

// Detach models a whole-node crash: the controller is muted, every queued
// transmission is silently discarded (the host CPU that would observe the
// Done callbacks is gone), and a frame currently on the wire is truncated
// so receivers see an error frame instead of a valid transmission. Filters
// are reset to the power-up default so a later Reattach starts from a
// clean controller, exactly like a cold boot.
func (c *Controller) Detach() {
	c.muted = true
	if c.bus.cur != nil && c.bus.curSender == c.index {
		c.bus.curCrashed = true
	}
	for _, r := range c.pending {
		r.removed = true
	}
	c.pending = nil
	c.filters = nil
}

// Reattach reverses Detach (node restart): the controller re-joins the
// bus with empty buffers and open filters, and pending arbitration is
// kicked so waiting traffic proceeds. The middleware is expected to
// reconfigure filters and node number before submitting traffic.
func (c *Controller) Reattach() {
	c.muted = false
	c.bus.kick()
}

// OpenFilter accepts all frames (the power-up default of the model).
func (c *Controller) OpenFilter() { c.filters = nil }

// AddFilter admits frames carrying the given etag. The first call switches
// the controller from promiscuous to selective reception.
func (c *Controller) AddFilter(e Etag) {
	if c.filters == nil {
		c.filters = make(map[Etag]bool)
	}
	c.filters[e] = true
}

// RemoveFilter stops admitting the etag. Removing the last filter leaves
// the controller accepting nothing (use OpenFilter to reset).
func (c *Controller) RemoveFilter(e Etag) {
	delete(c.filters, e)
}

// accepts applies the acceptance filter.
func (c *Controller) accepts(id ID) bool {
	if c.filters == nil {
		return true
	}
	return c.filters[id.Etag()]
}

// SubmitOpts configures a transmission request.
type SubmitOpts struct {
	// SingleShot disables automatic retransmission after a detected error,
	// as TTCAN mandates for time-triggered windows.
	SingleShot bool
	// Done, if non-nil, is called once when the request leaves the
	// controller: ok=true after successful (sender-observed) transmission,
	// ok=false when aborted.
	Done func(ok bool, at sim.Time)
}

// Submit queues a frame for transmission and triggers arbitration if the
// bus is idle. It panics on invalid frames: the middleware owns frame
// construction, so an invalid frame is a programming error, not a runtime
// condition.
func (c *Controller) Submit(f Frame, opts SubmitOpts) TxHandle {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	if f.ID.TxNode() != c.txnode {
		panic(fmt.Sprintf("can: node %d submitting frame with TxNode %d", c.txnode, f.ID.TxNode()))
	}
	r := &txReq{frame: f.Clone(), singleShot: opts.SingleShot, done: opts.Done}
	c.pending = append(c.pending, r)
	c.bus.kick()
	return TxHandle{r: r}
}

// Update rewrites the identifier of a pending request (priority
// promotion). It fails while the frame is on the wire or after it left the
// controller. Each successful rewrite increments Bus.Stats().IDRewrites.
func (c *Controller) Update(h TxHandle, id ID) bool {
	r := h.r
	if r == nil || r.removed || r.inFlight {
		return false
	}
	if id == r.frame.ID {
		return true
	}
	if id.TxNode() != c.txnode {
		panic(fmt.Sprintf("can: rewrite changes TxNode %d -> %d", c.txnode, id.TxNode()))
	}
	r.frame.ID = id
	c.bus.stats.IDRewrites++
	return true
}

// Abort removes a pending request (e.g. validity expired). It fails while
// the frame is on the wire.
func (c *Controller) Abort(h TxHandle) bool {
	r := h.r
	if r == nil || r.removed || r.inFlight {
		return false
	}
	c.remove(r)
	return true
}

// Pending reports the number of queued (not yet completed) requests.
func (c *Controller) Pending() int { return len(c.pending) }

// best returns the pending request with the numerically smallest ID — the
// frame this controller would drive into arbitration.
func (c *Controller) best() *txReq {
	var best *txReq
	for _, r := range c.pending {
		if best == nil || r.frame.ID < best.frame.ID {
			best = r
		}
	}
	return best
}

// remove deletes a request from the pending set.
func (c *Controller) remove(r *txReq) {
	for i, p := range c.pending {
		if p == r {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			r.removed = true
			return
		}
	}
}
