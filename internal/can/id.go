// Package can models a CAN 2.0B bus at frame granularity with exact
// bit-level timing. It provides the identifier layout used by the event
// channel middleware (priority | TxNode | etag), exact wire lengths
// including CRC-15 and bit stuffing, the priority-based non-preemptive
// arbitration of CAN, its acknowledgement and error-frame semantics with
// automatic retransmission, and pluggable fault injection.
//
// The model resolves arbitration at bus-idle instants by choosing the
// pending frame with the numerically smallest 29-bit identifier — which is
// exactly the outcome of CAN's dominant/recessive bitwise arbitration —
// while occupying the bus for the frame's exact stuffed bit count. This
// "frame-granular arbitration, bit-accurate timing" compromise keeps the
// simulation fast without changing any temporal property the paper's
// protocol depends on.
package can

import "fmt"

// Identifier field widths for the event-channel ID layout of the paper
// (§3.5): an 8-bit explicit priority, a 7-bit transmitting-node field that
// makes identifiers system-wide unique (a CAN requirement), and a 14-bit
// etag naming the event channel.
const (
	PrioBits   = 8
	TxNodeBits = 7
	EtagBits   = 14
	IDBits     = PrioBits + TxNodeBits + EtagBits // 29, CAN 2.0B extended

	MaxPrio   = 1<<PrioBits - 1   // 255; numerically higher = lower priority
	MaxTxNode = 1<<TxNodeBits - 1 // 127
	MaxEtag   = 1<<EtagBits - 1   // 16383
)

// ID is a 29-bit CAN 2.0B extended identifier. Lower numeric value wins
// arbitration (higher priority).
type ID uint32

// Prio is the 8-bit explicit priority field (0 = highest).
type Prio uint8

// TxNode is the 7-bit transmitting node number assigned by the
// configuration protocol.
type TxNode uint8

// Etag is the 14-bit event tag bound to a subject by the binding protocol.
type Etag uint16

// MakeID packs the three fields into an identifier. The priority occupies
// the most significant bits so that it dominates arbitration; TxNode comes
// next so that ties between equal priorities resolve deterministically by
// node; the etag occupies the low bits.
func MakeID(p Prio, n TxNode, e Etag) ID {
	return ID(uint32(p)<<(TxNodeBits+EtagBits) |
		uint32(n&MaxTxNode)<<EtagBits |
		uint32(e&MaxEtag))
}

// Prio extracts the priority field.
func (id ID) Prio() Prio { return Prio(id >> (TxNodeBits + EtagBits)) }

// TxNode extracts the transmitting node field.
func (id ID) TxNode() TxNode { return TxNode((id >> EtagBits) & MaxTxNode) }

// Etag extracts the event tag field.
func (id ID) Etag() Etag { return Etag(id & MaxEtag) }

// WithPrio returns a copy of id with the priority field replaced. This is
// the operation the middleware performs when promoting a queued soft
// real-time message toward its deadline.
func (id ID) WithPrio(p Prio) ID {
	return MakeID(p, id.TxNode(), id.Etag())
}

// Valid reports whether id fits in 29 bits.
func (id ID) Valid() bool { return id < 1<<IDBits }

// String renders the identifier as its three fields.
func (id ID) String() string {
	return fmt.Sprintf("id{p=%d n=%d e=%d}", id.Prio(), id.TxNode(), id.Etag())
}
