package can

import (
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

func TestIDPackUnpack(t *testing.T) {
	id := MakeID(5, 33, 1234)
	if id.Prio() != 5 || id.TxNode() != 33 || id.Etag() != 1234 {
		t.Fatalf("roundtrip failed: %v", id)
	}
	if !id.Valid() {
		t.Fatal("packed ID invalid")
	}
}

func TestIDPackUnpackProperty(t *testing.T) {
	f := func(p uint8, n uint8, e uint16) bool {
		id := MakeID(Prio(p), TxNode(n&MaxTxNode), Etag(e&MaxEtag))
		return id.Valid() &&
			id.Prio() == Prio(p) &&
			id.TxNode() == TxNode(n&MaxTxNode) &&
			id.Etag() == Etag(e&MaxEtag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIDPriorityDominatesArbitration(t *testing.T) {
	// Any frame with a numerically lower priority field must have a lower
	// (i.e. winning) 29-bit identifier regardless of the other fields.
	f := func(pa, pb uint8, na, nb uint8, ea, eb uint16) bool {
		a := MakeID(Prio(pa), TxNode(na&MaxTxNode), Etag(ea&MaxEtag))
		b := MakeID(Prio(pb), TxNode(nb&MaxTxNode), Etag(eb&MaxEtag))
		if pa < pb {
			return a < b
		}
		if pa > pb {
			return a > b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIDWithPrio(t *testing.T) {
	id := MakeID(200, 12, 7777)
	p := id.WithPrio(3)
	if p.Prio() != 3 || p.TxNode() != 12 || p.Etag() != 7777 {
		t.Fatalf("WithPrio corrupted fields: %v", p)
	}
}

func TestCRC15KnownVector(t *testing.T) {
	// CRC of the empty sequence is 0; a single dominant bit yields the
	// polynomial's low bits shifted through once.
	if got := crc15(nil); got != 0 {
		t.Fatalf("crc15(nil) = %#x", got)
	}
	// CRC must differ when any bit differs (weak but real sanity check).
	a := crc15([]byte{0, 1, 0, 1, 1, 0, 0, 1})
	b := crc15([]byte{0, 1, 0, 1, 1, 0, 0, 0})
	if a == b {
		t.Fatal("crc15 collision on 1-bit difference")
	}
}

func TestWireBitsWithinBounds(t *testing.T) {
	f := func(idRaw uint32, data []byte) bool {
		id := ID(idRaw % (1 << IDBits))
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		fr := Frame{ID: id, Data: data}
		w := WireBits(fr)
		return w >= MinFrameBits(len(data)) && w <= WorstCaseBits(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseBitsValues(t *testing.T) {
	// Tindell's bound for extended frames: g=54, 13 tail bits.
	cases := map[int]int{
		0: 54 + 0 + 13 + 53/4,   // 80
		8: 54 + 64 + 13 + 117/4, // 160
	}
	for s, want := range cases {
		if got := WorstCaseBits(s); got != want {
			t.Errorf("WorstCaseBits(%d) = %d, want %d", s, got, want)
		}
	}
	// The paper quotes 154 µs for the longest message at 1 Mbit/s; our safe
	// bound is 160. Assert the relationship stays documented-true.
	if WorstCaseBits(8) < 154 {
		t.Fatal("worst case bound fell below the paper's 154-bit figure")
	}
}

func TestStuffBitsExtremes(t *testing.T) {
	// All-zero payload and a zero ID maximises runs of identical bits, so
	// stuffing must be substantial; alternating payload bits minimise it.
	heavy := Frame{ID: 0, Data: []byte{0, 0, 0, 0, 0, 0, 0, 0}}
	light := Frame{ID: MakeID(0xAA>>0, 0x2A, 0x1555), Data: []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA}}
	if StuffBits(heavy) <= StuffBits(light) {
		t.Fatalf("stuffing not monotone with run content: heavy=%d light=%d",
			StuffBits(heavy), StuffBits(light))
	}
	if StuffBits(heavy) > WorstCaseBits(8)-MinFrameBits(8) {
		t.Fatalf("stuff bits %d exceed worst-case budget %d",
			StuffBits(heavy), WorstCaseBits(8)-MinFrameBits(8))
	}
}

func TestStuffedStreamHasNoLongRuns(t *testing.T) {
	// Property: applying the stuffing rule to the unstuffed bit stream
	// never leaves six identical bits in a row.
	f := func(idRaw uint32, data []byte) bool {
		id := ID(idRaw % (1 << IDBits))
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		bits := unstuffedBits(Frame{ID: id, Data: data})
		// Re-apply stuffing, building the stuffed stream.
		var out []byte
		run := 0
		var prev byte = 2
		for _, b := range bits {
			if b == prev {
				run++
			} else {
				prev, run = b, 1
			}
			out = append(out, b)
			if run == 5 {
				out = append(out, 1-b)
				prev, run = 1-b, 1
			}
		}
		// Verify no run of 6 in the stuffed stream.
		run = 0
		prev = 2
		for _, b := range out {
			if b == prev {
				run++
				if run >= 6 {
					return false
				}
			} else {
				prev, run = b, 1
			}
		}
		// And that the count matches StuffBits.
		return len(out)-len(bits) == StuffBits(Frame{ID: id, Data: data})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBitTime(t *testing.T) {
	if got := BitTime(160, DefaultBitRate); got != 160*sim.Microsecond {
		t.Fatalf("BitTime(160, 1M) = %v", got)
	}
	if got := BitTime(100, 500_000); got != 200*sim.Microsecond {
		t.Fatalf("BitTime(100, 500k) = %v", got)
	}
}

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 1 << IDBits}).Validate(); err == nil {
		t.Fatal("oversized ID accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 8)}).Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
}

func TestFrameClone(t *testing.T) {
	f := Frame{ID: 7, Data: []byte{1, 2, 3}}
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] != 1 {
		t.Fatal("Clone shares payload storage")
	}
}
