package can

import (
	"testing"

	"canec/internal/sim"
)

// TestRandomOmissionsZeroValuePanics pins the fix for the zero-value
// footgun: a RandomOmissions with Receivers unset used to silently inject
// nothing; it must now panic loudly instead.
func TestRandomOmissionsZeroValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-value RandomOmissions.Judge did not panic")
		}
	}()
	rng := sim.NewRNG(1)
	RandomOmissions{Rate: 1, VictimProb: 1}.Judge(Frame{}, 0, 1, 0, rng)
}

// TestNewRandomOmissionsValidates covers the constructor's argument checks
// and that a valid injector actually produces omissions.
func TestNewRandomOmissionsValidates(t *testing.T) {
	for _, tc := range []struct {
		name             string
		rate, victimProb float64
		receivers        int
	}{
		{"zero receivers", 0.5, 0.5, 0},
		{"negative receivers", 0.5, 0.5, -3},
		{"rate > 1", 1.5, 0.5, 4},
		{"negative victimProb", 0.5, -0.1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("NewRandomOmissions did not panic")
				}
			}()
			NewRandomOmissions(tc.rate, tc.victimProb, tc.receivers)
		})
	}

	inj := NewRandomOmissions(1, 1, 4)
	rng := sim.NewRNG(1)
	v := inj.Judge(Frame{}, 2, 1, 0, rng)
	if v.Kind != FaultOmission {
		t.Fatalf("verdict = %v, want FaultOmission", v.Kind)
	}
	if len(v.Victims) != 3 || v.Victims[2] {
		t.Fatalf("victims = %v, want all receivers except sender 2", v.Victims)
	}
}

// TestAdversarialKAttemptNumbering pins the attempt-numbering convention
// the calendar's WCTT dimensioning relies on: the first attempt is 1, so an
// AdversarialK{K} injector corrupts attempts 1..K and the frame succeeds on
// attempt K+1 after exactly K error frames.
func TestAdversarialKAttemptNumbering(t *testing.T) {
	const kFaults = 2
	k, b := rig(2, 1)
	b.Injector = AdversarialK{K: kFaults, Prio: -1}

	var errAttempts []int
	okAttempt := -1
	b.Trace = func(e TraceEvent) {
		switch e.Kind {
		case TraceTxError:
			errAttempts = append(errAttempts, e.Attempt)
		case TraceTxOK:
			okAttempt = e.Attempt
		}
	}
	delivered := 0
	b.Controller(1).OnReceive = func(Frame, sim.Time) { delivered++ }

	b.Controller(0).Submit(Frame{ID: MakeID(10, 0, 1), Data: []byte{1}}, SubmitOpts{})
	k.RunUntilIdle()

	if len(errAttempts) != kFaults || errAttempts[0] != 1 || errAttempts[1] != 2 {
		t.Fatalf("error attempts = %v, want [1 2]", errAttempts)
	}
	if okAttempt != kFaults+1 {
		t.Fatalf("success on attempt %d, want %d", okAttempt, kFaults+1)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if st := b.Stats(); st.FramesError != kFaults || st.FramesOK != 1 {
		t.Fatalf("stats = %+v, want %d errors and 1 ok", st, kFaults)
	}
}
