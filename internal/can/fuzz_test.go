package can

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip asserts the codec's two safety properties on
// arbitrary inputs: (1) every valid frame survives EncodeBits→DecodeBits
// bit-exactly (and the buffer-reusing Codec forms agree with the
// allocating ones), and (2) decoding an arbitrary bit stream never
// panics — it either returns a frame that re-encodes to the same stuffed
// stream or a wrapped ErrWire.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte{}, []byte{})
	f.Add(uint32(0x1FFFFFFF), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 1, 0, 1})
	f.Add(uint32(0x0AAAAAAA), []byte{0xFF, 0x00, 0xFF}, bytes.Repeat([]byte{1}, 64))
	f.Add(uint32(12345), []byte{0xDE, 0xAD}, bytes.Repeat([]byte{0}, 200))
	f.Fuzz(func(t *testing.T, id uint32, payload []byte, stream []byte) {
		// Property 1: encode→decode round-trips bit-exactly for any
		// valid frame.
		fr := Frame{ID: ID(id & (1<<IDBits - 1)), Data: payload}
		if len(fr.Data) > MaxPayload {
			fr.Data = fr.Data[:MaxPayload]
		}
		bits := EncodeBits(fr)
		var c Codec
		appended := c.Encode(nil, fr)
		if !bytes.Equal(bits, appended) {
			t.Fatalf("AppendEncodeBits disagrees with EncodeBits for %v", fr)
		}
		got, err := DecodeBits(bits)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.ID != fr.ID || !bytes.Equal(got.Data, fr.Data) {
			t.Fatalf("round trip %v -> %v", fr, got)
		}
		cg, err := c.Decode(bits)
		if err != nil {
			t.Fatalf("Codec.Decode of own encoding failed: %v", err)
		}
		if cg.ID != fr.ID || !bytes.Equal(cg.Data, fr.Data) {
			t.Fatalf("Codec round trip %v -> %v", fr, cg)
		}
		// The packed transport form must round-trip too.
		packed := PackBits(nil, bits)
		unpacked, err := UnpackBits(nil, packed, len(bits))
		if err != nil || !bytes.Equal(unpacked, bits) {
			t.Fatalf("pack/unpack round trip failed: %v", err)
		}

		// Property 2: arbitrary streams never panic, and an accepted
		// stream must be exactly the encoding of the decoded frame
		// (otherwise the codec admits a second wire form for a frame).
		norm := make([]byte, len(stream))
		for i, b := range stream {
			norm[i] = b & 1
		}
		dec, err := DecodeBits(norm)
		if err == nil {
			if !bytes.Equal(EncodeBits(dec), norm) {
				t.Fatalf("accepted stream is not the canonical encoding of %v", dec)
			}
		}
		// The raw (unmasked) stream exercises the non-binary-symbol path.
		if _, err := DecodeBits(stream); err == nil && len(stream) > 0 {
			for _, b := range stream {
				if b > 1 {
					t.Fatalf("decoder accepted non-binary symbols")
				}
			}
		}
		// Unpacking with an arbitrary count must fail cleanly, not panic.
		if _, err := UnpackBits(nil, stream, len(stream)*8+1); err == nil {
			t.Fatalf("UnpackBits accepted an overlong bit count")
		}
	})
}
