package can

import (
	"testing"
	"testing/quick"
)

func TestStdWorstCaseBits(t *testing.T) {
	// g=34: worst case for 8 bytes = 34+64+13+floor(97/4) = 135 bits —
	// the classical figure for standard frames at 1 Mbit/s.
	if got := StdWorstCaseBits(8); got != 135 {
		t.Fatalf("StdWorstCaseBits(8) = %d, want 135", got)
	}
	if got := StdMinFrameBits(0); got != 47 {
		t.Fatalf("StdMinFrameBits(0) = %d, want 47", got)
	}
}

func TestStdWireBitsWithinBounds(t *testing.T) {
	f := func(idRaw uint16, data []byte) bool {
		id := idRaw & MaxStdID
		if len(data) > MaxPayload {
			data = data[:MaxPayload]
		}
		w := StdWireBits(id, data)
		return w >= StdMinFrameBits(len(data)) && w <= StdWorstCaseBits(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStdShorterThanExtended(t *testing.T) {
	// A standard frame always costs less wire time than an extended frame
	// with the same payload — the bandwidth argument §3.5 addresses ("a
	// long CAN-ID is a waste of bandwidth") quantified.
	for s := 0; s <= 8; s++ {
		if StdWorstCaseBits(s) >= WorstCaseBits(s) {
			t.Fatalf("payload %d: std %d ≥ ext %d", s, StdWorstCaseBits(s), WorstCaseBits(s))
		}
	}
	// The overhead delta is 25 bits of wire time: the price of carrying
	// priority+node+etag in the identifier instead of the payload.
	if d := WorstCaseBits(8) - StdWorstCaseBits(8); d != 25 {
		t.Fatalf("ext-std delta = %d bits, want 25", d)
	}
}
