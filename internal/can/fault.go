package can

import (
	"fmt"

	"canec/internal/sim"
)

// FaultKind classifies what happens to one transmission attempt.
type FaultKind int

const (
	// FaultNone: the frame is received by every operational node and the
	// sender observes a successful, globally consistent transmission.
	FaultNone FaultKind = iota

	// FaultError: the frame is corrupted in a way some node detects; an
	// error frame is signalled, every node discards the frame, the bus is
	// occupied for ErrorOverheadBits extra bit times and the controller
	// automatically retransmits (unless in single-shot mode). This models
	// CAN's consistent omission handling: the sender *knows* the attempt
	// failed.
	FaultError

	// FaultOmission: an inconsistent omission — a subset of receivers miss
	// the frame (e.g. corruption in the last-but-one bit of EOF) while the
	// rest, including the sender, observe success. No error frame is
	// raised, so the sender cannot detect the loss. This is the failure
	// mode that motivates proactive time redundancy in the paper's HRT
	// scheme: "determine whether all operational nodes received the
	// message" only covers consistently-signalled faults.
	FaultOmission
)

// Fault describes the injected outcome of one transmission attempt.
type Fault struct {
	Kind FaultKind
	// Victims lists the receiving controller indices that silently miss
	// the frame when Kind == FaultOmission. Ignored otherwise.
	Victims map[int]bool
}

// Injector decides the fate of each transmission attempt. Implementations
// must draw all randomness from the supplied RNG so simulations stay
// deterministic per seed.
type Injector interface {
	Judge(f Frame, sender int, attempt int, at sim.Time, rng *sim.RNG) Fault
}

// NoFaults is an Injector that never injects anything.
type NoFaults struct{}

// Judge implements Injector.
func (NoFaults) Judge(Frame, int, int, sim.Time, *sim.RNG) Fault { return Fault{} }

// RandomErrors corrupts each attempt independently with probability Rate,
// producing consistent, detected errors (CAN error frames).
type RandomErrors struct {
	Rate float64
}

// Judge implements Injector.
func (r RandomErrors) Judge(_ Frame, _ int, _ int, _ sim.Time, rng *sim.RNG) Fault {
	if rng.Bool(r.Rate) {
		return Fault{Kind: FaultError}
	}
	return Fault{}
}

// RandomOmissions injects inconsistent omissions: with probability Rate a
// transmission is silently missed by each potential receiver independently
// with probability VictimProb.
//
// Receivers MUST be set to the total number of controllers on the bus:
// victims are drawn from controller indices [0, Receivers). The zero value
// would silently inject nothing (no indices to victimise), so Judge treats
// an unset Receivers as a configuration error and panics; construct the
// injector with NewRandomOmissions, which validates all three fields.
type RandomOmissions struct {
	Rate       float64
	VictimProb float64
	Receivers  int // total number of controllers on the bus (required, > 0)
}

// NewRandomOmissions returns a validated omission injector for a bus with
// the given number of controllers (e.g. bus.Controllers()).
func NewRandomOmissions(rate, victimProb float64, receivers int) RandomOmissions {
	if receivers <= 0 {
		panic(fmt.Sprintf("can: RandomOmissions needs a positive receiver count, got %d", receivers))
	}
	if rate < 0 || rate > 1 || victimProb < 0 || victimProb > 1 {
		panic(fmt.Sprintf("can: RandomOmissions probabilities out of [0,1]: rate=%v victimProb=%v", rate, victimProb))
	}
	return RandomOmissions{Rate: rate, VictimProb: victimProb, Receivers: receivers}
}

// Judge implements Injector.
func (r RandomOmissions) Judge(_ Frame, sender int, _ int, _ sim.Time, rng *sim.RNG) Fault {
	if r.Receivers <= 0 {
		panic("can: RandomOmissions.Receivers unset (would silently inject nothing); use NewRandomOmissions")
	}
	if !rng.Bool(r.Rate) {
		return Fault{}
	}
	victims := make(map[int]bool)
	for i := 0; i < r.Receivers; i++ {
		if i == sender {
			continue
		}
		if rng.Bool(r.VictimProb) {
			victims[i] = true
		}
	}
	if len(victims) == 0 {
		return Fault{}
	}
	return Fault{Kind: FaultOmission, Victims: victims}
}

// BurstErrors corrupts every attempt inside [Start, End): an EMI burst.
type BurstErrors struct {
	Start, End sim.Time
}

// Judge implements Injector.
func (b BurstErrors) Judge(_ Frame, _ int, _ int, at sim.Time, _ *sim.RNG) Fault {
	if at >= b.Start && at < b.End {
		return Fault{Kind: FaultError}
	}
	return Fault{}
}

// AdversarialK corrupts the first K attempts of every frame whose priority
// matches Prio (use -1 to match all). It produces the exact worst case the
// HRT slot dimensioning of the calendar must absorb: a message that fails
// K times and succeeds on attempt K+1.
type AdversarialK struct {
	K    int
	Prio int // -1 matches any priority
}

// Judge implements Injector.
func (a AdversarialK) Judge(f Frame, _ int, attempt int, _ sim.Time, _ *sim.RNG) Fault {
	if a.Prio >= 0 && int(f.ID.Prio()) != a.Prio {
		return Fault{}
	}
	if attempt <= a.K {
		return Fault{Kind: FaultError}
	}
	return Fault{}
}

// TargetedBitErrors models the adversary ECU of a bus-off attack: a
// station that monitors the bus for the victim's transmissions and drives
// dominant bits into them, so the victim observes a bit error on every
// corrupted attempt. Under fault confinement each such error adds 8 to the
// victim's TEC while the attacker's own counters stay clean — 32
// consecutive hits walk the victim ErrorActive → ErrorPassive → BusOff,
// exactly the progression the published bus-off attacks exploit. Rate is
// the per-attempt corruption probability (1.0 corrupts every attempt, the
// deterministic worst case).
type TargetedBitErrors struct {
	Victim int     // controller index whose transmissions are corrupted
	Rate   float64 // per-attempt corruption probability
	Prio   int     // -1 matches any priority
	// Active, if non-nil, gates the corruption: the chaos harness uses it
	// to stop the attack once the guardian isolates the attacking station
	// (an isolated attacker can no longer drive bits onto the wire).
	Active func() bool
}

// Judge implements Injector.
func (t TargetedBitErrors) Judge(f Frame, sender int, _ int, _ sim.Time, rng *sim.RNG) Fault {
	if sender != t.Victim {
		return Fault{}
	}
	if t.Prio >= 0 && int(f.ID.Prio()) != t.Prio {
		return Fault{}
	}
	if t.Active != nil && !t.Active() {
		return Fault{}
	}
	if rng.Bool(t.Rate) {
		return Fault{Kind: FaultError}
	}
	return Fault{}
}

// Chain applies multiple injectors and returns the first non-none verdict.
type Chain []Injector

// Judge implements Injector.
func (c Chain) Judge(f Frame, sender int, attempt int, at sim.Time, rng *sim.RNG) Fault {
	for _, in := range c {
		if v := in.Judge(f, sender, attempt, at, rng); v.Kind != FaultNone {
			return v
		}
	}
	return Fault{}
}

// FuncInjector adapts a plain function to the Injector interface.
type FuncInjector func(f Frame, sender int, attempt int, at sim.Time, rng *sim.RNG) Fault

// Judge implements Injector.
func (fn FuncInjector) Judge(f Frame, sender int, attempt int, at sim.Time, rng *sim.RNG) Fault {
	return fn(f, sender, attempt, at, rng)
}
