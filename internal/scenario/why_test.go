package scenario

import (
	"reflect"
	"strings"
	"testing"

	"canec/internal/obs/causal"
)

// whySampleJSON drives SRT traffic through a lossy bus with the why-late
// engine and the SLO plane both declared in the scenario file.
const whySampleJSON = `{
  "name": "why-sample",
  "nodes": 4,
  "seed": 11,
  "durationMs": 400,
  "faultRate": 0.05,
  "srt": [
    {"subject": 512, "publisher": 0, "subscriber": 1, "meanPeriodUs": 2000,
     "deadlineUs": 8000, "expirationUs": 30000, "payload": 8, "sporadic": true},
    {"subject": 513, "publisher": 2, "subscriber": 3, "meanPeriodUs": 3000,
     "deadlineUs": 8000, "expirationUs": 30000, "payload": 8}
  ],
  "hrt": [],
  "nrt": [],
  "slo": {"srtMissBudget": 0.5, "intervalMs": 20},
  "why": {"lateOverUs": {"srt": 900}, "keepRecent": 4}
}`

// TestLoadWhySection checks the slo/why scenario sections decode under
// DisallowUnknownFields and lower to the right engine configs.
func TestLoadWhySection(t *testing.T) {
	s, err := Load(strings.NewReader(whySampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.SLO == nil || s.Why == nil {
		t.Fatalf("sections missing: slo=%v why=%v", s.SLO, s.Why)
	}
	sloCfg := s.SLO.sloConfig()
	if sloCfg.SRTMissBudget != 0.5 || sloCfg.Interval != 20_000_000 {
		t.Fatalf("slo config: %+v", sloCfg)
	}
	cc := s.Why.causalConfig(nil)
	if cc.LateOver["SRT"] != 900_000 {
		t.Fatalf("lateOver not normalised: %v", cc.LateOver)
	}
	if cc.KeepRecent != 4 {
		t.Fatalf("keepRecent: %d", cc.KeepRecent)
	}
	// An unknown key inside the why section must be rejected.
	bad := strings.Replace(whySampleJSON, `"keepRecent": 4`, `"keepRecnt": 4`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown why field accepted")
	}
}

// TestRunWithWhySection runs the scenario end to end: the report must
// carry an attributed snapshot whose chains are exact (the run had real
// bit errors, so error_retransmit debit must be visible), and the whole
// thing must replay deterministically.
func TestRunWithWhySection(t *testing.T) {
	run := func() *Report {
		s, err := Load(strings.NewReader(whySampleJSON))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Why == nil {
		t.Fatal("report missing why snapshot")
	}
	if rep.Why.Chains == 0 {
		t.Fatal("no chains attributed")
	}
	var srt causal.ClassProfile
	for _, cp := range rep.Why.Classes {
		if cp.Class == "SRT" {
			srt = cp
		}
	}
	if srt.Chains == 0 {
		t.Fatalf("no SRT profile: %+v", rep.Why.Classes)
	}
	// 5% bit errors over ~300 SRT frames: retransmit debit must show up.
	var retrans bool
	for _, cs := range srt.Causes {
		if cs.Cause == causal.CauseErrorRetransmit && cs.DebitNS > 0 {
			retrans = true
		}
	}
	if !retrans {
		t.Fatalf("error_retransmit not attributed: %+v", srt.Causes)
	}
	out := rep.String()
	if !strings.Contains(out, "why: ") {
		t.Fatalf("report text missing why lines:\n%s", out)
	}

	rep2 := run()
	if !reflect.DeepEqual(rep.Why, rep2.Why) {
		t.Fatalf("why snapshot diverged:\n%+v\nvs\n%+v", rep.Why, rep2.Why)
	}
	if rep.String() != rep2.String() {
		t.Fatalf("report diverged:\n%s\nvs\n%s", rep.String(), rep2.String())
	}
}
