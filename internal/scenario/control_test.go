package scenario

import (
	"errors"
	"strings"
	"testing"

	"canec/internal/chaos"
)

func controlScenario() *Scenario {
	return &Scenario{
		Name:       "control-test",
		Nodes:      6,
		Seed:       21,
		DurationMs: 1200,
		Control: []ControlLoop{{
			Name: "cart", Plant: "double_integrator", Controller: "pid",
			Class: "srt", Sensor: 2, ControllerNode: 3, Actuator: 2,
			SensorSubject: 0x341, CommandSubject: 0x342,
			PeriodUs: 5000, Setpoint: 0, Initial: 1,
		}},
	}
}

func TestControlLoopScenarioSettles(t *testing.T) {
	rep, err := controlScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Control) != 1 {
		t.Fatalf("control reports = %d, want 1", len(rep.Control))
	}
	q := rep.Control[0]
	if !q.Settled {
		t.Fatalf("loop did not settle on a clean bus: %s", q.String())
	}
	if q.Applied == 0 || q.Samples == 0 || q.Commands == 0 {
		t.Fatalf("leg counters empty: %s", q.String())
	}
	if !strings.Contains(rep.String(), "control cart[SRT]: cost ") {
		t.Fatalf("report misses the control line:\n%s", rep.String())
	}
}

func TestControlLoopMPCAndAckLeg(t *testing.T) {
	s := controlScenario()
	s.Control[0].Controller = "mpc"
	s.Control[0].AckSubject = 0x343
	s.Control[0].AckClass = "nrt"
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	q := rep.Control[0]
	if !q.Settled {
		t.Fatalf("mpc loop did not settle: %s", q.String())
	}
	if q.Acks == 0 {
		t.Fatalf("ack leg enabled but no acks delivered: %s", q.String())
	}
}

func TestControlLoopHRTClass(t *testing.T) {
	s := controlScenario()
	s.Control[0].Class = "hrt"
	s.Control[0].PeriodUs = 10000
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	q := rep.Control[0]
	if !q.Settled {
		t.Fatalf("hrt loop did not settle: %s", q.String())
	}
	if q.Latency.N() == 0 {
		t.Fatalf("no latency measured on the hrt loop: %s", q.String())
	}
}

// TestControlLoopDeterministicUnderChaos pins the satellite contract:
// same seed + same chaos shard → byte-identical QoC report (run under
// -race by make race / make chaos-smoke discipline).
func TestControlLoopDeterministicUnderChaos(t *testing.T) {
	build := func() *Scenario {
		s := controlScenario()
		s.Chaos = &chaos.Script{Events: []chaos.Event{
			{Kind: "crash", AtMS: 300, Node: 3},
			{Kind: "restart", AtMS: 500, Node: 3},
			{Kind: "burst", AtMS: 700, UntilMS: 800},
		}}
		return s
	}
	rep1, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.String() != rep2.String() {
		t.Fatalf("chaos run not deterministic:\n--- first\n%s\n--- second\n%s",
			rep1.String(), rep2.String())
	}
	q := rep1.Control[0]
	if q.Applied == 0 {
		t.Fatalf("no commands applied under chaos: %s", q.String())
	}
}

// TestNodeRefErrorTyped pins the typed malformed-spec error: a spec
// referencing an undefined node index must surface a *NodeRefError, not
// a silent skip or an anonymous string.
func TestNodeRefErrorTyped(t *testing.T) {
	s := controlScenario()
	s.Control[0].ControllerNode = 17
	err := s.Validate()
	var nre *NodeRefError
	if !errors.As(err, &nre) {
		t.Fatalf("Validate() = %v, want *NodeRefError", err)
	}
	if nre.Field != "controlLoops.controllerNode" || nre.Node != 17 || nre.Nodes != 6 || nre.Index != 0 {
		t.Fatalf("NodeRefError fields = %+v", nre)
	}
	if !strings.Contains(err.Error(), "references node 17 of 6") {
		t.Fatalf("error text changed: %v", err)
	}

	// The legacy stream specs surface the same typed error.
	s = controlScenario()
	s.HRT = []HRTStream{{Subject: 0x101, Publisher: 9, Subscriber: 0, PeriodUs: 10000, Payload: 7}}
	if err := s.Validate(); !errors.As(err, &nre) {
		t.Fatalf("hrt Validate() = %v, want *NodeRefError", err)
	} else if nre.Field != "hrt.publisher" || nre.Node != 9 {
		t.Fatalf("NodeRefError fields = %+v", nre)
	}
}

func TestControlLoopSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		mutate func(*Scenario)
		want   string
	}{
		{func(s *Scenario) { s.Control[0].Class = "best-effort" }, "unknown channel class"},
		{func(s *Scenario) { s.Control[0].Plant = "rocket" }, "unknown plant"},
		{func(s *Scenario) { s.Control[0].PeriodUs = 0 }, "period"},
		{func(s *Scenario) { s.Control[0].CommandSubject = 0x341 }, "distinct"},
		{func(s *Scenario) {
			s.Control = append(s.Control, s.Control[0])
		}, "duplicate loop name"},
	} {
		s := controlScenario()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
		}
	}
}
