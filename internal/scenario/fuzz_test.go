package scenario

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzControlLoops feeds arbitrary bytes through the scenario loader:
// Load must either return an error or a scenario whose Validate passes
// (Load validates), and it must never panic — the loader fronts every
// operator-supplied JSON file. Seeds cover the controlLoops block in
// valid, node-out-of-range, subject-colliding and type-mangled forms.
func FuzzControlLoops(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":4,"durationMs":100,"controlLoops":[{"name":"cart",` +
		`"plant":"double_integrator","controller":"pid","class":"SRT",` +
		`"sensor":1,"controllerNode":2,"actuator":1,` +
		`"sensorSubject":785,"commandSubject":786,"periodUs":5000,"initial":1}]}`))
	f.Add([]byte(`{"nodes":4,"durationMs":100,"controlLoops":[{"name":"x",` +
		`"plant":"thermal","controller":"mpc","class":"HRT","ackClass":"NRT",` +
		`"sensor":9,"controllerNode":2,"actuator":1,` +
		`"sensorSubject":1,"commandSubject":2,"ackSubject":3,"periodUs":5000}]}`))
	f.Add([]byte(`{"nodes":4,"durationMs":100,"controlLoops":[` +
		`{"name":"a","plant":"thermal","controller":"pid","class":"SRT",` +
		`"sensor":0,"controllerNode":1,"actuator":0,"sensorSubject":7,"commandSubject":7,"periodUs":1}]}`))
	f.Add([]byte(`{"nodes":2,"durationMs":1,"controlLoops":[{"periodUs":"soon"}]}`))
	f.Add([]byte(`{"nodes":3,"durationMs":50,"hrt":[{"subject":5,"publisher":0,` +
		`"subscriber":1,"periodUs":10000,"payload":4}],"controlLoops":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			// A node-range failure must be the typed error, never a bare
			// fmt.Errorf that callers cannot unwrap.
			var nre *NodeRefError
			if errors.As(err, &nre) && (nre.Node >= 0 && nre.Node < nre.Nodes) {
				t.Fatalf("NodeRefError for in-range node: %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("Load returned nil scenario and nil error")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Load accepted a scenario Validate rejects: %v", err)
		}
	})
}
