// Package scenario runs declarative, JSON-described mixed-traffic
// scenarios on the simulated CAN segment: node count, fault model, hard
// real-time streams (turned into a planned calendar), soft real-time
// streams and bulk transfers, with a per-class report. It is the
// config-driven face of the library — canecsim's -config flag loads these
// files — and doubles as a compact integration-test vehicle.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/causal"
	"canec/internal/prob"
	"canec/internal/sim"
	"canec/internal/stats"
)

// HRTStream describes one hard real-time channel.
type HRTStream struct {
	Subject    uint64 `json:"subject"`
	Publisher  int    `json:"publisher"`
	Subscriber int    `json:"subscriber"`
	PeriodUs   int64  `json:"periodUs"`
	Payload    int    `json:"payload"` // application bytes (≤ 7)
}

// SRTStream describes one soft real-time stream.
type SRTStream struct {
	Subject      uint64 `json:"subject"`
	Publisher    int    `json:"publisher"`
	Subscriber   int    `json:"subscriber"`
	MeanPeriodUs int64  `json:"meanPeriodUs"`
	DeadlineUs   int64  `json:"deadlineUs"`
	ExpirationUs int64  `json:"expirationUs"`
	Payload      int    `json:"payload"`
	Sporadic     bool   `json:"sporadic"`
}

// NRTBulk describes a repeated bulk transfer.
type NRTBulk struct {
	Subject    uint64 `json:"subject"`
	Publisher  int    `json:"publisher"`
	Subscriber int    `json:"subscriber"`
	Bytes      int    `json:"bytes"`
	RepeatMs   int64  `json:"repeatMs"` // 0: send once
	Prio       int    `json:"prio"`     // 0: lowest
}

// ControlLoop describes one closed sensor → controller → actuator loop
// (internal/control): a discrete-time plant stepped on the kernel whose
// sample, command and ack frames ride real event channels of the given
// class, with per-loop quality-of-control reported after the run.
type ControlLoop struct {
	Name string `json:"name"`
	// Plant is "double_integrator" or "thermal"; Controller "pid" or
	// "mpc".
	Plant      string `json:"plant"`
	Controller string `json:"controller"`
	// Class ("hrt", "srt" or "nrt") is the channel class of the sensor
	// and command legs; AckClass enables nothing by itself — the ack leg
	// exists when AckSubject is set, riding AckClass (default: Class).
	Class    string `json:"class"`
	AckClass string `json:"ackClass,omitempty"`
	// Sensor, ControllerNode and Actuator are the hosting stations.
	Sensor         int `json:"sensor"`
	ControllerNode int `json:"controllerNode"`
	Actuator       int `json:"actuator"`
	// SensorSubject and CommandSubject name the loop's two channels;
	// AckSubject (0: off) adds the actuator-ack leg.
	SensorSubject  uint64 `json:"sensorSubject"`
	CommandSubject uint64 `json:"commandSubject"`
	AckSubject     uint64 `json:"ackSubject,omitempty"`
	// PeriodUs is the sampling period; StaleAfterUs the held-command age
	// a plant tick counts as stale at (default 2× the period).
	PeriodUs     int64 `json:"periodUs"`
	StaleAfterUs int64 `json:"staleAfterUs,omitempty"`
	// Setpoint and Initial parameterise the regulation transient.
	Setpoint float64 `json:"setpoint"`
	Initial  float64 `json:"initial"`
	// Horizon is the MPC prediction horizon (0: default).
	Horizon int `json:"horizon,omitempty"`
}

// parseClass maps the JSON class names onto core classes.
func parseClass(s string) (core.Class, error) {
	switch s {
	case "hrt", "HRT":
		return core.HRT, nil
	case "srt", "SRT":
		return core.SRT, nil
	case "nrt", "NRT":
		return core.NRT, nil
	}
	return 0, fmt.Errorf("scenario: unknown channel class %q", s)
}

// loopConfig lowers the JSON spec into the control package's config.
func (c ControlLoop) loopConfig() (control.LoopConfig, error) {
	class, err := parseClass(c.Class)
	if err != nil {
		return control.LoopConfig{}, err
	}
	ackClass := class
	if c.AckClass != "" {
		if ackClass, err = parseClass(c.AckClass); err != nil {
			return control.LoopConfig{}, err
		}
	}
	cfg := control.LoopConfig{
		Name: c.Name, Plant: c.Plant, Controller: c.Controller,
		Class: class, AckClass: ackClass,
		Sensor: c.Sensor, ControllerNode: c.ControllerNode, Actuator: c.Actuator,
		SensorSubject: c.SensorSubject, CommandSubject: c.CommandSubject,
		AckSubject: c.AckSubject,
		Period:     sim.Duration(c.PeriodUs) * sim.Microsecond,
		StaleAfter: sim.Duration(c.StaleAfterUs) * sim.Microsecond,
		Setpoint:   c.Setpoint, Initial: c.Initial, Horizon: c.Horizon,
	}
	return cfg, cfg.Validate()
}

// AdmissionSpec enables the probabilistic admission controller for the
// run: SRT (and optionally NRT) channels are analyzed at announce time
// against the per-class deadline-miss targets under the planned error
// model, and the admitted set is re-evaluated when fault-confinement
// transitions raise the measured error rate. HRT channels stay
// calendar-dimensioned and bypass the controller.
type AdmissionSpec struct {
	// SRTTarget is the SRT-class deadline-miss probability ceiling
	// (required, in (0, 1]); NRTTarget likewise for NRT, 0 leaving the
	// NRT class uncontrolled (bulk traffic needs no deadline law).
	SRTTarget float64 `json:"srtTarget"`
	NRTTarget float64 `json:"nrtTarget,omitempty"`
	// ErrorRate is the planned per-attempt corruption probability the
	// channels are admitted against; OmissionRate/VictimProb
	// parameterise the inconsistent-omission leg of the model.
	ErrorRate    float64 `json:"errorRate"`
	OmissionRate float64 `json:"omissionRate,omitempty"`
	VictimProb   float64 `json:"victimProb,omitempty"`
}

// SLOSpec starts the objective engine for the run. Zero fields inherit
// the production defaults (obs.DefaultSLOConfig); enabling it forces
// metrics on.
type SLOSpec struct {
	// HRTJitterBoundUs bounds the p99 HRT delivery jitter (0: default
	// 1000 µs); SRTMissBudget the SRT miss fraction (0: default 0.05).
	HRTJitterBoundUs int64   `json:"hrtJitterBoundUs,omitempty"`
	SRTMissBudget    float64 `json:"srtMissBudget,omitempty"`
	// IntervalMs, ShortWindowMs and LongWindowMs override the burn-rate
	// engine's tick and windows (0: defaults 100 ms / 1 s / 10 s).
	IntervalMs    int64 `json:"intervalMs,omitempty"`
	ShortWindowMs int64 `json:"shortWindowMs,omitempty"`
	LongWindowMs  int64 `json:"longWindowMs,omitempty"`
}

// sloConfig lowers the spec onto the engine's config.
func (s SLOSpec) sloConfig() *obs.SLOConfig {
	cfg := obs.DefaultSLOConfig()
	if s.HRTJitterBoundUs > 0 {
		cfg.HRTJitterBound = sim.Duration(s.HRTJitterBoundUs) * sim.Microsecond
	}
	if s.SRTMissBudget > 0 {
		cfg.SRTMissBudget = s.SRTMissBudget
	}
	if s.IntervalMs > 0 {
		cfg.Interval = sim.Duration(s.IntervalMs) * sim.Millisecond
	}
	if s.ShortWindowMs > 0 {
		cfg.ShortWindow = sim.Duration(s.ShortWindowMs) * sim.Millisecond
	}
	if s.LongWindowMs > 0 {
		cfg.LongWindow = sim.Duration(s.LongWindowMs) * sim.Millisecond
	}
	return &cfg
}

// WhySpec attaches the causal lateness ("why-late") engine to the run:
// every delivered-late or dropped event chain is attributed to typed
// root causes, aggregated into Report.Why and the canec_why_* metric
// families, and — with an SLO — stamped onto breach post-mortems.
type WhySpec struct {
	// LateOverUs maps a class (HRT/SRT/NRT) to the publish→deliver
	// latency, in microseconds, beyond which a delivered chain counts as
	// late. Classes without a bound only contribute drop incidents.
	LateOverUs map[string]int64 `json:"lateOverUs,omitempty"`
	// KeepRecent bounds the retained worst-chain list (0: default 32).
	KeepRecent int `json:"keepRecent,omitempty"`
}

// causalConfig lowers the spec onto the analyzer's config.
func (w WhySpec) causalConfig(reg *obs.Registry) causal.Config {
	cfg := causal.Config{Registry: reg, KeepRecent: w.KeepRecent}
	if len(w.LateOverUs) > 0 {
		cfg.LateOver = make(map[string]sim.Duration, len(w.LateOverUs))
		for class, us := range w.LateOverUs {
			cfg.LateOver[strings.ToUpper(class)] = sim.Duration(us) * sim.Microsecond
		}
	}
	return cfg
}

// Scenario is the top-level description.
type Scenario struct {
	Name           string  `json:"name"`
	Nodes          int     `json:"nodes"`
	Seed           uint64  `json:"seed"`
	DurationMs     int64   `json:"durationMs"`
	MaxDriftPPM    float64 `json:"maxDriftPPM"`
	FaultRate      float64 `json:"faultRate"`
	OmissionDegree int     `json:"omissionDegree"`
	// ConfineFaults enables CAN 2.0 fault confinement on the bus: TEC/REC
	// error counters, error-passive degradation (which sheds NRT traffic)
	// and bus-off with the 128×11-recessive-bit recovery rule. Off by
	// default, matching the paper's error-active assumption.
	ConfineFaults bool `json:"confineFaults,omitempty"`
	// BusOffAutoRecover selects who recovers bus-off controllers. Unset
	// or true with no chaos campaign: the controllers' built-in
	// auto-recovery (rejoin exactly after the observation time). With a
	// chaos campaign, the lifecycle's supervisor takes over (capped
	// exponential re-join backoff, anti-flap). Explicit false disables
	// recovery entirely — a bus-off station stays detached.
	BusOffAutoRecover *bool `json:"busOffAutoRecover,omitempty"`
	// SyncMaster selects the initial time master (default station 0);
	// SyncBackups ranks the backup masters for failover.
	SyncMaster  int         `json:"syncMaster,omitempty"`
	SyncBackups []int       `json:"syncBackups,omitempty"`
	HRT         []HRTStream `json:"hrt"`
	SRT         []SRTStream `json:"srt"`
	NRT         []NRTBulk   `json:"nrt"`

	// Control closes plant/controller loops over the segment's event
	// channels; each loop's quality-of-control lands in Report.Control.
	Control []ControlLoop `json:"controlLoops,omitempty"`

	// Admission, when present, installs the probabilistic admission
	// controller with the given error model and per-class targets. SRT
	// channels then declare their period and deadline at announce time;
	// rejected channels are reported (typed reason), not fatal.
	Admission *AdmissionSpec `json:"admission,omitempty"`

	// Chaos, when present, runs the scenario under a seeded fault campaign:
	// node crashes and restarts, error bursts, omission windows and
	// babbling-idiot attacks, optionally contained by the bus guardian. The
	// run is forced to record a trace and the campaign's invariant checkers
	// replay it into Report.Chaos.
	Chaos *chaos.Script `json:"chaos,omitempty"`

	// SLO, when present, runs the burn-rate objective engine during the
	// scenario (forcing metrics on); breaches dump flight-recorder
	// post-mortems when FlightRecords is set too. Final objective states
	// land in Report.SLO.
	SLO *SLOSpec `json:"slo,omitempty"`

	// Why, when present, attaches the causal lateness engine: per-chain
	// root-cause attribution into Report.Why, canec_why_* metrics, and
	// breach post-mortems annotated with their top causes.
	Why *WhySpec `json:"why,omitempty"`

	// FlightRecords, when positive, attaches a flight recorder retaining
	// that many trace records per node; a chaos campaign that ends with
	// invariant violations then dumps a post-mortem (JSONL + Chrome
	// trace) into FlightDir, reported in Report.Chaos.PostMortem.
	FlightRecords int    `json:"flightRecords,omitempty"`
	FlightDir     string `json:"flightDir,omitempty"`

	// Observe enables the observability layer for the run. It is set
	// programmatically (canectrace, tests), not from the JSON file.
	Observe *obs.Config `json:"-"`
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// NodeRefError is the typed validation error for a spec entry that
// references a station outside the scenario's node range. It is returned
// (never silently skipped) by Validate, Load and Run; callers unwrap it
// with errors.As to tell a malformed reference from other spec errors.
type NodeRefError struct {
	// Field names the offending spec entry ("hrt.publisher",
	// "controlLoops.sensor", …); Index is its position in that list.
	Field string
	Index int
	// Node is the referenced station; Nodes the scenario's node count.
	Node  int
	Nodes int
}

func (e *NodeRefError) Error() string {
	return fmt.Sprintf("scenario: %s[%d] references node %d of %d", e.Field, e.Index, e.Node, e.Nodes)
}

// Validate checks structural consistency.
func (s *Scenario) Validate() error {
	if s.Nodes < 2 || s.Nodes > can.MaxTxNode {
		return fmt.Errorf("scenario: nodes %d out of range", s.Nodes)
	}
	if s.DurationMs <= 0 {
		return fmt.Errorf("scenario: non-positive duration")
	}
	node := func(n int, what string, i int) error {
		if n < 0 || n >= s.Nodes {
			return &NodeRefError{Field: what, Index: i, Node: n, Nodes: s.Nodes}
		}
		return nil
	}
	for i, h := range s.HRT {
		if err := node(h.Publisher, "hrt.publisher", i); err != nil {
			return err
		}
		if err := node(h.Subscriber, "hrt.subscriber", i); err != nil {
			return err
		}
		if h.PeriodUs <= 0 || h.Payload < 1 || h.Payload > 7 {
			return fmt.Errorf("scenario: hrt[%d] invalid period/payload", i)
		}
	}
	for i, r := range s.SRT {
		if err := node(r.Publisher, "srt.publisher", i); err != nil {
			return err
		}
		if err := node(r.Subscriber, "srt.subscriber", i); err != nil {
			return err
		}
		if r.MeanPeriodUs <= 0 || r.DeadlineUs <= 0 || r.Payload < 1 || r.Payload > 8 {
			return fmt.Errorf("scenario: srt[%d] invalid parameters", i)
		}
	}
	for i, b := range s.NRT {
		if err := node(b.Publisher, "nrt.publisher", i); err != nil {
			return err
		}
		if err := node(b.Subscriber, "nrt.subscriber", i); err != nil {
			return err
		}
		if b.Bytes <= 0 {
			return fmt.Errorf("scenario: nrt[%d] invalid size", i)
		}
	}
	names := make(map[string]bool, len(s.Control))
	subjects := make(map[uint64]bool, 3*len(s.Control))
	for i, c := range s.Control {
		if err := node(c.Sensor, "controlLoops.sensor", i); err != nil {
			return err
		}
		if err := node(c.ControllerNode, "controlLoops.controllerNode", i); err != nil {
			return err
		}
		if err := node(c.Actuator, "controlLoops.actuator", i); err != nil {
			return err
		}
		if _, err := c.loopConfig(); err != nil {
			return fmt.Errorf("scenario: controlLoops[%d]: %w", i, err)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: controlLoops[%d]: duplicate loop name %q", i, c.Name)
		}
		names[c.Name] = true
		for _, subj := range []uint64{c.SensorSubject, c.CommandSubject, c.AckSubject} {
			if subj == 0 {
				continue
			}
			if subjects[subj] {
				return fmt.Errorf("scenario: controlLoops[%d]: subject 0x%x used by another loop", i, subj)
			}
			subjects[subj] = true
		}
	}
	if s.SyncMaster < 0 || s.SyncMaster >= s.Nodes {
		return fmt.Errorf("scenario: syncMaster %d of %d", s.SyncMaster, s.Nodes)
	}
	for i, b := range s.SyncBackups {
		if b < 0 || b >= s.Nodes || b == s.SyncMaster {
			return fmt.Errorf("scenario: syncBackups[%d] = %d invalid", i, b)
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(s.Nodes); err != nil {
			return err
		}
		for i, e := range s.Chaos.Events {
			if e.Kind == "busoff_attack" && !s.ConfineFaults {
				return fmt.Errorf("scenario: chaos event %d is a busoff_attack but confineFaults is off (no error counters to attack)", i)
			}
		}
	}
	if s.BusOffAutoRecover != nil && !s.ConfineFaults {
		return fmt.Errorf("scenario: busOffAutoRecover set but confineFaults is off")
	}
	if a := s.Admission; a != nil {
		if a.SRTTarget <= 0 || a.SRTTarget > 1 {
			return fmt.Errorf("scenario: admission.srtTarget %v out of (0, 1]", a.SRTTarget)
		}
		if a.NRTTarget < 0 || a.NRTTarget > 1 {
			return fmt.Errorf("scenario: admission.nrtTarget %v out of [0, 1]", a.NRTTarget)
		}
		if err := (prob.ErrorModel{ErrorRate: a.ErrorRate, OmissionRate: a.OmissionRate,
			VictimProb: a.VictimProb, Receivers: s.Nodes}).Validate(); err != nil {
			return fmt.Errorf("scenario: admission: %w", err)
		}
	}
	return nil
}

// Report summarises a run.
type Report struct {
	Name        string
	Counters    core.Counters
	Utilization float64
	HRTLatency  *stats.Series
	HRTJitter   sim.Duration
	SRTLatency  *stats.Series
	NRTBytes    int
	Elapsed     sim.Duration
	// Obs is the run's observability layer (nil unless Scenario.Observe
	// was set): stage records via Obs.Records(), metrics via Obs.Registry().
	Obs *obs.Observer
	// Chaos is the fault-campaign report (nil unless Scenario.Chaos ran).
	Chaos *chaos.Report
	// Admission is the controller's final snapshot (nil unless
	// Scenario.Admission was set); Rejected lists the channels refused
	// at startup announce with their typed reasons, in scenario order.
	Admission *prob.Snapshot
	Rejected  []string
	// Control holds each closed loop's quality-of-control report, in
	// scenario order.
	Control []control.QoC
	// SLO holds the final objective states (nil unless Scenario.SLO ran).
	SLO []obs.Objective
	// Why is the causal lateness engine's final snapshot (nil unless
	// Scenario.Why ran); WhyTop its merged dominant incident cause.
	Why    *causal.Snapshot
	WhyTop causal.Cause
}

// String renders the report for terminals.
func (r *Report) String() string {
	c := r.Counters
	out := fmt.Sprintf("scenario %q: %v simulated, bus utilization %.1f%%\n",
		r.Name, r.Elapsed, 100*r.Utilization)
	if r.HRTLatency.N() > 0 {
		out += fmt.Sprintf("HRT: %d delivered, latency %s/%s µs (mean/p99), period jitter %d µs, late %d, missed %d\n",
			c.DeliveredHRT, stats.Micros(r.HRTLatency.Mean()), stats.Micros(r.HRTLatency.Quantile(0.99)),
			r.HRTJitter.Micros(), c.LateHRTDeliveries, c.SlotMissed)
	}
	if r.SRTLatency.N() > 0 {
		out += fmt.Sprintf("SRT: %d delivered, latency %s/%s µs, deadlineMissed %d, expired %d, promotions %d\n",
			c.DeliveredSRT, stats.Micros(r.SRTLatency.Mean()), stats.Micros(r.SRTLatency.Quantile(0.99)),
			c.DeadlineMissed, c.Expired, c.PromotionsApplied)
	}
	out += fmt.Sprintf("NRT: %d messages, %d KiB transferred, fragErrors %d\n",
		c.DeliveredNRT, r.NRTBytes/1024, c.FragErrors)
	for i := range r.Control {
		out += r.Control[i].String() + "\n"
	}
	if ch := r.Chaos; ch != nil {
		out += fmt.Sprintf("chaos: %d crashes, %d restarts, guardian muted %d frames (isolated %d nodes), babbler sent %d / muted %d\n",
			ch.Crashes, ch.Restarts, ch.GuardianMuted, ch.GuardianIsolated, ch.BabbleSent, ch.BabbleMuted)
		if ch.AgentTakeovers > 0 || ch.MasterTakeovers > 0 {
			out += fmt.Sprintf("chaos: control plane: %d agent takeover(s), %d master takeover(s)\n",
				ch.AgentTakeovers, ch.MasterTakeovers)
		}
		if ch.BusOffEvents > 0 || ch.AttackSent > 0 || ch.AttackMuted > 0 {
			out += fmt.Sprintf("chaos: bus-off: %d event(s), %d supervised recovery(ies), attacker sent %d / muted %d\n",
				ch.BusOffEvents, ch.BusOffRecovered, ch.AttackSent, ch.AttackMuted)
		}
		if len(ch.Violations) == 0 {
			out += "chaos: all trace invariants hold\n"
		}
		for _, v := range ch.Violations {
			out += fmt.Sprintf("chaos: INVARIANT VIOLATED: %v\n", v)
		}
		for _, p := range ch.PostMortem {
			out += fmt.Sprintf("chaos: post-mortem written: %s\n", p)
		}
		for _, e := range ch.Errors {
			out += fmt.Sprintf("chaos: event failed: %s\n", e)
		}
	}
	if a := r.Admission; a != nil {
		out += fmt.Sprintf("admission: %d admitted, %d rejected, %d shed; SRT target %.3g, predicted miss %.3g\n",
			a.AdmittedTotal, a.RejectedTotal, a.ShedTotal, a.Targets.SRT, a.PredictedMissSRT)
		out += fmt.Sprintf("admission: error rate planned %.3g, measured %.3g, effective %.3g\n",
			a.PlannedRate, a.MeasuredRate, a.EffectiveRate)
		reasons := make([]string, 0, len(a.Rejected))
		for reason := range a.Rejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			out += fmt.Sprintf("admission: rejections by reason: %s ×%d\n", reason, a.Rejected[reason])
		}
		for _, line := range r.Rejected {
			out += fmt.Sprintf("admission: rejected %s\n", line)
		}
	}
	for _, o := range r.SLO {
		if o.Breaches > 0 {
			out += fmt.Sprintf("slo: %s breached ×%d, burn %.3g (long window)\n",
				o.Name, o.Breaches, o.LongBurn)
		}
	}
	if w := r.Why; w != nil {
		out += fmt.Sprintf("why: %d chains attributed (%d evicted)\n", w.Chains, w.Evicted)
		for _, cp := range w.Classes {
			if cp.Late == 0 && cp.Dropped == 0 {
				continue
			}
			out += fmt.Sprintf("why: %s: %d late, %d dropped, top cause %s\n",
				cp.Class, cp.Late, cp.Dropped, cp.Top)
		}
	}
	return out
}

// Run executes the scenario and returns the report.
func (s *Scenario) Run() (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// A chaos campaign needs the stage trace: the invariant checkers replay
	// it after the run.
	if s.Chaos != nil {
		if s.Observe == nil {
			s.Observe = obs.Default()
		} else if !s.Observe.Trace {
			cp := *s.Observe
			cp.Trace = true
			s.Observe = &cp
		}
	}
	if s.FlightRecords > 0 {
		if s.Observe == nil {
			s.Observe = &obs.Config{}
		}
		cp := *s.Observe
		cp.FlightRecords = s.FlightRecords
		cp.FlightDir = s.FlightDir
		s.Observe = &cp
	}
	// The SLO engine reads every input from the metrics side; the why
	// engine needs the registry for its canec_why_* families. Both force
	// metrics on.
	if s.SLO != nil || s.Why != nil {
		if s.Observe == nil {
			s.Observe = &obs.Config{}
		}
		cp := *s.Observe
		cp.Metrics = true
		if s.SLO != nil {
			cp.SLO = s.SLO.sloConfig()
		}
		s.Observe = &cp
	}
	// Calendar from the HRT streams via the planner.
	var cal *calendar.Calendar
	calCfg := calendar.DefaultConfig()
	if s.OmissionDegree > 0 {
		calCfg.OmissionDegree = s.OmissionDegree
	}
	reqs := make([]calendar.Request, len(s.HRT))
	for i, h := range s.HRT {
		reqs[i] = calendar.Request{
			Subject:   h.Subject,
			Publisher: can.TxNode(h.Publisher),
			Payload:   h.Payload + 1, // middleware header byte
			Period:    sim.Duration(h.PeriodUs) * sim.Microsecond,
			Periodic:  true,
		}
	}
	// Control loops riding HRT channels reserve their own slots.
	loopCfgs := make([]control.LoopConfig, len(s.Control))
	for i, c := range s.Control {
		lc, err := c.loopConfig()
		if err != nil {
			return nil, err
		}
		loopCfgs[i] = lc
		reqs = append(reqs, lc.CalendarRequests()...)
	}
	if len(reqs) > 0 {
		var err error
		cal, err = calendar.Plan(calCfg, reqs)
		if err != nil {
			return nil, err
		}
	}
	var admCfg *prob.AdmissionConfig
	if a := s.Admission; a != nil {
		admCfg = &prob.AdmissionConfig{
			Targets: prob.ClassTargets{SRT: a.SRTTarget, NRT: a.NRTTarget},
			Analyzer: prob.Analyzer{Model: prob.ErrorModel{
				ErrorRate: a.ErrorRate, OmissionRate: a.OmissionRate,
				VictimProb: a.VictimProb, Receivers: s.Nodes,
			}},
		}
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: s.Nodes, Seed: s.Seed, Calendar: cal,
		Admission:        admCfg,
		Sync:             clock.DefaultSyncConfig(),
		Master:           s.SyncMaster,
		SyncBackups:      s.SyncBackups,
		MaxDriftPPM:      s.MaxDriftPPM,
		MaxInitialOffset: 200 * sim.Microsecond,
		ConfineFaults:    s.ConfineFaults,
		Observe:          s.Observe,
	})
	if err != nil {
		return nil, err
	}
	if s.FaultRate > 0 {
		sys.Bus.Injector = can.RandomErrors{Rate: s.FaultRate}
	}
	var why *causal.Analyzer
	if s.Why != nil {
		why = causal.New(s.Why.causalConfig(sys.Obs.Registry()))
		sys.Obs.AttachCausal(why)
	}
	recoverOff := s.BusOffAutoRecover != nil && !*s.BusOffAutoRecover
	if s.ConfineFaults && recoverOff {
		for _, n := range sys.Nodes {
			n.Ctrl.SetAutoRecover(false)
		}
	}
	var lc *core.Lifecycle
	var camp *chaos.Campaign
	if s.Chaos != nil {
		lc = core.NewLifecycle(sys)
		camp, err = chaos.NewCampaign(sys, lc, *s.Chaos)
		if err != nil {
			return nil, err
		}
		if s.ConfineFaults && !recoverOff {
			// Under a chaos campaign the lifecycle supervisor owns bus-off
			// recovery: the spec observation time plus anti-flap backoff,
			// whose declared bound the invariant checkers assert against.
			lc.EnableBusOffRecovery(core.DefaultBusOffPolicy())
		}
	}
	// down gates application publishing: the application on a crashed
	// station is dead with it.
	down := func(n int) bool { return lc != nil && lc.Down(n) }
	dur := sim.Duration(s.DurationMs) * sim.Millisecond
	end := sys.Cfg.Epoch + dur
	rep := &Report{
		Name:       s.Name,
		HRTLatency: stats.NewSeries("hrt"),
		SRTLatency: stats.NewSeries("srt"),
		Elapsed:    dur,
	}

	// Publisher and subscriber handles live in maps keyed by subject so a
	// chaos restart can swap in the recovered node's fresh channels (the old
	// middleware dies with the crash).
	var firstHRTTimes []sim.Time
	hrtPub := make(map[uint64]*core.HRTEC)
	announceHRT := func(h HRTStream, mw *core.Middleware) error {
		ch, err := mw.HRTEC(binding.Subject(h.Subject))
		if err != nil {
			return err
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: h.Payload, Periodic: true}, nil); err != nil {
			return err
		}
		hrtPub[h.Subject] = ch
		return nil
	}
	subscribeHRT := func(i int, h HRTStream, mw *core.Middleware) error {
		sub, err := mw.HRTEC(binding.Subject(h.Subject))
		if err != nil {
			return err
		}
		return sub.Subscribe(core.ChannelAttrs{Payload: h.Payload, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				if h.Payload >= 7 {
					rep.HRTLatency.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
				}
				if i == 0 {
					firstHRTTimes = append(firstHRTTimes, di.DeliveredAt)
				}
			}, nil)
	}
	startHRT := make([]func(), len(s.HRT))
	for i, h := range s.HRT {
		i := i
		h := h
		subj := binding.Subject(h.Subject)
		slot := cal.SlotsForSubject(h.Subject)[0]
		if err := announceHRT(h, sys.Node(h.Publisher).MW); err != nil {
			return nil, err
		}
		// The publish task is host software: it schedules each round through
		// the publisher's local clock, so it must die with a crash (the clock
		// is cold until re-sync — wakeups computed through it would pile up
		// and flood the recovered slot queue) and be re-anchored by OnRestart
		// at the first round still ahead of the corrected clock. The
		// generation counter retires a loop that never observed the outage
		// (crash and restart both inside one publish period), or a doubled
		// slot rate would grow the queue without bound.
		gen := 0
		var loop func(r int64, g int)
		loop = func(r int64, g int) {
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + slot.Ready - 300*sim.Microsecond
			at := sys.Clocks[h.Publisher].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				if down(h.Publisher) || gen != g {
					return
				}
				p := make([]byte, h.Payload)
				putTS56(p, sys.K.Now())
				hrtPub[h.Subject].Publish(core.Event{Subject: subj, Payload: p})
				loop(slot.NextActive(r+1), g)
			})
		}
		startHRT[i] = func() {
			gen++
			rel := sys.Clocks[h.Publisher].Read(sys.K.Now()) - sys.Cfg.Epoch
			next := int64(1)
			if rel > 0 {
				next = int64(rel/cal.Round) + 1
			}
			loop(slot.NextActive(next), gen)
		}
		loop(slot.NextActive(0), 0)
		if err := subscribeHRT(i, h, sys.Node(h.Subscriber).MW); err != nil {
			return nil, err
		}
	}

	srtPub := make(map[uint64]*core.SRTEC)
	announceSRT := func(r SRTStream, mw *core.Middleware) error {
		ch, err := mw.SRTEC(binding.Subject(r.Subject))
		if err != nil {
			return err
		}
		attrs := core.ChannelAttrs{}
		if s.Admission != nil {
			// Under admission control the channel must declare its law:
			// the analyzer admits it against this period and deadline.
			attrs.Payload = r.Payload
			attrs.Period = sim.Duration(r.MeanPeriodUs) * sim.Microsecond
			attrs.RelDeadline = sim.Duration(r.DeadlineUs) * sim.Microsecond
		}
		if err := ch.Announce(attrs, nil); err != nil {
			return err
		}
		srtPub[r.Subject] = ch
		return nil
	}
	subscribeSRT := func(r SRTStream, mw *core.Middleware) error {
		sub, err := mw.SRTEC(binding.Subject(r.Subject))
		if err != nil {
			return err
		}
		return sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				if len(ev.Payload) >= 7 {
					rep.SRTLatency.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
				}
			}, nil)
	}
	for _, r := range s.SRT {
		r := r
		subj := binding.Subject(r.Subject)
		if err := announceSRT(r, sys.Node(r.Publisher).MW); err != nil {
			// A typed admission rejection is an expected outcome of an
			// over-admission scenario: report it and run the stream out of
			// the mix instead of failing the whole scenario.
			var admErr *core.AdmissionError
			if errors.As(err, &admErr) {
				rep.Rejected = append(rep.Rejected,
					fmt.Sprintf("srt 0x%x: %s (predicted miss %.3g, target %.3g)",
						r.Subject, admErr.Reason, admErr.MissProb, admErr.Target))
				continue
			}
			return nil, err
		}
		if err := subscribeSRT(r, sys.Node(r.Subscriber).MW); err != nil {
			return nil, err
		}
		var loop func()
		loop = func() {
			if sys.K.Now() >= end {
				return
			}
			if !down(r.Publisher) {
				now := sys.Node(r.Publisher).MW.LocalTime()
				p := make([]byte, r.Payload)
				if r.Payload >= 7 {
					putTS56(p, sys.K.Now())
				}
				attrs := core.EventAttrs{Deadline: now + sim.Duration(r.DeadlineUs)*sim.Microsecond}
				if r.ExpirationUs > 0 {
					attrs.Expiration = now + sim.Duration(r.ExpirationUs)*sim.Microsecond
				}
				srtPub[r.Subject].Publish(core.Event{Subject: subj, Payload: p, Attrs: attrs})
			}
			gap := sim.Duration(r.MeanPeriodUs) * sim.Microsecond
			if r.Sporadic {
				gap = sys.K.RNG().ExpDuration(gap)
			}
			sys.K.After(gap, loop)
		}
		sys.K.At(sys.Cfg.Epoch, loop)
	}

	nrtPub := make(map[uint64]*core.NRTEC)
	announceNRT := func(b NRTBulk, mw *core.Middleware) error {
		ch, err := mw.NRTEC(binding.Subject(b.Subject))
		if err != nil {
			return err
		}
		if err := ch.Announce(core.ChannelAttrs{Prio: can.Prio(b.Prio), Fragmentation: true}, nil); err != nil {
			return err
		}
		nrtPub[b.Subject] = ch
		return nil
	}
	subscribeNRT := func(b NRTBulk, mw *core.Middleware) error {
		sub, err := mw.NRTEC(binding.Subject(b.Subject))
		if err != nil {
			return err
		}
		return sub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
			func(ev core.Event, _ core.DeliveryInfo) { rep.NRTBytes += len(ev.Payload) }, nil)
	}
	for _, b := range s.NRT {
		b := b
		subj := binding.Subject(b.Subject)
		if err := announceNRT(b, sys.Node(b.Publisher).MW); err != nil {
			return nil, err
		}
		if err := subscribeNRT(b, sys.Node(b.Subscriber).MW); err != nil {
			return nil, err
		}
		var send func()
		send = func() {
			if sys.K.Now() >= end {
				return
			}
			if !down(b.Publisher) {
				nrtPub[b.Subject].Publish(core.Event{Subject: subj, Payload: make([]byte, b.Bytes)})
			}
			if b.RepeatMs > 0 {
				sys.K.After(sim.Duration(b.RepeatMs)*sim.Millisecond, send)
			}
		}
		sys.K.At(sys.Cfg.Epoch, send)
	}

	// Closed control loops: the plant physics tick on the kernel for the
	// whole run, while the sensor/controller/actuator software legs ride
	// real channels and die/rewire with their stations like any other
	// scenario application.
	loops := make([]*control.Loop, 0, len(loopCfgs))
	for _, lcfg := range loopCfgs {
		lp, err := control.NewLoop(lcfg, sys.Obs)
		if err != nil {
			return nil, err
		}
		if err := lp.Install(sys.K, sys.Cfg.Epoch, end,
			func(n int) *core.Middleware { return sys.Node(n).MW }, down); err != nil {
			var admErr *core.AdmissionError
			if errors.As(err, &admErr) {
				rep.Rejected = append(rep.Rejected,
					fmt.Sprintf("control %s: %s (predicted miss %.3g, target %.3g)",
						lcfg.Name, admErr.Reason, admErr.MissProb, admErr.Target))
				continue
			}
			return nil, err
		}
		loops = append(loops, lp)
	}

	if lc != nil {
		lc.OnRestart = func(n int, mw *core.Middleware) {
			for i, h := range s.HRT {
				if h.Publisher == n {
					if announceHRT(h, mw) == nil {
						startHRT[i]()
					}
				}
				if h.Subscriber == n {
					_ = subscribeHRT(i, h, mw)
				}
			}
			for _, r := range s.SRT {
				if r.Publisher == n {
					_ = announceSRT(r, mw)
				}
				if r.Subscriber == n {
					_ = subscribeSRT(r, mw)
				}
			}
			for _, b := range s.NRT {
				if b.Publisher == n {
					_ = announceNRT(b, mw)
				}
				if b.Subscriber == n {
					_ = subscribeNRT(b, mw)
				}
			}
			for _, lp := range loops {
				if lp.Hosts(n) {
					lp.Rewire(n, mw)
				}
			}
		}
		camp.Install()
	}

	sys.Run(end - 600*sim.Microsecond)
	rep.Counters = sys.TotalCounters()
	rep.Utilization = sys.Utilization()
	rep.Obs = sys.Obs
	if camp != nil {
		cr := camp.Finish(0)
		rep.Chaos = &cr
	}
	if sys.Admission != nil {
		snap := sys.Admission.Snapshot()
		rep.Admission = &snap
	}
	for _, lp := range loops {
		rep.Control = append(rep.Control, lp.Report())
	}
	if sys.SLO != nil {
		rep.SLO = sys.SLO.Snapshot()
	}
	if why != nil {
		snap := why.Snapshot()
		rep.Why = &snap
		rep.WhyTop = why.TopCause("")
	}
	if cal != nil && len(firstHRTTimes) > 1 {
		period := cal.SlotsForSubject(s.HRT[0].Subject)[0].Period(cal.Round)
		rep.HRTJitter = stats.PeriodJitter(firstHRTTimes, period)
	}
	return rep, nil
}

func putTS56(dst []byte, t sim.Time) {
	v := uint64(t)
	for i := 0; i < 7 && i < len(dst); i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getTS56(src []byte) sim.Time {
	var v uint64
	for i := 0; i < 7 && i < len(src); i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return sim.Time(v)
}
