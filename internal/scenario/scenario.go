// Package scenario runs declarative, JSON-described mixed-traffic
// scenarios on the simulated CAN segment: node count, fault model, hard
// real-time streams (turned into a planned calendar), soft real-time
// streams and bulk transfers, with a per-class report. It is the
// config-driven face of the library — canecsim's -config flag loads these
// files — and doubles as a compact integration-test vehicle.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
)

// HRTStream describes one hard real-time channel.
type HRTStream struct {
	Subject    uint64 `json:"subject"`
	Publisher  int    `json:"publisher"`
	Subscriber int    `json:"subscriber"`
	PeriodUs   int64  `json:"periodUs"`
	Payload    int    `json:"payload"` // application bytes (≤ 7)
}

// SRTStream describes one soft real-time stream.
type SRTStream struct {
	Subject      uint64 `json:"subject"`
	Publisher    int    `json:"publisher"`
	Subscriber   int    `json:"subscriber"`
	MeanPeriodUs int64  `json:"meanPeriodUs"`
	DeadlineUs   int64  `json:"deadlineUs"`
	ExpirationUs int64  `json:"expirationUs"`
	Payload      int    `json:"payload"`
	Sporadic     bool   `json:"sporadic"`
}

// NRTBulk describes a repeated bulk transfer.
type NRTBulk struct {
	Subject    uint64 `json:"subject"`
	Publisher  int    `json:"publisher"`
	Subscriber int    `json:"subscriber"`
	Bytes      int    `json:"bytes"`
	RepeatMs   int64  `json:"repeatMs"` // 0: send once
	Prio       int    `json:"prio"`     // 0: lowest
}

// Scenario is the top-level description.
type Scenario struct {
	Name           string      `json:"name"`
	Nodes          int         `json:"nodes"`
	Seed           uint64      `json:"seed"`
	DurationMs     int64       `json:"durationMs"`
	MaxDriftPPM    float64     `json:"maxDriftPPM"`
	FaultRate      float64     `json:"faultRate"`
	OmissionDegree int         `json:"omissionDegree"`
	HRT            []HRTStream `json:"hrt"`
	SRT            []SRTStream `json:"srt"`
	NRT            []NRTBulk   `json:"nrt"`

	// Observe enables the observability layer for the run. It is set
	// programmatically (canectrace, tests), not from the JSON file.
	Observe *obs.Config `json:"-"`
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency.
func (s *Scenario) Validate() error {
	if s.Nodes < 2 || s.Nodes > can.MaxTxNode {
		return fmt.Errorf("scenario: nodes %d out of range", s.Nodes)
	}
	if s.DurationMs <= 0 {
		return fmt.Errorf("scenario: non-positive duration")
	}
	node := func(n int, what string, i int) error {
		if n < 0 || n >= s.Nodes {
			return fmt.Errorf("scenario: %s[%d] references node %d of %d", what, i, n, s.Nodes)
		}
		return nil
	}
	for i, h := range s.HRT {
		if err := node(h.Publisher, "hrt.publisher", i); err != nil {
			return err
		}
		if err := node(h.Subscriber, "hrt.subscriber", i); err != nil {
			return err
		}
		if h.PeriodUs <= 0 || h.Payload < 1 || h.Payload > 7 {
			return fmt.Errorf("scenario: hrt[%d] invalid period/payload", i)
		}
	}
	for i, r := range s.SRT {
		if err := node(r.Publisher, "srt.publisher", i); err != nil {
			return err
		}
		if err := node(r.Subscriber, "srt.subscriber", i); err != nil {
			return err
		}
		if r.MeanPeriodUs <= 0 || r.DeadlineUs <= 0 || r.Payload < 1 || r.Payload > 8 {
			return fmt.Errorf("scenario: srt[%d] invalid parameters", i)
		}
	}
	for i, b := range s.NRT {
		if err := node(b.Publisher, "nrt.publisher", i); err != nil {
			return err
		}
		if err := node(b.Subscriber, "nrt.subscriber", i); err != nil {
			return err
		}
		if b.Bytes <= 0 {
			return fmt.Errorf("scenario: nrt[%d] invalid size", i)
		}
	}
	return nil
}

// Report summarises a run.
type Report struct {
	Name        string
	Counters    core.Counters
	Utilization float64
	HRTLatency  *stats.Series
	HRTJitter   sim.Duration
	SRTLatency  *stats.Series
	NRTBytes    int
	Elapsed     sim.Duration
	// Obs is the run's observability layer (nil unless Scenario.Observe
	// was set): stage records via Obs.Records(), metrics via Obs.Registry().
	Obs *obs.Observer
}

// String renders the report for terminals.
func (r *Report) String() string {
	c := r.Counters
	out := fmt.Sprintf("scenario %q: %v simulated, bus utilization %.1f%%\n",
		r.Name, r.Elapsed, 100*r.Utilization)
	if r.HRTLatency.N() > 0 {
		out += fmt.Sprintf("HRT: %d delivered, latency %s/%s µs (mean/p99), period jitter %d µs, late %d, missed %d\n",
			c.DeliveredHRT, stats.Micros(r.HRTLatency.Mean()), stats.Micros(r.HRTLatency.Quantile(0.99)),
			r.HRTJitter.Micros(), c.LateHRTDeliveries, c.SlotMissed)
	}
	if r.SRTLatency.N() > 0 {
		out += fmt.Sprintf("SRT: %d delivered, latency %s/%s µs, deadlineMissed %d, expired %d, promotions %d\n",
			c.DeliveredSRT, stats.Micros(r.SRTLatency.Mean()), stats.Micros(r.SRTLatency.Quantile(0.99)),
			c.DeadlineMissed, c.Expired, c.PromotionsApplied)
	}
	out += fmt.Sprintf("NRT: %d messages, %d KiB transferred, fragErrors %d\n",
		c.DeliveredNRT, r.NRTBytes/1024, c.FragErrors)
	return out
}

// Run executes the scenario and returns the report.
func (s *Scenario) Run() (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Calendar from the HRT streams via the planner.
	var cal *calendar.Calendar
	calCfg := calendar.DefaultConfig()
	if s.OmissionDegree > 0 {
		calCfg.OmissionDegree = s.OmissionDegree
	}
	if len(s.HRT) > 0 {
		reqs := make([]calendar.Request, len(s.HRT))
		for i, h := range s.HRT {
			reqs[i] = calendar.Request{
				Subject:   h.Subject,
				Publisher: can.TxNode(h.Publisher),
				Payload:   h.Payload + 1, // middleware header byte
				Period:    sim.Duration(h.PeriodUs) * sim.Microsecond,
				Periodic:  true,
			}
		}
		var err error
		cal, err = calendar.Plan(calCfg, reqs)
		if err != nil {
			return nil, err
		}
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: s.Nodes, Seed: s.Seed, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      s.MaxDriftPPM,
		MaxInitialOffset: 200 * sim.Microsecond,
		Observe:          s.Observe,
	})
	if err != nil {
		return nil, err
	}
	if s.FaultRate > 0 {
		sys.Bus.Injector = can.RandomErrors{Rate: s.FaultRate}
	}
	dur := sim.Duration(s.DurationMs) * sim.Millisecond
	end := sys.Cfg.Epoch + dur
	rep := &Report{
		Name:       s.Name,
		HRTLatency: stats.NewSeries("hrt"),
		SRTLatency: stats.NewSeries("srt"),
		Elapsed:    dur,
	}

	var firstHRTTimes []sim.Time
	for i, h := range s.HRT {
		i := i
		h := h
		subj := binding.Subject(h.Subject)
		slot := cal.SlotsForSubject(h.Subject)[0]
		ch, err := sys.Node(h.Publisher).MW.HRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: h.Payload, Periodic: true}, nil); err != nil {
			return nil, err
		}
		var loop func(r int64)
		loop = func(r int64) {
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + slot.Ready - 300*sim.Microsecond
			at := sys.Clocks[h.Publisher].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				p := make([]byte, h.Payload)
				putTS56(p, sys.K.Now())
				ch.Publish(core.Event{Subject: subj, Payload: p})
				loop(slot.NextActive(r + 1))
			})
		}
		loop(slot.NextActive(0))
		sub, err := sys.Node(h.Subscriber).MW.HRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := sub.Subscribe(core.ChannelAttrs{Payload: h.Payload, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				if h.Payload >= 7 {
					rep.HRTLatency.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
				}
				if i == 0 {
					firstHRTTimes = append(firstHRTTimes, di.DeliveredAt)
				}
			}, nil); err != nil {
			return nil, err
		}
	}

	for _, r := range s.SRT {
		r := r
		subj := binding.Subject(r.Subject)
		ch, err := sys.Node(r.Publisher).MW.SRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := ch.Announce(core.ChannelAttrs{}, nil); err != nil {
			return nil, err
		}
		sub, err := sys.Node(r.Subscriber).MW.SRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				if len(ev.Payload) >= 7 {
					rep.SRTLatency.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
				}
			}, nil); err != nil {
			return nil, err
		}
		var loop func()
		loop = func() {
			if sys.K.Now() >= end {
				return
			}
			now := sys.Node(r.Publisher).MW.LocalTime()
			p := make([]byte, r.Payload)
			if r.Payload >= 7 {
				putTS56(p, sys.K.Now())
			}
			attrs := core.EventAttrs{Deadline: now + sim.Duration(r.DeadlineUs)*sim.Microsecond}
			if r.ExpirationUs > 0 {
				attrs.Expiration = now + sim.Duration(r.ExpirationUs)*sim.Microsecond
			}
			ch.Publish(core.Event{Subject: subj, Payload: p, Attrs: attrs})
			gap := sim.Duration(r.MeanPeriodUs) * sim.Microsecond
			if r.Sporadic {
				gap = sys.K.RNG().ExpDuration(gap)
			}
			sys.K.After(gap, loop)
		}
		sys.K.At(sys.Cfg.Epoch, loop)
	}

	for _, b := range s.NRT {
		b := b
		subj := binding.Subject(b.Subject)
		prio := can.Prio(b.Prio)
		ch, err := sys.Node(b.Publisher).MW.NRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := ch.Announce(core.ChannelAttrs{Prio: prio, Fragmentation: true}, nil); err != nil {
			return nil, err
		}
		sub, err := sys.Node(b.Subscriber).MW.NRTEC(subj)
		if err != nil {
			return nil, err
		}
		if err := sub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
			func(ev core.Event, _ core.DeliveryInfo) { rep.NRTBytes += len(ev.Payload) }, nil); err != nil {
			return nil, err
		}
		var send func()
		send = func() {
			if sys.K.Now() >= end {
				return
			}
			ch.Publish(core.Event{Subject: subj, Payload: make([]byte, b.Bytes)})
			if b.RepeatMs > 0 {
				sys.K.After(sim.Duration(b.RepeatMs)*sim.Millisecond, send)
			}
		}
		sys.K.At(sys.Cfg.Epoch, send)
	}

	sys.Run(end - 600*sim.Microsecond)
	rep.Counters = sys.TotalCounters()
	rep.Utilization = sys.Utilization()
	rep.Obs = sys.Obs
	if cal != nil && len(firstHRTTimes) > 1 {
		period := cal.SlotsForSubject(s.HRT[0].Subject)[0].Period(cal.Round)
		rep.HRTJitter = stats.PeriodJitter(firstHRTTimes, period)
	}
	return rep, nil
}

func putTS56(dst []byte, t sim.Time) {
	v := uint64(t)
	for i := 0; i < 7 && i < len(dst); i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func getTS56(src []byte) sim.Time {
	var v uint64
	for i := 0; i < 7 && i < len(src); i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return sim.Time(v)
}
