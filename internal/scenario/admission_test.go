package scenario

import (
	"os"
	"strings"
	"testing"

	"canec/internal/chaos"
)

// admissionScenario loads the committed over-admission demo: three SRT
// channels on one publisher where the third's deadline cannot carry the
// admitted interference under the planned error model.
func admissionScenario(t *testing.T) *Scenario {
	t.Helper()
	f, err := os.Open("../../testdata/scenario-admission.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdmissionScenarioCleanRun: on a clean bus the schedulable channels
// are admitted, the overcommitted one is rejected at announce with the
// typed miss-probability reason, nothing is shed, and the admitted
// channels miss no deadlines.
func TestAdmissionScenarioCleanRun(t *testing.T) {
	rep, err := admissionScenario(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Admission
	if a == nil || !a.Enabled {
		t.Fatal("no admission snapshot")
	}
	if a.AdmittedTotal != 3 || a.RejectedTotal != 1 || a.ShedTotal != 0 {
		t.Fatalf("admitted/rejected/shed = %d/%d/%d", a.AdmittedTotal, a.RejectedTotal, a.ShedTotal)
	}
	if a.Rejected["miss-probability"] != 1 {
		t.Fatalf("rejections by reason: %v", a.Rejected)
	}
	if len(rep.Rejected) != 1 || !strings.Contains(rep.Rejected[0], "srt 0x382: miss-probability") {
		t.Fatalf("rejected lines: %v", rep.Rejected)
	}
	if rep.Counters.DeadlineMissed != 0 {
		t.Fatalf("admitted channels missed %d deadlines on a clean bus", rep.Counters.DeadlineMissed)
	}
	if a.PredictedMissSRT <= 0 || a.PredictedMissSRT > 0.02 {
		t.Fatalf("predicted SRT miss %v outside (0, target]", a.PredictedMissSRT)
	}
	out := rep.String()
	for _, want := range []string{
		"admission: 3 admitted, 1 rejected, 0 shed",
		"rejections by reason: miss-probability ×1",
		"admission: rejected srt 0x382",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAdmissionScenarioChaosShed is the chaos invariant: under the
// bit-error ramp the error-passive transition raises the measured rate,
// the marginal channel is shed (typed, not silent), the surviving
// admitted SRT channels keep the target miss probability, and HRT is
// unaffected.
func TestAdmissionScenarioChaosShed(t *testing.T) {
	s := admissionScenario(t)
	s.Chaos = &chaos.Script{Events: []chaos.Event{
		{Kind: "bit_error", AtMS: 100, UntilMS: 900, Node: 1, Rate: 0.4},
	}}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Admission
	if a == nil {
		t.Fatal("no admission snapshot")
	}
	if a.ShedTotal != 1 {
		t.Fatalf("shed = %d, want 1 (marginal channel under the ramp)", a.ShedTotal)
	}
	if a.MeasuredRate <= 0.02 {
		t.Fatalf("measured rate %v never exceeded the plan", a.MeasuredRate)
	}
	if rep.Counters.AdmissionShed != 1 {
		t.Fatalf("AdmissionShed counter = %d", rep.Counters.AdmissionShed)
	}
	// Surviving admitted channels keep the target.
	if d := rep.Counters.DeliveredSRT; d == 0 ||
		float64(rep.Counters.DeadlineMissed)/float64(d) > 0.02 {
		t.Fatalf("admitted SRT broke the miss target: %d missed of %d",
			rep.Counters.DeadlineMissed, rep.Counters.DeliveredSRT)
	}
	if rep.Counters.LateHRTDeliveries != 0 {
		t.Fatalf("HRT went late under the SRT error ramp: %+v", rep.Counters)
	}
	if len(rep.Chaos.Violations) != 0 {
		t.Fatalf("chaos invariants violated: %v", rep.Chaos.Violations)
	}
}

// TestAdmissionSpecValidation rejects malformed admission specs.
func TestAdmissionSpecValidation(t *testing.T) {
	for name, mut := range map[string]func(*Scenario){
		"zero-target":    func(s *Scenario) { s.Admission.SRTTarget = 0 },
		"target-above-1": func(s *Scenario) { s.Admission.SRTTarget = 1.5 },
		"bad-nrt-target": func(s *Scenario) { s.Admission.NRTTarget = -0.1 },
		"bad-error-rate": func(s *Scenario) { s.Admission.ErrorRate = 2 },
	} {
		s := admissionScenario(t)
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}
