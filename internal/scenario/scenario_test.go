package scenario

import (
	"os"
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "sample",
  "nodes": 6,
  "seed": 3,
  "durationMs": 500,
  "maxDriftPPM": 80,
  "omissionDegree": 1,
  "hrt": [
    {"subject": 257, "publisher": 0, "subscriber": 1, "periodUs": 10000, "payload": 7},
    {"subject": 258, "publisher": 1, "subscriber": 2, "periodUs": 20000, "payload": 7}
  ],
  "srt": [
    {"subject": 512, "publisher": 2, "subscriber": 3, "meanPeriodUs": 3000,
     "deadlineUs": 10000, "expirationUs": 30000, "payload": 8, "sporadic": true}
  ],
  "nrt": [
    {"subject": 768, "publisher": 4, "subscriber": 5, "bytes": 4096, "repeatMs": 100}
  ]
}`

func TestLoadAndRun(t *testing.T) {
	s, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Counters
	if c.DeliveredHRT == 0 || c.DeliveredSRT == 0 || c.DeliveredNRT == 0 {
		t.Fatalf("classes missing traffic: %+v", c)
	}
	if c.SlotMissed != 0 || c.LateHRTDeliveries != 0 {
		t.Fatalf("HRT health: %+v", c)
	}
	// The 10 ms stream over ~500 ms minus epoch: ≥ 15 deliveries.
	if c.DeliveredHRT < 15 {
		t.Fatalf("DeliveredHRT = %d", c.DeliveredHRT)
	}
	if rep.HRTLatency.N() == 0 || rep.HRTLatency.Mean() <= 0 {
		t.Fatal("HRT latency not measured")
	}
	if rep.NRTBytes < 4096 {
		t.Fatalf("NRT bytes = %d", rep.NRTBytes)
	}
	out := rep.String()
	for _, want := range []string{"sample", "HRT:", "SRT:", "NRT:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() string {
		s, err := Load(strings.NewReader(sampleJSON))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same scenario diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []string{
		`{"nodes": 1, "durationMs": 100}`, // too few nodes
		`{"nodes": 4, "durationMs": 0}`,   // no duration
		`{"nodes": 4, "durationMs": 10, "hrt": [{"subject":1,"publisher":9,"subscriber":0,"periodUs":1000,"payload":4}]}`, // bad node
		`{"nodes": 4, "durationMs": 10, "hrt": [{"subject":1,"publisher":0,"subscriber":1,"periodUs":1000,"payload":8}]}`, // payload > 7
		`{"nodes": 4, "durationMs": 10, "srt": [{"subject":1,"publisher":0,"subscriber":1,"meanPeriodUs":0,"deadlineUs":1,"payload":1}]}`,
		`{"nodes": 4, "durationMs": 10, "nrt": [{"subject":1,"publisher":0,"subscriber":1,"bytes":0}]}`,
		`{"nodes": 4, "durationMs": 10, "bogus": 1}`, // unknown field
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	s, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.FaultRate = 0.05
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// k=1 dimensioning absorbs 5% random errors without misses.
	if rep.Counters.SlotMissed != 0 {
		t.Fatalf("missed slots under light faults: %+v", rep.Counters)
	}
}

func TestRunWithoutHRT(t *testing.T) {
	s := &Scenario{
		Name: "srt-only", Nodes: 3, DurationMs: 100,
		SRT: []SRTStream{{Subject: 5, Publisher: 0, Subscriber: 1,
			MeanPeriodUs: 2000, DeadlineUs: 5000, Payload: 8}},
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.DeliveredSRT == 0 {
		t.Fatal("no SRT traffic")
	}
	if strings.Contains(rep.String(), "HRT:") {
		t.Fatal("report mentions absent HRT class")
	}
}

const chaosJSON = `{
  "name": "chaos-sample",
  "nodes": 6,
  "seed": 3,
  "durationMs": 500,
  "maxDriftPPM": 80,
  "omissionDegree": 1,
  "hrt": [
    {"subject": 257, "publisher": 0, "subscriber": 1, "periodUs": 10000, "payload": 7},
    {"subject": 258, "publisher": 1, "subscriber": 2, "periodUs": 20000, "payload": 7}
  ],
  "srt": [
    {"subject": 512, "publisher": 2, "subscriber": 3, "meanPeriodUs": 3000,
     "deadlineUs": 10000, "expirationUs": 30000, "payload": 8, "sporadic": true}
  ],
  "nrt": [
    {"subject": 768, "publisher": 4, "subscriber": 5, "bytes": 4096, "repeatMs": 100}
  ],
  "chaos": {
    "guardian": true,
    "events": [
      {"kind": "crash", "at_ms": 100, "node": 1},
      {"kind": "restart", "at_ms": 200, "node": 1},
      {"kind": "babble", "at_ms": 320, "until_ms": 350, "node": 5}
    ]
  }
}`

func TestRunWithChaosSection(t *testing.T) {
	s, err := Load(strings.NewReader(chaosJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ch := rep.Chaos
	if ch == nil {
		t.Fatal("chaos section ran but Report.Chaos is nil")
	}
	for _, v := range ch.Violations {
		t.Errorf("invariant violated: %v", v)
	}
	if ch.Crashes != 1 || ch.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", ch.Crashes, ch.Restarts)
	}
	if ch.GuardianMuted == 0 || ch.BabbleSent != 0 {
		t.Fatalf("guardian muted=%d babble sent=%d, want >0/0", ch.GuardianMuted, ch.BabbleSent)
	}
	// Node 1 publishes the 20 ms stream and subscribes the 10 ms one; both
	// sides of it die in the crash and must flow again after recovery.
	if rep.Counters.DeliveredHRT < 40 {
		t.Fatalf("DeliveredHRT = %d, want ≥ 40 (recovery must restore both streams)", rep.Counters.DeliveredHRT)
	}
	out := rep.String()
	if !strings.Contains(out, "chaos: all trace invariants hold") {
		t.Fatalf("report missing chaos summary:\n%s", out)
	}
}

func TestValidateChaosSection(t *testing.T) {
	bad := `{"nodes": 4, "durationMs": 100,
	  "chaos": {"events": [{"kind": "crash", "at_ms": 1, "node": 0}]}}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("crash of station 0 accepted")
	}
}

// TestRunControlPlaneSample runs the shipped control-plane chaos sample:
// the binding agent and the time master each crash and restart, both roles
// fail over, and every trace invariant holds.
func TestRunControlPlaneSample(t *testing.T) {
	f, err := os.Open("../../testdata/chaos-agent-master.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ch := rep.Chaos
	if ch == nil {
		t.Fatal("chaos section ran but Report.Chaos is nil")
	}
	for _, v := range ch.Violations {
		t.Errorf("invariant violated: %v", v)
	}
	for _, e := range ch.Errors {
		t.Errorf("campaign event failed: %s", e)
	}
	if ch.Crashes != 2 || ch.Restarts != 2 {
		t.Fatalf("crashes/restarts = %d/%d, want 2/2", ch.Crashes, ch.Restarts)
	}
	if ch.AgentTakeovers < 1 || ch.MasterTakeovers < 1 {
		t.Fatalf("takeovers agent=%d master=%d, want ≥1 each", ch.AgentTakeovers, ch.MasterTakeovers)
	}
	// The data plane publishes from stations that never crash: both HRT
	// streams must keep flowing through both control-plane outages.
	if rep.Counters.DeliveredHRT < 300 {
		t.Fatalf("DeliveredHRT = %d, want ≥ 300", rep.Counters.DeliveredHRT)
	}
	out := rep.String()
	if !strings.Contains(out, "agent takeover") {
		t.Fatalf("report missing control-plane summary:\n%s", out)
	}
}
