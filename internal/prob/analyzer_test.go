package prob

import (
	"math"
	"testing"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/sim"
)

// TestPointMassRecoversCalendarWCTT pins the degenerate special case:
// with the deterministic point-mass error model (exactly k errors per
// transmission), an isolated channel's response-time distribution
// collapses to a point mass at calendar.Config.WCTT — the omission-
// degree-k dimensioning the HRT slot calendar uses.
func TestPointMassRecoversCalendarWCTT(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3} {
		for _, payload := range []int{1, 4, 8} {
			a := Analyzer{Deterministic: true, OmissionDegree: k}
			set := []Msg{{Prio: 5, Period: 10 * sim.Millisecond, Payload: payload,
				Deadline: 5 * sim.Millisecond}}
			res, err := a.Response(set, 0)
			if err != nil {
				t.Fatalf("k=%d payload=%d: %v", k, payload, err)
			}
			cfg := calendar.Config{BitRate: can.DefaultBitRate, OmissionDegree: k}
			want := cfg.WCTT(payload)
			got, ok := res.Dist.Quantile(1)
			if !ok {
				t.Fatalf("k=%d payload=%d: distribution overflowed", k, payload)
			}
			if got != want {
				t.Errorf("k=%d payload=%d: point mass at %v, calendar WCTT %v", k, payload, got, want)
			}
			if m := res.Dist.Mass(); math.Abs(m-1) > 1e-12 {
				t.Errorf("k=%d payload=%d: mass %v", k, payload, m)
			}
			if res.MissProb != 0 && want <= set[0].Deadline {
				t.Errorf("k=%d payload=%d: miss prob %v for WCTT %v within deadline", k, payload, res.MissProb, want)
			}
		}
	}
}

// TestGeometricMissProbIsolated checks the convolved miss probability
// of an isolated channel against the closed-form geometric tail: a
// deadline that tolerates n errors is missed with probability p^(n+1).
func TestGeometricMissProbIsolated(t *testing.T) {
	const p = 0.2
	payload := 8
	a := Analyzer{Model: ErrorModel{ErrorRate: p}, MaxErrors: 40}
	frame := can.BitTime(can.WorstCaseBits(payload), can.DefaultBitRate)
	errf := can.BitTime(can.ErrorOverheadBits, can.DefaultBitRate)
	for n := 0; n <= 3; n++ {
		// Deadline strictly between the n-error and (n+1)-error atoms.
		deadline := frame + sim.Duration(n)*(frame+errf) + (frame+errf)/2
		set := []Msg{{Prio: 5, Period: 50 * sim.Millisecond, Payload: payload, Deadline: deadline}}
		res, err := a.Response(set, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := math.Pow(p, float64(n+1))
		if math.Abs(res.MissProb-want) > 1e-9 {
			t.Errorf("n=%d: miss prob %v, want %v", n, res.MissProb, want)
		}
		if b := a.MissProbBound(payload, deadline); math.Abs(b-want) > 1e-9 {
			t.Errorf("n=%d: closed-form bound %v, want %v", n, b, want)
		}
	}
}

// TestResponseStochasticallyDominates asserts the analysis is monotone
// in the error rate: a higher per-attempt error probability never
// lowers any tail probability (first-order stochastic dominance), which
// is what makes "raise the rate on error-state events and re-evaluate"
// a sound shedding trigger.
func TestResponseStochasticallyDominates(t *testing.T) {
	set := []Msg{
		{Prio: 1, Period: 2 * sim.Millisecond, Payload: 8, Deadline: 2 * sim.Millisecond},
		{Prio: 2, Period: 4 * sim.Millisecond, Payload: 8, Deadline: 4 * sim.Millisecond},
	}
	lo := Analyzer{Model: ErrorModel{ErrorRate: 0.05}}
	hi := Analyzer{Model: ErrorModel{ErrorRate: 0.25}}
	rl, err := lo.Response(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := hi.Response(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []sim.Duration{500 * sim.Microsecond, sim.Millisecond,
		2 * sim.Millisecond, 4 * sim.Millisecond} {
		if rh.Dist.TailAbove(q) < rl.Dist.TailAbove(q)-1e-12 {
			t.Errorf("tail above %v: hi %v < lo %v", q,
				rh.Dist.TailAbove(q), rl.Dist.TailAbove(q))
		}
	}
	if rh.MissProb < rl.MissProb {
		t.Errorf("miss prob not monotone: hi %v < lo %v", rh.MissProb, rl.MissProb)
	}
}

// TestUnschedulableSet mirrors baseline's divergence behaviour.
func TestUnschedulableSet(t *testing.T) {
	set := []Msg{
		{Prio: 1, Period: 100 * sim.Microsecond, Payload: 8},
		{Prio: 2, Period: 150 * sim.Microsecond, Payload: 8, Deadline: sim.Millisecond},
	}
	a := Analyzer{}
	if _, err := a.Response(set, 1); err == nil {
		t.Fatal("expected divergence for a saturated set")
	}
}

// TestDistOverflowConservative checks that truncation charges mass to
// the overflow, so MissProb stays an upper bound.
func TestDistOverflowConservative(t *testing.T) {
	a := Analyzer{Model: ErrorModel{ErrorRate: 0.5}, MaxErrors: 2,
		Horizon: 2 * sim.Millisecond}
	set := []Msg{{Prio: 5, Period: 50 * sim.Millisecond, Payload: 8,
		Deadline: sim.Millisecond}}
	res, err := a.Response(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Overflow() <= 0 {
		t.Fatal("expected truncated mass in the overflow")
	}
	// Exact tail: miss iff ≥ 2 errors (deadline tolerates one error:
	// 160 + 183×n µs): p^2 = 0.25... compare against the closed form.
	want := a.MissProbBound(8, sim.Millisecond)
	if res.MissProb < want-1e-9 {
		t.Errorf("truncated miss prob %v below exact %v: not conservative", res.MissProb, want)
	}
}
