package prob

import (
	"fmt"

	"canec/internal/can"
)

// ErrorModel is the single description of a link's stochastic fault
// behaviour, shared by the chaos injectors and the analyzer so that
// what the campaign injects and what admission control assumes are
// provably the same distribution.
//
// Per transmission attempt:
//   - with probability ErrorRate the attempt suffers a consistent,
//     detected error (CAN error frame, automatic retransmission) —
//     can.RandomErrors{Rate} bus-wide, or can.TargetedBitErrors{Rate}
//     for a single victim's link;
//   - otherwise, with probability OmissionRate the attempt is marked
//     for inconsistent omission and each receiver independently misses
//     it with probability VictimProb — can.RandomOmissions.
//
// Composing both in a can.Chain evaluates the error injector first, so
// the per-attempt probabilities above are exactly the chain's sampling
// law (the omission draw only happens on non-errored attempts, and its
// conditional probability is OmissionRate unchanged).
type ErrorModel struct {
	// ErrorRate is the per-attempt probability of a detected error
	// followed by retransmission.
	ErrorRate float64
	// OmissionRate is the per-attempt probability (conditional on no
	// detected error) that the transmission is marked for inconsistent
	// omission.
	OmissionRate float64
	// VictimProb is the per-receiver probability of silently missing an
	// omission-marked transmission.
	VictimProb float64
	// Receivers is the total controller count on the bus, required by
	// can.RandomOmissions when OmissionRate > 0.
	Receivers int
}

// Validate checks the model parameters.
func (m ErrorModel) Validate() error {
	if !validProb(m.ErrorRate) || !validProb(m.OmissionRate) || !validProb(m.VictimProb) {
		return fmt.Errorf("prob: error model probabilities out of [0,1]: error=%v omission=%v victim=%v",
			m.ErrorRate, m.OmissionRate, m.VictimProb)
	}
	if m.OmissionRate > 0 && m.Receivers <= 0 {
		return fmt.Errorf("prob: omission rate %v needs a positive receiver count", m.OmissionRate)
	}
	return nil
}

// Zero reports whether the model injects nothing.
func (m ErrorModel) Zero() bool {
	return m.ErrorRate == 0 && (m.OmissionRate == 0 || m.VictimProb == 0)
}

// Injector returns the fault injector that samples exactly this model:
// the same parameters the analyzer convolves drive the chaos campaign.
// It panics on an invalid model (call Validate first when parameters
// come from configuration); a zero model yields can.NoFaults.
func (m ErrorModel) Injector() can.Injector {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	var ch can.Chain
	if m.ErrorRate > 0 {
		ch = append(ch, can.RandomErrors{Rate: m.ErrorRate})
	}
	if m.OmissionRate > 0 && m.VictimProb > 0 {
		ch = append(ch, can.NewRandomOmissions(m.OmissionRate, m.VictimProb, m.Receivers))
	}
	if len(ch) == 0 {
		return can.NoFaults{}
	}
	if len(ch) == 1 {
		return ch[0]
	}
	return ch
}

// TargetedInjector returns the injector that applies the model's error
// component to a single victim's transmissions only — the bit_error
// chaos kind. Per-link analysis of that victim's channels uses the same
// ErrorRate the injector samples.
func (m ErrorModel) TargetedInjector(victim int) can.Injector {
	return can.TargetedBitErrors{Victim: victim, Rate: m.ErrorRate, Prio: -1}
}

// RetransmitProb returns the per-attempt probability of a detected
// error (the geometric retransmission parameter of the analysis).
func (m ErrorModel) RetransmitProb() float64 { return m.ErrorRate }

// DeliveryLossProb returns the probability that a given receiver
// silently misses an (eventually successful) transmission: the
// delivering attempt is by definition not errored, so the conditional
// omission probability is OmissionRate, and each receiver is a victim
// with VictimProb.
func (m ErrorModel) DeliveryLossProb() float64 { return m.OmissionRate * m.VictimProb }

// FromInjector recovers the ErrorModel an injector samples, when it has
// one: RandomErrors, TargetedBitErrors (its victim's link), validated
// RandomOmissions, NoFaults/nil, and Chains of at most one omission
// injector combined with any number of error injectors. ok is false for
// injectors without a stationary per-attempt law (bursts, adversaries,
// arbitrary functions) — those cannot be admitted against.
func FromInjector(in can.Injector) (m ErrorModel, ok bool) {
	switch v := in.(type) {
	case nil, can.NoFaults:
		return ErrorModel{}, true
	case can.RandomErrors:
		return ErrorModel{ErrorRate: v.Rate}, true
	case can.TargetedBitErrors:
		if v.Active != nil || v.Prio >= 0 {
			return ErrorModel{}, false // gated or prio-filtered: not stationary
		}
		return ErrorModel{ErrorRate: v.Rate}, true
	case can.RandomOmissions:
		return ErrorModel{OmissionRate: v.Rate, VictimProb: v.VictimProb, Receivers: v.Receivers}, true
	case can.Chain:
		var out ErrorModel
		haveOmission := false
		for _, el := range v {
			em, elOK := FromInjector(el)
			if !elOK {
				return ErrorModel{}, false
			}
			if em.ErrorRate > 0 && haveOmission {
				// An error injector behind an omission injector is
				// conditioned on the omission draw missing; the simple
				// composition below would misstate it.
				return ErrorModel{}, false
			}
			if em.OmissionRate > 0 {
				if haveOmission {
					return ErrorModel{}, false
				}
				haveOmission = true
				out.OmissionRate = em.OmissionRate
				out.VictimProb = em.VictimProb
				out.Receivers = em.Receivers
			}
			// Error components compose as independent first-hit draws:
			// 1-(1-p1)(1-p2).
			out.ErrorRate = 1 - (1-out.ErrorRate)*(1-em.ErrorRate)
		}
		return out, true
	}
	return ErrorModel{}, false
}
