package prob_test

import (
	"testing"

	"canec/internal/baseline"
	"canec/internal/prob"
	"canec/internal/sim"
)

// TestZeroErrorRecoversBaselineWCRT pins the other deterministic
// anchor: with a zero error model, the analyzer's response (a point
// mass) equals the Tindell fixed point of baseline.WCRT for the same
// message set.
func TestZeroErrorRecoversBaselineWCRT(t *testing.T) {
	specs := []baseline.MsgSpec{
		{Prio: 1, Period: 2 * sim.Millisecond, Payload: 8},
		{Prio: 2, Period: 5 * sim.Millisecond, Payload: 4},
		{Prio: 3, Period: 10 * sim.Millisecond, Payload: 8},
		{Prio: 4, Period: 20 * sim.Millisecond, Payload: 2},
	}
	set := make([]prob.Msg, len(specs))
	for i, s := range specs {
		set[i] = prob.Msg{Prio: s.Prio, Period: s.Period, Jitter: s.Jitter,
			Payload: s.Payload, Deadline: s.Period}
	}
	a := prob.Analyzer{}
	for i := range specs {
		want, err := baseline.WCRT(specs, specs[i], 0)
		if err != nil {
			t.Fatalf("baseline WCRT msg %d: %v", i, err)
		}
		res, err := a.Response(set, i)
		if err != nil {
			t.Fatalf("prob response msg %d: %v", i, err)
		}
		if res.ZeroError != want {
			t.Errorf("msg %d: zero-error response %v, baseline WCRT %v", i, res.ZeroError, want)
		}
		got, ok := res.Dist.Quantile(1)
		if !ok || got != want {
			t.Errorf("msg %d: distribution max %v (ok=%v), baseline WCRT %v", i, got, ok, want)
		}
	}
}
