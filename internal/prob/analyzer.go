package prob

import (
	"errors"
	"fmt"
	"math"

	"canec/internal/can"
	"canec/internal/sim"
)

// Msg describes one periodic message stream for probabilistic
// response-time analysis — the same shape as baseline.MsgSpec plus a
// relative transmission deadline.
type Msg struct {
	// Name labels the stream in reports (channel subject, typically).
	Name string
	// Prio is the stream's fixed priority (lower = more urgent).
	Prio can.Prio
	// Period is the minimum inter-release time.
	Period sim.Duration
	// Jitter is the release jitter bound.
	Jitter sim.Duration
	// Deadline is the relative transmission deadline (0 = none; miss
	// probability is then reported as 0).
	Deadline sim.Duration
	// Payload is the frame payload in bytes.
	Payload int
}

// ErrUnschedulable is returned when the zero-error busy-period
// recurrence diverges: the deterministic part of the load already
// saturates the bus, so no error model makes the channel admissible.
var ErrUnschedulable = errors.New("prob: response-time recurrence diverged")

// Analyzer computes per-channel response-time distributions by
// convolution: the zero-error Tindell busy window fixes which
// transmissions interfere, and every transmission in the window
// contributes an error-extension distribution (retransmission plus
// error-signalling overhead per detected error, geometric in the
// model's per-attempt error probability). The deterministic
// omission-degree-k analysis is the point-mass special case
// (Deterministic = true): every transmission suffers exactly
// OmissionDegree errors with probability 1, and the resulting
// distribution collapses to the calendar's WCTT structure.
type Analyzer struct {
	// BitRate of the bus; 0 selects can.DefaultBitRate.
	BitRate int
	// Model is the stochastic fault law (ignored when Deterministic).
	Model ErrorModel
	// MaxErrors truncates the per-transmission error count; the
	// truncated geometric tail is charged to the distribution's
	// overflow (conservative). 0 selects 16.
	MaxErrors int
	// Horizon caps the analyzed response range; mass beyond it counts
	// as missed. 0 selects max(8×deadline, 16×frame time).
	Horizon sim.Duration
	// FrameBits maps a payload size to on-wire bits. Nil selects the
	// worst-case stuffing bound can.WorstCaseBits; validation runs use
	// the exact stuffed length of the frames actually sent.
	FrameBits func(payload int) int
	// Deterministic selects the degenerate point-mass error model:
	// exactly OmissionDegree errors per transmission with probability 1
	// — the calendar's omission-degree-k fault assumption.
	Deterministic  bool
	OmissionDegree int
}

// Result is the analysis outcome for one channel.
type Result struct {
	Msg Msg
	// Dist is the response-time distribution (bus-bit ticks).
	Dist *Dist
	// MissProb is P[response > deadline] including truncated mass; 0
	// when the message declares no deadline.
	MissProb float64
	// LossProb is the per-receiver probability of silently missing a
	// delivered event (inconsistent omission), independent of timing.
	LossProb float64
	// ZeroError is the deterministic error-free response time R0 (the
	// distribution's minimum support).
	ZeroError sim.Duration
	// Transmissions is the number of frames in the analyzed busy
	// window (the target plus counted interference), each of which
	// contributes an error-extension convolution term.
	Transmissions int
}

func (a Analyzer) bitRate() int {
	if a.BitRate <= 0 {
		return can.DefaultBitRate
	}
	return a.BitRate
}

func (a Analyzer) frameBits(payload int) int {
	if a.FrameBits != nil {
		return a.FrameBits(payload)
	}
	return can.WorstCaseBits(payload)
}

func (a Analyzer) maxErrors() int {
	if a.MaxErrors <= 0 {
		return 16
	}
	return a.MaxErrors
}

func (a Analyzer) frameTime(payload int) sim.Duration {
	return can.BitTime(a.frameBits(payload), a.bitRate())
}

// extensionAtoms returns the per-transmission error-extension
// distribution for a frame of the given payload: i errors cost
// i × (retransmission + error signalling) extra ticks.
func (a Analyzer) extensionAtoms(payload int) []atom {
	step := a.frameBits(payload) + can.ErrorOverheadBits
	if a.Deterministic {
		k := a.OmissionDegree
		if k < 0 {
			k = 0
		}
		return []atom{{dt: k * step, pr: 1}}
	}
	p := a.Model.RetransmitProb()
	if p <= 0 {
		return []atom{{dt: 0, pr: 1}}
	}
	n := a.maxErrors()
	atoms := make([]atom, 0, n+1)
	q, cum := 1.0, 0.0
	for i := 0; i <= n; i++ {
		pr := q * (1 - p) // P[i errors then success]
		atoms = append(atoms, atom{dt: i * step, pr: pr})
		cum += pr
		q *= p
	}
	// The residual 1-cum (more than n errors) stays un-modelled; the
	// convolution charges it to the overflow mass.
	return atoms
}

// Response analyzes the stream set[target] within its message set. The
// busy window is fixed by the zero-error Tindell recurrence (identical
// to baseline.WCRT with worst-case frame bits), then every transmission
// in the window contributes its error-extension distribution by
// convolution.
func (a Analyzer) Response(set []Msg, target int) (Result, error) {
	if target < 0 || target >= len(set) {
		return Result{}, fmt.Errorf("prob: target %d out of set of %d", target, len(set))
	}
	m := set[target]
	bitRate := a.bitRate()
	tau := can.BitTime(1, bitRate)
	cm := a.frameTime(m.Payload)

	// Utilization precheck of the busy-period argument (zero-error
	// demand of the target and its higher-priority interference).
	if m.Period > 0 {
		u := float64(cm) / float64(m.Period)
		for i, h := range set {
			if i != target && h.Prio < m.Prio && h.Period > 0 {
				u += float64(a.frameTime(h.Payload)) / float64(h.Period)
			}
		}
		if u >= 1 {
			return Result{}, ErrUnschedulable
		}
	}

	// Blocking: the longest frame without higher priority than the
	// target (non-preemptive bus).
	var block sim.Duration
	for i, o := range set {
		if i != target && o.Prio >= m.Prio {
			if ft := a.frameTime(o.Payload); ft > block {
				block = ft
			}
		}
	}

	// Zero-error fixed point on the queueing delay w, keeping the
	// per-interferer transmission counts of the final window.
	horizon := 1000 * m.Period
	if horizon <= 0 {
		horizon = sim.Duration(1) << 40
	}
	w := block
	counts := make([]int64, len(set))
	for iter := 0; ; iter++ {
		if iter >= 1_000_000 {
			return Result{}, ErrUnschedulable
		}
		next := block
		for i, h := range set {
			counts[i] = 0
			if i == target || h.Prio >= m.Prio || h.Period <= 0 {
				continue
			}
			n := int64((w + h.Jitter + tau + h.Period - 1) / h.Period)
			if n < 1 {
				n = 1
			}
			counts[i] = n
			next += sim.Duration(n) * a.frameTime(h.Payload)
		}
		if next == w {
			break
		}
		w = next
		if w > horizon {
			return Result{}, ErrUnschedulable
		}
	}
	r0 := m.Jitter + w + cm

	// Distribution horizon in ticks.
	distHorizon := a.Horizon
	if distHorizon <= 0 {
		distHorizon = 8 * m.Deadline
		if min := 16 * cm; distHorizon < min {
			distHorizon = min
		}
	}
	if distHorizon < r0+tau {
		distHorizon = r0 + tau
	}
	ticks := int(distHorizon/tau) + 2

	// Base: point mass at the zero-error response (round partial ticks
	// up — conservative).
	r0Ticks := int((r0 + tau - 1) / tau)
	d := pointMass(tau, r0Ticks, ticks)

	// Convolve the error extension of every transmission in the busy
	// window: the target's own frame plus each counted interferer.
	transmissions := 1
	d.convolveAtoms(a.extensionAtoms(m.Payload))
	for i, n := range counts {
		if n <= 0 {
			continue
		}
		atoms := a.extensionAtoms(set[i].Payload)
		for j := int64(0); j < n; j++ {
			d.convolveAtoms(atoms)
			transmissions++
		}
	}

	res := Result{
		Msg:           m,
		Dist:          d,
		ZeroError:     r0,
		Transmissions: transmissions,
	}
	if !a.Deterministic {
		res.LossProb = a.Model.DeliveryLossProb()
	}
	if m.Deadline > 0 {
		res.MissProb = d.TailAbove(m.Deadline)
	}
	return res, nil
}

// WCTT returns the analyzer's deterministic worst-case transmission
// time for a payload under omission degree k — the point-mass special
// case for an isolated slot, structurally identical to
// calendar.Config.WCTT.
func (a Analyzer) WCTT(payload, k int) sim.Duration {
	frame := a.frameTime(payload)
	errf := can.BitTime(can.ErrorOverheadBits, a.bitRate())
	return sim.Duration(k+1)*frame + sim.Duration(k)*errf
}

// MissProbBound returns a quick standalone bound for an isolated
// transmission (no interference): the probability that more than
// maxTolerable errors hit one frame, i.e. p^(n+1) where n is the
// largest error count whose response still meets the deadline.
func (a Analyzer) MissProbBound(payload int, deadline sim.Duration) float64 {
	if deadline <= 0 {
		return 0
	}
	p := a.Model.RetransmitProb()
	if a.Deterministic {
		if a.WCTT(payload, a.OmissionDegree) > deadline {
			return 1
		}
		return 0
	}
	if p <= 0 {
		return 0
	}
	frame := a.frameTime(payload)
	errf := can.BitTime(can.ErrorOverheadBits, a.bitRate())
	if frame > deadline {
		return 1
	}
	n := int64((deadline - frame) / (frame + errf))
	return math.Pow(p, float64(n+1))
}
