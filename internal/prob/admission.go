package prob

import (
	"sort"

	"canec/internal/can"
	"canec/internal/sim"
)

// Reason is the typed cause attached to every admission rejection or
// shed — overload never degrades channels silently.
type Reason int

const (
	// ReasonNone: admitted.
	ReasonNone Reason = iota
	// ReasonMissProb: the channel's predicted deadline-miss probability
	// (or the degradation it would inflict on already-admitted
	// channels) exceeds the class target.
	ReasonMissProb
	// ReasonUnschedulable: the deterministic part of the load already
	// saturates the bus; no error model admits the channel.
	ReasonUnschedulable
	// ReasonBackoff: a re-admission attempt arrived before the
	// channel's capped-exponential backoff expired.
	ReasonBackoff
	// ReasonErrorState: the channel was shed when error-state events
	// raised the measured error rate past what its admission assumed.
	ReasonErrorState
	// ReasonUndeclared: the channel declared no period or deadline, so
	// its miss probability cannot be analyzed.
	ReasonUndeclared
)

// String implements fmt.Stringer (metric label values).
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonMissProb:
		return "miss-probability"
	case ReasonUnschedulable:
		return "unschedulable"
	case ReasonBackoff:
		return "backoff"
	case ReasonErrorState:
		return "error-state"
	case ReasonUndeclared:
		return "undeclared-rate"
	}
	return "?"
}

// ClassTargets carries the per-class target deadline-miss probability.
// Zero disables admission control for that class (everything admitted).
type ClassTargets struct {
	SRT float64
	NRT float64
}

// target returns the class target (0 = class not controlled).
func (t ClassTargets) target(class string) float64 {
	switch class {
	case "SRT":
		return t.SRT
	case "NRT":
		return t.NRT
	}
	return 0
}

// AdmissionConfig parameterises the controller.
type AdmissionConfig struct {
	// Targets are the per-class miss-probability ceilings.
	Targets ClassTargets
	// Analyzer supplies the bit rate, error model and truncation used
	// for every admission analysis. Its Model is the *planned* error
	// law; the controller raises the effective rate when measurement
	// exceeds the plan.
	Analyzer Analyzer
	// Reserved is the deterministic HRT load (calendar slots rendered
	// as highest-priority periodic streams); it interferes with every
	// analyzed channel but is never itself up for admission.
	Reserved []Msg
	// BackoffBase and BackoffCap bound the capped-exponential
	// re-admission backoff (defaults 50 ms and 2 s).
	BackoffBase sim.Duration
	BackoffCap  sim.Duration
}

// ChannelReq identifies one SRT/NRT channel asking for admission.
type ChannelReq struct {
	Node     int
	Subject  uint64
	Class    string // "SRT" or "NRT"
	Prio     can.Prio
	Payload  int
	Period   sim.Duration
	Deadline sim.Duration // relative transmission deadline
}

// Decision is the outcome of one admission request.
type Decision struct {
	Admitted bool
	Reason   Reason
	// MissProb is the channel's predicted deadline-miss probability
	// under the current error model and admitted set.
	MissProb float64
	// Target is the class ceiling the prediction was checked against.
	Target float64
	// RetryAfter is the re-admission backoff on rejection (0 when
	// admitted).
	RetryAfter sim.Duration
}

// Shed describes one channel evicted by re-evaluation.
type Shed struct {
	Channel  ChannelReq
	MissProb float64
	Target   float64
	Reason   Reason
}

// AdmittedChannel is one admitted row of the controller snapshot.
type AdmittedChannel struct {
	Channel    ChannelReq `json:"channel"`
	MissProb   float64    `json:"miss_prob"`
	AdmittedAt sim.Time   `json:"admitted_at"`
}

// Snapshot is the externally visible controller state, served on the
// admin plane at /admission.
type Snapshot struct {
	Enabled       bool              `json:"enabled"`
	Targets       ClassTargets      `json:"targets"`
	PlannedRate   float64           `json:"planned_error_rate"`
	MeasuredRate  float64           `json:"measured_error_rate"`
	EffectiveRate float64           `json:"effective_error_rate"`
	Admitted      []AdmittedChannel `json:"admitted"`
	AdmittedTotal uint64            `json:"admitted_total"`
	RejectedTotal uint64            `json:"rejected_total"`
	ShedTotal     uint64            `json:"shed_total"`
	Rejected      map[string]uint64 `json:"rejected_by_reason"`
	// PredictedMissSRT/NRT are the worst predicted miss probabilities
	// among currently admitted channels of each class — the budget the
	// SLO engine checks measured miss rates against.
	PredictedMissSRT float64 `json:"predicted_miss_srt"`
	PredictedMissNRT float64 `json:"predicted_miss_nrt"`
}

type chanKey struct {
	node    int
	subject uint64
}

type admEntry struct {
	req        ChannelReq
	missProb   float64
	admittedAt sim.Time
	seq        uint64
}

type backoffState struct {
	until sim.Time
	count int
}

// Controller is the probabilistic admission controller. It runs in
// kernel context (all calls single-threaded with the simulation); HTTP
// access goes through sim.Paced.Call like every other kernel reader.
type Controller struct {
	cfg AdmissionConfig
	now func() sim.Time

	entries  []*admEntry
	backoffs map[chanKey]*backoffState
	seq      uint64

	measuredRate float64

	admittedTotal uint64
	rejectedTotal uint64
	shedTotal     uint64
	rejectedBy    map[Reason]uint64
}

// NewController builds a controller. now supplies kernel time (used for
// backoff deadlines and snapshot timestamps).
func NewController(cfg AdmissionConfig, now func() sim.Time) *Controller {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * sim.Millisecond
	}
	if cfg.BackoffCap < cfg.BackoffBase {
		cfg.BackoffCap = 2 * sim.Second
	}
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Controller{
		cfg:        cfg,
		now:        now,
		backoffs:   make(map[chanKey]*backoffState),
		rejectedBy: map[Reason]uint64{},
	}
}

// effectiveModel returns the analyzer with the error rate raised to the
// measured value when measurement exceeds the plan.
func (c *Controller) effectiveModel() Analyzer {
	a := c.cfg.Analyzer
	if c.measuredRate > a.Model.ErrorRate {
		a.Model.ErrorRate = c.measuredRate
	}
	return a
}

// EffectiveRate returns the per-attempt error probability currently
// used for analysis.
func (c *Controller) EffectiveRate() float64 {
	return c.effectiveModel().Model.ErrorRate
}

// analysisSet renders the admission state as a message set for one
// target channel: reserved HRT load keeps the highest priority, every
// other admitted SRT channel is treated as potential interference (the
// EDF band gives no static ordering, so the worst case is all-ahead),
// and NRT channels interfere by their fixed priorities.
func (c *Controller) analysisSet(cand ChannelReq, extra []*admEntry) ([]Msg, int) {
	const (
		prioReserved = 0
		prioSRTOther = 1
		prioTarget   = 2
		prioNRTAfter = 3
	)
	var set []Msg
	for _, r := range c.cfg.Reserved {
		r.Prio = prioReserved
		set = append(set, r)
	}
	for _, e := range extra {
		if e.req == cand {
			continue
		}
		m := Msg{
			Name:     "admitted",
			Period:   e.req.Period,
			Deadline: e.req.Deadline,
			Payload:  e.req.Payload,
		}
		switch {
		case e.req.Class == "SRT" && cand.Class == "SRT":
			m.Prio = prioSRTOther
		case e.req.Class == "SRT":
			// SRT always outranks NRT.
			m.Prio = prioSRTOther
		case cand.Class == "SRT":
			// NRT never outranks an SRT target: blocking only.
			m.Prio = prioNRTAfter
		default:
			// NRT vs NRT: fixed priorities decide.
			if e.req.Prio < cand.Prio {
				m.Prio = prioSRTOther
			} else {
				m.Prio = prioNRTAfter
			}
		}
		set = append(set, m)
	}
	target := len(set)
	set = append(set, Msg{
		Name:     "target",
		Prio:     prioTarget,
		Period:   cand.Period,
		Deadline: cand.Deadline,
		Payload:  cand.Payload,
	})
	return set, target
}

// missProb analyzes one channel against the given co-admitted entries.
func (c *Controller) missProb(a Analyzer, req ChannelReq, others []*admEntry) (float64, error) {
	set, target := c.analysisSet(req, others)
	res, err := a.Response(set, target)
	if err != nil {
		return 1, err
	}
	return res.MissProb, nil
}

// reject books a rejection and arms/extends the channel's backoff.
func (c *Controller) reject(key chanKey, reason Reason, miss, target float64) Decision {
	c.rejectedTotal++
	c.rejectedBy[reason]++
	b := c.backoffs[key]
	if b == nil {
		b = &backoffState{}
		c.backoffs[key] = b
	}
	d := c.cfg.BackoffBase << b.count
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	if b.count < 30 {
		b.count++
	}
	b.until = c.now() + sim.Time(d)
	return Decision{Reason: reason, MissProb: miss, Target: target, RetryAfter: d}
}

// Request decides admission for one channel. Channels of classes
// without a configured target are admitted without analysis (but still
// tracked, so they interfere with controlled classes). Re-requesting an
// already-admitted channel re-evaluates it in place.
func (c *Controller) Request(req ChannelReq) Decision {
	key := chanKey{req.Node, req.Subject}
	target := c.cfg.Targets.target(req.Class)

	// Already admitted: idempotent re-announce.
	for _, e := range c.entries {
		if (chanKey{e.req.Node, e.req.Subject}) == key {
			return Decision{Admitted: true, MissProb: e.missProb, Target: target}
		}
	}

	if b := c.backoffs[key]; b != nil && c.now() < b.until {
		c.rejectedTotal++
		c.rejectedBy[ReasonBackoff]++
		return Decision{Reason: ReasonBackoff, Target: target,
			RetryAfter: sim.Duration(b.until - c.now())}
	}

	if target <= 0 {
		// Uncontrolled class: admit, but keep it in the interference set.
		c.admit(req, 0)
		return Decision{Admitted: true, Target: 0}
	}

	if req.Period <= 0 || req.Deadline <= 0 {
		return c.reject(key, ReasonUndeclared, 0, target)
	}

	a := c.effectiveModel()
	miss, err := c.missProb(a, req, c.entries)
	if err != nil {
		return c.reject(key, ReasonUnschedulable, 1, target)
	}
	if miss > target {
		return c.reject(key, ReasonMissProb, miss, target)
	}

	// The newcomer must not push any already-admitted controlled
	// channel over its own target ("no silent across-the-board
	// degradation": the marginal channel is the one turned away).
	withCand := append(append([]*admEntry(nil), c.entries...),
		&admEntry{req: req})
	for _, e := range c.entries {
		et := c.cfg.Targets.target(e.req.Class)
		if et <= 0 || e.req.Period <= 0 || e.req.Deadline <= 0 {
			continue
		}
		m, err := c.missProb(a, e.req, withCand)
		if err != nil || m > et {
			return c.reject(key, ReasonMissProb, miss, target)
		}
	}

	c.admit(req, miss)
	// Refresh the stored predictions of the co-admitted channels.
	c.refresh(a)
	return Decision{Admitted: true, MissProb: miss, Target: target}
}

func (c *Controller) admit(req ChannelReq, miss float64) {
	c.seq++
	c.admittedTotal++
	delete(c.backoffs, chanKey{req.Node, req.Subject})
	c.entries = append(c.entries, &admEntry{
		req: req, missProb: miss, admittedAt: c.now(), seq: c.seq,
	})
}

// refresh recomputes the stored miss probability of every analyzable
// admitted channel under analyzer a.
func (c *Controller) refresh(a Analyzer) {
	for _, e := range c.entries {
		if c.cfg.Targets.target(e.req.Class) <= 0 ||
			e.req.Period <= 0 || e.req.Deadline <= 0 {
			continue
		}
		if m, err := c.missProb(a, e.req, c.entries); err == nil {
			e.missProb = m
		} else {
			e.missProb = 1
		}
	}
}

// Release withdraws a channel (publication cancelled); its backoff
// state is cleared too.
func (c *Controller) Release(node int, subject uint64) {
	key := chanKey{node, subject}
	for i, e := range c.entries {
		if (chanKey{e.req.Node, e.req.Subject}) == key {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			break
		}
	}
	delete(c.backoffs, key)
}

// SetMeasuredRate installs a measured per-attempt error rate (from
// error-state trace events: error-passive, bus-off, guardian isolation
// all imply the plan underestimated the link) and re-evaluates every
// admitted channel under the raised rate. Channels whose predicted miss
// probability now exceeds their target are shed most-recently-admitted
// first, so the channels admitted earliest keep their guarantees. Shed
// channels get a typed reason and a capped-exponential re-admission
// backoff. The shed list is returned for the caller to apply.
func (c *Controller) SetMeasuredRate(rate float64) []Shed {
	if !validProb(rate) {
		return nil
	}
	c.measuredRate = rate
	a := c.effectiveModel()
	var shed []Shed
	for {
		c.refresh(a)
		// Find the most recently admitted violating channel.
		var victim *admEntry
		for _, e := range c.entries {
			t := c.cfg.Targets.target(e.req.Class)
			if t <= 0 {
				continue
			}
			if e.missProb > t && (victim == nil || e.seq > victim.seq) {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		t := c.cfg.Targets.target(victim.req.Class)
		shed = append(shed, Shed{
			Channel: victim.req, MissProb: victim.missProb,
			Target: t, Reason: ReasonErrorState,
		})
		c.shedTotal++
		key := chanKey{victim.req.Node, victim.req.Subject}
		for i, e := range c.entries {
			if e == victim {
				c.entries = append(c.entries[:i], c.entries[i+1:]...)
				break
			}
		}
		// Arm the re-admission backoff for the shed channel.
		b := c.backoffs[key]
		if b == nil {
			b = &backoffState{}
			c.backoffs[key] = b
		}
		d := c.cfg.BackoffBase << b.count
		if d > c.cfg.BackoffCap || d <= 0 {
			d = c.cfg.BackoffCap
		}
		if b.count < 30 {
			b.count++
		}
		b.until = c.now() + sim.Time(d)
	}
	return shed
}

// MeasuredRate returns the last installed measured error rate.
func (c *Controller) MeasuredRate() float64 { return c.measuredRate }

// PredictedMiss returns the worst predicted deadline-miss probability
// among admitted channels of the class (0 when none admitted) — the
// calibration budget the SLO engine compares measured miss rates
// against.
func (c *Controller) PredictedMiss(class string) float64 {
	var worst float64
	for _, e := range c.entries {
		if e.req.Class == class && e.missProb > worst {
			worst = e.missProb
		}
	}
	return worst
}

// Counts returns the running admitted/rejected/shed totals.
func (c *Controller) Counts() (admitted, rejected, shed uint64) {
	return c.admittedTotal, c.rejectedTotal, c.shedTotal
}

// Snapshot renders the controller state for the admin plane. Kernel
// context.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Enabled:          true,
		Targets:          c.cfg.Targets,
		PlannedRate:      c.cfg.Analyzer.Model.ErrorRate,
		MeasuredRate:     c.measuredRate,
		EffectiveRate:    c.EffectiveRate(),
		AdmittedTotal:    c.admittedTotal,
		RejectedTotal:    c.rejectedTotal,
		ShedTotal:        c.shedTotal,
		Rejected:         map[string]uint64{},
		PredictedMissSRT: c.PredictedMiss("SRT"),
		PredictedMissNRT: c.PredictedMiss("NRT"),
		Admitted:         []AdmittedChannel{},
	}
	for r, n := range c.rejectedBy {
		s.Rejected[r.String()] = n
	}
	for _, e := range c.entries {
		s.Admitted = append(s.Admitted, AdmittedChannel{
			Channel: e.req, MissProb: e.missProb, AdmittedAt: e.admittedAt,
		})
	}
	sort.Slice(s.Admitted, func(i, j int) bool {
		a, b := s.Admitted[i].Channel, s.Admitted[j].Channel
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Subject < b.Subject
	})
	return s
}
