package prob

import (
	"math"
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

// TestInjectorRoundTrip: Injector() and FromInjector are inverses, so
// the chaos harness and the analyzer provably share one distribution.
func TestInjectorRoundTrip(t *testing.T) {
	cases := []ErrorModel{
		{},
		{ErrorRate: 0.2},
		{OmissionRate: 0.1, VictimProb: 0.5, Receivers: 4},
		{ErrorRate: 0.15, OmissionRate: 0.05, VictimProb: 1, Receivers: 9},
	}
	for _, m := range cases {
		got, ok := FromInjector(m.Injector())
		if !ok {
			t.Fatalf("model %+v: FromInjector failed", m)
		}
		if math.Abs(got.ErrorRate-m.ErrorRate) > 1e-12 ||
			got.OmissionRate != m.OmissionRate || got.VictimProb != m.VictimProb {
			t.Errorf("model %+v round-tripped to %+v", m, got)
		}
	}
}

// TestFromInjectorRecognizers covers the single-injector cases and the
// rejections (non-stationary injectors cannot back an admission model).
func TestFromInjectorRecognizers(t *testing.T) {
	if m, ok := FromInjector(can.RandomErrors{Rate: 0.3}); !ok || m.ErrorRate != 0.3 {
		t.Errorf("RandomErrors: %+v ok=%v", m, ok)
	}
	if m, ok := FromInjector(can.TargetedBitErrors{Victim: 2, Rate: 0.4, Prio: -1}); !ok || m.ErrorRate != 0.4 {
		t.Errorf("TargetedBitErrors: %+v ok=%v", m, ok)
	}
	if _, ok := FromInjector(can.TargetedBitErrors{Victim: 2, Rate: 0.4, Prio: 3}); ok {
		t.Error("prio-filtered targeted injector must not map to a stationary model")
	}
	if _, ok := FromInjector(can.BurstErrors{Start: 0, End: sim.Time(sim.Millisecond)}); ok {
		t.Error("burst injector must not map to a stationary model")
	}
	if _, ok := FromInjector(can.AdversarialK{K: 2, Prio: -1}); ok {
		t.Error("adversarial injector must not map to a stationary model")
	}
	// Errors behind an omission draw are conditioned; refuse to fold.
	bad := can.Chain{
		can.NewRandomOmissions(0.1, 1, 4),
		can.RandomErrors{Rate: 0.2},
	}
	if _, ok := FromInjector(bad); ok {
		t.Error("omission-before-error chain must not fold")
	}
}

// TestModelMatchesInjectorEmpirically drives the injector returned by
// the model with the simulation RNG and checks the empirical per-attempt
// frequencies against the analytic probabilities the analyzer uses —
// the "no drift between what chaos injects and what admission assumes"
// guarantee, verified by sampling.
func TestModelMatchesInjectorEmpirically(t *testing.T) {
	m := ErrorModel{ErrorRate: 0.2, OmissionRate: 0.25, VictimProb: 0.8, Receivers: 5}
	inj := m.Injector()
	k := sim.NewKernel(42)
	rng := k.RNG()
	f := can.Frame{ID: can.MakeID(10, 0, 7), Data: []byte{1, 2, 3}}

	const trials = 200_000
	var errs, omits, victimHits int
	for i := 0; i < trials; i++ {
		v := inj.Judge(f, 0, 1, 0, rng)
		switch v.Kind {
		case can.FaultError:
			errs++
		case can.FaultOmission:
			omits++
			if v.Victims[3] {
				victimHits++
			}
		}
	}
	tol := 0.01
	if got := float64(errs) / trials; math.Abs(got-m.RetransmitProb()) > tol {
		t.Errorf("empirical error rate %v, model %v", got, m.RetransmitProb())
	}
	// Per-receiver loss: P[omission marked ∧ receiver victim] among
	// non-errored attempts. The analyzer's DeliveryLossProb conditions
	// on the delivering (non-errored) attempt.
	nonErr := trials - errs
	if got := float64(victimHits) / float64(nonErr); math.Abs(got-m.DeliveryLossProb()) > tol {
		t.Errorf("empirical per-receiver loss %v, model %v", got, m.DeliveryLossProb())
	}
	// Omission marking rate conditional on no error ≈ OmissionRate times
	// P[at least one victim] — with VictimProb 0.8 over 4 receivers the
	// no-victim case is negligible but still accounted for.
	pAny := 1 - math.Pow(1-m.VictimProb, float64(m.Receivers-1))
	if got := float64(omits) / float64(nonErr); math.Abs(got-m.OmissionRate*pAny) > tol {
		t.Errorf("empirical omission rate %v, model %v", got, m.OmissionRate*pAny)
	}
}

func TestModelValidate(t *testing.T) {
	if err := (ErrorModel{ErrorRate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 must fail validation")
	}
	if err := (ErrorModel{OmissionRate: 0.1, VictimProb: 1}).Validate(); err == nil {
		t.Error("omissions without a receiver count must fail validation")
	}
	if err := (ErrorModel{ErrorRate: 0.5, OmissionRate: 0.1, VictimProb: 1, Receivers: 3}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}
