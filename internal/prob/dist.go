// Package prob implements a convolution-based probabilistic worst-case
// response-time analysis for the CAN bus, following the structure of the
// improved convolution analyses of probabilistic CAN response time: each
// transmission's error behaviour is a discrete distribution over extra
// bus time (retransmissions plus error signalling), the distributions of
// every transmission in a busy window are convolved, and the result is a
// per-channel response-time distribution discretized in bus-bit time.
// The deterministic omission-degree-k analysis of internal/calendar and
// internal/baseline is recovered exactly as the point-mass special case
// (every transmission suffers exactly k errors with probability 1).
//
// On top of the analyzer sits an admission controller (admission.go):
// HRT stays deterministic, SRT/NRT channels are admitted up to a
// configurable per-class target deadline-miss probability and shed again
// with typed reasons when the observed error state degrades the model.
package prob

import (
	"fmt"
	"math"

	"canec/internal/sim"
)

// Dist is a discrete probability distribution over response times,
// discretized in ticks of one bus-bit time. p[i] holds P[X = i ticks];
// mass beyond the analysis horizon accumulates in over (and is treated
// as "missed" by every tail query — truncation is conservative).
type Dist struct {
	tick sim.Duration
	p    []float64
	over float64
}

// atom is one point of a sparse component distribution: probability pr
// of adding dt ticks.
type atom struct {
	dt int
	pr float64
}

// pointMass returns the distribution concentrated at the given tick.
// Ticks at or beyond the horizon land in the overflow mass.
func pointMass(tick sim.Duration, at, horizon int) *Dist {
	d := &Dist{tick: tick, p: make([]float64, horizon)}
	if at < 0 {
		at = 0
	}
	if at >= horizon {
		d.over = 1
		return d
	}
	d.p[at] = 1
	return d
}

// convolveAtoms convolves d in place with a sparse component
// distribution given as atoms. Mass pushed past the horizon joins the
// overflow. The atoms' probabilities should sum to ≤ 1; any deficit
// (truncated component mass) is added to the overflow as well, keeping
// every tail estimate an upper bound.
func (d *Dist) convolveAtoms(atoms []atom) {
	var mass float64
	for _, a := range atoms {
		mass += a.pr
	}
	next := make([]float64, len(d.p))
	var over float64
	for i, pi := range d.p {
		if pi == 0 {
			continue
		}
		for _, a := range atoms {
			j := i + a.dt
			if j >= len(next) {
				over += pi * a.pr
				continue
			}
			next[j] += pi * a.pr
		}
		// Truncated component mass: the convolution partner had
		// probability (1 - mass) of exceeding its own truncation bound.
		over += pi * (1 - mass)
	}
	d.p = next
	d.over += over
}

// Tick returns the duration of one distribution tick.
func (d *Dist) Tick() sim.Duration { return d.tick }

// Mass returns the total in-range probability mass (1 − overflow).
func (d *Dist) Mass() float64 {
	var m float64
	for _, pi := range d.p {
		m += pi
	}
	return m
}

// Overflow returns the probability mass beyond the analysis horizon.
// It counts against every tail and miss-probability estimate.
func (d *Dist) Overflow() float64 { return d.over }

// TailAbove returns P[X > t], counting overflow mass as above any t.
// Durations between ticks round down, so partial ticks count toward the
// tail (conservative).
func (d *Dist) TailAbove(t sim.Duration) float64 {
	if d.tick <= 0 {
		return d.over
	}
	limit := int(t / d.tick) // X > t iff ticks(X) > floor(t/tick) when X has integer ticks
	var tail float64
	for i := len(d.p) - 1; i > limit; i-- {
		tail += d.p[i]
	}
	return tail + d.over
}

// Quantile returns the smallest duration t with P[X ≤ t] ≥ q. ok is
// false when the quantile falls in the overflow mass beyond the
// horizon; the returned duration is then the horizon itself (a lower
// bound on the true quantile).
func (d *Dist) Quantile(q float64) (t sim.Duration, ok bool) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var cum float64
	for i, pi := range d.p {
		cum += pi
		if cum >= q && pi > 0 {
			return sim.Duration(i) * d.tick, true
		}
	}
	return sim.Duration(len(d.p)) * d.tick, false
}

// Mean returns the expectation over the in-range mass, attributing
// overflow mass to the horizon (a lower bound when mass overflowed).
func (d *Dist) Mean() sim.Duration {
	var s float64
	for i, pi := range d.p {
		s += float64(i) * pi
	}
	s += float64(len(d.p)) * d.over
	return sim.Duration(s * float64(d.tick))
}

// MaxSupport returns the largest duration carrying in-range mass above
// eps, or 0 for an (effectively) empty distribution.
func (d *Dist) MaxSupport(eps float64) sim.Duration {
	for i := len(d.p) - 1; i >= 0; i-- {
		if d.p[i] > eps {
			return sim.Duration(i) * d.tick
		}
	}
	return 0
}

// String renders a compact summary for logs and the canecplan output.
func (d *Dist) String() string {
	p50, _ := d.Quantile(0.50)
	p99, _ := d.Quantile(0.99)
	return fmt.Sprintf("p50=%v p99=%v overflow=%.2g", p50, p99, d.over)
}

// sanity checks a probability parameter.
func validProb(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }
