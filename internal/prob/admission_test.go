package prob

import (
	"testing"

	"canec/internal/sim"
)

func testController(targetSRT float64, rate float64) (*Controller, *sim.Time) {
	now := new(sim.Time)
	cfg := AdmissionConfig{
		Targets:  ClassTargets{SRT: targetSRT},
		Analyzer: Analyzer{Model: ErrorModel{ErrorRate: rate}},
	}
	return NewController(cfg, func() sim.Time { return *now }), now
}

func srtReq(node int, subject uint64, period, deadline sim.Duration) ChannelReq {
	return ChannelReq{Node: node, Subject: subject, Class: "SRT",
		Payload: 8, Period: period, Deadline: deadline}
}

// TestAdmitWithinTarget: a lightly loaded channel with a generous
// deadline is admitted and its predicted miss probability is below the
// target.
func TestAdmitWithinTarget(t *testing.T) {
	c, _ := testController(0.05, 0.1)
	d := c.Request(srtReq(0, 1, 5*sim.Millisecond, 3*sim.Millisecond))
	if !d.Admitted {
		t.Fatalf("rejected: %+v", d)
	}
	if d.MissProb > 0.05 {
		t.Fatalf("admitted with miss prob %v above target", d.MissProb)
	}
	if a, r, s := c.Counts(); a != 1 || r != 0 || s != 0 {
		t.Fatalf("counts %d/%d/%d", a, r, s)
	}
}

// TestRejectTightDeadline: a deadline shorter than one worst-case frame
// cannot be met and is rejected with the typed miss-probability reason
// and a backoff hint.
func TestRejectTightDeadline(t *testing.T) {
	c, _ := testController(0.05, 0.1)
	d := c.Request(srtReq(0, 1, 5*sim.Millisecond, 100*sim.Microsecond))
	if d.Admitted {
		t.Fatal("tight deadline admitted")
	}
	if d.Reason != ReasonMissProb {
		t.Fatalf("reason %v, want %v", d.Reason, ReasonMissProb)
	}
	if d.RetryAfter <= 0 {
		t.Fatal("rejection carries no backoff hint")
	}
}

// TestRejectUndeclared: channels without declared period/deadline
// cannot be analyzed and are rejected with the typed reason.
func TestRejectUndeclared(t *testing.T) {
	c, _ := testController(0.05, 0.1)
	if d := c.Request(srtReq(0, 1, 0, 0)); d.Admitted || d.Reason != ReasonUndeclared {
		t.Fatalf("undeclared channel: %+v", d)
	}
}

// TestBackoffCappedExponential: repeated rejected requests back off
// exponentially up to the cap, and requests inside the window are
// rejected with ReasonBackoff without re-analysis.
func TestBackoffCappedExponential(t *testing.T) {
	c, now := testController(0.05, 0.1)
	req := srtReq(0, 1, 5*sim.Millisecond, 100*sim.Microsecond)

	d1 := c.Request(req)
	if d1.Reason != ReasonMissProb {
		t.Fatalf("first rejection reason %v", d1.Reason)
	}
	// Inside the window: backoff reason, no analysis.
	d2 := c.Request(req)
	if d2.Reason != ReasonBackoff {
		t.Fatalf("second rejection reason %v, want backoff", d2.Reason)
	}
	// Step past windows repeatedly: the armed backoff must grow and cap.
	last := d1.RetryAfter
	grew := false
	for i := 0; i < 12; i++ {
		*now += sim.Time(2 * sim.Second)
		d := c.Request(req)
		if d.Reason != ReasonMissProb {
			t.Fatalf("iter %d: reason %v", i, d.Reason)
		}
		if d.RetryAfter > last {
			grew = true
		}
		if d.RetryAfter > 2*sim.Second {
			t.Fatalf("iter %d: backoff %v above cap", i, d.RetryAfter)
		}
		last = d.RetryAfter
	}
	if !grew {
		t.Fatal("backoff never grew")
	}
	if last != 2*sim.Second {
		t.Fatalf("backoff did not reach the cap: %v", last)
	}
}

// TestNewcomerCannotDegradeAdmitted: once channels are admitted, a
// newcomer whose interference would push them over target is the one
// rejected (no silent across-the-board degradation).
func TestNewcomerCannotDegradeAdmitted(t *testing.T) {
	c, _ := testController(0.02, 0.15)
	// First channel: comfortable.
	if d := c.Request(srtReq(0, 1, 2*sim.Millisecond, 1500*sim.Microsecond)); !d.Admitted {
		t.Fatalf("first channel rejected: %+v", d)
	}
	// Greedy newcomers: each admitted channel adds interference. At
	// some point a newcomer must be rejected while ALL previously
	// admitted channels keep their target.
	rejected := false
	for s := uint64(2); s <= 12; s++ {
		d := c.Request(srtReq(int(s%4), s, 2*sim.Millisecond, 1500*sim.Microsecond))
		if !d.Admitted {
			rejected = true
			if d.Reason != ReasonMissProb && d.Reason != ReasonUnschedulable {
				t.Fatalf("subject %d: reason %v", s, d.Reason)
			}
			break
		}
	}
	if !rejected {
		t.Fatal("controller admitted unbounded load")
	}
	for _, e := range c.Snapshot().Admitted {
		if e.MissProb > 0.02 {
			t.Errorf("admitted channel %d predicts miss %v above target", e.Channel.Subject, e.MissProb)
		}
	}
}

// TestErrorStateShedsMarginalLIFO: raising the measured error rate
// re-evaluates the admitted set and sheds the most recently admitted
// violating channels first, with the typed error-state reason and an
// armed re-admission backoff.
func TestErrorStateShedsMarginalLIFO(t *testing.T) {
	c, now := testController(0.05, 0.02)
	// Admit three channels under the low planned rate. Deadlines are
	// chosen so the earliest channel is robust (generous deadline) and
	// later ones are marginal.
	reqs := []ChannelReq{
		srtReq(0, 1, 4*sim.Millisecond, 3500*sim.Microsecond),
		srtReq(1, 2, 4*sim.Millisecond, 1200*sim.Microsecond),
		srtReq(2, 3, 4*sim.Millisecond, 1200*sim.Microsecond),
	}
	for i, r := range reqs {
		if d := c.Request(r); !d.Admitted {
			t.Fatalf("channel %d rejected under planned rate: %+v", i, d)
		}
	}
	// The measured rate jumps (error-passive observed on the wire).
	shed := c.SetMeasuredRate(0.30)
	if len(shed) == 0 {
		t.Fatal("raised rate shed nothing")
	}
	for _, s := range shed {
		if s.Reason != ReasonErrorState {
			t.Errorf("shed reason %v, want %v", s.Reason, ReasonErrorState)
		}
		if s.Channel.Subject == 1 {
			t.Error("the earliest, robust channel was shed")
		}
	}
	// LIFO: subject 3 (admitted last) must be shed before subject 2.
	if shed[0].Channel.Subject != 3 {
		t.Errorf("first shed subject %d, want most recently admitted (3)", shed[0].Channel.Subject)
	}
	// Survivors all meet the target under the raised rate.
	snap := c.Snapshot()
	for _, e := range snap.Admitted {
		if e.MissProb > 0.05 {
			t.Errorf("survivor %d misses at %v", e.Channel.Subject, e.MissProb)
		}
	}
	if snap.EffectiveRate != 0.30 {
		t.Errorf("effective rate %v", snap.EffectiveRate)
	}
	// Shed channels are in backoff: immediate re-request is refused.
	for _, s := range shed {
		if d := c.Request(s.Channel); d.Admitted || d.Reason != ReasonBackoff {
			t.Errorf("shed channel %d re-admitted immediately: %+v", s.Channel.Subject, d)
		}
	}
	// After the rate recovers and the backoff expires, re-admission
	// succeeds again.
	c.SetMeasuredRate(0)
	*now += sim.Time(10 * sim.Second)
	if d := c.Request(shed[0].Channel); !d.Admitted {
		t.Errorf("recovered channel not re-admitted: %+v", d)
	}
}

// TestReleaseFreesCapacity: releasing an admitted channel removes its
// interference so a previously rejected newcomer fits.
func TestReleaseFreesCapacity(t *testing.T) {
	c, now := testController(0.02, 0.15)
	var admitted []ChannelReq
	var rejectedReq ChannelReq
	for s := uint64(1); s <= 12; s++ {
		r := srtReq(int(s%4), s, 2*sim.Millisecond, 1500*sim.Microsecond)
		if d := c.Request(r); d.Admitted {
			admitted = append(admitted, r)
		} else {
			rejectedReq = r
			break
		}
	}
	if rejectedReq.Subject == 0 {
		t.Skip("set never saturated (analysis too permissive)")
	}
	for _, r := range admitted {
		c.Release(r.Node, r.Subject)
	}
	*now += sim.Time(10 * sim.Second) // clear the backoff window
	if d := c.Request(rejectedReq); !d.Admitted {
		t.Fatalf("newcomer still rejected after releases: %+v", d)
	}
}

// TestUncontrolledClassAdmitted: a class without a target is admitted
// but still tracked as interference.
func TestUncontrolledClassAdmitted(t *testing.T) {
	c, _ := testController(0.05, 0.1)
	d := c.Request(ChannelReq{Node: 0, Subject: 9, Class: "NRT", Prio: 252,
		Payload: 8, Period: sim.Millisecond, Deadline: sim.Millisecond})
	if !d.Admitted {
		t.Fatalf("uncontrolled NRT rejected: %+v", d)
	}
	if len(c.Snapshot().Admitted) != 1 {
		t.Fatal("uncontrolled channel not tracked")
	}
}

// TestSnapshotShape: the snapshot carries the fields the admin plane
// and canecstat render.
func TestSnapshotShape(t *testing.T) {
	c, _ := testController(0.05, 0.1)
	c.Request(srtReq(0, 1, 5*sim.Millisecond, 3*sim.Millisecond))
	c.Request(srtReq(1, 2, 5*sim.Millisecond, 50*sim.Microsecond)) // rejected
	s := c.Snapshot()
	if !s.Enabled || s.AdmittedTotal != 1 || s.RejectedTotal != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Rejected[ReasonMissProb.String()] != 1 {
		t.Fatalf("rejected-by-reason %+v", s.Rejected)
	}
	if s.PredictedMissSRT <= 0 {
		t.Fatal("predicted SRT miss missing")
	}
	if s.PlannedRate != 0.1 || s.EffectiveRate != 0.1 {
		t.Fatalf("rates %+v", s)
	}
}
