package perf_test

import (
	"runtime"
	"strings"
	"testing"

	"canec"
	"canec/internal/obs"
	"canec/internal/obs/perf"
	"canec/internal/sim"
)

// newSRTSystem builds a 2-node system with one announced SRT channel and
// a subscriber counting deliveries.
func newSRTSystem(t testing.TB) (*canec.System, *canec.SRTEC, *int) {
	t.Helper()
	sys, err := canec.NewSystem(canec.SystemConfig{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.Node(0).MW.SRTEC(0x41)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(canec.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	got := new(int)
	sub, err := sys.Node(1).MW.SRTEC(0x41)
	if err != nil {
		t.Fatal(err)
	}
	err = sub.Subscribe(canec.ChannelAttrs{}, canec.SubscribeAttrs{},
		func(canec.Event, canec.DeliveryInfo) { *got++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys, pub, got
}

func runSRTTraffic(sys *canec.System, pub *canec.SRTEC, n int) {
	for r := 0; r < n; r++ {
		sys.K.At(canec.Time(r)*200*canec.Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(canec.Event{Subject: 0x41, Payload: []byte{1, 2, 3},
				Attrs: canec.EventAttrs{Deadline: now + 5*canec.Millisecond}})
		})
	}
	sys.Run(canec.Time(n)*200*canec.Microsecond + canec.Second)
}

func stageOps(snap perf.Snapshot, stage string) uint64 {
	var total uint64
	for _, s := range snap.Stages {
		if s.Stage == stage {
			total += s.Ops
		}
	}
	return total
}

func TestProfilerEndToEnd(t *testing.T) {
	sys, pub, got := newSRTSystem(t)
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	prof.SetBusySource(func() sim.Duration { return sys.Bus.Stats().BusyTime })

	const n = 50
	runSRTTraffic(sys, pub, n)
	if *got != n {
		t.Fatalf("delivered %d of %d", *got, n)
	}

	snap := prof.Snapshot()
	if snap.Steps == 0 {
		t.Fatal("no kernel steps recorded")
	}
	if snap.EventsPerSec <= 0 {
		t.Fatalf("events/s: %v", snap.EventsPerSec)
	}
	if snap.HeapHighWater < 1 {
		t.Fatalf("heap high-water: %d", snap.HeapHighWater)
	}
	if snap.Delivered != n {
		t.Fatalf("delivered frames: %d want %d", snap.Delivered, n)
	}
	if snap.AllocsPerDelivered <= 0 {
		t.Fatalf("allocs per delivered: %v", snap.AllocsPerDelivered)
	}
	if snap.BusyVirtualNs <= 0 {
		t.Fatalf("busy virtual ns: %d", snap.BusyVirtualNs)
	}
	for _, stage := range []string{"enqueue", "heap", "dispatch", "delivery"} {
		if stageOps(snap, stage) == 0 {
			t.Errorf("stage %q recorded no ops", stage)
		}
	}
	// Arbitration and codec run per wire frame.
	if stageOps(snap, "arbitration") < n || stageOps(snap, "codec") < n {
		t.Errorf("bus stages under-counted: arb=%d codec=%d",
			stageOps(snap, "arbitration"), stageOps(snap, "codec"))
	}
	// Enqueue and delivery carry the SRT class tag.
	var srtTagged bool
	for _, s := range snap.Stages {
		if s.Class == "srt" && (s.Stage == "enqueue" || s.Stage == "delivery") {
			srtTagged = true
		}
	}
	if !srtTagged {
		t.Error("no SRT-classed enqueue/delivery buckets")
	}
}

func TestProfilerDetach(t *testing.T) {
	sys, pub, _ := newSRTSystem(t)
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	prof.Detach()
	if sys.K.Probe() != nil {
		t.Fatal("probe still installed after Detach")
	}
	runSRTTraffic(sys, pub, 5)
	if len(prof.Snapshot().Stages) != 0 {
		t.Fatal("detached profiler recorded stages")
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *perf.Profiler
	p.StageNs(sim.ProbeHeap, sim.ProbeClassNone, 1)
	p.AttachKernel(sim.NewKernel(1))
	p.SetBusySource(nil)
	p.Detach()
	p.Register(obs.NewRegistry())
	if snap := p.Snapshot(); len(snap.Stages) != 0 || snap.Steps != 0 {
		t.Fatal("nil profiler snapshot not zero")
	}
}

func TestProfilerRegister(t *testing.T) {
	sys, pub, _ := newSRTSystem(t)
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	reg := obs.NewRegistry()
	prof.Register(reg)
	runSRTTraffic(sys, pub, 10)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"canec_profile_stage_busy_nanoseconds",
		"canec_profile_stage_ops",
		`stage="delivery"`,
		"canec_profile_events_per_second",
		"canec_profile_heap_high_water",
		"canec_profile_idle_virtual_nanoseconds",
		"canec_profile_allocs_per_frame",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// chainMallocs runs n SRT publish→deliver round trips and returns the
// heap allocations observed during the kernel run (publishes are
// scheduled beforehand, so only the chain itself is measured).
func chainMallocs(t *testing.T, n int, attach bool) uint64 {
	t.Helper()
	sys, pub, got := newSRTSystem(t)
	if attach {
		prof := &perf.Profiler{}
		prof.AttachKernel(sys.K)
	}
	for r := 0; r < n; r++ {
		sys.K.At(canec.Time(r)*200*canec.Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(canec.Event{Subject: 0x41, Payload: []byte{1, 2, 3},
				Attrs: canec.EventAttrs{Deadline: now + 5*canec.Millisecond}})
		})
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sys.Run(canec.Time(n)*200*canec.Microsecond + canec.Second)
	runtime.ReadMemStats(&m1)
	if *got != n {
		t.Fatalf("delivered %d of %d", *got, n)
	}
	return m1.Mallocs - m0.Mallocs
}

// TestProfilerAddsNoPerFrameAllocs is the overhead bound for the whole
// instrumentation layer: running the full publish→deliver chain with the
// profiler attached must allocate no more per frame than running it with
// the profiler off. The stage table is flat arrays and ProbeNow is a
// monotonic clock read, so the two runs should differ only by fixed
// setup noise, not by anything proportional to traffic.
func TestProfilerAddsNoPerFrameAllocs(t *testing.T) {
	const n = 1000
	off := chainMallocs(t, n, false)
	on := chainMallocs(t, n, true)
	// Allow a small fixed slack (GC bookkeeping, ReadMemStats itself);
	// anything O(n) would blow way past it.
	slack := uint64(n / 20)
	if on > off+slack {
		t.Fatalf("profiler-on chain allocated %d vs %d off (+%d > slack %d)",
			on, off, on-off, slack)
	}
	t.Logf("chain allocs over %d frames: off=%d (%.2f/frame) on=%d (%.2f/frame)",
		n, off, float64(off)/n, on, float64(on)/n)
}

// TestChainAllocsPerFramePinned pins the absolute per-frame allocation
// budget of the profiler-off SRT publish→deliver chain so regressions in
// the hot path show up in `go test`, not just in benchmark trend lines.
func TestChainAllocsPerFramePinned(t *testing.T) {
	const n = 1000
	off := chainMallocs(t, n, false)
	per := float64(off) / n
	// Current measured cost is logged by TestProfilerAddsNoPerFrameAllocs;
	// the ceiling leaves ~30% headroom over it.
	const ceiling = 50.0
	if per > ceiling {
		t.Fatalf("profiler-off chain: %.2f allocs/frame, budget %.1f", per, ceiling)
	}
}

// TestProfilerStageNsZeroAllocs pins the cost of the probe fast path: a
// StageNs call must not allocate, so a profiled kernel pays only the two
// clock reads per instrumented site.
func TestProfilerStageNsZeroAllocs(t *testing.T) {
	prof := &perf.Profiler{}
	per := testing.AllocsPerRun(500, func() {
		t0 := sim.ProbeNow()
		prof.StageNs(sim.ProbeDispatch, sim.ProbeClassSRT, sim.ProbeNow()-t0)
	})
	if per != 0 {
		t.Fatalf("StageNs allocated %.2f per call, want 0", per)
	}
}
