package suite

import (
	"testing"

	"canec/internal/obs/perf"
)

// TestCasesRunSmall drives every recordable case at a tiny iteration
// count: the full record path (workload, measurement, result assembly)
// must work for each before canecbench can trust it.
func TestCasesRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark case once")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			res := perf.Run(c, perf.RunConfig{Iters: 2})
			if res.Name != c.Name {
				t.Fatalf("name: %q", res.Name)
			}
			if res.Iters != 2 || res.NsPerOp <= 0 {
				t.Fatalf("result: %+v", res)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("EndToEndSRT"); !ok {
		t.Fatal("EndToEndSRT not found")
	}
	if _, ok := Find("NoSuchCase"); ok {
		t.Fatal("phantom case found")
	}
}

// TestEndToEndCasesReportLatency checks the quantile plumbing on a real
// workload: the SRT chain must produce a populated latency histogram.
func TestEndToEndCasesReportLatency(t *testing.T) {
	s := endToEndSRT(20)
	if s.Hist == nil || s.Hist.N() == 0 {
		t.Fatal("SRT case recorded no latencies")
	}
	if s.FramesPerOp != 1 {
		t.Fatalf("frames/op: %v", s.FramesPerOp)
	}
}
