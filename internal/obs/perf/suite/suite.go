// Package suite holds the recordable benchmark cases behind the
// BENCH_*.json trajectory: the same workloads as the root bench_test.go
// harness (experiment tables E1–E10, kernel/bus micro-benchmarks, full
// publish→deliver chains, relay loopback throughput), expressed as
// perf.Case functions so canecbench can run them outside `go test` and
// the regression gate can diff any two recorded points.
package suite

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/experiments"
	"canec/internal/gateway"
	"canec/internal/obs/perf"
	"canec/internal/relay"
	"canec/internal/sim"
	"canec/internal/stats"
)

// latHist builds the latency histogram all end-to-end cases share:
// virtual-time publish→deliver latency in nanoseconds, 1µs–10s range.
func latHist() *stats.LogHistogram {
	return stats.NewLogHistogram("latency_ns", 1e3, 1e10, 96)
}

// simKernel measures raw event throughput of the discrete-event kernel.
func simKernel(n int) perf.Sample {
	k := sim.NewKernel(1)
	done := 0
	var tick func()
	tick = func() {
		done++
		if done < n {
			k.After(100, tick)
		}
	}
	k.After(100, tick)
	k.Run(sim.MaxTime)
	if done < n {
		panic("kernel stalled")
	}
	return perf.Sample{}
}

// frameWireBits measures the stuffed wire-length computation.
func frameWireBits(n int) perf.Sample {
	f := can.Frame{ID: can.MakeID(42, 17, 9999), Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	total := 0
	for i := 0; i < n; i++ {
		total += can.WireBits(f)
	}
	if total == 0 {
		panic("no bits")
	}
	return perf.Sample{}
}

// busSaturated measures simulated frames/s on a saturated 8-node bus.
func busSaturated(n int) perf.Sample {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, can.DefaultBitRate)
	const nodes = 8
	for i := 0; i < nodes; i++ {
		bus.Attach(can.TxNode(i))
	}
	sent := 0
	var submit func(node int)
	submit = func(node int) {
		if sent >= n {
			return
		}
		sent++
		f := can.Frame{
			ID:   can.MakeID(can.Prio(10+node), can.TxNode(node), can.Etag(sent&0x3fff)),
			Data: []byte{byte(sent), 0, 0, 0, 0, 0, 0, 0},
		}
		bus.Controller(node).Submit(f, can.SubmitOpts{Done: func(bool, sim.Time) {
			submit(node)
		}})
	}
	for i := 0; i < nodes; i++ {
		submit(i)
	}
	k.Run(sim.MaxTime)
	if got := bus.Stats().FramesOK; got < uint64(n) {
		panic(fmt.Sprintf("only %d frames for n=%d", got, n))
	}
	return perf.Sample{FramesPerOp: 1}
}

// endToEndHRT measures full-stack cost per delivered HRT event.
func endToEndHRT(n int) perf.Sample {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: 0x31, Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Seed: 1, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	pub, _ := sys.Node(0).MW.HRTEC(0x31)
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	// Publish instants are deterministic (one per round), so the payload
	// carries the round index and the subscriber reconstructs the
	// publish time — per-event latency without observer overhead in the
	// measured workload.
	pubAt := func(r uint32) sim.Time {
		return sys.Cfg.Epoch + sim.Time(r)*cal.Round - 100*sim.Microsecond
	}
	hist := latHist()
	got := 0
	sub, _ := sys.Node(1).MW.HRTEC(0x31)
	sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(ev core.Event, di core.DeliveryInfo) {
			got++
			if at := pubAt(binary.LittleEndian.Uint32(ev.Payload)); di.DeliveredAt > at {
				hist.Observe(float64(di.DeliveredAt - at))
			}
		}, nil)
	for r := 0; r < n; r++ {
		payload := binary.LittleEndian.AppendUint32(nil, uint32(r))
		sys.K.At(pubAt(uint32(r)), func() {
			pub.Publish(core.Event{Subject: 0x31, Payload: payload})
		})
	}
	sys.Run(sys.Cfg.Epoch + sim.Time(n)*cal.Round - 1)
	if got != n {
		panic(fmt.Sprintf("delivered %d of %d", got, n))
	}
	return perf.Sample{FramesPerOp: 1, Hist: hist}
}

// endToEndSRT measures full-stack cost per delivered SRT event.
func endToEndSRT(n int) perf.Sample {
	sys, err := core.NewSystem(core.SystemConfig{Nodes: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	pub, _ := sys.Node(0).MW.SRTEC(0x41)
	pub.Announce(core.ChannelAttrs{}, nil)
	// As in endToEndHRT: the payload carries the publish sequence, whose
	// publish instant is deterministic, so per-event latency needs no
	// observer in the measured workload.
	pubAt := func(r uint32) sim.Time { return sim.Time(r) * 200 * sim.Microsecond }
	hist := latHist()
	got := 0
	sub, _ := sys.Node(1).MW.SRTEC(0x41)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(ev core.Event, di core.DeliveryInfo) {
			got++
			if at := pubAt(binary.LittleEndian.Uint32(ev.Payload)); di.DeliveredAt > at {
				hist.Observe(float64(di.DeliveredAt - at))
			}
		}, nil)
	for r := 0; r < n; r++ {
		payload := binary.LittleEndian.AppendUint32(nil, uint32(r))
		sys.K.At(pubAt(uint32(r)), func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: 0x41, Payload: payload,
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
	}
	sys.Run(sim.Time(n)*200*sim.Microsecond + sim.Second)
	if got != n {
		panic(fmt.Sprintf("delivered %d of %d", got, n))
	}
	return perf.Sample{FramesPerOp: 1, Hist: hist}
}

// relayThroughput measures end-to-end frames/s over a loopback TCP link:
// encode → queue → write → read → decode → deliver.
func relayThroughput(n int) perf.Sample {
	cfg := relay.Config{Segment: "bench", HeartbeatEvery: time.Second}
	srv, err := relay.Serve("127.0.0.1:0", cfg)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	var got atomic.Uint64
	srv.OnFrame(func(gateway.RemoteEvent) { got.Add(1) })
	srv.Subscribe(0xF7, nil, nil)
	up := relay.Dial(srv.Addr().String(), cfg)
	defer up.Close()
	deadline := time.Now().Add(5 * time.Second)
	for (!up.Connected() || srv.Peers() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	re := gateway.RemoteEvent{
		Class: core.HRT, Subject: 0xF7, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Origin: 3, OriginSeg: "bench-peer", TraceID: 1,
	}
	for i := 0; i < n; i++ {
		re.TraceID = uint64(i + 1)
		if err := up.Send(re, time.Time{}); err != nil {
			panic(err)
		}
	}
	for got.Load() < uint64(n) {
		time.Sleep(50 * time.Microsecond)
	}
	return perf.Sample{FramesPerOp: 1}
}

// experimentCase wraps one experiment table: each iteration regenerates
// the table end to end with a fresh seed, reporting the row count so a
// result-shape change shows in the trajectory as well.
func experimentCase(id string) perf.Case {
	return perf.Case{
		Name: id,
		Fn: func(n int) perf.Sample {
			e, ok := experiments.Find(id)
			if !ok {
				panic("unknown experiment " + id)
			}
			rows := 0
			for i := 0; i < n; i++ {
				res := e.Run(uint64(i + 1))
				rows = len(res.Table.Rows)
			}
			return perf.Sample{Extra: map[string]float64{"table_rows": float64(rows)}}
		},
	}
}

// Cases returns the full recordable suite in recording order.
func Cases() []perf.Case {
	cases := []perf.Case{
		{Name: "SimKernel", Fn: simKernel},
		{Name: "FrameWireBits", Fn: frameWireBits},
		{Name: "BusSaturated", Fn: busSaturated},
		{Name: "EndToEndHRT", Fn: endToEndHRT},
		{Name: "EndToEndSRT", Fn: endToEndSRT},
		{Name: "RelayThroughput", Fn: relayThroughput},
	}
	for i := 1; i <= 10; i++ {
		cases = append(cases, experimentCase(fmt.Sprintf("E%d", i)))
	}
	return cases
}

// ProfiledMixed runs a three-class workload — a periodic HRT slot, an
// SRT EDF stream, and NRT bulk messages — with a kernel profiler
// attached, and returns the profile snapshot. This is the workload
// behind `canecbench -profile` and the E15 per-class breakdown: n
// events of each class move publish→deliver while every stage is timed.
func ProfiledMixed(n int) perf.Snapshot {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: 0x31, Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Seed: 1, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	prof.SetBusySource(func() sim.Duration { return sys.Bus.Stats().BusyTime })

	hrtPub, _ := sys.Node(0).MW.HRTEC(0x31)
	if err := hrtPub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	hrtSub, _ := sys.Node(1).MW.HRTEC(0x31)
	hrtSub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)

	srtPub, _ := sys.Node(0).MW.SRTEC(0x41)
	srtPub.Announce(core.ChannelAttrs{}, nil)
	srtSub, _ := sys.Node(1).MW.SRTEC(0x41)
	srtSub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)

	nrtPub, _ := sys.Node(0).MW.NRTEC(0x51)
	if err := nrtPub.Announce(core.ChannelAttrs{}, nil); err != nil {
		panic(err)
	}
	nrtSub, _ := sys.Node(1).MW.NRTEC(0x51)
	nrtSub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)

	for r := 0; r < n; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			hrtPub.Publish(core.Event{Subject: 0x31, Payload: []byte{1}})
		})
		sys.K.At(sim.Time(r)*200*sim.Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			srtPub.Publish(core.Event{Subject: 0x41, Payload: []byte{1, 2, 3},
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
		sys.K.At(sim.Time(r)*500*sim.Microsecond, func() {
			nrtPub.Publish(core.Event{Subject: 0x51, Payload: []byte{4, 5}})
		})
	}
	horizon := sys.Cfg.Epoch + sim.Time(n)*cal.Round + sim.Second
	sys.Run(horizon)
	return prof.Snapshot()
}

// Find returns the named case.
func Find(name string) (perf.Case, bool) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return perf.Case{}, false
}
