package perf

import "fmt"

// Thresholds bound how much worse a metric may get before the gate
// fails. Wall-time thresholds are deliberately loose — shared CI boxes
// jitter by tens of percent — while allocation counts are deterministic
// and get a tight absolute bound.
type Thresholds struct {
	// NsPerOpFrac fails a benchmark whose ns/op grew by more than this
	// fraction over the baseline. Default 0.35.
	NsPerOpFrac float64
	// AllocsPerOpAbs fails a benchmark whose allocs/op grew by more than
	// this many allocations. Default 0.5 — any new steady-state
	// allocation trips it, calibration noise does not.
	AllocsPerOpAbs float64
	// AllocsPerOpFrac loosens the absolute alloc bound for macro
	// benchmarks: the effective limit is max(AllocsPerOpAbs,
	// AllocsPerOpFrac × baseline). A per-frame micro-bench (tens of
	// allocs) still trips on any new steady-state allocation, while an
	// experiment-level bench (millions of allocs per op, where map
	// growth and timer scheduling drift by parts per million between
	// runs) only trips on a real leak. Default 0.001 (0.1%).
	AllocsPerOpFrac float64
	// FramesFrac fails a benchmark whose frames/s dropped by more than
	// this fraction. Default 0.30.
	FramesFrac float64
}

// DefaultThresholds returns the standard gate settings.
func DefaultThresholds() Thresholds {
	return Thresholds{NsPerOpFrac: 0.35, AllocsPerOpAbs: 0.5, AllocsPerOpFrac: 0.001, FramesFrac: 0.30}
}

// withDefaults fills zero fields so a partially-set Thresholds behaves
// sanely.
func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.NsPerOpFrac <= 0 {
		t.NsPerOpFrac = d.NsPerOpFrac
	}
	if t.AllocsPerOpAbs <= 0 {
		t.AllocsPerOpAbs = d.AllocsPerOpAbs
	}
	if t.AllocsPerOpFrac <= 0 {
		t.AllocsPerOpFrac = d.AllocsPerOpFrac
	}
	if t.FramesFrac <= 0 {
		t.FramesFrac = d.FramesFrac
	}
	return t
}

// Delta is one metric's old-vs-new comparison.
type Delta struct {
	Name      string // benchmark name
	Metric    string // "ns_per_op", "allocs_per_op", "frames_per_sec", "missing"
	Old, New  float64
	Regressed bool
	Note      string
}

// String renders a delta as one gate-report line.
func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSION"
	}
	if d.Metric == "missing" {
		return fmt.Sprintf("%-28s %-14s %s (%s)", d.Name, d.Metric, verdict, d.Note)
	}
	return fmt.Sprintf("%-28s %-14s %12.1f -> %12.1f  %s%s",
		d.Name, d.Metric, d.Old, d.New, verdict, d.Note)
}

// Compare gates a new trajectory point against a baseline. Every
// benchmark present in the baseline must still exist — a vanished
// benchmark is itself a regression (deleting the slow case is not a
// fix). Benchmarks only present in the new file pass silently; a
// baseline with zero ns/op skips the ratio checks for that benchmark
// (nothing meaningful to compare against). Improvements always pass.
func Compare(oldF, newF File, th Thresholds) []Delta {
	th = th.withDefaults()
	var deltas []Delta
	for _, ob := range oldF.Results {
		nb, ok := newF.Find(ob.Name)
		if !ok {
			deltas = append(deltas, Delta{
				Name: ob.Name, Metric: "missing", Regressed: true,
				Note: "present in baseline, absent in new run",
			})
			continue
		}
		if ob.NsPerOp > 0 {
			frac := nb.NsPerOp/ob.NsPerOp - 1
			deltas = append(deltas, Delta{
				Name: ob.Name, Metric: "ns_per_op",
				Old: ob.NsPerOp, New: nb.NsPerOp,
				Regressed: frac > th.NsPerOpFrac,
				Note:      fmt.Sprintf(" (%+.0f%%, limit +%.0f%%)", frac*100, th.NsPerOpFrac*100),
			})
		}
		allocLimit := th.AllocsPerOpAbs
		if frac := th.AllocsPerOpFrac * ob.AllocsPerOp; frac > allocLimit {
			allocLimit = frac
		}
		deltas = append(deltas, Delta{
			Name: ob.Name, Metric: "allocs_per_op",
			Old: ob.AllocsPerOp, New: nb.AllocsPerOp,
			Regressed: nb.AllocsPerOp > ob.AllocsPerOp+allocLimit,
			Note:      fmt.Sprintf(" (limit +%.1f)", allocLimit),
		})
		if ob.FramesPerSec > 0 && nb.FramesPerSec > 0 {
			frac := 1 - nb.FramesPerSec/ob.FramesPerSec
			deltas = append(deltas, Delta{
				Name: ob.Name, Metric: "frames_per_sec",
				Old: ob.FramesPerSec, New: nb.FramesPerSec,
				Regressed: frac > th.FramesFrac,
				Note:      fmt.Sprintf(" (%+.0f%%, limit -%.0f%%)", -frac*100, th.FramesFrac*100),
			})
		}
	}
	return deltas
}

// Regressions filters deltas down to the failing ones.
func Regressions(deltas []Delta) []Delta {
	var bad []Delta
	for _, d := range deltas {
		if d.Regressed {
			bad = append(bad, d)
		}
	}
	return bad
}
