package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"canec/internal/stats"
)

// SchemaVersion identifies the BENCH_*.json layout this package writes.
// Readers accept any file whose schema is >= 1 and tolerate unknown
// fields, so newer writers stay readable by older gates.
const SchemaVersion = 1

// Sample is what one benchmark case reports back for a run of n
// iterations, beyond the wall time and allocations the runner measures
// itself.
type Sample struct {
	// FramesPerOp is how many frames one iteration moved end to end;
	// the runner turns it into a frames/s metric. Zero means the case
	// has no frame-throughput interpretation.
	FramesPerOp float64
	// Hist, when non-nil, holds per-event latencies in nanoseconds; the
	// runner summarises it into p50/p90/p99 quantiles (µs).
	Hist *stats.LogHistogram
	// Extra carries case-specific metrics verbatim into the result.
	Extra map[string]float64
}

// Case is one recordable benchmark: Fn runs n iterations of the workload
// and reports a Sample. Fn must do all setup inside the call — the
// runner measures the whole invocation, which matches how the cases are
// also exercised as ordinary benchmarks (setup cost amortises to noise
// at real iteration counts).
type Case struct {
	Name string
	Fn   func(n int) Sample
}

// RunConfig controls the mini-runner.
type RunConfig struct {
	// Time is the target wall time per case; the runner scales the
	// iteration count until a run takes at least this long. Defaults to
	// one second.
	Time time.Duration
	// Iters, when > 0, runs exactly that many iterations once and skips
	// calibration — the fast path for smoke tests.
	Iters int
}

// Result is one benchmark's recorded outcome.
type Result struct {
	Name         string             `json:"name"`
	Iters        int                `json:"iters"`
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  float64            `json:"allocs_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op"`
	FramesPerSec float64            `json:"frames_per_sec,omitempty"`
	QuantilesUs  map[string]float64 `json:"quantiles_us,omitempty"`
	Extra        map[string]float64 `json:"extra,omitempty"`
}

// Env pins down where a trajectory point was recorded, so cross-machine
// comparisons can be recognised for what they are.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// File is one point on the performance trajectory: a labelled, schema-
// versioned set of benchmark results plus the environment they came from.
type File struct {
	Schema     int      `json:"schema"`
	Label      string   `json:"label"`
	RecordedAt string   `json:"recorded_at,omitempty"`
	Env        Env      `json:"env"`
	Results    []Result `json:"results"`
}

// currentEnv snapshots the recording environment.
func currentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Run executes one case under the given config and returns its Result.
// Allocation figures come from runtime.MemStats deltas, so they include
// everything the workload allocated on this goroutine and any helpers —
// a deliberate whole-process view, unlike testing.B's per-goroutine one.
func Run(c Case, cfg RunConfig) Result {
	target := cfg.Time
	if target <= 0 {
		target = time.Second
	}
	n := cfg.Iters
	if n <= 0 {
		n = 16
	}
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		sample := c.Fn(n)
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)

		if cfg.Iters <= 0 && elapsed < target && n < 1e8 {
			// Calibrate like testing.B: predict the n that reaches the
			// target, padded 1.2x, at most 10x at a time.
			grow := int(float64(n) * 1.2 * float64(target) / float64(elapsed+1))
			if grow > 10*n {
				grow = 10 * n
			}
			if grow <= n {
				grow = n + 1
			}
			n = grow
			continue
		}

		res := Result{
			Name:        c.Name,
			Iters:       n,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			Extra:       sample.Extra,
		}
		if sample.FramesPerOp > 0 && elapsed > 0 {
			res.FramesPerSec = sample.FramesPerOp * float64(n) / elapsed.Seconds()
		}
		if sample.Hist != nil && sample.Hist.N() > 0 {
			res.QuantilesUs = map[string]float64{
				"p50": sample.Hist.Quantile(0.50) / 1e3,
				"p90": sample.Hist.Quantile(0.90) / 1e3,
				"p99": sample.Hist.Quantile(0.99) / 1e3,
			}
		}
		return res
	}
}

// Record assembles a trajectory file from results, stamping schema, label
// and environment. Results are sorted by name so files diff cleanly.
func Record(label string, results []Result) File {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return File{
		Schema:     SchemaVersion,
		Label:      label,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Env:        currentEnv(),
		Results:    sorted,
	}
}

// FileName returns the canonical on-disk name for a label.
func FileName(label string) string { return "BENCH_" + label + ".json" }

// WriteFile writes f to dir/BENCH_<label>.json, creating dir if needed.
// It returns the path written.
func WriteFile(dir string, f File) (string, error) {
	if f.Schema == 0 {
		f.Schema = SchemaVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(f.Label))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile loads a trajectory file. Unknown fields are tolerated (newer
// writers add fields; old gates must keep working); a schema below 1 is
// rejected as not a BENCH file.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema < 1 {
		return f, fmt.Errorf("%s: schema %d is not a BENCH file (want >= 1)", path, f.Schema)
	}
	return f, nil
}

// Find returns the named result and whether it exists.
func (f File) Find(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}
