package perf

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"canec/internal/stats"
)

func TestRunFixedIters(t *testing.T) {
	var sawN int
	c := Case{Name: "spin", Fn: func(n int) Sample {
		sawN = n
		time.Sleep(time.Millisecond)
		return Sample{FramesPerOp: 2, Extra: map[string]float64{"x": 7}}
	}}
	res := Run(c, RunConfig{Iters: 25})
	if sawN != 25 || res.Iters != 25 {
		t.Fatalf("iters: ran %d recorded %d, want 25", sawN, res.Iters)
	}
	if res.NsPerOp <= 0 {
		t.Fatalf("ns/op: %v", res.NsPerOp)
	}
	if res.FramesPerSec <= 0 {
		t.Fatalf("frames/s: %v", res.FramesPerSec)
	}
	if res.Extra["x"] != 7 {
		t.Fatalf("extra: %v", res.Extra)
	}
}

func TestRunCalibrates(t *testing.T) {
	var lastN int
	c := Case{Name: "spin", Fn: func(n int) Sample {
		lastN = n
		time.Sleep(time.Duration(n) * 50 * time.Microsecond)
		return Sample{}
	}}
	res := Run(c, RunConfig{Time: 20 * time.Millisecond})
	if lastN <= 16 {
		t.Fatalf("calibration never grew n past the floor: %d", lastN)
	}
	if res.Iters != lastN {
		t.Fatalf("result iters %d != final run %d", res.Iters, lastN)
	}
}

func TestRunQuantiles(t *testing.T) {
	c := Case{Name: "hist", Fn: func(n int) Sample {
		h := stats.NewLogHistogram("lat", 1e3, 1e10, 96)
		for i := 0; i < 1000; i++ {
			h.Observe(1e6) // 1ms
		}
		return Sample{Hist: h}
	}}
	res := Run(c, RunConfig{Iters: 1})
	p50 := res.QuantilesUs["p50"]
	if p50 < 500 || p50 > 2000 {
		t.Fatalf("p50 of a 1ms spike: %v µs", p50)
	}
	if _, ok := res.QuantilesUs["p99"]; !ok {
		t.Fatal("p99 missing")
	}
}

func TestFileGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := Record("golden", []Result{
		{Name: "Z", Iters: 10, NsPerOp: 123.5, AllocsPerOp: 4, BytesPerOp: 512,
			FramesPerSec: 9e5, QuantilesUs: map[string]float64{"p50": 1.5},
			Extra: map[string]float64{"table_rows": 12}},
		{Name: "A", Iters: 5, NsPerOp: 42},
	})
	if f.Schema != SchemaVersion || f.Env.GoVersion == "" || f.Env.GOMAXPROCS == 0 {
		t.Fatalf("record metadata: %+v", f)
	}
	// Record sorts by name so trajectory files diff cleanly.
	if f.Results[0].Name != "A" || f.Results[1].Name != "Z" {
		t.Fatalf("results not sorted: %v, %v", f.Results[0].Name, f.Results[1].Name)
	}

	path, err := WriteFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_golden.json" {
		t.Fatalf("file name: %s", path)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
	if r, ok := got.Find("Z"); !ok || r.FramesPerSec != 9e5 {
		t.Fatalf("Find(Z): %v %+v", ok, r)
	}
}

// TestReadFileUnknownFields pins forward compatibility: a file written
// by a future schema with extra fields must still load.
func TestReadFileUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_future.json")
	data := `{
  "schema": 3,
  "label": "future",
  "novel_top_level": {"a": 1},
  "env": {"go_version": "go99.9", "novel_env_field": true},
  "results": [
    {"name": "X", "iters": 7, "ns_per_op": 10, "novel_metric": 1e9}
  ]
}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != 3 || f.Label != "future" || len(f.Results) != 1 || f.Results[0].NsPerOp != 10 {
		t.Fatalf("parsed: %+v", f)
	}
}

func TestReadFileRejectsNonBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not_bench.json")
	os.WriteFile(path, []byte(`{"label":"x"}`), 0o644)
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema-less file accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte(`{not json`), 0o644)
	if _, err := ReadFile(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func benchFile(results ...Result) File {
	return File{Schema: 1, Label: "t", Results: results}
}

func regressionCount(deltas []Delta) int { return len(Regressions(deltas)) }

func TestCompareClean(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100, AllocsPerOp: 10, FramesPerSec: 1e6})
	newF := benchFile(Result{Name: "B1", NsPerOp: 110, AllocsPerOp: 10, FramesPerSec: 0.95e6})
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("clean compare flagged %d regressions", n)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100, AllocsPerOp: 10, FramesPerSec: 1e6})
	newF := benchFile(Result{Name: "B1", NsPerOp: 10, AllocsPerOp: 1, FramesPerSec: 5e6})
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("improvement flagged %d regressions", n)
	}
}

func TestCompareNsRegression(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100})
	newF := benchFile(Result{Name: "B1", NsPerOp: 200})
	bad := Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "ns_per_op" {
		t.Fatalf("regressions: %+v", bad)
	}
	if bad[0].String() == "" {
		t.Fatal("empty delta rendering")
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100, AllocsPerOp: 3})
	newF := benchFile(Result{Name: "B1", NsPerOp: 100, AllocsPerOp: 4})
	bad := Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "allocs_per_op" {
		t.Fatalf("regressions: %+v", bad)
	}
	// 3 → 3.4 stays inside the 0.5-alloc absolute bound: noise, not leak.
	newF.Results[0].AllocsPerOp = 3.4
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("alloc noise flagged: %d", n)
	}
}

// TestCompareAllocsMacroScale: experiment-level benchmarks run millions
// of allocs per op and drift by parts per million between runs (map
// growth, timer scheduling), so the alloc gate is max(abs, frac×old) —
// ppm drift passes, a real 1% leak still fails, and micro-bench
// sensitivity is untouched (0.1% of tens of allocs ≪ 0.5).
func TestCompareAllocsMacroScale(t *testing.T) {
	oldF := benchFile(Result{Name: "E9", NsPerOp: 1e9, AllocsPerOp: 2_457_362})
	newF := benchFile(Result{Name: "E9", NsPerOp: 1e9, AllocsPerOp: 2_457_366})
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("ppm-scale macro drift flagged: %d", n)
	}
	// +1% of 2.4M is a genuine leak — over the 0.1% relative limit.
	newF.Results[0].AllocsPerOp = 2_457_362 * 1.01
	bad := Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "allocs_per_op" {
		t.Fatalf("macro leak missed: %+v", bad)
	}
	// Micro-bench: one new steady-state alloc per frame still trips.
	oldF = benchFile(Result{Name: "Relay", NsPerOp: 100, AllocsPerOp: 17})
	newF = benchFile(Result{Name: "Relay", NsPerOp: 100, AllocsPerOp: 18})
	bad = Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "allocs_per_op" {
		t.Fatalf("micro +1 alloc missed: %+v", bad)
	}
}

func TestCompareFramesRegression(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100, FramesPerSec: 1e6})
	newF := benchFile(Result{Name: "B1", NsPerOp: 100, FramesPerSec: 0.5e6})
	bad := Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "frames_per_sec" {
		t.Fatalf("regressions: %+v", bad)
	}
}

// TestCompareMissingBenchmark: deleting a slow benchmark is not a fix.
func TestCompareMissingBenchmark(t *testing.T) {
	oldF := benchFile(Result{Name: "Gone", NsPerOp: 100})
	newF := benchFile(Result{Name: "Other", NsPerOp: 100})
	bad := Regressions(Compare(oldF, newF, Thresholds{}))
	if len(bad) != 1 || bad[0].Metric != "missing" {
		t.Fatalf("regressions: %+v", bad)
	}
	if bad[0].String() == "" {
		t.Fatal("empty delta rendering")
	}
}

// TestCompareZeroBaseline: a zero ns/op baseline has nothing meaningful
// to ratio against and must not divide by zero or flag.
func TestCompareZeroBaseline(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 0, FramesPerSec: 0})
	newF := benchFile(Result{Name: "B1", NsPerOp: 1e9, FramesPerSec: 1})
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("zero baseline flagged %d regressions", n)
	}
}

// TestCompareNewOnlyBenchmark: benchmarks added since the baseline pass
// silently — they will be gated once a new baseline is recorded.
func TestCompareNewOnlyBenchmark(t *testing.T) {
	oldF := benchFile(Result{Name: "B1", NsPerOp: 100})
	newF := benchFile(
		Result{Name: "B1", NsPerOp: 100},
		Result{Name: "B2", NsPerOp: 1e12},
	)
	if n := regressionCount(Compare(oldF, newF, Thresholds{})); n != 0 {
		t.Fatalf("new-only benchmark flagged: %d", n)
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th != DefaultThresholds() {
		t.Fatalf("defaults not applied: %+v", th)
	}
	custom := Thresholds{NsPerOpFrac: 0.1}.withDefaults()
	if custom.NsPerOpFrac != 0.1 || custom.AllocsPerOpAbs != 0.5 {
		t.Fatalf("partial thresholds: %+v", custom)
	}
}
