// Package perf provides performance observability for the canec stack:
// a kernel profiler that attributes wall-clock cost of the
// publish→deliver chain to named stages, and a benchmark trajectory
// recorder with a regression gate (see bench.go / compare.go).
//
// The profiler follows the same zero-cost-when-nil discipline as
// obs.Observer: every instrumented site performs exactly one nil check
// when no profiler is attached, and the methods on a nil *Profiler are
// safe no-ops, so a typed-nil accidentally stored in an interface still
// cannot crash the kernel.
package perf

import (
	"runtime"

	"canec/internal/obs"
	"canec/internal/sim"
)

// stageCell aggregates one (stage, class) bucket. Padding is deliberately
// absent: the kernel is single-threaded, so there is no false sharing to
// defend against, and a compact array keeps the whole table in one or two
// cache lines.
type stageCell struct {
	ops    uint64
	wallNs int64
}

// Profiler implements sim.Probe. It attributes the wall-clock cost of the
// publish→deliver chain to named stages (enqueue, heap, arbitration,
// codec, dispatch, delivery), split by traffic class where the stage
// knows it, and keeps kernel health counters: events per second, heap
// depth high-water, idle-vs-busy virtual time, and allocations per
// delivered frame.
//
// A Profiler is strictly single-toucher, like everything else that runs
// in kernel context. Attach it with AttachKernel from outside the run
// (or under Paced.Call), and read Snapshot the same way.
type Profiler struct {
	cells [sim.NumProbeStages][sim.NumProbeClasses]stageCell

	k    *sim.Kernel
	busy func() sim.Duration // optional: bus-busy virtual time source

	// Baselines captured at AttachKernel so a profiler attached to a
	// long-lived kernel reports rates for its own observation window.
	epochWallNs int64
	epochSteps  uint64
	mallocs0    uint64
}

// StageNs records wallNs nanoseconds of wall-clock time spent in stage s
// for traffic class c, and counts one operation. Delivery-stage calls
// double as the delivered-frame counter. Nil-receiver safe.
func (p *Profiler) StageNs(s sim.ProbeStage, c sim.ProbeClass, wallNs int64) {
	if p == nil {
		return
	}
	cell := &p.cells[s][c]
	cell.ops++
	cell.wallNs += wallNs
}

// AttachKernel installs the profiler as the kernel's probe and captures
// rate baselines (wall clock, kernel steps, cumulative mallocs). It is
// the single wiring point: the bus and the middleware discover the probe
// through the kernel, so attaching here instruments the whole chain.
func (p *Profiler) AttachKernel(k *sim.Kernel) {
	if p == nil || k == nil {
		return
	}
	p.k = k
	p.epochWallNs = sim.ProbeNow()
	p.epochSteps = k.Profile().Steps
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.mallocs0 = ms.Mallocs
	k.SetProbe(p)
}

// Detach removes the profiler from its kernel. Safe on nil.
func (p *Profiler) Detach() {
	if p == nil || p.k == nil {
		return
	}
	p.k.SetProbe(nil)
	p.k = nil
}

// SetBusySource supplies a function reporting cumulative bus-busy virtual
// time, used to split virtual time into busy vs idle in Snapshot. The
// can.Bus BusyTime method is the intended source.
func (p *Profiler) SetBusySource(fn func() sim.Duration) {
	if p == nil {
		return
	}
	p.busy = fn
}

// StageSnap is the aggregate for one (stage, class) bucket.
type StageSnap struct {
	Stage  string `json:"stage"`
	Class  string `json:"class"`
	Ops    uint64 `json:"ops"`
	WallNs int64  `json:"wall_ns"`
}

// Snapshot is a point-in-time view of the profiler, cheap enough to take
// on every admin-plane poll. All rates are computed over the window since
// AttachKernel.
type Snapshot struct {
	Stages []StageSnap `json:"stages"`

	// Kernel health.
	Steps         uint64  `json:"steps"`
	EventsPerSec  float64 `json:"events_per_sec"`
	HeapHighWater int     `json:"heap_high_water"`
	Pending       int     `json:"pending"`
	NowVirtualNs  int64   `json:"now_virtual_ns"`
	IdleVirtualNs int64   `json:"idle_virtual_ns"`
	BusyVirtualNs int64   `json:"busy_virtual_ns"`

	// Delivery accounting. Delivered counts delivery-stage probe ops;
	// AllocsPerDelivered is cumulative heap allocations (all causes, the
	// profiler cannot attribute them) divided by delivered frames.
	Delivered          uint64  `json:"delivered"`
	AllocsPerDelivered float64 `json:"allocs_per_delivered"`
	WindowWallNs       int64   `json:"window_wall_ns"`
}

// Snapshot captures the current profile. Call from kernel context (or
// while the kernel is quiescent); the profiler is single-toucher.
// A nil profiler returns a zero Snapshot.
func (p *Profiler) Snapshot() Snapshot {
	var snap Snapshot
	if p == nil {
		return snap
	}
	for s := 0; s < int(sim.NumProbeStages); s++ {
		for c := 0; c < int(sim.NumProbeClasses); c++ {
			cell := p.cells[s][c]
			if cell.ops == 0 {
				continue
			}
			snap.Stages = append(snap.Stages, StageSnap{
				Stage:  sim.ProbeStage(s).String(),
				Class:  sim.ProbeClass(c).String(),
				Ops:    cell.ops,
				WallNs: cell.wallNs,
			})
			if sim.ProbeStage(s) == sim.ProbeDelivery {
				snap.Delivered += cell.ops
			}
		}
	}
	snap.WindowWallNs = sim.ProbeNow() - p.epochWallNs
	if p.k != nil {
		kp := p.k.Profile()
		snap.Steps = kp.Steps - p.epochSteps
		snap.HeapHighWater = kp.HeapHighWater
		snap.Pending = kp.Pending
		snap.NowVirtualNs = int64(kp.Now)
		snap.IdleVirtualNs = int64(kp.IdleVirtual)
		if p.busy != nil {
			snap.BusyVirtualNs = int64(p.busy())
		}
		if snap.WindowWallNs > 0 {
			snap.EventsPerSec = float64(snap.Steps) / (float64(snap.WindowWallNs) / 1e9)
		}
	}
	if snap.Delivered > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		snap.AllocsPerDelivered = float64(ms.Mallocs-p.mallocs0) / float64(snap.Delivered)
	}
	return snap
}

// Register exposes the profiler through an obs.Registry so the admin
// plane's /metrics endpoint (and canecstat) can see it. The gauges are
// GaugeFuncs over Snapshot-equivalent reads, so registration is done once
// and the values stay live.
func (p *Profiler) Register(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	for s := 0; s < int(sim.NumProbeStages); s++ {
		for c := 0; c < int(sim.NumProbeClasses); c++ {
			cell := &p.cells[s][c]
			labels := obs.Labels{
				"stage": sim.ProbeStage(s).String(),
				"class": sim.ProbeClass(c).String(),
			}
			reg.GaugeFunc("canec_profile_stage_busy_nanoseconds",
				"Wall-clock nanoseconds attributed to a publish→deliver stage.",
				labels, func() float64 { return float64(cell.wallNs) })
			reg.GaugeFunc("canec_profile_stage_ops",
				"Operations counted in a publish→deliver stage.",
				labels, func() float64 { return float64(cell.ops) })
		}
	}
	reg.GaugeFunc("canec_profile_events_per_second",
		"Kernel events processed per wall-clock second since profiler attach.",
		nil, func() float64 { return p.Snapshot().EventsPerSec })
	reg.GaugeFunc("canec_profile_heap_high_water",
		"High-water mark of the kernel event-heap depth.",
		nil, func() float64 {
			if p.k == nil {
				return 0
			}
			return float64(p.k.Profile().HeapHighWater)
		})
	reg.GaugeFunc("canec_profile_idle_virtual_nanoseconds",
		"Virtual nanoseconds the kernel spent idle (clock jumps with no due event).",
		nil, func() float64 {
			if p.k == nil {
				return 0
			}
			return float64(p.k.Profile().IdleVirtual)
		})
	reg.GaugeFunc("canec_profile_allocs_per_frame",
		"Cumulative heap allocations divided by delivered frames.",
		nil, func() float64 { return p.Snapshot().AllocsPerDelivered })
}
