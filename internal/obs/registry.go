package obs

import (
	"fmt"
	"sort"
	"strings"

	"canec/internal/stats"
)

// Labels are the constant label set of one metric instance. They are
// copied at registration; later mutation of the caller's map is ignored.
type Labels map[string]string

// labelValueEscaper applies the Prometheus text-format escaping rules
// for label values: backslash, double quote, and line feed. Other bytes
// (including raw UTF-8) pass through unescaped, per the exposition
// format spec — unlike Go's %q, which escapes far more.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper applies the HELP-line escaping rules: backslash and line
// feed only (double quotes are legal verbatim in HELP text).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// labelKey renders labels canonically (sorted, Prometheus-escaped) for
// identity and output.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		labelValueEscaper.WriteString(&b, l[k])
		b.WriteByte('"')
	}
	return b.String()
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds a non-negative delta.
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v  float64
	fn func() float64
}

// Set replaces the value (no-op on function gauges).
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value (no-op on function gauges).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value, evaluating function gauges.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// HistSource is the shared face of the histogram backends
// (fixed-width stats.Histogram and log-bucketed stats.LogHistogram):
// everything exposition and quantile evaluation need, nothing more.
type HistSource interface {
	Observe(v float64)
	N() uint64
	Sum() float64
	Buckets() int
	Bucket(i int) uint64
	UpperBound(i int) float64
	OutOfRange() (under, over uint64)
	Quantile(q float64) float64
}

// Histogram is a distribution metric backed by either a fixed-width or
// a log-bucketed stats histogram.
type Histogram struct {
	h HistSource
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.h.Observe(v) }

// Snapshot exposes the underlying histogram for rendering.
func (h *Histogram) Snapshot() HistSource { return h.h }

// metricKind tags a family for the exposition TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// instance is one (labels, metric) pair inside a family.
type instance struct {
	labels string // canonical label rendering, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all instances of one metric name.
type family struct {
	name string
	help string
	kind metricKind
	inst []*instance
	by   map[string]*instance
}

// Registry is an ordered collection of named metrics. Like the Tracer it
// lives in single-kernel simulation context and needs no locking.
type Registry struct {
	fams  []*family
	byNam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNam: make(map[string]*family)}
}

func (r *Registry) fam(name, help string, kind metricKind) *family {
	f, ok := r.byNam[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, by: make(map[string]*instance)}
		r.byNam[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) instance(labels Labels) *instance {
	key := labelKey(labels)
	in, ok := f.by[key]
	if !ok {
		in = &instance{labels: key}
		f.by[key] = in
		f.inst = append(f.inst, in)
	}
	return in
}

// Counter returns (creating on first use) the counter with this name and
// label set.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	in := r.fam(name, help, kindCounter).instance(labels)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns (creating on first use) the gauge with this name and
// label set.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	in := r.fam(name, help, kindGauge).instance(labels)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// GaugeFunc registers a gauge whose value is computed at collection time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	in := r.fam(name, help, kindGauge).instance(labels)
	in.g = &Gauge{fn: fn}
}

// Histogram returns (creating on first use) a fixed-bucket histogram over
// [lo, hi) with the given bucket count.
func (r *Registry) Histogram(name, help string, labels Labels, lo, hi float64, buckets int) *Histogram {
	in := r.fam(name, help, kindHistogram).instance(labels)
	if in.h == nil {
		in.h = &Histogram{h: stats.NewHistogram(name, lo, hi, buckets)}
	}
	return in.h
}

// LogHistogram returns (creating on first use) a log-bucketed (HDR
// style) histogram over [min, max) with the given number of geometric
// buckets. Use it for durations, where relative rather than absolute
// quantile error is the right bound.
func (r *Registry) LogHistogram(name, help string, labels Labels, min, max float64, buckets int) *Histogram {
	in := r.fam(name, help, kindHistogram).instance(labels)
	if in.h == nil {
		in.h = &Histogram{h: stats.NewLogHistogram(name, min, max, buckets)}
	}
	return in.h
}

// render writes one sample line: name{labels} value.
func renderLine(b *strings.Builder, name, labels, extra string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	fmt.Fprintf(b, " %v\n", v)
}
