package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE line per family, then one sample
// line per instance. HELP text escapes backslash and line feed; label
// values (escaped at registration in labelKey) additionally escape the
// double quote. Histograms expose cumulative le-bucketed counts plus
// _sum and _count, with out-of-range mass folded into the edge buckets
// exactly as the stats histograms attribute it.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.fams {
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			helpEscaper.WriteString(&b, f.help)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, in := range f.inst {
			switch f.kind {
			case kindCounter:
				renderLine(&b, f.name, in.labels, "", in.c.Value())
			case kindGauge:
				renderLine(&b, f.name, in.labels, "", in.g.Value())
			case kindHistogram:
				h := in.h.Snapshot()
				under, over := h.OutOfRange()
				cum := under
				for i := 0; i < h.Buckets(); i++ {
					cum += h.Bucket(i)
					le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", h.UpperBound(i)))
					renderLine(&b, f.name+"_bucket", in.labels, le, float64(cum))
				}
				cum += over
				renderLine(&b, f.name+"_bucket", in.labels, `le="+Inf"`, float64(cum))
				renderLine(&b, f.name+"_sum", in.labels, "", h.Sum())
				renderLine(&b, f.name+"_count", in.labels, "", float64(h.N()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
