package obs

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every exposition edge
// case: HELP text with backslashes and newlines, label values with
// quotes, backslashes, newlines, and raw UTF-8, a label-less instance
// next to a labelled one, and both histogram backends.
func goldenRegistry() *Registry {
	r := NewRegistry()
	help := "tracks \\ backslash\nand a second line"
	r.Counter("canec_escape_total", help, Labels{
		"path":  `C:\temp`,
		"quote": `say "hi"`,
		"nl":    "line1\nline2",
		"utf8":  "päyload µs",
	}).Add(3)
	r.Counter("canec_escape_total", help, nil).Inc()
	r.Gauge("canec_gauge", "a plain gauge", Labels{"band": "srt"}).Set(0.25)
	h := r.Histogram("canec_fixed_hist", "fixed buckets", Labels{"class": "SRT"}, 0, 10, 2)
	h.Observe(1)
	h.Observe(6)
	h.Observe(42)
	lh := r.LogHistogram("canec_log_hist", "log buckets", nil, 1, 100, 2)
	lh.Observe(5)
	lh.Observe(50)
	lh.Observe(0.5)
	return r
}

// TestWriteTextGolden pins the exposition output byte-for-byte,
// including the escaping rules for HELP lines and label values.
// Regenerate with: go test ./internal/obs -run TestWriteTextGolden -update
func TestWriteTextGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteTextEscaping spot-checks the escaping rules independently of
// the golden file, so a careless -update cannot silently bless broken
// output.
func TestWriteTextEscaping(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP canec_escape_total tracks \\ backslash\nand a second line`,
		`nl="line1\nline2"`,
		`path="C:\\temp"`,
		`quote="say \"hi\""`,
		`utf8="päyload µs"`, // raw UTF-8 passes through unescaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "C:\\temp\"") && !strings.Contains(out, `C:\\temp"`) {
		t.Error("single backslash leaked into label value")
	}
	// No raw (unescaped) newline may appear inside any line's payload:
	// every line must start with a metric name or a # comment.
	lineRe := regexp.MustCompile(`^(# (HELP|TYPE) )?[a-zA-Z_:][a-zA-Z0-9_:]*`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}
