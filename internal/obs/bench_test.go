package obs

import (
	"testing"

	"canec/internal/sim"
)

// nilObserverFastPath exercises every hot-path emission helper on a nil
// observer, exactly as an uninstrumented system's publish/deliver path
// does.
func nilObserverFastPath() {
	var o *Observer
	id := o.Begin("SRT", 0, 0x42, 100)
	o.Emit(id, StageEnqueued, "SRT", 0, 0x42, 110, "")
	o.Adopt(id, "SRT", 0, 0x42, 120)
	o.RelayFrame(id, StageRelayTx, "SRT", 0, 0x42, 130, "")
	o.RelayBytes("tx", 16)
	o.SlotOutcome(true)
	o.Copies("sent", 1)
	o.ExceptionRaised("DeadlineMissed")
	o.Delivered(id, "SRT", 1, 0x42, 200, "")
	o.PublishKernelTime(id)
}

// TestNilObserverZeroAllocs is the zero-overhead-when-off regression
// guard: the nil-Observer fast path on the hot publish/deliver path
// must not allocate.
func TestNilObserverZeroAllocs(t *testing.T) {
	if allocs := testing.AllocsPerRun(1000, nilObserverFastPath); allocs != 0 {
		t.Fatalf("nil-Observer fast path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkObserverOverhead compares the instrumentation cost of the
// publish→deliver emission sequence with observability off (nil
// observer), metrics only, and metrics+trace. The "off" case must
// report 0 B/op — asserted by TestNilObserverZeroAllocs.
func BenchmarkObserverOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nilObserverFastPath()
		}
	})
	seq := func(o *Observer, at sim.Time) {
		id := o.Begin("SRT", 0, 0x42, at)
		o.Emit(id, StageEnqueued, "SRT", 0, 0x42, at+10, "")
		o.Delivered(id, "SRT", 1, 0x42, at+200_000, "")
	}
	b.Run("metrics", func(b *testing.B) {
		o := New(Config{Metrics: true}, func() sim.Time { return 0 }, BandMap{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq(o, sim.Time(i))
		}
	})
	b.Run("metrics+trace", func(b *testing.B) {
		o := New(Config{Metrics: true, Trace: true, TraceCap: 4096},
			func() sim.Time { return 0 }, BandMap{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq(o, sim.Time(i))
		}
	})
	b.Run("metrics+flight", func(b *testing.B) {
		o := New(Config{Metrics: true, FlightRecords: 1024},
			func() sim.Time { return 0 }, BandMap{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq(o, sim.Time(i))
		}
	})
}
