package obs

import (
	"os"
	"strings"
	"testing"

	"canec/internal/sim"
)

// sloHarness drives an Observer + SLO engine on a bare kernel: a
// repeating task publishes SRT events and delivers a configurable
// fraction, missing the rest.
func sloHarness(t *testing.T, cfg SLOConfig, dir string) (*sim.Kernel, *Observer, *SLO) {
	t.Helper()
	k := sim.NewKernel(1)
	o := New(Config{Metrics: true, FlightRecords: 64, FlightDir: dir},
		k.Now, BandMap{})
	s := o.StartSLO(k, cfg)
	if s == nil {
		t.Fatal("StartSLO returned nil on a metrics-enabled observer")
	}
	return k, o, s
}

func TestSLOSRTMissBreachAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := SLOConfig{
		Interval:      10 * sim.Millisecond,
		ShortWindow:   100 * sim.Millisecond,
		LongWindow:    sim.Second,
		SRTMissBudget: 0.05,
	}
	k, o, s := sloHarness(t, cfg, dir)

	missing := false
	var step func()
	step = func() {
		id := o.Begin("SRT", 0, 0x42, k.Now())
		if missing {
			o.ExceptionRaised("DeadlineMissed")
			o.Emit(id, StageExpired, "SRT", 0, 0x42, k.Now(), "validity")
		} else {
			o.Delivered(id, "SRT", 1, 0x42, k.Now()+200*sim.Microsecond, "")
		}
		k.After(5*sim.Millisecond, step)
	}
	step()

	// Healthy phase: run past the long window, nothing may breach.
	k.Run(sim.Time(2 * sim.Second))
	for _, ob := range s.Snapshot() {
		if !ob.Evaluable || ob.Breached {
			t.Fatalf("healthy phase: objective %+v", ob)
		}
	}

	// Fault phase: every event misses; both windows must saturate.
	missing = true
	k.Run(sim.Time(4 * sim.Second))
	obs := s.Snapshot()
	if len(obs) != 1 {
		t.Fatalf("objectives = %d, want 1 (srt-miss-rate)", len(obs))
	}
	ob := obs[0]
	if !ob.Breached || ob.Breaches == 0 {
		t.Fatalf("srt-miss-rate did not breach: %+v", ob)
	}
	if ob.Long < 0.9 {
		t.Fatalf("long-window miss rate = %v, want ~1.0", ob.Long)
	}
	if !s.Breached() {
		t.Fatal("SLO.Breached() should be true")
	}

	// Breach evidence: counter, trace record, post-mortem dump.
	var sawBreachRec bool
	for _, r := range o.Flight().Snapshot() {
		if r.Stage == StageSLOBreach {
			sawBreachRec = true
			if !strings.Contains(r.Detail, "srt-miss-rate") {
				t.Fatalf("breach record detail = %q", r.Detail)
			}
		}
	}
	if !sawBreachRec {
		t.Fatal("no slo_breach record reached the flight recorder")
	}
	if len(s.LastDump) != 2 {
		t.Fatalf("LastDump = %v, want jsonl+trace pair", s.LastDump)
	}
	for _, p := range s.LastDump {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("post-mortem missing: %v", err)
		}
	}
	var promOut strings.Builder
	if err := o.Registry().WriteText(&promOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(promOut.String(), `canec_slo_breaches_total{objective="srt-miss-rate"}`) {
		t.Fatal("breach counter missing from exposition")
	}

	// Recovery phase: stop missing; after the long window drains the
	// breach must clear without another enter-transition.
	missing = false
	breaches := ob.Breaches
	k.Run(sim.Time(8 * sim.Second))
	ob = s.Snapshot()[0]
	if ob.Breached {
		t.Fatalf("breach did not clear after recovery: %+v", ob)
	}
	if ob.Breaches != breaches {
		t.Fatalf("breach flapped during recovery: %d -> %d", breaches, ob.Breaches)
	}
}

func TestSLOHRTJitterObjective(t *testing.T) {
	cfg := SLOConfig{
		Interval:          10 * sim.Millisecond,
		ShortWindow:       100 * sim.Millisecond,
		LongWindow:        sim.Second,
		HRTJitterBound:    50 * sim.Microsecond,
		HRTJitterQuantile: 0.99,
	}
	k, o, s := sloHarness(t, cfg, t.TempDir())

	jittery := false
	n := 0
	var step func()
	step = func() {
		n++
		id := o.Begin("HRT", 0, 0x10, k.Now())
		lat := 100 * sim.Microsecond // perfectly regular
		if jittery && n%2 == 0 {
			lat += 400 * sim.Microsecond // alternating: every delta is 400 µs
		}
		o.Delivered(id, "HRT", 1, 0x10, k.Now()+sim.Time(lat), "")
		k.After(2*sim.Millisecond, step)
	}
	step()

	k.Run(sim.Time(2 * sim.Second))
	ob := s.Snapshot()[0]
	if ob.Breached {
		t.Fatalf("regular delivery breached jitter objective: %+v", ob)
	}
	if ob.Short > 1 { // regular delivery: p99 jitter at the histogram floor
		t.Fatalf("short jitter = %v µs, want sub-µs", ob.Short)
	}

	jittery = true
	k.Run(sim.Time(4 * sim.Second))
	ob = s.Snapshot()[0]
	if !ob.Breached {
		t.Fatalf("jitter objective did not breach: %+v", ob)
	}
	if ob.Long < 300 {
		t.Fatalf("long-window p99 jitter = %v µs, want ~400", ob.Long)
	}
}

func TestSLONRTFloorAndWarmup(t *testing.T) {
	cfg := SLOConfig{
		Interval:       10 * sim.Millisecond,
		ShortWindow:    100 * sim.Millisecond,
		LongWindow:     sim.Second,
		NRTFloorPerSec: 50,
	}
	k, o, s := sloHarness(t, cfg, t.TempDir())

	// Warm-up: before the long window has a baseline nothing is
	// evaluable, even though zero NRT traffic flows.
	k.Run(sim.Time(500 * sim.Millisecond))
	ob := s.Snapshot()[0]
	if ob.Evaluable || ob.Breached {
		t.Fatalf("objective evaluable during warm-up: %+v", ob)
	}

	stop := false
	var step func()
	step = func() {
		if !stop {
			id := o.Begin("NRT", 0, 0x99, k.Now())
			o.Delivered(id, "NRT", 1, 0x99, k.Now()+sim.Time(sim.Millisecond), "")
		}
		k.After(5*sim.Millisecond, step) // 200/s while flowing
	}
	step()
	k.Run(sim.Time(3 * sim.Second))
	ob = s.Snapshot()[0]
	if !ob.Evaluable || ob.Breached {
		t.Fatalf("healthy NRT flow breached floor: %+v", ob)
	}
	if ob.Long < 150 || ob.Long > 250 {
		t.Fatalf("long NRT rate = %v ev/s, want ~200", ob.Long)
	}

	stop = true
	k.Run(sim.Time(6 * sim.Second))
	ob = s.Snapshot()[0]
	if !ob.Breached {
		t.Fatalf("NRT starvation did not breach floor: %+v", ob)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Stop()
	if s.Snapshot() != nil || s.Breached() {
		t.Fatal("nil SLO must be inert")
	}
	var o *Observer
	if o.StartSLO(sim.NewKernel(1), SLOConfig{}) != nil {
		t.Fatal("nil observer must not start an engine")
	}
	if o.Flight() != nil || o.JitterHist("HRT") != nil {
		t.Fatal("nil observer accessors must return nil")
	}
}
