// Package obs is the observability layer of the simulated CAN segment:
// a per-event life-cycle tracer, a metrics registry (counters, gauges,
// fixed-bucket histograms) and exporters for JSONL, Chrome trace_event
// JSON and the Prometheus text exposition format.
//
// The layer is strictly opt-in. Systems built without a Config carry a
// nil *Observer, and every emission helper is nil-safe, so instrumented
// hot paths cost one nil check when observability is off.
package obs

import (
	"fmt"

	"canec/internal/can"
	"canec/internal/sim"
)

// Config opts a system into observability.
type Config struct {
	// Trace records per-event life-cycle stage records.
	Trace bool
	// TraceCap bounds the number of retained records (0 = unlimited).
	// Records beyond the cap are counted in Tracer.Dropped.
	TraceCap int
	// Metrics maintains the metrics registry.
	Metrics bool
	// LatencyHorizon is the upper bound of the per-channel end-to-end
	// latency histograms; zero selects 50 ms.
	LatencyHorizon sim.Duration
	// LatencyBuckets is the bucket count of those histograms (default 50).
	LatencyBuckets int
	// TraceIDBase offsets this observer's trace-ID sequence. Federated
	// segments use disjoint bases (e.g. segment index << 32) so that an
	// event relayed across segments can keep its origin trace ID without
	// colliding with IDs assigned locally — that is what makes one
	// continuous trace span several observers.
	TraceIDBase uint64
	// SLO, when set, starts the per-class objective engine (burn-rate
	// evaluation, breach trace records, /slo state) on the system kernel.
	SLO *SLOConfig
	// FlightRecords, when positive, attaches a flight recorder retaining
	// the last FlightRecords trace records per node, independent of Trace.
	FlightRecords int
	// FlightDir is where flight-recorder post-mortems are dumped
	// (default: the process working directory).
	FlightDir string
}

// Default returns a configuration with tracing and metrics both enabled.
func Default() *Config { return &Config{Trace: true, Metrics: true} }

// BandMap classifies frame priorities into the global band layout, so
// bus-level observations can be attributed per priority band without the
// observability layer depending on the middleware package.
type BandMap struct {
	HRT, Sync      can.Prio
	SRTMin, SRTMax can.Prio
	NRTMin, NRTMax can.Prio
}

// Band names the band of a priority: "hrt", "sync", "srt" or "nrt"
// ("other" outside every band).
func (m BandMap) Band(p can.Prio) string {
	switch {
	case p == m.HRT:
		return "hrt"
	case p == m.Sync:
		return "sync"
	case p >= m.SRTMin && p <= m.SRTMax:
		return "srt"
	case p >= m.NRTMin && p <= m.NRTMax:
		return "nrt"
	}
	return "other"
}

// bandNames is the exposition order of band-labelled metrics.
var bandNames = []string{"hrt", "sync", "srt", "nrt", "other"}

// Observer owns one system's tracer and registry and translates protocol
// activity into records and metrics. All methods are nil-safe: a nil
// Observer ignores every call, so instrumentation points need no
// conditionals.
type Observer struct {
	cfg    Config
	now    func() sim.Time
	bm     BandMap
	tracer *Tracer
	reg    *Registry
	flight *FlightRecorder
	causal CausalSink

	// nextID and pubAt live on the observer (not the tracer) because the
	// e2e latency metric needs publish times even when tracing is off.
	nextID uint64
	pubAt  map[uint64]sim.Time

	// SubjectOf, if set, resolves wire etags back to subjects so
	// bus-level stage records carry the channel subject (the system wires
	// it to the shared binding table).
	SubjectOf func(can.Etag) (uint64, bool)

	published map[string]*Counter // by class
	delivered map[string]*Counter
	dropped   map[string]*Counter // by reason
	latency   map[uint64]*Histogram
	jitter    map[string]*Histogram // delivery jitter, by class
	prevLat   map[uint64]float64    // last observed latency per subject, µs
	sloBreach map[string]*Counter   // SLO breach transitions, by objective

	bandBusy    map[string]*Counter
	retries     *Counter
	arbLosses   *Counter
	promotions  *Counter
	slots       map[string]*Counter   // fired / unused
	copies      map[string]*Counter   // redundant / suppressed
	frames      map[string]*Counter   // ok / err / abort
	exceptions  map[string]*Counter   // by exception kind
	watchdog    map[string]*Counter   // by new state
	guardian    map[string]*Counter   // by band
	busoff      map[string]*Counter   // bus-off entries, by node
	admission   map[string]*Counter   // admission decisions, by class/decision/reason
	lifecycle   map[string]*Counter   // by lifecycle stage
	ctrlplane   map[string]*Counter   // by control-plane stage
	relayFwd    map[string]*Counter   // relay forwarded, by class
	relayDrop   map[string]*Counter   // relay drops, by class:reason
	relayLink   map[string]*Counter   // relay link transitions, by stage
	relayBytes  map[string]*Counter   // relay bytes, by direction
	ctrlStages  map[string]*Counter   // control-loop stages, by loop:stage
	ctrlStale   map[string]*Counter   // stale plant ticks, by loop
	ctrlCost    map[string]*Counter   // accrued quadratic control cost, by loop
	ctrlLat     map[string]*Histogram // sample→actuate loop latency, by loop
	txStartAt   sim.Time
	txStartBand string
	txOpen      bool
}

// New builds an observer. now is the kernel clock (sim.Kernel.Now); bm is
// the system's priority band layout.
func New(cfg Config, now func() sim.Time, bm BandMap) *Observer {
	o := &Observer{cfg: cfg, now: now, bm: bm, pubAt: make(map[uint64]sim.Time),
		nextID: cfg.TraceIDBase}
	if cfg.Trace {
		o.tracer = newTracer(cfg.TraceCap)
	}
	if cfg.FlightRecords > 0 {
		o.flight = NewFlightRecorder(cfg.FlightRecords, cfg.FlightDir)
	}
	if cfg.Metrics {
		o.reg = NewRegistry()
		o.published = make(map[string]*Counter)
		o.delivered = make(map[string]*Counter)
		o.dropped = make(map[string]*Counter)
		o.latency = make(map[uint64]*Histogram)
		o.jitter = make(map[string]*Histogram)
		o.prevLat = make(map[uint64]float64)
		o.sloBreach = make(map[string]*Counter)
		o.bandBusy = make(map[string]*Counter)
		o.slots = make(map[string]*Counter)
		o.copies = make(map[string]*Counter)
		o.frames = make(map[string]*Counter)
		o.exceptions = make(map[string]*Counter)
		o.watchdog = make(map[string]*Counter)
		o.guardian = make(map[string]*Counter)
		o.busoff = make(map[string]*Counter)
		o.admission = make(map[string]*Counter)
		o.lifecycle = make(map[string]*Counter)
		o.ctrlplane = make(map[string]*Counter)
		o.relayFwd = make(map[string]*Counter)
		o.relayDrop = make(map[string]*Counter)
		o.relayLink = make(map[string]*Counter)
		o.relayBytes = make(map[string]*Counter)
		o.ctrlStages = make(map[string]*Counter)
		o.ctrlStale = make(map[string]*Counter)
		o.ctrlCost = make(map[string]*Counter)
		o.ctrlLat = make(map[string]*Histogram)
		o.retries = o.reg.Counter("canec_arb_retries_total",
			"Transmission attempts beyond the first (retransmissions after error frames).", nil)
		o.arbLosses = o.reg.Counter("canec_arb_losses_total",
			"Arbitration rounds lost by a competing frame.", nil)
		o.promotions = o.reg.Counter("canec_srt_promotions_total",
			"SRT identifier rewrites to a higher priority (dynamic promotion).", nil)
		for _, band := range bandNames {
			band := band
			o.bandBusy[band] = o.reg.Counter("canec_band_busy_ns_total",
				"Wire time consumed by frames of each priority band, in virtual nanoseconds.",
				Labels{"band": band})
			o.reg.GaugeFunc("canec_band_utilization",
				"Fraction of elapsed virtual time the bus carried frames of each band.",
				Labels{"band": band}, func() float64 {
					if now() == 0 {
						return 0
					}
					return o.bandBusy[band].Value() / float64(now())
				})
		}
	}
	return o
}

// Enabled reports whether the observer exists (convenience for callers
// holding a possibly-nil pointer).
func (o *Observer) Enabled() bool { return o != nil }

// Tracer returns the life-cycle tracer (nil when tracing is off).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Registry returns the metrics registry (nil when metrics are off).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Records returns the recorded stage records (nil when tracing is off).
func (o *Observer) Records() []Record {
	if o == nil || o.tracer == nil {
		return nil
	}
	return o.tracer.Records()
}

// Flight returns the attached flight recorder (nil when none).
func (o *Observer) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}

// AttachFlight installs (or replaces) the flight recorder. It keeps
// working when tracing is off: emitRecord feeds it independently.
func (o *Observer) AttachFlight(f *FlightRecorder) {
	if o == nil {
		return
	}
	o.flight = f
}

// TraceBase returns the observer's trace-ID base (0 on a nil observer).
// Fleet tooling uses it to attribute trace IDs to segments.
func (o *Observer) TraceBase() uint64 {
	if o == nil {
		return 0
	}
	return o.cfg.TraceIDBase
}

// CausalSink consumes the full stage-record stream for root-cause
// attribution (internal/obs/causal implements it). The interface lives
// here so the observer can feed the engine without importing it; the
// SLO engine calls BreachSummary to stamp breach post-mortems with the
// current top causes.
type CausalSink interface {
	// Add ingests one stage record. Kernel context.
	Add(Record)
	// BreachSummary renders the top-n incident causes for a class (""
	// = all classes), or "" when nothing was attributed yet.
	BreachSummary(class string, n int) string
}

// AttachCausal installs (or, with nil, detaches) the causal analyzer.
// Like the flight recorder it works with tracing off: emitRecord feeds
// it independently. Detached, the hot path keeps its single nil check.
func (o *Observer) AttachCausal(s CausalSink) {
	if o == nil {
		return
	}
	o.causal = s
}

// Causal returns the attached causal sink (nil when detached).
func (o *Observer) Causal() CausalSink {
	if o == nil {
		return nil
	}
	return o.causal
}

// emitRecord fans one stage record out to the tracer (when tracing is
// on), the flight recorder and the causal analyzer (when attached).
// Callers already hold a non-nil observer; any sink may still be absent.
func (o *Observer) emitRecord(r Record) {
	if o.tracer != nil {
		o.tracer.add(r)
	}
	if o.flight != nil {
		o.flight.Add(r)
	}
	if o.causal != nil {
		o.causal.Add(r)
	}
}

// recording reports whether any record sink is attached, so call sites
// can skip assembling records that nobody would retain.
func (o *Observer) recording() bool {
	return o.tracer != nil || o.flight != nil || o.causal != nil
}

// Begin opens a trace for a freshly published event and returns its
// monotonically increasing ID. It returns 0 (an untraced event) on a nil
// observer.
func (o *Observer) Begin(class string, node int, subject uint64, at sim.Time) uint64 {
	if o == nil {
		return 0
	}
	if o.reg != nil {
		o.classCounter(o.published, "canec_events_published_total",
			"Events handed to Publish, by channel class.", class).Inc()
	}
	o.nextID++
	id := o.nextID
	o.pubAt[id] = at
	o.emitRecord(Record{ID: id, Stage: StagePublished, At: at, Node: node,
		Class: class, Subject: subject, Prio: -1})
	return id
}

// Adopt continues a trace opened on another segment's observer: the
// publish counter is maintained and the foreign trace ID is registered
// with the local publish time (feeding the per-segment slice of the
// end-to-end latency histogram), but no new ID is allocated — relayed
// events keep the ID of their origin segment, which is what stitches
// the per-segment traces into one continuous chain.
func (o *Observer) Adopt(id uint64, class string, node int, subject uint64, at sim.Time) {
	if o == nil || id == 0 {
		return
	}
	if o.reg != nil {
		o.classCounter(o.published, "canec_events_published_total",
			"Events handed to Publish, by channel class.", class).Inc()
	}
	if _, ok := o.pubAt[id]; !ok {
		o.pubAt[id] = at
	}
	o.emitRecord(Record{ID: id, Stage: StagePublished, At: at, Node: node,
		Class: class, Subject: subject, Prio: -1, Detail: "relayed"})
}

// RelayFrame records a relay-hop stage of one event (relay_tx, relay_rx,
// relay_drop, relay_late) and maintains the relay forwarding counters.
// detail carries the drop reason or the peer/link annotation.
func (o *Observer) RelayFrame(id uint64, stage Stage, class string, node int, subject uint64, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		switch stage {
		case StageRelayTx:
			c, ok := o.relayFwd[class]
			if !ok {
				c = o.reg.Counter("canec_relay_forwarded_total",
					"Events handed to a relay link for forwarding, by channel class.",
					Labels{"class": class})
				o.relayFwd[class] = c
			}
			c.Inc()
		case StageRelayDrop, StageRelayLate:
			key := string(stage) + ":" + class + ":" + detail
			c, ok := o.relayDrop[key]
			if !ok {
				name := "canec_relay_dropped_total"
				help := "Events shed by relay backpressure or budget policy, by class and reason."
				if stage == StageRelayLate {
					name = "canec_relay_late_total"
					help = "Events forwarded after their relay-deadline budget expired, by class and reason."
				}
				c = o.reg.Counter(name, help, Labels{"class": class, "reason": detail})
				o.relayDrop[key] = c
			}
			c.Inc()
		}
	}
	o.emitRecord(Record{ID: id, Stage: stage, At: at, Node: node,
		Class: class, Subject: subject, Prio: -1, Detail: detail})
}

// RelayLink records a relay link lifecycle transition (relay_up,
// relay_down, relay_redial). Node is the local gateway station; the
// records carry trace ID 0, and the chaos liveness checker reconstructs
// flap windows and recovery from them.
func (o *Observer) RelayLink(stage Stage, node int, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		c, ok := o.relayLink[string(stage)]
		if !ok {
			c = o.reg.Counter("canec_relay_link_total",
				"Relay link lifecycle transitions: relay_up, relay_down, relay_redial.",
				Labels{"event": string(stage)})
			o.relayLink[string(stage)] = c
		}
		c.Inc()
	}
	o.emitRecord(Record{Stage: stage, At: at, Node: node, Prio: -1, Detail: detail})
}

// RelayBytes accounts wire bytes crossing relay links, by direction
// ("tx" or "rx").
func (o *Observer) RelayBytes(dir string, n int) {
	if o == nil || o.reg == nil || n <= 0 {
		return
	}
	c, ok := o.relayBytes[dir]
	if !ok {
		c = o.reg.Counter("canec_relay_bytes_total",
			"Bytes crossing relay links, by direction.", Labels{"dir": dir})
		o.relayBytes[dir] = c
	}
	c.Add(float64(n))
}

// Emit records a middleware-side stage record and maintains the stage's
// associated counters.
func (o *Observer) Emit(id uint64, stage Stage, class string, node int, subject uint64, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		switch stage {
		case StagePromoted:
			o.promotions.Inc()
		case StageExpired:
			o.reasonCounter("expired").Inc()
		case StageShed:
			o.reasonCounter("shed").Inc()
		case StageDropped:
			reason := detail
			if reason == "" {
				reason = "dropped"
			}
			o.reasonCounter(reason).Inc()
		}
	}
	o.emitRecord(Record{ID: id, Stage: stage, At: at, Node: node,
		Class: class, Subject: subject, Prio: -1, Detail: detail})
}

// Delivered closes a trace on a successful notification and feeds the
// per-channel end-to-end latency histogram.
func (o *Observer) Delivered(id uint64, class string, node int, subject uint64, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		o.classCounter(o.delivered, "canec_events_delivered_total",
			"Events delivered to a subscriber's notification handler, by channel class.", class).Inc()
	}
	pub, havePub := o.pubAt[id]
	o.emitRecord(Record{ID: id, Stage: StageDelivered, At: at, Node: node,
		Class: class, Subject: subject, Prio: -1, Detail: detail})
	if o.reg != nil && havePub && at >= pub {
		h, ok := o.latency[subject]
		if !ok {
			h = o.reg.LogHistogram("canec_e2e_latency_microseconds",
				"Publish-to-delivery latency per channel, in virtual microseconds (log buckets).",
				Labels{"subject": fmt.Sprintf("0x%x", subject), "class": class},
				latencyHistMin, o.latencyHistMax(), o.latencyHistBuckets())
			o.latency[subject] = h
		}
		lat := float64(at-pub) / 1e3
		h.Observe(lat)
		// Delivery jitter: spread between consecutive deliveries' latency
		// on the same channel, aggregated per class. For HRT this is the
		// quantity the paper bounds by clock-sync precision.
		if prev, ok := o.prevLat[subject]; ok {
			d := lat - prev
			if d < 0 {
				d = -d
			}
			j, ok := o.jitter[class]
			if !ok {
				j = o.reg.LogHistogram("canec_delivery_jitter_microseconds",
					"Absolute latency delta between consecutive deliveries on a channel, by class (log buckets).",
					Labels{"class": class},
					jitterHistMin, o.latencyHistMax(), o.latencyHistBuckets())
				o.jitter[class] = j
			}
			j.Observe(d)
		}
		o.prevLat[subject] = lat
	}
}

// latencyHistMin is the lower edge (µs) of the log-bucketed latency
// histograms; jitterHistMin the lower edge of the jitter ones (sub-µs,
// because perfectly regular HRT delivery produces near-zero deltas).
const (
	latencyHistMin = 1.0
	jitterHistMin  = 0.1
)

func (o *Observer) latencyHistMax() float64 {
	horizon := o.cfg.LatencyHorizon
	if horizon <= 0 {
		horizon = 50 * sim.Millisecond
	}
	return float64(horizon) / 1e3
}

func (o *Observer) latencyHistBuckets() int {
	if o.cfg.LatencyBuckets > 0 {
		return o.cfg.LatencyBuckets
	}
	return 50
}

// JitterHist exposes the per-class delivery jitter histogram backend
// (nil when metrics are off or no jitter sample was recorded yet). The
// SLO engine evaluates windowed quantiles over its bucket deltas.
func (o *Observer) JitterHist(class string) HistSource {
	if o == nil || o.jitter == nil {
		return nil
	}
	h, ok := o.jitter[class]
	if !ok {
		return nil
	}
	return h.Snapshot()
}

// PublishKernelTime exposes the trace-open time so the middleware can
// fill DeliveryInfo.PublishedAt. ok is false for untraced events.
func (o *Observer) PublishKernelTime(id uint64) (sim.Time, bool) {
	if o == nil || id == 0 {
		return 0, false
	}
	at, ok := o.pubAt[id]
	return at, ok
}

// SlotOutcome counts a calendar slot occurrence: fired (an event rode it)
// or unused (its reserved bandwidth was reclaimed by arbitration).
func (o *Observer) SlotOutcome(fired bool) {
	if o == nil || o.reg == nil {
		return
	}
	outcome := "unused"
	if fired {
		outcome = "fired"
	}
	c, ok := o.slots[outcome]
	if !ok {
		c = o.reg.Counter("canec_hrt_slots_total",
			"Calendar slot occurrences by outcome: fired (occupied) or unused (reclaimed).",
			Labels{"outcome": outcome})
		o.slots[outcome] = c
	}
	c.Inc()
}

// Copies counts HRT redundancy bookkeeping: redundant copies actually
// sent and copies suppressed by bandwidth reclamation.
func (o *Observer) Copies(kind string, n uint64) {
	if o == nil || o.reg == nil || n == 0 {
		return
	}
	c, ok := o.copies[kind]
	if !ok {
		c = o.reg.Counter("canec_hrt_copies_total",
			"Redundant HRT copy accounting: sent vs suppressed (reclaimed).",
			Labels{"kind": kind})
		o.copies[kind] = c
	}
	c.Add(float64(n))
}

// ExceptionRaised counts a middleware exception by kind.
func (o *Observer) ExceptionRaised(kind string) {
	if o == nil || o.reg == nil {
		return
	}
	c, ok := o.exceptions[kind]
	if !ok {
		c = o.reg.Counter("canec_exceptions_total",
			"Middleware exceptions raised, by kind.", Labels{"kind": kind})
		o.exceptions[kind] = c
	}
	c.Inc()
}

// AdmissionDecision counts one probabilistic admission-control decision:
// decision is "admitted", "rejected" or "shed"; reason is the typed
// rejection reason ("none" for admissions).
func (o *Observer) AdmissionDecision(class, decision, reason string) {
	if o == nil || o.reg == nil {
		return
	}
	key := class + "|" + decision + "|" + reason
	c, ok := o.admission[key]
	if !ok {
		c = o.reg.Counter("canec_admission_total",
			"Probabilistic admission-control decisions, by channel class, decision and typed reason.",
			Labels{"class": class, "decision": decision, "reason": reason})
		o.admission[key] = c
	}
	c.Inc()
}

// WatchdogChange counts a liveness state transition observed by a node's
// watchdog.
func (o *Observer) WatchdogChange(state string) {
	if o == nil || o.reg == nil {
		return
	}
	c, ok := o.watchdog[state]
	if !ok {
		c = o.reg.Counter("canec_watchdog_transitions_total",
			"Publisher liveness transitions observed by watchdogs, by new state.",
			Labels{"state": state})
		o.watchdog[state] = c
	}
	c.Inc()
}

// NodeLifecycle records a whole-node lifecycle transition (StageNodeDown,
// StageNodeRestart, StageNodeUp). The records carry trace ID 0: they belong
// to a station, not an event, and chaos invariant checkers use them to
// reconstruct crash windows from the trace alone.
func (o *Observer) NodeLifecycle(stage Stage, node int, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		c, ok := o.lifecycle[string(stage)]
		if !ok {
			c = o.reg.Counter("canec_node_lifecycle_total",
				"Whole-node lifecycle transitions: node_down, node_restart, node_up.",
				Labels{"event": string(stage)})
			o.lifecycle[string(stage)] = c
		}
		c.Inc()
	}
	o.emitRecord(Record{Stage: stage, At: at, Node: node, Prio: -1, Detail: detail})
}

// ControlPlane records a control-plane failover transition
// (StageAgentTakeover, StageMasterTakeover, StageHoldoverEnter,
// StageHoldoverExit). Like node lifecycle records these carry trace ID 0:
// they belong to a station role, not an event, and the chaos checkers read
// takeover latencies and holdover windows from them.
func (o *Observer) ControlPlane(stage Stage, node int, at sim.Time, detail string) {
	if o == nil {
		return
	}
	if o.reg != nil {
		c, ok := o.ctrlplane[string(stage)]
		if !ok {
			c = o.reg.Counter("canec_control_plane_total",
				"Control-plane failover transitions: agent_takeover, master_takeover, holdover_enter, holdover_exit.",
				Labels{"event": string(stage)})
			o.ctrlplane[string(stage)] = c
		}
		c.Inc()
	}
	o.emitRecord(Record{Stage: stage, At: at, Node: node, Prio: -1, Detail: detail})
}

// ControlLoopStage counts one closed-loop workload stage (StageCtrlSample,
// StageCtrlCommand, StageCtrlApply) for one named loop and, when tracing,
// emits the stage record. The records carry trace ID 0: they belong to the
// loop, not one bus event — the underlying sensor and command frames trace
// normally under their own IDs.
func (o *Observer) ControlLoopStage(stage Stage, loop, class string, node int, at sim.Time) {
	if o == nil {
		return
	}
	if o.reg != nil {
		key := loop + "|" + string(stage)
		c, ok := o.ctrlStages[key]
		if !ok {
			c = o.reg.Counter("canec_control_loop_stages_total",
				"Closed-loop control workload stages (ctrl_sample, ctrl_command, ctrl_apply), by loop.",
				Labels{"loop": loop, "stage": string(stage)})
			o.ctrlStages[key] = c
		}
		c.Inc()
	}
	o.emitRecord(Record{Stage: stage, At: at, Node: node, Class: class, Prio: -1, Detail: loop})
}

// ControlStale counts one plant tick driven by a held command older than
// the loop's staleness bound, and emits StageCtrlStale when tracing — the
// application-visible damage of late or lost frames.
func (o *Observer) ControlStale(loop, class string, node int, at sim.Time) {
	if o == nil {
		return
	}
	if o.reg != nil {
		c, ok := o.ctrlStale[loop]
		if !ok {
			c = o.reg.Counter("canec_control_stale_ticks_total",
				"Plant ticks executed under a stale held command (older than the loop's staleness bound), by loop.",
				Labels{"loop": loop})
			o.ctrlStale[loop] = c
		}
		c.Inc()
	}
	o.emitRecord(Record{Stage: StageCtrlStale, At: at, Node: node, Class: class, Prio: -1, Detail: loop})
}

// ControlCost accrues quadratic control cost for one loop: delta is one
// plant tick's contribution (state and input error weighted by the loop's
// cost matrices, integrated over the tick). The SLO engine budgets
// against the sum across loops.
func (o *Observer) ControlCost(loop string, delta float64) {
	if o == nil || o.reg == nil {
		return
	}
	c, ok := o.ctrlCost[loop]
	if !ok {
		c = o.reg.Counter("canec_control_cost_total",
			"Accrued quadratic control cost (state + input, time-integrated), by loop.",
			Labels{"loop": loop})
		o.ctrlCost[loop] = c
	}
	c.Add(delta)
}

// ControlLatency records one measured sensor-sample → actuator-apply loop
// latency in microseconds.
func (o *Observer) ControlLatency(loop string, us float64) {
	if o == nil || o.reg == nil {
		return
	}
	h, ok := o.ctrlLat[loop]
	if !ok {
		h = o.reg.LogHistogram("canec_control_loop_latency_microseconds",
			"Sensor-sample to actuator-apply latency of closed control loops, in microseconds.",
			Labels{"loop": loop}, 1, 1e6, 60)
		o.ctrlLat[loop] = h
	}
	h.Observe(us)
}

// RegisterControlLoop installs a collection-time gauge exposing one loop's
// instantaneous absolute deviation from its setpoint.
func (o *Observer) RegisterControlLoop(loop string, deviation func() float64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.GaugeFunc("canec_control_deviation",
		"Instantaneous absolute deviation of each control loop's plant output from its setpoint.",
		Labels{"loop": loop}, deviation)
}

// RegisterQueueDepth installs a collection-time gauge for one node-local
// queue (HRT slot queues, SRT send queue, NRT chain queue).
func (o *Observer) RegisterQueueDepth(node int, queue string, fn func() int) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.GaugeFunc("canec_queue_depth",
		"Current depth of each node-local send queue.",
		Labels{"node": fmt.Sprintf("%d", node), "queue": queue},
		func() float64 { return float64(fn()) })
}

// RegisterErrorState installs the fault-confinement gauges for one node's
// controller: TEC, REC and the numeric error state (0 error-active,
// 1 error-passive, 2 bus-off). With confinement off the gauges stay flat
// at zero, so they are registered unconditionally like the queue depths.
func (o *Observer) RegisterErrorState(node int, tec, rec, state func() int) {
	if o == nil || o.reg == nil {
		return
	}
	labels := Labels{"node": fmt.Sprintf("%d", node)}
	o.reg.GaugeFunc("canec_can_tec",
		"Transmit error counter of each node's CAN controller.",
		labels, func() float64 { return float64(tec()) })
	o.reg.GaugeFunc("canec_can_rec",
		"Receive error counter of each node's CAN controller.",
		labels, func() float64 { return float64(rec()) })
	o.reg.GaugeFunc("canec_can_error_state",
		"Fault-confinement state of each node's CAN controller: 0 error-active, 1 error-passive, 2 bus-off.",
		labels, func() float64 { return float64(state()) })
}

// classCounter memoises a per-class counter family.
func (o *Observer) classCounter(m map[string]*Counter, name, help, class string) *Counter {
	c, ok := m[class]
	if !ok {
		c = o.reg.Counter(name, help, Labels{"class": class})
		m[class] = c
	}
	return c
}

// reasonCounter memoises the terminal-drop counter family.
func (o *Observer) reasonCounter(reason string) *Counter {
	c, ok := o.dropped[reason]
	if !ok {
		c = o.reg.Counter("canec_events_dropped_total",
			"Events that ended without delivery, by reason.", Labels{"reason": reason})
		o.dropped[reason] = c
	}
	return c
}

// InstallBus chains the observer into a bus's Trace hook (preserving any
// existing hook) and enables arbitration tracing. Bus-level stages are
// correlated to event traces through Frame.Tag.
func (o *Observer) InstallBus(b *can.Bus) {
	if o == nil {
		return
	}
	b.TraceArbitration = true
	prev := b.Trace
	b.Trace = func(e can.TraceEvent) {
		o.busEvent(e)
		if prev != nil {
			prev(e)
		}
	}
}

// busEvent translates one bus trace event into a stage record and metrics.
func (o *Observer) busEvent(e can.TraceEvent) {
	prio := e.Frame.ID.Prio()
	band := o.bm.Band(prio)
	var stage Stage
	node := e.Sender
	switch e.Kind {
	case can.TraceArbWin:
		stage = StageArbWon
	case can.TraceArbLoss:
		stage = StageArbLost
		if o.reg != nil {
			o.arbLosses.Inc()
		}
	case can.TraceTxStart:
		stage = StageTxStart
		if o.reg != nil {
			if e.Attempt > 1 {
				o.retries.Inc()
			}
			o.txStartAt, o.txStartBand, o.txOpen = e.At, band, true
		}
	case can.TraceTxOK:
		stage = StageTxOK
		o.closeWire(e.At)
	case can.TraceTxError:
		stage = StageTxErr
		o.closeWire(e.At)
		if o.reg != nil {
			o.frameCounter("err").Inc()
		}
	case can.TraceTxAbort:
		stage = StageTxAbort
		if o.reg != nil {
			o.frameCounter("abort").Inc()
		}
	case can.TraceRx:
		stage = StageRx
		node = e.Recv
	case can.TraceGuardMute:
		stage = StageGuardMuted
		if o.reg != nil {
			c, ok := o.guardian[band]
			if !ok {
				c = o.reg.Counter("canec_guardian_mutes_total",
					"Transmissions muted by the bus guardian, by priority band.",
					Labels{"band": band})
				o.guardian[band] = c
			}
			c.Inc()
		}
	case can.TraceGuardIsolate:
		stage = StageGuardIsolated
	case can.TraceErrorPassive, can.TraceErrorActive, can.TraceBusOff, can.TraceBusOffRecover:
		// Fault-confinement transitions carry a zero frame (they belong to
		// the controller, not an event), so they bypass the frame-derived
		// record below: Node is the controller, Detail snapshots TEC/REC.
		switch e.Kind {
		case can.TraceErrorPassive:
			stage = StageErrorPassive
		case can.TraceErrorActive:
			stage = StageErrorActive
		case can.TraceBusOff:
			stage = StageBusOff
			if o.reg != nil {
				key := fmt.Sprintf("%d", e.Sender)
				c, ok := o.busoff[key]
				if !ok {
					c = o.reg.Counter("canec_can_busoff_total",
						"Bus-off entries per node's CAN controller.",
						Labels{"node": key})
					o.busoff[key] = c
				}
				c.Inc()
			}
		case can.TraceBusOffRecover:
			stage = StageBusOffRecovered
		}
		if o.recording() {
			o.emitRecord(Record{Stage: stage, At: e.At, Node: e.Sender, Prio: -1,
				Detail: fmt.Sprintf("tec=%d rec=%d", e.TEC, e.REC)})
		}
		return
	default:
		return
	}
	if e.Kind == can.TraceTxOK && o.reg != nil {
		o.frameCounter("ok").Inc()
	}
	if o.recording() {
		etag := e.Frame.ID.Etag()
		var subject uint64
		if o.SubjectOf != nil {
			subject, _ = o.SubjectOf(etag)
		}
		o.emitRecord(Record{ID: e.Frame.Tag, Stage: stage, At: e.At, Node: node,
			Subject: subject, Etag: uint16(etag), Prio: int(prio), Band: band,
			Attempt: e.Attempt})
	}
}

// closeWire attributes the finished wire occupancy to its band.
func (o *Observer) closeWire(at sim.Time) {
	if o.reg == nil || !o.txOpen {
		return
	}
	o.bandBusy[o.txStartBand].Add(float64(at - o.txStartAt))
	o.txOpen = false
}

// frameCounter memoises the frame outcome counters.
func (o *Observer) frameCounter(kind string) *Counter {
	c, ok := o.frames[kind]
	if !ok {
		c = o.reg.Counter("canec_frames_total",
			"Frame transmissions by outcome: ok, err (error frame), abort (single-shot).",
			Labels{"kind": kind})
		o.frames[kind] = c
	}
	return c
}
