package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"canec/internal/sim"
)

func TestFlightRecorderRetentionAndOrder(t *testing.T) {
	f := NewFlightRecorder(4, t.TempDir())
	for i := 0; i < 20; i++ {
		f.Add(Record{ID: uint64(i + 1), Stage: StagePublished, At: sim.Time(i), Node: i % 2})
	}
	f.Add(Record{Stage: StageSLOBreach, At: 100, Node: -1, Detail: "x"})
	if got := f.Len(); got != 9 { // 4 per node ring x2 + 1 system record
		t.Fatalf("Len = %d, want 9", got)
	}
	recs := f.Snapshot()
	// Snapshot must be globally ordered by emission, and per node only the
	// newest 4 survive.
	var lastAt sim.Time
	perNode := map[int]int{}
	for _, r := range recs {
		if r.At < lastAt {
			t.Fatalf("snapshot out of order: %v after %v", r.At, lastAt)
		}
		lastAt = r.At
		perNode[r.Node]++
	}
	if perNode[0] != 4 || perNode[1] != 4 || perNode[-1] != 1 {
		t.Fatalf("per-node retention = %v, want 4/4/1", perNode)
	}
	for _, r := range recs {
		if r.Node >= 0 && r.ID <= 12 {
			t.Fatalf("old record %d survived eviction", r.ID)
		}
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, dir)
	f.Add(Record{ID: 1, Stage: StagePublished, At: 10, Node: 0, Class: "SRT", Subject: 0x42})
	f.Add(Record{ID: 1, Stage: StageDelivered, At: 20, Node: 1, Class: "SRT", Subject: 0x42})
	paths, err := f.Dump("SLO srt-miss!")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want jsonl+trace pair", paths)
	}
	base := filepath.Base(paths[0])
	if base != "postmortem-001-slo-srt-miss-.jsonl" {
		t.Fatalf("unexpected dump name %q", base)
	}
	jf, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	var lines int
	sc := bufio.NewScanner(jf)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines++
	}
	if lines != 3 { // schema header + 2 records
		t.Fatalf("jsonl lines = %d, want 3", lines)
	}
	raw, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty")
	}
	// Second dump must not overwrite the first.
	if paths2, err := f.Dump("slo-srt-miss"); err != nil ||
		!strings.HasPrefix(filepath.Base(paths2[0]), "postmortem-002-") {
		t.Fatalf("second dump = %v, %v", paths2, err)
	}
	if got := len(f.Dumps()); got != 4 {
		t.Fatalf("Dumps() = %d entries, want 4", got)
	}
}

func TestObserverFeedsFlightWithoutTracer(t *testing.T) {
	o := New(Config{Metrics: true, FlightRecords: 16, FlightDir: t.TempDir()},
		func() sim.Time { return 0 }, BandMap{})
	if o.Tracer() != nil {
		t.Fatal("tracer should be off")
	}
	id := o.Begin("SRT", 0, 0x42, 100)
	o.Delivered(id, "SRT", 1, 0x42, 200, "")
	recs := o.Flight().Snapshot()
	if len(recs) != 2 || recs[0].Stage != StagePublished || recs[1].Stage != StageDelivered {
		t.Fatalf("flight records = %+v, want published+delivered", recs)
	}
}
