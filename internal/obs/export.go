package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSONL dumps stage records one JSON object per line, in emission
// order. The format is stable: field names match Record's json tags.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// StageSchema marks the self-describing header line of a versioned trace
// JSONL stream. The header is itself a valid Record (Detail carries the
// schema tag), so consumers that predate it — or replay tools switching
// on stages — skip it like any unknown stage.
const StageSchema Stage = "_schema"

// TraceSchema tags the current trace JSONL schema. Bump the suffix when
// Record grows fields old readers must not misinterpret; ReadJSONL
// ignores unknown fields, so additive growth keeps old dumps readable.
const TraceSchema = "canec-trace/1"

// WriteVersionedJSONL writes the schema header line followed by the
// records — the flight-recorder post-mortem format.
func WriteVersionedJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Record{Stage: StageSchema, Node: -1, Prio: -1,
		Detail: TraceSchema}); err != nil {
		return err
	}
	return WriteJSONL(w, recs)
}

// JSONLInfo is the result of a tolerant trace JSONL read.
type JSONLInfo struct {
	// Schema is the header's schema tag ("" for pre-versioning dumps).
	Schema string
	// Records holds every stage record, header and meta lines stripped.
	Records []Record
}

// ReadJSONL parses a trace JSONL stream (a tracer export or a
// flight-recorder post-mortem) back into records, dropping schema/meta
// lines (stages beginning with "_"). It is deliberately tolerant:
// blank lines are skipped and unknown fields ignored, so dumps written
// by newer builds with additive Record fields still load.
func ReadJSONL(r io.Reader) ([]Record, error) {
	info, err := ReadJSONLInfo(r)
	return info.Records, err
}

// ReadJSONLInfo is ReadJSONL surfacing the schema header as well.
func ReadJSONLInfo(r io.Reader) (JSONLInfo, error) {
	var info JSONLInfo
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return info, fmt.Errorf("trace jsonl line %d: %w", line, err)
		}
		if strings.HasPrefix(string(rec.Stage), "_") {
			if rec.Stage == StageSchema && info.Schema == "" {
				info.Schema = rec.Detail
			}
			continue
		}
		info.Records = append(info.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return info, err
	}
	return info, nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// as loaded by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout: pid 0 is the bus, with one thread per priority band
// carrying a complete ("X") slice per wire occupancy; pid i+1 is node i,
// with instant ("i") events for every life-cycle stage that happened on
// that station.
const busPid = 0

// bandTid maps band names to stable bus-thread IDs.
var bandTid = map[string]int{"hrt": 1, "sync": 2, "srt": 3, "nrt": 4, "other": 5}

// WriteChromeTrace renders stage records as Chrome trace_event JSON with
// one track per node and one per priority band. nodes is the station
// count (for track naming); records from higher node indices still render.
func WriteChromeTrace(w io.Writer, recs []Record, nodes int) error {
	events := make([]chromeEvent, 0, len(recs)+nodes+8)
	meta := func(pid, tid int, kind, name string) {
		ev := chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}}
		events = append(events, ev)
	}
	meta(busPid, 0, "process_name", "bus")
	for band, tid := range bandTid {
		meta(busPid, tid, "thread_name", "band "+band)
	}
	for i := 0; i < nodes; i++ {
		meta(i+1, 0, "process_name", fmt.Sprintf("node %d", i))
		meta(i+1, 1, "thread_name", "lifecycle")
	}

	var open *Record // pending tx_start awaiting its tx_ok/tx_err
	for i := range recs {
		r := recs[i]
		switch r.Stage {
		case StageTxStart:
			open = &recs[i]
			continue
		case StageTxOK, StageTxErr:
			if open != nil {
				name := fmt.Sprintf("subject 0x%x", open.Subject)
				if open.Subject == 0 {
					name = fmt.Sprintf("etag %d", open.Etag)
				}
				events = append(events, chromeEvent{
					Name: name, Cat: "wire", Ph: "X",
					Ts:  float64(open.At) / 1e3,
					Dur: float64(r.At-open.At) / 1e3,
					Pid: busPid, Tid: bandTid[open.Band],
					Args: map[string]any{
						"id": open.ID, "prio": open.Prio,
						"attempt": open.Attempt, "result": string(r.Stage),
					},
				})
				open = nil
			}
		}
		node := r.Node
		if node < 0 {
			node = -1
		}
		ev := chromeEvent{
			Name: string(r.Stage), Cat: "lifecycle", Ph: "i",
			Ts: float64(r.At) / 1e3, Pid: node + 1, Tid: 1, S: "t",
			Args: map[string]any{"id": r.ID},
		}
		if r.Subject != 0 {
			ev.Args["subject"] = fmt.Sprintf("0x%x", r.Subject)
		}
		if r.Class != "" {
			ev.Args["class"] = r.Class
		}
		if r.Detail != "" {
			ev.Args["detail"] = r.Detail
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
