package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL dumps stage records one JSON object per line, in emission
// order. The format is stable: field names match Record's json tags.
func WriteJSONL(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// as loaded by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout: pid 0 is the bus, with one thread per priority band
// carrying a complete ("X") slice per wire occupancy; pid i+1 is node i,
// with instant ("i") events for every life-cycle stage that happened on
// that station.
const busPid = 0

// bandTid maps band names to stable bus-thread IDs.
var bandTid = map[string]int{"hrt": 1, "sync": 2, "srt": 3, "nrt": 4, "other": 5}

// WriteChromeTrace renders stage records as Chrome trace_event JSON with
// one track per node and one per priority band. nodes is the station
// count (for track naming); records from higher node indices still render.
func WriteChromeTrace(w io.Writer, recs []Record, nodes int) error {
	events := make([]chromeEvent, 0, len(recs)+nodes+8)
	meta := func(pid, tid int, kind, name string) {
		ev := chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}}
		events = append(events, ev)
	}
	meta(busPid, 0, "process_name", "bus")
	for band, tid := range bandTid {
		meta(busPid, tid, "thread_name", "band "+band)
	}
	for i := 0; i < nodes; i++ {
		meta(i+1, 0, "process_name", fmt.Sprintf("node %d", i))
		meta(i+1, 1, "thread_name", "lifecycle")
	}

	var open *Record // pending tx_start awaiting its tx_ok/tx_err
	for i := range recs {
		r := recs[i]
		switch r.Stage {
		case StageTxStart:
			open = &recs[i]
			continue
		case StageTxOK, StageTxErr:
			if open != nil {
				name := fmt.Sprintf("subject 0x%x", open.Subject)
				if open.Subject == 0 {
					name = fmt.Sprintf("etag %d", open.Etag)
				}
				events = append(events, chromeEvent{
					Name: name, Cat: "wire", Ph: "X",
					Ts:  float64(open.At) / 1e3,
					Dur: float64(r.At-open.At) / 1e3,
					Pid: busPid, Tid: bandTid[open.Band],
					Args: map[string]any{
						"id": open.ID, "prio": open.Prio,
						"attempt": open.Attempt, "result": string(r.Stage),
					},
				})
				open = nil
			}
		}
		node := r.Node
		if node < 0 {
			node = -1
		}
		ev := chromeEvent{
			Name: string(r.Stage), Cat: "lifecycle", Ph: "i",
			Ts: float64(r.At) / 1e3, Pid: node + 1, Tid: 1, S: "t",
			Args: map[string]any{"id": r.ID},
		}
		if r.Subject != 0 {
			ev.Args["subject"] = fmt.Sprintf("0x%x", r.Subject)
		}
		if r.Class != "" {
			ev.Args["class"] = r.Class
		}
		if r.Detail != "" {
			ev.Args["detail"] = r.Detail
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
