package admin

import (
	"net/http"
	"testing"

	"canec/internal/obs"
	"canec/internal/obs/causal"
	"canec/internal/sim"
)

// TestAdminWhyEndpoint covers /why both bare (enabled:false) and wired
// to an analyzer that has attributed a late chain.
func TestAdminWhyEndpoint(t *testing.T) {
	bare, err := Serve("127.0.0.1:0", Options{Segment: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	var off WhyView
	if code := getJSON(t, "http://"+bare.Addr()+"/why", &off); code != http.StatusOK {
		t.Fatalf("/why code %d", code)
	}
	if off.Enabled || len(off.Classes) != 0 {
		t.Fatalf("bare /why = %+v, want enabled:false", off)
	}

	a := causal.Analyze([]obs.Record{
		{ID: 9, Stage: obs.StageTxStart, At: 0, Node: 5, Subject: 0x42, Attempt: 1},
		{ID: 1, Stage: obs.StagePublished, At: 10, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 10, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 9, Stage: obs.StageTxOK, At: 200_000, Node: 5, Subject: 0x42},
		{ID: 1, Stage: obs.StageTxStart, At: 200_000, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 300_000, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageRx, At: 300_000, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 300_000, Node: 1, Class: "SRT", Subject: 0x300},
	}, causal.Config{LateOver: map[string]sim.Duration{"SRT": 100_000}})

	kernelCalls := 0
	s, err := Serve("127.0.0.1:0", Options{
		Segment: "why",
		Why:     SystemWhy(a),
		Now:     func() sim.Time { return 300_000 },
		InKernel: func(fn func()) {
			kernelCalls++
			fn()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var view WhyView
	if code := getJSON(t, "http://"+s.Addr()+"/why", &view); code != http.StatusOK {
		t.Fatalf("/why code %d", code)
	}
	if !view.Enabled || view.VirtualNow != 300_000 {
		t.Fatalf("/why = %+v", view)
	}
	if kernelCalls == 0 {
		t.Fatal("/why snapshot did not go through InKernel")
	}
	if view.Chains != 1 || len(view.Classes) != 1 {
		t.Fatalf("/why chains=%d classes=%d, want 1/1", view.Chains, len(view.Classes))
	}
	cp := view.Classes[0]
	if cp.Class != "SRT" || cp.Late != 1 || cp.Top != causal.CauseArbInterference {
		t.Fatalf("class profile = %+v", cp)
	}
	if len(view.Recent) != 1 || view.Recent[0].Top != causal.CauseArbInterference {
		t.Fatalf("recent = %+v", view.Recent)
	}
	if SystemWhy(nil) != nil {
		t.Fatal("SystemWhy(nil) must yield a nil producer")
	}
}
