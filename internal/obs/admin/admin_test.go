package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"canec/internal/binding"
	"canec/internal/chaos"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/relay"
	"canec/internal/sim"
)

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	code, body := getBody(t, url)
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON (%v): %s", url, err, body)
	}
	return code
}

// TestAdminBareOptions: every endpoint must answer gracefully when the
// server is wired to nothing — a canecstat loop polls heterogeneous
// daemons and must not be derailed by a minimal one.
func TestAdminBareOptions(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Segment: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var h Health
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("/healthz code %d", code)
	}
	if h.Status != "ok" || h.Segment != "bare" {
		t.Fatalf("healthz = %+v", h)
	}
	var rows []ChannelRow
	getJSON(t, base+"/channels", &rows)
	if len(rows) != 0 {
		t.Fatalf("channels = %v", rows)
	}
	var sv SLOView
	getJSON(t, base+"/slo", &sv)
	if sv.Enabled || sv.Breached {
		t.Fatalf("slo = %+v", sv)
	}
	var rl []RelayRow
	getJSON(t, base+"/relay", &rl)
	if len(rl) != 0 {
		t.Fatalf("relay = %v", rl)
	}
	var fv flightView
	getJSON(t, base+"/flight", &fv)
	if fv.Enabled {
		t.Fatalf("flight = %+v", fv)
	}
	var cv ControlView
	getJSON(t, base+"/control", &cv)
	if cv.Enabled || len(cv.Loops) != 0 {
		t.Fatalf("control = %+v", cv)
	}
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without registry: code %d", code)
	}
	if code, body := getBody(t, base+"/"); code != http.StatusOK || !strings.Contains(string(body), "/slo") {
		t.Fatalf("index: code %d body %s", code, body)
	}
	if code, _ := getBody(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d", code)
	}
}

// TestAdminSystemEndpoints wires a real (unpaced) system in and checks
// the kernel-owned views: metrics exposition, channel rows, and that
// every kernel read goes through InKernel.
func TestAdminSystemEndpoints(t *testing.T) {
	k := sim.NewKernel(7)
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 3, Kernel: k,
		Observe: &obs.Config{Metrics: true, Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	const subj binding.Subject = 0x21
	pub, err := sys.Node(0).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.Node(1).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	k.Run(50 * sim.Millisecond)
	now := sys.Node(0).MW.LocalTime()
	pub.Publish(core.Event{Subject: subj, Payload: []byte{9},
		Attrs: core.EventAttrs{Deadline: now + 10*sim.Millisecond}})
	k.Run(100 * sim.Millisecond)

	var mu sync.Mutex
	inKernelCalls := 0
	s, err := Serve("127.0.0.1:0", Options{
		Segment:  "sys",
		Registry: sys.Obs.Registry(),
		Observer: sys.Obs,
		Now:      k.Now,
		Channels: SystemChannels(sys),
		InKernel: func(fn func()) {
			mu.Lock()
			inKernelCalls++
			mu.Unlock()
			fn()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code %d", code)
	}
	for _, want := range []string{"# TYPE canec_events_published_total counter", `class="SRT"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	var rows []ChannelRow
	getJSON(t, base+"/channels", &rows)
	var pubRow, subRow *ChannelRow
	for i := range rows {
		r := &rows[i]
		if r.Node == 0 && r.Announced {
			pubRow = r
		}
		if r.Node == 1 && r.Subscribed {
			subRow = r
		}
	}
	if pubRow == nil || subRow == nil {
		t.Fatalf("channels missing pub/sub rows: %+v", rows)
	}
	if pubRow.Class != "SRT" || pubRow.TxNode != 0 || pubRow.Subject != "0x21" {
		t.Fatalf("pub row = %+v", *pubRow)
	}
	if subRow.TxNode != -1 {
		t.Fatalf("sub row TxNode = %d", subRow.TxNode)
	}

	var h Health
	getJSON(t, base+"/healthz", &h)
	if h.VirtualNow != int64(k.Now()) || h.Channels != len(rows) {
		t.Fatalf("healthz = %+v (kernel now %d)", h, k.Now())
	}
	mu.Lock()
	calls := inKernelCalls
	mu.Unlock()
	if calls < 3 {
		t.Fatalf("InKernel used %d times, want one per kernel-touching endpoint", calls)
	}
}

// TestAdminControlEndpoint wires a real closed loop over SRT channels
// and checks /control serves its live QoC snapshot through InKernel.
func TestAdminControlEndpoint(t *testing.T) {
	k := sim.NewKernel(9)
	sys, err := core.NewSystem(core.SystemConfig{Nodes: 4, Kernel: k,
		Observe: &obs.Config{Metrics: true}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := control.NewLoop(control.LoopConfig{
		Name: "cart", Plant: control.PlantDoubleIntegrator, Controller: control.ControllerPID,
		Class: core.SRT, Sensor: 1, ControllerNode: 2, Actuator: 1,
		SensorSubject: 0x311, CommandSubject: 0x312, Period: 5 * sim.Millisecond,
		Setpoint: 0, Initial: 1,
	}, sys.Obs)
	if err != nil {
		t.Fatal(err)
	}
	end := sys.Cfg.Epoch + sim.Time(1200*sim.Millisecond)
	if err := l.Install(k, sys.Cfg.Epoch, end, func(n int) *core.Middleware {
		return sys.Node(n).MW
	}, nil); err != nil {
		t.Fatal(err)
	}
	sys.Run(end)

	inKernel := 0
	s, err := Serve("127.0.0.1:0", Options{
		Segment: "ctl", Now: k.Now,
		Control:  LoopRows([]*control.Loop{l}),
		InKernel: func(fn func()) { inKernel++; fn() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var cv ControlView
	getJSON(t, "http://"+s.Addr()+"/control", &cv)
	if !cv.Enabled || len(cv.Loops) != 1 {
		t.Fatalf("control view = %+v", cv)
	}
	row := cv.Loops[0]
	if row.Loop != "cart" || row.Class != "SRT" {
		t.Fatalf("row identity = %+v", row)
	}
	if !row.Settled || row.Cost <= 0 || row.Applied == 0 || row.LatP50Us <= 0 {
		t.Fatalf("row QoC = %+v", row)
	}
	if inKernel == 0 {
		t.Fatal("/control bypassed InKernel")
	}
	if code, body := getBody(t, "http://"+s.Addr()+"/"); code != http.StatusOK ||
		!strings.Contains(string(body), "/control") {
		t.Fatalf("index misses /control: %s", body)
	}
}

// TestAdminSLOBreachOverLinkLoss is the acceptance scenario for the
// introspection plane: two paced segments federate over TCP through a
// chaos proxy; an injected link-loss campaign (proxy killed, uplink
// egress shedding SRT) must drive the srt-miss-rate SLO into breach —
// observable live at /slo and /healthz, recorded as a slo_breach trace
// event, and dumped by the flight recorder as a post-mortem.
func TestAdminSLOBreachOverLinkLoss(t *testing.T) {
	const subj binding.Subject = 0x31
	flightDir := t.TempDir()

	kA := sim.NewKernel(11)
	sysA, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Kernel: kA,
		Observe: &obs.Config{
			Trace: true, Metrics: true, TraceIDBase: 1 << 32,
			FlightRecords: 256, FlightDir: flightDir,
			SLO: &obs.SLOConfig{
				Interval:      20 * sim.Millisecond,
				ShortWindow:   250 * sim.Millisecond,
				LongWindow:    sim.Second,
				SRTMissBudget: 0.05,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	kB := sim.NewKernel(12)
	sysB, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Kernel: kB,
		Observe: &obs.Config{Trace: true, Metrics: true, TraceIDBase: 2 << 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	pacedA := sim.NewPaced(kA, 1.0)
	pacedB := sim.NewPaced(kB, 1.0)

	retry := binding.RetryPolicy{
		Base: sim.Duration(5 * time.Millisecond), Cap: sim.Duration(20 * time.Millisecond),
		Attempts: 100000, JitterFrac: 0.1,
	}
	cfgB := relay.Config{Segment: "segB", HeartbeatEvery: 10 * time.Millisecond,
		HeartbeatTimeout: 50 * time.Millisecond, Retry: retry, Seed: 12,
		Trace: relay.ObserveTrace(pacedB, sysB.Obs, 3, nil)}
	srvB, err := relay.Serve("127.0.0.1:0", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	proxy, err := chaos.NewLinkProxy(srvB.Addr().String(), chaos.LinkFaults{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Small SRT egress cap: once the link is down the queue sheds fast,
	// which is exactly the signal the SLO counts.
	cfgA := relay.Config{Segment: "segA", HeartbeatEvery: 10 * time.Millisecond,
		HeartbeatTimeout: 50 * time.Millisecond, Retry: retry, Seed: 11,
		SRTQueueCap: 4,
		Trace:       relay.ObserveTrace(pacedA, sysA.Obs, 3, nil)}
	upA := relay.Dial(proxy.Addr(), cfgA)
	defer upA.Close()

	bA, err := gateway.NewRemote(sysA.Node(3).MW, relay.NewPort(pacedA, upA), "segA")
	if err != nil {
		t.Fatal(err)
	}
	bA.Budget = 50 * sim.Millisecond
	bB, err := gateway.NewRemote(sysB.Node(3).MW, relay.NewPort(pacedB, srvB), "segB")
	if err != nil {
		t.Fatal(err)
	}
	if err := bA.Forward(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := bB.Announce(core.SRT, subj, core.ChannelAttrs{}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Subscribe(subj, nil, nil); err != nil {
		t.Fatal(err)
	}

	pub, err := sysA.Node(0).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(core.ChannelAttrs{}, nil); err != nil {
		t.Fatal(err)
	}
	var delivered int64
	var mu sync.Mutex
	subB, err := sysB.Node(1).MW.SRTEC(subj)
	if err != nil {
		t.Fatal(err)
	}
	subB.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {
			mu.Lock()
			delivered++
			mu.Unlock()
		}, nil)

	// Settle bindings deterministically before pacing starts.
	kA.Run(50 * sim.Millisecond)
	kB.Run(50 * sim.Millisecond)

	const horizon = sim.Time(time.Hour)
	var wg sync.WaitGroup
	for _, p := range []*sim.Paced{pacedA, pacedB} {
		wg.Add(1)
		go func(p *sim.Paced) { defer wg.Done(); p.Run(horizon) }(p)
	}
	stopped := false
	stopAll := func() {
		if !stopped {
			stopped = true
			pacedA.Stop()
			pacedB.Stop()
			wg.Wait()
		}
	}
	defer stopAll()

	// Admin planes on both segments (the two-daemon requirement).
	admA, err := Serve("127.0.0.1:0", Options{
		Segment: "segA", Registry: sysA.Obs.Registry(), Observer: sysA.Obs,
		SLO: sysA.SLO, Now: kA.Now, Channels: SystemChannels(sysA),
		InKernel: pacedA.Call,
		Relay: func() []RelayRow {
			row := LinkRow("uplink "+proxy.Addr(), "uplink", upA.Connected(), 0,
				upA.Counters(), upA.Depths)
			return []RelayRow{row}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admA.Close()
	admB, err := Serve("127.0.0.1:0", Options{
		Segment: "segB", Registry: sysB.Obs.Registry(), Observer: sysB.Obs,
		Now: kB.Now, Channels: SystemChannels(sysB), InKernel: pacedB.Call,
		Relay: func() []RelayRow {
			return []RelayRow{LinkRow("listen "+srvB.Addr().String(), "listen",
				srvB.Peers() > 0, srvB.Peers(), srvB.Counters(), srvB.Depths)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admB.Close()
	baseA := "http://" + admA.Addr()
	baseB := "http://" + admB.Addr()

	waitFor := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}

	waitFor("link up", 5*time.Second, func() bool {
		return upA.Connected() && srvB.Peers() == 1
	})

	// Start the publisher: one SRT event every 10 ms virtual.
	stopPub := false
	pacedA.Call(func() {
		var tick func()
		tick = func() {
			if stopPub {
				return
			}
			now := sysA.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: subj, Payload: []byte{0xAB},
				Attrs: core.EventAttrs{Deadline: now + 20*sim.Millisecond}})
			kA.After(10*sim.Millisecond, tick)
		}
		tick()
	})
	defer pacedA.Call(func() { stopPub = true })

	waitFor("cross-segment delivery", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return delivered >= 20
	})

	// Healthy phase: wait until the miss-rate objective is warmed up
	// (both burn windows have baselines) and not breached.
	sloA := func() (SLOView, *obs.Objective) {
		var v SLOView
		getJSON(t, baseA+"/slo", &v)
		for i := range v.Objectives {
			if v.Objectives[i].Name == "srt-miss-rate" {
				return v, &v.Objectives[i]
			}
		}
		return v, nil
	}
	waitFor("SLO warm-up", 10*time.Second, func() bool {
		_, ob := sloA()
		return ob != nil && ob.Evaluable
	})
	if _, ob := sloA(); ob.Breached {
		t.Fatalf("objective breached while healthy: %+v", *ob)
	}
	var h Health
	if code := getJSON(t, baseA+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy /healthz: code %d %+v", code, h)
	}
	if code := getJSON(t, baseB+"/healthz", &h); code != http.StatusOK || h.LinksUp != 1 {
		t.Fatalf("segB /healthz: code %d %+v", code, h)
	}

	// Link-loss campaign: kill the proxy. The uplink's egress queue
	// sheds SRT frames (backpressure + budget expiry), each shed feeds
	// canec_relay_dropped_total, and the SLO burns through its budget.
	proxy.Close()

	waitFor("srt-miss-rate breach", 15*time.Second, func() bool {
		v, ob := sloA()
		return ob != nil && ob.Breached && v.Breached
	})
	v, ob := sloA()
	if ob.LongBurn < 1 || ob.ShortBurn < 1 {
		t.Fatalf("breached objective without burn: %+v", *ob)
	}

	// The breach must have produced a flight-recorder post-mortem.
	if len(v.LastDump) == 0 {
		t.Fatal("breach produced no post-mortem dump")
	}
	for _, p := range v.LastDump {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("post-mortem %s: %v", p, err)
		}
	}

	// /healthz flips to 503 while in breach.
	if code := getJSON(t, baseA+"/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "breached" {
		t.Fatalf("breached /healthz: code %d %+v", code, h)
	}

	// The exposition shows the breach and drop counters.
	_, metrics := getBody(t, baseA+"/metrics")
	for _, want := range []string{
		`canec_slo_breaches_total{objective="srt-miss-rate"}`,
		"canec_relay_dropped_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// /flight reflects the dump; /relay shows the dead uplink.
	var fv flightView
	getJSON(t, baseA+"/flight", &fv)
	if !fv.Enabled || len(fv.Dumps) == 0 {
		t.Fatalf("flight = %+v", fv)
	}
	var rl []RelayRow
	getJSON(t, baseA+"/relay", &rl)
	if len(rl) != 1 || rl[0].Kind != "uplink" || rl[0].Dropped == 0 {
		t.Fatalf("relay = %+v", rl)
	}

	// Stop pacing, then verify the breach left a trace record (Call
	// executes inline once the pacer has quit).
	stopAll()
	found := false
	pacedA.Call(func() {
		for _, r := range sysA.Obs.Records() {
			if r.Stage == obs.StageSLOBreach && strings.Contains(r.Detail, "srt-miss-rate") {
				found = true
			}
		}
	})
	if !found {
		t.Fatal("no slo_breach trace record on segment A")
	}
}
