package admin

import (
	"net/http"
	"testing"

	"canec/internal/core"
	"canec/internal/obs/perf"
	"canec/internal/sim"
)

// TestAdminProfileEndpoint drives traffic through a profiled system and
// checks that /profile serves the live stage breakdown, routing the
// snapshot through InKernel.
func TestAdminProfileEndpoint(t *testing.T) {
	sys, err := core.NewSystem(core.SystemConfig{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := &perf.Profiler{}
	prof.AttachKernel(sys.K)
	prof.SetBusySource(func() sim.Duration { return sys.Bus.Stats().BusyTime })

	pub, _ := sys.Node(0).MW.SRTEC(0x41)
	pub.Announce(core.ChannelAttrs{}, nil)
	sub, _ := sys.Node(1).MW.SRTEC(0x41)
	sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	const n = 20
	for r := 0; r < n; r++ {
		sys.K.At(sim.Time(r)*200*sim.Microsecond, func() {
			now := sys.Node(0).MW.LocalTime()
			pub.Publish(core.Event{Subject: 0x41, Payload: []byte{1},
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		})
	}
	sys.Run(sim.Second)

	inKernelCalls := 0
	s, err := Serve("127.0.0.1:0", Options{
		Segment:  "profiled",
		Profiler: prof,
		Now:      sys.K.Now,
		InKernel: func(fn func()) { inKernelCalls++; fn() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var view ProfileView
	if code := getJSON(t, base+"/profile", &view); code != http.StatusOK {
		t.Fatalf("/profile code %d", code)
	}
	if !view.Enabled || view.Segment != "profiled" {
		t.Fatalf("view = %+v", view)
	}
	if view.Profile.Delivered != n {
		t.Fatalf("delivered: %d want %d", view.Profile.Delivered, n)
	}
	if len(view.Profile.Stages) == 0 || view.Profile.Steps == 0 {
		t.Fatalf("empty profile: %+v", view.Profile)
	}
	if view.Profile.BusyVirtualNs <= 0 {
		t.Fatalf("busy virtual: %d", view.Profile.BusyVirtualNs)
	}
	if inKernelCalls == 0 {
		t.Fatal("snapshot did not go through InKernel")
	}
}

// TestAdminProfileDisabled: a daemon without a profiler answers
// enabled:false with an empty stage list, not an error.
func TestAdminProfileDisabled(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Segment: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var view ProfileView
	if code := getJSON(t, "http://"+s.Addr()+"/profile", &view); code != http.StatusOK {
		t.Fatalf("/profile code %d", code)
	}
	if view.Enabled {
		t.Fatalf("view = %+v", view)
	}
	if view.Profile.Stages == nil {
		t.Fatal("stages should serialize as [], not null")
	}
}
