// Package admin embeds a live-introspection HTTP plane into a canec
// process. One Server exposes the node-local view of a running system:
// Prometheus metrics, bound channels with queue depths and miss
// counters, SLO burn state, relay link health, flight-recorder status,
// and the stock net/http/pprof profiles.
//
// The kernel is single-toucher: every handler that reads kernel-owned
// state (the metrics registry, middleware channel tables, SLO
// objectives) routes the read through Options.InKernel. A paced daemon
// passes sim.Paced.Call so the snapshot happens between kernel steps;
// non-paced embedders may leave it nil and the read runs inline.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"canec/internal/can"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/obs/causal"
	"canec/internal/obs/perf"
	"canec/internal/prob"
	"canec/internal/sim"
)

// ChannelRow is one bound channel on one node, as served at /channels.
type ChannelRow struct {
	Node       int    `json:"node"`
	Subject    string `json:"subject"`
	Etag       uint16 `json:"etag"`
	Class      string `json:"class"`
	TxNode     int    `json:"tx_node"` // announcing node, -1 for a pure subscriber row
	Announced  bool   `json:"announced"`
	Subscribed bool   `json:"subscribed"`
	Queued     int    `json:"queued"`
	Missed     uint64 `json:"missed"`
}

// RelayRow is one relay endpoint (listener or uplink) as served at
// /relay. All fields come from atomics or mutex-guarded snapshots, so
// the producing closure is safe to call from the HTTP goroutine
// without kernel context.
type RelayRow struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "listen" or "uplink"
	Connected bool   `json:"connected"`
	Peers     int    `json:"peers,omitempty"`
	DepthHRT  int    `json:"depth_hrt"`
	DepthSRT  int    `json:"depth_srt"`
	DepthNRT  int    `json:"depth_nrt"`
	Sent      uint64 `json:"sent"`
	Received  uint64 `json:"received"`
	Dropped   uint64 `json:"dropped"`
	Late      uint64 `json:"late"`
	Redials   uint64 `json:"redials"`
	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
}

// Health is the /healthz payload.
type Health struct {
	Status     string  `json:"status"` // "ok" or "breached"
	Segment    string  `json:"segment"`
	VirtualNow int64   `json:"virtual_now_ns"`
	Uptime     float64 `json:"uptime_seconds"`
	TraceBase  uint64  `json:"trace_base"`
	Channels   int     `json:"channels"`
	Links      int     `json:"links"`
	LinksUp    int     `json:"links_up"`
	Breached   bool    `json:"slo_breached"`
	FlightLen  int     `json:"flight_records"`
	Dumps      int     `json:"postmortems"`
	// Fault-confinement summary (zero when the error machine is off):
	// controllers currently error-passive / bus-off, plus the total
	// bus-off entries since boot.
	ErrorPassive int    `json:"error_passive"`
	BusOff       int    `json:"bus_off"`
	BusOffTotal  uint64 `json:"busoff_total"`
}

// SLOView is the /slo payload: the objective list plus engine-level
// context a fleet poller wants in one fetch.
type SLOView struct {
	Segment    string          `json:"segment"`
	VirtualNow int64           `json:"virtual_now_ns"`
	Enabled    bool            `json:"enabled"`
	Breached   bool            `json:"breached"`
	Objectives []obs.Objective `json:"objectives"`
	LastDump   []string        `json:"last_dump,omitempty"`
}

// ProfileView is the /profile payload: the kernel profiler's live
// stage breakdown plus health counters, or enabled:false when no
// profiler is attached.
type ProfileView struct {
	Segment string        `json:"segment"`
	Enabled bool          `json:"enabled"`
	Profile perf.Snapshot `json:"profile"`
}

// AdmissionView is the /admission payload: the probabilistic admission
// controller's snapshot (admitted set with predicted miss probabilities,
// rejection counts by typed reason, planned vs measured error rates), or
// enabled:false when no controller is configured.
type AdmissionView struct {
	Segment    string `json:"segment"`
	VirtualNow int64  `json:"virtual_now_ns"`
	prob.Snapshot
}

// ControlRow is one closed control loop as served at /control: the
// loop's live quality-of-control snapshot projected into flat JSON.
type ControlRow struct {
	Loop       string  `json:"loop"`
	Class      string  `json:"class"`
	Cost       float64 `json:"cost"`
	CostPerSec float64 `json:"cost_per_sec"`
	Settled    bool    `json:"settled"`
	SettlingMs float64 `json:"settling_ms"`
	Overshoot  float64 `json:"overshoot"`
	MaxDev     float64 `json:"max_dev"`
	FinalDev   float64 `json:"final_dev"`
	Stale      uint64  `json:"stale"`
	Applied    uint64  `json:"applied"`
	Commands   uint64  `json:"commands"`
	LatP50Us   float64 `json:"lat_p50_us"`
	LatP99Us   float64 `json:"lat_p99_us"`
}

// ControlView is the /control payload.
type ControlView struct {
	Segment    string       `json:"segment"`
	VirtualNow int64        `json:"virtual_now_ns"`
	Enabled    bool         `json:"enabled"`
	Loops      []ControlRow `json:"loops"`
}

// WhyView is the /why payload: the why-late engine's cause profiles and
// recent incident chains, or enabled:false when no analyzer is attached.
type WhyView struct {
	Segment    string `json:"segment"`
	VirtualNow int64  `json:"virtual_now_ns"`
	Enabled    bool   `json:"enabled"`
	causal.Snapshot
}

// flightView is the /flight payload.
type flightView struct {
	Enabled bool     `json:"enabled"`
	Records int      `json:"records"`
	PerNode int      `json:"per_node"`
	Dumps   []string `json:"dumps"`
}

// Options configures a Server. Every field is optional; endpoints
// backed by a nil field degrade gracefully (empty lists, enabled:false)
// instead of erroring, so one canecstat loop can poll heterogeneous
// daemons.
type Options struct {
	// Segment names this process in /healthz and /slo.
	Segment string
	// Registry backs /metrics.
	Registry *obs.Registry
	// Observer supplies the trace base and the flight recorder (unless
	// Flight overrides it).
	Observer *obs.Observer
	// SLO backs /slo and the breached bit in /healthz.
	SLO *obs.SLO
	// Flight backs /flight; defaults to Observer.Flight().
	Flight *obs.FlightRecorder
	// Now reads the virtual clock (kernel context).
	Now func() sim.Time
	// Channels produces the /channels rows (kernel context). See
	// SystemChannels for the stock core.System adapter.
	Channels func() []ChannelRow
	// Relay produces the /relay rows. Called WITHOUT kernel context —
	// relay counters and depths are goroutine-safe by contract.
	Relay func() []RelayRow
	// Profiler backs /profile. Snapshot reads kernel-owned state, so
	// the handler routes it through InKernel.
	Profiler *perf.Profiler
	// Admission produces the /admission snapshot (kernel context). See
	// SystemAdmission for the stock core.System adapter; nil serves
	// enabled:false.
	Admission func() prob.Snapshot
	// Control produces the /control rows (kernel context — loop state is
	// kernel-owned). See LoopRows for the stock control.Loop adapter; nil
	// serves enabled:false.
	Control func() []ControlRow
	// Why produces the /why snapshot (kernel context — the analyzer is
	// kernel-owned). See SystemWhy for the stock adapter over an
	// attached causal.Analyzer; nil serves enabled:false.
	Why func() causal.Snapshot
	// ErrorState summarizes the fault-confinement plane for /healthz:
	// controllers currently error-passive, currently bus-off, and total
	// bus-off entries. Reads kernel-owned controller state, so the
	// handler routes it through InKernel. See SystemErrorState for the
	// stock core.System adapter.
	ErrorState func() (passive, busoff int, total uint64)
	// InKernel runs fn in kernel context (e.g. sim.Paced.Call). Nil
	// means call fn directly.
	InKernel func(func())
}

// Server is a running admin endpoint bound to one TCP listener.
type Server struct {
	opts  Options
	ln    net.Listener
	srv   *http.Server
	start time.Time

	mu     sync.Mutex
	closed bool
}

// Serve binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/channels", s.handleChannels)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/relay", s.handleRelay)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/admission", s.handleAdmission)
	mux.HandleFunc("/control", s.handleControl)
	mux.HandleFunc("/why", s.handleWhy)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr reports the bound address with the ephemeral port resolved.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}

// inKernel routes fn through the configured kernel-context bridge.
func (s *Server) inKernel(fn func()) {
	if s.opts.InKernel != nil {
		s.opts.InKernel(fn)
		return
	}
	fn()
}

func (s *Server) vnow() sim.Time {
	var now sim.Time
	if s.opts.Now != nil {
		s.inKernel(func() { now = s.opts.Now() })
	}
	return now
}

func (s *Server) flight() *obs.FlightRecorder {
	if s.opts.Flight != nil {
		return s.opts.Flight
	}
	return s.opts.Observer.Flight()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup only
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "canec admin plane (segment %q)\n\n", s.opts.Segment)
	for _, ep := range []string{
		"/metrics", "/healthz", "/channels", "/slo", "/relay", "/flight", "/profile", "/admission", "/control", "/why", "/debug/pprof/",
	} {
		fmt.Fprintln(w, ep)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Registry == nil {
		http.Error(w, "no metrics registry", http.StatusNotFound)
		return
	}
	// Render inside kernel context: counters and histograms are
	// kernel-owned and WriteText reads them without locks.
	var body []byte
	s.inKernel(func() {
		var b sbuf
		s.opts.Registry.WriteText(&b)
		body = b.b
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(body) //nolint:errcheck
}

// sbuf is a minimal io.Writer so WriteText can render into a byte
// slice captured across the kernel-context boundary.
type sbuf struct{ b []byte }

func (s *sbuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{Status: "ok", Segment: s.opts.Segment, Uptime: time.Since(s.start).Seconds()}
	s.inKernel(func() {
		if s.opts.Now != nil {
			h.VirtualNow = int64(s.opts.Now())
		}
		if s.opts.Channels != nil {
			h.Channels = len(s.opts.Channels())
		}
		if s.opts.ErrorState != nil {
			h.ErrorPassive, h.BusOff, h.BusOffTotal = s.opts.ErrorState()
		}
		h.Breached = s.opts.SLO.Breached()
	})
	h.TraceBase = s.opts.Observer.TraceBase()
	if s.opts.Relay != nil {
		rows := s.opts.Relay()
		h.Links = len(rows)
		for _, row := range rows {
			if row.Connected {
				h.LinksUp++
			}
		}
	}
	if f := s.flight(); f != nil {
		h.FlightLen = f.Len()
		h.Dumps = len(f.Dumps())
	}
	if h.Breached {
		h.Status = "breached"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h) //nolint:errcheck
		return
	}
	writeJSON(w, h)
}

func (s *Server) handleChannels(w http.ResponseWriter, _ *http.Request) {
	rows := []ChannelRow{}
	if s.opts.Channels != nil {
		s.inKernel(func() { rows = s.opts.Channels() })
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Node != rows[j].Node {
			return rows[i].Node < rows[j].Node
		}
		return rows[i].Subject < rows[j].Subject
	})
	writeJSON(w, rows)
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	view := SLOView{Segment: s.opts.Segment, Objectives: []obs.Objective{}}
	s.inKernel(func() {
		if s.opts.Now != nil {
			view.VirtualNow = int64(s.opts.Now())
		}
		if snap := s.opts.SLO.Snapshot(); snap != nil {
			view.Enabled = true
			view.Objectives = snap
		}
		view.Breached = s.opts.SLO.Breached()
		if s.opts.SLO != nil {
			view.LastDump = s.opts.SLO.LastDump
		}
	})
	writeJSON(w, view)
}

func (s *Server) handleRelay(w http.ResponseWriter, _ *http.Request) {
	rows := []RelayRow{}
	if s.opts.Relay != nil {
		rows = s.opts.Relay()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	writeJSON(w, rows)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := s.flight()
	if f == nil {
		writeJSON(w, flightView{Dumps: []string{}})
		return
	}
	if r.Method == http.MethodPost {
		// Operator-triggered post-mortem: dump whatever the recorder
		// holds right now.
		var paths []string
		var err error
		s.inKernel(func() { paths, err = f.Dump("manual") })
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, paths)
		return
	}
	view := flightView{Enabled: true, PerNode: f.PerNode(), Dumps: f.Dumps()}
	s.inKernel(func() { view.Records = f.Len() })
	if view.Dumps == nil {
		view.Dumps = []string{}
	}
	writeJSON(w, view)
}

func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	view := ProfileView{Segment: s.opts.Segment}
	if s.opts.Profiler != nil {
		view.Enabled = true
		s.inKernel(func() { view.Profile = s.opts.Profiler.Snapshot() })
	}
	if view.Profile.Stages == nil {
		view.Profile.Stages = []perf.StageSnap{}
	}
	writeJSON(w, view)
}

func (s *Server) handleAdmission(w http.ResponseWriter, _ *http.Request) {
	view := AdmissionView{Segment: s.opts.Segment}
	s.inKernel(func() {
		if s.opts.Now != nil {
			view.VirtualNow = int64(s.opts.Now())
		}
		if s.opts.Admission != nil {
			view.Snapshot = s.opts.Admission()
		}
	})
	if view.Admitted == nil {
		view.Admitted = []prob.AdmittedChannel{}
	}
	if view.Rejected == nil {
		view.Rejected = map[string]uint64{}
	}
	writeJSON(w, view)
}

func (s *Server) handleControl(w http.ResponseWriter, _ *http.Request) {
	view := ControlView{Segment: s.opts.Segment, Loops: []ControlRow{}}
	s.inKernel(func() {
		if s.opts.Now != nil {
			view.VirtualNow = int64(s.opts.Now())
		}
		if s.opts.Control != nil {
			view.Enabled = true
			if rows := s.opts.Control(); rows != nil {
				view.Loops = rows
			}
		}
	})
	sort.Slice(view.Loops, func(i, j int) bool { return view.Loops[i].Loop < view.Loops[j].Loop })
	writeJSON(w, view)
}

func (s *Server) handleWhy(w http.ResponseWriter, _ *http.Request) {
	view := WhyView{Segment: s.opts.Segment}
	s.inKernel(func() {
		if s.opts.Now != nil {
			view.VirtualNow = int64(s.opts.Now())
		}
		if s.opts.Why != nil {
			view.Enabled = true
			view.Snapshot = s.opts.Why()
		}
	})
	if view.Classes == nil {
		view.Classes = []causal.ClassProfile{}
	}
	if view.Recent == nil {
		view.Recent = []causal.ChainSummary{}
	}
	writeJSON(w, view)
}

// SystemWhy adapts an attached causal analyzer into Options.Why; a nil
// analyzer yields a nil producer (endpoint serves enabled:false).
func SystemWhy(a *causal.Analyzer) func() causal.Snapshot {
	if a == nil {
		return nil
	}
	return a.Snapshot
}

// QoCRow projects one control.QoC report into its /control row.
func QoCRow(q control.QoC) ControlRow {
	row := ControlRow{
		Loop: q.Loop, Class: q.Class,
		Cost: q.Cost, CostPerSec: q.CostPerSec,
		Settled: q.Settled, SettlingMs: float64(q.SettlingTime) / float64(sim.Millisecond),
		Overshoot: q.Overshoot, MaxDev: q.MaxDev, FinalDev: q.FinalDev,
		Stale: q.Stale, Applied: q.Applied, Commands: q.Commands,
	}
	if q.Latency != nil && q.Latency.N() > 0 {
		row.LatP50Us = q.Latency.Quantile(0.50)
		row.LatP99Us = q.Latency.Quantile(0.99)
	}
	return row
}

// LoopRows adapts a set of control loops into the /control row
// producer. The returned closure must run in kernel context (the Server
// routes it through Options.InKernel) because Report reads live loop
// state.
func LoopRows(loops []*control.Loop) func() []ControlRow {
	return func() []ControlRow {
		rows := make([]ControlRow, 0, len(loops))
		for _, l := range loops {
			rows = append(rows, QoCRow(l.Report()))
		}
		return rows
	}
}

// SystemAdmission adapts a core.System into the /admission snapshot
// producer. The returned closure must run in kernel context (the Server
// routes it through Options.InKernel) and degrades to enabled:false
// when the system runs without an admission controller.
func SystemAdmission(sys *core.System) func() prob.Snapshot {
	return func() prob.Snapshot {
		if sys.Admission == nil {
			return prob.Snapshot{}
		}
		return sys.Admission.Snapshot()
	}
}

// SystemChannels adapts a core.System into the /channels row producer.
// The returned closure must run in kernel context (the Server routes it
// through Options.InKernel).
func SystemChannels(sys *core.System) func() []ChannelRow {
	return func() []ChannelRow {
		var rows []ChannelRow
		for _, n := range sys.Nodes {
			for _, ci := range n.MW.Channels() {
				tx := -1
				if ci.Announced {
					tx = n.Index
				}
				rows = append(rows, ChannelRow{
					Node:       n.Index,
					Subject:    fmt.Sprintf("0x%x", uint64(ci.Subject)),
					Etag:       uint16(ci.Etag),
					Class:      ci.Class.String(),
					TxNode:     tx,
					Announced:  ci.Announced,
					Subscribed: ci.Subscribed,
					Queued:     ci.Queued,
					Missed:     ci.Missed,
				})
			}
		}
		return rows
	}
}

// SystemErrorState adapts a core.System into the /healthz
// fault-confinement summary. The returned closure must run in kernel
// context (the Server routes it through Options.InKernel).
func SystemErrorState(sys *core.System) func() (passive, busoff int, total uint64) {
	return func() (int, int, uint64) {
		var passive, busoff int
		for _, n := range sys.Nodes {
			switch n.Ctrl.State() {
			case can.ErrorPassive:
				passive++
			case can.BusOff:
				busoff++
			}
		}
		return passive, busoff, sys.Bus.Stats().BusOffEvents
	}
}

// LinkRow adapts one relay endpoint into a RelayRow. connected covers
// the uplink side ("is the dial live"); listeners pass peers>0.
func LinkRow(name, kind string, connected bool, peers int, cnt interface {
	Sent() uint64
	Received() uint64
	Dropped() uint64
	Late() uint64
	Redials() uint64
	BytesIn() uint64
	BytesOut() uint64
}, depths func() (hrt, srt, nrt int)) RelayRow {
	h, sq, n := depths()
	return RelayRow{
		Name: name, Kind: kind, Connected: connected, Peers: peers,
		DepthHRT: h, DepthSRT: sq, DepthNRT: n,
		Sent: cnt.Sent(), Received: cnt.Received(),
		Dropped: cnt.Dropped(), Late: cnt.Late(), Redials: cnt.Redials(),
		BytesIn: cnt.BytesIn(), BytesOut: cnt.BytesOut(),
	}
}
