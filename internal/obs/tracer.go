package obs

import (
	"canec/internal/sim"
)

// Stage labels one step of an event's life cycle. The publish-side
// middleware opens a trace with StagePublished; the bus contributes the
// arbitration and wire stages; the subscribe-side middleware closes it
// with StageDelivered (or one of the terminal drop stages). A delivered
// event therefore leaves a chain
//
//	published → enqueued → [promoted]* → [arb_lost]* → arb_won →
//	tx_start → tx_ok → rx → delivered
//
// with non-decreasing timestamps, all carrying the same trace ID.
type Stage string

const (
	// StagePublished opens a trace: the application called Publish.
	StagePublished Stage = "published"
	// StageEnqueued marks the event entering a send queue (the HRT slot
	// queue, the controller's SRT mailbox set, or the NRT chain queue).
	StageEnqueued Stage = "enqueued"
	// StagePromoted marks an SRT identifier rewrite to a higher priority.
	StagePromoted Stage = "promoted"
	// StageArbWon marks the event's frame winning an arbitration round.
	StageArbWon Stage = "arb_won"
	// StageArbLost marks the frame competing in and losing a round.
	StageArbLost Stage = "arb_lost"
	// StageTxStart marks the frame starting to occupy the wire.
	StageTxStart Stage = "tx_start"
	// StageTxOK marks a successful (sender-observed) transmission.
	StageTxOK Stage = "tx_ok"
	// StageTxErr marks an error frame; the controller will retry unless
	// the request was single-shot.
	StageTxErr Stage = "tx_err"
	// StageTxAbort marks a single-shot request abandoned after an error.
	StageTxAbort Stage = "tx_abort"
	// StageRx marks delivery of the frame to one receiving controller.
	StageRx Stage = "rx"
	// StageDelivered closes a trace: the subscriber's notification ran.
	StageDelivered Stage = "delivered"
	// StageDropped closes a trace without delivery (queue overflow,
	// abandoned transmission, duplicate copy).
	StageDropped Stage = "dropped"
	// StageExpired closes a trace: temporal validity ended in the queue.
	StageExpired Stage = "expired"
	// StageShed closes a trace: value-based load shedding removed it.
	StageShed Stage = "shed"
	// StageMissed marks a subscriber detecting a missing message in a
	// periodic HRT slot (the SlotMissed local exception). It carries trace
	// ID 0 — the subscriber cannot know the ID of a frame it never
	// received — with the channel subject set, so checkers can match it to
	// the unterminated publish.
	StageMissed Stage = "slot_missed"
	// StageGuardMuted marks the bus guardian muting a calendar-violating
	// transmission before it reached the wire (babbling-idiot containment).
	StageGuardMuted Stage = "guard_muted"
	// StageGuardIsolated marks the guardian escalating to whole-station
	// isolation: every further transmission of the station is muted. Emitted
	// once per suppressed attempt; the first occurrence timestamps the
	// isolation for the chaos checkers.
	StageGuardIsolated Stage = "guard_isolated"

	// Fault-confinement stages carry trace ID 0 with Node set to the
	// controller whose error state changed (they belong to a station, not an
	// event); Detail snapshots the TEC/REC after the transition. Chaos
	// checkers pair bus_off with bus_off_recovered to bound recovery times.

	// StageErrorPassive marks a controller crossing into error-passive
	// (TEC or REC reached 128).
	StageErrorPassive Stage = "error_passive"
	// StageErrorActive marks a controller returning to error-active.
	StageErrorActive Stage = "error_active"
	// StageBusOff marks a controller entering bus-off and detaching
	// (TEC reached 256).
	StageBusOff Stage = "bus_off"
	// StageBusOffRecovered marks a bus-off controller completing the
	// 128×11-recessive-bit observation (plus any supervisor backoff) and
	// re-joining error-active with cleared counters.
	StageBusOffRecovered Stage = "bus_off_recovered"

	// Node lifecycle stages carry trace ID 0 (they belong to a station, not
	// an event) with Node set to the affected station. Chaos invariant
	// checkers read crash windows from these records.

	// StageNodeDown marks a whole-node crash: the station's controller
	// detached from the bus.
	StageNodeDown Stage = "node_down"
	// StageNodeRestart marks the start of a node's recovery (power-on).
	StageNodeRestart Stage = "node_restart"
	// StageNodeUp marks a completed recovery: re-joined, re-synced,
	// re-bound and back on the calendar.
	StageNodeUp Stage = "node_up"

	// Control-plane failover stages also carry trace ID 0 with Node set to
	// the station whose role changed. Chaos invariant checkers use them to
	// verify takeover latency bounds.

	// StageAgentTakeover marks a standby binding agent assuming the agent
	// role after missed heartbeats.
	StageAgentTakeover Stage = "agent_takeover"
	// StageMasterTakeover marks a backup time master starting to emit SYNC
	// rounds after the acting master fell silent.
	StageMasterTakeover Stage = "master_takeover"
	// StageHoldoverEnter marks a follower clock switching to holdover:
	// extrapolating on its last known rate with a growing uncertainty bound.
	StageHoldoverEnter Stage = "holdover_enter"
	// StageHoldoverExit marks a follower clock re-converging on a master.
	StageHoldoverExit Stage = "holdover_exit"

	// Relay stages tie the segments of a federated channel together: an
	// event published on segment A and delivered on segment C leaves
	// relay_tx/relay_rx pairs at every hop, all carrying the trace ID
	// opened on the origin segment (segments use disjoint trace-ID bases,
	// so the origin ID is preserved across republication).

	// StageRelayTx marks an event leaving the local segment through a
	// relay link (enqueued toward a peer).
	StageRelayTx Stage = "relay_tx"
	// StageRelayRx marks an event arriving from a relay peer, before
	// republication on the local segment.
	StageRelayRx Stage = "relay_rx"
	// StageRelayDrop closes a relayed event's local life: the relay shed
	// it (NRT under backpressure, SRT budget expired, loop/hop guard).
	// HRT events are never given this stage — they are forwarded late
	// and marked StageRelayLate instead.
	StageRelayDrop Stage = "relay_drop"
	// StageRelayLate marks a relayed event forwarded after its per-hop
	// deadline budget was exhausted (counted, never silently dropped).
	StageRelayLate Stage = "relay_late"

	// Relay link lifecycle stages carry trace ID 0 with Node set to the
	// local gateway station; chaos liveness checkers read flap windows
	// and recovery from them.

	// StageRelayUp marks a relay link becoming usable (dial or accept
	// completed, Hello exchanged).
	StageRelayUp Stage = "relay_up"
	// StageRelayDown marks a relay link loss (peer disconnect, heartbeat
	// timeout, scripted flap).
	StageRelayDown Stage = "relay_down"
	// StageRelayRedial marks an uplink starting a re-dial attempt under
	// the retry policy's backoff.
	StageRelayRedial Stage = "relay_redial"

	// Admission stages record the probabilistic admission controller's
	// decisions. They carry trace ID 0 (the decision concerns a channel,
	// not one event); Detail carries the predicted miss probability, the
	// class target and — for rejections — the typed reason.

	// StageAdmitted marks a channel passing admission analysis at
	// announce time.
	StageAdmitted Stage = "admitted"
	// StageAdmitRejected marks a channel refused at announce time
	// (predicted miss probability over target, unschedulable set,
	// undeclared rate, or an armed re-admission backoff).
	StageAdmitRejected Stage = "admit_rejected"
	// StageAdmitShed marks a previously admitted channel withdrawn after
	// an error-state transition raised the measured error rate past what
	// its deadline tolerates.
	StageAdmitShed Stage = "admit_shed"

	// StageSLOBreach marks a service-level objective entering breach:
	// both burn-rate windows exceeded the configured threshold. It
	// carries trace ID 0 and Node -1 (the objective belongs to the
	// segment, not a station); Detail names the objective and the burn
	// factors, and Class the guarded channel class when class-bound.
	StageSLOBreach Stage = "slo_breach"

	// Control-loop stages record the closed-loop plant/controller
	// workload (internal/control). They carry trace ID 0 (the stage
	// concerns the loop, not one bus event — the underlying sensor and
	// command frames trace normally); Detail names the loop, Class its
	// sensor/command channel class, Node the station the stage ran on.

	// StageCtrlSample marks a sensor sampling the plant state and
	// publishing it on the loop's sensor channel.
	StageCtrlSample Stage = "ctrl_sample"
	// StageCtrlCommand marks the controller computing a control input
	// from a delivered sample and publishing it on the command channel.
	StageCtrlCommand Stage = "ctrl_command"
	// StageCtrlApply marks the actuator receiving a command and latching
	// it into the zero-order hold.
	StageCtrlApply Stage = "ctrl_apply"
	// StageCtrlStale marks a plant tick driven by a held command older
	// than the loop's staleness bound — the visible cost of late or lost
	// frames.
	StageCtrlStale Stage = "ctrl_stale"
)

// Record is one timestamped stage of one event's life cycle.
type Record struct {
	// ID is the trace identifier assigned at publish; 0 marks system
	// frames (clock sync, configuration) and untraced traffic.
	ID    uint64 `json:"id,omitempty"`
	Stage Stage  `json:"stage"`
	// At is the kernel (global virtual) time in nanoseconds.
	At sim.Time `json:"at"`
	// Node is the station index the stage happened on (the receiver for
	// rx/delivered stages), or -1 when unknown.
	Node int `json:"node"`
	// Class is the channel class (HRT/SRT/NRT) when known.
	Class string `json:"class,omitempty"`
	// Subject is the event channel's subject when known.
	Subject uint64 `json:"subject,omitempty"`
	// Etag is the 14-bit wire event tag for bus-level stages.
	Etag uint16 `json:"etag,omitempty"`
	// Prio is the frame priority for bus-level stages, -1 otherwise.
	Prio int `json:"prio,omitempty"`
	// Band names the priority band for bus-level stages.
	Band string `json:"band,omitempty"`
	// Attempt is the transmission attempt for bus-level stages.
	Attempt int `json:"attempt,omitempty"`
	// Detail carries a short human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// Tracer stores life-cycle stage records, bounded by an optional
// capacity. It is driven from simulation-kernel context and therefore
// needs no locking; one Tracer belongs to exactly one kernel. Trace IDs
// and publish times are managed by the owning Observer, which also hands
// them to the metrics side when tracing is off.
type Tracer struct {
	cap     int
	recs    []Record
	dropped uint64
}

func newTracer(cap int) *Tracer {
	return &Tracer{cap: cap}
}

// add appends a record, honouring the capacity bound.
func (t *Tracer) add(r Record) {
	if t.cap > 0 && len(t.recs) >= t.cap {
		t.dropped++
		return
	}
	t.recs = append(t.recs, r)
}

// Records returns the recorded stages in emission order. The slice is the
// tracer's backing store; callers must not mutate it.
func (t *Tracer) Records() []Record { return t.recs }

// Dropped reports how many records the capacity bound discarded.
func (t *Tracer) Dropped() uint64 { return t.dropped }
