package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FlightRecorder continuously retains the last perNode stage records of
// every station in bounded per-node rings, independent of the unbounded
// Tracer — cheap enough to leave on in a long-running daemon. On demand
// (an SLO breach, a chaos invariant failure, an operator request) it
// dumps a post-mortem: the merged ring contents as JSONL plus a Chrome
// trace_event file, named postmortem-<seq>-<reason>.{jsonl,trace.json}.
//
// Like the Tracer it is driven from simulation-kernel context and needs
// no locking; reads from other goroutines must go through the kernel
// (sim.Paced.Call).
type FlightRecorder struct {
	perNode int
	dir     string

	rings map[int][]Record // node -> ring buffer (len <= perNode)
	next  map[int]int      // node -> next write index once the ring is full
	seq   uint64           // total records ever added (global order stamp)
	order map[int][]uint64 // node -> per-slot order stamps, parallel to rings

	nodesMax int
	dumpSeq  int
	dumps    []string
}

// NewFlightRecorder builds a recorder retaining perNode records per
// station. dir is the post-mortem output directory ("" = working
// directory).
func NewFlightRecorder(perNode int, dir string) *FlightRecorder {
	if perNode < 1 {
		perNode = 1
	}
	return &FlightRecorder{
		perNode: perNode,
		dir:     dir,
		rings:   make(map[int][]Record),
		next:    make(map[int]int),
		order:   make(map[int][]uint64),
	}
}

// Add retains one record, evicting the node's oldest when its ring is
// full. Records with Node < 0 (system records: SLO breaches, unknown
// stations) share one ring under key -1.
func (f *FlightRecorder) Add(r Record) {
	if f == nil {
		return
	}
	node := r.Node
	if node < 0 {
		node = -1
	}
	if node+1 > f.nodesMax {
		f.nodesMax = node + 1
	}
	f.seq++
	ring := f.rings[node]
	if len(ring) < f.perNode {
		f.rings[node] = append(ring, r)
		f.order[node] = append(f.order[node], f.seq)
		return
	}
	i := f.next[node]
	ring[i] = r
	f.order[node][i] = f.seq
	f.next[node] = (i + 1) % f.perNode
}

// Len returns the number of currently retained records across all rings.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, ring := range f.rings {
		n += len(ring)
	}
	return n
}

// PerNode returns the per-station retention bound.
func (f *FlightRecorder) PerNode() int {
	if f == nil {
		return 0
	}
	return f.perNode
}

// Snapshot returns the retained records of all nodes merged back into
// emission order.
func (f *FlightRecorder) Snapshot() []Record {
	if f == nil {
		return nil
	}
	type stamped struct {
		r   Record
		seq uint64
	}
	all := make([]stamped, 0, f.Len())
	for node, ring := range f.rings {
		for i, r := range ring {
			all = append(all, stamped{r, f.order[node][i]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Record, len(all))
	for i, s := range all {
		out[i] = s.r
	}
	return out
}

// sanitizeReason maps an arbitrary dump reason onto a filename-safe
// slug.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	b := []byte(reason)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		case c >= 'A' && c <= 'Z':
			b[i] = c + 'a' - 'A'
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// Dump writes a post-mortem pair (JSONL + Chrome trace_event) of the
// current ring contents and returns the two paths. Dumps are numbered,
// so repeated breaches never overwrite earlier evidence.
func (f *FlightRecorder) Dump(reason string) ([]string, error) {
	if f == nil {
		return nil, nil
	}
	recs := f.Snapshot()
	f.dumpSeq++
	base := fmt.Sprintf("postmortem-%03d-%s", f.dumpSeq, sanitizeReason(reason))
	jsonlPath := filepath.Join(f.dir, base+".jsonl")
	tracePath := filepath.Join(f.dir, base+".trace.json")
	if f.dir != "" {
		if err := os.MkdirAll(f.dir, 0o755); err != nil {
			return nil, err
		}
	}
	jf, err := os.Create(jsonlPath)
	if err != nil {
		return nil, err
	}
	err = WriteVersionedJSONL(jf, recs)
	if cerr := jf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		return nil, err
	}
	err = WriteChromeTrace(tf, recs, f.nodesMax)
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	paths := []string{jsonlPath, tracePath}
	f.dumps = append(f.dumps, paths...)
	return paths, nil
}

// Dumps lists every post-mortem file written so far, in order.
func (f *FlightRecorder) Dumps() []string {
	if f == nil {
		return nil
	}
	return append([]string(nil), f.dumps...)
}
