package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"canec/internal/sim"
)

// FuzzTraceJSONL asserts the trace stream's two transport properties on
// arbitrary inputs: (1) any record survives WriteVersionedJSONL→ReadJSONL
// exactly (the schema header is stripped, the payload is not), and
// (2) feeding arbitrary bytes to the reader never panics — it either
// yields records or a line-numbered error.
func FuzzTraceJSONL(f *testing.F) {
	f.Add(uint64(1), "delivered", int64(100), 0, "SRT", uint64(0x42), "ok", []byte(nil))
	f.Add(uint64(0), "_schema", int64(0), -1, "", uint64(0), TraceSchema, []byte("{}\n"))
	f.Add(uint64(9), "tx_err", int64(-5), 3, "HRT", uint64(1<<56), "bit corrupt",
		[]byte(`{"stage":"rx","at":1}`+"\n\nnot json"))
	f.Fuzz(func(t *testing.T, id uint64, stage string, at int64, node int,
		class string, subject uint64, detail string, raw []byte) {
		if !utf8.ValidString(stage) || !utf8.ValidString(class) || !utf8.ValidString(detail) {
			// encoding/json canonicalises invalid UTF-8 to U+FFFD; real
			// traces only carry ASCII identifiers, so exact round-trip is
			// asserted for valid strings only.
			return
		}
		rec := Record{ID: id, Stage: Stage(stage), At: sim.Time(at),
			Node: node, Class: class, Subject: subject, Detail: detail}
		var buf bytes.Buffer
		if err := WriteVersionedJSONL(&buf, []Record{rec}); err != nil {
			t.Fatalf("write: %v", err)
		}
		info, err := ReadJSONLInfo(&buf)
		if err != nil {
			// A Stage containing a newline (or other JSON-breaking
			// control bytes) cannot occur in real traces; encoding/json
			// escapes everything, so a read error here is a real bug.
			t.Fatalf("read of own writing: %v", err)
		}
		if info.Schema != TraceSchema {
			t.Fatalf("schema = %q, want %q", info.Schema, TraceSchema)
		}
		want := []Record{rec}
		if strings.HasPrefix(stage, "_") {
			want = nil // meta stages are stripped by design
		}
		if !reflect.DeepEqual(info.Records, want) {
			t.Fatalf("round trip %+v -> %+v", want, info.Records)
		}

		// Arbitrary bytes must never panic the reader.
		recs, err := ReadJSONL(bytes.NewReader(raw))
		if err == nil {
			// Whatever was accepted must itself round-trip.
			var again bytes.Buffer
			if werr := WriteJSONL(&again, recs); werr != nil {
				t.Fatalf("rewrite of accepted input: %v", werr)
			}
			recs2, rerr := ReadJSONL(&again)
			if rerr != nil || !reflect.DeepEqual(recs, recs2) {
				t.Fatalf("accepted input is not stable: %v", rerr)
			}
		}
	})
}
