package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenRecords is a representative chain exercising every Record field:
// the byte-exact wire form of the canec-trace/1 schema. canecwhy and
// canectrace ingest exactly these bytes; if this golden changes, the
// schema tag in TraceSchema must be bumped.
func goldenRecords() []Record {
	return []Record{
		{ID: 1, Stage: StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: StageTxStart, At: 10_000, Node: 0, Subject: 0x300,
			Etag: 0x1234, Prio: 2, Band: "srt", Attempt: 1},
		{ID: 1, Stage: StageTxErr, At: 50_000, Node: 0, Subject: 0x300,
			Etag: 0x1234, Prio: 2, Band: "srt", Attempt: 1, Detail: "bit corrupt"},
		{ID: 1, Stage: StageTxStart, At: 80_000, Node: 0, Subject: 0x300,
			Etag: 0x1234, Prio: 2, Band: "srt", Attempt: 2},
		{ID: 1, Stage: StageTxOK, At: 180_000, Node: 0, Subject: 0x300,
			Etag: 0x1234, Prio: 2, Band: "srt", Attempt: 2},
		{ID: 1, Stage: StageRx, At: 180_000, Node: 1, Subject: 0x300},
		{ID: 1, Stage: StageDelivered, At: 190_000, Node: 1, Class: "SRT", Subject: 0x300},
		{Stage: StageSLOBreach, At: 200_000, Node: -1, Class: "SRT",
			Detail: "p99 over budget; why: top causes: error_retransmit×1(70us)"},
	}
}

// TestTraceJSONLGolden pins the versioned trace JSONL wire format
// byte-for-byte, RFC-style: the serialised form is the contract that
// canecwhy/canectrace ingest, so any drift must be a deliberate,
// reviewed change (go test ./internal/obs -run Golden -update).
func TestTraceJSONLGolden(t *testing.T) {
	path := filepath.Join("testdata", "trace-v1.golden.jsonl")
	var buf bytes.Buffer
	if err := WriteVersionedJSONL(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSONL drifted from golden.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
	// And the reader reconstructs exactly what was written.
	info, err := ReadJSONLInfo(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if info.Schema != TraceSchema {
		t.Fatalf("schema = %q, want %q", info.Schema, TraceSchema)
	}
	if !reflect.DeepEqual(info.Records, goldenRecords()) {
		t.Fatalf("golden did not round-trip: %+v", info.Records)
	}
}

// TestPostmortemSchemaCompat pins the reader's compatibility promises so
// canecwhy can ingest flight-recorder dumps from builds other than its
// own: (1) pre-versioning dumps (no _schema header) still parse, with
// Schema reported empty; (2) dumps from newer builds with additive
// Record fields parse with the unknown fields ignored; (3) blank lines
// are tolerated; (4) a malformed line fails with its line number rather
// than silently truncating evidence.
func TestPostmortemSchemaCompat(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "postmortem-compat.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadJSONLInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Schema != "" {
		t.Fatalf("pre-versioning dump reported schema %q", info.Schema)
	}
	if len(info.Records) != 3 {
		t.Fatalf("records = %d, want 3: %+v", len(info.Records), info.Records)
	}
	if info.Records[0].Stage != StagePublished || info.Records[0].At != 10 {
		t.Fatalf("record 0 = %+v", info.Records[0])
	}
	if info.Records[2].Stage != StageSLOBreach || info.Records[2].Node != -1 {
		t.Fatalf("record 2 = %+v", info.Records[2])
	}

	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"stage\":\"rx\",\"at\":1}\nnot json\n"))); err == nil {
		t.Fatal("malformed line accepted")
	} else if got := err.Error(); !bytes.Contains([]byte(got), []byte("line 2")) {
		t.Fatalf("error does not name the line: %v", err)
	}
}
