package obs

import (
	"fmt"
	"strings"

	"canec/internal/sim"
)

// SLOConfig parameterises the objective engine. Objectives whose budget
// field is zero are disabled; an all-zero config evaluates nothing.
type SLOConfig struct {
	// Interval is the evaluation tick (default 100 ms virtual).
	Interval sim.Duration
	// ShortWindow and LongWindow are the burn-rate windows (defaults
	// 1 s and 10 s). An objective breaches only when BOTH windows burn
	// above BurnThreshold — the short window gives fast detection, the
	// long one suppresses single-spike flapping.
	ShortWindow sim.Duration
	LongWindow  sim.Duration
	// BurnThreshold is the burn factor (consumed/budget) that arms a
	// breach (default 1.0).
	BurnThreshold float64

	// HRTJitterBound breaches when the HRTJitterQuantile (default p99)
	// of HRT delivery jitter exceeds this bound — the paper's claim is
	// that it stays within clock-sync precision. 0 disables.
	HRTJitterBound    sim.Duration
	HRTJitterQuantile float64
	// SRTMissBudget is the tolerated SRT miss fraction: deadline misses,
	// validity expiries and relay sheds over published SRT events.
	// 0 disables.
	SRTMissBudget float64
	// NRTFloorPerSec breaches when NRT delivery throughput drops below
	// this floor (events/second). 0 disables.
	NRTFloorPerSec float64
	// GuardianMuteBudget is the tolerated number of bus-guardian mutes
	// per LongWindow. 0 disables.
	GuardianMuteBudget float64
	// HoldoverBudget is the tolerated number of clock holdover entries
	// per LongWindow. 0 disables.
	HoldoverBudget float64
	// BusOffBudget is the tolerated number of controller bus-off entries
	// per LongWindow — a bus-off under an attack campaign is an incident
	// worth a flight-recorder post-mortem. 0 disables.
	BusOffBudget float64
	// ControlCostBudget is the tolerated quadratic control cost accrued
	// across all closed control loops per LongWindow — the application-
	// level objective: a healthy bus keeps plants near their setpoints,
	// so cost accrues slowly; late or lost frames make it burn. 0
	// disables.
	ControlCostBudget float64
	// SRTPredictedMiss, when set, closes the admission loop: it feeds
	// the admission controller's current predicted SRT deadline-miss
	// probability into the burn-rate engine as a dynamic budget. The
	// objective ("srt-miss-vs-predicted") breaches when the measured SRT
	// miss rate burns past the analyzer's prediction in both windows —
	// the wire is behaving worse than the admission model assumes, so
	// the probabilistic guarantees are void. core.NewSystem wires it to
	// the controller automatically when both are configured. Nil
	// disables.
	SRTPredictedMiss func() float64
}

// DefaultSLOConfig returns the objective set a production daemon runs
// with: 1 ms HRT p99 jitter bound, 5% SRT miss budget, guardian mutes
// and holdover entries both treated as budget-1-per-10s anomalies. The
// NRT floor stays off (a quiet segment is not an incident).
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		HRTJitterBound:     sim.Millisecond,
		SRTMissBudget:      0.05,
		GuardianMuteBudget: 1,
		HoldoverBudget:     1,
		BusOffBudget:       1,
	}
}

func (c *SLOConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * sim.Millisecond
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = sim.Second
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 10 * c.ShortWindow
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1
	}
	if c.HRTJitterQuantile <= 0 || c.HRTJitterQuantile > 1 {
		c.HRTJitterQuantile = 0.99
	}
}

// Objective is the externally visible burn state of one objective, as
// served at /slo.
type Objective struct {
	// Name identifies the objective ("srt-miss-rate", "hrt-jitter-p99",
	// "nrt-throughput-floor", "guardian-mutes", "clock-holdover",
	// "busoff-events").
	Name string `json:"name"`
	// Class is the channel class the objective guards, when class-bound.
	Class string `json:"class,omitempty"`
	// Budget is the configured bound, in Unit.
	Budget float64 `json:"budget"`
	Unit   string  `json:"unit"`
	// Short and Long are the measured values over the two windows.
	Short float64 `json:"short"`
	Long  float64 `json:"long"`
	// ShortBurn and LongBurn are value/budget (for the throughput floor:
	// budget/value — burn grows as traffic falls).
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	// Evaluable is false until both windows have a baseline sample, so
	// daemons don't false-breach at startup.
	Evaluable bool `json:"evaluable"`
	// Breached is the current state; Breaches counts enter-transitions.
	Breached   bool     `json:"breached"`
	BreachedAt sim.Time `json:"breached_at,omitempty"`
	Breaches   uint64   `json:"breaches"`
}

// jitSnap is a bucket-count snapshot of the HRT jitter histogram, so a
// window's jitter quantile can be computed over count deltas.
type jitSnap struct {
	ok     bool
	under  uint64
	over   uint64
	counts []uint64
}

// sloSample is one tick's counter snapshot.
type sloSample struct {
	at        sim.Time
	srtPub    float64
	srtMiss   float64
	nrtDeliv  float64
	mutes     float64
	holdovers float64
	busoffs   float64
	ctrlCost  float64
	jit       jitSnap
}

// SLO evaluates the configured objectives on a fixed virtual-time tick,
// keeps windowed burn state, and on a breach transition emits a
// slo_breach trace record, bumps canec_slo_breaches_total, and triggers
// a flight-recorder post-mortem. It runs inside the simulation kernel
// (rearming itself with Kernel.After), so a system running it must be
// driven with a horizon — the tick keeps the event queue non-empty.
type SLO struct {
	o   *Observer
	k   *sim.Kernel
	cfg SLOConfig

	samples    []sloSample
	objectives []*Objective
	stopped    bool

	// OnBreach, when set, runs on every breach-enter transition (after
	// the trace record and post-mortem dump). Kernel context.
	OnBreach func(Objective)
	// LastDump holds the paths of the most recent breach post-mortem.
	LastDump []string
}

// StartSLO builds the objective engine and schedules its first tick.
// Returns nil (a safe no-op handle) when the observer or its registry
// is absent — the engine reads every input from the metrics side.
func (o *Observer) StartSLO(k *sim.Kernel, cfg SLOConfig) *SLO {
	if o == nil || o.reg == nil || k == nil {
		return nil
	}
	cfg.fillDefaults()
	s := &SLO{o: o, k: k, cfg: cfg}
	if cfg.SRTMissBudget > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name: "srt-miss-rate", Class: "SRT",
			Budget: cfg.SRTMissBudget, Unit: "miss fraction"})
	}
	if cfg.SRTPredictedMiss != nil {
		s.objectives = append(s.objectives, &Objective{
			Name: "srt-miss-vs-predicted", Class: "SRT",
			Unit: "miss fraction"}) // Budget refreshed from the prediction each tick
	}
	if cfg.HRTJitterBound > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name: fmt.Sprintf("hrt-jitter-p%d", int(cfg.HRTJitterQuantile*100)), Class: "HRT",
			Budget: float64(cfg.HRTJitterBound) / 1e3, Unit: "µs"})
	}
	if cfg.NRTFloorPerSec > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name: "nrt-throughput-floor", Class: "NRT",
			Budget: cfg.NRTFloorPerSec, Unit: "events/s"})
	}
	if cfg.GuardianMuteBudget > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name:   "guardian-mutes",
			Budget: cfg.GuardianMuteBudget, Unit: fmt.Sprintf("mutes/%v", cfg.LongWindow)})
	}
	if cfg.HoldoverBudget > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name:   "clock-holdover",
			Budget: cfg.HoldoverBudget, Unit: fmt.Sprintf("entries/%v", cfg.LongWindow)})
	}
	if cfg.BusOffBudget > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name:   "busoff-events",
			Budget: cfg.BusOffBudget, Unit: fmt.Sprintf("entries/%v", cfg.LongWindow)})
	}
	if cfg.ControlCostBudget > 0 {
		s.objectives = append(s.objectives, &Objective{
			Name:   "control-cost",
			Budget: cfg.ControlCostBudget, Unit: fmt.Sprintf("cost/%v", cfg.LongWindow)})
	}
	s.samples = append(s.samples, s.snapshot(k.Now()))
	k.After(cfg.Interval, s.tick)
	return s
}

// Stop halts evaluation; the pending tick becomes a no-op and does not
// rearm.
func (s *SLO) Stop() {
	if s != nil {
		s.stopped = true
	}
}

// Config returns the engine's effective (default-filled) configuration.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Snapshot returns a copy of the current objective states for serving.
// Kernel context (route through sim.Paced.Call from HTTP handlers).
func (s *SLO) Snapshot() []Objective {
	if s == nil {
		return nil
	}
	out := make([]Objective, len(s.objectives))
	for i, ob := range s.objectives {
		out[i] = *ob
	}
	return out
}

// Breached reports whether any objective is currently in breach.
func (s *SLO) Breached() bool {
	if s == nil {
		return false
	}
	for _, ob := range s.objectives {
		if ob.Breached {
			return true
		}
	}
	return false
}

// counterSum adds the values of every counter in m whose key starts
// with prefix ("" sums all).
func counterSum(m map[string]*Counter, prefix string) float64 {
	var v float64
	for k, c := range m {
		if prefix == "" || strings.HasPrefix(k, prefix) {
			v += c.Value()
		}
	}
	return v
}

func counterVal(m map[string]*Counter, key string) float64 {
	if c, ok := m[key]; ok {
		return c.Value()
	}
	return 0
}

func (s *SLO) snapshot(at sim.Time) sloSample {
	o := s.o
	sm := sloSample{
		at:     at,
		srtPub: counterVal(o.published, "SRT"),
		srtMiss: counterVal(o.exceptions, "DeadlineMissed") +
			counterVal(o.exceptions, "ValidityExpired") +
			counterSum(o.relayDrop, string(StageRelayDrop)+":SRT:"),
		nrtDeliv:  counterVal(o.delivered, "NRT"),
		mutes:     counterSum(o.guardian, ""),
		holdovers: counterVal(o.ctrlplane, string(StageHoldoverEnter)),
		busoffs:   counterSum(o.busoff, ""),
		ctrlCost:  counterSum(o.ctrlCost, ""),
	}
	if h := o.JitterHist("HRT"); h != nil {
		sm.jit.ok = true
		sm.jit.under, sm.jit.over = h.OutOfRange()
		sm.jit.counts = make([]uint64, h.Buckets())
		for i := range sm.jit.counts {
			sm.jit.counts[i] = h.Bucket(i)
		}
	}
	return sm
}

// baseline returns the newest sample at least w old, for window deltas.
func (s *SLO) baseline(now sim.Time, w sim.Duration) (sloSample, bool) {
	cutoff := now - sim.Time(w)
	if cutoff < 0 {
		return sloSample{}, false
	}
	var best *sloSample
	for i := range s.samples {
		if s.samples[i].at <= cutoff {
			best = &s.samples[i]
		} else {
			break
		}
	}
	if best == nil {
		return sloSample{}, false
	}
	return *best, true
}

// jitDeltaQuantile computes the q-quantile (µs) of jitter samples
// recorded since base, by walking bucket-count deltas. The bound
// reported is the containing bucket's upper edge — conservative by at
// most one growth factor.
func jitDeltaQuantile(h HistSource, base jitSnap, q float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	under, over := h.OutOfRange()
	var baseUnder, baseOver uint64
	baseCount := func(i int) uint64 { return 0 }
	if base.ok {
		baseUnder, baseOver = base.under, base.over
		baseCount = func(i int) uint64 {
			if i < len(base.counts) {
				return base.counts[i]
			}
			return 0
		}
	}
	dUnder := under - baseUnder
	total := dUnder + (over - baseOver)
	deltas := make([]uint64, h.Buckets())
	for i := range deltas {
		deltas[i] = h.Bucket(i) - baseCount(i)
		total += deltas[i]
	}
	if total == 0 {
		return 0, false
	}
	target := q * float64(total)
	cum := float64(dUnder)
	if target <= cum {
		return jitterHistMin, true // below the histogram floor: effectively zero jitter
	}
	for i, d := range deltas {
		cum += float64(d)
		if target <= cum {
			return h.UpperBound(i), true
		}
	}
	return h.UpperBound(h.Buckets() - 1), true
}

// windowValue evaluates one objective over [base, cur]. ok is false
// when the window holds no decidable signal (e.g. no SRT publishes).
func (s *SLO) windowValue(ob *Objective, cur, base sloSample, w sim.Duration) (value, burn float64) {
	secs := float64(w) / 1e9
	switch ob.Name {
	case "srt-miss-rate":
		pub := cur.srtPub - base.srtPub
		miss := cur.srtMiss - base.srtMiss
		if pub <= 0 {
			if miss <= 0 {
				return 0, 0
			}
			pub = miss // all observed outcomes missed
		}
		rate := miss / pub
		return rate, rate / ob.Budget
	case "srt-miss-vs-predicted":
		// Dynamic budget: the admission controller's current predicted
		// miss probability, floored so a zero prediction (no admitted
		// channels, or a fault-free model) never divides by zero.
		pred := s.cfg.SRTPredictedMiss()
		if pred < 1e-9 {
			pred = 1e-9
		}
		ob.Budget = pred
		pub := cur.srtPub - base.srtPub
		miss := cur.srtMiss - base.srtMiss
		if pub <= 0 {
			if miss <= 0 {
				return 0, 0
			}
			pub = miss
		}
		rate := miss / pub
		return rate, rate / ob.Budget
	case "nrt-throughput-floor":
		rate := (cur.nrtDeliv - base.nrtDeliv) / secs
		if rate <= 0 {
			return 0, s.cfg.BurnThreshold * 1e3 // hard floor violation
		}
		return rate, ob.Budget / rate
	case "guardian-mutes":
		n := cur.mutes - base.mutes
		budget := ob.Budget * float64(w) / float64(s.cfg.LongWindow)
		return n, n / budget
	case "clock-holdover":
		n := cur.holdovers - base.holdovers
		budget := ob.Budget * float64(w) / float64(s.cfg.LongWindow)
		return n, n / budget
	case "busoff-events":
		n := cur.busoffs - base.busoffs
		budget := ob.Budget * float64(w) / float64(s.cfg.LongWindow)
		return n, n / budget
	case "control-cost":
		n := cur.ctrlCost - base.ctrlCost
		budget := ob.Budget * float64(w) / float64(s.cfg.LongWindow)
		return n, n / budget
	default: // hrt-jitter-p*
		q, ok := jitDeltaQuantile(s.o.JitterHist("HRT"), base.jit, s.cfg.HRTJitterQuantile)
		if !ok {
			return 0, 0
		}
		return q, q / ob.Budget
	}
}

func (s *SLO) tick() {
	if s.stopped {
		return
	}
	now := s.k.Now()
	cur := s.snapshot(now)
	s.samples = append(s.samples, cur)
	// Prune everything older than twice the long window; keep one older
	// sample as the long baseline.
	cutoff := now - sim.Time(2*s.cfg.LongWindow)
	drop := 0
	for drop < len(s.samples)-1 && s.samples[drop+1].at <= cutoff {
		drop++
	}
	s.samples = s.samples[drop:]

	for _, ob := range s.objectives {
		shortBase, okS := s.baseline(now, s.cfg.ShortWindow)
		longBase, okL := s.baseline(now, s.cfg.LongWindow)
		ob.Evaluable = okS && okL
		if !ob.Evaluable {
			continue
		}
		ob.Short, ob.ShortBurn = s.windowValue(ob, cur, shortBase, s.cfg.ShortWindow)
		ob.Long, ob.LongBurn = s.windowValue(ob, cur, longBase, s.cfg.LongWindow)
		over := ob.ShortBurn >= s.cfg.BurnThreshold && ob.LongBurn >= s.cfg.BurnThreshold
		switch {
		case over && !ob.Breached:
			s.enterBreach(ob, now)
		case !over && ob.Breached:
			ob.Breached = false
		}
	}
	s.k.After(s.cfg.Interval, s.tick)
}

func (s *SLO) enterBreach(ob *Objective, now sim.Time) {
	ob.Breached = true
	ob.BreachedAt = now
	ob.Breaches++
	o := s.o
	c, ok := o.sloBreach[ob.Name]
	if !ok {
		c = o.reg.Counter("canec_slo_breaches_total",
			"SLO breach-enter transitions, by objective.", Labels{"objective": ob.Name})
		o.sloBreach[ob.Name] = c
	}
	c.Inc()
	detail := fmt.Sprintf("%s: %.4g %s over short %.2fx / long %.2fx of budget %.4g",
		ob.Name, ob.Long, ob.Unit, ob.ShortBurn, ob.LongBurn, ob.Budget)
	// With the causal engine attached, the breach record carries the
	// current top-cause attribution — emitted before the flight dump, so
	// every breach post-mortem names its own "why" in the JSONL itself.
	if o.causal != nil {
		if why := o.causal.BreachSummary(ob.Class, 3); why != "" {
			detail += "; why: " + why
		}
	}
	o.emitRecord(Record{Stage: StageSLOBreach, At: now, Node: -1, Class: ob.Class,
		Prio: -1, Detail: detail})
	if o.flight != nil {
		if paths, err := o.flight.Dump("slo-" + ob.Name); err == nil {
			s.LastDump = paths
		}
	}
	if s.OnBreach != nil {
		s.OnBreach(*ob)
	}
}
