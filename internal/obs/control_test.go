package obs

import (
	"strings"
	"testing"

	"canec/internal/sim"
)

// TestControlObserverMetricsAndRecords drives the closed-loop workload
// hooks and checks both faces: trace records for the flight recorder and
// canec_control_* series in the Prometheus exposition.
func TestControlObserverMetricsAndRecords(t *testing.T) {
	var now sim.Time
	o := New(Config{Trace: true, Metrics: true}, func() sim.Time { return now }, testBandMap())

	dev := 0.25
	o.RegisterControlLoop("cart", func() float64 { return dev })
	o.ControlLoopStage(StageCtrlSample, "cart", "SRT", 1, 10)
	o.ControlLoopStage(StageCtrlCommand, "cart", "SRT", 2, 20)
	o.ControlLoopStage(StageCtrlApply, "cart", "SRT", 1, 30)
	o.ControlLoopStage(StageCtrlApply, "cart", "SRT", 1, 40)
	o.ControlStale("cart", "SRT", 1, 50)
	o.ControlCost("cart", 0.5)
	o.ControlCost("cart", 0.25)
	o.ControlLatency("cart", 1500)

	stages := map[Stage]int{}
	for _, r := range o.Records() {
		if r.Detail == "cart" {
			if r.Class != "SRT" || r.Prio != -1 {
				t.Fatalf("control record shape = %+v", r)
			}
			stages[r.Stage]++
		}
	}
	if stages[StageCtrlSample] != 1 || stages[StageCtrlCommand] != 1 ||
		stages[StageCtrlApply] != 2 || stages[StageCtrlStale] != 1 {
		t.Fatalf("control stage records = %v", stages)
	}

	var out strings.Builder
	if err := o.Registry().WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`canec_control_loop_stages_total{loop="cart",stage="ctrl_apply"} 2`,
		`canec_control_loop_stages_total{loop="cart",stage="ctrl_sample"} 1`,
		`canec_control_stale_ticks_total{loop="cart"} 1`,
		`canec_control_cost_total{loop="cart"} 0.75`,
		`canec_control_deviation{loop="cart"} 0.25`,
		`canec_control_loop_latency_microseconds_count{loop="cart"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// The whole hook surface must be inert on a nil observer.
	var nilObs *Observer
	nilObs.ControlLoopStage(StageCtrlSample, "x", "SRT", 0, 0)
	nilObs.ControlStale("x", "SRT", 0, 0)
	nilObs.ControlCost("x", 1)
	nilObs.ControlLatency("x", 1)
	nilObs.RegisterControlLoop("x", func() float64 { return 0 })
}

// TestSLOControlCostObjective: the control-cost objective budgets the
// summed quadratic cost per long window — a loop that keeps burning cost
// (late frames, plant off setpoint) must breach, and a loop that settles
// must not.
func TestSLOControlCostObjective(t *testing.T) {
	cfg := SLOConfig{
		Interval:          10 * sim.Millisecond,
		ShortWindow:       100 * sim.Millisecond,
		LongWindow:        sim.Second,
		ControlCostBudget: 5, // tolerated cost per long window
	}
	k, o, s := sloHarness(t, cfg, t.TempDir())

	burning := false
	var step func()
	step = func() {
		delta := 0.001 // settled loop: ~0.2 cost/s, well inside budget
		if burning {
			delta = 0.1 // off-setpoint loop: ~20 cost/s, 4x over budget
		}
		o.ControlCost("cart", delta)
		k.After(5*sim.Millisecond, step)
	}
	step()

	k.Run(sim.Time(2 * sim.Second))
	obl := s.Snapshot()
	if len(obl) != 1 || obl[0].Name != "control-cost" {
		t.Fatalf("objectives = %+v, want control-cost only", obl)
	}
	if !obl[0].Evaluable || obl[0].Breached {
		t.Fatalf("settled loop breached cost budget: %+v", obl[0])
	}

	burning = true
	k.Run(sim.Time(4 * sim.Second))
	ob := s.Snapshot()[0]
	if !ob.Breached {
		t.Fatalf("burning loop did not breach cost budget: %+v", ob)
	}
	if ob.Long < 15 {
		t.Fatalf("long-window cost = %v, want ~20/window", ob.Long)
	}
	if !s.Breached() {
		t.Fatal("SLO.Breached() should be true")
	}

	burning = false
	k.Run(sim.Time(8 * sim.Second))
	if ob := s.Snapshot()[0]; ob.Breached {
		t.Fatalf("cost breach did not clear after settling: %+v", ob)
	}
}
