package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

func testBandMap() BandMap {
	return BandMap{HRT: 0, Sync: 1, SRTMin: 2, SRTMax: 250, NRTMin: 251, NRTMax: 255}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	if id := o.Begin("srt", 0, 1, 0); id != 0 {
		t.Fatalf("nil Begin returned id %d", id)
	}
	o.Emit(1, StageEnqueued, "srt", 0, 1, 0, "")
	o.Delivered(1, "srt", 1, 1, 10, "")
	o.SlotOutcome(true)
	o.Copies("sent", 2)
	o.ExceptionRaised("txfail")
	o.WatchdogChange("dead")
	o.RegisterQueueDepth(0, "srt", func() int { return 0 })
	o.InstallBus(nil) // must not panic before touching the bus
	if o.Tracer() != nil || o.Registry() != nil || o.Records() != nil {
		t.Fatal("nil observer leaked non-nil components")
	}
	if _, ok := o.PublishKernelTime(1); ok {
		t.Fatal("nil observer knows publish times")
	}
}

func TestBandMap(t *testing.T) {
	bm := testBandMap()
	cases := map[can.Prio]string{
		0: "hrt", 1: "sync", 2: "srt", 100: "srt", 250: "srt",
		251: "nrt", 255: "nrt",
	}
	for p, want := range cases {
		if got := bm.Band(p); got != want {
			t.Errorf("Band(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestTracerLifecycle(t *testing.T) {
	var now sim.Time
	o := New(Config{Trace: true, Metrics: true}, func() sim.Time { return now }, testBandMap())

	id := o.Begin("srt", 0, 0x42, 100)
	if id == 0 {
		t.Fatal("Begin returned the untraced ID")
	}
	id2 := o.Begin("srt", 1, 0x43, 150)
	if id2 <= id {
		t.Fatalf("trace IDs not monotonically increasing: %d then %d", id, id2)
	}
	o.Emit(id, StageEnqueued, "srt", 0, 0x42, 110, "")
	o.Emit(id, StagePromoted, "srt", 0, 0x42, 200, "prio 10->5")
	o.Delivered(id, "srt", 2, 0x42, 400, "")

	recs := o.Records()
	var chain []Record
	for _, r := range recs {
		if r.ID == id {
			chain = append(chain, r)
		}
	}
	wantStages := []Stage{StagePublished, StageEnqueued, StagePromoted, StageDelivered}
	if len(chain) != len(wantStages) {
		t.Fatalf("chain has %d records, want %d: %+v", len(chain), len(wantStages), chain)
	}
	var prev sim.Time
	for i, r := range chain {
		if r.Stage != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, r.Stage, wantStages[i])
		}
		if r.At < prev {
			t.Errorf("timestamps decrease at stage %d: %d < %d", i, r.At, prev)
		}
		prev = r.At
	}
	if at, ok := o.PublishKernelTime(id); !ok || at != 100 {
		t.Fatalf("PublishKernelTime = %d,%v want 100,true", at, ok)
	}

	// The latency histogram saw exactly one 300 ns = 0.3 µs sample.
	var buf bytes.Buffer
	if err := o.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `canec_e2e_latency_microseconds_count{class="srt",subject="0x42"} 1`) {
		t.Errorf("latency count sample missing:\n%s", text)
	}
	if !strings.Contains(text, `canec_events_published_total{class="srt"} 2`) {
		t.Errorf("published counter missing:\n%s", text)
	}
	if !strings.Contains(text, `canec_events_delivered_total{class="srt"} 1`) {
		t.Errorf("delivered counter missing:\n%s", text)
	}
}

func TestTracerCap(t *testing.T) {
	o := New(Config{Trace: true, TraceCap: 2}, func() sim.Time { return 0 }, testBandMap())
	o.Begin("nrt", 0, 1, 0)
	o.Begin("nrt", 0, 2, 1)
	o.Begin("nrt", 0, 3, 2)
	if n := len(o.Records()); n != 2 {
		t.Fatalf("retained %d records, want 2", n)
	}
	if d := o.Tracer().Dropped(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
}

func TestDropReasons(t *testing.T) {
	o := New(Config{Metrics: true}, func() sim.Time { return 0 }, testBandMap())
	o.Emit(0, StageExpired, "srt", 0, 1, 0, "")
	o.Emit(0, StageShed, "srt", 0, 2, 0, "")
	o.Emit(0, StageDropped, "hrt", 0, 3, 0, "queue_overflow")
	o.Emit(0, StageDropped, "hrt", 0, 3, 0, "")
	var buf bytes.Buffer
	if err := o.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`canec_events_dropped_total{reason="expired"} 1`,
		`canec_events_dropped_total{reason="shed"} 1`,
		`canec_events_dropped_total{reason="queue_overflow"} 1`,
		`canec_events_dropped_total{reason="dropped"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestBusEventTranslation(t *testing.T) {
	var now sim.Time
	o := New(Config{Trace: true, Metrics: true}, func() sim.Time { return now }, testBandMap())
	o.SubjectOf = func(e can.Etag) (uint64, bool) {
		if e == 7 {
			return 0xbeef, true
		}
		return 0, false
	}

	id := can.MakeID(10, 3, 7) // srt band
	fr := can.Frame{ID: id, Tag: 99}
	o.busEvent(can.TraceEvent{Kind: can.TraceArbLoss, At: 100, Frame: fr, Sender: 3, Attempt: 1})
	o.busEvent(can.TraceEvent{Kind: can.TraceArbWin, At: 100, Frame: fr, Sender: 3, Attempt: 1})
	o.busEvent(can.TraceEvent{Kind: can.TraceTxStart, At: 100, Frame: fr, Sender: 3, Attempt: 2})
	o.busEvent(can.TraceEvent{Kind: can.TraceTxOK, At: 350, Frame: fr, Sender: 3, Attempt: 2})
	o.busEvent(can.TraceEvent{Kind: can.TraceRx, At: 350, Frame: fr, Sender: 3, Recv: 5, Attempt: 2})
	now = 1000

	recs := o.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	wantStages := []Stage{StageArbLost, StageArbWon, StageTxStart, StageTxOK, StageRx}
	for i, r := range recs {
		if r.Stage != wantStages[i] {
			t.Errorf("record %d stage = %q, want %q", i, r.Stage, wantStages[i])
		}
		if r.ID != 99 {
			t.Errorf("record %d lost the frame tag: id=%d", i, r.ID)
		}
		if r.Subject != 0xbeef {
			t.Errorf("record %d subject = %#x, want 0xbeef", i, r.Subject)
		}
		if r.Band != "srt" {
			t.Errorf("record %d band = %q, want srt", i, r.Band)
		}
	}
	if recs[4].Node != 5 {
		t.Errorf("rx record node = %d, want receiver 5", recs[4].Node)
	}

	var buf bytes.Buffer
	if err := o.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"canec_arb_losses_total 1",
		"canec_arb_retries_total 1", // attempt 2 on tx_start
		`canec_frames_total{kind="ok"} 1`,
		`canec_band_busy_ns_total{band="srt"} 250`,
		`canec_band_utilization{band="srt"} 0.25`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestRegistryMemoisationAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"a": "1"})
	b := r.Counter("x_total", "help", Labels{"a": "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "help", Labels{"a": "2"})
	if a == c {
		t.Fatal("distinct labels shared an instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "help", nil)
}

func TestPromHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", nil, 0, 10, 2)
	h.Observe(-1) // under
	h.Observe(2)  // bucket 0
	h.Observe(7)  // bucket 1
	h.Observe(99) // over
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="5"} 2`, // under-mass folded into cumulative counts
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 107",
		"lat_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	recs := []Record{
		{ID: 1, Stage: StagePublished, At: 100, Node: 0, Class: "hrt", Subject: 5},
		{ID: 1, Stage: StageDelivered, At: 900, Node: 2, Class: "hrt", Subject: 5},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var r Record
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil {
		t.Fatalf("line 2 is not valid JSON: %v", err)
	}
	if r.Stage != StageDelivered || r.At != 900 {
		t.Fatalf("round-trip mismatch: %+v", r)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	recs := []Record{
		{ID: 1, Stage: StagePublished, At: 1000, Node: 0, Class: "srt", Subject: 5},
		{ID: 1, Stage: StageTxStart, At: 2000, Node: 0, Subject: 5, Prio: 10, Band: "srt", Attempt: 1},
		{ID: 1, Stage: StageTxOK, At: 4000, Node: 0, Subject: 5, Prio: 10, Band: "srt", Attempt: 1},
		{ID: 1, Stage: StageDelivered, At: 5000, Node: 2, Class: "srt", Subject: 5},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs, 3); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var slices, instants int
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"] != 2.0 { // 2000 ns = 2 µs
				t.Errorf("wire slice dur = %v, want 2", ev["dur"])
			}
		case "i":
			instants++
		}
	}
	if slices != 1 {
		t.Errorf("got %d wire slices, want 1", slices)
	}
	if instants != len(recs)-1 { // tx_start becomes part of the slice only
		t.Errorf("got %d instants, want %d", instants, len(recs)-1)
	}
}
