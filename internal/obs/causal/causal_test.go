package causal

import (
	"reflect"
	"testing"

	"canec/internal/obs"
	"canec/internal/sim"
)

// assertExact checks the engine's core invariant on every chain.
func assertExact(t *testing.T, a *Analyzer) {
	t.Helper()
	for _, ch := range a.Chains() {
		if res := ch.Residual(); res != 0 {
			t.Fatalf("chain %d residual = %v ns, want 0 (segments %s, latency %v)",
				ch.ID, res, FormatSegments(ch.Segments), ch.Latency)
		}
	}
}

func one(t *testing.T, a *Analyzer) Chain {
	t.Helper()
	if len(a.Chains()) != 1 {
		t.Fatalf("chains = %d, want 1", len(a.Chains()))
	}
	return a.Chains()[0]
}

func TestCleanChainBaselineOnly(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 10, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 110, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageRx, At: 110, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 120, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Latency != 120 || ch.Outcome != "delivered" {
		t.Fatalf("latency %v outcome %q", ch.Latency, ch.Outcome)
	}
	if ch.Top != CauseNone {
		t.Fatalf("top = %v, want none (segments %s)", ch.Top, FormatSegments(ch.Segments))
	}
	if d := ch.Debit(CauseWireTx); d != 100 {
		t.Fatalf("wire_tx = %v, want 100", d)
	}
	if d := ch.Debit(CauseQueueWait); d != 10 {
		t.Fatalf("queue_wait = %v, want 10", d)
	}
	if d := ch.Debit(CauseDelivery); d != 10 {
		t.Fatalf("delivery = %v, want 10", d)
	}
}

func TestInterferenceCarving(t *testing.T) {
	a := Analyze([]obs.Record{
		// Foreign frame 9 occupies the wire over [0, 100).
		{ID: 9, Stage: obs.StageTxStart, At: 0, Node: 5, Subject: 0x42, Attempt: 1},
		{ID: 1, Stage: obs.StagePublished, At: 20, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 20, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 9, Stage: obs.StageTxOK, At: 100, Node: 5, Subject: 0x42},
		{ID: 1, Stage: obs.StageTxStart, At: 100, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 200, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageRx, At: 200, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 200, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{LateOver: map[string]sim.Duration{"SRT": 150}})
	assertExact(t, a)
	ch := one(t, a)
	if !ch.Late {
		t.Fatal("chain not late under 150 ns bound")
	}
	if ch.Top != CauseArbInterference {
		t.Fatalf("top = %v, want arb_interference", ch.Top)
	}
	if d := ch.Debit(CauseArbInterference); d != 80 {
		t.Fatalf("interference = %v, want 80", d)
	}
	found := false
	for _, s := range ch.Segments {
		if s.Cause == CauseArbInterference && s.Label == "subject=0x42" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing interferer label: %s", FormatSegments(ch.Segments))
	}
}

func TestErrorRetransmitAttribution(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 10, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxErr, At: 50, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxStart, At: 80, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageTxOK, At: 180, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageRx, At: 180, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 180, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{LateOver: map[string]sim.Duration{"SRT": 150}})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseErrorRetransmit {
		t.Fatalf("top = %v, want error_retransmit", ch.Top)
	}
	// Corrupted attempt (40) + recovery to the retry (30).
	if d := ch.Debit(CauseErrorRetransmit); d != 70 {
		t.Fatalf("error_retransmit = %v, want 70", d)
	}
	if d := ch.Debit(CauseWireTx); d != 100 {
		t.Fatalf("wire_tx = %v, want 100", d)
	}
}

func TestBusoffRecoveryWindow(t *testing.T) {
	a := Analyze([]obs.Record{
		{Stage: obs.StageBusOff, At: 100, Node: 0},
		{ID: 1, Stage: obs.StagePublished, At: 150, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 150, Node: 0, Class: "SRT", Subject: 0x300},
		{Stage: obs.StageBusOffRecovered, At: 500, Node: 0},
		{ID: 1, Stage: obs.StageTxStart, At: 510, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 610, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageRx, At: 610, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 620, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{LateOver: map[string]sim.Duration{"SRT": 200}})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseBusoffRecovery {
		t.Fatalf("top = %v, want busoff_recovery", ch.Top)
	}
	if d := ch.Debit(CauseBusoffRecovery); d != 350 {
		t.Fatalf("busoff_recovery = %v, want 350 ([150,500))", d)
	}
	if d := ch.Debit(CauseQueueWait); d != 10 {
		t.Fatalf("queue_wait = %v, want 10", d)
	}
}

func TestBusoffStillOpenAtDrop(t *testing.T) {
	// The chain dies while its node is still bus-off: the open window
	// must be charged even though no recovery record exists yet.
	a := Analyze([]obs.Record{
		{Stage: obs.StageBusOff, At: 100, Node: 0},
		{ID: 1, Stage: obs.StagePublished, At: 150, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 150, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageDropped, At: 400, Node: 0, Class: "SRT", Subject: 0x300, Detail: "tx_abandoned"},
	}, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseBusoffRecovery {
		t.Fatalf("top = %v, want busoff_recovery", ch.Top)
	}
	if ch.Outcome != "dropped(tx_abandoned)" {
		t.Fatalf("outcome = %q", ch.Outcome)
	}
	if d := ch.Debit(CauseBusoffRecovery); d != 250 {
		t.Fatalf("busoff_recovery = %v, want 250", d)
	}
}

func TestHoldoverWideningOnHRTHold(t *testing.T) {
	a := Analyze([]obs.Record{
		{Stage: obs.StageHoldoverEnter, At: 0, Node: 2},
		{ID: 1, Stage: obs.StagePublished, At: 100, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageEnqueued, At: 100, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageTxStart, At: 110, Node: 0, Subject: 0x700, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 210, Node: 0, Subject: 0x700},
		{ID: 1, Stage: obs.StageRx, At: 210, Node: 1, Subject: 0x700},
		{ID: 1, Stage: obs.StageDelivered, At: 900, Node: 1, Class: "HRT", Subject: 0x700},
		{Stage: obs.StageHoldoverExit, At: 1000, Node: 2},
	}, Config{LateOver: map[string]sim.Duration{"HRT": 700}})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseHoldoverWidening {
		t.Fatalf("top = %v, want holdover_widening (%s)", ch.Top, FormatSegments(ch.Segments))
	}
	if d := ch.Debit(CauseHoldoverWidening); d != 690 {
		t.Fatalf("holdover_widening = %v, want 690", d)
	}
	// Waiting for the slot is a scheduled baseline cause, never a "why".
	if d := ch.Debit(CauseSlotWait); d != 10 {
		t.Fatalf("slot_wait = %v, want 10", d)
	}
}

func TestDejitterHoldIsBaselineWithoutHoldover(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageTxStart, At: 10, Node: 0, Subject: 0x700, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 110, Node: 0, Subject: 0x700},
		{ID: 1, Stage: obs.StageRx, At: 110, Node: 1, Subject: 0x700},
		{ID: 1, Stage: obs.StageDelivered, At: 800, Node: 1, Class: "HRT", Subject: 0x700},
	}, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseNone {
		t.Fatalf("top = %v, want none", ch.Top)
	}
	if d := ch.Debit(CauseDejitterHold); d != 690 {
		t.Fatalf("dejitter_hold = %v, want 690", d)
	}
}

func TestRelaySegments(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 0, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 100, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageRx, At: 100, Node: 3, Subject: 0x300},
		{ID: 1, Stage: obs.StageRelayTx, At: 150, Node: 3, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageRelayDrop, At: 250, Node: 3, Class: "SRT", Subject: 0x300, Detail: "backpressure"},
	}, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if d := ch.Debit(CauseRelayQueue); d != 50 {
		t.Fatalf("relay_queue = %v, want 50", d)
	}
	if d := ch.Debit(CauseRelayLink); d != 100 {
		t.Fatalf("relay_link = %v, want 100", d)
	}
	if ch.Outcome != "relay_drop(backpressure)" {
		t.Fatalf("outcome = %q", ch.Outcome)
	}
}

func TestAdmissionBackoffOverride(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{Stage: obs.StageAdmitShed, At: 50, Node: 0, Class: "SRT", Subject: 0x300, Detail: "error-rate miss 0.2 target 0.05"},
		{ID: 1, Stage: obs.StageDropped, At: 100, Node: 0, Class: "SRT", Subject: 0x300, Detail: "tx_abandoned"},
	}, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseAdmissionBackoff {
		t.Fatalf("top = %v, want admission_backoff", ch.Top)
	}
	if d := ch.Debit(CauseAdmissionBackoff); d != 100 {
		t.Fatalf("admission_backoff = %v, want 100", d)
	}
}

func TestGuardianMuteAttribution(t *testing.T) {
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageGuardMuted, At: 10, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 200, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxOK, At: 300, Node: 0, Subject: 0x300},
		{ID: 1, Stage: obs.StageRx, At: 300, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 300, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{LateOver: map[string]sim.Duration{"SRT": 200}})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Top != CauseGuardianMute {
		t.Fatalf("top = %v, want guardian_mute", ch.Top)
	}
	if d := ch.Debit(CauseGuardianMute); d != 190 {
		t.Fatalf("guardian_mute = %v, want 190", d)
	}
}

func TestSecondDeliveryIgnored(t *testing.T) {
	recs := []obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageDelivered, At: 100, Node: 1, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageDelivered, At: 120, Node: 2, Class: "HRT", Subject: 0x700},
		{ID: 1, Stage: obs.StageDropped, At: 130, Node: 3, Class: "HRT", Subject: 0x700, Detail: "duplicate"},
	}
	a := Analyze(recs, Config{})
	assertExact(t, a)
	ch := one(t, a)
	if ch.Latency != 100 {
		t.Fatalf("latency = %v, want 100 (first delivery closes the chain)", ch.Latency)
	}
	if s := a.Snapshot(); s.Chains != 1 {
		t.Fatalf("snapshot chains = %d, want 1", s.Chains)
	}
}

func TestDeterministicReplay(t *testing.T) {
	recs := []obs.Record{
		{ID: 9, Stage: obs.StageTxStart, At: 0, Node: 5, Subject: 0x42, Attempt: 1},
		{ID: 1, Stage: obs.StagePublished, At: 10, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 10, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 9, Stage: obs.StageTxOK, At: 100, Node: 5, Subject: 0x42},
		{ID: 1, Stage: obs.StageTxStart, At: 110, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxErr, At: 150, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxStart, At: 160, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageTxOK, At: 260, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageRx, At: 260, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 270, Node: 1, Class: "SRT", Subject: 0x300},
	}
	cfg := Config{LateOver: map[string]sim.Duration{"SRT": 100}}
	a, b := Analyze(recs, cfg), Analyze(recs, cfg)
	assertExact(t, a)
	if !reflect.DeepEqual(a.Chains(), b.Chains()) {
		t.Fatal("chains differ across identical replays")
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshots differ across identical replays")
	}
	if a.BreachSummary("", 3) != b.BreachSummary("", 3) {
		t.Fatal("breach summaries differ across identical replays")
	}
	if a.BreachSummary("SRT", 3) == "" {
		t.Fatal("late chain produced no breach summary")
	}
}

func TestEvictionBound(t *testing.T) {
	a := New(Config{MaxOpen: 4})
	for i := uint64(1); i <= 10; i++ {
		a.Add(obs.Record{ID: i, Stage: obs.StagePublished, At: sim.Time(i), Node: 0, Class: "SRT", Subject: 0x300})
	}
	if len(a.open) != 4 {
		t.Fatalf("open = %d, want 4", len(a.open))
	}
	if a.evicted != 6 {
		t.Fatalf("evicted = %d, want 6", a.evicted)
	}
	// A terminal record for an evicted chain is ignored, not resurrected.
	a.Add(obs.Record{ID: 1, Stage: obs.StageDelivered, At: 100, Node: 1, Class: "SRT", Subject: 0x300})
	if s := a.Snapshot(); s.Chains != 0 || s.Evicted != 6 {
		t.Fatalf("snapshot = %+v, want 0 chains / 6 evicted", s)
	}
}

func TestMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	a := Analyze([]obs.Record{
		{ID: 1, Stage: obs.StagePublished, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageEnqueued, At: 0, Node: 0, Class: "SRT", Subject: 0x300},
		{ID: 1, Stage: obs.StageTxStart, At: 10, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxErr, At: 50, Node: 0, Subject: 0x300, Attempt: 1},
		{ID: 1, Stage: obs.StageTxStart, At: 400, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageTxOK, At: 500, Node: 0, Subject: 0x300, Attempt: 2},
		{ID: 1, Stage: obs.StageRx, At: 500, Node: 1, Subject: 0x300},
		{ID: 1, Stage: obs.StageDelivered, At: 510, Node: 1, Class: "SRT", Subject: 0x300},
	}, Config{Registry: reg, LateOver: map[string]sim.Duration{"SRT": 100}})
	assertExact(t, a)
	var b []byte
	w := &bytesWriter{&b}
	if err := reg.WriteText(w); err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, fam := range []string{
		"canec_why_chains_total", "canec_why_debit_ns_total",
		"canec_why_late_total", "canec_why_debit_microseconds",
	} {
		if !contains(text, fam) {
			t.Fatalf("exposition missing %s:\n%s", fam, text)
		}
	}
	if !contains(text, `cause="error_retransmit"`) {
		t.Fatalf("exposition missing error_retransmit label:\n%s", text)
	}
}

type bytesWriter struct{ b *[]byte }

func (w *bytesWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
