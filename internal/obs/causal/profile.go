package causal

import (
	"fmt"
	"sort"
	"strings"

	"canec/internal/obs"
	"canec/internal/sim"
)

// aggregate folds one finished chain into the per-class profile, the
// canec_why_* metric families and the retained chain lists.
func (a *Analyzer) aggregate(ch Chain) {
	a.total++
	agg, ok := a.byClass[ch.Class]
	if !ok {
		agg = &classAgg{
			debit:   make(map[Cause]sim.Duration),
			lateTop: make(map[Cause]uint64),
		}
		a.byClass[ch.Class] = agg
		a.classes = append(a.classes, ch.Class)
	}
	agg.chains++
	dropped := ch.Outcome != string(obs.StageDelivered)
	if dropped {
		agg.dropped++
	}
	if ch.Late {
		agg.late++
	}
	for _, s := range ch.Segments {
		agg.debit[s.Cause] += s.Debit
	}
	incident := ch.Late || dropped
	if incident {
		agg.lateTop[ch.Top]++
	}
	if a.reg != nil {
		a.metricChain(ch, dropped, incident)
	}
	if incident {
		a.recent = append(a.recent, ch)
		if len(a.recent) > a.cfg.KeepRecent {
			a.recent = a.recent[len(a.recent)-a.cfg.KeepRecent:]
		}
	}
	if a.cfg.KeepAll {
		a.all = append(a.all, ch)
	}
}

// metricChain maintains the canec_why_* families for one chain.
func (a *Analyzer) metricChain(ch Chain, dropped, incident bool) {
	if a.mChains == nil {
		a.mChains = make(map[string]*obs.Counter)
		a.mDebit = make(map[string]*obs.Counter)
		a.mLate = make(map[string]*obs.Counter)
		a.mDebitHist = make(map[string]*obs.Histogram)
	}
	outcome := "delivered"
	if dropped {
		outcome = "dropped"
	} else if ch.Late {
		outcome = "late"
	}
	key := ch.Class + "|" + outcome
	c, ok := a.mChains[key]
	if !ok {
		c = a.reg.Counter("canec_why_chains_total",
			"Cause-attributed event chains finished by the why-late engine, by class and outcome.",
			obs.Labels{"class": ch.Class, "outcome": outcome})
		a.mChains[key] = c
	}
	c.Inc()
	seen := make(map[Cause]sim.Duration)
	var order []Cause
	for _, s := range ch.Segments {
		if _, ok := seen[s.Cause]; !ok {
			order = append(order, s.Cause)
		}
		seen[s.Cause] += s.Debit
	}
	for _, cause := range order {
		key := ch.Class + "|" + string(cause)
		d, ok := a.mDebit[key]
		if !ok {
			d = a.reg.Counter("canec_why_debit_ns_total",
				"Latency attributed by the why-late engine, by class and cause, in virtual nanoseconds.",
				obs.Labels{"class": ch.Class, "cause": string(cause)})
			a.mDebit[key] = d
		}
		d.Add(float64(seen[cause]))
		h, ok := a.mDebitHist[key]
		if !ok {
			h = a.reg.LogHistogram("canec_why_debit_microseconds",
				"Per-chain attributed debit by class and cause, in virtual microseconds (log buckets).",
				obs.Labels{"class": ch.Class, "cause": string(cause)}, 1, 1e6, 50)
			a.mDebitHist[key] = h
		}
		h.Observe(float64(seen[cause]) / 1e3)
	}
	if incident {
		key := ch.Class + "|" + string(ch.Top)
		c, ok := a.mLate[key]
		if !ok {
			c = a.reg.Counter("canec_why_late_total",
				"Late or dropped chains by class and attributed top cause.",
				obs.Labels{"class": ch.Class, "cause": string(ch.Top)})
			a.mLate[key] = c
		}
		c.Inc()
	}
}

// Chains returns every finished chain (KeepAll runs only).
func (a *Analyzer) Chains() []Chain { return a.all }

// CauseStat is one cause's aggregate within a class profile.
type CauseStat struct {
	Cause Cause `json:"cause"`
	// DebitNS is the total attributed time, Share its fraction of the
	// class's attributed total.
	DebitNS sim.Duration `json:"debit_ns"`
	Share   float64      `json:"share"`
	// Late counts late/dropped chains whose top cause this is.
	Late uint64 `json:"late,omitempty"`
}

// ClassProfile is one class's aggregated why-late view.
type ClassProfile struct {
	Class   string `json:"class"`
	Chains  uint64 `json:"chains"`
	Late    uint64 `json:"late"`
	Dropped uint64 `json:"dropped"`
	// TotalNS / AbnormalNS are the attributed debit sums.
	TotalNS    sim.Duration `json:"total_ns"`
	AbnormalNS sim.Duration `json:"abnormal_ns"`
	// Top is the dominant top cause over late/dropped chains (ranked by
	// incident count, then abnormal debit), "none" without incidents.
	Top    Cause       `json:"top"`
	Causes []CauseStat `json:"causes,omitempty"`
}

// ChainSummary is a compact rendering of one incident chain for /why.
type ChainSummary struct {
	ID        uint64       `json:"id"`
	Class     string       `json:"class,omitempty"`
	Subject   string       `json:"subject,omitempty"`
	Outcome   string       `json:"outcome"`
	LatencyUS float64      `json:"latency_us"`
	Top       Cause        `json:"top"`
	Segments  string       `json:"segments"`
	Published sim.Time     `json:"published"`
	Latency   sim.Duration `json:"-"`
}

// Snapshot is the /why payload: totals, per-class cause profiles and
// recent incident chains. Kernel context to build; safe to serve after.
type Snapshot struct {
	Chains  uint64 `json:"chains"`
	Open    int    `json:"open"`
	Evicted uint64 `json:"evicted"`
	// BitTimeNS converts debits to bus bit times.
	BitTimeNS sim.Duration   `json:"bit_time_ns"`
	Classes   []ClassProfile `json:"classes,omitempty"`
	Recent    []ChainSummary `json:"recent,omitempty"`
}

// Snapshot assembles the current aggregate view. Kernel context.
func (a *Analyzer) Snapshot() Snapshot {
	s := Snapshot{
		Chains: a.total, Open: len(a.open), Evicted: a.evicted,
		BitTimeNS: a.cfg.BitTime,
	}
	for _, class := range a.classes {
		s.Classes = append(s.Classes, a.classProfile(class))
	}
	for _, ch := range a.recent {
		s.Recent = append(s.Recent, summarize(ch))
	}
	return s
}

func summarize(ch Chain) ChainSummary {
	subject := ""
	if ch.Subject != 0 {
		subject = fmt.Sprintf("0x%x", ch.Subject)
	}
	return ChainSummary{
		ID: ch.ID, Class: ch.Class, Subject: subject, Outcome: ch.Outcome,
		LatencyUS: float64(ch.Latency) / 1e3, Top: ch.Top,
		Segments: FormatSegments(ch.Segments), Published: ch.Published,
		Latency: ch.Latency,
	}
}

// FormatSegments renders segments as "cause(label)=duration" joined by
// " + " — the compact per-chain why string.
func FormatSegments(segs []Segment) string {
	parts := make([]string, 0, len(segs))
	for _, s := range segs {
		name := string(s.Cause)
		if s.Label != "" {
			name += "(" + s.Label + ")"
		}
		parts = append(parts, fmt.Sprintf("%s=%s", name, FormatDur(s.Debit)))
	}
	return strings.Join(parts, " + ")
}

// FormatDur renders a virtual duration compactly (µs below 1 ms).
func FormatDur(d sim.Duration) string {
	switch {
	case d >= sim.Second:
		return fmt.Sprintf("%.3gs", float64(d)/1e9)
	case d >= sim.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.3gus", float64(d)/1e3)
	}
}

func (a *Analyzer) classProfile(class string) ClassProfile {
	agg := a.byClass[class]
	p := ClassProfile{Class: class, Chains: agg.chains, Late: agg.late,
		Dropped: agg.dropped, Top: a.topFor(agg)}
	for _, cause := range Causes() {
		d, ok := agg.debit[cause]
		if !ok {
			continue
		}
		p.TotalNS += d
		if cause.Abnormal() {
			p.AbnormalNS += d
		}
	}
	for _, cause := range Causes() {
		d, ok := agg.debit[cause]
		if !ok {
			continue
		}
		st := CauseStat{Cause: cause, DebitNS: d, Late: agg.lateTop[cause]}
		if p.TotalNS > 0 {
			st.Share = float64(d) / float64(p.TotalNS)
		}
		p.Causes = append(p.Causes, st)
	}
	sort.SliceStable(p.Causes, func(i, j int) bool {
		return p.Causes[i].DebitNS > p.Causes[j].DebitNS
	})
	return p
}

// topFor ranks one class's incident top causes: count desc, debit desc,
// name asc — fully deterministic.
func (a *Analyzer) topFor(agg *classAgg) Cause {
	best := CauseNone
	var bestN uint64
	for _, cause := range Causes() {
		n := agg.lateTop[cause]
		if n == 0 || !cause.Abnormal() {
			continue
		}
		if n > bestN || (n == bestN && agg.debit[cause] > agg.debit[best]) {
			best, bestN = cause, n
		}
	}
	return best
}

// TopCause returns the dominant incident cause for one class ("" = all
// classes merged), CauseNone without incidents. Kernel context.
func (a *Analyzer) TopCause(class string) Cause {
	if class != "" {
		agg, ok := a.byClass[class]
		if !ok {
			return CauseNone
		}
		return a.topFor(agg)
	}
	merged := &classAgg{debit: make(map[Cause]sim.Duration), lateTop: make(map[Cause]uint64)}
	for _, c := range a.classes {
		agg := a.byClass[c]
		for k, v := range agg.debit {
			merged.debit[k] += v
		}
		for k, v := range agg.lateTop {
			merged.lateTop[k] += v
		}
	}
	return a.topFor(merged)
}

// BreachSummary renders the top-n incident causes for one class ("" =
// every class) — attached by the SLO engine to breach post-mortems.
// Empty when no late or dropped chain was attributed yet. Implements
// obs.CausalSink; kernel context.
func (a *Analyzer) BreachSummary(class string, n int) string {
	classes := a.classes
	if class != "" {
		classes = []string{class}
	}
	counts := make(map[Cause]uint64)
	debits := make(map[Cause]sim.Duration)
	for _, cl := range classes {
		agg, ok := a.byClass[cl]
		if !ok {
			continue
		}
		for cause, c := range agg.lateTop {
			if !cause.Abnormal() {
				continue
			}
			counts[cause] += c
		}
		for cause, d := range agg.debit {
			if !cause.Abnormal() {
				continue
			}
			debits[cause] += d
		}
	}
	type ranked struct {
		cause Cause
		n     uint64
		d     sim.Duration
	}
	var rs []ranked
	for _, cause := range Causes() {
		if counts[cause] == 0 {
			continue
		}
		rs = append(rs, ranked{cause, counts[cause], debits[cause]})
	}
	if len(rs) == 0 {
		return ""
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].n != rs[j].n {
			return rs[i].n > rs[j].n
		}
		return rs[i].d > rs[j].d
	})
	if n > 0 && len(rs) > n {
		rs = rs[:n]
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s×%d(%s)", r.cause, r.n, FormatDur(r.d))
	}
	return "top causes: " + strings.Join(parts, " ")
}
