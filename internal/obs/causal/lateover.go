package causal

import (
	"fmt"
	"strings"
	"time"

	"canec/internal/sim"
)

// ParseLateOver parses a "HRT=1ms,SRT=5ms" spec into per-class lateness
// bounds for Config.LateOver. Class names are case-insensitive; an empty
// spec yields an empty map (only drops count as incidents).
func ParseLateOver(s string) (map[string]sim.Duration, error) {
	bounds := make(map[string]sim.Duration)
	if s == "" {
		return bounds, nil
	}
	for _, part := range strings.Split(s, ",") {
		class, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad late-over entry %q (want CLASS=duration)", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return nil, fmt.Errorf("bad late-over bound %q: %v", part, err)
		}
		bounds[strings.ToUpper(strings.TrimSpace(class))] = sim.Duration(d.Nanoseconds())
	}
	return bounds, nil
}
