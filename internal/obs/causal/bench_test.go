package causal

import (
	"testing"

	"canec/internal/obs"
	"canec/internal/sim"
)

// seq is the hot publish→deliver emission sequence, as in
// BenchmarkObserverOverhead.
func seq(o *obs.Observer, at sim.Time) {
	id := o.Begin("SRT", 0, 0x42, at)
	o.Emit(id, obs.StageEnqueued, "SRT", 0, 0x42, at+10, "")
	o.Delivered(id, "SRT", 1, 0x42, at+200_000, "")
}

// TestCausalDetachedZeroAllocs is the companion of
// TestNilObserverZeroAllocs for the why-late engine: an observer that
// had a causal analyzer attached and then detached must allocate exactly
// as much per frame as one that never saw the analyzer — the engine-off
// hot path is a single nil check.
func TestCausalDetachedZeroAllocs(t *testing.T) {
	build := func() *obs.Observer {
		return obs.New(obs.Config{Metrics: true}, func() sim.Time { return 0 }, obs.BandMap{})
	}
	baseline := build()
	detached := build()
	detached.AttachCausal(New(Config{}))
	detached.AttachCausal(nil)
	if detached.Causal() != nil {
		t.Fatal("AttachCausal(nil) did not detach")
	}
	// Warm both observers identically so label-map growth is behind us.
	var at sim.Time
	for i := 0; i < 100; i++ {
		seq(baseline, at)
		seq(detached, at)
		at += 1000
	}
	base := testing.AllocsPerRun(1000, func() { seq(baseline, at); at += 1000 })
	at -= 1001 * 1000
	got := testing.AllocsPerRun(1000, func() { seq(detached, at); at += 1000 })
	if got != base {
		t.Fatalf("detached causal path allocates %v allocs/op, baseline %v — engine-off must add 0", got, base)
	}
}

// BenchmarkCausalOverhead measures the attached analyzer's per-frame
// cost next to the plain metrics path.
func BenchmarkCausalOverhead(b *testing.B) {
	b.Run("metrics", func(b *testing.B) {
		o := obs.New(obs.Config{Metrics: true}, func() sim.Time { return 0 }, obs.BandMap{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq(o, sim.Time(i)*1000)
		}
	})
	b.Run("metrics+causal", func(b *testing.B) {
		o := obs.New(obs.Config{Metrics: true}, func() sim.Time { return 0 }, obs.BandMap{})
		o.AttachCausal(New(Config{}))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq(o, sim.Time(i)*1000)
		}
	})
}
