// Package causal reconstructs per-event critical paths from the obs
// trace stream and attributes publish→deliver latency to typed causes —
// the "why late" engine.
//
// The attribution is exact, not heuristic: the trace stages of one event
// tile the interval [published.At, terminal.At] with no holes (adjacent
// records bound each other), so every gap between two adjacent stage
// records is charged — in full — to a cause derived from the stage
// transition, and waiting gaps are further carved against independently
// observed wire occupancy (tx_start/tx_ok spans of other frames) and
// node-state windows (bus_off→bus_off_recovered, holdover_enter→exit).
// The carving is interval subtraction in integer nanoseconds, so by
// construction the segment debits of a CauseChain sum to the
// trace-observed latency with residual exactly zero. Tests and E19
// assert that invariant per frame.
//
// The analyzer is streaming: it is fed record-by-record from kernel
// context (obs.Observer.AttachCausal), finalizes a chain on its terminal
// stage (delivered / dropped / expired / shed / tx_abort / relay_drop),
// and aggregates per-class per-cause debit profiles into counters and
// log-bucketed histograms. Batch use (canecwhy over a flight-recorder
// post-mortem) replays a record slice through the same engine.
package causal

import (
	"fmt"
	"sort"

	"canec/internal/obs"
	"canec/internal/sim"
)

// Cause labels one attributed latency contributor. Causes split into a
// baseline set (inherent to any delivery: publish processing, scheduled
// slot waits, the frame's own wire time, the de-jitter hold) and an
// abnormal set (interference, errors, faults, backpressure) — only
// abnormal debits make a chain's "why", so an undisturbed delivery has
// top cause "none".
type Cause string

const (
	// CausePublish is publish-side middleware processing
	// (published→enqueued).
	CausePublish Cause = "publish"
	// CauseSlotWait is an HRT event waiting for its reserved calendar
	// slot — scheduled, not anomalous.
	CauseSlotWait Cause = "slot_wait"
	// CauseWireTx is the frame's own successful wire occupancy.
	CauseWireTx Cause = "wire_tx"
	// CauseDelivery is receive-side processing (tx_ok→rx→delivered).
	CauseDelivery Cause = "delivery"
	// CauseDejitterHold is the HRT delivery-at-deadline hold (§3.2): the
	// subscriber-side wait that trades latency for zero jitter.
	CauseDejitterHold Cause = "dejitter_hold"

	// CauseQueueWait is time spent behind the publisher's own queue with
	// the wire idle or unobserved — self-induced backlog.
	CauseQueueWait Cause = "queue_wait"
	// CauseArbInterference is waiting while the wire carried another
	// frame — lost or deferred arbitration. The label names the
	// interfering subject (or band for untraced frames).
	CauseArbInterference Cause = "arb_interference"
	// CauseErrorRetransmit is time lost to corrupted attempts: the
	// partial transmission up to the error frame plus the recovery and
	// re-arbitration until the next attempt. The label carries the
	// failing attempt number.
	CauseErrorRetransmit Cause = "error_retransmit"
	// CauseBusoffRecovery is waiting while the publisher's controller
	// was bus-off (detached pending the 128×11-bit recovery).
	CauseBusoffRecovery Cause = "busoff_recovery"
	// CauseHoldoverWidening is HRT hold time spent under clock holdover,
	// when the slack is widened to the holdover uncertainty bound.
	CauseHoldoverWidening Cause = "holdover_widening"
	// CauseGuardianMute is time lost after the bus guardian muted an
	// attempt before it reached the wire.
	CauseGuardianMute Cause = "guardian_mute"
	// CauseRelayQueue is time between the last local stage and the relay
	// link accepting the event for forwarding.
	CauseRelayQueue Cause = "relay_queue"
	// CauseRelayLink is relay link transit (relay_tx→relay_rx).
	CauseRelayLink Cause = "relay_link"
	// CauseAdmissionBackoff is the tail of a chain withdrawn by the
	// probabilistic admission controller (admit_shed on its channel).
	CauseAdmissionBackoff Cause = "admission_backoff"

	// CauseNone is the top cause of a chain with zero abnormal debit.
	CauseNone Cause = "none"
)

// Abnormal reports whether the cause counts toward a chain's "why"
// (baseline causes are inherent to any delivery and never make a top
// cause).
func (c Cause) Abnormal() bool {
	switch c {
	case CausePublish, CauseSlotWait, CauseWireTx, CauseDelivery,
		CauseDejitterHold, CauseNone:
		return false
	}
	return true
}

// Causes lists every cause in exposition order (baseline first).
func Causes() []Cause {
	return []Cause{
		CausePublish, CauseSlotWait, CauseWireTx, CauseDelivery, CauseDejitterHold,
		CauseQueueWait, CauseArbInterference, CauseErrorRetransmit,
		CauseBusoffRecovery, CauseHoldoverWidening, CauseGuardianMute,
		CauseRelayQueue, CauseRelayLink, CauseAdmissionBackoff,
	}
}

// Segment is one attributed slice of a chain's latency. Segments with
// the same cause and label are coalesced, keeping first-touch order.
type Segment struct {
	Cause Cause `json:"cause"`
	// Label refines the cause: the interfering subject or band for
	// arb_interference, the failing attempt (k=N) for error_retransmit.
	Label string `json:"label,omitempty"`
	// Debit is the attributed virtual time in nanoseconds.
	Debit sim.Duration `json:"debit_ns"`
}

// Chain is the finished attribution of one event: ordered cause
// segments whose debits sum exactly to Latency (residual zero).
type Chain struct {
	ID        uint64       `json:"id"`
	Class     string       `json:"class,omitempty"`
	Subject   uint64       `json:"subject,omitempty"`
	Node      int          `json:"node"`
	Published sim.Time     `json:"published"`
	End       sim.Time     `json:"end"`
	Outcome   string       `json:"outcome"`
	Latency   sim.Duration `json:"latency_ns"`
	Late      bool         `json:"late,omitempty"`
	Segments  []Segment    `json:"segments,omitempty"`
	// Top is the abnormal cause with the largest debit (CauseNone when
	// no abnormal time was attributed).
	Top Cause `json:"top"`
}

// Residual is Latency minus the sum of segment debits. The engine's
// core invariant is that it is zero for every finished chain.
func (c Chain) Residual() sim.Duration {
	r := c.Latency
	for _, s := range c.Segments {
		r -= s.Debit
	}
	return r
}

// Debit sums the chain's attributed time for one cause across labels.
func (c Chain) Debit(cause Cause) sim.Duration {
	var d sim.Duration
	for _, s := range c.Segments {
		if s.Cause == cause {
			d += s.Debit
		}
	}
	return d
}

// AbnormalDebit sums the chain's abnormal segment debits.
func (c Chain) AbnormalDebit() sim.Duration {
	var d sim.Duration
	for _, s := range c.Segments {
		if s.Cause.Abnormal() {
			d += s.Debit
		}
	}
	return d
}

// Config parameterises the analyzer. The zero value works.
type Config struct {
	// Registry, when set, backs the canec_why_* metric families.
	Registry *obs.Registry
	// BitTime converts debits to bus bit times for rendering (default
	// 1 µs — the 1 Mbit/s bus).
	BitTime sim.Duration
	// LateOver classifies a delivered chain of a class as late when its
	// latency exceeds the bound. Classes absent from the map are never
	// late (dropped chains always count as incidents).
	LateOver map[string]sim.Duration
	// MaxOpen bounds in-flight (unterminated) chains; the oldest is
	// evicted past the bound (default 8192).
	MaxOpen int
	// KeepRecent bounds the retained summaries of recent late/dropped
	// chains served on /why (default 32).
	KeepRecent int
	// KeepAll retains every finished chain for Chains() — batch and
	// experiment use, not for long-running daemons.
	KeepAll bool
}

// span is one observed wire occupancy.
type span struct {
	from, to sim.Time
	id       uint64
	subject  uint64
	etag     uint16
	band     string
}

func (s span) label() string {
	if s.subject != 0 {
		return fmt.Sprintf("subject=0x%x", s.subject)
	}
	if s.band != "" {
		return "band=" + s.band
	}
	return fmt.Sprintf("etag=0x%x", s.etag)
}

// nodeWin is one node-state window (bus-off or holdover).
type nodeWin struct {
	node     int
	from, to sim.Time
}

// chainState accumulates one open trace.
type chainState struct {
	recs []obs.Record
}

// classAgg aggregates finished chains of one class.
type classAgg struct {
	chains, late, dropped uint64
	debit                 map[Cause]sim.Duration
	lateTop               map[Cause]uint64 // late+dropped chains by top cause
}

// Analyzer is the streaming why-late engine. It implements
// obs.CausalSink; drive it with Add in kernel context only.
type Analyzer struct {
	cfg Config

	open      map[uint64]*chainState
	openOrder []uint64 // FIFO of open IDs for bounded eviction
	evicted   uint64

	spans    []span // closed wire occupancies, in close order
	openSpan span
	spanOpen bool

	busoff   []nodeWin
	busoffAt map[int]sim.Time
	holdover []nodeWin
	holdAt   map[int]sim.Time
	admShed  map[uint64]sim.Time // subject → last admit_shed time

	byClass map[string]*classAgg
	classes []string // first-touch order
	total   uint64
	recent  []Chain // last KeepRecent late/dropped chains
	all     []Chain // when KeepAll

	reg        *obs.Registry
	mChains    map[string]*obs.Counter   // class|outcome
	mDebit     map[string]*obs.Counter   // class|cause, ns
	mLate      map[string]*obs.Counter   // class|cause (top cause of late chains)
	mDebitHist map[string]*obs.Histogram // class|cause, µs per chain
}

// New builds an analyzer.
func New(cfg Config) *Analyzer {
	if cfg.BitTime <= 0 {
		cfg.BitTime = sim.Microsecond
	}
	if cfg.MaxOpen <= 0 {
		cfg.MaxOpen = 8192
	}
	if cfg.KeepRecent <= 0 {
		cfg.KeepRecent = 32
	}
	return &Analyzer{
		cfg:      cfg,
		open:     make(map[uint64]*chainState),
		busoffAt: make(map[int]sim.Time),
		holdAt:   make(map[int]sim.Time),
		admShed:  make(map[uint64]sim.Time),
		byClass:  make(map[string]*classAgg),
		reg:      cfg.Registry,
	}
}

// Analyze replays a record slice (a tracer dump or a flight-recorder
// post-mortem) through a fresh analyzer — the batch entry point shared
// by canecwhy and the experiments. Records must be in emission order.
func Analyze(recs []obs.Record, cfg Config) *Analyzer {
	cfg.KeepAll = true
	a := New(cfg)
	for _, r := range recs {
		a.Add(r)
	}
	return a
}

// Add feeds one stage record. Kernel context; implements obs.CausalSink.
func (a *Analyzer) Add(r obs.Record) {
	// Global state first: wire occupancy and node-state windows come from
	// records of every trace ID (including 0).
	switch r.Stage {
	case obs.StageTxStart:
		a.openSpan = span{from: r.At, to: -1, id: r.ID,
			subject: r.Subject, etag: r.Etag, band: r.Band}
		a.spanOpen = true
	case obs.StageTxOK, obs.StageTxErr:
		if a.spanOpen {
			a.openSpan.to = r.At
			if a.openSpan.to > a.openSpan.from {
				a.spans = append(a.spans, a.openSpan)
			}
			a.spanOpen = false
		}
	case obs.StageBusOff:
		a.busoffAt[r.Node] = r.At
	case obs.StageBusOffRecovered:
		if from, ok := a.busoffAt[r.Node]; ok {
			a.busoff = append(a.busoff, nodeWin{r.Node, from, r.At})
			delete(a.busoffAt, r.Node)
		}
	case obs.StageHoldoverEnter:
		a.holdAt[r.Node] = r.At
	case obs.StageHoldoverExit:
		if from, ok := a.holdAt[r.Node]; ok {
			a.holdover = append(a.holdover, nodeWin{r.Node, from, r.At})
			delete(a.holdAt, r.Node)
		}
	case obs.StageAdmitShed:
		a.admShed[r.Subject] = r.At
	}
	if r.ID == 0 {
		return
	}
	c, ok := a.open[r.ID]
	if !ok {
		if r.Stage != obs.StagePublished {
			return // mid-life record of an unknown chain (ring eviction)
		}
		c = &chainState{}
		a.open[r.ID] = c
		a.openOrder = append(a.openOrder, r.ID)
		a.evictOver()
	}
	c.recs = append(c.recs, r)
	switch r.Stage {
	case obs.StageDelivered, obs.StageDropped, obs.StageExpired,
		obs.StageShed, obs.StageTxAbort, obs.StageRelayDrop:
		a.finish(r.ID, c)
	}
	if len(a.spans) >= spanPruneLen {
		a.prune()
	}
}

const spanPruneLen = 8192

// evictOver drops the oldest open chains past MaxOpen.
func (a *Analyzer) evictOver() {
	for len(a.open) > a.cfg.MaxOpen && len(a.openOrder) > 0 {
		id := a.openOrder[0]
		a.openOrder = a.openOrder[1:]
		if _, ok := a.open[id]; ok {
			delete(a.open, id)
			a.evicted++
		}
	}
}

// prune drops wire spans and windows no open chain can still need.
func (a *Analyzer) prune() {
	minPub := sim.Time(1<<63 - 1)
	for _, c := range a.open {
		if len(c.recs) > 0 && c.recs[0].At < minPub {
			minPub = c.recs[0].At
		}
	}
	keepSpans := a.spans[:0]
	for _, s := range a.spans {
		if s.to > minPub {
			keepSpans = append(keepSpans, s)
		}
	}
	a.spans = keepSpans
	keepWins := a.busoff[:0]
	for _, w := range a.busoff {
		if w.to > minPub {
			keepWins = append(keepWins, w)
		}
	}
	a.busoff = keepWins
	keepWins = a.holdover[:0]
	for _, w := range a.holdover {
		if w.to > minPub {
			keepWins = append(keepWins, w)
		}
	}
	a.holdover = keepWins
	// Drop stale open-order entries for already-finished chains.
	keepIDs := a.openOrder[:0]
	for _, id := range a.openOrder {
		if _, ok := a.open[id]; ok {
			keepIDs = append(keepIDs, id)
		}
	}
	a.openOrder = keepIDs
}

// finish closes one chain: attribute, aggregate, release.
func (a *Analyzer) finish(id uint64, c *chainState) {
	ch := a.attribute(c)
	delete(a.open, id)
	a.aggregate(ch)
}

// iv is a half-open interval [from, to).
type iv struct{ from, to sim.Time }

// carve subtracts window [wf, wt) from each interval, reporting carved
// pieces to hit and returning the remainder.
func carve(ivs []iv, wf, wt sim.Time, hit func(sim.Time, sim.Time)) []iv {
	if wt <= wf {
		return ivs
	}
	out := ivs[:0:0]
	for _, in := range ivs {
		f, t := wf, wt
		if f < in.from {
			f = in.from
		}
		if t > in.to {
			t = in.to
		}
		if f >= t { // no overlap
			out = append(out, in)
			continue
		}
		hit(f, t)
		if in.from < f {
			out = append(out, iv{in.from, f})
		}
		if t < in.to {
			out = append(out, iv{t, in.to})
		}
	}
	return out
}

// segAcc coalesces attributed slices per (cause, label) in first-touch
// order, preserving the exact nanosecond total.
type segAcc struct {
	order []string
	segs  map[string]*Segment
}

func newSegAcc() *segAcc { return &segAcc{segs: make(map[string]*Segment)} }

func (s *segAcc) add(cause Cause, label string, d sim.Duration) {
	if d <= 0 {
		return
	}
	key := string(cause) + "|" + label
	seg, ok := s.segs[key]
	if !ok {
		seg = &Segment{Cause: cause, Label: label}
		s.segs[key] = seg
		s.order = append(s.order, key)
	}
	seg.Debit += d
}

func (s *segAcc) list() []Segment {
	out := make([]Segment, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, *s.segs[key])
	}
	return out
}

// attribute tiles one chain's record gaps into cause segments.
func (a *Analyzer) attribute(c *chainState) Chain {
	recs := c.recs
	first, last := recs[0], recs[len(recs)-1]
	ch := Chain{
		ID: first.ID, Class: first.Class, Subject: first.Subject,
		Node: first.Node, Published: first.At, End: last.At,
		Outcome: string(last.Stage), Latency: sim.Duration(last.At - first.At),
	}
	if last.Stage == obs.StageDelivered && last.Detail != "" {
		ch.Outcome = string(last.Stage)
	}
	if d := last.Detail; d != "" && last.Stage != obs.StageDelivered {
		ch.Outcome += "(" + d + ")"
	}
	// An admission withdrawal inside the chain's life reclassifies the
	// final wait of a non-delivered chain.
	admission := false
	if last.Stage != obs.StageDelivered {
		if at, ok := a.admShed[first.Subject]; ok && at > first.At && at <= last.At {
			admission = true
		}
	}
	acc := newSegAcc()
	for i := 1; i < len(recs); i++ {
		prev, next := recs[i-1], recs[i]
		gap := next.At - prev.At
		if gap <= 0 {
			continue
		}
		if admission && i == len(recs)-1 {
			acc.add(CauseAdmissionBackoff, "", sim.Duration(gap))
			continue
		}
		a.attributeGap(&ch, prev, next, acc)
	}
	ch.Segments = acc.list()
	if bound, ok := a.cfg.LateOver[ch.Class]; ok && bound > 0 &&
		last.Stage == obs.StageDelivered && ch.Latency > bound {
		ch.Late = true
	}
	// Top answers "why late" — chains that arrived on time have no why,
	// whatever minor abnormal debits they accrued along the way.
	if ch.Late || last.Stage != obs.StageDelivered {
		ch.Top = topCause(ch.Segments)
	} else {
		ch.Top = CauseNone
	}
	return ch
}

// topCause picks the abnormal cause with the largest total debit
// (first-touch order breaks ties deterministically).
func topCause(segs []Segment) Cause {
	totals := make(map[Cause]sim.Duration)
	var order []Cause
	for _, s := range segs {
		if !s.Cause.Abnormal() {
			continue
		}
		if _, ok := totals[s.Cause]; !ok {
			order = append(order, s.Cause)
		}
		totals[s.Cause] += s.Debit
	}
	top, best := CauseNone, sim.Duration(0)
	for _, c := range order {
		if totals[c] > best {
			top, best = c, totals[c]
		}
	}
	return top
}

// attributeGap charges the gap between two adjacent records of one chain.
func (a *Analyzer) attributeGap(ch *Chain, prev, next obs.Record, acc *segAcc) {
	gap := sim.Duration(next.At - prev.At)
	// Relay forwarding wait takes precedence: whatever local stage came
	// before, the time until the link accepted the event is relay queueing.
	if next.Stage == obs.StageRelayTx {
		acc.add(CauseRelayQueue, ch.Class, gap)
		return
	}
	switch prev.Stage {
	case obs.StagePublished:
		if next.Stage == obs.StageEnqueued {
			acc.add(CausePublish, "", gap)
			return
		}
		a.waitGap(ch, prev, next, acc)
	case obs.StageEnqueued, obs.StagePromoted, obs.StageArbWon, obs.StageArbLost:
		a.waitGap(ch, prev, next, acc)
	case obs.StageTxStart:
		if next.Stage == obs.StageTxErr {
			acc.add(CauseErrorRetransmit, fmt.Sprintf("k=%d", attemptOf(prev)), gap)
			return
		}
		acc.add(CauseWireTx, "", gap)
	case obs.StageTxErr:
		// Error-frame signalling, suspend transmission and re-arbitration
		// until the next attempt: all consequence of the corrupted attempt.
		acc.add(CauseErrorRetransmit, fmt.Sprintf("k=%d", attemptOf(prev)), gap)
	case obs.StageGuardMuted:
		acc.add(CauseGuardianMute, "", gap)
	case obs.StageTxOK:
		acc.add(CauseDelivery, "", gap)
	case obs.StageRx:
		if ch.Class == "HRT" && next.Stage == obs.StageDelivered {
			// Delivery-at-deadline hold; the slice spent under clock
			// holdover is the widening the failover cost us.
			a.carveWindows(a.holdover, -1, prev.At, next.At, CauseHoldoverWidening,
				CauseDejitterHold, acc)
			return
		}
		acc.add(CauseDelivery, "", gap)
	case obs.StageRelayTx:
		acc.add(CauseRelayLink, "", gap)
	case obs.StageRelayRx:
		acc.add(CausePublish, "relay", gap)
	default:
		a.waitGap(ch, prev, next, acc)
	}
}

func attemptOf(r obs.Record) int {
	if r.Attempt > 0 {
		return r.Attempt
	}
	return 1
}

// waitGap carves a queue/arbitration wait: bus-off windows of the
// holding node first (a detached controller cannot arbitrate at all),
// then observed foreign wire occupancy, remainder to the scheduled base.
func (a *Analyzer) waitGap(ch *Chain, prev, next obs.Record, acc *segAcc) {
	base := CauseQueueWait
	if ch.Class == "HRT" {
		base = CauseSlotWait
	}
	rem := []iv{{prev.At, next.At}}
	rem = a.carveNodeWins(rem, a.busoff, prev.Node, CauseBusoffRecovery, acc)
	// Foreign wire occupancy: every closed span of another frame that
	// overlaps the wait, plus the still-open one.
	rem = a.carveSpans(rem, ch.ID, prev.At, next.At, acc)
	for _, in := range rem {
		acc.add(base, "", sim.Duration(in.to-in.from))
	}
}

// carveWindows splits [from, to) against a window list filtered by node
// (-1 = any node), charging overlaps to hitCause and the rest to base.
func (a *Analyzer) carveWindows(wins []nodeWin, node int, from, to sim.Time,
	hitCause, base Cause, acc *segAcc) {
	rem := []iv{{from, to}}
	rem = a.carveNodeWins(rem, wins, node, hitCause, acc)
	for _, in := range rem {
		acc.add(base, "", sim.Duration(in.to-in.from))
	}
}

func (a *Analyzer) carveNodeWins(rem []iv, wins []nodeWin, node int,
	cause Cause, acc *segAcc) []iv {
	for _, w := range wins {
		if node >= 0 && w.node != node {
			continue
		}
		rem = carve(rem, w.from, w.to, func(f, t sim.Time) {
			acc.add(cause, "", sim.Duration(t-f))
		})
		if len(rem) == 0 {
			return rem
		}
	}
	// A still-open window (fault not yet recovered) counts too.
	check := func(openAt map[int]sim.Time) {
		for n, fromAt := range openAt {
			if node >= 0 && n != node {
				continue
			}
			rem = carve(rem, fromAt, sim.Time(1<<63-1), func(f, t sim.Time) {
				acc.add(cause, "", sim.Duration(t-f))
			})
		}
	}
	switch cause {
	case CauseBusoffRecovery:
		check(a.busoffAt)
	case CauseHoldoverWidening:
		check(a.holdAt)
	}
	return rem
}

// carveSpans subtracts foreign wire occupancy from the wait intervals.
func (a *Analyzer) carveSpans(rem []iv, selfID uint64, from, to sim.Time, acc *segAcc) []iv {
	// Spans close in time order: binary-search the first that can overlap.
	lo := sort.Search(len(a.spans), func(i int) bool { return a.spans[i].to > from })
	for i := lo; i < len(a.spans) && len(rem) > 0; i++ {
		s := a.spans[i]
		if s.from >= to {
			break
		}
		if s.id == selfID {
			continue
		}
		label := s.label()
		rem = carve(rem, s.from, s.to, func(f, t sim.Time) {
			acc.add(CauseArbInterference, label, sim.Duration(t-f))
		})
	}
	if a.spanOpen && a.openSpan.id != selfID && a.openSpan.from < to && len(rem) > 0 {
		label := a.openSpan.label()
		rem = carve(rem, a.openSpan.from, to, func(f, t sim.Time) {
			acc.add(CauseArbInterference, label, sim.Duration(t-f))
		})
	}
	return rem
}
