package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** by Blackman & Vigna). The standard library's math/rand is
// avoided deliberately: its global state and historical source changes make
// cross-version reproducibility fragile, and simulation results in this
// repository must be identical for a given seed forever.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed non-zero internal state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// modulo bias is negligible for the n values used by the models.
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n) as an int64. It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, for Poisson arrival processes. The result is at least 1 ns so that
// arrival sequences always make progress.
func (r *RNG) ExpDuration(mean Duration) Duration {
	if mean <= 0 {
		return 1
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-float64(mean) * math.Log(u))
	if d < 1 {
		d = 1
	}
	return d
}

// NormDuration returns a normally distributed duration (Box–Muller) with
// the given mean and standard deviation, clamped at zero.
func (r *RNG) NormDuration(mean, stddev Duration) Duration {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	d := Duration(float64(mean) + z*float64(stddev))
	if d < 0 {
		d = 0
	}
	return d
}

// Jitter returns a uniform duration in [-spread, +spread].
func (r *RNG) Jitter(spread Duration) Duration {
	if spread <= 0 {
		return 0
	}
	return Duration(r.Int63n(int64(2*spread+1))) - spread
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
