package sim

import "time"

// ProbeStage names one stage of the publish→deliver chain for wall-clock
// cost attribution. The stages are defined here — not in the profiler
// package — because the kernel, the bus model and the middleware all
// instrument themselves against this enum without depending on the
// observability layer.
type ProbeStage uint8

const (
	// ProbeEnqueue is the publisher-side Publish call: admission checks,
	// priority mapping, frame construction, controller submission.
	ProbeEnqueue ProbeStage = iota
	// ProbeHeap is the kernel's event-heap work: scheduling pushes,
	// cancellation removals and step pops.
	ProbeHeap
	// ProbeArbitration is one bus arbitration round: the controller scan
	// and winner resolution.
	ProbeArbitration
	// ProbeCodec is frame wire-geometry work: CRC-15 and bit-stuffing
	// over the real bit pattern (WireBits and the wire codec).
	ProbeCodec
	// ProbeDispatch is the receive-side middleware dispatch: etag
	// routing plus per-class receive processing (dedup, reassembly).
	ProbeDispatch
	// ProbeDelivery is the subscriber notification callback itself. HRT
	// deliveries run from de-jitter timers, so this stage is not always
	// nested inside ProbeDispatch.
	ProbeDelivery
	// NumProbeStages bounds the enum for array-indexed aggregation.
	NumProbeStages
)

// String returns the stage's exposition name.
func (s ProbeStage) String() string {
	switch s {
	case ProbeEnqueue:
		return "enqueue"
	case ProbeHeap:
		return "heap"
	case ProbeArbitration:
		return "arbitration"
	case ProbeCodec:
		return "codec"
	case ProbeDispatch:
		return "dispatch"
	case ProbeDelivery:
		return "delivery"
	}
	return "unknown"
}

// ProbeClass attributes a stage sample to a channel class where the
// instrumentation point knows it (middleware sites); kernel- and
// bus-level samples carry ProbeClassNone.
type ProbeClass uint8

const (
	ProbeClassNone ProbeClass = iota
	ProbeClassHRT
	ProbeClassSRT
	ProbeClassNRT
	NumProbeClasses
)

// String returns the class's exposition name.
func (c ProbeClass) String() string {
	switch c {
	case ProbeClassHRT:
		return "hrt"
	case ProbeClassSRT:
		return "srt"
	case ProbeClassNRT:
		return "nrt"
	}
	return "all"
}

// Probe receives wall-clock stage attributions from the kernel, the bus
// and the middleware. Implementations must be cheap and must not
// allocate: probes run inside the hottest simulation paths. The
// obs/perf.Profiler is the stock implementation.
type Probe interface {
	// StageNs attributes wallNs nanoseconds of wall-clock work to one
	// stage (and class, when the caller knows it). One call also counts
	// one operation of that stage, so delivery-stage calls double as the
	// delivered-frame counter.
	StageNs(s ProbeStage, c ProbeClass, wallNs int64)
}

// probeEpoch anchors ProbeNow's monotonic readings.
var probeEpoch = time.Now()

// ProbeNow returns a monotonic wall-clock reading in nanoseconds, for
// bracketing instrumented regions. It is only meaningful as a
// difference between two readings in the same process.
func ProbeNow() int64 { return int64(time.Since(probeEpoch)) }

// KernelProfile is a snapshot of the kernel's always-on self-accounting.
// The counters are maintained unconditionally — they cost a compare and
// an add per event — so profilers can attach mid-run and still see
// lifetime high-water marks.
type KernelProfile struct {
	// Steps is the number of events executed so far.
	Steps uint64
	// Pending is the current event-heap depth.
	Pending int
	// HeapHighWater is the deepest the event heap has ever been.
	HeapHighWater int
	// IdleVirtual is the total virtual time the clock jumped forward
	// waiting for the next event (Step gaps and AdvanceTo), i.e. virtual
	// time during which no event was due.
	IdleVirtual Duration
	// Now is the current virtual time.
	Now Time
}

// SetProbe installs (or, with nil, removes) the kernel's stage probe.
// Callers must pass a genuinely nil interface to disable probing, not a
// typed nil pointer.
func (k *Kernel) SetProbe(p Probe) { k.probe = p }

// Probe returns the installed stage probe (nil when profiling is off).
// Bus and middleware instrumentation points read it per operation so a
// probe attached to the kernel covers the whole chain with no extra
// wiring.
func (k *Kernel) Probe() Probe { return k.probe }

// Profile returns the kernel's self-accounting snapshot.
func (k *Kernel) Profile() KernelProfile {
	return KernelProfile{
		Steps:         k.steps,
		Pending:       len(k.queue),
		HeapHighWater: k.heapHigh,
		IdleVirtual:   k.idleVirtual,
		Now:           k.now,
	}
}
