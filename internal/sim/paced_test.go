package sim

import (
	"sync"
	"testing"
	"time"
)

// A paced run must execute scheduled events in order and land the clock
// on the horizon, just like Kernel.Run does.
func TestPacedRunExecutesInOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{2 * Millisecond, 1 * Millisecond, 3 * Millisecond} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	p := NewPaced(k, 1000) // 1000x: 3 ms virtual ≈ 3 µs wall
	p.Run(5 * Millisecond)
	if len(got) != 3 || got[0] != 1*Millisecond || got[1] != 2*Millisecond || got[2] != 3*Millisecond {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 5*Millisecond {
		t.Fatalf("clock at %v, want horizon", k.Now())
	}
}

// Injected closures must run in kernel context and observe a virtual
// clock that tracks the wall clock even while the event queue is idle.
func TestPacedInjectDuringIdle(t *testing.T) {
	k := NewKernel(1)
	p := NewPaced(k, 100)
	var mu sync.Mutex
	var stamped Time
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		p.Inject(func() {
			mu.Lock()
			stamped = k.Now()
			mu.Unlock()
			close(done)
		})
	}()
	go p.Run(MaxTime)
	defer p.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("injection never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	// 10 ms wall at 100x is 1 s virtual; allow generous scheduling slack
	// but require that the clock moved well past zero.
	if stamped < 100*Millisecond {
		t.Fatalf("injected closure saw stale clock %v", stamped)
	}
}

// Events scheduled for a virtual instant must not fire earlier than the
// wall clock allows (the throttle is the whole point of pacing).
func TestPacedThrottlesAgainstWallClock(t *testing.T) {
	k := NewKernel(1)
	var firedAt time.Time
	k.At(50*Millisecond, func() { firedAt = time.Now() })
	p := NewPaced(k, 1) // real time: 50 ms virtual = 50 ms wall
	start := time.Now()
	p.Run(50 * Millisecond)
	if firedAt.IsZero() {
		t.Fatal("event never fired")
	}
	if elapsed := firedAt.Sub(start); elapsed < 40*time.Millisecond {
		t.Fatalf("event fired after %v wall, want ≥ ~50ms", elapsed)
	}
}

// Stop must end a run promptly even with no pending events.
func TestPacedStop(t *testing.T) {
	k := NewKernel(1)
	p := NewPaced(k, 1)
	done := make(chan struct{})
	go func() {
		p.Run(MaxTime)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
}

// AdvanceTo must refuse to jump over pending work and ignore moves into
// the past.
func TestAdvanceToGuards(t *testing.T) {
	k := NewKernel(1)
	k.At(Millisecond, func() {})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo over a pending event did not panic")
			}
		}()
		k.AdvanceTo(2 * Millisecond)
	}()
	k.RunUntilIdle()
	k.AdvanceTo(5 * Millisecond)
	if k.Now() != 5*Millisecond {
		t.Fatalf("now %v", k.Now())
	}
	k.AdvanceTo(Millisecond) // backward: no-op
	if k.Now() != 5*Millisecond {
		t.Fatalf("backward AdvanceTo moved the clock to %v", k.Now())
	}
}
