package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestKernelExecutionOrderProperty: for any set of scheduled times (with
// random cancellations), events execute in nondecreasing time order and
// FIFO within equal times, and exactly the non-cancelled ones run.
func TestKernelExecutionOrderProperty(t *testing.T) {
	f := func(times []uint16, cancelMask uint32) bool {
		if len(times) > 24 {
			times = times[:24]
		}
		k := NewKernel(1)
		type fire struct {
			at  Time
			seq int
		}
		var fired []fire
		timers := make([]Timer, len(times))
		for i, raw := range times {
			i := i
			at := Time(raw)
			timers[i] = k.At(at, func() {
				fired = append(fired, fire{at: k.Now(), seq: i})
			})
		}
		cancelled := map[int]bool{}
		for i := range timers {
			if cancelMask&(1<<uint(i%32)) != 0 && i%3 == 0 {
				k.Cancel(timers[i])
				cancelled[i] = true
			}
		}
		k.RunUntilIdle()
		// Exactly the surviving events fired.
		if len(fired) != len(times)-len(cancelled) {
			return false
		}
		// Times nondecreasing; among equal times, scheduling order.
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		// Every fired event matches its scheduled time.
		for _, fr := range fired {
			if fr.at != Time(times[fr.seq]) {
				return false
			}
		}
		// The fired multiset equals the scheduled-minus-cancelled multiset.
		var want, got []int
		for i := range times {
			if !cancelled[i] {
				want = append(want, i)
			}
		}
		for _, fr := range fired {
			got = append(got, fr.seq)
		}
		sort.Ints(got)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelPendingCount(t *testing.T) {
	k := NewKernel(1)
	if k.Pending() != 0 {
		t.Fatal("fresh kernel pending")
	}
	t1 := k.At(10, func() {})
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	k.Cancel(t1)
	if k.Pending() != 1 {
		t.Fatalf("pending after cancel = %d", k.Pending())
	}
	k.RunUntilIdle()
	if k.Pending() != 0 {
		t.Fatalf("pending after run = %d", k.Pending())
	}
	if k.Steps() != 1 {
		t.Fatalf("steps = %d", k.Steps())
	}
}

func TestKernelNilEventPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil event accepted")
		}
	}()
	k.At(10, nil)
}
