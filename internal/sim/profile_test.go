package sim

import "testing"

// countProbe records probe calls per (stage, class) bucket.
type countProbe struct {
	ops    [NumProbeStages][NumProbeClasses]uint64
	wallNs [NumProbeStages][NumProbeClasses]int64
}

func (p *countProbe) StageNs(s ProbeStage, c ProbeClass, wallNs int64) {
	p.ops[s][c]++
	p.wallNs[s][c] += wallNs
}

func TestProbeStageStrings(t *testing.T) {
	want := map[ProbeStage]string{
		ProbeEnqueue:     "enqueue",
		ProbeHeap:        "heap",
		ProbeArbitration: "arbitration",
		ProbeCodec:       "codec",
		ProbeDispatch:    "dispatch",
		ProbeDelivery:    "delivery",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("stage %d: got %q want %q", s, got, name)
		}
	}
	classes := map[ProbeClass]string{
		ProbeClassNone: "all", ProbeClassHRT: "hrt",
		ProbeClassSRT: "srt", ProbeClassNRT: "nrt",
	}
	for c, name := range classes {
		if got := c.String(); got != name {
			t.Errorf("class %d: got %q want %q", c, got, name)
		}
	}
}

func TestKernelProbeHeapOps(t *testing.T) {
	k := NewKernel(1)
	p := &countProbe{}
	k.SetProbe(p)
	if k.Probe() == nil {
		t.Fatal("probe not installed")
	}

	tm := k.At(100, func() {})
	k.At(200, func() {})
	if got := p.ops[ProbeHeap][ProbeClassNone]; got != 2 {
		t.Fatalf("heap ops after 2 schedules: %d", got)
	}
	k.Cancel(tm)
	if got := p.ops[ProbeHeap][ProbeClassNone]; got != 3 {
		t.Fatalf("heap ops after cancel: %d", got)
	}
	k.Run(MaxTime)
	// One pop for the surviving event.
	if got := p.ops[ProbeHeap][ProbeClassNone]; got != 4 {
		t.Fatalf("heap ops after run: %d", got)
	}

	k.SetProbe(nil)
	if k.Probe() != nil {
		t.Fatal("probe not cleared")
	}
}

func TestKernelProfileCounters(t *testing.T) {
	k := NewKernel(1)
	// Three pending events push the high-water mark to 3; gaps between
	// them are pure idle virtual time (nothing else runs).
	k.At(1000, func() {})
	k.At(2000, func() {})
	k.At(5000, func() {})
	kp := k.Profile()
	if kp.HeapHighWater != 3 || kp.Pending != 3 {
		t.Fatalf("before run: high-water %d pending %d", kp.HeapHighWater, kp.Pending)
	}
	k.Run(5000)
	kp = k.Profile()
	if kp.Steps != 3 {
		t.Fatalf("steps: %d", kp.Steps)
	}
	if kp.Pending != 0 {
		t.Fatalf("pending after run: %d", kp.Pending)
	}
	// All 5000ns of virtual time were idle: the clock only moved by
	// jumping to due events.
	if kp.IdleVirtual != 5000 {
		t.Fatalf("idle virtual: %d", kp.IdleVirtual)
	}
	if kp.Now != 5000 {
		t.Fatalf("now: %d", kp.Now)
	}
	// High-water sticks after the queue drains.
	if kp.HeapHighWater != 3 {
		t.Fatalf("high-water after drain: %d", kp.HeapHighWater)
	}
}

func TestKernelProfileIdleRunPastLastEvent(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {})
	k.Run(1000)
	if kp := k.Profile(); kp.IdleVirtual != 1000 {
		t.Fatalf("idle virtual with horizon tail: %d", kp.IdleVirtual)
	}
}

func TestProbeNowMonotonic(t *testing.T) {
	a := ProbeNow()
	b := ProbeNow()
	if b < a {
		t.Fatalf("ProbeNow went backwards: %d then %d", a, b)
	}
}

// TestNilProbeZeroAllocs pins the zero-cost-when-nil discipline for the
// kernel's probe hooks: with no probe attached, scheduling and stepping
// must not allocate beyond the event record itself (1 alloc per At).
func TestNilProbeZeroAllocs(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	per := testing.AllocsPerRun(200, func() {
		k.At(k.Now()+1, fn)
		k.Step()
	})
	if per > 1 {
		t.Fatalf("schedule+step with nil probe: %.2f allocs, want <= 1 (the event record)", per)
	}
}
