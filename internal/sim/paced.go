package sim

import (
	"sync"
	"time"
)

// Paced drives a Kernel against the wall clock so that a simulated
// segment can interoperate with the outside world (real TCP relay links,
// other daemons) in real time. Virtual time advances at Ratio virtual
// nanoseconds per wall nanosecond: 1.0 is real time, 10.0 runs the
// simulation ten times faster than the wall clock.
//
// Pacing is strictly opt-in. A kernel that is never handed to a Paced
// runner behaves exactly as before — deterministic, single-threaded,
// as fast as the host allows — so every existing test and experiment
// keeps its bit-reproducibility. A paced run is *not* reproducible: the
// wall clock and the network decide when injected work interleaves with
// scheduled events, which is the price of speaking to real sockets.
//
// Concurrency contract: the kernel is only ever touched by the goroutine
// inside Run. Other goroutines communicate exclusively through Inject,
// which enqueues a closure to be executed in kernel context at the
// current virtual time. This preserves the kernel's single-threaded
// discipline without adding locks to the hot discrete-event path.
type Paced struct {
	k     *Kernel
	ratio float64

	mu   sync.Mutex
	inj  []func()
	wake chan struct{}
	quit chan struct{}
	once sync.Once
}

// NewPaced wraps a kernel for wall-clock-throttled execution. ratio <= 0
// selects real time (1.0).
func NewPaced(k *Kernel, ratio float64) *Paced {
	if ratio <= 0 {
		ratio = 1
	}
	return &Paced{
		k:     k,
		ratio: ratio,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
}

// Kernel returns the driven kernel. Callers outside Run's goroutine must
// not touch it directly; use Inject.
func (p *Paced) Kernel() *Kernel { return p.k }

// Ratio returns the virtual-per-wall speed factor.
func (p *Paced) Ratio() float64 { return p.ratio }

// VirtualPerWall converts a wall-clock duration into the virtual time it
// spans at the configured ratio (used to price real network residence
// against virtual relay-deadline budgets).
func (p *Paced) VirtualPerWall(d time.Duration) Duration {
	return Duration(float64(d.Nanoseconds()) * p.ratio)
}

// Inject schedules fn to run in kernel context at the current virtual
// time. It is safe to call from any goroutine, before, during and after
// Run; closures injected after Run returned are discarded with it.
func (p *Paced) Inject(fn func()) {
	p.mu.Lock()
	p.inj = append(p.inj, fn)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Call runs fn in kernel context and blocks until it completed — the
// synchronous form of Inject, for queries from tests and shutdown paths.
// It must not be called from within kernel context (it would deadlock).
func (p *Paced) Call(fn func()) {
	done := make(chan struct{})
	p.Inject(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
	case <-p.quit:
		// Run ended before draining the injection: execute inline —
		// Run's goroutine no longer touches the kernel after quit, so
		// the single-toucher invariant holds.
		select {
		case <-done:
		default:
			fn()
		}
	}
}

// Stop ends a running Run at the next scheduling point. Idempotent.
func (p *Paced) Stop() { p.once.Do(func() { close(p.quit) }) }

// Done reports a channel closed when Stop was called.
func (p *Paced) Done() <-chan struct{} { return p.quit }

// Run executes the kernel until virtual time reaches horizon (or Stop),
// throttling against the wall clock: an event scheduled for virtual time
// t fires no earlier than start + (t-now₀)/Ratio on the wall. While the
// queue is idle the virtual clock keeps tracking the wall clock, so
// injected work (frames arriving from a relay peer) is stamped with the
// "current" virtual time rather than the time of the last local event.
func (p *Paced) Run(horizon Time) {
	wall0 := time.Now()
	v0 := p.k.Now()
	// vnow returns the wall-implied virtual time, capped at the horizon.
	vnow := func() Time {
		v := v0 + Time(float64(time.Since(wall0))*p.ratio)
		if v > horizon {
			return horizon
		}
		return v
	}
	for {
		select {
		case <-p.quit:
			return
		default:
		}
		now := vnow()
		// Execute everything due at the wall-implied virtual instant.
		for {
			next, ok := p.k.NextAt()
			if !ok || next > now {
				break
			}
			p.k.Step()
		}
		p.k.AdvanceTo(now)
		// Drain injections in kernel context at the current virtual time.
		p.mu.Lock()
		inj := p.inj
		p.inj = nil
		p.mu.Unlock()
		if len(inj) > 0 {
			for _, fn := range inj {
				fn()
			}
			continue // injected work may have scheduled due events
		}
		if now >= horizon {
			p.Stop()
			return
		}
		// Sleep until the next event is due (or the horizon), waking
		// early for injections.
		target := horizon
		if next, ok := p.k.NextAt(); ok && next < target {
			target = next
		}
		wait := time.Duration(float64(target-now) / p.ratio)
		if wait <= 0 {
			continue
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-p.wake:
			timer.Stop()
		case <-p.quit:
			timer.Stop()
			return
		}
	}
}
