// Package sim provides a deterministic discrete-event simulation kernel.
//
// All protocol components in this repository (the CAN bus model, clocks,
// middleware dispatchers, workload generators) are driven by a single
// Kernel instance. The kernel keeps a virtual clock with nanosecond
// resolution and a priority queue of pending events. Events scheduled for
// the same instant fire in scheduling order (FIFO), which makes every
// simulation run bit-reproducible for a given seed.
//
// The kernel is deliberately single-threaded: determinism is a core
// requirement for reproducing the paper's temporal claims, and Go's
// scheduler or garbage collector must never be able to perturb protocol
// timing. Parallelism is applied one level up, by running many independent
// Kernel instances concurrently (see the bench harness).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient duration units, mirroring time.Duration's constants but for
// virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as an
// "infinite" horizon by Run.
const MaxTime Time = math.MaxInt64

// String formats t as seconds with microsecond precision, e.g. "1.250300s".
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", t/Second, (t%Second)/Microsecond)
}

// Micros returns t expressed in whole microseconds, rounding toward zero.
func (t Time) Micros() int64 { return int64(t) / int64(Microsecond) }

// Timer identifies a scheduled event so it can be cancelled. The zero Timer
// is invalid.
type Timer struct {
	seq uint64
}

// event is a pending callback in the kernel's queue.
type event struct {
	at    Time
	seq   uint64 // global scheduling order; breaks ties at equal times
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event scheduler with a virtual clock.
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	byseq   map[uint64]*event
	nextSeq uint64
	rng     *RNG
	steps   uint64

	// Always-on self-accounting (see Profile): a compare and an add per
	// event, so profilers can attach mid-run and still see lifetime
	// high-water marks.
	heapHigh    int
	idleVirtual Duration

	// probe, when non-nil, receives wall-clock timings of the kernel's
	// event-heap operations (SetProbe). Off: one nil check per operation.
	probe Probe
}

// NewKernel returns a kernel with the clock at zero and the given RNG seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		byseq: make(map[uint64]*event),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator. All
// stochastic model behaviour (fault injection, Poisson arrivals) must draw
// from this generator to preserve reproducibility.
func (k *Kernel) RNG() *RNG { return k.rng }

// Steps reports how many events have been executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a discrete-event model that silently reorders causality is
// unusable, so this is treated as a programming error.
func (k *Kernel) At(t Time, fn func()) Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	k.nextSeq++
	e := &event{at: t, seq: k.nextSeq, fn: fn}
	if k.probe != nil {
		t0 := ProbeNow()
		heap.Push(&k.queue, e)
		k.probe.StageNs(ProbeHeap, ProbeClassNone, ProbeNow()-t0)
	} else {
		heap.Push(&k.queue, e)
	}
	if len(k.queue) > k.heapHigh {
		k.heapHigh = len(k.queue)
	}
	k.byseq[e.seq] = e
	return Timer{seq: e.seq}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) Timer {
	return k.At(k.now+d, fn)
}

// Cancel removes a previously scheduled event. It reports whether the event
// was still pending (false if already fired or cancelled).
func (k *Kernel) Cancel(t Timer) bool {
	e, ok := k.byseq[t.seq]
	if !ok || e.index < 0 {
		return false
	}
	if k.probe != nil {
		t0 := ProbeNow()
		heap.Remove(&k.queue, e.index)
		k.probe.StageNs(ProbeHeap, ProbeClassNone, ProbeNow()-t0)
	} else {
		heap.Remove(&k.queue, e.index)
	}
	delete(k.byseq, t.seq)
	return true
}

// Pending reports the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// NextAt returns the scheduled time of the earliest pending event. ok is
// false when the queue is empty.
func (k *Kernel) NextAt() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// AdvanceTo moves the clock forward to t without executing any event. It
// panics when an event is still pending at or before t (callers must Step
// those first) — silently jumping over due work would reorder causality.
// Moving backward is a no-op. Paced execution uses it to keep the virtual
// clock tracking the wall clock while the event queue is idle.
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if len(k.queue) > 0 && k.queue[0].at <= t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) over pending event at %v", t, k.queue[0].at))
	}
	k.idleVirtual += t - k.now
	k.now = t
}

// Step executes the earliest pending event, advancing the clock to its
// scheduled time. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	var e *event
	if k.probe != nil {
		t0 := ProbeNow()
		e = heap.Pop(&k.queue).(*event)
		k.probe.StageNs(ProbeHeap, ProbeClassNone, ProbeNow()-t0)
	} else {
		e = heap.Pop(&k.queue).(*event)
	}
	delete(k.byseq, e.seq)
	if e.at > k.now {
		k.idleVirtual += e.at - k.now
	}
	k.now = e.at
	k.steps++
	e.fn()
	return true
}

// Run executes events until the queue is empty or the next event lies
// strictly beyond the horizon. The clock is left at the time of the last
// executed event (or advanced to horizon if no event fired at/after it,
// so callers can rely on Now() == horizon when the queue drains early and
// horizon is finite).
func (k *Kernel) Run(horizon Time) {
	for len(k.queue) > 0 && k.queue[0].at <= horizon {
		k.Step()
	}
	if horizon != MaxTime && k.now < horizon {
		k.idleVirtual += horizon - k.now
		k.now = horizon
	}
}

// RunUntilIdle executes every pending event, including events scheduled by
// other events, until the queue is empty. Workloads that reschedule
// themselves forever will make this spin; use Run with a horizon for those.
func (k *Kernel) RunUntilIdle() {
	for k.Step() {
	}
}
