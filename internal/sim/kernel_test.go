package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { got = append(got, i) })
	}
	k.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestKernelAfterAndNesting(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.After(5, func() {
		fired = append(fired, k.Now())
		k.After(7, func() {
			fired = append(fired, k.Now())
		})
	})
	k.RunUntilIdle()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	tm := k.At(10, func() { ran = true })
	if !k.Cancel(tm) {
		t.Fatal("Cancel reported not pending")
	}
	if k.Cancel(tm) {
		t.Fatal("double Cancel reported pending")
	}
	k.RunUntilIdle()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.At(1, func() {})
	k.RunUntilIdle()
	if k.Cancel(tm) {
		t.Fatal("Cancel after firing reported pending")
	}
}

func TestKernelCancelMiddleOfHeap(t *testing.T) {
	k := NewKernel(1)
	var got []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, k.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every odd event.
	for i := 1; i < 20; i += 2 {
		if !k.Cancel(timers[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	k.RunUntilIdle()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10: %v", len(got), got)
	}
	for idx, v := range got {
		if v != idx*2 {
			t.Fatalf("wrong surviving events: %v", got)
		}
	}
}

func TestKernelRunHorizon(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run(25)
	if len(got) != 2 {
		t.Fatalf("horizon run executed %v", got)
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %v after horizon run, want 25", k.Now())
	}
	k.Run(MaxTime)
	if len(got) != 4 {
		t.Fatalf("final run executed %v", got)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {})
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(50, func() {})
}

func TestKernelSelfRescheduleWithHorizon(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		k.After(10, tick)
	}
	k.After(10, tick)
	k.Run(1000)
	if count != 100 {
		t.Fatalf("periodic tick count = %d, want 100", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) never produced some values: %v", seen)
	}
}

func TestRNGExpDurationMean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	mean := Duration(1 * Millisecond)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.ExpDuration(mean))
	}
	got := sum / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("exponential mean = %.0f, want ≈ %d", got, mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit fraction = %.3f", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestRNGJitterRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		const spread = 500
		for i := 0; i < 50; i++ {
			j := r.Jitter(spread)
			if j < -spread || j > spread {
				return false
			}
		}
		return r.Jitter(0) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestTimeString(t *testing.T) {
	tt := Time(1*Second + 250300*Microsecond)
	if got := tt.String(); got != "1.250300s" {
		t.Fatalf("Time.String() = %q", got)
	}
	if Time(1500).Micros() != 1 {
		t.Fatalf("Micros rounding wrong")
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		k := NewKernel(seed)
		var trace []uint64
		var step func()
		step = func() {
			trace = append(trace, uint64(k.Now())^k.RNG().Uint64())
			if len(trace) < 200 {
				k.After(Duration(1+k.RNG().Intn(100)), step)
			}
		}
		k.After(1, step)
		k.RunUntilIdle()
		return trace
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatal("same-seed runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at %d", i)
		}
	}
}
