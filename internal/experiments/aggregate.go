package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// RunSeeds executes an experiment across several seeds concurrently. Each
// seed builds completely independent simulation instances (kernel, bus,
// clocks), so the runs parallelise perfectly across cores; results come
// back in seed order.
func RunSeeds(e Experiment, seeds []uint64) []Result {
	results := make([]Result, len(seeds))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.Run(seeds[i])
			}
		}()
	}
	for i := range seeds {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Aggregate folds the tables of several same-experiment runs into one
// table whose numeric cells carry mean±sd across the runs. Non-numeric
// cells (labels) are taken from the first run; runs whose shape diverges
// from the first are skipped with a note.
func Aggregate(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	base := results[0]
	out := Result{
		ID:    base.ID,
		Title: base.Title + fmt.Sprintf(" — aggregated over %d seeds", len(results)),
		Notes: base.Notes,
	}
	out.Table.Title = base.Table.Title
	out.Table.Headers = base.Table.Headers

	used := 0
	compatible := make([]Result, 0, len(results))
	for _, r := range results {
		if len(r.Table.Rows) == len(base.Table.Rows) {
			compatible = append(compatible, r)
			used++
		}
	}
	for ri, baseRow := range base.Table.Rows {
		row := make([]string, len(baseRow))
		for ci, cell := range baseRow {
			vals := make([]float64, 0, len(compatible))
			suffix := ""
			ok := true
			for _, r := range compatible {
				if ci >= len(r.Table.Rows[ri]) {
					ok = false
					break
				}
				v, sfx, e := parseNumeric(r.Table.Rows[ri][ci])
				if e != nil {
					ok = false
					break
				}
				vals = append(vals, v)
				suffix = sfx
			}
			if !ok || len(vals) == 0 {
				row[ci] = cell
				continue
			}
			mean, sd := meanSD(vals)
			if sd == 0 {
				row[ci] = fmt.Sprintf("%.2f%s", mean, suffix)
			} else {
				row[ci] = fmt.Sprintf("%.2f±%.2f%s", mean, sd, suffix)
			}
		}
		out.Table.Rows = append(out.Table.Rows, row)
	}
	if used < len(results) {
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%d of %d runs had divergent table shapes and were skipped", len(results)-used, len(results)))
	}
	return out
}

// parseNumeric extracts the numeric value and preserved suffix (%, x)
// from a table cell.
func parseNumeric(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	suffix := ""
	for _, sfx := range []string{"%", "x"} {
		if strings.HasSuffix(s, sfx) {
			suffix = sfx
			s = strings.TrimSuffix(s, sfx)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, suffix, err
}

func meanSD(vals []float64) (mean, sd float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(vals)))
	return mean, sd
}
