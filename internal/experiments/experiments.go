// Package experiments regenerates every quantitative claim of the paper
// as a table (the paper itself reports no measured tables — its Figures 1
// and 2 are API listings and Figure 3 is the slot geometry — so each
// experiment operationalises a stated claim; see DESIGN.md §4 for the
// mapping and EXPERIMENTS.md for recorded outcomes).
package experiments

import (
	"fmt"
	"strings"

	"canec/internal/obs"
	"canec/internal/stats"
)

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Table stats.Table
	// Notes explain how to read the table against the paper's claim.
	Notes []string
	// Prom carries per-run metrics registry snapshots (Prometheus text
	// format) for the experiments that support it, when EnableMetrics was
	// called before the run. Aggregate drops them (snapshots of different
	// seeds are not meaningfully averageable).
	Prom []PromSnapshot
}

// PromSnapshot is one simulation run's metrics registry rendered in the
// Prometheus text exposition format.
type PromSnapshot struct {
	// Label distinguishes runs within one experiment (e.g. "nodes16").
	Label string
	Text  string
}

// observeMetrics is write-once: EnableMetrics must be called before any
// experiment runs. RunSeeds executes runs on parallel goroutines, so the
// flag must not change while runs are in flight.
var observeMetrics bool

// EnableMetrics makes the supporting experiments (E3, E9) build their
// systems with the observability metrics registry and attach registry
// snapshots to their Results. Call once, before running any experiment.
func EnableMetrics() { observeMetrics = true }

// metricsConfig returns the system observability config for experiment
// runs (nil when EnableMetrics was not called).
func metricsConfig() *obs.Config {
	if !observeMetrics {
		return nil
	}
	return &obs.Config{Metrics: true}
}

// promText renders an observer's registry, or "" without one.
func promText(o *obs.Observer) string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	if err := o.Registry().WriteText(&b); err != nil {
		return ""
	}
	return b.String()
}

// String renders the result for terminal output.
func (r Result) String() string {
	s := fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		s += "  " + n + "\n"
	}
	return s
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Name  string
	Short string
	Run   func(seed uint64) Result
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "slot-geometry", "Fig. 3 slot geometry and delivery de-jittering", E1SlotGeometry},
		{"E2", "fault-tolerance", "HRT latency bound under omission faults (§3.2)", E2FaultTolerance},
		{"E3", "reclamation", "bandwidth reclamation vs TTCAN-style TDMA (§3.2, §5)", E3Reclamation},
		{"E4", "edf-vs-dm", "EDF via priority slots vs fixed priority vs oracle (§3.3-3.4)", E4EDFvsDM},
		{"E5", "prio-slot-tradeoff", "priority-slot length Δt_p trade-off (§3.4)", E5PrioritySlotTradeoff},
		{"E6", "fragmentation", "NRT bulk transfer non-interference (§2.2.3)", E6Fragmentation},
		{"E7", "promotion-overhead", "dynamic priority promotion overhead (§3.4)", E7PromotionOverhead},
		{"E8", "clock-sync", "sync precision vs ΔG_min gap (§3.2)", E8ClockSync},
		{"E9", "integration", "full mixed-class integration (§2.2, §5)", E9Integration},
		{"E10", "wcrt-analysis", "Tindell WCRT analysis vs simulation (§4)", E10WCRTAnalysis},
		{"E11", "crash-recovery", "crash recovery latency and outage reclamation (§3.2, §5)", E11Recovery},
		{"E12", "master-failover", "time-master failover: takeover latency and holdover jitter (§3.2)", E12MasterFailover},
		{"E16", "busoff-attack", "bus-off adversary sweep: attack rate vs confinement and isolation (Bosch §8)", E16BusOffAttack},
		{"E17", "prob-validation", "probabilistic WCRT predictions vs seeded chaos campaigns (§4 extension)", E17ProbValidation},
		{"E18", "control-qoc", "closed-loop quality of control vs load, class and faults (§2.2 application view)", E18ControlQoC},
		{"E19", "why-late", "causal lateness attribution: injected faults vs root-cause verdicts (observability extension)", E19WhyLate},
		{"A1", "promotion-ablation", "ablation: dynamic priority promotion on/off (§3.4)", A1PromotionAblation},
		{"A2", "dejitter-ablation", "ablation: delivery-at-deadline on/off (§3.2)", A2DejitterAblation},
		{"A3", "value-shedding", "extension: value-based load shedding (ref [11])", A3ValueShedding},
	}
}

// Find returns the experiment with the given ID or name.
func Find(key string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == key || e.Name == key {
			return e, true
		}
	}
	return Experiment{}, false
}
