package experiments

import (
	"fmt"

	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E2FaultTolerance checks the HRT latency bound against its fault
// assumption: a channel dimensioned for omission degree k masks exactly
// up to k consistent faults per transmission — every event still delivered
// precisely at the deadline — while j > k adversarial faults push the
// delivery past the deadline and are detected (late deliveries, missed
// slots) rather than silent.
func E2FaultTolerance(seed uint64) Result {
	tbl := stats.Table{
		Title:   "HRT guarantee vs fault assumption (adversarial j faults/frame, slot dimensioned for k)",
		Headers: []string{"k", "j", "delivered", "atDeadline", "maxLateness µs", "slotMissed", "slotSpan µs"},
	}
	for k := 0; k <= 3; k++ {
		for j := 0; j <= 4; j++ {
			row := e2Run(seed, k, j)
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return Result{
		ID:    "E2",
		Title: "HRT latency bound under omission faults (§3.2)",
		Table: tbl,
		Notes: []string{
			"guarantee: j ≤ k ⇒ every event delivered exactly at the deadline (maxLateness = 0);",
			"j = k+1 can still squeak through: the WCTT uses worst-case bit stuffing, and real frames",
			"are a few bit-times shorter, leaving slack for roughly one extra retry; j ≥ k+2 is late",
			"and detected (lateness > 0, subscriber SlotMissed exceptions); slotSpan grows with k",
		},
	}
}

func e2Run(seed uint64, k, j int) []string {
	const rounds = 100
	cfg := calendar.DefaultConfig()
	cfg.OmissionDegree = k
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(e1Subject), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 2, Seed: seed, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	sys.Bus.Injector = can.AdversarialK{K: j, Prio: 0}

	pub, _ := sys.Node(0).MW.HRTEC(e1Subject)
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	slotDeadline := cal.Slots[0].Deadline(cfg)
	delivered, atDeadline, missed := 0, 0, 0
	var maxLate sim.Duration
	sub, _ := sys.Node(1).MW.HRTEC(e1Subject)
	err = sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(ev core.Event, di core.DeliveryInfo) {
			delivered++
			// Perfect clocks in this rig: the expected delivery instant of
			// round r is exact, so lateness is measured analytically.
			r := sim.Time(ev.Payload[0])
			expect := sys.Cfg.Epoch + r*cal.Round + slotDeadline
			if di.DeliveredAt == expect {
				atDeadline++
			} else if d := di.DeliveredAt - expect; d > maxLate {
				maxLate = d
			}
		},
		func(e core.Exception) {
			if e.Kind == core.ExcSlotMissed {
				missed++
			}
		})
	if err != nil {
		panic(err)
	}
	for r := int64(0); r < rounds; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			// 7-byte zero payload: maximises stuff bits, approaching the
			// worst-case frame the slot was dimensioned for.
			pub.Publish(core.Event{Subject: e1Subject, Payload: []byte{byte(r), 0, 0, 0, 0, 0, 0}})
		})
	}
	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)

	return []string{
		fmt.Sprint(k), fmt.Sprint(j),
		fmt.Sprint(delivered), fmt.Sprint(atDeadline),
		stats.Micros(float64(maxLate)), fmt.Sprint(missed),
		stats.Micros(float64(cfg.SlotSpan(8))),
	}
}
