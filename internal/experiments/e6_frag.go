package experiments

import (
	"fmt"

	"canec/internal/calendar"
	"canec/internal/core"
	"canec/internal/frag"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E6Fragmentation transfers bulk images of increasing size through a
// fragmenting NRT channel while a hard real-time control loop and soft
// real-time diagnostics run. The paper's claim (§2.2.3, §3.3): NRT bulk
// traffic uses only the bandwidth the real-time classes leave over —
// it must not add HRT jitter nor SRT misses.
func E6Fragmentation(seed uint64) Result {
	tbl := stats.Table{
		Title:   "NRT bulk transfer during HRT control loop (10 ms round) + SRT diagnostics",
		Headers: []string{"image KiB", "frames", "transfer ms", "goodput KiB/s", "hrtAppJitter µs", "hrtLate", "srtMiss%"},
	}
	for _, kib := range []int{0, 1, 4, 16, 64} {
		tbl.Rows = append(tbl.Rows, e6Run(seed, kib))
	}
	return Result{
		ID:    "E6",
		Title: "NRT fragmentation & non-interference (§2.2.3)",
		Table: tbl,
		Notes: []string{
			"row 0 KiB is the control: real-time behaviour without any bulk transfer",
			"expectation: hrtAppJitter ≈ 0 and srtMiss% unchanged for every image size;",
			"goodput reflects the leftover bandwidth (payload bytes per second of transfer)",
		},
	}
}

func e6Run(seed uint64, kib int) []string {
	const rounds = 400
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(e1Subject), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Seed: seed, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	end := sys.Cfg.Epoch + rounds*cal.Round - 1

	// HRT control loop.
	pub, _ := sys.Node(0).MW.HRTEC(e1Subject)
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	var hrtTimes []sim.Time
	hrtLate := 0
	sub, _ := sys.Node(1).MW.HRTEC(e1Subject)
	sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(_ core.Event, di core.DeliveryInfo) {
			hrtTimes = append(hrtTimes, di.DeliveredAt)
			if di.Late {
				hrtLate++
			}
		}, nil)
	for r := int64(0); r < rounds; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(core.Event{Subject: e1Subject, Payload: []byte{1}})
		})
	}

	// SRT diagnostics: Poisson, 5 ms deadlines.
	diag, _ := sys.Node(2).MW.SRTEC(0x91)
	srtSent, srtMissed := 0, 0
	diag.Announce(core.ChannelAttrs{}, func(e core.Exception) {
		if e.Kind == core.ExcDeadlineMissed {
			srtMissed++
		}
	})
	dsub, _ := sys.Node(3).MW.SRTEC(0x91)
	dsub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{}, func(core.Event, core.DeliveryInfo) {}, nil)
	var dloop func()
	dloop = func() {
		if sys.K.Now() >= end {
			return
		}
		now := sys.Node(2).MW.LocalTime()
		diag.Publish(core.Event{Subject: 0x91, Payload: make([]byte, 8),
			Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
		srtSent++
		sys.K.After(sys.K.RNG().ExpDuration(2*sim.Millisecond), dloop)
	}
	sys.K.At(sys.Cfg.Epoch, dloop)

	// Bulk transfer.
	var transferDur sim.Duration
	frames := 0
	if kib > 0 {
		bulk, _ := sys.Node(2).MW.NRTEC(0x92)
		if err := bulk.Announce(core.ChannelAttrs{Prio: 253, Fragmentation: true}, nil); err != nil {
			panic(err)
		}
		bsub, _ := sys.Node(3).MW.NRTEC(0x92)
		start := sys.Cfg.Epoch
		bsub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				transferDur = di.DeliveredAt - start
			}, nil)
		img := make([]byte, kib<<10)
		frames = frag.FrameCount(len(img))
		sys.K.At(start, func() {
			bulk.Publish(core.Event{Subject: 0x92, Payload: img})
		})
	}

	sys.Run(end)

	jitter := stats.PeriodJitter(hrtTimes, cal.Round)
	goodput := 0.0
	transferMS := 0.0
	if transferDur > 0 {
		goodput = float64(kib) / (float64(transferDur) / float64(sim.Second))
		transferMS = float64(transferDur) / float64(sim.Millisecond)
	}
	missPct := 0.0
	if srtSent > 0 {
		missPct = float64(srtMissed) / float64(srtSent)
	}
	return []string{
		fmt.Sprint(kib),
		fmt.Sprint(frames),
		fmt.Sprintf("%.1f", transferMS),
		fmt.Sprintf("%.1f", goodput),
		stats.Micros(float64(jitter)),
		fmt.Sprint(hrtLate),
		stats.Pct(missPct),
	}
}
