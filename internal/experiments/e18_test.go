package experiments

import (
	"reflect"
	"testing"

	"canec/internal/core"
)

// TestE18ShapeClassHierarchy pins the experiment's reproduction contract:
// quality-of-control cost is monotone in bus load for every class, and
// the classes degrade in the paper's order — NRT first (visible by 0.85),
// SRT only past saturation (and it still settles), HRT never (calendar
// slots are load-immune).
func TestE18ShapeClassHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	loads := []float64{0, 0.85, 1.2}
	cost := map[core.Class][]float64{}
	for _, class := range []core.Class{core.HRT, core.SRT, core.NRT} {
		for i, load := range loads {
			q := e18Run(1, class, load, false)
			cost[class] = append(cost[class], q.CostPerSec)
			// Monotone: more load never improves control.
			if i > 0 && q.CostPerSec < cost[class][i-1]*0.999 {
				t.Fatalf("%s: cost fell from %v to %v as load rose to %v",
					class, cost[class][i-1], q.CostPerSec, load)
			}
			if class == core.SRT && !q.Settled {
				t.Fatalf("SRT loop failed to settle at load %v: %+v", load, q)
			}
		}
	}
	// HRT is load-immune: overload costs what an idle bus costs.
	if hrt := cost[core.HRT]; hrt[2] > hrt[0]*1.02 {
		t.Fatalf("HRT cost moved with load: %v", hrt)
	}
	// SRT holds through 0.85 but pays past saturation.
	if srt := cost[core.SRT]; srt[1] > srt[0]*1.1 || srt[2] < srt[0]*1.5 {
		t.Fatalf("SRT should hold at 0.85 and degrade at 1.2: %v", srt)
	}
	// NRT degrades before SRT at every stressed point and is the worst
	// class once the bus saturates.
	if cost[core.NRT][1] <= cost[core.SRT][1] {
		t.Fatalf("NRT should degrade before SRT at 0.85: NRT %v, SRT %v",
			cost[core.NRT][1], cost[core.SRT][1])
	}
	if cost[core.NRT][2] <= cost[core.SRT][2] {
		t.Fatalf("NRT should be worst past saturation: NRT %v, SRT %v",
			cost[core.NRT][2], cost[core.SRT][2])
	}
}

// TestE18BusOffAttackTaxesEveryClass: the bus-off adversary removes the
// controller station, and no channel class can schedule its way around a
// dead peer — cost rises and stale ticks appear for HRT too.
func TestE18BusOffAttackTaxesEveryClass(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	for _, class := range []core.Class{core.HRT, core.SRT} {
		clean := e18Run(1, class, 0.45, false)
		hit := e18Run(1, class, 0.45, true)
		if hit.CostPerSec < clean.CostPerSec*1.2 {
			t.Fatalf("%s: attack cost %v vs clean %v — outage left no mark",
				class, hit.CostPerSec, clean.CostPerSec)
		}
		if hit.Stale == 0 {
			t.Fatalf("%s: no stale ticks during the controller outage", class)
		}
		if hit.Applied >= clean.Applied {
			t.Fatalf("%s: attack should cost commands (%d vs %d)",
				class, hit.Applied, clean.Applied)
		}
	}
}

// TestE18RelayHopSettles: a controller across a store-and-forward
// gateway still settles the loop on SRT channels, and the extra hop is
// visible in the latency oracle.
func TestE18RelayHopSettles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	direct := e18Run(1, core.SRT, 0.45, false)
	relayed := e18Relay(1, 0.45)
	if !relayed.Settled {
		t.Fatalf("relayed loop did not settle: %+v", relayed)
	}
	if relayed.Applied < 100 {
		t.Fatalf("relayed loop applied only %d commands", relayed.Applied)
	}
	if relayed.Latency.Quantile(0.5) <= direct.Latency.Quantile(0.5) {
		t.Fatalf("gateway hop invisible in latency: relay p50 %v vs direct %v",
			relayed.Latency.Quantile(0.5), direct.Latency.Quantile(0.5))
	}
}

// TestE18Deterministic: one seed, one table — the whole row set must be
// byte-identical across runs for EXPERIMENTS.md to quote it.
func TestE18Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	a := E18ControlQoC(3)
	b := E18ControlQoC(3)
	if !reflect.DeepEqual(a.Table.Rows, b.Table.Rows) {
		t.Fatal("same-seed E18 tables differ")
	}
	if len(a.Table.Rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(a.Table.Rows))
	}
}
