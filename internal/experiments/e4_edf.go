package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// E4EDFvsDM sweeps the offered soft real-time load and compares the
// deadline-miss ratio of the paper's EDF-via-priority-slots scheme
// against deadline-monotonic fixed priorities (the discipline of the
// standard CAN protocols the paper criticises in §4) and against a
// clairvoyant centralized non-preemptive EDF oracle. The paper's
// motivation for dynamic scheduling — "a substantial share of aperiodic
// and sporadic traffic ... can not adequately be mapped to static
// priorities" (§3.4) — shows up as the growing gap between DM and EDF as
// load rises, while the oracle bounds what is achievable at all.
// worstStreamMiss returns the highest per-stream miss+drop ratio (streams
// with at least 20 jobs, to keep the statistic stable).
func worstStreamMiss(o baseline.Outcome, nStreams int) float64 {
	bad := make([]int, nStreams)
	tot := make([]int, nStreams)
	for _, j := range o.Jobs {
		tot[j.Job.Stream]++
		if j.Missed || j.Dropped {
			bad[j.Job.Stream]++
		}
	}
	worst := 0.0
	for i := range tot {
		if tot[i] >= 20 {
			if r := float64(bad[i]) / float64(tot[i]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

func E4EDFvsDM(seed uint64) Result {
	tbl := stats.Table{
		Title: "deadline-miss ratio vs offered load (mixed periodic/sporadic set, deadline = period)",
		Headers: []string{"load", "streams", "jobs", "EDF miss%", "DM miss%", "oracle miss%",
			"EDF worstStream%", "DM worstStream%", "promos/job"},
	}
	ft := actualFrameTime
	for _, load := range []float64{0.3, 0.5, 0.7, 0.85, 0.9, 0.95, 1.0, 1.2} {
		rng := sim.NewRNG(seed + uint64(load*100))
		streams := workload.MixedSet(12, load, ft, rng)
		horizon := sim.Time(2 * sim.Second)
		jobs := workload.GenJobs(rng, streams, horizon)
		runFor := horizon + 200*sim.Millisecond
		edf := baseline.RunEDF(streams, jobs, core.DefaultBands(), seed, runFor)
		dm := baseline.RunDM(streams, jobs, 2, 250, seed, runFor)
		oracle := baseline.RunOracle(streams, jobs, seed, runFor)
		promosPerJob := float64(edf.Promotions) / float64(len(jobs))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", load),
			fmt.Sprint(len(streams)),
			fmt.Sprint(len(jobs)),
			stats.Pct(edf.MissRatio()),
			stats.Pct(dm.MissRatio()),
			stats.Pct(oracle.MissRatio()),
			stats.Pct(worstStreamMiss(edf, len(streams))),
			stats.Pct(worstStreamMiss(dm, len(streams))),
			fmt.Sprintf("%.1f", promosPerJob),
		})
	}
	return Result{
		ID:    "E4",
		Title: "EDF via priority slots vs fixed priority vs clairvoyant oracle (§3.3-3.4)",
		Table: tbl,
		Notes: []string{
			"totals alone mislead: past saturation DM shows low *total* misses because it starves its",
			"lowest-priority streams outright (DM worstStream ⇒ 100%) while serving the high-rate top",
			"classes perfectly; EDF — like the clairvoyant oracle it tracks — degrades *uniformly*, so",
			"no stream is cut off (EDF worstStream ≈ its mean). This is the paper's positioning: EDF",
			"gives every deadline class proportionate service, and expirations (§2.2.2) shed the stale",
			"tail under transient overload instead of sacrificing whole subjects",
		},
	}
}
