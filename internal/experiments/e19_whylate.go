package experiments

import (
	"fmt"

	"canec/internal/chaos"
	"canec/internal/obs/causal"
	"canec/internal/scenario"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E19WhyLate validates the causal lateness engine end to end: four
// seeded chaos campaigns each inject one fault with a known root cause
// (targeted bit errors, a babbling idiot, a bus-off adversary, a time
// master crash), and the engine's per-chain attribution must name the
// matching cause family for the chains the fault touched — with zero
// misattribution of the control group (chains outside the fault window,
// or on channels the fault cannot reach) and the residual-zero invariant
// holding for every chain. Everything is deterministic per seed.
func E19WhyLate(seed uint64) Result {
	tbl := stats.Table{
		Title: "injected fault vs attributed root cause (causal lateness engine)",
		Headers: []string{"campaign", "expected cause", "chains", "faulted",
			"attributed", "family debit", "top cause", "control", "misattributed", "residual!=0"},
	}
	for _, c := range e19Campaigns() {
		out := e19Exec(seed, c)
		tbl.Rows = append(tbl.Rows, []string{
			c.name,
			e19Family(c.family),
			fmt.Sprintf("%d", out.chains),
			fmt.Sprintf("%d", out.faulted),
			fmt.Sprintf("%d", out.familyIncidents),
			causal.FormatDur(out.familyDebit),
			string(out.topCause),
			fmt.Sprintf("%d", out.control),
			fmt.Sprintf("%d", out.misattributed),
			fmt.Sprintf("%d", out.residualBad),
		})
	}
	return Result{
		ID:    "E19",
		Title: "why-late attribution: injected causes vs causal engine verdicts",
		Table: tbl,
		Notes: []string{
			"each campaign injects one scripted fault into a window of a mixed run and replays the trace through the causal engine",
			"faulted = chains overlapping the fault window (on the victim channel, for node-targeted faults); attributed = faulted incident chains whose top cause lands in the expected family",
			"control = every other chain: it must never carry a top cause from the injected family (misattributed = 0)",
			"family debit = virtual time the engine charged to the expected family inside the fault window; residual!=0 counts chains whose segment debits fail to tile publish→end exactly (must be 0 — the engine is exact, not heuristic)",
			"link faults are exercised at unit level (relay_queue/relay_link segments); the master-crash campaign covers the clock plane via holdover widening of HRT delivery holds",
		},
	}
}

// e19Campaign scripts one injected fault with its expected attribution.
type e19Campaign struct {
	name   string
	family []causal.Cause
	// windowMS is the scripted fault window; graceMS extends it for the
	// fault's tail effects (queued frames draining, bus-off recovery).
	windowMS [2]float64
	graceMS  float64
	// victimSubject restricts the faulted group to one channel for
	// node-targeted faults (0: every chain in the window is a victim).
	victimSubject uint64
	lateOver      map[string]sim.Duration
	build         func(seed uint64) *scenario.Scenario
}

// e19Outcome reduces one campaign's chains against the expectation.
type e19Outcome struct {
	chains, faulted  int
	familyIncidents  int
	familyDebit      sim.Duration
	topCause         causal.Cause
	control          int
	controlIncidents int
	misattributed    int
	residualBad      int
}

func e19Family(family []causal.Cause) string {
	s := ""
	for i, c := range family {
		if i > 0 {
			s += "|"
		}
		s += string(c)
	}
	return s
}

// e19SRTPair is the shared topology for the bus-fault campaigns: two
// independent sporadic-server SRT streams on disjoint stations, one the
// designated victim (0x300, node 0 -> 1), one untouched (0x301, 2 -> 3).
func e19SRTPair(seed uint64, name string) *scenario.Scenario {
	return &scenario.Scenario{
		Name: name, Nodes: 8, Seed: seed, DurationMs: 600,
		SRT: []scenario.SRTStream{
			{Subject: 0x300, Publisher: 0, Subscriber: 1, MeanPeriodUs: 2000,
				DeadlineUs: 20000, ExpirationUs: 40000, Payload: 8},
			{Subject: 0x301, Publisher: 2, Subscriber: 3, MeanPeriodUs: 3000,
				DeadlineUs: 20000, ExpirationUs: 40000, Payload: 8},
		},
	}
}

func e19Campaigns() []e19Campaign {
	// App traffic starts at the scenario epoch (~300 ms: calendar setup
	// plus clock settling), so every fault window opens after it. The
	// SRT lateness bound sits above the worst natural interference a
	// clean chain can see (sync frame + one peer frame + own wire time,
	// ~510 µs) — a control chain must never cross it.
	srtLate := map[string]sim.Duration{"SRT": 700 * sim.Microsecond}
	return []e19Campaign{
		{
			name:          "bit_error",
			family:        []causal.Cause{causal.CauseErrorRetransmit},
			windowMS:      [2]float64{350, 500},
			graceMS:       10,
			victimSubject: 0x300,
			lateOver:      srtLate,
			build: func(seed uint64) *scenario.Scenario {
				sc := e19SRTPair(seed, "e19-bit-error")
				sc.Chaos = &chaos.Script{Events: []chaos.Event{
					{Kind: "bit_error", Node: 0, Rate: 0.7, AtMS: 350, UntilMS: 500},
				}}
				return sc
			},
		},
		{
			name:     "babble",
			family:   []causal.Cause{causal.CauseArbInterference},
			windowMS: [2]float64{350, 450},
			graceMS:  20,
			lateOver: srtLate,
			build: func(seed uint64) *scenario.Scenario {
				sc := e19SRTPair(seed, "e19-babble")
				sc.Chaos = &chaos.Script{Events: []chaos.Event{
					{Kind: "babble", Node: 4, AtMS: 350, UntilMS: 450},
				}}
				return sc
			},
		},
		{
			name:          "busoff_attack",
			family:        []causal.Cause{causal.CauseBusoffRecovery, causal.CauseErrorRetransmit},
			windowMS:      [2]float64{350, 420},
			graceMS:       180,
			victimSubject: 0x300,
			lateOver:      srtLate,
			build: func(seed uint64) *scenario.Scenario {
				sc := e19SRTPair(seed, "e19-busoff")
				sc.ConfineFaults = true
				sc.Chaos = &chaos.Script{Events: []chaos.Event{
					{Kind: "busoff_attack", Node: 4, Victim: 0, Rate: 1.0, AtMS: 350, UntilMS: 420},
				}}
				return sc
			},
		},
		{
			// Crash at 200 ms: holdover is entered when the masterless sync
			// rounds run out (~400 ms) and exits on backup takeover at
			// ~500 ms, so the widened HRT holds land mid-traffic with clean
			// chains on both sides as the temporal control group.
			name:     "master_crash",
			family:   []causal.Cause{causal.CauseHoldoverWidening},
			windowMS: [2]float64{400, 505},
			graceMS:  0,
			lateOver: map[string]sim.Duration{"HRT": 700 * sim.Microsecond},
			build: func(seed uint64) *scenario.Scenario {
				return &scenario.Scenario{
					Name: "e19-master-crash", Nodes: 8, Seed: seed, DurationMs: 600,
					MaxDriftPPM: 200,
					SyncMaster:  4, SyncBackups: []int{5},
					HRT: []scenario.HRTStream{
						{Subject: 0x101, Publisher: 0, Subscriber: 1, PeriodUs: 10000, Payload: 7},
						{Subject: 0x102, Publisher: 2, Subscriber: 3, PeriodUs: 10000, Payload: 7},
					},
					Chaos: &chaos.Script{Events: []chaos.Event{
						{Kind: "master_crash", AtMS: 200},
					}},
				}
			},
		},
	}
}

// e19Exec runs one campaign and reduces its chains. Kernel determinism
// makes the whole outcome a pure function of the seed.
func e19Exec(seed uint64, c e19Campaign) e19Outcome {
	sc := c.build(seed)
	rep, err := sc.Run()
	if err != nil {
		panic(fmt.Sprintf("e19 %s: %v", c.name, err))
	}
	a := causal.Analyze(rep.Obs.Records(), causal.Config{LateOver: c.lateOver})

	fam := map[causal.Cause]bool{}
	for _, cause := range c.family {
		fam[cause] = true
	}
	wStart := sim.Time(c.windowMS[0] * float64(sim.Millisecond))
	wEnd := sim.Time((c.windowMS[1] + c.graceMS) * float64(sim.Millisecond))
	var out e19Outcome
	tops := map[causal.Cause]int{}
	for _, ch := range a.Chains() {
		out.chains++
		if ch.Residual() != 0 {
			out.residualBad++
		}
		overlap := ch.Published < wEnd && ch.End > wStart
		victim := overlap && (c.victimSubject == 0 || ch.Subject == c.victimSubject)
		if victim {
			out.faulted++
			if fam[ch.Top] {
				out.familyIncidents++
				tops[ch.Top]++
			}
			for _, cause := range c.family {
				out.familyDebit += ch.Debit(cause)
			}
			continue
		}
		out.control++
		if ch.Top != causal.CauseNone {
			out.controlIncidents++
		}
		if fam[ch.Top] {
			out.misattributed++
		}
	}
	var bestN int
	for cause, n := range tops {
		if n > bestN || (n == bestN && cause < out.topCause) {
			out.topCause, bestN = cause, n
		}
	}
	if bestN == 0 {
		out.topCause = causal.CauseNone
	}
	return out
}
