package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E11Recovery measures what a whole-node outage costs and what it gives
// back. A scripted crash takes one HRT publisher down; its restart drives
// the full recovery path (re-attach, re-join over the binding protocol,
// re-bind, clock re-sync, calendar re-entry). The experiment reports the
// recovery latency of that path and — the flip side the paper's
// arbitration-based design buys (§3.2, §5) — how many bytes of the dead
// node's reserved HRT bandwidth background NRT traffic reclaims during
// the outage. A TTCAN-style network with the same reservations leaves the
// dead node's exclusive windows idle, so it reclaims nothing.
func E11Recovery(seed uint64) Result {
	tbl := stats.Table{
		Title: "node crash/restart: recovery latency and outage bandwidth reclamation (k=2 copies)",
		Headers: []string{"outage ms", "rejoin ms", "service gap ms", "slots missed",
			"canec reclaimed B", "ttcan reclaimed B", "violations"},
	}
	base := e11Canec(seed, -1, -1)
	ttBase := e11TTCAN(seed, -1, -1)
	for _, outMS := range []float64{50, 100, 200} {
		down := e11CrashAt
		restart := down + sim.Duration(outMS*float64(sim.Millisecond))
		crash := e11Canec(seed, down, restart)
		tt := e11TTCAN(seed, down, restart)
		// Reclamation: extra best-effort bytes on the wire inside the
		// service gap, against the same window of the identical run without
		// a crash.
		reclaimed := e11BytesIn(crash.deliv, crash.downAt, crash.upAt) -
			e11BytesIn(base.deliv, crash.downAt, crash.upAt)
		ttReclaimed := e11BytesIn(tt.deliv, down, restart) -
			e11BytesIn(ttBase.deliv, down, restart)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", outMS),
			fmt.Sprintf("%.1f", float64(crash.upAt-crash.restartAt)/float64(sim.Millisecond)),
			fmt.Sprintf("%.1f", float64(crash.upAt-crash.downAt)/float64(sim.Millisecond)),
			fmt.Sprintf("%d", crash.missed),
			fmt.Sprintf("%d", reclaimed),
			fmt.Sprintf("%d", ttReclaimed),
			fmt.Sprintf("%d", crash.violations),
		})
	}
	return Result{
		ID:    "E11",
		Title: "crash recovery latency and outage reclamation (§3.2, §5)",
		Table: tbl,
		Notes: []string{
			"rejoin = node_restart to node_up: re-attach, join, re-bind, clock re-sync",
			"service gap = node_down to node_up; slots missed = subscriber-side SlotMissed exceptions",
			"canec reclaims the dead publisher's slots through arbitration (extra bulk frame-data bytes); TTCAN leaves them idle",
			"violations = chaos trace invariant failures over the crash run (must be 0)",
		},
	}
}

const (
	e11Horizon = 1500 * sim.Millisecond
	e11CrashAt = 600 * sim.Millisecond
	// e11Chunk keeps best-effort deliveries fine-grained so a short outage
	// window still resolves reclaimed bytes.
	e11Chunk = 128
)

type e11Delivery struct {
	at sim.Time
	n  int
}

type e11Run struct {
	downAt, restartAt, upAt sim.Time
	missed                  int
	violations              int
	deliv                   []e11Delivery
	recs                    []obs.Record
}

// e11BytesIn sums best-effort wire bytes in [from, to).
func e11BytesIn(deliv []e11Delivery, from, to sim.Time) int {
	total := 0
	for _, d := range deliv {
		if d.at >= from && d.at < to {
			total += d.n
		}
	}
	return total
}

// e11Calendar reserves five periodic HRT channels with k=2 redundant
// copies, all on one rate (the TTCAN baseline models each slot as an
// exclusive window every cycle): two on node 1 — the crash victim, so its
// outage frees a sizable reservation — and one each on nodes 2-4.
func e11Calendar() (*calendar.Calendar, error) {
	cfg := calendar.DefaultConfig()
	cfg.OmissionDegree = 2
	reqs := []calendar.Request{
		{Subject: 0x720, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x724, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x721, Publisher: 2, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x722, Publisher: 3, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x723, Publisher: 4, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
	}
	return calendar.Plan(cfg, reqs)
}

// e11Canec runs the paper's system with saturating background NRT bulk
// and, when down >= 0, a scripted crash/restart of node 1.
func e11Canec(seed uint64, down, restart sim.Duration) e11Run {
	cal, err := e11Calendar()
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 8, Seed: seed, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		panic(err)
	}
	var lc *core.Lifecycle
	var camp *chaos.Campaign
	if down >= 0 {
		lc = core.NewLifecycle(sys)
		camp, err = chaos.NewCampaign(sys, lc, chaos.Script{Events: []chaos.Event{
			{Kind: "crash", AtMS: float64(down) / float64(sim.Millisecond), Node: 1},
			{Kind: "restart", AtMS: float64(restart) / float64(sim.Millisecond), Node: 1},
		}})
		if err != nil {
			panic(err)
		}
	}
	isDown := func(n int) bool { return lc != nil && lc.Down(n) }
	end := sys.Cfg.Epoch + e11Horizon

	// HRT publishers, one per slot, re-anchored after a restart (see
	// internal/scenario for the pattern: the publish task schedules through
	// the node's local clock, so it dies with a crash and OnRestart starts a
	// fresh generation from the re-synced clock).
	pubs := make(map[binding.Subject]*core.HRTEC)
	restartFns := make(map[int][]func(mw *core.Middleware))
	for _, s := range cal.Slots {
		s := s
		subj := binding.Subject(s.Subject)
		node := int(s.Publisher)
		announce := func(mw *core.Middleware) error {
			ch, err := mw.HRTEC(subj)
			if err != nil {
				return err
			}
			if err := ch.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
				return err
			}
			pubs[subj] = ch
			return nil
		}
		if err := announce(sys.Node(node).MW); err != nil {
			panic(err)
		}
		gen := 0
		var loop func(r int64, g int)
		loop = func(r int64, g int) {
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + s.Ready - 300*sim.Microsecond
			at := sys.Clocks[node].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				if isDown(node) || gen != g {
					return
				}
				pubs[subj].Publish(core.Event{Subject: subj, Payload: []byte{byte(r)}})
				loop(s.NextActive(r+1), g)
			})
		}
		loop(s.NextActive(0), 0)
		restartFns[node] = append(restartFns[node], func(mw *core.Middleware) {
			if announce(mw) != nil {
				return
			}
			gen++
			rel := sys.Clocks[node].Read(sys.K.Now()) - sys.Cfg.Epoch
			next := int64(1)
			if rel > 0 {
				next = int64(rel/cal.Round) + 1
			}
			loop(s.NextActive(next), gen)
		})
		sub, err := sys.Node(5).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(core.Event, core.DeliveryInfo) {}, nil); err != nil {
			panic(err)
		}
	}
	if lc != nil {
		lc.OnRestart = func(n int, mw *core.Middleware) {
			for _, f := range restartFns[n] {
				f(mw)
			}
		}
		camp.Install()
	}

	// Saturating background bulk, node 6 -> node 7, in small chains so the
	// outage window resolves reclaimed bytes.
	bulk, err := sys.Node(6).MW.NRTEC(0x7ff)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(core.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	run := e11Run{downAt: -1, restartAt: -1, upAt: -1}
	sub, _ := sys.Node(7).MW.NRTEC(0x7ff)
	sub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= end {
			return
		}
		for bulk.QueuedChains() < 4 {
			bulk.Publish(core.Event{Subject: 0x7ff, Payload: make([]byte, e11Chunk)})
		}
		sys.K.After(sim.Millisecond, feed)
	}
	sys.K.At(0, feed)

	sys.Run(end)
	run.recs = sys.Obs.Records()
	for _, r := range run.recs {
		switch r.Stage {
		case obs.StageNodeDown:
			run.downAt = r.At
		case obs.StageNodeRestart:
			run.restartAt = r.At
		case obs.StageNodeUp:
			run.upAt = r.At
		case obs.StageMissed:
			run.missed++
		case obs.StageTxOK:
			// Account the bulk transfer at frame granularity (8 data bytes
			// per fragment): chain-completion timestamps are too coarse to
			// resolve a short outage window.
			if r.Node == 6 {
				run.deliv = append(run.deliv, e11Delivery{at: r.At, n: 8})
			}
		}
	}
	if camp != nil {
		run.violations = len(camp.Finish(0).Violations)
	}
	return run
}

// e11TTCAN runs the TTCAN-style baseline with the same reservations: the
// crash stops node 1's exclusive frames, but the windows stay reserved —
// the arbitration window, where the bulk traffic lives, does not grow.
func e11TTCAN(seed uint64, down, restart sim.Duration) e11Run {
	cal, err := e11Calendar()
	if err != nil {
		panic(err)
	}
	cfg := cal.Cfg
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	for i := 0; i < 8; i++ {
		bus.Attach(can.TxNode(i))
	}
	net := baseline.NewTTCAN(k, bus, cal.Round)
	for _, s := range cal.Slots {
		net.AddExclusive(s.Ready, s.End(cfg)-s.Ready, int(s.Publisher))
	}
	last := cal.Slots[len(cal.Slots)-1]
	arbStart := last.End(cfg) + cfg.GapMin
	if arbStart < cal.Round {
		net.AddArbitration(arbStart, cal.Round-arbStart)
	}
	if err := net.Start(); err != nil {
		panic(err)
	}
	for wi, s := range cal.Slots {
		wi, s := wi, s
		var loop func(r int64)
		loop = func(r int64) {
			at := sim.Time(r)*cal.Round + s.Ready - 100*sim.Microsecond
			if at < 0 {
				at = 0
			}
			if at >= e11Horizon {
				return
			}
			k.At(at, func() {
				crashed := down >= 0 && k.Now() >= down && k.Now() < restart
				if !(crashed && s.Publisher == 1) {
					net.SetExclusive(wi, can.Frame{
						ID:   can.MakeID(0, s.Publisher, can.Etag(s.Subject&0x3fff)),
						Data: make([]byte, 8),
					})
				}
				loop(s.NextActive(r + 1))
			})
		}
		loop(s.NextActive(0))
	}
	var run e11Run
	var feed func()
	feed = func() {
		if k.Now() >= e11Horizon {
			return
		}
		for i := 0; i < 20; i++ {
			net.SubmitAsync(6, can.Frame{
				ID:   can.MakeID(254, 6, 0x7ff),
				Data: make([]byte, 8),
			}, func(ok bool, at sim.Time) {
				if ok {
					run.deliv = append(run.deliv, e11Delivery{at: at, n: 8})
				}
			})
		}
		k.After(sim.Millisecond, feed)
	}
	k.At(0, feed)
	k.Run(e11Horizon)
	return run
}
