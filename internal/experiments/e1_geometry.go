package experiments

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
)

const (
	e1Subject binding.Subject = 0x11
	e1Rounds                  = 300
)

// E1SlotGeometry reproduces Fig. 3: under increasing lower-priority
// background load, the HRT transmission start wanders inside
// [latest-ready, LST], the network-level arrival jitters accordingly, yet
// the middleware delivers every event exactly at the delivery deadline so
// the application-visible jitter collapses to (near) zero.
func E1SlotGeometry(seed uint64) Result {
	tbl := stats.Table{
		Title: "HRT slot geometry: tx start stays in [ready, LST]; delivery de-jittered",
		Headers: []string{"bgLoad", "txStartMin µs", "txStartMax µs", "ΔT_wait µs",
			"netJitter µs", "appJitter µs", "late", "missed"},
	}
	for _, bg := range []float64{0, 0.3, 0.6, 0.9} {
		row := e1Run(seed, bg)
		tbl.Rows = append(tbl.Rows, row)
	}
	return Result{
		ID:    "E1",
		Title: "slot geometry & delivery de-jittering (Fig. 3)",
		Table: tbl,
		Notes: []string{
			"txStart offsets are relative to the slot's latest-ready instant: they must stay in [0, ΔT_wait]",
			"netJitter is the peak-to-peak spread of frame arrivals; appJitter the spread of notifications",
			"the paper's claim: jitter is handled at the middleware layer, not the network layer (§3.2)",
		},
	}
}

func e1Run(seed uint64, bgLoad float64) []string {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(e1Subject), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 3, Seed: seed, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	slot := cal.Slots[0]

	// Track HRT transmission starts relative to each round's ready time.
	txStart := stats.NewSeries("txStart")
	sys.Bus.Trace = func(e can.TraceEvent) {
		if e.Kind == can.TraceTxStart && e.Frame.ID.Prio() == 0 {
			rel := (e.At - sys.Cfg.Epoch) % cal.Round
			txStart.ObserveDuration(rel - slot.Ready)
		}
	}

	pub, err := sys.Node(0).MW.HRTEC(e1Subject)
	if err != nil {
		panic(err)
	}
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	arrive := stats.NewSeries("arrive")
	deliver := stats.NewSeries("deliver")
	late, missed := 0, 0
	sub, err := sys.Node(1).MW.HRTEC(e1Subject)
	if err != nil {
		panic(err)
	}
	err = sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(_ core.Event, di core.DeliveryInfo) {
			arrive.ObserveDuration((di.ArrivedAt - sys.Cfg.Epoch) % cal.Round)
			deliver.ObserveDuration((di.DeliveredAt - sys.Cfg.Epoch) % cal.Round)
			if di.Late {
				late++
			}
		},
		func(e core.Exception) {
			if e.Kind == core.ExcSlotMissed {
				missed++
			}
		})
	if err != nil {
		panic(err)
	}
	for r := int64(0); r < e1Rounds; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(core.Event{Subject: e1Subject, Payload: []byte{1}})
		})
	}

	// Background: node 2 keeps the bus busy with SRT traffic at the given
	// offered load (frame time ≈ 135 µs for 8-byte payloads).
	if bgLoad > 0 {
		srt, err := sys.Node(2).MW.SRTEC(0x99)
		if err != nil {
			panic(err)
		}
		if err := srt.Announce(core.ChannelAttrs{}, nil); err != nil {
			panic(err)
		}
		frame := can.BitTime(can.WorstCaseBits(8), can.DefaultBitRate)
		gap := sim.Duration(float64(frame)/bgLoad) - frame
		var bgLoop func()
		bgLoop = func() {
			if sys.K.Now() >= sys.Cfg.Epoch+e1Rounds*cal.Round {
				return
			}
			now := sys.Node(2).MW.LocalTime()
			srt.Publish(core.Event{Subject: 0x99, Payload: make([]byte, 8),
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
			sys.K.After(frame+gap, bgLoop)
		}
		sys.K.At(0, bgLoop)
	}

	sys.Run(sys.Cfg.Epoch + e1Rounds*cal.Round - 1)

	wait := float64(cfg.WaitTime())
	return []string{
		fmt.Sprintf("%.1f", bgLoad),
		stats.Micros(txStart.Min()),
		stats.Micros(txStart.Max()),
		stats.Micros(wait),
		stats.Micros(arrive.Spread()),
		stats.Micros(deliver.Spread()),
		fmt.Sprint(late),
		fmt.Sprint(missed),
	}
}
