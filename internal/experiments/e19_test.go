package experiments

import (
	"reflect"
	"testing"

	"canec/internal/obs/causal"
)

// TestE19Attribution pins the causal engine's verdicts against the
// ground truth of the injected faults: every campaign must attribute
// incident chains on the faulted channel to the injected cause family,
// the control group must never carry a top cause from that family, and
// the residual-zero invariant must hold for every chain.
func TestE19Attribution(t *testing.T) {
	for _, c := range e19Campaigns() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out := e19Exec(7, c)
			if out.chains == 0 || out.faulted == 0 {
				t.Fatalf("campaign produced no chains: %+v", out)
			}
			if out.familyIncidents == 0 {
				t.Fatalf("no incident attributed to %s: %+v", e19Family(c.family), out)
			}
			if out.familyDebit <= 0 {
				t.Fatalf("no debit charged to %s: %+v", e19Family(c.family), out)
			}
			fam := map[causal.Cause]bool{}
			for _, cause := range c.family {
				fam[cause] = true
			}
			if !fam[out.topCause] {
				t.Fatalf("dominant top cause %q outside family %s", out.topCause, e19Family(c.family))
			}
			// Zero misattribution: not one control chain blamed on the
			// injected fault.
			if out.misattributed != 0 {
				t.Fatalf("%d control chains misattributed to %s", out.misattributed, e19Family(c.family))
			}
			// The engine is exact: segment debits tile publish→end for
			// every chain, faulted or not.
			if out.residualBad != 0 {
				t.Fatalf("%d chains with nonzero residual", out.residualBad)
			}
		})
	}
}

// TestE19Deterministic replays every campaign: identical seeds must
// yield byte-identical attribution outcomes and result tables.
func TestE19Deterministic(t *testing.T) {
	for _, c := range e19Campaigns() {
		a, b := e19Exec(3, c), e19Exec(3, c)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s diverged:\n%+v\nvs\n%+v", c.name, a, b)
		}
	}
	r1, r2 := E19WhyLate(5), E19WhyLate(5)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("E19 result diverged:\n%+v\nvs\n%+v", r1, r2)
	}
}
