package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19 (E1-E12 + E16-E19 + A1-A3)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil {
			t.Fatalf("%s has no runner", e.ID)
		}
		if seen[e.ID] || seen[e.Name] {
			t.Fatalf("duplicate key %s/%s", e.ID, e.Name)
		}
		seen[e.ID], seen[e.Name] = true, true
		byID, ok := Find(e.ID)
		if !ok || byID.Name != e.Name {
			t.Fatalf("Find(%s) failed", e.ID)
		}
		if _, ok := Find(e.Name); !ok {
			t.Fatalf("Find(%s) failed", e.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted unknown key")
	}
}

// cell parses a table cell that may carry a %-suffix or float formatting.
func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSpace(row[i]), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[i], err)
	}
	return v
}

func TestE1GeometryInvariants(t *testing.T) {
	res := E1SlotGeometry(1)
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for _, row := range res.Table.Rows {
		txMin, txMax := cell(t, row, 1), cell(t, row, 2)
		wait := cell(t, row, 3)
		appJitter := cell(t, row, 5)
		if txMin < 0 || txMax > wait {
			t.Fatalf("tx start outside [0, ΔT_wait]: %v", row)
		}
		if appJitter != 0 {
			t.Fatalf("application jitter %v != 0: %v", appJitter, row)
		}
		if row[6] != "0" || row[7] != "0" {
			t.Fatalf("late/missed non-zero: %v", row)
		}
	}
}

func TestE2GuaranteeBoundary(t *testing.T) {
	res := E2FaultTolerance(1)
	for _, row := range res.Table.Rows {
		k, _ := strconv.Atoi(row[0])
		j, _ := strconv.Atoi(row[1])
		delivered := cell(t, row, 2)
		atDeadline := cell(t, row, 3)
		lateness := cell(t, row, 4)
		if delivered != 100 {
			t.Fatalf("k=%d j=%d delivered %v != 100 (CAN retransmits)", k, j, delivered)
		}
		if j <= k {
			// Inside the fault assumption: every delivery exactly at the
			// deadline, zero lateness.
			if atDeadline != 100 || lateness != 0 {
				t.Fatalf("k=%d j=%d violates guarantee: %v", k, j, row)
			}
		}
		if j >= k+2 {
			// Beyond assumption + stuffing slack: must be late and detected.
			if lateness <= 0 {
				t.Fatalf("k=%d j=%d fault overrun undetected: %v", k, j, row)
			}
			if row[5] == "0" {
				t.Fatalf("k=%d j=%d no SlotMissed raised: %v", k, j, row)
			}
		}
	}
}

func TestE3ReclamationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E3Reclamation(1)
	var ttcanFirst float64
	for i, row := range res.Table.Rows {
		canecTP := cell(t, row, 2)
		ttcanTP := cell(t, row, 4)
		if canecTP <= ttcanTP {
			t.Fatalf("row %d: no reclamation advantage: %v", i, row)
		}
		if i == 0 {
			ttcanFirst = ttcanTP
		} else if diff := ttcanTP - ttcanFirst; diff > 1 || diff < -1 {
			t.Fatalf("TTCAN throughput should be duty-independent: %v vs %v", ttcanTP, ttcanFirst)
		}
	}
}

func TestE8PrecisionBoundHolds(t *testing.T) {
	res := E8ClockSync(1)
	sawHealthy, sawBroken := false, false
	for _, row := range res.Table.Rows {
		bound := cell(t, row, 1)
		measured := cell(t, row, 2)
		if measured > bound {
			t.Fatalf("measured precision above analytical bound: %v", row)
		}
		late := cell(t, row, 4)
		if row[3] == "true" && late != 0 {
			t.Fatalf("healthy precision but late deliveries: %v", row)
		}
		if row[3] == "true" {
			sawHealthy = true
		} else if late > 0 {
			sawBroken = true
		}
	}
	if !sawHealthy || !sawBroken {
		t.Fatalf("sweep must show both regimes (healthy=%v broken=%v)", sawHealthy, sawBroken)
	}
}

func TestE10AnalysisBoundsSimulation(t *testing.T) {
	res := E10WCRTAnalysis(1)
	for _, row := range res.Table.Rows {
		bound := cell(t, row, 4)
		sim := cell(t, row, 5)
		if bound < sim {
			t.Fatalf("WCRT bound below simulation: %v", row)
		}
		if row[7] != "true" {
			t.Fatalf("SAE-style set should be schedulable: %v", row)
		}
	}
}

func TestE6NonInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E6Fragmentation(1)
	for _, row := range res.Table.Rows {
		if jit := cell(t, row, 4); jit != 0 {
			t.Fatalf("bulk transfer added HRT jitter: %v", row)
		}
		if row[5] != "0" {
			t.Fatalf("bulk transfer caused late HRT deliveries: %v", row)
		}
	}
}

func TestResultString(t *testing.T) {
	res := E10WCRTAnalysis(1)
	s := res.String()
	if !strings.Contains(s, "E10") || !strings.Contains(s, "bound") {
		t.Fatalf("rendering broken: %q", s[:80])
	}
}

func TestActualFrameTimeBetweenBounds(t *testing.T) {
	for p := 0; p <= 8; p++ {
		got := actualFrameTime(p)
		min := float64(minBitsFor(p))
		max := float64(worstBitsFor(p))
		if float64(got)/1000 < min || float64(got)/1000 > max {
			t.Fatalf("payload %d: actual %v outside [%v, %v] µs", p, got, min, max)
		}
	}
}

// TestAllExperimentsProduceTables runs the complete registry (each table
// at its default parameters) and checks structural health: non-empty
// tables with consistent row widths. Slow (~20 s); skipped with -short.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(2)
			if res.ID != e.ID {
				t.Fatalf("result ID %q", res.ID)
			}
			if len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range res.Table.Rows {
				if len(row) != len(res.Table.Headers) {
					t.Fatalf("row %d has %d cells for %d headers", i, len(row), len(res.Table.Headers))
				}
			}
			if len(res.Notes) == 0 {
				t.Fatal("experiment without reading notes")
			}
		})
	}
}
