package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E3Reclamation measures the paper's headline efficiency claim (§3.2,
// §5): bandwidth reserved for hard real-time traffic but not used — slots
// of sporadic channels that do not fire, and redundant fault-tolerance
// copies that are suppressed after a consistently successful transmission
// — is automatically reclaimed by lower-priority traffic through CAN
// arbitration. A TTCAN-style network with the same reservations cannot
// reclaim exclusive windows, so its best-effort throughput collapses as
// the reservation share grows.
func E3Reclamation(seed uint64) Result {
	tbl := stats.Table{
		Title:   "best-effort bulk throughput under HRT reservations (8 sporadic HRT channels, k=1)",
		Headers: []string{"duty", "reserved%", "canec KiB/s", "canec+alwaysK KiB/s", "ttcan KiB/s", "advantage"},
	}
	var snaps []PromSnapshot
	for _, duty := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		canecTP, prom := e3RunCanec(seed, duty, true)
		alwaysK, _ := e3RunCanec(seed, duty, false)
		ttcanTP, reserved := e3RunTTCAN(seed, duty)
		if prom != "" {
			snaps = append(snaps, PromSnapshot{Label: fmt.Sprintf("duty%.2f", duty), Text: prom})
		}
		adv := "∞"
		if ttcanTP > 0 {
			adv = fmt.Sprintf("%.2fx", canecTP/ttcanTP)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", duty),
			fmt.Sprintf("%.1f", 100*reserved),
			fmt.Sprintf("%.1f", canecTP),
			fmt.Sprintf("%.1f", alwaysK),
			fmt.Sprintf("%.1f", ttcanTP),
			adv,
		})
	}
	return Result{
		ID:    "E3",
		Prom:  snaps,
		Title: "bandwidth reclamation vs TTCAN-style TDMA (§3.2, §5)",
		Table: tbl,
		Notes: []string{
			"duty = probability a sporadic HRT channel actually publishes in its round",
			"canec reclaims unused slots and suppressed redundant copies; always-K sends every copy",
			"TTCAN leaves unused exclusive windows idle: its throughput is duty-independent and lowest",
		},
	}
}

const e3Horizon = 2 * sim.Second

// e3Slots builds 8 sporadic single-publisher HRT reservations in a 10 ms
// round.
func e3Slots() (*calendar.Calendar, error) {
	cfg := calendar.DefaultConfig()
	cfg.OmissionDegree = 1
	var slots []calendar.Slot
	for i := 0; i < 8; i++ {
		slots = append(slots, calendar.Slot{
			Subject: uint64(0x700 + i), Publisher: can.TxNode(i), Payload: 8, Periodic: false,
		})
	}
	return calendar.PackSequential(cfg, 10*sim.Millisecond, slots...)
}

// e3RunCanec measures bulk NRT throughput in the paper's system.
func e3RunCanec(seed uint64, duty float64, suppress bool) (float64, string) {
	cal, err := e3Slots()
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 10, Seed: seed, Calendar: cal, Epoch: sim.Millisecond,
		NoSuppressRedundancy: !suppress,
		Observe:              metricsConfig(),
	})
	if err != nil {
		panic(err)
	}
	// Sporadic HRT publishers: publish with probability duty per round.
	for i := 0; i < 8; i++ {
		i := i
		subj := binding.Subject(0x700 + i)
		ch, err := sys.Node(i).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: 7}, nil); err != nil {
			panic(err)
		}
		var loop func(r int64)
		loop = func(r int64) {
			at := sys.Cfg.Epoch + sim.Time(r)*cal.Round - 100*sim.Microsecond
			if at >= e3Horizon {
				return
			}
			sys.K.At(at, func() {
				if sys.K.RNG().Bool(duty) {
					ch.Publish(core.Event{Subject: subj, Payload: []byte{byte(r)}})
				}
				loop(r + 1)
			})
		}
		loop(0)
	}
	// Bulk NRT with infinite backlog from node 8 to node 9.
	bulk, err := sys.Node(8).MW.NRTEC(0x7ff)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(core.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	bytesDone := 0
	sub, _ := sys.Node(9).MW.NRTEC(0x7ff)
	sub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
		func(ev core.Event, _ core.DeliveryInfo) { bytesDone += len(ev.Payload) }, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= e3Horizon {
			return
		}
		for bulk.QueuedChains() < 2 {
			bulk.Publish(core.Event{Subject: 0x7ff, Payload: make([]byte, 1024)})
		}
		sys.K.After(sim.Millisecond, feed)
	}
	sys.K.At(0, feed)
	sys.Run(e3Horizon)
	return float64(bytesDone) / 1024 / (float64(e3Horizon) / float64(sim.Second)), promText(sys.Obs)
}

// e3RunTTCAN measures bulk throughput under the TTCAN baseline with the
// same reservations: one exclusive window per HRT channel per cycle (the
// window must cover the same worst-case span, including the retry budget,
// since TTCAN has no in-slot retransmission the span buys extra windows —
// we grant it the same total reservation), plus one arbitration window in
// the remaining cycle time.
func e3RunTTCAN(seed uint64, duty float64) (throughput float64, reservedShare float64) {
	cal, err := e3Slots()
	if err != nil {
		panic(err)
	}
	cfg := cal.Cfg
	k := sim.NewKernel(seed)
	bus := can.NewBus(k, can.DefaultBitRate)
	for i := 0; i < 10; i++ {
		bus.Attach(can.TxNode(i))
	}
	net := baseline.NewTTCAN(k, bus, cal.Round)
	for _, s := range cal.Slots {
		net.AddExclusive(s.Ready, s.End(cfg)-s.Ready, int(s.Publisher))
	}
	last := cal.Slots[len(cal.Slots)-1]
	arbStart := last.End(cfg) + cfg.GapMin
	if arbStart < cal.Round {
		net.AddArbitration(arbStart, cal.Round-arbStart)
	}
	if err := net.Start(); err != nil {
		panic(err)
	}
	reservedShare = cal.Utilization()

	// Sporadic exclusive traffic with the same duty cycle.
	for wi, s := range cal.Slots {
		wi, s := wi, s
		var loop func(r int64)
		loop = func(r int64) {
			at := sim.Time(r)*cal.Round + s.Ready - 100*sim.Microsecond
			if at < 0 {
				at = 0
			}
			if at >= e3Horizon {
				return
			}
			k.At(at, func() {
				if k.RNG().Bool(duty) {
					net.SetExclusive(wi, can.Frame{
						ID:   can.MakeID(0, s.Publisher, can.Etag(s.Subject&0x3fff)),
						Data: make([]byte, 8),
					})
				}
				loop(r + 1)
			})
		}
		loop(0)
	}
	// Bulk traffic through the arbitration windows: frames of 8 bytes.
	bytesDone := 0
	var feed func()
	feed = func() {
		if k.Now() >= e3Horizon {
			return
		}
		for i := 0; i < 20; i++ {
			net.SubmitAsync(8, can.Frame{
				ID:   can.MakeID(254, 8, 0x7ff),
				Data: make([]byte, 8),
			}, func(ok bool, _ sim.Time) {
				if ok {
					bytesDone += 8
				}
			})
		}
		k.After(sim.Millisecond, feed)
	}
	k.At(0, feed)
	k.Run(e3Horizon)
	return float64(bytesDone) / 1024 / (float64(e3Horizon) / float64(sim.Second)), reservedShare
}
