package experiments

import (
	"fmt"
	"math"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/chaos"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/prob"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E17ProbValidation cross-validates the convolution-based probabilistic
// WCRT analyzer (internal/prob) against seeded chaos campaigns: the same
// prob.ErrorModel parameterises both the campaign's fault injector and
// the analyzer, so a row compares a *prediction* with a *measurement* of
// provably the same stochastic law. Three bit_error campaigns sweep the
// per-attempt corruption rate and one omission campaign exercises the
// inconsistent-omission leg:
//
//   - "pred miss" is the admission controller's per-class deadline-miss
//     prediction (worst-case frame bits, the bound channels are admitted
//     against); it must upper-bound "meas miss", the delivered-late mass
//     of the canec_e2e_latency_microseconds log histogram.
//   - "pred p99" comes from a model-faithful analyzer (expected wire
//     bits, exact stuffing over the published payload distribution); it
//     must agree with the histogram's measured P99 within the
//     histogram's own Growth() rank-error bound.
//   - the omission row additionally validates DeliveryLossProb against
//     the published-vs-delivered deficit.
func E17ProbValidation(seed uint64) Result {
	tbl := stats.Table{
		Title: "probabilistic WCRT validation: predicted vs chaos-measured, per campaign",
		Headers: []string{"kind", "rate", "samples", "pred miss", "meas miss",
			"pred p99 µs", "meas p99 µs", "growth", "pred loss", "meas loss", "viol", "ok"},
	}
	campaigns := []struct {
		kind  string
		model prob.ErrorModel
	}{
		{"bit_error", prob.ErrorModel{ErrorRate: 0.05}},
		{"bit_error", prob.ErrorModel{ErrorRate: 0.15}},
		{"bit_error", prob.ErrorModel{ErrorRate: 0.30}},
		{"omission", prob.ErrorModel{OmissionRate: 0.10, VictimProb: 1.0, Receivers: e17Nodes}},
	}
	for i, c := range campaigns {
		run := e17Exec(seed+uint64(i), c.kind, c.model)
		rate := c.model.ErrorRate
		if c.kind == "omission" {
			rate = c.model.OmissionRate
		}
		tbl.Rows = append(tbl.Rows, []string{
			c.kind,
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%d", run.samples),
			fmt.Sprintf("%.2e", run.predMiss),
			fmt.Sprintf("%.2e", run.measMiss),
			fmt.Sprintf("%.0f", run.predP99),
			fmt.Sprintf("%.0f", run.measP99),
			fmt.Sprintf("%.2f", run.growth),
			fmt.Sprintf("%.3f", run.predLoss),
			fmt.Sprintf("%.3f", run.measLoss),
			fmt.Sprintf("%d", run.violations),
			fmt.Sprintf("%v", run.ok()),
		})
	}
	return Result{
		ID:    "E17",
		Title: "probabilistic WCRT validation against seeded chaos campaigns (§4 extension)",
		Table: tbl,
		Notes: []string{
			"one SRT channel (payload 8, period 1 ms, deadline 480 µs) under a whole-run fault window; injector and analyzer share one prob.ErrorModel",
			"pred miss = admission controller's SRT-class prediction (worst-case stuffing) and must upper-bound meas miss = histogram mass beyond the deadline",
			"pred p99 = model-faithful analyzer quantile (expected wire bits); must match meas p99 within the log histogram's growth factor (its rank-error bound)",
			"pred/meas loss = inconsistent-omission delivery deficit (DeliveryLossProb vs 1 - delivered/published); bit_error campaigns lose nothing",
			"viol = chaos trace invariant violations (must be 0); ok = all of the row's checks hold",
		},
	}
}

const (
	e17Nodes    = 3
	e17Pub      = 1
	e17Sub      = 2
	e17Subject  = binding.Subject(0x5e1)
	e17Period   = sim.Millisecond
	e17Deadline = 480 * sim.Microsecond
	e17Horizon  = 4000 * sim.Millisecond
)

type e17Run struct {
	samples              uint64
	predMiss, measMiss   float64
	predP99, measP99     float64 // µs
	growth               float64
	predLoss, measLoss   float64
	published, delivered uint64
	violations           int
}

// ok evaluates the row's acceptance checks: prediction upper-bounds the
// measured miss mass, the model-faithful P99 agrees within the
// histogram's rank-error bound, the omission deficit matches within
// sampling noise, and the chaos invariants held.
func (r e17Run) ok() bool {
	if r.violations != 0 || r.samples == 0 {
		return false
	}
	if r.measMiss > r.predMiss {
		return false
	}
	if r.measP99 > 0 {
		ratio := r.predP99 / r.measP99
		if ratio < 1/r.growth || ratio > r.growth {
			return false
		}
	}
	// Binomial sampling tolerance on the loss deficit (5 sigma).
	if r.predLoss > 0 || r.measLoss > 0 {
		sigma := 5 * sigmaBin(r.predLoss, r.published)
		if d := r.measLoss - r.predLoss; d > sigma || d < -sigma {
			return false
		}
	}
	return true
}

func sigmaBin(p float64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// e17Exec runs one campaign: a single SRT channel publishing every
// period under a whole-run fault window sampling exactly the given
// model, with the probabilistic admission controller active (generous
// target — E17 validates the prediction, it does not gate).
func e17Exec(seed uint64, kind string, model prob.ErrorModel) e17Run {
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: e17Nodes, Seed: seed,
		Observe: &obs.Config{Trace: true, Metrics: true},
		Admission: &prob.AdmissionConfig{
			Targets:  prob.ClassTargets{SRT: 0.5},
			Analyzer: prob.Analyzer{Model: model},
		},
	})
	if err != nil {
		panic(err)
	}
	horizonMS := float64(e17Horizon) / float64(sim.Millisecond)
	ev := chaos.Event{Kind: kind, AtMS: 0, UntilMS: horizonMS}
	switch kind {
	case "bit_error":
		ev.Node = e17Pub
		ev.Rate = model.ErrorRate
	case "omission":
		ev.Rate = model.OmissionRate
		ev.VictimProb = model.VictimProb
	default:
		panic("e17: unknown campaign kind " + kind)
	}
	lc := core.NewLifecycle(sys)
	camp, err := chaos.NewCampaign(sys, lc, chaos.Script{Events: []chaos.Event{ev}})
	if err != nil {
		panic(err)
	}
	camp.Install()

	pub, err := sys.Node(e17Pub).MW.SRTEC(e17Subject)
	if err != nil {
		panic(err)
	}
	attrs := core.ChannelAttrs{Payload: 8, Period: e17Period, RelDeadline: e17Deadline}
	if err := pub.Announce(attrs, nil); err != nil {
		panic(err)
	}
	sub, err := sys.Node(e17Sub).MW.SRTEC(e17Subject)
	if err != nil {
		panic(err)
	}
	run := e17Run{}
	if err := sub.Subscribe(attrs, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) { run.delivered++ }, nil); err != nil {
		panic(err)
	}

	rng := sim.NewRNG(seed ^ 0x517)
	end := sim.Time(e17Horizon)
	var loop func()
	loop = func() {
		if sys.K.Now() >= end {
			return
		}
		payload := make([]byte, 8)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		if err := pub.Publish(core.Event{Subject: e17Subject, Payload: payload}); err == nil {
			run.published++
		}
		sys.K.After(e17Period, loop)
	}
	sys.K.At(0, loop)
	sys.Run(end + 10*sim.Millisecond)

	run.violations = len(camp.Finish(0).Violations)
	run.predMiss = sys.Admission.PredictedMiss("SRT")
	run.predLoss = model.DeliveryLossProb()
	if run.published > 0 {
		run.measLoss = 1 - float64(run.delivered)/float64(run.published)
	}

	// Measured side: the channel's e2e latency log histogram. The miss
	// mass conservatively includes the bucket straddling the deadline.
	hist := sys.Obs.Registry().LogHistogram("canec_e2e_latency_microseconds", "",
		obs.Labels{"subject": fmt.Sprintf("0x%x", uint64(e17Subject)), "class": "SRT"},
		1, 50000, 50).Snapshot()
	run.samples = hist.N()
	run.measP99 = hist.Quantile(0.99)
	if lg, isLog := hist.(interface{ Growth() float64 }); isLog {
		run.growth = lg.Growth()
	} else {
		run.growth = 1
	}
	// Mass beyond the deadline: full buckets above it, plus the
	// straddling bucket's share by geometric interpolation (the same
	// within-bucket law the histogram's Quantile uses).
	deadlineUs := float64(e17Deadline) / 1e3
	_, over := hist.OutOfRange()
	missMass := float64(over)
	for i := 0; i < hist.Buckets(); i++ {
		up := hist.UpperBound(i)
		if up <= deadlineUs {
			continue
		}
		lo := 1.0
		if i > 0 {
			lo = hist.UpperBound(i - 1)
		}
		c := float64(hist.Bucket(i))
		if lo >= deadlineUs {
			missMass += c
		} else {
			missMass += c * math.Log(up/deadlineUs) / math.Log(up/lo)
		}
	}
	if run.samples > 0 {
		run.measMiss = missMass / float64(run.samples)
	}

	// Model-faithful prediction for the quantile comparison: expected
	// wire bits over the published payload distribution instead of the
	// admission bound's worst-case stuffing.
	a := prob.Analyzer{
		Model: model,
		FrameBits: func(p int) int {
			return int(actualFrameTime(p) / can.BitTime(1, can.DefaultBitRate))
		},
	}
	res, err := a.Response([]prob.Msg{{
		Name: "srt", Prio: 2, Period: e17Period,
		Deadline: e17Deadline, Payload: 8,
	}}, 0)
	if err != nil {
		panic(err)
	}
	run.predP99 = 0
	if q, okq := res.Dist.Quantile(0.99); okq {
		run.predP99 = float64(q) / 1e3
	}
	return run
}
