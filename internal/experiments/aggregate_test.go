package experiments

import (
	"strings"
	"testing"

	"canec/internal/stats"
)

func fakeExperiment() Experiment {
	return Experiment{
		ID: "EX", Name: "fake",
		Run: func(seed uint64) Result {
			t := stats.Table{Headers: []string{"label", "v", "pct"}}
			t.Add("row", float64(seed), stats.Pct(float64(seed)/100))
			return Result{ID: "EX", Title: "fake", Table: t}
		},
	}
}

func TestRunSeedsParallelOrder(t *testing.T) {
	e := fakeExperiment()
	seeds := []uint64{3, 1, 7, 5, 9, 2, 8, 4}
	results := RunSeeds(e, seeds)
	if len(results) != len(seeds) {
		t.Fatalf("results = %d", len(results))
	}
	// Seed order preserved: row value equals the seed.
	for i, r := range results {
		want := float64(seeds[i])
		got, _, err := parseNumeric(r.Table.Rows[0][1])
		if err != nil || got != want {
			t.Fatalf("result %d carries %v, want %v", i, got, want)
		}
	}
}

func TestAggregateMeanSD(t *testing.T) {
	e := fakeExperiment()
	results := RunSeeds(e, []uint64{2, 4, 6})
	agg := Aggregate(results)
	if !strings.Contains(agg.Title, "3 seeds") {
		t.Fatalf("title %q", agg.Title)
	}
	// mean of 2,4,6 = 4.00, sd = 1.63.
	cell := agg.Table.Rows[0][1]
	if !strings.HasPrefix(cell, "4.00±1.6") {
		t.Fatalf("aggregated cell = %q", cell)
	}
	// Percent suffix preserved.
	if !strings.HasSuffix(agg.Table.Rows[0][2], "%") {
		t.Fatalf("pct cell = %q", agg.Table.Rows[0][2])
	}
	// Label column untouched.
	if agg.Table.Rows[0][0] != "row" {
		t.Fatalf("label cell = %q", agg.Table.Rows[0][0])
	}
}

func TestAggregateConstantCollapses(t *testing.T) {
	e := Experiment{Run: func(uint64) Result {
		tb := stats.Table{Headers: []string{"v"}}
		tb.Add(7)
		return Result{Table: tb}
	}}
	agg := Aggregate(RunSeeds(e, []uint64{1, 2, 3}))
	if agg.Table.Rows[0][0] != "7.00" {
		t.Fatalf("constant cell = %q (no ±0 noise expected)", agg.Table.Rows[0][0])
	}
}

func TestAggregateShapeDivergence(t *testing.T) {
	a := Result{Table: stats.Table{Headers: []string{"v"}, Rows: [][]string{{"1"}}}}
	b := Result{Table: stats.Table{Headers: []string{"v"}, Rows: [][]string{{"2"}, {"3"}}}}
	agg := Aggregate([]Result{a, b})
	found := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "divergent") {
			found = true
		}
	}
	if !found {
		t.Fatal("shape divergence not noted")
	}
	if len(agg.Table.Rows) != 1 {
		t.Fatalf("rows = %d", len(agg.Table.Rows))
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := Aggregate(nil); got.ID != "" || len(got.Table.Rows) != 0 {
		t.Fatal("empty aggregate not zero")
	}
}

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		v    float64
		sfx  string
		fail bool
	}{
		{"12.5", 12.5, "", false},
		{"3.1%", 3.1, "%", false},
		{"1.61x", 1.61, "x", false},
		{" 7 ", 7, "", false},
		{"true", 0, "", true},
		{"-", 0, "", true},
	}
	for _, c := range cases {
		v, sfx, err := parseNumeric(c.in)
		if c.fail {
			if err == nil {
				t.Fatalf("%q parsed", c.in)
			}
			continue
		}
		if err != nil || v != c.v || sfx != c.sfx {
			t.Fatalf("%q -> %v %q %v", c.in, v, sfx, err)
		}
	}
}

// BenchmarkRunSeedsScaling measures the wall-clock benefit of the
// parallel multi-seed sweep: independent simulation instances scale with
// the available cores.
func BenchmarkRunSeedsScaling(b *testing.B) {
	e, _ := Find("E10")
	seeds := []uint64{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = RunSeeds(e, seeds)
	}
}
