package experiments

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E12MasterFailover measures what losing the time master costs. A scripted
// crash kills the acting master mid-run; the ranked backup takes the role
// over after FailoverRounds missed rounds, and every follower rides out the
// gap in holdover, its uncertainty growing at 2·d_max. The experiment
// reports, per missed-round tolerance: the takeover latency, how long
// followers spent in holdover, and the HRT delivery jitter — measured
// against the next master's timebase — before the crash versus during the
// holdover window, next to the analytical uncertainty bound that must
// contain it. The core middleware widens its HRT lateness check by exactly
// that bound (the "hrt widened" column counts such checks), so a correctly
// holding-over system delivers zero late events across the failover.
func E12MasterFailover(seed uint64) Result {
	tbl := stats.Table{
		Title: "time-master failover: takeover latency and HRT jitter in holdover",
		Headers: []string{"failover rounds", "takeover ms", "holdover ms",
			"synced jit us", "holdover jit us", "bound us", "hrt widened", "late", "violations"},
	}
	for _, fr := range []int{2, 5, 10} {
		r := e12Run(seed, fr)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", fr),
			fmt.Sprintf("%.1f", float64(r.takeoverAt-e12CrashAt)/float64(sim.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.holdover)/float64(sim.Millisecond)),
			fmt.Sprintf("%.1f", float64(r.syncedJit)/float64(sim.Microsecond)),
			fmt.Sprintf("%.1f", float64(r.holdoverJit)/float64(sim.Microsecond)),
			fmt.Sprintf("%.1f", float64(r.bound)/float64(sim.Microsecond)),
			fmt.Sprintf("%d", r.widened),
			fmt.Sprintf("%d", r.late),
			fmt.Sprintf("%d", r.violations),
		})
	}
	return Result{
		ID:    "E12",
		Title: "time-master failover: takeover latency and holdover jitter (§3.2)",
		Table: tbl,
		Notes: []string{
			"takeover = master_crash to the ranked backup's first SYNC as the new master",
			"holdover = longest follower enter-to-exit interval; jitter = HRT delivery deviation from the calendar grid read on the next master's clock",
			"bound = 2·U(elapsed), U the holdover uncertainty model (both clocks hold over until takeover); holdover jitter must stay inside it",
			"hrt widened = HRT lateness checks that ran with slack widened beyond 2π; late must be 0 — holdover widening absorbs the drift",
			"violations = chaos trace invariant failures (takeover window, holdover closure; must be 0)",
		},
	}
}

const (
	e12Horizon = 1800 * sim.Millisecond
	e12CrashAt = 600 * sim.Millisecond
)

type e12Result struct {
	takeoverAt  sim.Time
	holdover    sim.Duration
	syncedJit   sim.Duration
	holdoverJit sim.Duration
	bound       sim.Duration
	widened     uint64
	late        int
	violations  int
}

// e12Run drives an 8-station system (agent on 0, master on 1, backups 2
// and 3, HRT publishers 4 and 5, subscriber 6) through one master
// crash/restart cycle with the given missed-round tolerance.
func e12Run(seed uint64, failoverRounds int) e12Result {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: 0x730, Publisher: 4, Payload: 8, Periodic: true},
		calendar.Slot{Subject: 0x731, Publisher: 5, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sync := clock.DefaultSyncConfig()
	sync.Period = 40 * sim.Millisecond
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 8, Seed: seed, Calendar: cal,
		Sync:             sync,
		Master:           1,
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * sim.Microsecond,
		Observe:          obs.Default(),
	})
	if err != nil {
		panic(err)
	}
	lc := core.NewLifecycle(sys)
	camp, err := chaos.NewCampaign(sys, lc, chaos.Script{
		SyncBackups:    []int{2, 3},
		FailoverRounds: failoverRounds,
		Events: []chaos.Event{
			{Kind: "master_crash", AtMS: float64(e12CrashAt) / float64(sim.Millisecond)},
			{Kind: "master_restart", AtMS: float64(e12CrashAt+600*sim.Millisecond) / float64(sim.Millisecond)},
		},
	})
	if err != nil {
		panic(err)
	}
	camp.Install()

	type delivery struct {
		slot int
		r    int64
		at   sim.Time
	}
	var deliveries []delivery
	res := e12Result{}
	pubs := make([]*core.HRTEC, len(cal.Slots))
	for si, s := range cal.Slots {
		si, s := si, s
		subj := binding.Subject(s.Subject)
		pub, err := sys.Node(int(s.Publisher)).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		pubs[si] = pub
		sub, err := sys.Node(6).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		seen := int64(0)
		if err := sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				deliveries = append(deliveries, delivery{slot: si, r: seen, at: di.DeliveredAt})
				seen++
				if di.Late {
					res.late++
				}
			}, nil); err != nil {
			panic(err)
		}
	}
	// Publishers 4 and 5 never crash: drive them on the kernel grid with a
	// margin that covers the master clock's worst-case drift over the run.
	rounds := int64((e12Horizon - sys.Cfg.Epoch) / sim.Duration(cal.Round))
	for r := int64(0); r < rounds; r++ {
		r := r
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-sim.Time(sim.Millisecond), func() {
			for si, s := range cal.Slots {
				_ = pubs[si].Publish(core.Event{Subject: binding.Subject(s.Subject), Payload: []byte{byte(r)}})
			}
		})
	}
	sys.Run(e12Horizon)
	res.violations = len(camp.Finish(0).Violations)
	res.widened = sys.TotalCounters().HoldoverWidened

	// Takeover instant and the longest follower holdover interval.
	enter := map[int]sim.Time{}
	for _, rec := range sys.Obs.Records() {
		switch rec.Stage {
		case obs.StageMasterTakeover:
			if res.takeoverAt == 0 {
				res.takeoverAt = rec.At
			}
		case obs.StageHoldoverEnter:
			enter[rec.Node] = rec.At
		case obs.StageHoldoverExit:
			if from, ok := enter[rec.Node]; ok {
				if d := sim.Duration(rec.At - from); d > res.holdover {
					res.holdover = d
				}
				delete(enter, rec.Node)
			}
		}
	}

	// Jitter: HRT deliveries land at the calendar deadline on the
	// subscriber's clock; read each one back on the next master's (station
	// 2's) clock and compare with the nominal grid. Before the crash both
	// clocks track the master within π; across the gap they both free-run,
	// so the deviation is bounded by twice the holdover uncertainty at
	// takeover time.
	ref := sys.Clocks[2]
	for _, d := range deliveries {
		nominal := sys.Cfg.Epoch + sim.Time(d.r)*cal.Round + cal.Slots[d.slot].Deadline(cal.Cfg)
		dev := sim.Duration(ref.Read(d.at) - nominal)
		if dev < 0 {
			dev = -dev
		}
		switch {
		case d.at < e12CrashAt:
			if dev > res.syncedJit {
				res.syncedJit = dev
			}
		case d.at <= res.takeoverAt:
			if dev > res.holdoverJit {
				res.holdoverJit = dev
			}
		}
	}
	elapsed := sim.Duration(res.takeoverAt-e12CrashAt) + sync.Period
	res.bound = 2 * clock.HoldoverUncertainty(sys.Syncer.Cfg, elapsed)
	return res
}
