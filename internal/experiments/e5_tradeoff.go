package experiments

import (
	"fmt"
	"sort"

	"canec/internal/baseline"
	"canec/internal/core"
	"canec/internal/edf"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// E5PrioritySlotTradeoff sweeps the priority-slot length Δt_p and
// measures the two failure modes §3.4 discusses:
//
//   - Δt_p too large → many distinct deadlines share a priority slot and
//     their order is resolved arbitrarily by the other identifier fields
//     (scheduling inversions among "equal priorities");
//   - Δt_p too small → the time horizon ΔH = 249·Δt_p shrinks below the
//     deadline spread, so far deadlines saturate at P_max and are
//     mis-ordered until they come close.
//
// The paper argues 250 slots of ≈ one CAN frame each suffice for 32–64
// node systems; the sweep shows the miss/inversion minimum indeed sits
// near that operating point.
func E5PrioritySlotTradeoff(seed uint64) Result {
	tbl := stats.Table{
		Title:   "Δt_p sweep at fixed load 0.85 (deadlines spread 2..100 ms)",
		Headers: []string{"Δt_p µs", "horizon ms", "miss%", "inversions%", "beyondHorizon%", "promos/job"},
	}
	for _, slotLen := range []sim.Duration{
		20 * sim.Microsecond, 80 * sim.Microsecond, 160 * sim.Microsecond,
		640 * sim.Microsecond, 2560 * sim.Microsecond, 10240 * sim.Microsecond,
	} {
		row := e5Run(seed, slotLen)
		tbl.Rows = append(tbl.Rows, row)
	}
	return Result{
		ID:    "E5",
		Title: "priority-slot length Δt_p trade-off (§3.4)",
		Table: tbl,
		Notes: []string{
			"inversions% = completed transmissions that overtook a pending message with an earlier deadline",
			"large Δt_p coarsens EDF: many deadlines share a slot and inversions grow steadily;",
			"small Δt_p buys resolution but (a) pushes beyondHorizon% up — those releases sit at P_max",
			"with undefined order — and (b) multiplies the promotion overhead (promos/job);",
			"the paper's operating point (Δt_p ≈ one frame, 250 slots) balances the three columns",
		},
	}
}

func e5Run(seed uint64, slotLen sim.Duration) []string {
	ft := actualFrameTime
	rng := sim.NewRNG(seed)
	streams := workload.MixedSet(12, 0.85, ft, rng)
	horizon := sim.Time(2 * sim.Second)
	jobs := workload.GenJobs(rng, streams, horizon)

	bands := core.DefaultBands()
	bands.SRT.SlotLen = slotLen
	out := baseline.RunEDF(streams, jobs, bands, seed, horizon+200*sim.Millisecond)

	inv := e5Inversions(out, ft)
	promos := float64(out.Promotions) / float64(len(jobs))
	band := edf.Band{Min: bands.SRT.Min, Max: bands.SRT.Max, SlotLen: slotLen}
	// Fraction of jobs released with laxity beyond the representable
	// horizon: their priority saturates at P_max and their order is
	// undefined until they come closer — the correctness risk of a small
	// Δt_p (§3.4).
	beyond := 0
	for _, j := range jobs {
		if j.Deadline-j.Release > band.Horizon() {
			beyond++
		}
	}
	return []string{
		fmt.Sprintf("%.0f", float64(slotLen)/1000),
		fmt.Sprintf("%.1f", float64(band.Horizon())/float64(sim.Millisecond)),
		stats.Pct(out.MissRatio()),
		stats.Pct(inv),
		stats.Pct(float64(beyond) / float64(len(jobs))),
		fmt.Sprintf("%.1f", promos),
	}
}

// e5Inversions counts, over completed jobs ordered by completion, the
// fraction whose transmission overtook another job that was already
// released, still pending, and had an earlier deadline — i.e. decisions a
// clairvoyant EDF scheduler would not have taken.
func e5Inversions(out baseline.Outcome, ft func(int) sim.Duration) float64 {
	done := make([]baseline.JobDone, 0, len(out.Jobs))
	for _, j := range out.Jobs {
		if j.Completed > 0 {
			done = append(done, j)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Completed < done[j].Completed })
	if len(done) == 0 {
		return 0
	}
	inv := 0
	// For each completion, scan the following completions that were
	// already released when this transmission started; count one
	// inversion if any of them had an earlier deadline.
	for i, a := range done {
		txStart := a.Completed - ft(8) // approximation: worst-case frame
		for j := i + 1; j < len(done) && j-i <= 200; j++ {
			// done is completion-ordered; releases are not, so scan a
			// bounded window of later completions.
			b := done[j]
			if b.Job.Release > txStart {
				continue // not yet pending when a was chosen
			}
			if b.Job.Deadline < a.Job.Deadline {
				inv++
				break
			}
		}
	}
	return float64(inv) / float64(len(done))
}
