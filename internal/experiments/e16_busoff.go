package experiments

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E16BusOffAttack sweeps the corruption rate of a scripted bus-off
// adversary (a station firing bit errors into the victim's calendar
// slots) against the fault-confinement machine, undefended and defended.
// Undefended rows show the raw weapon: how fast the TEC ramp drives the
// victim bus-off, how long it stays down under re-attack, and how many
// bytes of its reserved HRT bandwidth background NRT traffic reclaims
// through arbitration while it is silent (§3.2, §5 — the reclamation
// E11 measures for crashes applies to bus-off outages too). Defended
// rows arm the slot-timed guardian escalation: the attacker is isolated
// within a few victim-slot occurrences, the victim's supervisor brings
// it back under capped-exponential backoff, and healthy nodes' HRT
// slots never miss either way.
func E16BusOffAttack(seed uint64) Result {
	tbl := stats.Table{
		Title: "bus-off adversary sweep: attack rate vs confinement, recovery and guardian isolation",
		Headers: []string{"rate", "guardian", "busoff ms", "busoffs", "isolate ms",
			"victim down ms", "reclaimed B", "healthy misses", "violations"},
	}
	base := e16Exec(seed, 0, false)
	for _, rate := range []float64{0.05, 0.25, 0.5, 1.0} {
		for _, guarded := range []bool{false, true} {
			run := e16Exec(seed, rate, guarded)
			reclaimed := 0
			for _, w := range run.downWins {
				reclaimed += e16BytesIn(run.deliv, w[0], w[1]) - e16BytesIn(base.deliv, w[0], w[1])
			}
			guardian := "off"
			if guarded {
				guardian = "on"
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%.2f", rate),
				guardian,
				e16MS(run.busoffAt),
				fmt.Sprintf("%d", run.busoffs),
				e16MS(run.isolatedAt),
				fmt.Sprintf("%.1f", float64(run.downTotal)/float64(sim.Millisecond)),
				fmt.Sprintf("%d", reclaimed),
				fmt.Sprintf("%d", run.healthyMisses),
				fmt.Sprintf("%d", run.violations),
			})
		}
	}
	return Result{
		ID:    "E16",
		Title: "bus-off adversary campaigns: attack-rate sweep (Bosch §8 fault confinement)",
		Table: tbl,
		Notes: []string{
			"attacker fires into victim slots over [300,700) ms; rates below ~0.11 lose the +8/-1 TEC race and never reach bus-off",
			"busoff ms = attack start to the victim's first bus-off entry; isolate ms = attack start to guardian isolation of the attacker",
			"victim down = total bus-off time (recovery = 128*11 recessive bits + supervised backoff against flapping re-attack)",
			"reclaimed B = extra NRT frame-data bytes on the wire inside the victim's outage windows vs the attack-free run;",
			"  unlike a crash outage (E11), a bus-off under sustained re-attack frees nothing - attacker pulses and error bursts eat the reservation (negative = net loss)",
			"healthy misses = HRT slot misses on subjects not published by the victim; the victim's error bursts bleed into healthy slots only undefended",
			"violations = chaos trace invariant failures (hrt-survival and late healthy deliveries, expected undefended at decisive rates; must be 0 defended)",
		},
	}
}

const (
	e16Horizon  = 1200 * sim.Millisecond
	e16AttackAt = 300 * sim.Millisecond
	e16AttackTo = 700 * sim.Millisecond
	e16Victim   = 1
	e16Attacker = 8
	e16Chunk    = 128
)

type e16Delivery struct {
	at sim.Time
	n  int
}

type e16Result struct {
	busoffAt, isolatedAt sim.Time // relative to attack start; -1 = never
	busoffs              int
	downWins             [][2]sim.Time
	downTotal            sim.Duration
	healthyMisses        int
	violations           int
	deliv                []e16Delivery
}

func e16MS(rel sim.Time) string {
	if rel < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(rel)/float64(sim.Millisecond))
}

// e16BytesIn sums best-effort wire bytes in [from, to).
func e16BytesIn(deliv []e16Delivery, from, to sim.Time) int {
	total := 0
	for _, d := range deliv {
		if d.at >= from && d.at < to {
			total += d.n
		}
	}
	return total
}

// e16Calendar reserves two victim slots (node 1, so a successful attack
// frees a sizable reservation) and three healthy ones (nodes 2-4), all on
// one 10 ms rate.
func e16Calendar() (*calendar.Calendar, error) {
	cfg := calendar.DefaultConfig()
	reqs := []calendar.Request{
		{Subject: 0x730, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x734, Publisher: 1, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x731, Publisher: 2, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x732, Publisher: 3, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0x733, Publisher: 4, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
	}
	return calendar.Plan(cfg, reqs)
}

// e16Exec runs one attack campaign (rate 0 = attack-free baseline) with
// the confinement machine on and the lifecycle supervisor owning bus-off
// recovery, and reduces the trace to the sweep's measurements.
func e16Exec(seed uint64, rate float64, guarded bool) e16Result {
	cal, err := e16Calendar()
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 9, Seed: seed, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * sim.Microsecond,
		ConfineFaults:    true,
		Observe:          obs.Default(),
	})
	if err != nil {
		panic(err)
	}
	script := chaos.Script{}
	if rate > 0 {
		script.Events = []chaos.Event{{
			Kind:    "busoff_attack",
			AtMS:    float64(e16AttackAt) / float64(sim.Millisecond),
			UntilMS: float64(e16AttackTo) / float64(sim.Millisecond),
			Node:    e16Attacker, Victim: e16Victim, Rate: rate,
		}}
	}
	if guarded {
		script.Guardian = true
		script.GuardianSlotLimit = e16SlotLimit
	}
	lc := core.NewLifecycle(sys)
	camp, err := chaos.NewCampaign(sys, lc, script)
	if err != nil {
		panic(err)
	}
	lc.EnableBusOffRecovery(core.DefaultBusOffPolicy())
	end := sys.Cfg.Epoch + e16Horizon

	// HRT publishers, one per slot; node 5 subscribes to all of them.
	for _, s := range cal.Slots {
		s := s
		subj := binding.Subject(s.Subject)
		node := int(s.Publisher)
		ch, err := sys.Node(node).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		var loop func(r int64)
		loop = func(r int64) {
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round + s.Ready - 300*sim.Microsecond
			at := sys.Clocks[node].WhenLocal(sys.K.Now(), local)
			if at >= end {
				return
			}
			sys.K.At(at, func() {
				ch.Publish(core.Event{Subject: subj, Payload: []byte{byte(r)}})
				loop(s.NextActive(r + 1))
			})
		}
		loop(s.NextActive(0))
		sub, err := sys.Node(5).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(core.Event, core.DeliveryInfo) {}, nil); err != nil {
			panic(err)
		}
	}
	camp.Install()

	// Saturating background bulk, node 6 -> node 7, resolving reclaimed
	// bytes at frame granularity inside the victim's outage windows. The
	// top-up is bounded per tick, not queue-depth-gated: the attack ramps
	// every receiver's REC, so node 6 dips error-passive and sheds its NRT
	// queue — an unbounded "fill to depth 4" loop would spin forever
	// against a queue the shed keeps empty.
	bulk, err := sys.Node(6).MW.NRTEC(0x7fe)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(core.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	sub, _ := sys.Node(7).MW.NRTEC(0x7fe)
	sub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
		func(core.Event, core.DeliveryInfo) {}, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= end {
			return
		}
		for i := 0; i < 4 && bulk.QueuedChains() < 4; i++ {
			bulk.Publish(core.Event{Subject: 0x7fe, Payload: make([]byte, e16Chunk)})
		}
		sys.K.After(sim.Millisecond, feed)
	}
	sys.K.At(0, feed)

	sys.Run(end)

	res := e16Result{busoffAt: -1, isolatedAt: -1}
	victimSubjects := map[uint64]bool{0x730: true, 0x734: true}
	var downAt sim.Time = -1
	grace := 2 * sim.Duration(cal.Round)
	for _, r := range sys.Obs.Records() {
		switch r.Stage {
		case obs.StageBusOff:
			if r.Node != e16Victim {
				break
			}
			res.busoffs++
			if res.busoffAt < 0 {
				res.busoffAt = r.At - e16AttackAt
			}
			downAt = r.At
		case obs.StageBusOffRecovered:
			if r.Node != e16Victim || downAt < 0 {
				break
			}
			res.downWins = append(res.downWins, [2]sim.Time{downAt, r.At})
			res.downTotal += sim.Duration(r.At - downAt)
			downAt = -1
		case obs.StageGuardIsolated:
			if r.Node == e16Attacker && res.isolatedAt < 0 {
				res.isolatedAt = r.At - e16AttackAt
			}
		case obs.StageMissed:
			if victimSubjects[r.Subject] {
				break
			}
			if r.At >= e16AttackAt && r.At <= e16AttackTo+sim.Time(grace) {
				res.healthyMisses++
			}
		}
	}
	if downAt >= 0 { // still bus-off at trace end
		res.downWins = append(res.downWins, [2]sim.Time{downAt, end})
		res.downTotal += sim.Duration(end - downAt)
	}
	res.violations = len(camp.Finish(0).Violations)
	for _, r := range sys.Obs.Records() {
		if r.Stage == obs.StageTxOK && r.Node == 6 {
			res.deliv = append(res.deliv, e16Delivery{at: r.At, n: 8})
		}
	}
	return res
}

// e16SlotLimit is the guardian's slot-targeted isolation threshold for
// the defended rows: high enough that the victim demonstrably reaches
// bus-off before the attacker is isolated (the attacker accrues ~2
// slot-targeted violations per round), low enough that isolation lands
// well inside the attack window.
var e16SlotLimit = 20
