package experiments

import "testing"

// TestE17PredictionsBoundMeasurement is the tentpole validation gate:
// over seeded chaos campaigns, the admission-grade miss prediction must
// upper-bound the measured late mass, the model-faithful P99 must agree
// with the measured P99 within the histogram's growth factor, and the
// chaos invariants must hold.
func TestE17PredictionsBoundMeasurement(t *testing.T) {
	res := E17ProbValidation(1)
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	sawBitError, sawOmission := 0, 0
	var prevMeas float64
	for i, row := range res.Table.Rows {
		if row[11] != "true" {
			t.Fatalf("row %d failed its checks: %v", i, row)
		}
		if n := cell(t, row, 2); n < 3000 {
			t.Fatalf("row %d has too few samples (%v) for tail validation: %v", i, n, row)
		}
		if row[10] != "0" {
			t.Fatalf("row %d has chaos invariant violations: %v", i, row)
		}
		predMiss, measMiss := cell(t, row, 3), cell(t, row, 4)
		if predMiss < measMiss {
			t.Fatalf("row %d prediction does not bound measurement: %v", i, row)
		}
		predP99, measP99 := cell(t, row, 5), cell(t, row, 6)
		growth := cell(t, row, 7)
		if ratio := predP99 / measP99; ratio < 1/growth || ratio > growth {
			t.Fatalf("row %d P99 outside rank-error band (ratio %v, growth %v): %v",
				i, ratio, growth, row)
		}
		switch row[0] {
		case "bit_error":
			sawBitError++
			if measMiss < prevMeas {
				t.Fatalf("row %d: measured miss should grow with the error rate: %v", i, row)
			}
			prevMeas = measMiss
		case "omission":
			sawOmission++
			predLoss, measLoss := cell(t, row, 8), cell(t, row, 9)
			if predLoss <= 0 || measLoss <= 0 {
				t.Fatalf("omission row lost nothing: %v", row)
			}
		}
	}
	if sawBitError < 3 || sawOmission < 1 {
		t.Fatalf("campaign mix wrong: %d bit_error, %d omission", sawBitError, sawOmission)
	}
}
