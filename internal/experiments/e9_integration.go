package experiments

import (
	"encoding/binary"
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E9Integration runs the full system — all three channel classes, clock
// synchronization, drifting clocks — at three network sizes and reports
// the per-class service quality table (§2.2, §5): HRT latency is constant
// with ≈0 application jitter, SRT latency is load-dependent with a small
// miss tail, NRT bulk goodput absorbs the remainder.
func E9Integration(seed uint64) Result {
	tbl := stats.Table{
		Title: "per-class service quality, full mixed system (1 s of traffic)",
		Headers: []string{"nodes", "class", "events", "latency µs (mean)", "p99 µs",
			"appJitter µs", "miss/lost", "busUtil%"},
	}
	var snaps []PromSnapshot
	for _, n := range []int{8, 16, 32} {
		rows, prom := e9Run(seed, n)
		tbl.Rows = append(tbl.Rows, rows...)
		if prom != "" {
			snaps = append(snaps, PromSnapshot{Label: fmt.Sprintf("nodes%d", n), Text: prom})
		}
	}
	return Result{
		ID:    "E9",
		Prom:  snaps,
		Title: "full mixed-class integration (§2.2, §5)",
		Table: tbl,
		Notes: []string{
			"HRT latency = publish→notification: constant by construction (delivery at the deadline)",
			"HRT jitter stays at clock-precision level regardless of network size and load",
			"SRT latency grows with contention; NRT absorbs leftover bandwidth",
		},
	}
}

func e9Run(seed uint64, nodes int) ([][]string, string) {
	// One HRT channel per 4 nodes; SRT diagnostics from every node; one
	// bulk NRT transfer.
	cfg := calendar.DefaultConfig()
	var slots []calendar.Slot
	nHRT := nodes / 4
	for i := 0; i < nHRT; i++ {
		slots = append(slots, calendar.Slot{
			Subject: uint64(0x800 + i), Publisher: can.TxNode(i), Payload: 8, Periodic: true,
		})
	}
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond, slots...)
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: nodes, Seed: seed, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 100 * sim.Microsecond,
		Observe:          metricsConfig(),
	})
	if err != nil {
		panic(err)
	}
	const rounds = 100
	end := sys.Cfg.Epoch + rounds*cal.Round - 1

	hrtLat := stats.NewSeries("hrtLat")
	var hrtTimes []sim.Time
	hrtMiss := 0
	for i := 0; i < nHRT; i++ {
		i := i
		subj := binding.Subject(0x800 + i)
		ch, err := sys.Node(i).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		var loop func(r int64)
		loop = func(r int64) {
			if r >= rounds {
				return
			}
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round - 200*sim.Microsecond
			sys.K.At(sys.Clocks[i].WhenLocal(sys.K.Now(), local), func() {
				p := make([]byte, 7)
				putTS56(p, sys.K.Now())
				ch.Publish(core.Event{Subject: subj, Payload: p})
				loop(r + 1)
			})
		}
		loop(0)
		sub, err := sys.Node((i + 1) % nodes).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				hrtLat.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
				if i == 0 {
					hrtTimes = append(hrtTimes, di.DeliveredAt)
				}
			},
			func(e core.Exception) {
				if e.Kind == core.ExcSlotMissed {
					hrtMiss++
				}
			})
	}

	srtLat := stats.NewSeries("srtLat")
	srtMiss, srtDrop, srtSent := 0, 0, 0
	for i := 0; i < nodes; i++ {
		i := i
		subj := binding.Subject(0x900 + i)
		ch, err := sys.Node(i).MW.SRTEC(subj)
		if err != nil {
			panic(err)
		}
		ch.Announce(core.ChannelAttrs{}, func(e core.Exception) {
			switch e.Kind {
			case core.ExcDeadlineMissed:
				srtMiss++
			case core.ExcValidityExpired:
				srtDrop++
			}
		})
		sub, err := sys.Node((i + 3) % nodes).MW.SRTEC(subj)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				srtLat.ObserveDuration(di.DeliveredAt - getTS56(ev.Payload))
			}, nil)
		var loop func()
		loop = func() {
			if sys.K.Now() >= end {
				return
			}
			now := sys.Node(i).MW.LocalTime()
			p := make([]byte, 8)
			putTS56(p, sys.K.Now())
			ch.Publish(core.Event{Subject: subj, Payload: p,
				Attrs: core.EventAttrs{
					Deadline:   now + 10*sim.Millisecond,
					Expiration: now + 30*sim.Millisecond,
				}})
			srtSent++
			sys.K.After(sys.K.RNG().ExpDuration(sim.Duration(nodes)*2*sim.Millisecond), loop)
		}
		sys.K.At(sys.Cfg.Epoch, loop)
	}

	nrtBytes := 0
	bulk, err := sys.Node(nodes - 1).MW.NRTEC(0xA00)
	if err != nil {
		panic(err)
	}
	if err := bulk.Announce(core.ChannelAttrs{Prio: 254, Fragmentation: true}, nil); err != nil {
		panic(err)
	}
	bsub, err := sys.Node(0).MW.NRTEC(0xA00)
	if err != nil {
		panic(err)
	}
	bsub.Subscribe(core.ChannelAttrs{Fragmentation: true}, core.SubscribeAttrs{},
		func(ev core.Event, _ core.DeliveryInfo) { nrtBytes += len(ev.Payload) }, nil)
	var feed func()
	feed = func() {
		if sys.K.Now() >= end {
			return
		}
		if bulk.QueuedChains() < 2 {
			bulk.Publish(core.Event{Subject: 0xA00, Payload: make([]byte, 1024)})
		}
		sys.K.After(sim.Millisecond, feed)
	}
	sys.K.At(sys.Cfg.Epoch, feed)

	sys.Run(end)

	util := fmt.Sprintf("%.1f", 100*sys.Utilization())
	jitter := stats.PeriodJitter(hrtTimes, cal.Round)
	secs := float64(rounds*cal.Round) / float64(sim.Second)
	return [][]string{
		{fmt.Sprint(nodes), "HRT", fmt.Sprint(hrtLat.N()),
			stats.Micros(hrtLat.Mean()), stats.Micros(hrtLat.Quantile(0.99)),
			stats.Micros(float64(jitter)), fmt.Sprint(hrtMiss), util},
		{fmt.Sprint(nodes), "SRT", fmt.Sprint(srtLat.N()),
			stats.Micros(srtLat.Mean()), stats.Micros(srtLat.Quantile(0.99)),
			"-", fmt.Sprintf("%d/%d", srtMiss, srtDrop), util},
		{fmt.Sprint(nodes), "NRT", fmt.Sprint(nrtBytes / 1024),
			fmt.Sprintf("(%.0f KiB/s)", float64(nrtBytes)/1024/secs), "-", "-", "0", util},
	}, promText(sys.Obs)
}

// putTS56/getTS56 embed a 56-bit kernel timestamp in event payloads so
// subscribers can compute true end-to-end latency.
func putTS56(dst []byte, t sim.Time) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(t))
	copy(dst, buf[:7])
}

func getTS56(src []byte) sim.Time {
	var buf [8]byte
	copy(buf[:7], src)
	return sim.Time(binary.LittleEndian.Uint64(buf[:]))
}
