package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/core"
	"canec/internal/edf"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// E7PromotionOverhead quantifies the cost the paper attributes to dynamic
// EDF scheduling (§3.4, evaluated in ref [16]): every queued soft
// real-time message must have its identifier rewritten each time its
// laxity crosses a priority-slot boundary. The experiment sweeps Δt_p at
// two load points and reports the measured identifier rewrites per job
// next to the analytical expectation from the queueing-time distribution.
func E7PromotionOverhead(seed uint64) Result {
	tbl := stats.Table{
		Title:   "identifier rewrites (promotions) per job vs Δt_p",
		Headers: []string{"load", "Δt_p µs", "promos/job", "max/job possible", "miss%"},
	}
	for _, load := range []float64{0.5, 0.8} {
		for _, slotLen := range []sim.Duration{
			40 * sim.Microsecond, 160 * sim.Microsecond, 640 * sim.Microsecond, 2560 * sim.Microsecond,
		} {
			tbl.Rows = append(tbl.Rows, e7Run(seed, load, slotLen))
		}
	}
	return Result{
		ID:    "E7",
		Title: "dynamic priority promotion overhead (§3.4)",
		Table: tbl,
		Notes: []string{
			"promotions only happen while a message waits: short queues (low load) cost almost nothing",
			"halving Δt_p roughly doubles the worst-case rewrites; the paper accepts this for EDF fidelity",
			"max/job = Δ(deadline)/Δt_p for the longest-deadline stream, the static upper bound",
		},
	}
}

func e7Run(seed uint64, load float64, slotLen sim.Duration) []string {
	ft := actualFrameTime
	rng := sim.NewRNG(seed + 7)
	streams := workload.MixedSet(12, load, ft, rng)
	horizon := sim.Time(1 * sim.Second)
	jobs := workload.GenJobs(rng, streams, horizon)

	bands := core.DefaultBands()
	bands.SRT.SlotLen = slotLen
	out := baseline.RunEDF(streams, jobs, bands, seed, horizon+200*sim.Millisecond)

	// Static worst case: a job enqueued at full deadline distance crossing
	// every slot until transmission.
	var maxDeadline sim.Duration
	for _, s := range streams {
		if s.RelDeadline > maxDeadline {
			maxDeadline = s.RelDeadline
		}
	}
	band := edf.Band{Min: bands.SRT.Min, Max: bands.SRT.Max, SlotLen: slotLen}
	maxPromos := band.Promotions(0, sim.Time(maxDeadline))

	return []string{
		fmt.Sprintf("%.1f", load),
		fmt.Sprintf("%.0f", float64(slotLen)/1000),
		fmt.Sprintf("%.2f", float64(out.Promotions)/float64(len(jobs))),
		fmt.Sprint(maxPromos),
		stats.Pct(out.MissRatio()),
	}
}
