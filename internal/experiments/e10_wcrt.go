package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/can"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// E10WCRTAnalysis validates the fixed-priority machinery against theory:
// for an SAE-benchmark-style periodic message set under deadline-monotonic
// priorities (the off-line feasibility approach of Tindell & Burns the
// paper cites in §4), the classical worst-case response-time analysis
// must upper-bound — and reasonably track — the simulated worst observed
// response times.
func E10WCRTAnalysis(seed uint64) Result {
	tbl := stats.Table{
		Title:   "Tindell/Burns WCRT bound vs simulated worst response time (DM priorities, 2 s run)",
		Headers: []string{"stream", "period ms", "payload", "prio", "bound µs", "simWorst µs", "bound/sim", "deadlineOK"},
	}

	// SAE-flavoured set: a few fast control signals, mid-rate sensors,
	// slow status messages, across 6 nodes.
	streams := []workload.Stream{
		{Node: 0, Period: 5 * sim.Millisecond, RelDeadline: 5 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 5 * sim.Millisecond, RelDeadline: 5 * sim.Millisecond, Payload: 8},
		{Node: 2, Period: 10 * sim.Millisecond, RelDeadline: 10 * sim.Millisecond, Payload: 6},
		{Node: 3, Period: 10 * sim.Millisecond, RelDeadline: 10 * sim.Millisecond, Payload: 8},
		{Node: 4, Period: 20 * sim.Millisecond, RelDeadline: 20 * sim.Millisecond, Payload: 4},
		{Node: 0, Period: 50 * sim.Millisecond, RelDeadline: 50 * sim.Millisecond, Payload: 8},
		{Node: 1, Period: 100 * sim.Millisecond, RelDeadline: 100 * sim.Millisecond, Payload: 8},
		{Node: 5, Period: 1000 * sim.Millisecond, RelDeadline: 1000 * sim.Millisecond, Payload: 8},
	}
	deadlines := make([]sim.Duration, len(streams))
	for i, s := range streams {
		deadlines[i] = s.RelDeadline
	}
	prios, err := baseline.DeadlineMonotonic(deadlines, 2, 250)
	if err != nil {
		panic(err)
	}
	set := make([]baseline.MsgSpec, len(streams))
	for i, s := range streams {
		set[i] = baseline.MsgSpec{Prio: prios[i], Period: s.Period, Payload: s.Payload}
	}

	jobs := workload.GenJobs(sim.NewRNG(seed), streams, 2*sim.Second)
	out := baseline.RunDM(streams, jobs, 2, 250, seed, 3*sim.Second)
	worst := make([]sim.Duration, len(streams))
	for _, jd := range out.Jobs {
		if jd.Completed > 0 {
			if rt := jd.Completed - jd.Job.Release; rt > worst[jd.Job.Stream] {
				worst[jd.Job.Stream] = rt
			}
		}
	}
	for i, s := range streams {
		bound, err := baseline.WCRT(set, set[i], can.DefaultBitRate)
		boundStr, ratio, ok := "unschedulable", "-", "?"
		if err == nil {
			boundStr = stats.Micros(float64(bound))
			if worst[i] > 0 {
				ratio = fmt.Sprintf("%.2f", float64(bound)/float64(worst[i]))
			}
			ok = fmt.Sprint(bound <= s.RelDeadline)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(i),
			fmt.Sprintf("%.0f", float64(s.Period)/float64(sim.Millisecond)),
			fmt.Sprint(s.Payload),
			fmt.Sprint(prios[i]),
			boundStr,
			stats.Micros(float64(worst[i])),
			ratio,
			ok,
		})
	}
	return Result{
		ID:    "E10",
		Title: "Tindell WCRT analysis vs simulation (§4)",
		Table: tbl,
		Notes: []string{
			"invariant: bound ≥ simWorst for every stream (analysis is safe);",
			"bound/sim close to 1 for low-priority streams (they actually see the interference),",
			"larger for high-priority ones (worst-case release phasing is rare in simulation)",
		},
	}
}
