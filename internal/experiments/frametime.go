package experiments

import (
	"canec/internal/can"
	"canec/internal/sim"
)

// actualFrameTime estimates the *expected* wire time of a frame with a
// p-byte payload (exact stuffing over random payload contents, mid-range
// identifier), as opposed to the worst-case bound. Using it to dimension
// workload utilization makes the "load" axis of the sweeps reflect real
// bus occupancy instead of the stuffing-pessimistic bound, so load = 1.0
// is true saturation.
func actualFrameTime(p int) sim.Duration {
	rng := sim.NewRNG(12345)
	id := can.MakeID(100, 5, 100)
	total := 0
	const samples = 64
	for i := 0; i < samples; i++ {
		data := make([]byte, p)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		total += can.WireBits(can.Frame{ID: id, Data: data})
	}
	return can.BitTime(total/samples, can.DefaultBitRate)
}

// minBitsFor/worstBitsFor re-export the frame-length bounds for tests.
func minBitsFor(p int) int   { return can.MinFrameBits(p) }
func worstBitsFor(p int) int { return can.WorstCaseBits(p) }
