package experiments

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/clock"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
)

// E8ClockSync probes the relationship between synchronization quality and
// the inter-slot gap ΔG_min (§3.2): the reservation scheme is safe only
// while the real achieved precision π stays below the gap. The sweep
// lengthens the sync period (degrading π) while the calendar keeps
// assuming the paper's 40 µs gap; once the declared precision is a lie,
// adjacent tightly-packed slots from different publishers start
// overlapping in real time and late deliveries appear — exactly the
// failure the admission test exists to exclude.
func E8ClockSync(seed uint64) Result {
	tbl := stats.Table{
		Title:   "sync period vs achieved precision and HRT health (two adjacent slots, ΔG_min = 40 µs)",
		Headers: []string{"syncPeriod ms", "bound π µs", "measured π µs", "π<ΔG", "late", "slotMissed"},
	}
	for _, period := range []sim.Duration{
		20 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond,
		200 * sim.Millisecond, 500 * sim.Millisecond, 2000 * sim.Millisecond,
	} {
		tbl.Rows = append(tbl.Rows, e8Run(seed, period))
	}
	return Result{
		ID:    "E8",
		Title: "clock precision vs ΔG_min gap (§3.2)",
		Table: tbl,
		Notes: []string{
			"the calendar always declares the paper's 40 µs gap; rows where the real π exceeds it",
			"show degraded behaviour (late deliveries) — the admission test would reject such configs",
			"had the true precision been declared (Config.Precision), as the library requires",
		},
	}
}

func e8Run(seed uint64, period sim.Duration) []string {
	const maxDrift = 100.0
	syncCfg := clock.DefaultSyncConfig()
	syncCfg.Period = period

	calCfg := calendar.DefaultConfig()
	calCfg.Precision = 25 * sim.Microsecond // optimistic declaration
	cal, err := calendar.PackSequential(calCfg, 10*sim.Millisecond,
		calendar.Slot{Subject: 0x31, Publisher: 0, Payload: 8, Periodic: true},
		calendar.Slot{Subject: 0x32, Publisher: 1, Payload: 8, Periodic: true},
	)
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 4, Seed: seed, Calendar: cal,
		Sync: syncCfg, MaxDriftPPM: maxDrift,
		MaxInitialOffset: 200 * sim.Microsecond,
		Epoch:            3 * period,
	})
	if err != nil {
		panic(err)
	}
	const rounds = 150
	end := sys.Cfg.Epoch + rounds*cal.Round - 1

	// Publishers on nodes 0 and 1, subscribers on nodes 2 and 3.
	late, missed := 0, 0
	for i, subj := range []binding.Subject{0x31, 0x32} {
		i, subj := i, subj
		ch, err := sys.Node(i).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			panic(err)
		}
		var loop func(r int64)
		loop = func(r int64) {
			if r >= rounds {
				return
			}
			local := sys.Cfg.Epoch + sim.Time(r)*cal.Round - 300*sim.Microsecond
			sys.K.At(sys.Clocks[i].WhenLocal(sys.K.Now(), local), func() {
				ch.Publish(core.Event{Subject: subj, Payload: []byte{byte(r)}})
				loop(r + 1)
			})
		}
		loop(0)
		sub, err := sys.Node(2 + i).MW.HRTEC(subj)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
			func(_ core.Event, di core.DeliveryInfo) {
				if di.Late {
					late++
				}
			},
			func(e core.Exception) {
				if e.Kind == core.ExcSlotMissed {
					missed++
				}
			})
	}

	// Live precision sampling.
	var worst sim.Duration
	var sample func()
	sample = func() {
		if sk := clock.MaxSkew(sys.K.Now(), sys.Clocks); sk > worst {
			worst = sk
		}
		if sys.K.Now() < end {
			sys.K.After(5*sim.Millisecond, sample)
		}
	}
	sys.K.At(sys.Cfg.Epoch, sample)

	sys.Run(end)

	bound := clock.PrecisionBound(syncCfg, maxDrift)
	return []string{
		fmt.Sprintf("%.0f", float64(period)/float64(sim.Millisecond)),
		stats.Micros(float64(bound)),
		stats.Micros(float64(worst)),
		fmt.Sprint(worst < cal.Cfg.GapMin),
		fmt.Sprint(late),
		fmt.Sprint(missed),
	}
}
