package experiments

import (
	"encoding/binary"
	"fmt"

	"canec/internal/binding"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/value"
)

// A3ValueShedding evaluates the overload-management extension the paper
// points to via Jensen's value functions (ref [11], §2.2.2): during a
// sustained overload burst, compare
//
//	none    — unbounded queues, no expiration: everything is eventually
//	          sent, mostly far too late;
//	expire  — the paper's expiration mechanism (validity = 2×deadline);
//	value   — bounded queue with least-residual-value shedding.
//
// The metric is accrued value: Σ over delivered events of their value
// function evaluated at delivery lateness. Value-aware shedding spends
// the scarce bandwidth on events that still matter.
func A3ValueShedding(seed uint64) Result {
	tbl := stats.Table{
		Title:   "overload burst (≈2× capacity for 200 ms): accrued value by policy",
		Headers: []string{"policy", "published", "delivered", "shed", "expired", "accruedValue", "value/published%"},
	}
	for _, policy := range []string{"none", "expire", "value"} {
		tbl.Rows = append(tbl.Rows, a3Run(seed, policy))
	}
	return Result{
		ID:    "A3",
		Title: "extension: value-based load shedding (ref [11], §2.2.2)",
		Table: tbl,
		Notes: []string{
			"three stream classes share the node: hard (step value), sensor (linear decay 10 ms),",
			"report (plateau 0.5 for 100 ms); the burst offers ~2× the bus capacity",
			"expected ordering: value ≥ expire > none in accrued value — stale hard events",
			"waste bandwidth unless shed, and value shedding targets exactly those",
		},
	}
}

func a3Run(seed uint64, policy string) []string {
	sys, err := core.NewSystem(core.SystemConfig{Nodes: 2, Seed: seed})
	if err != nil {
		panic(err)
	}
	type class struct {
		subj binding.Subject
		fn   core.ValueFunc
	}
	classes := []class{
		{0x31, value.Step{}},
		{0x32, value.Linear{Grace: 10 * sim.Millisecond}},
		{0x33, value.Plateau{After: 0.5, Grace: 100 * sim.Millisecond}},
	}
	published, shed, expired, delivered := 0, 0, 0, 0
	var accrued float64

	if policy == "value" {
		sys.Node(0).MW.MaxQueuedSRT = 16
	}
	pubs := make([]*core.SRTEC, len(classes))
	for i, c := range classes {
		i, c := i, c
		ch, err := sys.Node(0).MW.SRTEC(c.subj)
		if err != nil {
			panic(err)
		}
		attrs := core.ChannelAttrs{}
		if policy == "value" {
			attrs.Value = c.fn
		}
		if err := ch.Announce(attrs, func(e core.Exception) {
			switch e.Kind {
			case core.ExcLoadShed:
				shed++
			case core.ExcValidityExpired:
				expired++
			}
		}); err != nil {
			panic(err)
		}
		pubs[i] = ch
		sub, err := sys.Node(1).MW.SRTEC(c.subj)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(ev core.Event, di core.DeliveryInfo) {
				delivered++
				deadline := sim.Time(binary.LittleEndian.Uint64(ev.Payload))
				accrued += c.fn.At(di.DeliveredAt - deadline)
			}, nil)
	}

	// Burst: each class publishes every 200 µs for 200 ms — three streams
	// of ~125 µs frames ≈ 1.9× the bus. Deadlines 5 ms out.
	const burst = 200 * sim.Millisecond
	var loop func(i int)
	loop = func(i int) {
		if sys.K.Now() > burst {
			return
		}
		now := sys.Node(0).MW.LocalTime()
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, uint64(now+5*sim.Millisecond))
		attrs := core.EventAttrs{Deadline: now + 5*sim.Millisecond}
		if policy == "expire" {
			attrs.Expiration = now + 10*sim.Millisecond
		}
		if err := pubs[i].Publish(core.Event{Subject: classes[i].subj, Payload: p, Attrs: attrs}); err == nil {
			published++
		}
		sys.K.After(200*sim.Microsecond, func() { loop(i) })
	}
	for i := range classes {
		i := i
		sys.K.At(sim.Time(i)*66*sim.Microsecond, func() { loop(i) })
	}
	sys.Run(2 * sim.Second) // let queues drain after the burst

	frac := 0.0
	if published > 0 {
		frac = accrued / float64(published)
	}
	return []string{
		policy,
		fmt.Sprint(published),
		fmt.Sprint(delivered),
		fmt.Sprint(shed),
		fmt.Sprint(expired),
		fmt.Sprintf("%.1f", accrued),
		stats.Pct(frac),
	}
}
