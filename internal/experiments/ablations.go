package experiments

import (
	"fmt"

	"canec/internal/baseline"
	"canec/internal/calendar"
	"canec/internal/core"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// A1PromotionAblation removes the dynamic priority increase of §3.4 —
// messages keep the priority computed at enqueue time — and measures what
// the promotion machinery actually buys. Without promotion, a message
// enqueued far from its deadline stays at a lenient priority even as the
// deadline closes in, so later-enqueued urgent traffic permanently
// overtakes it: deadline misses and inversions grow.
func A1PromotionAblation(seed uint64) Result {
	tbl := stats.Table{
		Title:   "dynamic promotion ON vs OFF (miss ratio across offered load)",
		Headers: []string{"load", "jobs", "promoted miss%", "static miss%", "promoted inv%", "static inv%"},
	}
	ft := actualFrameTime
	for _, load := range []float64{0.5, 0.7, 0.85, 0.92} {
		rng := sim.NewRNG(seed + uint64(load*100))
		streams := workload.MixedSet(12, load, ft, rng)
		// Widen the deadline spread beyond the EDF horizon so enqueue-time
		// priorities go stale: this is precisely the situation §3.4's
		// promotion exists for.
		for i := range streams {
			streams[i].RelDeadline = streams[i].Period + 30*sim.Millisecond
			streams[i].RelExpiration = 2 * streams[i].RelDeadline
		}
		horizon := sim.Time(2 * sim.Second)
		jobs := workload.GenJobs(rng, streams, horizon)
		runFor := horizon + 200*sim.Millisecond
		on := baseline.RunEDFOpts(streams, jobs,
			baseline.EDFOptions{Bands: core.DefaultBands()}, seed, runFor)
		off := baseline.RunEDFOpts(streams, jobs,
			baseline.EDFOptions{Bands: core.DefaultBands(), DisablePromotion: true}, seed, runFor)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", load),
			fmt.Sprint(len(jobs)),
			stats.Pct(on.MissRatio()),
			stats.Pct(off.MissRatio()),
			stats.Pct(e5Inversions(on, ft)),
			stats.Pct(e5Inversions(off, ft)),
		})
	}
	return Result{
		ID:    "A1",
		Title: "ablation: dynamic priority promotion (§3.4)",
		Table: tbl,
		Notes: []string{
			"OFF freezes each message at its enqueue-time priority slot",
			"with deadlines spread beyond the horizon, stale priorities mis-order traffic:",
			"inversions rise without promotion, and under load the misses follow",
		},
	}
}

// A2DejitterAblation disables the delivery-at-deadline machinery — events
// are notified on frame arrival — quantifying what the paper's §3.2
// middleware-layer jitter handling buys at each background load.
func A2DejitterAblation(seed uint64) Result {
	tbl := stats.Table{
		Title:   "delivery de-jittering ON vs OFF (application-level period jitter, µs)",
		Headers: []string{"bgLoad", "jitter ON µs", "jitter OFF µs", "latency ON µs", "latency OFF µs"},
	}
	for _, bg := range []float64{0, 0.3, 0.6, 0.9} {
		onJ, onL := a2Run(seed, bg, false)
		offJ, offL := a2Run(seed, bg, true)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f", bg),
			stats.Micros(float64(onJ)),
			stats.Micros(float64(offJ)),
			stats.Micros(onL),
			stats.Micros(offL),
		})
	}
	return Result{
		ID:    "A2",
		Title: "ablation: delivery at the deadline (§3.2)",
		Table: tbl,
		Notes: []string{
			"OFF delivers on frame arrival: the application inherits the full arbitration jitter,",
			"which grows with background load; ON pays a constant latency (the reserved deadline)",
			"for (near-)zero jitter — the paper's trade of latency for determinism",
		},
	}
}

func a2Run(seed uint64, bgLoad float64, deliverOnArrival bool) (sim.Duration, float64) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.PackSequential(cfg, 10*sim.Millisecond,
		calendar.Slot{Subject: uint64(e1Subject), Publisher: 0, Payload: 8, Periodic: true})
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: 3, Seed: seed, Calendar: cal, Epoch: sim.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	for _, n := range sys.Nodes {
		n.MW.DeliverOnArrival = deliverOnArrival
	}
	pub, _ := sys.Node(0).MW.HRTEC(e1Subject)
	if err := pub.Announce(core.ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		panic(err)
	}
	var times []sim.Time
	lat := stats.NewSeries("lat")
	sub, _ := sys.Node(1).MW.HRTEC(e1Subject)
	sub.Subscribe(core.ChannelAttrs{Payload: 7, Periodic: true}, core.SubscribeAttrs{},
		func(_ core.Event, di core.DeliveryInfo) {
			times = append(times, di.DeliveredAt)
			rel := (di.DeliveredAt - sys.Cfg.Epoch) % cal.Round
			lat.ObserveDuration(rel)
		}, nil)
	const rounds = 200
	for r := int64(0); r < rounds; r++ {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(core.Event{Subject: e1Subject, Payload: []byte{1}})
		})
	}
	if bgLoad > 0 {
		srt, _ := sys.Node(2).MW.SRTEC(0x98)
		srt.Announce(core.ChannelAttrs{}, nil)
		frame := actualFrameTime(8)
		gap := sim.Duration(float64(frame)/bgLoad) - frame
		var bgLoop func()
		bgLoop = func() {
			if sys.K.Now() >= sys.Cfg.Epoch+rounds*cal.Round {
				return
			}
			now := sys.Node(2).MW.LocalTime()
			srt.Publish(core.Event{Subject: 0x98, Payload: make([]byte, 8),
				Attrs: core.EventAttrs{Deadline: now + 5*sim.Millisecond}})
			sys.K.After(frame+gap, bgLoop)
		}
		sys.K.At(0, bgLoop)
	}
	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)
	return stats.PeriodJitter(times, cal.Round), lat.Mean()
}
