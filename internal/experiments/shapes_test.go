package experiments

import (
	"strconv"
	"testing"
)

// These tests pin the *shape* of each remaining experiment — who wins, in
// which direction the curves bend — rather than exact values, which is
// precisely the reproduction contract stated in EXPERIMENTS.md. They run
// complete experiments and are skipped with -short.

func TestE4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E4EDFvsDM(1)
	sawOverload := false
	for _, row := range res.Table.Rows {
		load, _ := strconv.ParseFloat(row[0], 64)
		edf := cell(t, row, 3)
		dm := cell(t, row, 4)
		oracle := cell(t, row, 5)
		edfWorst := cell(t, row, 6)
		dmWorst := cell(t, row, 7)
		if load <= 0.7 {
			// Comfortably schedulable region: nobody misses.
			if edf != 0 || dm != 0 || oracle != 0 {
				t.Fatalf("misses at load %v: %v", load, row)
			}
		}
		if load >= 1.0 {
			sawOverload = true
			// Past saturation: EDF degrades uniformly (total high) while
			// DM starves whole streams (its worst stream is total loss).
			if dmWorst < 99 {
				t.Fatalf("DM did not starve its victim stream at load %v: %v", load, row)
			}
			if oracle < edf-20 {
				t.Fatalf("oracle and EDF should collapse together at load %v: %v", load, row)
			}
			_ = edfWorst
		}
	}
	if !sawOverload {
		t.Fatal("sweep missed the overload region")
	}
}

func TestE5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E5PrioritySlotTradeoff(1)
	rows := res.Table.Rows
	// beyondHorizon% strictly decreases with Δt_p; promotions decrease;
	// inversions at the largest Δt_p exceed those at the paper's default.
	for i := 1; i < len(rows); i++ {
		if cell(t, rows[i], 4) > cell(t, rows[i-1], 4) {
			t.Fatalf("beyondHorizon not decreasing: %v -> %v", rows[i-1], rows[i])
		}
		if cell(t, rows[i], 5) > cell(t, rows[i-1], 5)+0.01 {
			t.Fatalf("promotions not decreasing: %v -> %v", rows[i-1], rows[i])
		}
	}
	defIdx := 2 // 160 µs row
	last := len(rows) - 1
	if cell(t, rows[last], 3) <= cell(t, rows[defIdx], 3) {
		t.Fatalf("coarse Δt_p should raise inversions: %v vs %v", rows[last], rows[defIdx])
	}
}

func TestE7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E7PromotionOverhead(1)
	rows := res.Table.Rows
	// Within each load block (4 rows), promos/job decreases with Δt_p;
	// and the higher load block dominates the lower at equal Δt_p.
	for b := 0; b < len(rows); b += 4 {
		for i := 1; i < 4; i++ {
			if cell(t, rows[b+i], 2) > cell(t, rows[b+i-1], 2)+0.01 {
				t.Fatalf("promos not decreasing in Δt_p: %v -> %v", rows[b+i-1], rows[b+i])
			}
		}
	}
	for i := 0; i < 4; i++ {
		if cell(t, rows[4+i], 2) < cell(t, rows[i], 2) {
			t.Fatalf("higher load should promote more: %v vs %v", rows[4+i], rows[i])
		}
	}
}

func TestE9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := E9Integration(1)
	for _, row := range res.Table.Rows {
		if row[1] != "HRT" {
			continue
		}
		// HRT application jitter stays at clock-precision level (< 30 µs)
		// at every network size, and nothing is missed.
		if jit := cell(t, row, 5); jit > 30 {
			t.Fatalf("HRT jitter %v µs at %s nodes", jit, row[0])
		}
		if row[6] != "0" {
			t.Fatalf("HRT misses: %v", row)
		}
	}
}

func TestA1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := A1PromotionAblation(1)
	last := res.Table.Rows[len(res.Table.Rows)-1] // highest load
	onMiss, offMiss := cell(t, last, 2), cell(t, last, 3)
	onInv, offInv := cell(t, last, 4), cell(t, last, 5)
	if offInv <= onInv {
		t.Fatalf("disabling promotion should raise inversions: on=%v off=%v", onInv, offInv)
	}
	if offMiss < onMiss {
		t.Fatalf("disabling promotion should not reduce misses: on=%v off=%v", onMiss, offMiss)
	}
}

func TestA2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := A2DejitterAblation(1)
	for i, row := range res.Table.Rows {
		onJ, offJ := cell(t, row, 1), cell(t, row, 2)
		if onJ != 0 {
			t.Fatalf("de-jittered delivery has jitter: %v", row)
		}
		if i > 0 && offJ < 50 {
			t.Fatalf("raw delivery under load should jitter ≥50µs: %v", row)
		}
	}
}

func TestA3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	res := A3ValueShedding(1)
	vals := map[string]float64{}
	for _, row := range res.Table.Rows {
		vals[row[0]] = cell(t, row, 5)
	}
	if !(vals["value"] > vals["expire"] && vals["expire"] > vals["none"]) {
		t.Fatalf("accrued value ordering broken: %v", vals)
	}
	if vals["value"] < 2*vals["expire"] {
		t.Fatalf("value shedding should at least double expiration's accrued value: %v", vals)
	}
}
