package experiments

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/chaos"
	"canec/internal/clock"
	"canec/internal/control"
	"canec/internal/core"
	"canec/internal/gateway"
	"canec/internal/obs"
	"canec/internal/sim"
	"canec/internal/stats"
	"canec/internal/workload"
)

// E18ControlQoC closes the loop on the paper's central claim: that the
// event channel classes exist to serve applications with different
// timing needs. A PID-controlled double integrator rides its sensor and
// command frames over each class while background SRT load sweeps from
// idle to near saturation, and the quadratic quality-of-control cost
// measures what the bus actually did to the application. NRT (plain
// arbitration, no deadlines) degrades first as load grows, SRT
// (deadline-scheduled) later, and HRT (calendar-reserved slots) not at
// all — the paper's class hierarchy, read off a plant instead of a
// latency histogram. Bus-off attack rows knock the controller station
// out mid-run (Bosch §8 confinement on, guardian off), and relay rows
// add a store-and-forward hop between controller and plant (§2.2.1
// inter-bus channels).
func E18ControlQoC(seed uint64) Result {
	tbl := stats.Table{
		Title: "closed-loop quality of control vs channel class, bus load, faults and relay hops",
		Headers: []string{"class", "load", "campaign", "cost/s", "degrade",
			"settled ms", "overshoot", "stale", "applied", "lat p50 µs", "lat p99 µs"},
	}
	classes := []core.Class{core.HRT, core.SRT, core.NRT}
	baseline := map[core.Class]float64{}
	for _, class := range classes {
		for _, load := range []float64{0, 0.45, 0.85, 1.2} {
			q := e18Run(seed, class, load, false)
			if load == 0 {
				baseline[class] = q.CostPerSec
			}
			tbl.Rows = append(tbl.Rows, e18Row(q, load, "none", baseline[class]))
		}
	}
	for _, class := range classes {
		q := e18Run(seed, class, 0.45, true)
		tbl.Rows = append(tbl.Rows, e18Row(q, 0.45, "busoff", baseline[class]))
	}
	for _, load := range []float64{0, 0.45} {
		q := e18Relay(seed, load)
		tbl.Rows = append(tbl.Rows, e18Row(q, load, "+1 hop", baseline[core.SRT]))
	}
	return Result{
		ID:    "E18",
		Title: "closed-loop control: QoC vs channel class x load x faults x hops (§2.2, §5)",
		Table: tbl,
		Notes: []string{
			"one PID loop (double integrator, 10 ms sampling, setpoint step 1→0) per row; cost = ∫(q·e² + q_v·v² + r·u²)dt per second",
			"degrade = cost/s over the same class's idle-bus row; HRT rides reserved calendar slots and must stay ~1.0x at any load",
			"NRT degrades first (plain arbitration starves under load), SRT later (deadline scheduling holds until near saturation), the paper's class ranking",
			"busoff rows: an adversary fires bit errors into the controller station over [300,700) ms (confinement on, guardian off) — " +
				"the loop runs blind on a stale held command until the supervisor recovers the station",
			"+1 hop rows: controller lives across a store-and-forward gateway (200 µs); the extra hop taxes cost but deadline scheduling still settles the loop",
		},
	}
}

const (
	e18Horizon  = 1500 * sim.Millisecond
	e18Period   = 10 * sim.Millisecond
	e18Sensor   = 1
	e18Ctrl     = 2
	e18Attacker = 8
	e18Nodes    = 10
	e18SensSubj = 0x681
	e18CmdSubj  = 0x682
)

func e18Row(q control.QoC, load float64, campaign string, base float64) []string {
	settled := "-"
	if q.Settled {
		settled = fmt.Sprintf("%.0f", float64(q.SettlingTime)/float64(sim.Millisecond))
	}
	degrade := "-"
	if base > 0 {
		degrade = fmt.Sprintf("%.1fx", q.CostPerSec/base)
	}
	p50, p99 := "-", "-"
	if q.Latency != nil && q.Latency.N() > 0 {
		p50 = fmt.Sprintf("%.0f", q.Latency.Quantile(0.50))
		p99 = fmt.Sprintf("%.0f", q.Latency.Quantile(0.99))
	}
	return []string{
		q.Class,
		fmt.Sprintf("%.2f", load),
		campaign,
		fmt.Sprintf("%.4f", q.CostPerSec),
		degrade,
		settled,
		stats.Pct(q.Overshoot),
		fmt.Sprintf("%d", q.Stale),
		fmt.Sprintf("%d/%d", q.Applied, q.Commands),
		p50, p99,
	}
}

func e18LoopConfig(class core.Class) control.LoopConfig {
	return control.LoopConfig{
		Name: "cart", Plant: control.PlantDoubleIntegrator, Controller: control.ControllerPID,
		Class: class, Sensor: e18Sensor, ControllerNode: e18Ctrl, Actuator: e18Sensor,
		SensorSubject: e18SensSubj, CommandSubject: e18CmdSubj,
		Period: e18Period, Setpoint: 0, Initial: 1,
	}
}

// e18Background installs the MixedSet SRT load on sys: each stream's
// pre-generated job trace publishes on its own channel with the stream's
// deadline and expiration; one station subscribes to all of them so the
// load includes full delivery work, not just wire occupancy.
func e18Background(sys *core.System, load float64, seed uint64, end sim.Time) {
	if load <= 0 {
		return
	}
	rng := sim.NewRNG(seed + 18)
	streams := workload.MixedSet(e18Nodes-3, load, actualFrameTime, rng)
	horizon := end - sys.Cfg.Epoch
	jobs := workload.GenJobs(rng, streams, sim.Time(horizon))
	chans := make([]*core.SRTEC, len(streams))
	for i, s := range streams {
		subj := binding.Subject(0x400 + i)
		// Skip the loop's own stations so a crashed/attacked controller
		// doesn't silently remove background load with it.
		node := 3 + s.Node%(e18Nodes-3)
		ch, err := sys.Node(node).MW.SRTEC(subj)
		if err != nil {
			panic(err)
		}
		if err := ch.Announce(core.ChannelAttrs{}, nil); err != nil {
			panic(err)
		}
		chans[i] = ch
		sub, err := sys.Node(e18Nodes - 1).MW.SRTEC(subj)
		if err != nil {
			panic(err)
		}
		sub.Subscribe(core.ChannelAttrs{}, core.SubscribeAttrs{},
			func(core.Event, core.DeliveryInfo) {}, nil)
	}
	for _, j := range jobs {
		j := j
		s := streams[j.Stream]
		ch := chans[j.Stream]
		sys.K.At(sys.Cfg.Epoch+j.Release, func() {
			mw := sys.Node(3 + s.Node%(e18Nodes-3)).MW
			now := mw.LocalTime()
			p := make([]byte, s.Payload)
			ch.Publish(core.Event{Subject: binding.Subject(0x400 + j.Stream), Payload: p,
				Attrs: core.EventAttrs{
					Deadline:   now + sim.Time(s.RelDeadline),
					Expiration: now + sim.Time(s.RelExpiration),
				}})
		})
	}
}

// e18Run executes one single-segment row: the loop on the given class,
// MixedSet background at the given load, optionally a bus-off attack on
// the controller station.
func e18Run(seed uint64, class core.Class, load float64, attack bool) control.QoC {
	cfg := e18LoopConfig(class)
	var cal *calendar.Calendar
	if reqs := cfg.CalendarRequests(); len(reqs) > 0 {
		var err error
		cal, err = calendar.Plan(calendar.DefaultConfig(), reqs)
		if err != nil {
			panic(err)
		}
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Nodes: e18Nodes, Seed: seed, Calendar: cal,
		Sync:             clock.DefaultSyncConfig(),
		MaxDriftPPM:      100,
		MaxInitialOffset: 200 * sim.Microsecond,
		ConfineFaults:    true,
		Observe:          obs.Default(),
	})
	if err != nil {
		panic(err)
	}
	end := sys.Cfg.Epoch + e18Horizon

	var camp *chaos.Campaign
	if attack {
		lc := core.NewLifecycle(sys)
		camp, err = chaos.NewCampaign(sys, lc, chaos.Script{Events: []chaos.Event{{
			Kind: "busoff_attack", AtMS: 300, UntilMS: 700,
			Node: e18Attacker, Victim: e18Ctrl, Rate: 1,
		}}})
		if err != nil {
			panic(err)
		}
		lc.EnableBusOffRecovery(core.DefaultBusOffPolicy())
	}

	l, err := control.NewLoop(cfg, nil)
	if err != nil {
		panic(err)
	}
	if err := l.Install(sys.K, sys.Cfg.Epoch, end, func(n int) *core.Middleware {
		return sys.Node(n).MW
	}, nil); err != nil {
		panic(err)
	}
	e18Background(sys, load, seed, end)
	if camp != nil {
		camp.Install()
	}
	sys.Run(end)
	if camp != nil {
		camp.Finish(0)
	}
	return l.Report()
}

// e18Relay executes the relay-hop row: sensor and actuator live on
// segment A, the controller across a store-and-forward gateway on
// segment B (one kernel, two buses). Samples forward A→B, commands B→A;
// both legs ride SRT.
func e18Relay(seed uint64, load float64) control.QoC {
	k := sim.NewKernel(seed)
	segA, err := core.NewSystem(core.SystemConfig{Nodes: e18Nodes, Seed: seed, Kernel: k,
		ConfineFaults: true})
	if err != nil {
		panic(err)
	}
	segB, err := core.NewSystem(core.SystemConfig{Nodes: 3, Kernel: k})
	if err != nil {
		panic(err)
	}
	g, err := gateway.New(segA.Node(0).MW, segB.Node(2).MW, 200*sim.Microsecond)
	if err != nil {
		panic(err)
	}
	if err := g.ForwardSRT(e18SensSubj, gateway.AtoB); err != nil {
		panic(err)
	}
	if err := g.ForwardSRT(e18CmdSubj, gateway.BtoA); err != nil {
		panic(err)
	}

	cfg := e18LoopConfig(core.SRT)
	cfg.ControllerNode = e18Nodes // segB station 0, via the index mapping below
	l, err := control.NewLoop(cfg, nil)
	if err != nil {
		panic(err)
	}
	end := segA.Cfg.Epoch + e18Horizon
	if err := l.Install(k, segA.Cfg.Epoch, end, func(n int) *core.Middleware {
		if n >= e18Nodes {
			return segB.Node(n - e18Nodes).MW
		}
		return segA.Node(n).MW
	}, nil); err != nil {
		panic(err)
	}
	e18Background(segA, load, seed, end)
	k.Run(end)
	return l.Report()
}
