// Package edf implements the deadline-to-priority mapping for soft
// real-time event channels (paper §3.3–3.4): CAN's priority-based
// arbitration is turned into an (approximate) earliest-deadline-first
// scheduler by encoding the temporal distance to a message's transmission
// deadline — its laxity — in the 8-bit priority field of the identifier,
// quantized into priority slots of length Δt_p, and dynamically promoting
// queued messages as time passes.
package edf

import (
	"fmt"

	"canec/internal/can"
	"canec/internal/sim"
)

// Band describes the contiguous priority range available to soft
// real-time traffic. The paper's running example keeps priority 0 for HRT
// messages, 250 levels (1..250) for SRT and 5 levels (251..255) for NRT;
// it stresses that the split is configurable by the application.
type Band struct {
	// Min is the numerically smallest (most urgent) SRT priority.
	Min can.Prio
	// Max is the numerically largest (least urgent) SRT priority.
	Max can.Prio
	// SlotLen is Δt_p, the temporal width of one priority slot.
	SlotLen sim.Duration
}

// DefaultBand returns the paper's example: priorities 1..250 with a
// priority slot of roughly one worst-case CAN frame (160 µs at 1 Mbit/s),
// "a priority slot length of approximately one CAN-message".
func DefaultBand() Band {
	return Band{Min: 1, Max: 250, SlotLen: 160 * sim.Microsecond}
}

// Validate reports configuration errors.
func (b Band) Validate() error {
	if b.Min > b.Max {
		return fmt.Errorf("edf: empty priority band [%d,%d]", b.Min, b.Max)
	}
	if b.SlotLen <= 0 {
		return fmt.Errorf("edf: non-positive priority slot length %v", b.SlotLen)
	}
	return nil
}

// Levels returns the number of distinct priority levels in the band.
func (b Band) Levels() int { return int(b.Max) - int(b.Min) + 1 }

// Horizon returns the time horizon ΔH = (P_max − P_min) · Δt_p: the
// largest laxity the band can represent. Deadlines further away all map
// to P_max and may therefore be scheduled out of order until they come
// closer — the trade-off discussed in §3.4.
func (b Band) Horizon() sim.Duration {
	return sim.Duration(b.Levels()-1) * b.SlotLen
}

// PrioFor maps a message's transmission deadline to its current priority
// at local time now. Laxity (deadline − now) is quantized into slots of
// Δt_p; zero or negative laxity (deadline reached or passed) yields the
// band's most urgent priority; laxity at or beyond the horizon saturates
// at the least urgent priority.
func (b Band) PrioFor(now, deadline sim.Time) can.Prio {
	lax := deadline - now
	if lax <= 0 {
		return b.Min
	}
	slot := int64(lax / b.SlotLen)
	if slot >= int64(b.Levels()-1) {
		return b.Max
	}
	return b.Min + can.Prio(slot)
}

// NextChange returns the local time at which the priority of a message
// with the given deadline will next change (i.e. the promotion instant),
// or zero if the message already sits at the most urgent priority. This
// lets a scheduler arm exactly one timer per queued message rather than
// sweeping every Δt_p.
func (b Band) NextChange(now, deadline sim.Time) sim.Time {
	lax := deadline - now
	if lax <= 0 {
		return 0
	}
	slot := int64(lax / b.SlotLen)
	if slot == 0 {
		// Already in the most urgent slot: no further promotion.
		return 0
	}
	if slot >= int64(b.Levels()-1) {
		// Saturated at P_max: the first change happens when laxity drops
		// below the horizon.
		return deadline - b.Horizon() + 1
	}
	// Priority changes when the laxity crosses the current slot's lower
	// boundary: lax' = slot·Δt_p, i.e. at deadline − slot·Δt_p.
	return deadline - sim.Time(slot)*b.SlotLen + 1
}

// Promotions returns how many identifier rewrites a message queued from
// enqueue time until (at latest) its deadline will undergo — the dynamic
// scheduling overhead the paper weighs against static priorities (§3.4,
// evaluated in [16]).
func (b Band) Promotions(enqueue, deadline sim.Time) int {
	if deadline <= enqueue {
		return 0
	}
	first := int64((deadline - enqueue) / b.SlotLen)
	if first >= int64(b.Levels()-1) {
		first = int64(b.Levels() - 1)
	}
	return int(first)
}

// TieProbability estimates, for a uniform arrival of n ready messages
// with deadlines spread uniformly over window w, the probability that at
// least two map to the same priority slot (the "equal priorities" problem
// of §3.4). It is the birthday-problem bound over the number of slots the
// window spans; used by the E5 bench to position measurements against
// theory.
func (b Band) TieProbability(n int, w sim.Duration) float64 {
	if n <= 1 {
		return 0
	}
	slots := int64(w / b.SlotLen)
	if slots <= 0 {
		return 1
	}
	if int64(n) > slots {
		return 1
	}
	p := 1.0
	for i := 0; i < n; i++ {
		p *= float64(slots-int64(i)) / float64(slots)
	}
	return 1 - p
}
