package edf

import (
	"testing"
	"testing/quick"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestDefaultBand(t *testing.T) {
	b := DefaultBand()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Levels() != 250 {
		t.Fatalf("Levels = %d, want 250 (the paper's example)", b.Levels())
	}
	if b.Horizon() != 249*160*sim.Microsecond {
		t.Fatalf("Horizon = %v", b.Horizon())
	}
}

func TestValidate(t *testing.T) {
	if (Band{Min: 10, Max: 5, SlotLen: 1}).Validate() == nil {
		t.Fatal("inverted band accepted")
	}
	if (Band{Min: 1, Max: 250, SlotLen: 0}).Validate() == nil {
		t.Fatal("zero slot length accepted")
	}
}

func TestPrioForBoundaries(t *testing.T) {
	b := Band{Min: 1, Max: 250, SlotLen: 100 * sim.Microsecond}
	cases := []struct {
		lax  sim.Duration
		want can.Prio
	}{
		{-1 * sim.Millisecond, 1}, // past deadline: most urgent
		{0, 1},
		{1, 1},                         // within first slot
		{99 * sim.Microsecond, 1},      // still first slot
		{100 * sim.Microsecond, 2},     // second slot
		{150 * sim.Microsecond, 2},     //
		{24899 * sim.Microsecond, 249}, // last unsaturated slot
		{24900 * sim.Microsecond, 250}, // horizon: saturates
		{1 * sim.Second, 250},          // far future: saturates
	}
	now := sim.Time(10 * sim.Second)
	for _, c := range cases {
		if got := b.PrioFor(now, now+c.lax); got != c.want {
			t.Errorf("PrioFor(lax=%v) = %d, want %d", c.lax, got, c.want)
		}
	}
}

func TestPrioMonotoneInDeadline(t *testing.T) {
	// Earlier deadline must never map to a lower-urgency (numerically
	// higher) priority: this is what makes CAN arbitration implement EDF.
	b := DefaultBand()
	f := func(nowRaw uint32, d1Raw, d2Raw uint32) bool {
		now := sim.Time(nowRaw)
		d1 := now + sim.Time(d1Raw)
		d2 := now + sim.Time(d2Raw)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return b.PrioFor(now, d1) <= b.PrioFor(now, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrioMonotoneInTime(t *testing.T) {
	// As time passes, a message's priority may only become more urgent.
	b := DefaultBand()
	f := func(t1Raw, t2Raw uint32, dRaw uint32) bool {
		t1, t2 := sim.Time(t1Raw), sim.Time(t2Raw)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		d := sim.Time(dRaw) + t1
		return b.PrioFor(t2, d) <= b.PrioFor(t1, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrioStaysInBand(t *testing.T) {
	b := Band{Min: 5, Max: 17, SlotLen: 33 * sim.Microsecond}
	f := func(nowRaw, dRaw uint32) bool {
		p := b.PrioFor(sim.Time(nowRaw), sim.Time(dRaw))
		return p >= b.Min && p <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextChangeAdvancesPriority(t *testing.T) {
	b := DefaultBand()
	now := sim.Time(1 * sim.Second)
	deadline := now + 10*b.SlotLen + b.SlotLen/2
	p0 := b.PrioFor(now, deadline)
	ch := b.NextChange(now, deadline)
	if ch <= now || ch > deadline {
		t.Fatalf("NextChange = %v outside (now, deadline]", ch)
	}
	// One nanosecond before the change instant the priority is unchanged;
	// at the instant it is strictly more urgent.
	if b.PrioFor(ch-1, deadline) != p0 {
		t.Fatalf("priority changed before NextChange instant")
	}
	if b.PrioFor(ch, deadline) >= p0 {
		t.Fatalf("priority did not become more urgent at NextChange")
	}
}

func TestNextChangeZeroWhenMostUrgent(t *testing.T) {
	b := DefaultBand()
	now := sim.Time(5 * sim.Second)
	if b.NextChange(now, now) != 0 {
		t.Fatal("NextChange at deadline should be 0")
	}
	if b.NextChange(now, now-sim.Second) != 0 {
		t.Fatal("NextChange past deadline should be 0")
	}
}

func TestNextChangeSaturated(t *testing.T) {
	b := DefaultBand()
	now := sim.Time(0)
	deadline := now + b.Horizon() + 5*sim.Millisecond
	if b.PrioFor(now, deadline) != b.Max {
		t.Fatal("expected saturated priority")
	}
	ch := b.NextChange(now, deadline)
	if ch == 0 {
		t.Fatal("saturated message must still have a change instant")
	}
	if b.PrioFor(ch, deadline) != b.Max-1 {
		t.Fatalf("after horizon entry priority = %d, want %d",
			b.PrioFor(ch, deadline), b.Max-1)
	}
}

func TestNextChangeChainTerminates(t *testing.T) {
	// Following NextChange repeatedly must walk the priority down to Min
	// in at most Levels() steps.
	b := Band{Min: 1, Max: 50, SlotLen: 100 * sim.Microsecond}
	now := sim.Time(777)
	deadline := now + 2*b.Horizon()
	steps := 0
	for {
		ch := b.NextChange(now, deadline)
		if ch == 0 {
			break
		}
		if ch <= now {
			t.Fatalf("NextChange did not advance: %v -> %v", now, ch)
		}
		now = ch
		steps++
		if steps > b.Levels()+1 {
			t.Fatal("promotion chain did not terminate")
		}
	}
	if b.PrioFor(now, deadline) != b.Min {
		t.Fatalf("chain ended at priority %d", b.PrioFor(now, deadline))
	}
}

func TestPromotionsCount(t *testing.T) {
	b := Band{Min: 1, Max: 250, SlotLen: 100 * sim.Microsecond}
	now := sim.Time(0)
	// Enqueued with laxity of 10.5 slots: passes slots 10..1, i.e. 10
	// promotions before reaching Min.
	if got := b.Promotions(now, now+1050*sim.Microsecond); got != 10 {
		t.Fatalf("Promotions = %d, want 10", got)
	}
	if got := b.Promotions(now, now); got != 0 {
		t.Fatalf("Promotions at deadline = %d", got)
	}
	// Beyond horizon saturates at Levels-1.
	if got := b.Promotions(now, now+sim.Time(10*b.Horizon())); got != b.Levels()-1 {
		t.Fatalf("Promotions beyond horizon = %d, want %d", got, b.Levels()-1)
	}
}

func TestPromotionsMatchesChangeChain(t *testing.T) {
	// Property: Promotions() equals the number of NextChange steps.
	b := Band{Min: 1, Max: 40, SlotLen: 50 * sim.Microsecond}
	f := func(laxRaw uint32) bool {
		now := sim.Time(123456)
		deadline := now + sim.Time(laxRaw%uint32(3*b.Horizon()))
		want := b.Promotions(now, deadline)
		steps := 0
		cur := now
		for {
			ch := b.NextChange(cur, deadline)
			if ch == 0 {
				break
			}
			cur = ch
			steps++
			if steps > b.Levels()+2 {
				return false
			}
		}
		return steps == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHorizonFormula(t *testing.T) {
	// ΔH = (P_max − P_min) · Δt_p, §3.4.
	b := Band{Min: 10, Max: 20, SlotLen: 7 * sim.Microsecond}
	if b.Horizon() != 70*sim.Microsecond {
		t.Fatalf("Horizon = %v", b.Horizon())
	}
}

func TestTieProbability(t *testing.T) {
	b := Band{Min: 1, Max: 250, SlotLen: 100 * sim.Microsecond}
	if p := b.TieProbability(1, sim.Second); p != 0 {
		t.Fatalf("single message tie prob = %v", p)
	}
	if p := b.TieProbability(10, 0); p != 1 {
		t.Fatalf("zero window tie prob = %v", p)
	}
	// More messages in the same window → higher tie probability.
	w := 100 * b.SlotLen
	if !(b.TieProbability(3, w) < b.TieProbability(10, w)) {
		t.Fatal("tie probability not monotone in n")
	}
	// Wider window → lower tie probability.
	if !(b.TieProbability(10, 2*w) < b.TieProbability(10, w)) {
		t.Fatal("tie probability not monotone in window")
	}
	// More messages than slots: certain collision.
	if p := b.TieProbability(200, 100*b.SlotLen); p != 1 {
		t.Fatalf("overfull window tie prob = %v", p)
	}
}
