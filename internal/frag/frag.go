// Package frag implements the fragmentation protocol that lets non
// real-time event channels carry bulk payloads — memory images, electronic
// data sheets, test patterns (paper §2.2.3) — as a chain of 8-byte CAN
// frames. The wire format follows the proven ISO-TP layout: a one-byte
// protocol-control header on every fragment, a 4-bit rolling sequence
// number on consecutive frames (CAN guarantees in-order delivery per
// sender, so 4 bits suffice to detect gaps), and an escape form for
// payloads beyond the 12-bit length field.
package frag

import (
	"encoding/binary"
	"errors"
	"fmt"

	"canec/internal/sim"
)

// Protocol-control (PCI) types, high nibble of byte 0.
const (
	pciSingle = 0x0 // single-frame message, low nibble = length (1..7)
	pciFirst  = 0x1 // first frame, 12-bit length follows
	pciCons   = 0x2 // consecutive frame, low nibble = sequence mod 16
)

const (
	maxShortLen = 0xfff // largest payload representable in a 12-bit first frame
	// MaxMessage is the largest payload Fragment accepts. The 32-bit
	// escape form could carry more; 16 MiB is far beyond any plausible
	// field-bus bulk transfer and bounds reassembly memory.
	MaxMessage = 16 << 20
)

// ErrTooLarge is returned for messages beyond MaxMessage.
var ErrTooLarge = errors.New("frag: message exceeds maximum size")

// ErrEmpty is returned for empty messages; the event channel model always
// carries at least a content byte, so this is a caller bug.
var ErrEmpty = errors.New("frag: empty message")

// Fragment splits msg into CAN payloads.
//
// Layouts:
//
//	single      [0x0l  d0..d{l-1}]                        l = 1..7
//	first       [0x1h  ll  d0..d5]                        12-bit length hl·256+ll
//	first-ext   [0x10  00  L3 L2 L1 L0  d0 d1]            32-bit length, len > 0xfff
//	consecutive [0x2s  d0..d6]                            s = seq mod 16, starts at 1
func Fragment(msg []byte) ([][]byte, error) {
	if len(msg) == 0 {
		return nil, ErrEmpty
	}
	if len(msg) > MaxMessage {
		return nil, ErrTooLarge
	}
	if len(msg) <= 7 {
		out := make([]byte, 1+len(msg))
		out[0] = pciSingle<<4 | byte(len(msg))
		copy(out[1:], msg)
		return [][]byte{out}, nil
	}
	var frames [][]byte
	var rest []byte
	if len(msg) <= maxShortLen {
		first := make([]byte, 8)
		first[0] = pciFirst<<4 | byte(len(msg)>>8)
		first[1] = byte(len(msg))
		copy(first[2:], msg[:6])
		rest = msg[6:]
		frames = append(frames, first)
	} else {
		first := make([]byte, 8)
		first[0] = pciFirst << 4
		first[1] = 0
		binary.BigEndian.PutUint32(first[2:], uint32(len(msg)))
		copy(first[6:], msg[:2])
		rest = msg[2:]
		frames = append(frames, first)
	}
	seq := byte(1)
	for len(rest) > 0 {
		n := len(rest)
		if n > 7 {
			n = 7
		}
		fr := make([]byte, 1+n)
		fr[0] = pciCons<<4 | seq&0x0f
		copy(fr[1:], rest[:n])
		rest = rest[n:]
		frames = append(frames, fr)
		seq++
	}
	return frames, nil
}

// FrameCount returns how many CAN frames Fragment will produce for a
// payload of n bytes, without allocating them. Used by admission and
// bench arithmetic.
func FrameCount(n int) int {
	switch {
	case n <= 0:
		return 0
	case n <= 7:
		return 1
	case n <= maxShortLen:
		return 1 + ceilDiv(n-6, 7)
	default:
		return 1 + ceilDiv(n-2, 7)
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Error describes a reassembly failure.
type Error struct {
	Reason string
}

func (e *Error) Error() string { return "frag: " + e.Reason }

// Reassembler rebuilds one sender/channel stream of fragments into
// messages. CAN delivers frames of one sender in order, so a sequence gap
// means frames were lost to an inconsistent omission; the partial message
// is dropped and reported.
type Reassembler struct {
	// Timeout aborts a partially received message when no fragment
	// arrives for this long (0 disables).
	Timeout sim.Duration

	buf      []byte
	want     int
	seq      byte
	lastAt   sim.Time
	active   bool
	skipping bool
}

// Push processes one received payload at time at. It returns the completed
// message when the payload finishes one, nil otherwise. A non-nil error
// reports a protocol violation or detected loss; the reassembler is then
// reset and ready for the next message.
func (r *Reassembler) Push(data []byte, at sim.Time) ([]byte, error) {
	if len(data) == 0 {
		return nil, &Error{"empty payload"}
	}
	if r.active && r.Timeout > 0 && at-r.lastAt > r.Timeout {
		r.reset()
		// The stale partial message is silently discarded; the incoming
		// fragment is processed fresh below (it may be a new first frame).
	}
	r.lastAt = at
	pci := data[0] >> 4
	switch pci {
	case pciSingle:
		if r.active {
			r.reset()
			return nil, &Error{"single frame interrupting reassembly"}
		}
		n := int(data[0] & 0x0f)
		if n == 0 || n > 7 || n != len(data)-1 {
			return nil, &Error{fmt.Sprintf("bad single-frame length %d (payload %d)", n, len(data)-1)}
		}
		r.skipping = false
		out := make([]byte, n)
		copy(out, data[1:])
		return out, nil

	case pciFirst:
		if r.active {
			r.reset()
			return nil, &Error{"first frame interrupting reassembly"}
		}
		want := int(data[0]&0x0f)<<8 | int(data[1])
		if want == 0 {
			// Escape form: 32-bit length.
			if len(data) < 8 {
				return nil, &Error{"truncated extended first frame"}
			}
			want = int(binary.BigEndian.Uint32(data[2:6]))
			if want <= maxShortLen || want > MaxMessage {
				return nil, &Error{fmt.Sprintf("implausible extended length %d", want)}
			}
			r.start(want, data[6:])
		} else {
			if want <= 7 {
				return nil, &Error{fmt.Sprintf("first frame for short message %d", want)}
			}
			r.start(want, data[2:])
		}
		return nil, nil

	case pciCons:
		if !r.active {
			if r.skipping {
				// Tail of a message already abandoned after a detected
				// loss: discard silently until the next first/single frame,
				// as ISO-TP receivers do with unexpected consecutive
				// frames.
				return nil, nil
			}
			return nil, &Error{"consecutive frame without first frame"}
		}
		seq := data[0] & 0x0f
		if seq != r.seq {
			r.reset()
			r.skipping = true
			return nil, &Error{fmt.Sprintf("sequence gap: got %d, want %d (frame lost)", seq, r.seq)}
		}
		r.seq = (r.seq + 1) & 0x0f
		r.buf = append(r.buf, data[1:]...)
		if len(r.buf) > r.want {
			r.reset()
			return nil, &Error{"overrun: more data than announced"}
		}
		if len(r.buf) == r.want {
			out := r.buf
			r.buf = nil
			r.reset()
			return out, nil
		}
		return nil, nil

	default:
		return nil, &Error{fmt.Sprintf("unknown PCI type %#x", pci)}
	}
}

// Active reports whether a message is partially assembled.
func (r *Reassembler) Active() bool { return r.active }

// Progress returns received and expected byte counts of the in-flight
// message (0,0 when idle).
func (r *Reassembler) Progress() (got, want int) {
	if !r.active {
		return 0, 0
	}
	return len(r.buf), r.want
}

func (r *Reassembler) start(want int, head []byte) {
	r.active = true
	r.skipping = false
	r.want = want
	r.seq = 1
	r.buf = make([]byte, 0, want)
	r.buf = append(r.buf, head...)
}

func (r *Reassembler) reset() {
	r.active = false
	r.want = 0
	r.seq = 0
	r.buf = nil
}
