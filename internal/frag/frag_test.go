package frag

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"canec/internal/sim"
)

// roundtrip fragments msg and feeds every frame to a fresh reassembler.
func roundtrip(t *testing.T, msg []byte) []byte {
	t.Helper()
	frames, err := Fragment(msg)
	if err != nil {
		t.Fatalf("Fragment(%d bytes): %v", len(msg), err)
	}
	var r Reassembler
	for i, fr := range frames {
		if len(fr) > 8 {
			t.Fatalf("frame %d exceeds 8 bytes: %d", i, len(fr))
		}
		out, err := r.Push(fr, sim.Time(i))
		if err != nil {
			t.Fatalf("Push frame %d/%d: %v", i, len(frames), err)
		}
		if out != nil {
			if i != len(frames)-1 {
				t.Fatalf("message completed early at frame %d/%d", i, len(frames))
			}
			return out
		}
	}
	t.Fatal("message never completed")
	return nil
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 13)
	}
	return b
}

func TestRoundtripSizes(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 9, 13, 14, 100, 4095, 4096, 5000, 70000} {
		msg := pattern(n)
		got := roundtrip(t, msg)
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: roundtrip mismatch", n)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(msg []byte) bool {
		if len(msg) == 0 || len(msg) > 20000 {
			return true
		}
		frames, err := Fragment(msg)
		if err != nil {
			return false
		}
		var r Reassembler
		for i, fr := range frames {
			out, err := r.Push(fr, sim.Time(i))
			if err != nil {
				return false
			}
			if out != nil {
				return i == len(frames)-1 && bytes.Equal(out, msg)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentErrors(t *testing.T) {
	if _, err := Fragment(nil); err != ErrEmpty {
		t.Fatalf("Fragment(nil) err = %v", err)
	}
	if _, err := Fragment(make([]byte, MaxMessage+1)); err != ErrTooLarge {
		t.Fatalf("oversized err = %v", err)
	}
}

func TestFrameCountMatchesFragment(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 13, 14, 20, 4095, 4096, 9999, 70000} {
		want := 0
		if n > 0 {
			frames, err := Fragment(pattern(n))
			if err != nil {
				t.Fatal(err)
			}
			want = len(frames)
		}
		if got := FrameCount(n); got != want {
			t.Fatalf("FrameCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSingleFrameLayout(t *testing.T) {
	frames, _ := Fragment([]byte{0xaa, 0xbb})
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0][0] != 0x02 {
		t.Fatalf("PCI byte = %#x", frames[0][0])
	}
}

func TestSequenceGapDetected(t *testing.T) {
	frames, _ := Fragment(pattern(100))
	var r Reassembler
	for i, fr := range frames {
		if i == 3 {
			continue // drop one consecutive frame
		}
		out, err := r.Push(fr, sim.Time(i))
		if i < 3 {
			if err != nil {
				t.Fatalf("early error: %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatal("sequence gap not detected")
		}
		if !strings.Contains(err.Error(), "sequence gap") {
			t.Fatalf("wrong error: %v", err)
		}
		if out != nil {
			t.Fatal("message produced despite loss")
		}
		return
	}
}

func TestLostFirstFrame(t *testing.T) {
	frames, _ := Fragment(pattern(50))
	var r Reassembler
	_, err := r.Push(frames[1], 0) // consecutive without first
	if err == nil || !strings.Contains(err.Error(), "without first") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterruptedReassembly(t *testing.T) {
	frames, _ := Fragment(pattern(50))
	var r Reassembler
	if _, err := r.Push(frames[0], 0); err != nil {
		t.Fatal(err)
	}
	// A new first frame mid-message is a protocol violation and resets.
	if _, err := r.Push(frames[0], 1); err == nil {
		t.Fatal("interrupting first frame accepted")
	}
	if r.Active() {
		t.Fatal("reassembler still active after violation")
	}
	// Same for a single frame.
	if _, err := r.Push(frames[0], 2); err != nil {
		t.Fatal(err)
	}
	single, _ := Fragment([]byte{1})
	if _, err := r.Push(single[0], 3); err == nil {
		t.Fatal("interrupting single frame accepted")
	}
}

func TestReassemblyTimeout(t *testing.T) {
	frames, _ := Fragment(pattern(100))
	r := Reassembler{Timeout: 10 * sim.Millisecond}
	if _, err := r.Push(frames[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(frames[1], sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Long silence, then a new message starts: the stale partial must be
	// discarded and the new message assembled cleanly.
	msg2 := pattern(20)
	frames2, _ := Fragment(msg2)
	at := sim.Time(5 * sim.Second)
	var got []byte
	for i, fr := range frames2 {
		out, err := r.Push(fr, at+sim.Time(i))
		if err != nil {
			t.Fatalf("new message after timeout: %v", err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, msg2) {
		t.Fatal("message after timeout mismatched")
	}
}

func TestProgress(t *testing.T) {
	frames, _ := Fragment(pattern(100))
	var r Reassembler
	if g, w := r.Progress(); g != 0 || w != 0 {
		t.Fatal("idle progress not 0,0")
	}
	r.Push(frames[0], 0)
	g, w := r.Progress()
	if w != 100 || g != 6 {
		t.Fatalf("progress after first frame = %d/%d", g, w)
	}
}

func TestBadPayloads(t *testing.T) {
	var r Reassembler
	cases := [][]byte{
		nil,                            // empty
		{0x00},                         // single with length 0
		{0x05, 1, 2},                   // single length/payload mismatch
		{0x30, 1},                      // unknown PCI
		{0x10, 0x05, 1, 2, 3, 4},       // first frame announcing short message
		{0x10, 0x00, 0, 0},             // truncated extended first frame
		{0x10, 0x00, 0, 0, 0, 5, 0, 0}, // extended length in short range
	}
	for i, c := range cases {
		if _, err := r.Push(c, 0); err == nil {
			t.Fatalf("case %d accepted: %v", i, c)
		}
		if r.Active() {
			t.Fatalf("case %d left reassembler active", i)
		}
	}
}

func TestOverrunDetected(t *testing.T) {
	// 18-byte message: first frame carries 6, one consecutive carries 7,
	// leaving 5. A malicious/corrupt full 7-byte consecutive frame with the
	// correct sequence number then exceeds the announced length.
	frames, _ := Fragment(pattern(18))
	var r Reassembler
	if _, err := r.Push(frames[0], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(frames[1], 1); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 8)
	big[0] = 0x20 | 2
	if _, err := r.Push(big, 2); err == nil || !strings.Contains(err.Error(), "overrun") {
		t.Fatalf("overrun err = %v", err)
	}
	if r.Active() {
		t.Fatal("reassembler still active after overrun")
	}
}
