package core

import (
	"canec/internal/can"
	"canec/internal/sim"
)

// NodeState is the liveness verdict the watchdog assigns to a publisher.
type NodeState int

const (
	// NodeAlive publishers delivered in their most recent slots.
	NodeAlive NodeState = iota
	// NodeSuspected publishers missed at least one slot but fewer than
	// the failure threshold.
	NodeSuspected
	// NodeFailed publishers missed Threshold consecutive slots.
	NodeFailed
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeAlive:
		return "alive"
	case NodeSuspected:
		return "suspected"
	case NodeFailed:
		return "failed"
	}
	return "?"
}

// Watchdog turns the middleware's missing-message detection into a node
// liveness service: because every periodic HRT publisher has a known
// transmission schedule, its silence is observable within one round —
// "local exception handling may contribute to an early detection of a
// fault and thus may increase the safety of the system" (§2.2.1). A
// publisher that misses Threshold consecutive slot occurrences (across
// all of its channels this node subscribes to) is declared failed; one
// delivery restores it to alive.
type Watchdog struct {
	mw *Middleware
	// Threshold is the number of consecutive misses before failure.
	Threshold int
	// OnChange is invoked on every state transition.
	OnChange func(pub can.TxNode, state NodeState, at sim.Time)

	misses map[can.TxNode]int
	state  map[can.TxNode]NodeState
}

// Watchdog installs (or returns the already-installed) liveness monitor
// on this middleware. Threshold must be ≥ 1.
func (mw *Middleware) Watchdog(threshold int, onChange func(can.TxNode, NodeState, sim.Time)) *Watchdog {
	if mw.watchdog == nil {
		if threshold < 1 {
			threshold = 1
		}
		mw.watchdog = &Watchdog{
			mw:        mw,
			Threshold: threshold,
			OnChange:  onChange,
			misses:    make(map[can.TxNode]int),
			state:     make(map[can.TxNode]NodeState),
		}
	}
	return mw.watchdog
}

// State returns the current verdict for a publisher (alive by default).
func (w *Watchdog) State(pub can.TxNode) NodeState { return w.state[pub] }

// noteAlive records a successful delivery from pub.
func (w *Watchdog) noteAlive(pub can.TxNode) {
	w.misses[pub] = 0
	w.transition(pub, NodeAlive)
}

// noteMiss records a missed slot occurrence of pub.
func (w *Watchdog) noteMiss(pub can.TxNode) {
	w.misses[pub]++
	if w.misses[pub] >= w.Threshold {
		w.transition(pub, NodeFailed)
	} else {
		w.transition(pub, NodeSuspected)
	}
}

func (w *Watchdog) transition(pub can.TxNode, s NodeState) {
	if w.state[pub] == s {
		return
	}
	w.state[pub] = s
	w.mw.Obs.WatchdogChange(s.String())
	if w.OnChange != nil {
		w.OnChange(pub, s, w.mw.K.Now())
	}
}
