package core

import (
	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/sim"
)

// BusOffPolicy parameterises supervised bus-off recovery. The controller's
// built-in auto-recovery rejoins exactly after the 128×11-recessive-bit
// observation — under a sustained bus-off attack that makes the victim
// flap: rejoin, eat 32 corrupted attempts, detach again, forever. The
// supervisor adds a capped-exponential re-join backoff on top of the
// spec-mandated observation time: a station that keeps getting knocked
// off the bus backs off harder each time, and the ladder resets once it
// has stayed healthy for StableAfter.
type BusOffPolicy struct {
	// Retry shapes the re-join backoff added after the recovery
	// observation: attempt n (counting consecutive bus-offs) waits
	// Base·2ⁿ capped at Cap, plus jitter. Attempts is ignored — a
	// detached controller never stops trying to rejoin.
	Retry binding.RetryPolicy
	// StableAfter is how long a recovered station must stay on the bus
	// for its backoff ladder to reset.
	StableAfter sim.Duration
}

// DefaultBusOffPolicy keeps the first re-join prompt (2 ms beyond the
// recovery rule) while a persistent attacker quickly drives the victim
// to the 64 ms cap — long enough to stop burning bus time on doomed
// rejoins, short enough to come back within one SLO window.
func DefaultBusOffPolicy() BusOffPolicy {
	return BusOffPolicy{
		Retry: binding.RetryPolicy{
			Base:       2 * sim.Millisecond,
			Cap:        64 * sim.Millisecond,
			JitterFrac: 0.1,
		},
		StableAfter: 250 * sim.Millisecond,
	}
}

// MaxBackoff is the largest re-join delay the policy can add: the cap
// with full jitter. Chaos checkers build their recovery bound from it.
func (p BusOffPolicy) MaxBackoff() sim.Duration {
	c := p.Retry.Cap
	if c <= 0 {
		c = p.Retry.Base
	}
	return c + sim.Duration(float64(c)*p.Retry.JitterFrac)
}

// EnableBusOffRecovery arms the supervisor: every controller's built-in
// auto-recovery is switched off and the lifecycle schedules rejoins
// itself, adding the policy's backoff to the 128×11-recessive-bit
// observation. The zero policy selects DefaultBusOffPolicy. Only
// meaningful on systems built with ConfineFaults.
func (lc *Lifecycle) EnableBusOffRecovery(pol BusOffPolicy) {
	def := DefaultBusOffPolicy()
	if pol.Retry.Base <= 0 {
		pol.Retry = def.Retry
	}
	if pol.StableAfter <= 0 {
		pol.StableAfter = def.StableAfter
	}
	lc.busOffPol = pol
	lc.busOffArmed = true
	lc.busOffStreak = make(map[int]int)
	lc.busOffUpAt = make(map[int]sim.Time)
	for _, n := range lc.sys.Nodes {
		n.Ctrl.SetAutoRecover(false)
	}
	prev := lc.sys.Bus.OnErrorState
	lc.sys.Bus.OnErrorState = func(ctrl int, old, new can.ErrorState, at sim.Time) {
		if prev != nil {
			prev(ctrl, old, new, at)
		}
		lc.errorState(ctrl, old, new, at)
	}
}

// BusOffRecoveryArmed reports whether the supervisor owns recovery.
func (lc *Lifecycle) BusOffRecoveryArmed() bool { return lc.busOffArmed }

// BusOffPolicyInEffect returns the armed policy (zero value when the
// supervisor is off).
func (lc *Lifecycle) BusOffPolicyInEffect() BusOffPolicy { return lc.busOffPol }

// BusOffRecoveryBound is the declared worst-case outage of one bus-off
// event under the armed policy: the recovery observation plus the capped
// backoff with full jitter. The chaos bus-off checker asserts every
// recovery against it.
func (lc *Lifecycle) BusOffRecoveryBound() sim.Duration {
	return lc.sys.Bus.BitDuration(can.BusOffRecoveryBits) + lc.busOffPol.MaxBackoff()
}

// errorState reacts to fault-confinement transitions. Kernel context
// (called from the bus's OnErrorState hook).
func (lc *Lifecycle) errorState(i int, old, new can.ErrorState, at sim.Time) {
	switch {
	case new == can.BusOff:
		lc.BusOffCount++
		streak := lc.busOffStreak[i]
		if up, ok := lc.busOffUpAt[i]; ok && sim.Duration(at-up) > lc.busOffPol.StableAfter {
			streak = 0 // stayed healthy long enough: ladder resets
		}
		lc.busOffStreak[i] = streak + 1
		wait := lc.sys.Bus.BitDuration(can.BusOffRecoveryBits) +
			lc.busOffPol.Retry.Backoff(streak, lc.sys.K.RNG())
		lc.sys.K.After(wait, func() {
			if lc.Down(i) {
				// The host crashed while detached; Restart power-cycles
				// the controller, which clears bus-off on its own.
				return
			}
			lc.sys.Nodes[i].Ctrl.Recover()
		})
	case old == can.BusOff:
		lc.BusOffRecovered++
		lc.busOffUpAt[i] = at
	}
}
