package core

import (
	"fmt"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/can"
	"canec/internal/clock"
	"canec/internal/obs"
	"canec/internal/sim"
)

// HRTEC is a hard real-time event channel (Fig. 1). Transport is certain:
// all resources are reserved off-line in the calendar, transmission is
// protected by the reserved top priority, omissions up to the configured
// degree are masked by time redundancy, and delivery happens exactly at
// the slot's delivery deadline so the application sees (near-)zero jitter.
type HRTEC struct {
	ch *channelState
}

// HRTEC returns the hard real-time channel for a subject on this node.
func (mw *Middleware) HRTEC(subject binding.Subject) (*HRTEC, error) {
	ch, err := mw.channel(subject, HRT)
	if err != nil {
		return nil, err
	}
	return &HRTEC{ch: ch}, nil
}

// hrtHeaderLen is the middleware header on HRT frames: one byte carrying
// a 4-bit event sequence number (copy deduplication and loss detection)
// and a 4-bit copy index.
const hrtHeaderLen = 1

// Announce prepares the channel for publication (§2.2.1): it validates
// the off-line reservation, binds the resources and starts the slot
// scheduler. The exception handler receives publisher-side conditions
// (queue overflow, transmission failures).
func (c *HRTEC) Announce(attrs ChannelAttrs, exc ExceptionHandler) error {
	ch := c.ch
	mw := ch.mw
	if mw.stopped {
		return ErrStopped
	}
	if mw.Cal == nil {
		return ErrNoSlot
	}
	if attrs.Payload < 0 || attrs.Payload > can.MaxPayload-hrtHeaderLen {
		return fmt.Errorf("%w: HRT payload %d (max %d)", ErrPayload, attrs.Payload, can.MaxPayload-hrtHeaderLen)
	}
	me := mw.node.Ctrl.Node()
	slots := ownedSlots(mw.Cal, ch.subject, me)
	if len(slots) == 0 {
		return ErrNoSlot
	}
	for _, s := range slots {
		if attrs.Payload+hrtHeaderLen > s.Payload {
			return fmt.Errorf("%w: slot dimensioned for %d bytes", ErrPayload, s.Payload-hrtHeaderLen)
		}
	}
	ch.attrs = attrs
	ch.pubExc = exc
	if attrs.QueueCap > 0 {
		ch.hrtQueueCap = attrs.QueueCap
	}
	if ch.announced {
		return nil
	}
	ch.announced = true
	for _, s := range slots {
		c.runSlot(s, s.NextActive(mw.startRound(s.Ready)))
	}
	return nil
}

// startRound returns the first round whose given slot offset has not yet
// passed on the local clock. A node announcing or subscribing mid-run —
// most importantly after a crash/restart — enters the calendar at the
// current phase instead of replaying every occurrence since round 0 (which
// would fire a catch-up cascade of spurious slot occurrences).
func (mw *Middleware) startRound(offset sim.Duration) int64 {
	rel := mw.LocalTime() - mw.Epoch - offset
	if rel <= 0 {
		return 0
	}
	return int64((rel + mw.Cal.Round - 1) / mw.Cal.Round)
}

// ownedSlots returns the calendar slots for (subject, publisher).
func ownedSlots(cal *calendar.Calendar, subj binding.Subject, n can.TxNode) []calendar.Slot {
	var out []calendar.Slot
	for _, s := range cal.SlotsForSubject(uint64(subj)) {
		if s.Publisher == n {
			out = append(out, s)
		}
	}
	return out
}

// Publish queues an event for transmission in the channel's next reserved
// slot. Events must be published before the slot's latest-ready instant
// to ride that slot; later publications ride the following round.
func (c *HRTEC) Publish(ev Event) error {
	prof := c.ch.mw.K.Probe()
	if prof == nil {
		return c.publish(ev)
	}
	pt0 := sim.ProbeNow()
	err := c.publish(ev)
	prof.StageNs(sim.ProbeEnqueue, sim.ProbeClassHRT, sim.ProbeNow()-pt0)
	return err
}

func (c *HRTEC) publish(ev Event) error {
	ch := c.ch
	mw := ch.mw
	if !ch.announced {
		return ErrNotAnnounced
	}
	if mw.stopped {
		return ErrStopped
	}
	if len(ev.Payload) > ch.attrs.Payload {
		return fmt.Errorf("%w: %d > %d", ErrPayload, len(ev.Payload), ch.attrs.Payload)
	}
	if len(ch.hrtQueue) >= ch.hrtQueueCap {
		ex := Exception{
			Kind: ExcQueueOverflow, Subject: ch.subject, Event: &ev,
			At: mw.K.Now(), Detail: "HRT publish queue full",
		}
		ch.raisePub(ex)
		mw.Obs.Emit(0, obs.StageDropped, HRT.String(), mw.node.Index,
			uint64(ch.subject), mw.K.Now(), "queue_overflow")
		return fmt.Errorf("core: HRT queue overflow on subject %d", ch.subject)
	}
	ev.Attrs.Timestamp = mw.LocalTime()
	if ev.traceID == 0 {
		ev.traceID = mw.Obs.Begin(HRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	} else {
		mw.Obs.Adopt(ev.traceID, HRT.String(), mw.node.Index, uint64(ch.subject), mw.K.Now())
	}
	ch.hrtQueue = append(ch.hrtQueue, ev)
	ch.hrtSeq = (ch.hrtSeq + 1) & 0x0f
	mw.counters.PublishedHRT++
	mw.Obs.Emit(ev.traceID, obs.StageEnqueued, HRT.String(), mw.node.Index,
		uint64(ch.subject), mw.K.Now(), "slot queue")
	return nil
}

// runSlot drives the publisher side of one reserved slot, round after
// round: at the slot's latest-ready instant (local clock) the queued
// event — if any — is handed to the controller with the reserved top
// priority. An empty queue simply leaves the slot unused; CAN arbitration
// hands the reserved bandwidth to lower-priority traffic automatically,
// which is the paper's headline efficiency argument.
func (c *HRTEC) runSlot(slot calendar.Slot, round int64) {
	ch := c.ch
	mw := ch.mw
	target := mw.Epoch + sim.Time(round)*mw.Cal.Round + slot.Ready
	clock.ScheduleLocal(mw.K, mw.node.Clock, target, func() {
		if mw.stopped || !ch.announced {
			return
		}
		c.fireSlot(slot)
		c.runSlot(slot, slot.NextActive(round+1))
	})
}

// fireSlot transmits the head of the publish queue in the current slot,
// with time redundancy against omissions.
func (c *HRTEC) fireSlot(slot calendar.Slot) {
	ch := c.ch
	mw := ch.mw
	if len(ch.hrtQueue) == 0 {
		mw.counters.SlotsUnused++
		mw.Obs.SlotOutcome(false)
		return
	}
	ev := ch.hrtQueue[0]
	ch.hrtQueue = ch.hrtQueue[1:]
	mw.counters.SlotsFired++
	mw.Obs.SlotOutcome(true)

	seq := ch.hrtSeqOf(ev)
	copies := mw.Cal.Cfg.OmissionDegree + 1
	var sendCopy func(idx int)
	sendCopy = func(idx int) {
		payload := make([]byte, hrtHeaderLen+len(ev.Payload))
		payload[0] = seq<<4 | uint8(idx)&0x0f
		copy(payload[hrtHeaderLen:], ev.Payload)
		frame := can.Frame{
			ID:   can.MakeID(mw.bands.HRTPrio, mw.node.Ctrl.Node(), ch.etag),
			Data: payload,
			Tag:  ev.traceID,
		}
		mw.node.Ctrl.Submit(frame, can.SubmitOpts{Done: func(ok bool, _ sim.Time) {
			if !ok {
				ch.raisePub(Exception{
					Kind: ExcTxFailure, Subject: ch.subject, Event: &ev,
					At: mw.K.Now(), Detail: "HRT transmission abandoned",
				})
				mw.Obs.Emit(ev.traceID, obs.StageDropped, HRT.String(), mw.node.Index,
					uint64(ch.subject), mw.K.Now(), "tx_abandoned")
				return
			}
			if idx+1 >= copies {
				return
			}
			if mw.SuppressRedundancy {
				// The sender observed a consistently successful
				// transmission: under the consistent-fault assumption all
				// operational nodes have the message, so the remaining
				// redundant copies are suppressed and their bandwidth is
				// reclaimed by lower-priority traffic (§3.2).
				mw.counters.CopiesSuppressed += uint64(copies - idx - 1)
				mw.Obs.Copies("suppressed", uint64(copies-idx-1))
				return
			}
			mw.counters.RedundantCopiesSent++
			mw.Obs.Copies("sent", 1)
			sendCopy(idx + 1)
		}})
	}
	sendCopy(0)
}

// hrtSeqOf recovers the sequence number assigned at Publish for an event
// at the queue head. Sequence numbers advance with publishes and slots
// consume events FIFO, so the distance from the current head gives the
// original number.
func (ch *channelState) hrtSeqOf(ev Event) uint8 {
	// Queue head was assigned (current seq − queue length remaining).
	return (ch.hrtSeq - uint8(len(ch.hrtQueue))) & 0x0f
}

// hrtArrival stashes a received HRT event until its delivery deadline.
type hrtArrival struct {
	ev        Event
	seq       uint8
	arrivedAt sim.Time
	copies    int
	round     int64
}

// Subscribe installs the notification and exception handlers and starts
// the delivery scheduler (§2.2.1). The channel attributes must match the
// publisher's announcement (type checking); the subscribe attributes
// provide filtering. The subscriber-side middleware knows the calendar,
// so it detects missing messages in periodic slots and raises SlotMissed.
func (c *HRTEC) Subscribe(attrs ChannelAttrs, sub SubscribeAttrs, notify NotificationHandler, exc ExceptionHandler) error {
	ch := c.ch
	mw := ch.mw
	if mw.stopped {
		return ErrStopped
	}
	if mw.Cal == nil {
		return ErrNoSlot
	}
	slots := mw.Cal.SlotsForSubject(uint64(ch.subject))
	if len(slots) == 0 {
		return ErrNoSlot
	}
	if !ch.announced {
		ch.attrs = attrs
	}
	ch.subAttrs = sub
	ch.notify = notify
	ch.subExc = exc
	if ch.subscribed {
		return nil
	}
	ch.subscribed = true
	mw.node.Ctrl.AddFilter(ch.etag)
	for _, s := range slots {
		c.runDeliver(s, s.NextActive(mw.startRound(s.Deadline(mw.Cal.Cfg))))
	}
	return nil
}

// CancelSubscription removes the subscription. It is a strictly local
// operation releasing local resources (§2.2.1).
func (c *HRTEC) CancelSubscription() {
	ch := c.ch
	ch.subscribed = false
	ch.notify = nil
	ch.mw.node.Ctrl.RemoveFilter(ch.etag)
}

// hrtReceive stashes an arriving HRT frame for de-jittered delivery, or
// delivers immediately (flagged) when the deadline has already passed on
// this node's clock.
func (ch *channelState) hrtReceive(f can.Frame, at sim.Time) {
	if len(f.Data) < hrtHeaderLen {
		return
	}
	pub := f.ID.TxNode()
	seq := f.Data[0] >> 4
	ev := Event{
		Subject: ch.subject,
		Payload: append([]byte(nil), f.Data[hrtHeaderLen:]...),
		traceID: f.Tag,
	}
	if !ch.subAttrs.accepts(pub, ev) {
		return
	}
	if ch.hrtSeen[pub] && ch.hrtLastSeq[pub] == seq {
		// Redundant copy of an already-seen event.
		ch.mw.counters.DuplicatesDropped++
		if st := ch.hrtStash[pub]; st != nil && st.seq == seq {
			st.copies++
		}
		return
	}
	ch.hrtSeen[pub] = true
	ch.hrtLastSeq[pub] = seq

	slot, ok := ch.slotOf(pub)
	if !ok {
		return
	}
	mw := ch.mw
	local := mw.LocalTime()
	round, deadline := ch.occurrenceOf(slot, local)
	st := &hrtArrival{ev: ev, seq: seq, arrivedAt: at, copies: 1, round: round}
	if mw.DeliverOnArrival {
		// De-jitter ablation: hand the event over immediately, exposing
		// the full network-level jitter to the application.
		ch.hrtDeliver(pub, st, false)
		return
	}
	if local > deadline {
		// Arrived past this node's view of the deadline (clock skew or a
		// fault burst beyond the assumption): deliver immediately rather
		// than hold it a full round. Within the sync precision this still
		// counts as on-time.
		late := local > deadline+mw.hrtSlack()
		ch.hrtDeliver(pub, st, late)
		return
	}
	ch.hrtStash[pub] = st
}

// slotOf finds the calendar slot of this channel owned by a publisher.
func (ch *channelState) slotOf(pub can.TxNode) (calendar.Slot, bool) {
	for _, s := range ch.mw.Cal.SlotsForSubject(uint64(ch.subject)) {
		if s.Publisher == pub {
			return s, true
		}
	}
	return calendar.Slot{}, false
}

// occurrenceOf maps a local time to the slot occurrence (active round)
// whose transmission window contains or most recently preceded it,
// returning the round index and that occurrence's delivery deadline in
// local time.
func (ch *channelState) occurrenceOf(slot calendar.Slot, local sim.Time) (int64, sim.Time) {
	mw := ch.mw
	rel := local - mw.Epoch - slot.Ready
	round := int64(rel / mw.Cal.Round)
	if rel < 0 {
		round = 0
	}
	// Snap down to the most recent round this slot is active in.
	if !slot.ActiveIn(round) {
		prev := slot.NextActive(round) // ≥ round, so step one period back
		round = prev - int64(maxInt(slot.Every, 1))
		if round < slot.NextActive(0) {
			round = slot.NextActive(0)
		}
	}
	deadline := mw.Epoch + sim.Time(round)*mw.Cal.Round + slot.Deadline(mw.Cal.Cfg)
	return round, deadline
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hrtDeliver notifies the application and records delivery bookkeeping.
func (ch *channelState) hrtDeliver(pub can.TxNode, st *hrtArrival, late bool) {
	mw := ch.mw
	delete(ch.hrtStash, pub)
	ch.hrtDelivered[pub] = st.round
	if mw.watchdog != nil {
		mw.watchdog.noteAlive(pub)
	}
	mw.counters.DeliveredHRT++
	if late {
		mw.counters.LateHRTDeliveries++
	}
	di := DeliveryInfo{
		Publisher:   pub,
		ArrivedAt:   st.arrivedAt,
		DeliveredAt: mw.K.Now(),
		Late:        late,
		Copies:      st.copies,
	}
	if at, ok := mw.Obs.PublishKernelTime(st.ev.traceID); ok {
		di.PublishedAt = at
	}
	ch.store(st.ev, di)
	detail := ""
	if late {
		detail = "late"
	}
	mw.Obs.Delivered(st.ev.traceID, HRT.String(), mw.node.Index,
		uint64(ch.subject), mw.K.Now(), detail)
	ch.deliverNotify(st.ev, di)
}

// GetEvent retrieves the most recently delivered event from the
// middleware's memory area — the paper's getEvent() primitive (§2.2.1).
// ok is false before the first delivery.
func (c *HRTEC) GetEvent() (ev Event, di DeliveryInfo, ok bool) { return c.ch.getEvent() }

// runDeliver drives the subscriber side of one slot: deliver the stashed
// event exactly at the delivery deadline (cancelling network jitter), and
// for periodic slots verify — one precision bound later — that something
// was delivered, raising SlotMissed otherwise.
func (c *HRTEC) runDeliver(slot calendar.Slot, round int64) {
	ch := c.ch
	mw := ch.mw
	cfg := mw.Cal.Cfg
	deadline := mw.Epoch + sim.Time(round)*mw.Cal.Round + slot.Deadline(cfg)
	clock.ScheduleLocal(mw.K, mw.node.Clock, deadline, func() {
		if mw.stopped || !ch.subscribed {
			return
		}
		if st := ch.hrtStash[slot.Publisher]; st != nil {
			ch.hrtDeliver(slot.Publisher, st, false)
		} else if slot.Periodic {
			// Allow the clock precision before declaring a miss: the
			// publisher's clock may run up to π behind ours — more during
			// holdover, when the slack is widened to the uncertainty bound.
			clock.ScheduleLocal(mw.K, mw.node.Clock, deadline+mw.hrtSlack(), func() {
				if mw.stopped || !ch.subscribed {
					return
				}
				if ch.hrtDelivered[slot.Publisher] >= round && ch.hrtSeen[slot.Publisher] {
					return // arrived within the grace window
				}
				if mw.watchdog != nil {
					mw.watchdog.noteMiss(slot.Publisher)
				}
				ch.raiseSub(Exception{
					Kind: ExcSlotMissed, Subject: ch.subject, At: mw.K.Now(),
					Detail: fmt.Sprintf("no event from node %d in round %d", slot.Publisher, round),
				})
				mw.Obs.Emit(0, obs.StageMissed, HRT.String(), mw.node.Index,
					uint64(ch.subject), mw.K.Now(),
					fmt.Sprintf("publisher %d round %d", slot.Publisher, round))
			})
		}
		c.runDeliver(slot, slot.NextActive(round+1))
	})
}
