package core

import (
	"testing"

	"canec/internal/binding"
	"canec/internal/calendar"
	"canec/internal/sim"
)

// TestMultiRateChannels runs a planned calendar with a fast stream plus
// two half-rate streams sharing one window in alternate rounds, end to
// end: deliveries land at the correct occurrences and miss detection
// counts only active rounds.
func TestMultiRateChannels(t *testing.T) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.Plan(cfg, []calendar.Request{
		{Subject: 0xA1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0xA2, Publisher: 1, Payload: 8, Period: 20 * sim.Millisecond, Periodic: true},
		{Subject: 0xA3, Publisher: 2, Payload: 8, Period: 20 * sim.Millisecond, Periodic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Round != 10*sim.Millisecond {
		t.Fatalf("round = %v", cal.Round)
	}
	sys, err := NewSystem(SystemConfig{Nodes: 4, Seed: 1, Calendar: cal, Epoch: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const horizonRounds = 20

	type tally struct {
		delivered int
		missed    int
		times     []sim.Time
	}
	tallies := map[binding.Subject]*tally{0xA1: {}, 0xA2: {}, 0xA3: {}}

	for i, subj := range []binding.Subject{0xA1, 0xA2, 0xA3} {
		i, subj := i, subj
		slot := cal.SlotsForSubject(uint64(subj))[0]
		ch, err := sys.Node(i).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
			t.Fatal(err)
		}
		// Publish once per *active* round, just before the slot.
		for r := slot.NextActive(0); r < horizonRounds; r = slot.NextActive(r + 1) {
			sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round+slot.Ready-100*sim.Microsecond, func() {
				ch.Publish(Event{Subject: subj, Payload: []byte{byte(r)}})
			})
		}
		sub, err := sys.Node(3).MW.HRTEC(subj)
		if err != nil {
			t.Fatal(err)
		}
		tl := tallies[subj]
		sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
			func(_ Event, di DeliveryInfo) {
				tl.delivered++
				tl.times = append(tl.times, di.DeliveredAt)
				if di.Late {
					t.Errorf("subject %x late delivery", subj)
				}
			},
			func(e Exception) {
				if e.Kind == ExcSlotMissed {
					tl.missed++
				}
			})
	}
	sys.Run(sys.Cfg.Epoch + horizonRounds*cal.Round - 1)

	if got := tallies[0xA1].delivered; got != 20 {
		t.Fatalf("fast stream delivered %d, want 20", got)
	}
	for _, subj := range []binding.Subject{0xA2, 0xA3} {
		tl := tallies[subj]
		if tl.delivered != 10 {
			t.Fatalf("subject %x delivered %d, want 10 (every other round)", subj, tl.delivered)
		}
		if tl.missed != 0 {
			t.Fatalf("subject %x missed %d despite publishing every active round", subj, tl.missed)
		}
		// Deliveries must be exactly one activation period (2 rounds) apart.
		for i := 1; i < len(tl.times); i++ {
			if d := tl.times[i] - tl.times[i-1]; d != 2*cal.Round {
				t.Fatalf("subject %x delivery interval %v, want %v", subj, d, 2*cal.Round)
			}
		}
	}
	if c := sys.TotalCounters(); c.SlotMissed != 0 || c.LateHRTDeliveries != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestMultiRateMissDetectionCountsActiveRoundsOnly stops a half-rate
// publisher and checks that exactly the active occurrences raise misses.
func TestMultiRateMissDetectionCountsActiveRoundsOnly(t *testing.T) {
	cfg := calendar.DefaultConfig()
	cal, err := calendar.Plan(cfg, []calendar.Request{
		{Subject: 0xB1, Publisher: 0, Payload: 8, Period: 10 * sim.Millisecond, Periodic: true},
		{Subject: 0xB2, Publisher: 1, Payload: 8, Period: 40 * sim.Millisecond, Periodic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Nodes: 3, Seed: 1, Calendar: cal, Epoch: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Announce the slow channel but never publish: each active round (1 in
	// 4) raises a miss at the subscriber.
	pub, _ := sys.Node(1).MW.HRTEC(0xB2)
	if err := pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil); err != nil {
		t.Fatal(err)
	}
	missed := 0
	sub, _ := sys.Node(2).MW.HRTEC(0xB2)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) {}, func(e Exception) {
			if e.Kind == ExcSlotMissed {
				missed++
			}
		})
	const rounds = 16
	sys.Run(sys.Cfg.Epoch + rounds*cal.Round - 1)
	// 16 rounds at Every=4: active rounds within the horizon whose grace
	// check completes are 0, 4, 8 (round 12's check may or may not fit
	// depending on phase); accept 3 or 4 but never 16.
	if missed < 3 || missed > 4 {
		t.Fatalf("missed = %d, want 3..4 (one per active round)", missed)
	}
}
