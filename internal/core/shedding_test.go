package core

import (
	"errors"
	"testing"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/sim"
	"canec/internal/value"
)

// floodSetup saturates the bus with raw priority-1 frames (above the
// whole SRT band) so queued SRT events cannot drain, forcing the
// shedding path. Frames chain through Done, keeping the bus 100% busy.
func floodSetup(sys *System, until sim.Time) {
	ctrl := sys.Node(1).Ctrl
	var next func()
	next = func() {
		if sys.K.Now() > until {
			return
		}
		ctrl.Submit(can.Frame{
			ID:   can.MakeID(1, ctrl.Node(), 12345),
			Data: make([]byte, 8),
		}, can.SubmitOpts{Done: func(bool, sim.Time) { next() }})
	}
	sys.K.At(0, next)
}

func TestValueBasedSheddingKeepsHighValueEvents(t *testing.T) {
	sys := idealSystem(t, 3, nil)
	sys.Node(0).MW.MaxQueuedSRT = 4

	// Channel A: high residual value late (plateau); channel B: hard
	// deadline (step: worthless immediately after the deadline).
	chA, _ := sys.Node(0).MW.SRTEC(subjDiag)
	shedA := 0
	chA.Announce(ChannelAttrs{Value: value.Plateau{After: 0.9, Grace: sim.Second}},
		func(e Exception) {
			if e.Kind == ExcLoadShed {
				shedA++
			}
		})
	chB, _ := sys.Node(0).MW.SRTEC(subjBulk)
	shedB := 0
	chB.Announce(ChannelAttrs{Value: value.Step{}}, func(e Exception) {
		if e.Kind == ExcLoadShed {
			shedB++
		}
	})

	floodSetup(sys, 50*sim.Millisecond)
	// At 1 ms, queue 2 events per channel with deadlines that pass at 2 ms;
	// at 10 ms (deadlines passed: A's value 0.9, B's 0) publish more to
	// trigger shedding.
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		for i := 0; i < 2; i++ {
			chA.Publish(Event{Subject: subjDiag, Payload: []byte{0xA0},
				Attrs: EventAttrs{Deadline: now + sim.Millisecond}})
			chB.Publish(Event{Subject: subjBulk, Payload: []byte{0xB0},
				Attrs: EventAttrs{Deadline: now + sim.Millisecond}})
		}
	})
	sys.K.At(10*sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		chA.Publish(Event{Subject: subjDiag, Payload: []byte{0xA1},
			Attrs: EventAttrs{Deadline: now + 100*sim.Millisecond}})
		chA.Publish(Event{Subject: subjDiag, Payload: []byte{0xA2},
			Attrs: EventAttrs{Deadline: now + 100*sim.Millisecond}})
	})
	sys.Run(100 * sim.Millisecond)

	// The two worthless B events must have been shed, the A events kept.
	if shedB != 2 {
		t.Fatalf("shed B (step, past deadline) = %d, want 2", shedB)
	}
	if shedA != 0 {
		t.Fatalf("shed A (plateau, residual 0.9) = %d, want 0", shedA)
	}
	if got := sys.TotalCounters().Shed; got != 2 {
		t.Fatalf("Counters.Shed = %d", got)
	}
}

func TestSheddingRejectsWhenNothingSheddable(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	sys.Node(0).MW.MaxQueuedSRT = 1
	ch, _ := sys.Node(0).MW.SRTEC(subjDiag)
	shed := 0
	ch.Announce(ChannelAttrs{}, func(e Exception) {
		if e.Kind == ExcLoadShed {
			shed++
		}
	})
	// First event goes straight to the wire (bus idle), so it is in
	// flight and not sheddable; queue cap 1 with a second publish in the
	// same instant: the queued first one is in-flight → the new one is
	// rejected... Actually the first completes instantly in virtual time
	// only after its frame time, so publish both back to back.
	var err1, err2 error
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		err1 = ch.Publish(Event{Subject: subjDiag, Payload: []byte{1},
			Attrs: EventAttrs{Deadline: now + sim.Millisecond}})
		err2 = ch.Publish(Event{Subject: subjDiag, Payload: []byte{2},
			Attrs: EventAttrs{Deadline: now + sim.Millisecond}})
	})
	sys.Run(10 * sim.Millisecond)
	if err1 != nil {
		t.Fatalf("first publish: %v", err1)
	}
	_ = err2 // the second either shed the first (still queued) or was rejected
	if shed != 1 {
		t.Fatalf("shed = %d, want 1 (either victim or rejection)", shed)
	}
}

func TestSheddingDisabledByDefault(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	ch, _ := sys.Node(0).MW.SRTEC(subjDiag)
	ch.Announce(ChannelAttrs{}, nil)
	floodSetup(sys, 20*sim.Millisecond)
	var errs []error
	sys.K.At(sim.Millisecond, func() {
		now := sys.Node(0).MW.LocalTime()
		for i := 0; i < 50; i++ {
			errs = append(errs, ch.Publish(Event{Subject: subjDiag, Payload: []byte{byte(i)},
				Attrs: EventAttrs{Deadline: now + sim.Second}}))
		}
	})
	sys.Run(100 * sim.Millisecond)
	for _, err := range errs {
		if err != nil {
			t.Fatalf("publish failed without a queue bound: %v", err)
		}
	}
	if sys.TotalCounters().Shed != 0 {
		t.Fatal("shedding happened while disabled")
	}
}

func TestSheddingErrorIsTyped(t *testing.T) {
	// When rejection happens, the returned error mentions the queue; we
	// don't export a sentinel for it, but it must be non-nil and distinct
	// from the payload error.
	sys := idealSystem(t, 1, nil)
	sys.Node(0).MW.MaxQueuedSRT = 0 // disabled: no error expected
	ch, _ := sys.Node(0).MW.SRTEC(subjDiag)
	ch.Announce(ChannelAttrs{}, nil)
	if err := ch.Publish(Event{Subject: subjDiag, Payload: []byte{1}}); err != nil {
		t.Fatalf("publish with shedding disabled: %v", err)
	}
	if errors.Is(ErrPayload, ErrStopped) {
		t.Fatal("sentinel confusion")
	}
}

func TestSheddingDeterministic(t *testing.T) {
	// Victim selection must be a total order: identical runs shed the
	// same events (regression test for map-iteration nondeterminism).
	run := func() (uint64, uint64) {
		sys := idealSystem(t, 2, nil)
		sys.Node(0).MW.MaxQueuedSRT = 8
		chs := make([]*SRTEC, 3)
		for i := range chs {
			ch, _ := sys.Node(0).MW.SRTEC(binding.Subject(0x40 + i))
			ch.Announce(ChannelAttrs{Value: value.Plateau{After: 0.5, Grace: sim.Second}}, nil)
			chs[i] = ch
		}
		var loop func(i int)
		loop = func(i int) {
			if sys.K.Now() > 100*sim.Millisecond {
				return
			}
			now := sys.Node(0).MW.LocalTime()
			chs[i].Publish(Event{Subject: binding.Subject(0x40 + i), Payload: make([]byte, 8),
				Attrs: EventAttrs{Deadline: now + 2*sim.Millisecond}})
			sys.K.After(150*sim.Microsecond, func() { loop(i) })
		}
		for i := range chs {
			i := i
			sys.K.At(sim.Time(i)*50*sim.Microsecond, func() { loop(i) })
		}
		sys.Run(500 * sim.Millisecond)
		c := sys.TotalCounters()
		return c.Shed, c.DeliveredSRT + c.PublishedSRT
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 == 0 {
		t.Fatal("scenario did not trigger shedding")
	}
	if s1 != s2 || d1 != d2 {
		t.Fatalf("same-seed shedding diverged: %d/%d vs %d/%d", s1, d1, s2, d2)
	}
}
