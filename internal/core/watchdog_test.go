package core

import (
	"testing"

	"canec/internal/can"
	"canec/internal/sim"
)

func TestWatchdogDetectsCrashAndRecovery(t *testing.T) {
	cal := testCalendar(t, 1)
	sys := idealSystem(t, 2, cal)
	pub, _ := sys.Node(0).MW.HRTEC(subjTemp)
	pub.Announce(ChannelAttrs{Payload: 7, Periodic: true}, nil)
	sub, _ := sys.Node(1).MW.HRTEC(subjTemp)
	sub.Subscribe(ChannelAttrs{Payload: 7, Periodic: true}, SubscribeAttrs{},
		func(Event, DeliveryInfo) {}, nil)

	type change struct {
		pub   can.TxNode
		state NodeState
		at    sim.Time
	}
	var changes []change
	wd := sys.Node(1).MW.Watchdog(3, func(p can.TxNode, s NodeState, at sim.Time) {
		changes = append(changes, change{p, s, at})
	})

	// Publish rounds 0..4, silence for rounds 5..9 (crash), resume 10..14.
	publish := func(r int64) {
		sys.K.At(sys.Cfg.Epoch+sim.Time(r)*cal.Round-100*sim.Microsecond, func() {
			pub.Publish(Event{Subject: subjTemp, Payload: []byte{byte(r)}})
		})
	}
	for r := int64(0); r < 5; r++ {
		publish(r)
	}
	for r := int64(10); r < 15; r++ {
		publish(r)
	}
	sys.Run(sys.Cfg.Epoch + 15*cal.Round - 1)

	// Expected transitions (alive is the default state, so the first
	// delivery is not a transition): suspected (miss 1 at round 5),
	// failed (miss 3 at round 7), alive again (round 10).
	want := []NodeState{NodeSuspected, NodeFailed, NodeAlive}
	if len(changes) != len(want) {
		t.Fatalf("transitions = %+v", changes)
	}
	for i, w := range want {
		if changes[i].state != w || changes[i].pub != 0 {
			t.Fatalf("transition %d = %+v, want %v", i, changes[i], w)
		}
	}
	// Failure declared at round 7's grace check, well before round 10.
	failAt := changes[1].at
	lo := sys.Cfg.Epoch + 7*cal.Round
	hi := sys.Cfg.Epoch + 8*cal.Round
	if failAt < lo || failAt > hi {
		t.Fatalf("failure declared at %v, want within round 7 (%v..%v)", failAt, lo, hi)
	}
	if wd.State(0) != NodeAlive {
		t.Fatalf("final state = %v", wd.State(0))
	}
}

func TestWatchdogIdempotentInstall(t *testing.T) {
	sys := idealSystem(t, 2, nil)
	a := sys.Node(1).MW.Watchdog(3, nil)
	b := sys.Node(1).MW.Watchdog(5, nil)
	if a != b {
		t.Fatal("second Watchdog call created a new instance")
	}
	if a.Threshold != 3 {
		t.Fatalf("threshold overwritten: %d", a.Threshold)
	}
	if a.State(9) != NodeAlive {
		t.Fatal("unknown publisher should default to alive")
	}
}

func TestNodeStateString(t *testing.T) {
	if NodeAlive.String() != "alive" || NodeSuspected.String() != "suspected" ||
		NodeFailed.String() != "failed" || NodeState(9).String() != "?" {
		t.Fatal("state strings")
	}
}
