package core

import (
	"testing"

	"canec/internal/binding"
	"canec/internal/can"
	"canec/internal/sim"
)

// TestDynamicBindingIntegration wires the run-time binding protocol
// (binding.Agent/Client) through the middleware's configuration-channel
// hook: a node without any static configuration joins the bus, obtains
// its TxNode, binds a subject dynamically, and only then announces and
// publishes on an SRT channel whose etag came from the agent.
func TestDynamicBindingIntegration(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Nodes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 hosts the configuration agent. Its middleware routes config
	// frames to the agent; note node 0's TxNode is binding.AgentTxNode (0).
	agent := binding.NewAgent(sys.K, sys.Node(0).Ctrl)
	sys.Node(0).MW.ConfigRx = agent.HandleFrame

	// Node 1 runs a binding client.
	client := binding.NewClient(sys.K, sys.Node(1).Ctrl)
	sys.Node(1).MW.ConfigRx = client.HandleFrame

	const subject binding.Subject = 0xD00D
	var boundEtag can.Etag
	published := false
	sys.K.At(sim.Millisecond, func() {
		client.Bind(subject, func(e can.Etag, err error) {
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			boundEtag = e
			// Install the agent's decision into the local (and here,
			// shared) table, then use the regular channel API.
			if err := sys.Bindings.BindFixed(subject, e); err != nil {
				t.Errorf("record binding: %v", err)
				return
			}
			ch, err := sys.Node(1).MW.SRTEC(subject)
			if err != nil {
				t.Errorf("channel: %v", err)
				return
			}
			if err := ch.Announce(ChannelAttrs{}, nil); err != nil {
				t.Errorf("announce: %v", err)
				return
			}
			// Leave the subscriber (which polls the table) time to install
			// its filter before the event goes out.
			sys.K.After(10*sim.Millisecond, func() {
				now := sys.Node(1).MW.LocalTime()
				if err := ch.Publish(Event{Subject: subject, Payload: []byte{0xBE},
					Attrs: EventAttrs{Deadline: now + 5*sim.Millisecond}}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
				published = true
			})
		})
	})

	// Node 2 subscribes through the same shared table once the binding
	// exists (poll until then — a real node would bind itself).
	got := 0
	var trySub func()
	trySub = func() {
		if _, ok := sys.Bindings.Lookup(subject); !ok {
			sys.K.After(sim.Millisecond, trySub)
			return
		}
		sub, err := sys.Node(2).MW.SRTEC(subject)
		if err != nil {
			t.Errorf("subscriber channel: %v", err)
			return
		}
		sub.Subscribe(ChannelAttrs{}, SubscribeAttrs{},
			func(ev Event, _ DeliveryInfo) {
				if ev.Payload[0] == 0xBE {
					got++
				}
			}, nil)
	}
	sys.K.At(sim.Millisecond, trySub)

	sys.Run(2 * sim.Second)
	if !published {
		t.Fatal("dynamic bind + publish never completed")
	}
	if boundEtag == 0 || boundEtag == binding.ConfigEtag || boundEtag == binding.SyncEtag {
		t.Fatalf("bound etag = %d", boundEtag)
	}
	if got != 1 {
		t.Fatalf("deliveries via dynamically bound channel = %d", got)
	}
	if agent.Table.Len() != 1 {
		t.Fatalf("agent table = %d bindings", agent.Table.Len())
	}
}
